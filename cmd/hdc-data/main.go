// Command hdc-data generates the synthetic evaluation datasets.
//
// Usage:
//
//	hdc-data -name ISOLET -out isolet.bin [-max 4000] [-csv]
//	hdc-data -features 300 -samples 5000 -classes 8 -out synth.bin
//
// Catalog names follow Table I: FACE, ISOLET, UCIHAR, MNIST, PAMAP2.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hdcedge/internal/dataset"
)

func main() {
	name := flag.String("name", "", "catalog dataset name (Table I)")
	features := flag.Int("features", 0, "synthetic: feature count")
	samples := flag.Int("samples", 10000, "synthetic: sample count")
	classes := flag.Int("classes", 8, "synthetic: class count")
	seed := flag.Uint64("seed", 1, "synthetic: generator seed")
	maxSamples := flag.Int("max", 0, "cap generated samples (0 = full size)")
	out := flag.String("out", "", "output path (required)")
	csv := flag.Bool("csv", false, "write CSV instead of binary")
	list := flag.Bool("list", false, "list catalog datasets and exit")
	flag.Parse()

	if *list {
		for _, s := range dataset.Catalog() {
			fmt.Printf("%-8s %6d samples  %4d features  %3d classes  %s\n",
				s.Name, s.Samples, s.Features, s.Classes, s.Description)
		}
		return
	}
	if *out == "" {
		fail("missing -out")
	}

	var spec dataset.Spec
	switch {
	case *name != "":
		s, err := dataset.CatalogSpec(strings.ToUpper(*name))
		if err != nil {
			fail(err.Error())
		}
		spec = s
	case *features > 0:
		spec = dataset.SyntheticSpec(*features, *samples, *classes, *seed)
	default:
		fail("need -name or -features")
	}

	ds, err := dataset.Generate(spec, *maxSamples)
	if err != nil {
		fail(err.Error())
	}
	if *csv {
		err = ds.SaveCSV(*out)
	} else {
		err = ds.Save(*out)
	}
	if err != nil {
		fail(err.Error())
	}
	fmt.Printf("wrote %s: %d samples, %d features, %d classes\n",
		*out, ds.Samples(), ds.Features(), ds.Classes)
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "hdc-data:", msg)
	os.Exit(2)
}
