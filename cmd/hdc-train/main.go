// Command hdc-train trains an HDC classifier and saves it.
//
// Usage:
//
//	hdc-train -data isolet.bin -out model.hdm [-dim 10000] [-epochs 20]
//	          [-device] [-faults "link=0.05,reset=0.005"] [-fault-seed 1]
//	          [-bagging] [-submodels 4] [-iters 6] [-alpha 0.6]
//
// With -device, training-set encoding runs on the simulated Edge TPU (the
// co-design path); otherwise everything runs on the host CPU. With -faults,
// the accelerator is driven under a seeded fault plan and the resilient
// runtime (retry, reload, host fallback) keeps the run alive, reporting what
// recovery cost. With -bagging, the bootstrap-aggregating trainer produces a
// fused model.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hdcedge/internal/bagging"
	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/pipeline"
)

func main() {
	data := flag.String("data", "", "training dataset (binary or .csv)")
	out := flag.String("out", "", "output model path (required)")
	dim := flag.Int("dim", hdc.DefaultDim, "hypervector width d")
	epochs := flag.Int("epochs", 20, "training iterations")
	lr := flag.Float64("lr", 1, "learning rate λ")
	linear := flag.Bool("linear", false, "use linear (no tanh) encoding")
	seed := flag.Uint64("seed", 1, "random seed")
	device := flag.Bool("device", false, "encode on the simulated Edge TPU")
	faults := flag.String("faults", "", "with -device: fault plan, e.g. \"link=0.05,reset=0.005,seu=1e-7\"")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the fault-injection stream")
	useBagging := flag.Bool("bagging", false, "train with bootstrap aggregating")
	subModels := flag.Int("submodels", 4, "bagging: sub-model count M")
	iters := flag.Int("iters", 6, "bagging: sub-model iterations I'")
	alpha := flag.Float64("alpha", 0.6, "bagging: dataset sampling ratio α")
	beta := flag.Float64("beta", 1.0, "bagging: feature sampling ratio β")
	binarize := flag.String("binarize", "", "also write a 1-bit bipolar model to this path")
	flag.Parse()

	if *data == "" || *out == "" {
		fail("need -data and -out")
	}
	train, err := loadDataset(*data)
	if err != nil {
		fail(err.Error())
	}
	fmt.Printf("training on %s: %d samples, %d features, %d classes\n",
		*data, train.Samples(), train.Features(), train.Classes)

	start := time.Now()
	var model *hdc.Model
	switch {
	case *useBagging:
		cfg := bagging.Config{
			SubModels:    *subModels,
			Dim:          *dim,
			Iterations:   *iters,
			DatasetRatio: *alpha,
			FeatureRatio: *beta,
			LearningRate: float32(*lr),
			Nonlinear:    !*linear,
			Seed:         *seed,
		}
		ens, stats, err := bagging.Train(train, cfg)
		if err != nil {
			fail(err.Error())
		}
		model = ens.Fuse()
		fmt.Printf("bagging: %d sub-models of width %d, %d total updates\n",
			len(ens.Subs), cfg.SubDim(), stats.TotalUpdates())
		if oob, evaluated := ens.OOBAccuracy(train); evaluated > 0 {
			fmt.Printf("out-of-bag accuracy estimate: %.3f (%d samples evaluable)\n", oob, evaluated)
		}
	case *device:
		tc := hdc.TrainConfig{
			Dim: *dim, Epochs: *epochs, LearningRate: float32(*lr),
			Nonlinear: !*linear, Seed: *seed,
		}
		var res *pipeline.FunctionalResult
		var err error
		if *faults != "" {
			plan, perr := edgetpu.ParseFaultPlan(*faults, *faultSeed)
			if perr != nil {
				fail(perr.Error())
			}
			var report *pipeline.ReliabilityReport
			res, report, err = pipeline.TrainOnDeviceResilient(pipeline.EdgeTPU(), train, tc, plan, pipeline.DefaultRecoveryPolicy())
			if err == nil {
				fmt.Println(report)
			}
		} else {
			res, err = pipeline.TrainOnDevice(pipeline.EdgeTPU(), train, tc)
		}
		if err != nil {
			fail(err.Error())
		}
		model = res.Model
		fmt.Printf("device encoding: %v simulated accelerator time (%d MMACs)\n",
			res.DeviceTime.Total().Round(time.Microsecond), res.DeviceTime.MACs/1e6)
	default:
		m, stats, err := hdc.Train(train, nil, hdc.TrainConfig{
			Dim: *dim, Epochs: *epochs, LearningRate: float32(*lr),
			Nonlinear: !*linear, Seed: *seed,
		})
		if err != nil {
			fail(err.Error())
		}
		model = m
		last := stats.Epochs[len(stats.Epochs)-1]
		fmt.Printf("final training accuracy: %.3f\n", last.TrainAccuracy)
	}
	fmt.Printf("wall-clock training time: %v\n", time.Since(start).Round(time.Millisecond))

	if err := model.Save(*out); err != nil {
		fail(err.Error())
	}
	fmt.Printf("wrote %s (d=%d, k=%d)\n", *out, model.Dim(), model.K())

	if *binarize != "" {
		bm := model.Binarize()
		if err := bm.Save(*binarize); err != nil {
			fail(err.Error())
		}
		fmt.Printf("wrote %s (%d bytes of packed class hypervectors)\n", *binarize, bm.Bytes())
	}
}

func loadDataset(path string) (*dataset.Dataset, error) {
	if len(path) > 4 && path[len(path)-4:] == ".csv" {
		return dataset.LoadCSV(path, 0)
	}
	return dataset.LoadBinary(path)
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "hdc-train:", msg)
	os.Exit(2)
}
