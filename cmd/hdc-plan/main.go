// Command hdc-plan evaluates whether a workload is worth deploying on the
// Edge TPU platform: it models training and inference time and energy for
// the CPU baseline and the co-design framework, and renders a verdict —
// the decision procedure behind the paper's Fig 10 discussion.
//
// Usage:
//
//	hdc-plan -name MNIST
//	hdc-plan -features 27 -samples 32768 -classes 5
//	hdc-plan -name ISOLET -dim 10000 -epochs 20 -batch 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hdcedge/internal/bagging"
	"hdcedge/internal/dataset"
	"hdcedge/internal/pipeline"
)

func main() {
	name := flag.String("name", "", "catalog dataset (Table I)")
	features := flag.Int("features", 0, "custom workload: feature count")
	samples := flag.Int("samples", 10000, "custom workload: sample count")
	classes := flag.Int("classes", 8, "custom workload: class count")
	dim := flag.Int("dim", 0, "hypervector width (default 10000)")
	epochs := flag.Int("epochs", 20, "training iterations")
	batch := flag.Int("batch", pipeline.DefaultBatch, "accelerator encode batch")
	flag.Parse()

	var spec dataset.Spec
	switch {
	case *name != "":
		s, err := dataset.CatalogSpec(strings.ToUpper(*name))
		if err != nil {
			fail(err.Error())
		}
		spec = s
	case *features > 0:
		spec = dataset.SyntheticSpec(*features, *samples, *classes, 1)
	default:
		fail("need -name or -features")
	}

	w := pipeline.FromSpec(spec, *epochs)
	if *dim > 0 {
		w.Dim = *dim
	}
	w.Batch = *batch

	plan, err := pipeline.Plan(pipeline.CPUBaseline(), pipeline.EdgeTPU(), w, bagging.DefaultConfig())
	if err != nil {
		fail(err.Error())
	}
	fmt.Print(plan.Render())
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "hdc-plan:", msg)
	os.Exit(2)
}
