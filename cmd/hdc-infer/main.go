// Command hdc-infer classifies a dataset with a saved HDC model.
//
// Usage:
//
//	hdc-infer -model model.hdm -data test.bin [-device] [-batch 8]
//	          [-faults "link=0.05"] [-fault-seed 1] [-confusion]
//
// With -device, classification runs through the quantized wide-NN model on
// the simulated Edge TPU and the per-phase timing is reported; otherwise
// the float model runs on the host. With -faults, the device is driven under
// a seeded fault plan and the resilient runtime keeps the run alive.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
)

func main() {
	modelPath := flag.String("model", "", "saved model path (required)")
	data := flag.String("data", "", "dataset to classify (required)")
	device := flag.Bool("device", false, "run on the simulated Edge TPU")
	batch := flag.Int("batch", pipeline.DefaultInferBatch, "device invoke batch")
	confusion := flag.Bool("confusion", false, "print the confusion matrix")
	profile := flag.Bool("profile", false, "with -device: print the per-op execution profile")
	faults := flag.String("faults", "", "with -device: fault plan, e.g. \"link=0.05,seu=1e-6\"")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the fault-injection stream")
	flag.Parse()

	if *modelPath == "" || *data == "" {
		fail("need -model and -data")
	}
	model, err := hdc.LoadModel(*modelPath)
	if err != nil {
		fail(err.Error())
	}
	ds, err := loadDataset(*data)
	if err != nil {
		fail(err.Error())
	}
	if ds.Features() != model.Encoder.Features() {
		fail(fmt.Sprintf("dataset has %d features, model expects %d", ds.Features(), model.Encoder.Features()))
	}

	var preds []int
	start := time.Now()
	if *device {
		plat := pipeline.EdgeTPU()
		var p []int
		var timing pipeline.DeviceTiming
		var err error
		if *faults != "" {
			plan, perr := edgetpu.ParseFaultPlan(*faults, *faultSeed)
			if perr != nil {
				fail(perr.Error())
			}
			var report *pipeline.ReliabilityReport
			p, timing, report, err = pipeline.InferOnDeviceResilient(plat, model, ds, ds, *batch, plan, pipeline.DefaultRecoveryPolicy())
			if err == nil {
				fmt.Println(report)
			}
		} else if *profile {
			var prof *pipeline.DeviceProfiler
			p, timing, prof, err = pipeline.InferOnDeviceProfiled(plat, model, ds, ds, *batch)
			if err == nil {
				fmt.Print(prof.Report(*plat.Accel))
			}
		} else {
			p, timing, err = pipeline.InferOnDevice(plat, model, ds, ds, *batch)
		}
		if err != nil {
			fail(err.Error())
		}
		preds = p
		fmt.Printf("simulated device time: total=%v host=%v transfer=%v compute=%v\n",
			timing.Total().Round(time.Microsecond),
			timing.Host.Round(time.Microsecond),
			(timing.TransferIn + timing.TransferOut).Round(time.Microsecond),
			timing.Compute.Round(time.Microsecond))
	} else {
		preds = model.PredictBatch(ds.X)
	}
	fmt.Printf("wall-clock inference time: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("accuracy: %s (%d samples)\n", metrics.FmtPct(metrics.Accuracy(preds, ds.Y)), ds.Samples())

	if *confusion {
		cm := metrics.NewConfusionMatrix(model.K(), preds, ds.Y)
		fmt.Println("confusion matrix (rows = true class):")
		for _, row := range cm.Counts {
			for _, c := range row {
				fmt.Printf(" %6d", c)
			}
			fmt.Println()
		}
	}
}

func loadDataset(path string) (*dataset.Dataset, error) {
	if len(path) > 4 && path[len(path)-4:] == ".csv" {
		return dataset.LoadCSV(path, 0)
	}
	return dataset.LoadBinary(path)
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "hdc-infer:", msg)
	os.Exit(2)
}
