// Command tpu-compile converts a saved HDC model into a quantized wide-NN
// model compiled for the simulated Edge TPU, in the spirit of the
// edgetpu_compiler toolchain.
//
// Usage:
//
//	tpu-compile -model model.hdm -calib train.bin -out model.htfl
//	            [-batch 8] [-encoder-only]
//
// It prints the operator placement report (which ops map to the
// accelerator, parameter residency, per-invoke transfer sizes) and writes
// the quantized tflite-style model file.
package main

import (
	"flag"
	"fmt"
	"os"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/nnmap"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/tflite"
)

func main() {
	modelPath := flag.String("model", "", "saved HDC model (required)")
	calib := flag.String("calib", "", "representative dataset for quantization (required)")
	out := flag.String("out", "", "output model path (required)")
	batch := flag.Int("batch", pipeline.DefaultInferBatch, "model batch size")
	encoderOnly := flag.Bool("encoder-only", false, "compile only the encoding half (training path)")
	disasm := flag.Bool("disasm", false, "print the tile-level device program")
	summary := flag.Bool("summary", false, "print the model's structural summary")
	flag.Parse()

	if *modelPath == "" || *calib == "" || *out == "" {
		fail("need -model, -calib and -out")
	}
	model, err := hdc.LoadModel(*modelPath)
	if err != nil {
		fail(err.Error())
	}
	ds, err := loadDataset(*calib)
	if err != nil {
		fail(err.Error())
	}

	var floatModel *tflite.Model
	if *encoderOnly {
		floatModel, err = nnmap.BuildEncoderModel(model.Encoder, *batch)
	} else {
		floatModel, err = nnmap.BuildInferenceModel(model, *batch)
	}
	if err != nil {
		fail(err.Error())
	}
	qm, err := nnmap.QuantizeForTPU(floatModel, ds, *batch, 8)
	if err != nil {
		fail(err.Error())
	}
	cm, err := edgetpu.Compile(qm, edgetpu.DefaultUSB())
	if err != nil {
		fail(err.Error())
	}
	fmt.Print(cm.Report())
	if *summary {
		fmt.Print(qm.Summary())
	}
	if *disasm {
		fmt.Print(cm.Disassemble())
		fmt.Print(cm.MemoryMap())
	}
	if err := qm.Save(*out); err != nil {
		fail(err.Error())
	}
	fmt.Printf("wrote %s (%d bytes of parameters)\n", *out, qm.ParamBytes())
}

func loadDataset(path string) (*dataset.Dataset, error) {
	if len(path) > 4 && path[len(path)-4:] == ".csv" {
		return dataset.LoadCSV(path, 0)
	}
	return dataset.LoadBinary(path)
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "tpu-compile:", msg)
	os.Exit(2)
}
