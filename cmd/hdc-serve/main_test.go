package main

import (
	"errors"
	"testing"
	"time"

	"hdcedge/internal/integrity"
	"hdcedge/internal/registry"
	"hdcedge/internal/router"
)

// validOptions returns a baseline that passes validation; tests perturb one
// field at a time.
func validOptions() *options {
	return &options{
		devices:  4,
		queue:    8,
		deadline: 250 * time.Millisecond,
		drain:    2 * time.Second,
		requests: 400,
		load:     2.0,
		pace:     4 * time.Millisecond,
		batch:    1,
		dim:      512,
		epochs:   3,
		nodes:    1,
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := validOptions().validate(); err != nil {
		t.Fatalf("baseline options rejected: %v", err)
	}
}

// TestValidateRejections drives every flag-level rejection and pins the
// typed error to the offending flag name.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(o *options)
		wantArg string
	}{
		{"zero requests", func(o *options) { o.requests = 0 }, "requests"},
		{"negative requests", func(o *options) { o.requests = -5 }, "requests"},
		{"zero load", func(o *options) { o.load = 0 }, "load"},
		{"negative load", func(o *options) { o.load = -1 }, "load"},
		{"zero devices", func(o *options) { o.devices = 0 }, "devices"},
		{"negative queue", func(o *options) { o.queue = -1 }, "queue"},
		{"negative deadline", func(o *options) { o.deadline = -time.Second }, "deadline"},
		{"negative drain", func(o *options) { o.drain = -time.Second }, "drain"},
		{"negative pace", func(o *options) { o.pace = -time.Millisecond }, "pace"},
		{"negative pace-scale", func(o *options) { o.paceScale = -0.5 }, "pace-scale"},
		{"zero batch", func(o *options) { o.batch = 0 }, "batch"},
		{"negative window", func(o *options) { o.window = -time.Millisecond }, "window"},
		{"window without batching", func(o *options) { o.window = time.Millisecond; o.batch = 1 }, "window"},
		{"zero dim", func(o *options) { o.dim = 0 }, "dim"},
		{"zero epochs", func(o *options) { o.epochs = 0 }, "epochs"},
		{"bad fleet class", func(o *options) { o.fleetSpec = "gpu=2" }, "fleet"},
		{"bad fleet count", func(o *options) { o.fleetSpec = "tpu=-1" }, "fleet"},
		{"bad fault plan", func(o *options) { o.faults = "nonsense=??" }, "faults"},
		{"zero nodes", func(o *options) { o.nodes = 0 }, "nodes"},
		{"negative nodes", func(o *options) { o.nodes = -2 }, "nodes"},
		{"negative probe", func(o *options) { o.probe = -time.Millisecond }, "probe"},
		{"negative scrub interval", func(o *options) { o.scrubInterval = -time.Millisecond }, "scrub-interval"},
		{"negative canary count", func(o *options) { o.canaryCount = -1 }, "canary"},
		{"canaries without an interval", func(o *options) { o.canaryCount = 2; o.canaryInterval = 0 }, "canary-interval"},
		{"bad chaos mode", func(o *options) { o.nodes = 4; o.chaosSpec = "0:melt" }, "chaos"},
		{"chaos node out of range", func(o *options) { o.nodes = 2; o.chaosSpec = "3:crash" }, "chaos"},
		{"bad hedge spec", func(o *options) { o.hedgeSpec = "soon" }, "hedge"},
		{"negative hedge delay", func(o *options) { o.hedgeSpec = "-5ms" }, "hedge"},
		{"listen behind router", func(o *options) { o.nodes = 4; o.listen = ":8080" }, "listen"},
		{"bad model spec", func(o *options) { o.modelSpec = "a;;b" }, "models"},
		{"bad model dim", func(o *options) { o.modelSpec = "a=d0" }, "models"},
		{"bad tenant spec", func(o *options) { o.tenantSpec = "a=w0" }, "tenants"},
		{"duplicate tenant", func(o *options) { o.tenantSpec = "a;a" }, "tenants"},
		{"negative mem budget", func(o *options) { o.modelSpec = "a;b"; o.memBudget = -1 }, "mem-budget"},
		{"mem budget without models", func(o *options) { o.memBudget = 1 << 20 }, "mem-budget"},
		{"unknown mem policy", func(o *options) { o.modelSpec = "a;b"; o.memPolicy = "fifo" }, "mem-policy"},
		{"bad online spec", func(o *options) { o.onlineSpec = "zzz=1" }, "online"},
		{"feedback rate above one", func(o *options) { o.onlineSpec = "on"; o.feedbackRate = 1.5 }, "feedback-rate"},
		{"feedback rate below zero", func(o *options) { o.onlineSpec = "on"; o.feedbackRate = -0.1 }, "feedback-rate"},
		{"feedback sampling needs online", func(o *options) { o.feedbackRate = 0.5 }, "feedback-rate"},
		{"drift window needs online", func(o *options) { o.driftWindow = 64 }, "drift-window"},
		{"drift window of one", func(o *options) { o.onlineSpec = "on"; o.driftWindow = 1 }, "drift-window"},
		{"drift threshold needs online", func(o *options) { o.driftThreshold = 0.2 }, "drift-threshold"},
		{"drift threshold at one", func(o *options) { o.onlineSpec = "on"; o.driftThreshold = 1 }, "drift-threshold"},
		{"online behind router", func(o *options) { o.onlineSpec = "on"; o.nodes = 4 }, "online"},
		{"online spec batch conflict", func(o *options) { o.onlineSpec = "batch=4" }, "online"},
		{"online override breaks buffer", func(o *options) { o.onlineSpec = "buffer=64"; o.driftWindow = 128 }, "online"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOptions()
			tc.mutate(o)
			err := o.validate()
			if err == nil {
				t.Fatalf("expected a validation error")
			}
			var fe *flagError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v (%T) is not a *flagError", err, err)
			}
			if fe.flag != tc.wantArg {
				t.Fatalf("error blames -%s, want -%s (%v)", fe.flag, tc.wantArg, err)
			}
		})
	}
}

// TestValidateParsesStructuredFlags checks the happy path for -fleet and
// -faults: validation parses them into the options.
func TestValidateParsesStructuredFlags(t *testing.T) {
	o := validOptions()
	o.fleetSpec = "tpu=2,cpu=2"
	o.faults = "link=0.05"
	if err := o.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if got := len(o.fleet); got != 4 {
		t.Fatalf("fleet has %d workers, want 4", got)
	}
	if o.workers() != 4 {
		t.Fatalf("workers() = %d, want 4", o.workers())
	}
	cfg := o.config()
	if len(cfg.Fleet) != 4 || cfg.Devices != 0 {
		t.Fatalf("config fleet %v devices %d, want 4-worker fleet", cfg.Fleet, cfg.Devices)
	}
}

// TestValidateParsesRouterFlags checks the happy path for the routing-tier
// flags: chaos plans land on their nodes with the fault seed, and the
// hedge spec parses into an enabled HedgeConfig.
func TestValidateParsesRouterFlags(t *testing.T) {
	o := validOptions()
	o.nodes = 4
	o.faultSeed = 11
	o.chaosSpec = "0:crash,1:slow=8"
	o.hedgeSpec = "12ms"
	if err := o.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !o.routed() {
		t.Fatal("routed() false with -nodes 4")
	}
	if len(o.chaos) != 2 {
		t.Fatalf("parsed %d chaos plans, want 2", len(o.chaos))
	}
	if got := o.chaos[1]; got.Mode != router.ChaosSlow || got.Factor != 8 {
		t.Fatalf("node 1 plan %+v, want slow=8", got)
	}
	if got := o.chaos[0].Seed; got != 11 {
		t.Fatalf("node 0 chaos seed %d, want faultSeed 11", got)
	}
	if !o.hedge.Enabled || o.hedge.Delay != 12*time.Millisecond {
		t.Fatalf("hedge config %+v, want enabled with 12ms delay", o.hedge)
	}

	o = validOptions()
	o.hedgeSpec = "adaptive"
	if err := o.validate(); err != nil {
		t.Fatalf("validate adaptive hedge: %v", err)
	}
	if !o.hedge.Enabled || o.hedge.Delay != 0 {
		t.Fatalf("adaptive hedge config %+v, want enabled with p99-tracking delay", o.hedge)
	}
	if !o.routed() {
		t.Fatal("routed() false with -hedge on a single node")
	}
}

// TestValidateIntegrityFlags checks the happy path for the integrity flags:
// scrubbing alone, canaries with their interval, and that the built policy
// (attached in main after model compile) flows into the serve config.
func TestValidateIntegrityFlags(t *testing.T) {
	o := validOptions()
	o.scrubInterval = 50 * time.Millisecond
	o.canaryCount = 4
	o.canaryInterval = 10 * time.Millisecond
	if err := o.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if cfg := o.config(); cfg.Integrity != nil {
		t.Fatalf("config carries a policy before main builds one: %+v", cfg.Integrity)
	}
	o.integrity = &integrity.Policy{ScrubInterval: o.scrubInterval}
	if cfg := o.config(); cfg.Integrity != o.integrity {
		t.Fatal("config does not carry the built integrity policy")
	}

	// Canary interval only matters when canaries are requested.
	o = validOptions()
	o.canaryInterval = 0
	if err := o.validate(); err != nil {
		t.Fatalf("zero canary-interval with no canaries rejected: %v", err)
	}
}

// TestValidateParsesTenancyFlags checks the happy path for -models,
// -tenants, -mem-budget and -mem-policy, and that annotate round-robins
// requests across both axes.
func TestValidateParsesTenancyFlags(t *testing.T) {
	o := validOptions()
	o.modelSpec = "main;wide=d1024"
	o.tenantSpec = "prod=w4,p1,q64,d50ms;batch"
	o.memBudget = 4 << 20
	o.memPolicy = "pin"
	if err := o.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if len(o.models) != 2 || o.models[1].Dim != 1024 {
		t.Fatalf("parsed models %+v", o.models)
	}
	if len(o.tenants) != 2 || o.tenants[0].Weight != 4 || o.tenants[0].Priority != 1 ||
		o.tenants[0].Quota != 64 || o.tenants[0].Deadline != 50*time.Millisecond {
		t.Fatalf("parsed tenants %+v", o.tenants)
	}
	if o.policy != registry.PinFirst {
		t.Fatalf("mem policy %v, want pin-first", o.policy)
	}
	cfg := o.config()
	if cfg.MemBudget != 4<<20 || cfg.MemPolicy != registry.PinFirst || len(cfg.Tenants) != 2 {
		t.Fatalf("config lost tenancy values: %+v", cfg)
	}
	// annotate round-robins both axes independently.
	r0, r1, r2 := o.annotate(0), o.annotate(1), o.annotate(2)
	if r0.Tenant != "prod" || r0.Model != "main" ||
		r1.Tenant != "batch" || r1.Model != "wide" ||
		r2.Tenant != "prod" || r2.Model != "main" {
		t.Fatalf("annotate sequence %+v %+v %+v", r0, r1, r2)
	}
}

// TestValidateParsesOnlineFlags checks the happy path for -online and its
// companion flags: the spec parses into a Config, the -drift-window and
// -drift-threshold overrides win over spec values, and the published
// snapshot batch is forced to the serving -batch.
func TestValidateParsesOnlineFlags(t *testing.T) {
	o := validOptions()
	o.onlineSpec = "lr=0.5,window=16,every=8,bin"
	o.feedbackRate = 0.25
	o.driftWindow = 32
	o.driftThreshold = 0.25
	if err := o.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	cfg := o.online
	if cfg == nil {
		t.Fatal("validate left o.online nil with -online set")
	}
	if cfg.LearningRate != 0.5 || cfg.SnapshotEvery != 8 || !cfg.Binarize {
		t.Fatalf("spec values lost: %+v", cfg)
	}
	if cfg.DriftWindow != 32 || cfg.DriftThreshold != 0.25 {
		t.Fatalf("overrides did not win over spec: window %d threshold %g",
			cfg.DriftWindow, cfg.DriftThreshold)
	}
	if cfg.Batch != o.batch {
		t.Fatalf("snapshot batch %d, want serving batch %d", cfg.Batch, o.batch)
	}

	// "on" is all defaults; -feedback-rate 0 (no sampling) and 1 (all
	// requests) are legal without any drift tuning.
	o = validOptions()
	o.onlineSpec = "on"
	o.feedbackRate = 0
	if err := o.validate(); err != nil {
		t.Fatalf("validate -online on: %v", err)
	}
	if o.online == nil || o.online.Batch != o.batch {
		t.Fatalf("default spec config %+v", o.online)
	}
}

// TestParseFlags exercises the end-to-end flag path: parse failure from the
// flag package, validation failure, and success.
func TestParseFlags(t *testing.T) {
	if _, err := parseFlags([]string{"-requests", "0"}); err == nil {
		t.Fatal("parseFlags accepted -requests 0")
	}
	if _, err := parseFlags([]string{"-window", "-1ms", "-batch", "4"}); err == nil {
		t.Fatal("parseFlags accepted negative -window")
	}
	if _, err := parseFlags([]string{"-feedback-rate", "0.5"}); err == nil {
		t.Fatal("parseFlags accepted -feedback-rate without -online")
	}
	o, err := parseFlags([]string{"-batch", "4", "-window", "2ms", "-fleet", "tpu=1,cpu=1",
		"-scrub-interval", "40ms", "-canary", "2", "-online", "on", "-feedback-rate", "0.5"})
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	if o.batch != 4 || o.window != 2*time.Millisecond || len(o.fleet) != 2 {
		t.Fatalf("parsed options %+v lost flag values", o)
	}
	if o.scrubInterval != 40*time.Millisecond || o.canaryCount != 2 || o.canaryInterval != 25*time.Millisecond {
		t.Fatalf("parsed options %+v lost integrity flag values", o)
	}
	if o.online == nil || o.online.Batch != 4 || o.feedbackRate != 0.5 {
		t.Fatalf("parsed options lost online flag values: online %+v rate %g", o.online, o.feedbackRate)
	}
}
