// Command hdc-serve runs the request-level serving runtime against a
// simulated fleet — all Edge TPU by default, or a heterogeneous TPU+CPU
// mix via -fleet — and reports what happened under load.
//
// Usage:
//
//	hdc-serve [-data test.bin] [-devices 4] [-fleet "tpu=2,cpu=2"]
//	          [-queue 8] [-deadline 250ms]
//	          [-drain 2s] [-requests 400] [-load 2.0] [-pace 4ms]
//	          [-batch 1] [-window 0] [-pace-scale 0]
//	          [-faults "link=0.05"] [-fault-seed 1] [-seed 7]
//
// Without -data, a synthetic dataset is generated and a tiny model is
// trained on it. Requests arrive open-loop at -load times the fleet's
// service capacity; each classifies one dataset row through the bounded
// admission queue. With -batch > 1 the model compiles at that batch
// capacity and workers coalesce up to -batch queued requests into one
// device invoke, holding an underfull batch open for up to -window.
// With -fleet, the pool mixes accelerator and host-CPU workers; fault
// plans apply to the accelerator workers only. The run ends with a
// graceful drain and the serving report: admission/shed/deadline counters,
// latency quantiles, batch occupancy, per-backend throughput/latency
// breakdowns, per-worker breaker health. See docs/serving.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/serve"
	"hdcedge/internal/tensor"
)

func main() {
	data := flag.String("data", "", "dataset to serve (synthetic when empty)")
	devices := flag.Int("devices", 4, "simulated devices (workers)")
	fleetSpec := flag.String("fleet", "", "heterogeneous worker fleet, e.g. \"tpu=2,cpu=2\" (overrides -devices)")
	queue := flag.Int("queue", 8, "admission queue capacity (0 = unbounded)")
	deadline := flag.Duration("deadline", 250*time.Millisecond, "default per-request deadline (0 = none)")
	drain := flag.Duration("drain", 2*time.Second, "graceful-drain deadline (0 = wait forever)")
	requests := flag.Int("requests", 400, "requests to offer")
	load := flag.Float64("load", 2.0, "offered load as a multiple of fleet capacity")
	pace := flag.Duration("pace", 4*time.Millisecond, "emulated per-invoke device occupancy")
	batch := flag.Int("batch", 1, "max requests coalesced into one device invoke")
	window := flag.Duration("window", 0, "how long to hold an underfull batch open")
	paceScale := flag.Float64("pace-scale", 0, "extra occupancy per invoke as a multiple of its simulated cost")
	faults := flag.String("faults", "", "fault plan for every device, e.g. \"link=0.05\"")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the fault-injection streams")
	seed := flag.Uint64("seed", 7, "training / synthetic-data seed")
	dim := flag.Int("dim", 512, "hypervector dimension for the trained model")
	epochs := flag.Int("epochs", 3, "training epochs")
	flag.Parse()

	if *load <= 0 || *requests <= 0 || *devices <= 0 {
		fail("-load, -requests and -devices must be positive")
	}
	if *batch < 1 {
		fail("-batch must be at least 1")
	}
	var fleet serve.FleetSpec
	if *fleetSpec != "" {
		var err error
		if fleet, err = serve.ParseFleet(*fleetSpec); err != nil {
			fail(err.Error())
		}
	}
	ds, err := loadDataset(*data, *seed)
	if err != nil {
		fail(err.Error())
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: *dim, Epochs: *epochs, LearningRate: 1, Nonlinear: true, Seed: *seed,
	})
	if err != nil {
		fail(err.Error())
	}
	p := pipeline.EdgeTPU()
	cm, err := pipeline.CompileInference(p, model, ds, *batch)
	if err != nil {
		fail(err.Error())
	}

	var plan edgetpu.FaultPlan
	if *faults != "" {
		plan, err = edgetpu.ParseFaultPlan(*faults, *faultSeed)
		if err != nil {
			fail(err.Error())
		}
	}
	cfg := serve.Config{
		QueueCapacity:   *queue,
		DefaultDeadline: *deadline,
		DrainDeadline:   *drain,
		Plan:            plan,
		PacePerInvoke:   *pace,
		PaceScale:       *paceScale,
		MaxBatch:        *batch,
		BatchWindow:     *window,
	}
	workers := *devices
	if len(fleet) > 0 {
		cfg.Fleet = fleet
		workers = len(fleet)
	} else {
		cfg.Devices = *devices
	}
	s, err := serve.New(p, cm, cfg)
	if err != nil {
		fail(err.Error())
	}

	fleetStr := cfg.Fleet.String()
	if len(cfg.Fleet) == 0 {
		fleetStr = fmt.Sprintf("tpu=%d", workers)
	}
	interarrival := time.Duration(float64(*pace) / (float64(workers) * *load))
	fmt.Printf("serving %d requests at %.1fx capacity (%d workers [%s], pace %v, interarrival %v)\n",
		*requests, *load, workers, fleetStr, *pace, interarrival)
	n := ds.Features()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *requests; i++ {
		// Pace against absolute deadlines so OS timer slack becomes small
		// catch-up bursts instead of silently capping the offered rate.
		if d := time.Until(start.Add(time.Duration(i) * interarrival)); d > 0 {
			time.Sleep(d)
		}
		row := i % ds.Samples()
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Sheds and deadline misses are expected under overload; the
			// final report accounts for every outcome.
			s.Do(context.Background(), func(in *tensor.Tensor) {
				copy(in.F32, ds.X.F32[row*n:(row+1)*n])
			}, nil)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err := s.Drain(context.Background()); err != nil {
		fmt.Printf("drain: %v\n", err)
	} else {
		fmt.Println("drain: clean")
	}
	rep := s.Report()
	fmt.Println(rep)
	fmt.Printf("goodput: %.0f req/s over %v (mean batch occupancy %.2f)\n",
		float64(rep.Completed)/elapsed.Seconds(), elapsed.Round(time.Millisecond),
		rep.MeanOccupancy())
	for _, b := range rep.Backends {
		fmt.Printf("  %s: %.0f req/s across %d worker(s), e2e p50=%s p99=%s\n",
			b.Name, float64(b.Requests)/elapsed.Seconds(), b.Workers,
			b.Latency.Quantile(0.5).Round(time.Microsecond),
			b.Latency.Quantile(0.99).Round(time.Microsecond))
	}
}

func loadDataset(path string, seed uint64) (*dataset.Dataset, error) {
	switch {
	case path == "":
		return dataset.Generate(dataset.SyntheticSpec(32, 256, 4, seed), 0)
	case len(path) > 4 && path[len(path)-4:] == ".csv":
		return dataset.LoadCSV(path, 0)
	default:
		return dataset.LoadBinary(path)
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "hdc-serve:", msg)
	os.Exit(2)
}
