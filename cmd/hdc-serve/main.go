// Command hdc-serve runs the request-level serving runtime against a
// simulated fleet — all Edge TPU by default, or a heterogeneous mix of
// backend classes via -fleet — and reports what happened under load.
//
// Usage:
//
//	hdc-serve [-data test.bin] [-devices 4] [-fleet "tpu=2,bin=2"]
//	          [-queue 8] [-deadline 250ms]
//	          [-drain 2s] [-requests 400] [-load 2.0] [-pace 4ms]
//	          [-batch 1] [-window 0] [-pace-scale 0]
//	          [-models "main;wide=d1024"] [-mem-budget 0] [-mem-policy lru]
//	          [-tenants "prod=w4,p1,q64,d50ms;batch=w1"]
//	          [-faults "link=0.05"] [-fault-seed 1] [-seed 7]
//	          [-scrub-interval 0] [-canary 0] [-canary-interval 25ms]
//	          [-online "lr=0.5,window=64"] [-feedback-rate 1]
//	          [-drift-window 0] [-drift-threshold 0]
//	          [-listen :8080]
//	          [-nodes 4] [-chaos "0:crash,1:slow=8"] [-hedge adaptive]
//	          [-probe 25ms]
//
// Without -data, a synthetic dataset is generated and a tiny model is
// trained on it. Requests arrive open-loop at -load times the fleet's
// service capacity; each classifies one dataset row through the bounded
// admission queue. With -batch > 1 the model compiles at that batch
// capacity and workers coalesce up to -batch queued requests into one
// device invoke, holding an underfull batch open for up to -window.
// With -fleet, the pool mixes backend classes — "tpu" (simulated Edge TPU),
// "cpu" (host int8 interpreter), and "bin" (the bit-packed binary-HDC
// engine serving the sign-quantized model; see docs/backends.md) — and
// fault plans apply to the accelerator workers only. With -listen, the live
// observability endpoints (/metrics, /snapshot, /traces, /debug/pprof)
// serve on that address for the duration of the run. The run ends with a
// graceful drain and the serving report: admission/shed/deadline counters,
// latency quantiles, batch occupancy, per-backend throughput/latency
// breakdowns, per-worker breaker health. See docs/serving.md and
// docs/observability.md.
//
// With -scrub-interval > 0 each worker periodically verifies its
// device-resident parameters against golden checksums; with -canary N,
// N held-out rows run as known-answer checks every -canary-interval.
// Either detector firing walks the self-healing repair ladder (segment
// re-upload → model reload → device reset → quarantine); the report gains
// the integrity accounting and any repair events. See docs/integrity.md.
//
// With -models, the run is multi-model: one classifier is trained and
// compiled per ';'-separated spec entry (at its own d<dim> when given, the
// -dim default otherwise), all registered in a model registry; requests
// round-robin across the models, each worker's on-chip parameter memory is
// simulated against -mem-budget bytes (0 = the device's own 8 MiB), and a
// request whose model is not resident pays its deterministic re-setup under
// the -mem-policy eviction discipline ("lru" or "pin" — pin-first-touch,
// the static baseline). With -tenants, admission is multi-tenant: requests
// round-robin across the configured tenants and dispatch follows strict
// priority plus weighted-fair queuing with per-tenant quotas and deadlines.
// The report gains per-tenant, per-model, and per-device-memory sections.
// See docs/multitenant.md.
//
// With -online, a feedback trainer runs beside the server: a -feedback-rate
// sampled fraction of completed requests report their ground-truth label
// back through a bounded non-blocking queue, the trainer applies
// confidence-weighted updates to a private model copy, and publishes
// versioned snapshots through the registry for workers to hot-bind. A
// drift detector (tunable via -drift-window / -drift-threshold or the spec
// itself) triggers dimension regeneration on sustained accuracy collapse.
// The run report gains the trainer's accounting, and /snapshot carries the
// hdc_online_* series. See docs/online.md.
//
// With -nodes > 1 (or -chaos / -hedge), the run goes through the routing
// tier instead: -nodes identical servers behind a health-checked
// least-loaded router with failover, optional hedged requests (-hedge),
// and node-grade chaos injection (-chaos, seeded by -fault-seed). The
// report becomes the router's fleet-level accounting plus per-node
// serving summaries. See docs/fleet.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"hdcedge/internal/backend/binhd"
	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/integrity"
	"hdcedge/internal/metrics"
	"hdcedge/internal/online"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/registry"
	"hdcedge/internal/rng"
	"hdcedge/internal/router"
	"hdcedge/internal/serve"
	"hdcedge/internal/tensor"
)

// flagError is a CLI validation failure tied to one flag, so tests (and
// error messages) can pin down exactly which input was rejected.
type flagError struct {
	flag   string // flag name without the leading dash
	reason string
}

func (e *flagError) Error() string { return "-" + e.flag + ": " + e.reason }

// options is every CLI input, collected so validation is testable apart
// from flag.Parse and os.Exit.
type options struct {
	data      string
	devices   int
	fleetSpec string
	queue     int
	deadline  time.Duration
	drain     time.Duration
	requests  int
	load      float64
	pace      time.Duration
	batch     int
	window    time.Duration
	paceScale float64
	faults    string
	faultSeed uint64
	seed      uint64
	dim       int
	epochs    int
	listen    string
	nodes     int
	chaosSpec string
	hedgeSpec string
	probe     time.Duration

	modelSpec  string
	tenantSpec string
	memBudget  int
	memPolicy  string

	scrubInterval  time.Duration
	canaryCount    int
	canaryInterval time.Duration

	onlineSpec     string
	feedbackRate   float64
	driftWindow    int
	driftThreshold float64

	// Parsed by validate.
	fleet   serve.FleetSpec
	plan    edgetpu.FaultPlan
	chaos   map[int]router.ChaosPlan
	hedge   router.HedgeConfig
	models  []serve.ModelSpec
	tenants []serve.TenantSpec
	policy  registry.EvictPolicy
	online  *online.Config

	// Built in main when -models is set: one trained+compiled classifier
	// per spec entry, behind its registry ID.
	registry *registry.Registry

	// Built in main once the model is compiled (canaries need golden
	// answers recorded through the real graph).
	integrity *integrity.Policy

	// Built in main when the fleet has bin-class workers: the trained
	// model's sign-quantized deployment form.
	bipolar *hdc.BipolarModel

	// Built in main when -online is set: the shared telemetry registry
	// (serving and trainer metrics on one /snapshot surface) and the
	// trained models the feedback trainer adapts.
	metrics *metrics.Registry
	trained []trainedModel
}

// trainedModel pairs a registry ID with its host-side trained model, kept
// (only when -online is set) so the feedback trainer can adapt a private
// copy of what was compiled and registered.
type trainedModel struct {
	name  string
	model *hdc.Model
}

// routed reports whether the run goes through the routing tier rather
// than a single bare server.
func (o *options) routed() bool {
	return o.nodes > 1 || o.chaosSpec != "" || o.hedgeSpec != ""
}

// validate checks every option and parses the structured ones (-fleet,
// -faults). Each failure is a *flagError naming the offending flag.
func (o *options) validate() error {
	if o.requests <= 0 {
		return &flagError{"requests", fmt.Sprintf("must be positive, got %d", o.requests)}
	}
	if o.load <= 0 {
		return &flagError{"load", fmt.Sprintf("must be positive, got %g", o.load)}
	}
	if o.devices <= 0 {
		return &flagError{"devices", fmt.Sprintf("must be positive, got %d", o.devices)}
	}
	if o.queue < 0 {
		return &flagError{"queue", fmt.Sprintf("must be non-negative (0 = unbounded), got %d", o.queue)}
	}
	if o.deadline < 0 {
		return &flagError{"deadline", fmt.Sprintf("must be non-negative, got %v", o.deadline)}
	}
	if o.drain < 0 {
		return &flagError{"drain", fmt.Sprintf("must be non-negative, got %v", o.drain)}
	}
	if o.pace < 0 {
		return &flagError{"pace", fmt.Sprintf("must be non-negative, got %v", o.pace)}
	}
	if o.paceScale < 0 {
		return &flagError{"pace-scale", fmt.Sprintf("must be non-negative, got %g", o.paceScale)}
	}
	if o.batch < 1 {
		return &flagError{"batch", fmt.Sprintf("must be at least 1, got %d", o.batch)}
	}
	if o.window < 0 {
		return &flagError{"window", fmt.Sprintf("must be non-negative, got %v", o.window)}
	}
	if o.window > 0 && o.batch < 2 {
		return &flagError{"window", fmt.Sprintf("needs -batch > 1 to hold a batch open, got -batch %d", o.batch)}
	}
	if o.dim <= 0 {
		return &flagError{"dim", fmt.Sprintf("must be positive, got %d", o.dim)}
	}
	if o.epochs <= 0 {
		return &flagError{"epochs", fmt.Sprintf("must be positive, got %d", o.epochs)}
	}
	if o.nodes <= 0 {
		return &flagError{"nodes", fmt.Sprintf("must be positive, got %d", o.nodes)}
	}
	if o.probe < 0 {
		return &flagError{"probe", fmt.Sprintf("must be non-negative (0 = no probing), got %v", o.probe)}
	}
	if o.scrubInterval < 0 {
		return &flagError{"scrub-interval", fmt.Sprintf("must be non-negative (0 = no scrubbing), got %v", o.scrubInterval)}
	}
	if o.canaryCount < 0 {
		return &flagError{"canary", fmt.Sprintf("must be non-negative (0 = no canaries), got %d", o.canaryCount)}
	}
	if o.canaryInterval <= 0 && o.canaryCount > 0 {
		return &flagError{"canary-interval", fmt.Sprintf("must be positive with -canary %d, got %v", o.canaryCount, o.canaryInterval)}
	}
	if o.listen != "" && o.routed() {
		return &flagError{"listen", "the observability endpoint is single-node; not available behind the router"}
	}
	if o.fleetSpec != "" {
		fleet, err := serve.ParseFleet(o.fleetSpec)
		if err != nil {
			return &flagError{"fleet", err.Error()}
		}
		o.fleet = fleet
	}
	if o.faults != "" {
		plan, err := edgetpu.ParseFaultPlan(o.faults, o.faultSeed)
		if err != nil {
			return &flagError{"faults", err.Error()}
		}
		o.plan = plan
	}
	if o.chaosSpec != "" {
		plans, err := router.ParseChaos(o.chaosSpec, o.faultSeed)
		if err != nil {
			return &flagError{"chaos", err.Error()}
		}
		for idx := range plans {
			if idx >= o.nodes {
				return &flagError{"chaos", fmt.Sprintf("plan targets node %d but -nodes is %d", idx, o.nodes)}
			}
		}
		o.chaos = plans
	}
	switch o.hedgeSpec {
	case "":
	case "adaptive":
		o.hedge = router.HedgeConfig{Enabled: true}
	default:
		d, err := time.ParseDuration(o.hedgeSpec)
		if err != nil || d <= 0 {
			return &flagError{"hedge", fmt.Sprintf("want \"adaptive\" or a positive duration, got %q", o.hedgeSpec)}
		}
		o.hedge = router.HedgeConfig{Enabled: true, Delay: d}
	}
	if o.modelSpec != "" {
		models, err := serve.ParseModels(o.modelSpec)
		if err != nil {
			return &flagError{"models", err.Error()}
		}
		o.models = models
	}
	if o.tenantSpec != "" {
		tenants, err := serve.ParseTenants(o.tenantSpec)
		if err != nil {
			return &flagError{"tenants", err.Error()}
		}
		o.tenants = tenants
	}
	if o.memBudget < 0 {
		return &flagError{"mem-budget", fmt.Sprintf("must be non-negative (0 = device default), got %d", o.memBudget)}
	}
	switch o.memPolicy {
	case "", "lru":
		o.policy = registry.EvictLRU
	case "pin":
		o.policy = registry.PinFirst
	default:
		return &flagError{"mem-policy", fmt.Sprintf("want \"lru\" or \"pin\", got %q", o.memPolicy)}
	}
	if (o.memBudget > 0 || o.memPolicy != "") && len(o.models) == 0 {
		return &flagError{"mem-budget", "device-memory simulation needs -models"}
	}
	if o.feedbackRate < 0 || o.feedbackRate > 1 {
		return &flagError{"feedback-rate", fmt.Sprintf("must be in [0, 1], got %g", o.feedbackRate)}
	}
	if o.driftWindow < 0 || o.driftWindow == 1 {
		return &flagError{"drift-window", fmt.Sprintf("must be 0 (spec default) or at least 2, got %d", o.driftWindow)}
	}
	if o.driftThreshold < 0 || o.driftThreshold >= 1 {
		return &flagError{"drift-threshold", fmt.Sprintf("must be in [0, 1) (0 = spec default), got %g", o.driftThreshold)}
	}
	if o.onlineSpec == "" {
		switch {
		case o.feedbackRate != 0 && o.feedbackRate != 1:
			return &flagError{"feedback-rate", "feedback sampling needs -online"}
		case o.driftWindow != 0:
			return &flagError{"drift-window", "drift tuning needs -online"}
		case o.driftThreshold != 0:
			return &flagError{"drift-threshold", "drift tuning needs -online"}
		}
		return nil
	}
	if o.routed() {
		return &flagError{"online", "online learning is single-node; not available behind the router"}
	}
	cfg, err := online.ParseSpec(o.onlineSpec)
	if err != nil {
		return &flagError{"online", err.Error()}
	}
	// -drift-window / -drift-threshold override the spec, then the merged
	// config revalidates (an override can break a cross-field constraint,
	// e.g. a buffer smaller than the window).
	if o.driftWindow != 0 {
		cfg.DriftWindow = o.driftWindow
	}
	if o.driftThreshold != 0 {
		cfg.DriftThreshold = o.driftThreshold
	}
	// Published snapshots must compile at the batch capacity the fleet
	// serves at, or workers would bind a model they cannot batch into.
	if cfg.Batch != 0 && cfg.Batch != o.batch {
		return &flagError{"online", fmt.Sprintf("spec batch=%d conflicts with -batch %d", cfg.Batch, o.batch)}
	}
	cfg.Batch = o.batch
	if err := cfg.Validate(); err != nil {
		return &flagError{"online", err.Error()}
	}
	o.online = cfg
	return nil
}

// config assembles the serving Config from validated options.
func (o *options) config() serve.Config {
	cfg := serve.Config{
		QueueCapacity:   o.queue,
		DefaultDeadline: o.deadline,
		DrainDeadline:   o.drain,
		Plan:            o.plan,
		PacePerInvoke:   o.pace,
		PaceScale:       o.paceScale,
		MaxBatch:        o.batch,
		BatchWindow:     o.window,
		Integrity:       o.integrity,
		Bipolar:         o.bipolar,
		Registry:        o.registry,
		MemBudget:       o.memBudget,
		MemPolicy:       o.policy,
		Tenants:         o.tenants,
		Metrics:         o.metrics,
	}
	if len(o.fleet) > 0 {
		cfg.Fleet = o.fleet
	} else {
		cfg.Devices = o.devices
	}
	return cfg
}

// annotate round-robins request i across the configured tenants and models,
// so every tenant offers an equal share of the load and every model stays
// warm in the registry.
func (o *options) annotate(i int) serve.Request {
	var req serve.Request
	if len(o.tenants) > 0 {
		req.Tenant = o.tenants[i%len(o.tenants)].Name
	}
	if len(o.models) > 0 {
		req.Model = o.models[i%len(o.models)].Name
	}
	return req
}

// workers returns the fleet size the options describe.
func (o *options) workers() int {
	if len(o.fleet) > 0 {
		return len(o.fleet)
	}
	return o.devices
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("hdc-serve", flag.ContinueOnError)
	o := &options{}
	fs.StringVar(&o.data, "data", "", "dataset to serve (synthetic when empty)")
	fs.IntVar(&o.devices, "devices", 4, "simulated devices (workers)")
	fs.StringVar(&o.fleetSpec, "fleet", "", "heterogeneous worker fleet, e.g. \"tpu=2,cpu=2\" (overrides -devices)")
	fs.IntVar(&o.queue, "queue", 8, "admission queue capacity (0 = unbounded)")
	fs.DurationVar(&o.deadline, "deadline", 250*time.Millisecond, "default per-request deadline (0 = none)")
	fs.DurationVar(&o.drain, "drain", 2*time.Second, "graceful-drain deadline (0 = wait forever)")
	fs.IntVar(&o.requests, "requests", 400, "requests to offer")
	fs.Float64Var(&o.load, "load", 2.0, "offered load as a multiple of fleet capacity")
	fs.DurationVar(&o.pace, "pace", 4*time.Millisecond, "emulated per-invoke device occupancy")
	fs.IntVar(&o.batch, "batch", 1, "max requests coalesced into one device invoke")
	fs.DurationVar(&o.window, "window", 0, "how long to hold an underfull batch open")
	fs.Float64Var(&o.paceScale, "pace-scale", 0, "extra occupancy per invoke as a multiple of its simulated cost")
	fs.StringVar(&o.faults, "faults", "", "fault plan for every device, e.g. \"link=0.05\"")
	fs.Uint64Var(&o.faultSeed, "fault-seed", 1, "seed for the fault-injection streams")
	fs.Uint64Var(&o.seed, "seed", 7, "training / synthetic-data seed")
	fs.IntVar(&o.dim, "dim", 512, "hypervector dimension for the trained model")
	fs.IntVar(&o.epochs, "epochs", 3, "training epochs")
	fs.StringVar(&o.listen, "listen", "", "HTTP observability address, e.g. \":8080\" (empty = disabled)")
	fs.IntVar(&o.nodes, "nodes", 1, "serving nodes behind the routing tier (1 = no router)")
	fs.StringVar(&o.chaosSpec, "chaos", "", "node-grade chaos plans, e.g. \"0:crash,1:slow=8\"")
	fs.StringVar(&o.hedgeSpec, "hedge", "", "hedged requests: \"adaptive\" (p99-tracking delay) or a fixed delay like \"12ms\"")
	fs.DurationVar(&o.probe, "probe", 25*time.Millisecond, "router health-probe interval (0 = no probing)")
	fs.StringVar(&o.modelSpec, "models", "", "multi-model registry, e.g. \"main;wide=d1024\" (one trained model per entry)")
	fs.StringVar(&o.tenantSpec, "tenants", "", "multi-tenant admission, e.g. \"prod=w4,p1,q64,d50ms;batch=w1\"")
	fs.IntVar(&o.memBudget, "mem-budget", 0, "per-device on-chip parameter-memory budget in bytes (0 = device default; needs -models)")
	fs.StringVar(&o.memPolicy, "mem-policy", "", "eviction policy under memory pressure: \"lru\" (default) or \"pin\" (pin-first-touch baseline)")
	fs.DurationVar(&o.scrubInterval, "scrub-interval", 0, "device-parameter scrub interval (0 = no scrubbing)")
	fs.IntVar(&o.canaryCount, "canary", 0, "known-answer canary rows per worker (0 = no canaries)")
	fs.DurationVar(&o.canaryInterval, "canary-interval", 25*time.Millisecond, "canary check interval (needs -canary > 0)")
	fs.StringVar(&o.onlineSpec, "online", "", "online learning: \"on\" for defaults or \"lr=0.5,window=64,...\" (see docs/online.md)")
	fs.Float64Var(&o.feedbackRate, "feedback-rate", 1, "fraction of completed requests reporting ground-truth feedback (needs -online)")
	fs.IntVar(&o.driftWindow, "drift-window", 0, "drift-detector sample window override (0 = spec default; needs -online)")
	fs.Float64Var(&o.driftThreshold, "drift-threshold", 0, "drift-detector accuracy-gap override (0 = spec default; needs -online)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		fail(err.Error())
	}
	ds, err := loadDataset(o.data, o.seed)
	if err != nil {
		fail(err.Error())
	}
	hasBin := false
	for _, kind := range o.fleet {
		hasBin = hasBin || kind == binhd.Name
	}
	p := pipeline.EdgeTPU()
	var cm *edgetpu.CompiledModel
	if len(o.models) > 0 {
		// One classifier per spec entry, each at its own dimension and a
		// distinct training seed, registered behind its name. The first
		// entry is the default model; integrity canaries answer against it.
		o.registry = registry.New()
		for i, ms := range o.models {
			dim := ms.Dim
			if dim == 0 {
				dim = o.dim
			}
			m, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
				Dim: dim, Epochs: o.epochs, LearningRate: 1, Nonlinear: true, Seed: o.seed + uint64(i),
			})
			if err != nil {
				fail(err.Error())
			}
			cmi, err := pipeline.CompileInference(p, m, ds, o.batch)
			if err != nil {
				fail(err.Error())
			}
			var bip *hdc.BipolarModel
			if hasBin {
				bip = m.Binarize()
			}
			if _, err := o.registry.Register(ms.Name, cmi, bip); err != nil {
				fail(err.Error())
			}
			if o.online != nil {
				o.trained = append(o.trained, trainedModel{ms.Name, m})
			}
			if cm == nil {
				cm = cmi
			}
		}
	} else {
		model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
			Dim: o.dim, Epochs: o.epochs, LearningRate: 1, Nonlinear: true, Seed: o.seed,
		})
		if err != nil {
			fail(err.Error())
		}
		if cm, err = pipeline.CompileInference(p, model, ds, o.batch); err != nil {
			fail(err.Error())
		}
		if hasBin {
			o.bipolar = model.Binarize()
		}
		if o.online != nil {
			// Online learning publishes through registry.Swap, so the
			// single-model run gets a one-entry registry for the trainer
			// to publish into; workers pick versions up through the same
			// bind path the multi-model server uses.
			o.registry = registry.New()
			if _, err := o.registry.Register("main", cm, o.bipolar); err != nil {
				fail(err.Error())
			}
			o.trained = append(o.trained, trainedModel{"main", model})
		}
	}
	if o.integrity, err = buildIntegrity(o, cm, ds); err != nil {
		fail(err.Error())
	}
	if o.routed() {
		runRouted(o, p, cm, ds)
		return
	}
	var tr *online.Trainer
	if o.online != nil {
		// One metrics registry for serving and training telemetry, so
		// /metrics and /snapshot carry the hdc_online_* series too.
		o.metrics = metrics.NewRegistry()
		if hasBin && !o.online.Binarize {
			// bin-class workers serve the sign-quantized form; every
			// published snapshot must carry it or a bin worker binding the
			// new version would have nothing to run.
			o.online.Binarize = true
		}
		if tr, err = online.New(p, o.registry, o.online, o.metrics); err != nil {
			fail(err.Error())
		}
		for _, tm := range o.trained {
			if err := tr.Attach(tm.name, tm.model, ds); err != nil {
				fail(err.Error())
			}
		}
		if err := tr.Start(); err != nil {
			fail(err.Error())
		}
	}
	s, err := serve.New(p, cm, o.config())
	if err != nil {
		fail(err.Error())
	}

	if o.listen != "" {
		ln, err := net.Listen("tcp", o.listen)
		if err != nil {
			fail(fmt.Sprintf("-listen: %v", err))
		}
		defer ln.Close()
		fmt.Printf("observability: http://%s/{metrics,snapshot,traces,debug/pprof}\n", ln.Addr())
		go func() { _ = http.Serve(ln, s.Handler()) }()
	}

	workers := o.workers()
	fleetStr := o.fleet.String()
	if len(o.fleet) == 0 {
		fleetStr = fmt.Sprintf("tpu=%d", workers)
	}
	interarrival := time.Duration(float64(o.pace) / (float64(workers) * o.load))
	fmt.Printf("serving %d requests at %.1fx capacity (%d workers [%s], pace %v, interarrival %v)\n",
		o.requests, o.load, workers, fleetStr, o.pace, interarrival)
	n := ds.Features()
	fbRng := rng.New(o.seed + 1013)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < o.requests; i++ {
		// Pace against absolute deadlines so OS timer slack becomes small
		// catch-up bursts instead of silently capping the offered rate.
		if d := time.Until(start.Add(time.Duration(i) * interarrival)); d > 0 {
			time.Sleep(d)
		}
		row := i % ds.Samples()
		req := o.annotate(i)
		if tr != nil && fbRng.Float64() < o.feedbackRate {
			// This request reports its ground truth once served — the
			// -feedback-rate sampled application feedback loop. Offer
			// never blocks the serving path; a full queue drops.
			features := ds.X.F32[row*n : (row+1)*n]
			label := ds.Y[row]
			model := req.Model
			req.Consume = func(*tensor.Tensor) {
				tr.Offer(online.Feedback{Model: model, Features: features, Label: label})
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Sheds and deadline misses are expected under overload; the
			// final report accounts for every outcome.
			req.Fill = func(in *tensor.Tensor) {
				copy(in.F32, ds.X.F32[row*n:(row+1)*n])
			}
			s.Submit(context.Background(), req)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err := s.Drain(context.Background()); err != nil {
		fmt.Printf("drain: %v\n", err)
	} else {
		fmt.Println("drain: clean")
	}
	if tr != nil {
		tr.Close() // drains queued feedback and flushes pending snapshots
		st := tr.Stats()
		fmt.Printf("online: %d feedback (%d dropped), %d updates (%d mispredicted), %d snapshots, %d regens, drift score %+.3f\n",
			st.Feedback, st.Dropped, st.Updates, st.Mispredictions, st.Snapshots, st.Regens, st.DriftScore)
		if st.PublishErrors > 0 {
			fmt.Printf("online: %d publish errors\n", st.PublishErrors)
		}
	}
	rep := s.Report()
	fmt.Println(rep)
	fmt.Printf("goodput: %.0f req/s over %v (mean batch occupancy %.2f)\n",
		float64(rep.Completed)/elapsed.Seconds(), elapsed.Round(time.Millisecond),
		rep.MeanOccupancy())
	for _, b := range rep.Backends {
		fmt.Printf("  %s: %.0f req/s across %d worker(s), e2e p50=%s p99=%s\n",
			b.Name, float64(b.Requests)/elapsed.Seconds(), b.Workers,
			b.Latency.Quantile(0.5).Round(time.Microsecond),
			b.Latency.Quantile(0.99).Round(time.Microsecond))
	}
	for _, t := range rep.Tenants {
		fmt.Printf("  tenant %s: %.0f req/s goodput, e2e p50=%s p99=%s\n",
			t.Name, float64(t.Completed)/elapsed.Seconds(),
			t.Latency.Quantile(0.5).Round(time.Microsecond),
			t.Latency.Quantile(0.99).Round(time.Microsecond))
	}
	if evs := s.RegistryEvents(); len(evs) > 0 {
		hits, misses := 0, 0
		for _, e := range evs {
			switch e.Kind {
			case registry.EvHit:
				hits++
			case registry.EvMiss:
				misses++
			}
		}
		fmt.Printf("  parameter memory: %d hits, %d misses over the retained event window\n", hits, misses)
	}
	if evs := s.IntegrityEvents(); len(evs) > 0 {
		fmt.Println("integrity events:")
		for _, e := range evs {
			fmt.Printf("  %s\n", e)
		}
	}
}

// buildIntegrity assembles the integrity policy from the validated flags,
// recording each canary row's golden answer through the compiled graph.
// Returns nil when neither detector is requested, so the server stays
// bit-identical to an integrity-free build.
func buildIntegrity(o *options, cm *edgetpu.CompiledModel, ds *dataset.Dataset) (*integrity.Policy, error) {
	if o.scrubInterval == 0 && o.canaryCount == 0 {
		return nil, nil
	}
	pol := &integrity.Policy{ScrubInterval: o.scrubInterval}
	if o.canaryCount > 0 {
		n := ds.Features()
		limit := 4 * o.canaryCount
		if limit > ds.Samples() {
			limit = ds.Samples()
		}
		rows := make([][]float32, limit)
		for i := range rows {
			rows[i] = ds.X.F32[i*n : (i+1)*n]
		}
		all, err := integrity.BuildCanaries(cm.Model, rows)
		if err != nil {
			return nil, fmt.Errorf("-canary: %v", err)
		}
		// Prefer confidently-classified rows: a positive recorded margin
		// makes collapse detectable, not just outright label flips.
		for _, c := range all {
			if c.Margin > 0 && len(pol.Canaries) < o.canaryCount {
				pol.Canaries = append(pol.Canaries, c)
			}
		}
		for _, c := range all {
			if c.Margin <= 0 && len(pol.Canaries) < o.canaryCount {
				pol.Canaries = append(pol.Canaries, c)
			}
		}
		pol.CanaryInterval = o.canaryInterval
	}
	return pol, nil
}

// runRouted serves the request stream through the routing tier: -nodes
// identical servers (each configured like the single-node run), chaos
// plans wrapped around their targets, health probes and optional hedging
// on top. The report is the router's fleet-level accounting plus each
// node's own serving report.
func runRouted(o *options, p pipeline.Platform, cm *edgetpu.CompiledModel, ds *dataset.Dataset) {
	n := ds.Features()
	rowFill := func(row int) func(in *tensor.Tensor) {
		return func(in *tensor.Tensor) {
			copy(in.F32, ds.X.F32[row*n:(row+1)*n])
		}
	}
	nodes := make([]serve.Node, o.nodes)
	for i := range nodes {
		cfg := o.config()
		// Decorrelate the per-node retry-jitter streams so synchronized
		// failures don't retry in lockstep across the fleet.
		cfg.Policy = pipeline.DefaultRecoveryPolicy()
		cfg.Policy.Seed = o.seed + 1 + uint64(i)*17
		s, err := serve.New(p, cm, cfg)
		if err != nil {
			fail(err.Error())
		}
		if plan, ok := o.chaos[i]; ok {
			cn, err := router.NewChaosNode(s, i, plan)
			if err != nil {
				fail(err.Error())
			}
			nodes[i] = cn
		} else {
			nodes[i] = s
		}
	}
	r, err := router.New(nodes, router.Config{
		ProbeInterval:   o.probe,
		DegradedLatency: 4 * o.pace,
		ProbeFill:       rowFill(0),
		Hedge:           o.hedge,
	})
	if err != nil {
		fail(err.Error())
	}

	workers := o.nodes * o.workers()
	interarrival := time.Duration(float64(o.pace) / (float64(workers) * o.load))
	hedgeStr := "off"
	if o.hedge.Enabled {
		hedgeStr = "adaptive"
		if o.hedge.Delay > 0 {
			hedgeStr = o.hedge.Delay.String()
		}
	}
	fmt.Printf("serving %d requests at %.1fx capacity (%d nodes x %d workers, pace %v, interarrival %v, chaos %q, hedge %s)\n",
		o.requests, o.load, o.nodes, o.workers(), o.pace, interarrival, o.chaosSpec, hedgeStr)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < o.requests; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interarrival)); d > 0 {
			time.Sleep(d)
		}
		row := i % ds.Samples()
		req := o.annotate(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Sheds, deadline misses, and chaos-induced failures are all
			// tolerated outcomes; the router report accounts for each.
			req.Fill = rowFill(row)
			r.Submit(context.Background(), req)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err := r.Drain(context.Background()); err != nil {
		fmt.Printf("drain: %v\n", err)
	} else {
		fmt.Println("drain: clean")
	}
	rep := r.Report()
	fmt.Println(rep)
	fmt.Printf("goodput: %.0f req/s over %v\n",
		float64(rep.Completed)/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	for i := range nodes {
		srep, ok := r.NodeServeReport(i)
		if !ok {
			continue
		}
		chaosStr := ""
		if plan, ok := o.chaos[i]; ok {
			chaosStr = fmt.Sprintf(" chaos=%s", plan.Mode)
		}
		fmt.Printf("  node %d [%s%s]: completed=%d shed=%d failed=%d\n",
			i, rep.Nodes[i].State, chaosStr, srep.Completed, srep.Shed(), srep.Failed)
	}
}

func loadDataset(path string, seed uint64) (*dataset.Dataset, error) {
	switch {
	case path == "":
		return dataset.Generate(dataset.SyntheticSpec(32, 256, 4, seed), 0)
	case len(path) > 4 && path[len(path)-4:] == ".csv":
		return dataset.LoadCSV(path, 0)
	default:
		return dataset.LoadBinary(path)
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "hdc-serve:", msg)
	os.Exit(2)
}
