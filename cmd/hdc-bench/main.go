// Command hdc-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hdc-bench [-samples N] [-dim D] [-epochs E] [-seed S] [experiment ...]
//
// Without arguments it runs every experiment. Known experiments: table1,
// fig4, fig5, fig6, fig7, table2, fig8, fig9, fig10 and the ablation-*
// studies.
package main

import (
	"flag"
	"fmt"
	"os"

	"hdcedge/internal/experiments"
)

func main() {
	cfg := experiments.DefaultConfig()
	samples := flag.Int("samples", cfg.FunctionalSamples, "functional sample cap per dataset")
	dim := flag.Int("dim", cfg.FunctionalDim, "functional hypervector width")
	epochs := flag.Int("epochs", cfg.Epochs, "fully-trained iteration count")
	seed := flag.Uint64("seed", cfg.Seed, "random seed")
	list := flag.Bool("list", false, "list known experiments and exit")
	jsonOut := flag.Bool("json", false, "emit structured JSON instead of tables")
	flag.Parse()
	if *list {
		for _, name := range experiments.AllExperiments {
			fmt.Println(name)
		}
		return
	}
	cfg.FunctionalSamples = *samples
	cfg.FunctionalDim = *dim
	cfg.Epochs = *epochs
	cfg.Seed = *seed

	names := flag.Args()
	if len(names) == 0 {
		if err := experiments.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hdc-bench:", err)
			os.Exit(1)
		}
		return
	}
	for _, name := range names {
		if *jsonOut {
			if err := experiments.WriteJSON(name, cfg, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "hdc-bench:", err)
				os.Exit(1)
			}
			continue
		}
		fmt.Printf("=== %s ===\n", name)
		if err := experiments.RunOne(name, cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hdc-bench:", err)
			os.Exit(1)
		}
	}
}
