# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet race bench experiments examples clean

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

# One pass over every paper artifact via the benchmark harness.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Render every table/figure (and extension study) as text.
experiments:
	$(GO) run ./cmd/hdc-bench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/activity
	$(GO) run ./examples/speech
	$(GO) run ./examples/baggingsweep
	$(GO) run ./examples/streaming
	$(GO) run ./examples/genomics
	$(GO) run ./examples/federated

clean:
	$(GO) clean ./...
