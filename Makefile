# Convenience targets; everything is plain `go` underneath.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test vet race fuzz-smoke chaos-smoke seu-smoke binhd-smoke tenant-smoke online-smoke bench bench-serve bench-binhd experiments examples clean

all: vet test

build:
	$(GO) build ./...

# go vet runs every enabled-by-default analyzer; shadowcheck covers the
# builtin-shadowing class (`cap := ...`) vet has no default analyzer for.
# govulncheck scans for known-vulnerable dependency paths when the tool is
# installed; it is gated so offline checkouts still vet cleanly.
vet:
	$(GO) vet ./...
	$(GO) run ./tools/shadowcheck .
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping vulnerability scan"; \
	fi

# The serving runtime is concurrency-heavy, so its package always runs
# under the race detector even when the full -race pass is trimmed; the
# backend conformance suite rides along so every execution backend keeps
# its contract under the race detector too.
test:
	$(GO) vet ./...
	$(GO) run ./tools/shadowcheck .
	$(GO) test ./...
	$(GO) test -race ./internal/serve/... ./internal/backend/...
	$(GO) test -race ./...
	@$(MAKE) chaos-smoke
	@$(MAKE) seu-smoke
	@$(MAKE) binhd-smoke
	@$(MAKE) tenant-smoke
	@$(MAKE) online-smoke
	@$(MAKE) fuzz-smoke

race:
	$(GO) test -race ./...

# A short seeded chaos scenario under the race detector: the router's
# failover/hedging/drain machinery racing injected node failures. Fast
# enough to run on every `make test`.
chaos-smoke:
	$(GO) test -race -count=1 \
		-run 'TestRouterDrainRacesChaosHang|TestRouterHedgeAccountingUnderLoad|TestRouterFleetFailoverServesThroughCrash|TestChaosRateIsSeededDeterministic' \
		./internal/router/

# A short seeded SEU scenario under the race detector: workers serving
# through a bit-flip storm while the integrity layer scrubs, runs canaries,
# and walks the repair ladder concurrently with drains. Fast enough to run
# on every `make test`.
seu-smoke:
	$(GO) test -race -count=1 \
		-run 'TestServeIntegrityScrubRepairsSEU|TestServeIntegrityCanaryQuarantinesUnrepairable|TestServeDrainDuringCanaryBackoffSettles|TestServeIntegrityDisabledBitIdentical' \
		./internal/serve/

# The bit-packed binary-HDC backend under the race detector: its kernel and
# pricing tests, its rows in the backend conformance suite, and the seeded
# mixed tpu+bin fleet scenarios. Fast enough to run on every `make test`.
binhd-smoke:
	$(GO) test -race -count=1 ./internal/backend/binhd/
	$(GO) test -race -count=1 -run 'BinHD' ./internal/backend/conformance/
	$(GO) test -race -count=1 \
		-run 'TestParseFleetBin|TestBinFleetRequiresBipolar|TestServeMixedBinFleet|TestServeBinBatched|TestServeBinOnlyFleetNeedsNoAccel' \
		./internal/serve/

# The multi-tenant/multi-model serving layer under the race detector: the
# weighted-fair scheduler's share and priority math, tenant quota sheds and
# snapshot monotonicity under concurrent load, registry dispatch with swap
# billing, hot swap, and the determinism of LRU eviction (two identical
# runs must produce identical event logs). Fast enough for every `make test`.
tenant-smoke:
	$(GO) test -race -count=1 \
		-run 'TestSchedulerWeightedFairShares|TestSchedulerStrictPriority|TestServeTenantQuotaShed|TestServeTenantSnapshotMonotone|TestServeMultiModelDispatchAndSwapBilling|TestServeHotSwapInvalidatesBind|TestServeEvictionDeterministic|TestServeRegistrySingleModelBitIdentical' \
		./internal/serve/

# The online-learning loop under the race detector: the feedback trainer's
# full package (snapshot publication, drift-triggered regeneration, the
# trainer racing live serving, nil-trainer bit-identity), plus the atomic
# swap-publication and bind-during-swap-storm hammers the trainer's
# registry.Swap path leans on. Fast enough to run on every `make test`.
online-smoke:
	$(GO) test -race -count=1 ./internal/online/
	$(GO) test -race -count=1 -run 'TestSwapPublicationAtomicUnderReaders|TestSwapBumpsVersionAndInvalidatesResidency' \
		./internal/registry/
	$(GO) test -race -count=1 -run 'TestServeBindDuringSwapStorm|TestServeHotSwapInvalidatesBind' \
		./internal/serve/

# A short fuzzing pass over every Fuzz target in the tree (FUZZTIME each),
# as a smoke test; saved counterexamples under testdata/fuzz run in `test`.
fuzz-smoke:
	@for pkg in $$($(GO) list ./...); do \
		for t in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz'); do \
			echo "=== fuzz $$pkg $$t"; \
			$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) $$pkg || exit 1; \
		done; \
	done

# One pass over every paper artifact via the benchmark harness.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Measure the micro-batched serving invoke (plus a heterogeneous-fleet
# throughput row) and refresh BENCH_serve.json.
bench-serve:
	BENCH_SERVE_OUT=$(CURDIR)/BENCH_serve.json $(GO) test -run TestWriteServeBench -count=1 ./internal/serve/
	@cat BENCH_serve.json

# Refresh only the binhd section of BENCH_serve.json: int8 interpreter vs
# bit-packed binary HDC at matched shape, full-batch invokes.
bench-binhd:
	BENCH_BINHD_OUT=$(CURDIR)/BENCH_serve.json $(GO) test -run TestWriteBinHDBench -count=1 ./internal/serve/
	@cat BENCH_serve.json

# Render every table/figure (and extension study) as text.
experiments:
	$(GO) run ./cmd/hdc-bench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/activity
	$(GO) run ./examples/speech
	$(GO) run ./examples/baggingsweep
	$(GO) run ./examples/streaming
	$(GO) run ./examples/genomics
	$(GO) run ./examples/federated

clean:
	$(GO) clean ./...
