package hdcedge_test

import (
	"fmt"

	"hdcedge"
)

// The paper's bagging operating point cuts the modeled weight-update cost
// to 18% of full training: C' = C · M · (d'/d) · (I'/I) · α · β.
func ExampleBaggingConfig() {
	cfg := hdcedge.DefaultBaggingConfig()
	fmt.Printf("M=%d d'=%d I'=%d alpha=%.1f\n", cfg.SubModels, cfg.SubDim(), cfg.Iterations, cfg.DatasetRatio)
	fmt.Printf("C'/C = %.2f\n", cfg.CostReduction(20))
	// Output:
	// M=4 d'=2500 I'=6 alpha=0.6
	// C'/C = 0.18
}

// Table I's catalog is pinned to the paper's shapes.
func ExampleCatalog() {
	for _, spec := range hdcedge.Catalog() {
		fmt.Printf("%s %d %d %d\n", spec.Name, spec.Samples, spec.Features, spec.Classes)
	}
	// Output:
	// FACE 80854 608 2
	// ISOLET 7797 617 26
	// UCIHAR 7667 561 12
	// MNIST 60000 784 10
	// PAMAP2 32768 27 5
}

// Train a classifier and run it through the simulated Edge TPU.
func ExampleTrain() {
	ds, err := hdcedge.Generate(hdcedge.SyntheticSpec(32, 2000, 4, 1), 0)
	if err != nil {
		panic(err)
	}
	train, test := ds.Split(0.25, hdcedge.NewRNG(2))

	cfg := hdcedge.DefaultTrainConfig()
	cfg.Dim = 2048
	cfg.Epochs = 8
	model, _, err := hdcedge.Train(train, nil, cfg)
	if err != nil {
		panic(err)
	}

	preds, _, err := hdcedge.InferOnDevice(hdcedge.EdgeTPU(), model, test, train, 8)
	if err != nil {
		panic(err)
	}
	correct := 0
	for i, p := range preds {
		if p == test.Y[i] {
			correct++
		}
	}
	fmt.Printf("device accuracy above chance: %v\n", float64(correct)/float64(len(preds)) > 0.5)
	// Output:
	// device accuracy above chance: true
}

// Bagging trains weak sub-models and fuses them into one full-width
// inference model with identical dimensions.
func ExampleTrainBagging() {
	ds, err := hdcedge.Generate(hdcedge.SyntheticSpec(24, 1500, 3, 5), 0)
	if err != nil {
		panic(err)
	}
	cfg := hdcedge.DefaultBaggingConfig()
	cfg.Dim = 1024
	ens, _, err := hdcedge.TrainBagging(ds, cfg)
	if err != nil {
		panic(err)
	}
	fused := ens.Fuse()
	fmt.Printf("sub-models: %d of width %d; fused width: %d\n",
		len(ens.Subs), ens.Subs[0].Dim(), fused.Dim())
	// Output:
	// sub-models: 4 of width 256; fused width: 1024
}
