// Quickstart: train an HDC classifier on synthetic data, inspect the
// training curve, classify on the host, then run the same model through
// the quantized wide-NN path on the simulated Edge TPU and compare.
package main

import (
	"fmt"
	"log"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/rng"
)

func main() {
	// 1. Data: 48 features, 6 classes, multi-modal clusters.
	ds, err := dataset.Generate(dataset.SyntheticSpec(48, 4000, 6, 42), 0)
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.25, rng.New(43))
	fmt.Printf("dataset: %d train / %d test samples, %d features, %d classes\n",
		train.Samples(), test.Samples(), train.Features(), train.Classes)

	// 2. Train the HDC model on the host CPU (the paper's baseline).
	cfg := hdc.TrainConfig{Dim: 4096, Epochs: 10, LearningRate: 1, Nonlinear: true, Seed: 7}
	start := time.Now()
	model, stats, err := hdc.Train(train, test, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained d=%d model in %v\n", model.Dim(), time.Since(start).Round(time.Millisecond))
	for _, e := range stats.Epochs {
		fmt.Printf("  epoch %2d: train %.3f  validation %.3f  (%d updates)\n",
			e.Epoch+1, e.TrainAccuracy, e.ValidationAccuracy, e.Updates)
	}

	// 3. Classify on the host.
	hostAcc := model.Accuracy(test)
	fmt.Printf("host (float) accuracy: %s\n", metrics.FmtPct(hostAcc))

	// 4. Same model as a quantized hyper-wide NN on the simulated Edge
	// TPU: build, calibrate, compile, invoke.
	preds, timing, err := pipeline.InferOnDevice(pipeline.EdgeTPU(), model, test, train, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device (int8) accuracy: %s\n", metrics.FmtPct(metrics.Accuracy(preds, test.Y)))
	fmt.Printf("simulated device time: %v total (%v compute, %v transfers, %v host)\n",
		timing.Total().Round(time.Microsecond),
		timing.Compute.Round(time.Microsecond),
		(timing.TransferIn + timing.TransferOut).Round(time.Microsecond),
		timing.Host.Round(time.Microsecond))
	fmt.Printf("MXU work: %.1f MMACs over %d cycles\n", float64(timing.MACs)/1e6, timing.Cycles)
}
