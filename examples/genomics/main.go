// DNA pattern matching with hyperdimensional sequence encoding — the
// GenieHD-style application the paper cites ([26], [27]) as an HDC
// workload class.
//
// A reference library of synthetic genomes is encoded once with
// permutation-bound n-gram hypervectors. Noisy reads (point mutations,
// the sequencing-error model) are matched by associative search. The
// example reports match accuracy as the mutation rate rises, showing the
// graceful degradation high-dimensional codes give.
package main

import (
	"fmt"

	"hdcedge/internal/hdc"
	"hdcedge/internal/rng"
)

const (
	alphabet = 4 // A, C, G, T
	dim      = 8192
	ngram    = 6
	refLen   = 400
	nRefs    = 32
)

func main() {
	r := rng.New(2024)
	enc := hdc.NewSequenceEncoder(alphabet, dim, ngram, r.Split())

	refs := make([][]int, nRefs)
	for i := range refs {
		refs[i] = randomGenome(r, refLen)
	}
	matcher := hdc.NewSequenceMatcher(enc, refs)
	fmt.Printf("encoded %d references of length %d as %d-gram hypervectors (d=%d)\n\n",
		nRefs, refLen, ngram, dim)

	fmt.Printf("%-14s %-10s %-12s\n", "mutation rate", "matched", "mean cosine")
	for _, rate := range []float64{0, 0.01, 0.03, 0.05, 0.10, 0.20, 0.30} {
		correct := 0
		var simSum float64
		const trials = 64
		for trial := 0; trial < trials; trial++ {
			src := trial % nRefs
			query := mutate(r, refs[src], rate)
			got, sim := matcher.Match(query)
			if got == src {
				correct++
			}
			simSum += float64(sim)
		}
		fmt.Printf("%-14.2f %3d/%-6d %-12.3f\n", rate, correct, trials, simSum/trials)
	}

	fmt.Println()
	fmt.Println("match confidence decays smoothly with the mutation rate — the library")
	fmt.Println("keeps resolving the right reference well past 10% corrupted bases,")
	fmt.Println("the robustness HDC systems are chosen for.")
}

func randomGenome(r *rng.RNG, length int) []int {
	g := make([]int, length)
	for i := range g {
		g[i] = r.Intn(alphabet)
	}
	return g
}

// mutate applies i.i.d. point substitutions at the given rate.
func mutate(r *rng.RNG, seq []int, rate float64) []int {
	out := append([]int(nil), seq...)
	for i := range out {
		if r.Float64() < rate {
			out[i] = (out[i] + 1 + r.Intn(alphabet-1)) % alphabet
		}
	}
	return out
}
