// Activity recognition on the edge: the paper's motivating IoT scenario.
//
// A PAMAP2-like human-activity stream is trained with the bagging
// framework (weak sub-models fused into one inference model), and the
// example contrasts the co-design runtime story for this dataset: with
// only 27 input features, encoding gains little from the accelerator
// (Fig 10's low end), while the bagging update optimization still pays.
package main

import (
	"fmt"
	"log"
	"time"

	"hdcedge/internal/bagging"
	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/rng"
)

func main() {
	spec, err := dataset.CatalogSpec("PAMAP2")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Generate(spec, 6000)
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.25, rng.New(11))
	fmt.Printf("PAMAP2 (synthetic stand-in): %d train / %d test, %d features, %d activities\n",
		train.Samples(), test.Samples(), train.Features(), train.Classes)

	// Fully-trained single model (the accuracy reference).
	full, _, err := hdc.Train(train, nil, hdc.TrainConfig{
		Dim: 4000, Epochs: 20, LearningRate: 1, Nonlinear: true, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fully-trained model (20 iters, d=4000): %s accuracy\n",
		metrics.FmtPct(full.Accuracy(test)))

	// Bagging: 4 weak sub-models, 6 iterations, 60%% bootstrap samples.
	bcfg := bagging.DefaultConfig()
	bcfg.Dim = 4000
	bcfg.Seed = 3
	ens, stats, err := bagging.Train(train, bcfg)
	if err != nil {
		log.Fatal(err)
	}
	fused := ens.Fuse()
	fmt.Printf("bagging ensemble (M=%d, d'=%d, I'=%d, α=%.1f): %s accuracy, %d total updates\n",
		bcfg.SubModels, bcfg.SubDim(), bcfg.Iterations, bcfg.DatasetRatio,
		metrics.FmtPct(fused.Accuracy(test)), stats.TotalUpdates())
	fmt.Printf("modeled weight-update cost: %.0f%% of full training (C'/C = %.2f)\n",
		100*bcfg.CostReduction(20), bcfg.CostReduction(20))

	// Deploy the fused model on the simulated accelerator.
	preds, timing, err := pipeline.InferOnDevice(pipeline.EdgeTPU(), fused, test, train, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fused model on device: %s accuracy\n", metrics.FmtPct(metrics.Accuracy(preds, test.Y)))

	// The runtime lesson of this dataset: fixed per-invoke costs dominate
	// at 27 features.
	fixed := timing.Host + timing.TransferIn + timing.TransferOut
	fmt.Printf("device time split: %v fixed (host+transfers) vs %v compute — %.0f%% overhead\n",
		fixed.Round(time.Microsecond), timing.Compute.Round(time.Microsecond),
		100*float64(fixed)/float64(timing.Total()))
	fmt.Println("with 27 input features the accelerator cannot amortize its per-invoke costs,")
	fmt.Println("which is exactly why PAMAP2 is the paper's counterexample (Figs 5, 6, 10).")
}
