// Streaming adaptation under concept drift — the IoT dynamics the paper's
// introduction motivates ("model updates frequently to follow the rapidly
// changing inputs").
//
// A sensor stream starts from one data distribution and abruptly drifts
// (feature noise grows and the class structure is re-generated). A frozen
// model collapses after the drift; a model that keeps learning through the
// lightweight Adapt updates (the exact bundling/detaching primitive the
// paper runs on the host CPU) recovers within a few hundred samples.
package main

import (
	"fmt"
	"log"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
)

func main() {
	const (
		features = 32
		classes  = 4
		dim      = 2048
		window   = 250 // accuracy reporting window
	)
	before, err := dataset.Generate(dataset.SyntheticSpec(features, 4000, classes, 71), 0)
	if err != nil {
		log.Fatal(err)
	}
	// The drifted world: same shape, different seed → different class
	// geometry.
	after, err := dataset.Generate(dataset.SyntheticSpec(features, 4000, classes, 72), 0)
	if err != nil {
		log.Fatal(err)
	}

	pretrain := before.Subset(seq(0, 2000))
	streamA := before.Subset(seq(2000, 3000))
	streamB := after.Subset(seq(0, 3000))

	frozen, _, err := hdc.Train(pretrain, nil, hdc.TrainConfig{
		Dim: dim, Epochs: 8, LearningRate: 1, Nonlinear: true, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	adaptive := frozen.Clone()

	fmt.Printf("pre-trained on %d samples; streaming %d pre-drift + %d post-drift samples\n",
		pretrain.Samples(), streamA.Samples(), streamB.Samples())
	fmt.Printf("%-12s %-10s %-10s\n", "window", "frozen", "adaptive")

	frozenHits, adaptiveHits, seen := 0, 0, 0
	windowID := 0
	process := func(ds *dataset.Dataset, label string) {
		for i := 0; i < ds.Samples(); i++ {
			x, y := ds.X.Row(i), ds.Y[i]
			if frozen.Predict(x) == y {
				frozenHits++
			}
			// The adaptive model predicts first, then updates on mistakes
			// (prequential evaluation).
			pred, _ := adaptive.Adapt(x, y, 1)
			if pred == y {
				adaptiveHits++
			}
			seen++
			if seen == window {
				windowID++
				fmt.Printf("%-12s %-10.3f %-10.3f\n",
					fmt.Sprintf("%s #%d", label, windowID),
					float64(frozenHits)/float64(window),
					float64(adaptiveHits)/float64(window))
				frozenHits, adaptiveHits, seen = 0, 0, 0
			}
		}
	}
	process(streamA, "pre-drift")
	fmt.Println("--- distribution drift ---")
	windowID = 0
	process(streamB, "post-drift")

	fmt.Println()
	fmt.Println("the frozen model never recovers after the drift; the adaptive model")
	fmt.Println("re-converges using only per-sample bundling/detaching updates — the")
	fmt.Println("operation the co-design framework keeps on the host CPU.")
}

// seq returns [lo, hi).
func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
