// Federated HDC learning across edge nodes — the distributed deployment
// the paper's introduction motivates (and its reference [21] develops).
//
// Eight simulated devices each hold a private shard of a UCIHAR-like
// activity dataset. Every round they train locally and upload only their
// class-hypervector deltas; the base hypervectors never leave the seed.
// The example contrasts IID and pathologically label-skewed sharding, and
// reports the communication savings over centralizing the raw data.
package main

import (
	"fmt"
	"log"

	"hdcedge/internal/dataset"
	"hdcedge/internal/federated"
	"hdcedge/internal/rng"
)

func main() {
	spec, err := dataset.CatalogSpec("UCIHAR")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Generate(spec, 4000)
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.25, rng.New(55))

	cfg := federated.DefaultConfig()
	cfg.Dim = 4000
	cfg.Rounds = 5
	fmt.Printf("federating %d nodes over %d train samples (%d features, %d classes)\n\n",
		cfg.Nodes, train.Samples(), train.Features(), train.Classes)

	run := func(label string, shards []*dataset.Dataset) *federated.Result {
		res, err := federated.Train(shards, test, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s sharding:\n  round accuracy:", label)
		for _, a := range res.RoundAccuracy {
			fmt.Printf(" %.3f", a)
		}
		fmt.Println()
		return res
	}

	res := run("IID", federated.ShardIID(train, cfg.Nodes, rng.New(56)))
	run("label-skewed", federated.ShardByLabel(train, cfg.Nodes))

	fmt.Println()
	fmt.Printf("per-node upload per round: %d KB (class hypervectors only)\n",
		res.UploadBytesPerRound/1024)
	fmt.Printf("centralizing the raw shards instead would move %d KB once\n",
		res.RawDataBytes/1024)
	fmt.Printf("communication savings over the whole run: %.1fx\n",
		res.CommunicationSavings(cfg))
	fmt.Println()
	fmt.Println("because HDC models are additive, federated averaging aggregates class")
	fmt.Println("hypervectors exactly; no raw sample ever leaves a node.")
}
