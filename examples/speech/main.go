// Speech-letter recognition with the full co-design training loop.
//
// An ISOLET-like dataset (617 features, 26 classes) runs the paper's
// Fig 1 pipeline end to end: base hypervectors are generated on the host,
// the encoder half of the wide NN is quantized and compiled for the
// simulated Edge TPU, the training set is encoded on the device, and the
// class hypervectors train on the host from those device-produced
// encodings. Inference then runs fully on the device.
package main

import (
	"fmt"
	"log"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/rng"
)

func main() {
	spec, err := dataset.CatalogSpec("ISOLET")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Generate(spec, 3000)
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.25, rng.New(21))
	fmt.Printf("ISOLET (synthetic stand-in): %d train / %d test, %d features, %d letters\n",
		train.Samples(), test.Samples(), train.Features(), train.Classes)

	plat := pipeline.EdgeTPU()
	cfg := hdc.TrainConfig{Dim: 4000, Epochs: 12, LearningRate: 1, Nonlinear: true, Seed: 5}

	// Co-design training: device encodes, host updates.
	res, err := pipeline.TrainOnDevice(plat, train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-design training done: %d epochs on host from device encodings\n", len(res.Stats.Epochs))
	fmt.Printf("simulated device encode time: %v (%.1f GMACs in %d MXU cycles)\n",
		res.DeviceTime.Total().Round(time.Microsecond),
		float64(res.DeviceTime.MACs)/1e9, res.DeviceTime.Cycles)

	// Device inference with the trained model.
	preds, timing, err := pipeline.InferOnDevice(plat, res.Model, test, train, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device inference accuracy: %s over %d letters\n",
		metrics.FmtPct(metrics.Accuracy(preds, test.Y)), test.Samples())
	perSample := timing.Total() / time.Duration(test.Samples())
	fmt.Printf("simulated per-letter latency: %v\n", perSample.Round(time.Microsecond))

	// Compare against training entirely on the host (same seed).
	hostModel, _, err := hdc.Train(train, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host-trained reference accuracy: %s — quantized device encodings cost ~nothing\n",
		metrics.FmtPct(hostModel.Accuracy(test)))
}
