// Bagging parameter exploration, the workflow behind Figs 8 and 9.
//
// The example sweeps the three bagging knobs — dataset sampling ratio α,
// sub-model iterations I', and sub-model count M — on an ISOLET-like
// dataset and prints the accuracy/cost frontier, reproducing how the
// paper arrived at its M=4, I'=6, α=0.6, β=1 operating point.
package main

import (
	"fmt"
	"log"

	"hdcedge/internal/bagging"
	"hdcedge/internal/dataset"
	"hdcedge/internal/metrics"
	"hdcedge/internal/rng"
)

func main() {
	spec, err := dataset.CatalogSpec("ISOLET")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Generate(spec, 2400)
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.25, rng.New(31))
	fmt.Printf("sweeping bagging parameters on %d train / %d test samples\n\n",
		train.Samples(), test.Samples())

	const dim = 2000
	const fullIters = 20

	eval := func(cfg bagging.Config) (float64, float64) {
		ens, _, err := bagging.Train(train, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return ens.Accuracy(test), cfg.CostReduction(fullIters)
	}

	t1 := &metrics.Table{
		Title:   "Sweep 1: dataset sampling ratio α (M=4, I'=6, β=1)",
		Headers: []string{"α", "accuracy", "update cost C'/C"},
	}
	for _, alpha := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		cfg := bagging.DefaultConfig()
		cfg.Dim = dim
		cfg.DatasetRatio = alpha
		acc, cost := eval(cfg)
		t1.AddRow(fmt.Sprintf("%.1f", alpha), metrics.FmtPct(acc), fmt.Sprintf("%.3f", cost))
	}
	fmt.Println(t1)

	t2 := &metrics.Table{
		Title:   "Sweep 2: sub-model iterations I' (M=4, α=0.6, β=1)",
		Headers: []string{"I'", "accuracy", "update cost C'/C"},
	}
	for iters := 3; iters <= 8; iters++ {
		cfg := bagging.DefaultConfig()
		cfg.Dim = dim
		cfg.Iterations = iters
		acc, cost := eval(cfg)
		t2.AddRow(fmt.Sprint(iters), metrics.FmtPct(acc), fmt.Sprintf("%.3f", cost))
	}
	fmt.Println(t2)

	t3 := &metrics.Table{
		Title:   "Sweep 3: sub-model count M with d' = d/M (I'=6, α=0.6, β=1)",
		Headers: []string{"M", "d'", "accuracy", "update cost C'/C"},
	}
	for _, m := range []int{1, 2, 4, 5, 8} {
		cfg := bagging.DefaultConfig()
		cfg.Dim = dim
		cfg.SubModels = m
		acc, cost := eval(cfg)
		t3.AddRow(fmt.Sprint(m), fmt.Sprint(cfg.SubDim()), metrics.FmtPct(acc), fmt.Sprintf("%.3f", cost))
	}
	fmt.Println(t3)

	fmt.Println("the paper's operating point (M=4, I'=6, α=0.6) sits on the knee of all three sweeps.")
}
