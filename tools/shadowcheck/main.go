// Command shadowcheck flags declarations that shadow Go's predeclared
// builtin functions (cap, len, max, copy, ...). Shadowing a builtin is
// legal Go, but it silently changes the meaning of the builtin for the
// rest of the scope — `cap := ...` inside a function makes a later
// `cap(slice)` a compile error at best and a logic bug at worst. go vet
// has no enabled-by-default analyzer for this, so `make test` runs this
// checker over the whole tree.
//
// Usage:
//
//	go run ./tools/shadowcheck [dir]
//
// Scans every .go file under dir (default ".") excluding testdata,
// vendor and hidden directories. Exits 1 when any shadowing declaration
// is found, listing file:line per hit. Only declarations of *variables*
// are flagged (short declarations, var specs, function parameters,
// results, receivers, range variables); struct fields and methods are
// legitimately allowed to reuse builtin names and are ignored.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// builtinFuncs are the predeclared function identifiers worth protecting.
// Predeclared type names (int, string, error, ...) are deliberately left
// out: shadowing them is rare and flagging them is mostly noise.
var builtinFuncs = map[string]bool{
	"append": true, "cap": true, "clear": true, "close": true,
	"complex": true, "copy": true, "delete": true, "imag": true,
	"len": true, "make": true, "max": true, "min": true, "new": true,
	"panic": true, "print": true, "println": true, "real": true,
	"recover": true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = strings.TrimSuffix(os.Args[1], "/...")
	}
	fset := token.NewFileSet()
	var hits []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		hits = append(hits, checkFile(fset, file)...)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "shadowcheck:", err)
		os.Exit(2)
	}
	if len(hits) > 0 {
		for _, h := range hits {
			fmt.Fprintln(os.Stderr, h)
		}
		fmt.Fprintf(os.Stderr, "shadowcheck: %d declaration(s) shadow a builtin\n", len(hits))
		os.Exit(1)
	}
}

// checkFile walks one parsed file and reports every variable declaration
// whose name is a predeclared builtin function.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var hits []string
	flag := func(id *ast.Ident, what string) {
		if id != nil && builtinFuncs[id.Name] {
			hits = append(hits, fmt.Sprintf("%s: %s %q shadows builtin",
				fset.Position(id.Pos()), what, id.Name))
		}
	}
	flagFields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				flag(name, what)
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						flag(id, "short declaration")
					}
				}
			}
		case *ast.ValueSpec: // var / const specs (struct fields are *ast.Field)
			for _, name := range n.Names {
				flag(name, "declaration")
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if id, ok := n.Key.(*ast.Ident); ok {
					flag(id, "range variable")
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					flag(id, "range variable")
				}
			}
		case *ast.FuncDecl:
			flagFields(n.Recv, "receiver")
			flagFields(n.Type.Params, "parameter")
			flagFields(n.Type.Results, "named result")
		case *ast.FuncLit:
			flagFields(n.Type.Params, "parameter")
			flagFields(n.Type.Results, "named result")
		}
		return true
	})
	return hits
}
