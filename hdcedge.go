// Package hdcedge is an algorithm-hardware co-design framework for
// hyperdimensional computing (HDC) on edge accelerators, reproducing
// "Algorithm-Hardware Co-Design for Efficient Brain-Inspired
// Hyperdimensional Learning on Edge" (Ni, Kim, Rosing, Imani — DATE 2022).
//
// The package is a facade over the implementation packages:
//
//   - HDC core (encoding, training, classification): internal/hdc
//   - Bootstrap-aggregating trainer and model fusion: internal/bagging
//   - HDC ↔ hyper-wide-NN mapping: internal/nnmap
//   - TFLite-style model format, interpreter, quantizer: internal/tflite
//   - Edge TPU simulator (systolic MXU, compiler, runtime): internal/edgetpu
//   - Host CPU cost models (i5-5250U, Cortex-A53): internal/cpuarch
//   - Co-design orchestration and runtime models: internal/pipeline
//   - Synthetic Table I dataset generators: internal/dataset
//   - Paper artifact drivers (figures and tables): internal/experiments
//
// A minimal session:
//
//	ds, _ := hdcedge.Generate(hdcedge.SyntheticSpec(64, 4000, 6, 1), 0)
//	train, test := ds.Split(0.25, hdcedge.NewRNG(2))
//	model, _, _ := hdcedge.Train(train, nil, hdcedge.DefaultTrainConfig())
//	preds, timing, _ := hdcedge.InferOnDevice(hdcedge.EdgeTPU(), model, test, train, 8)
package hdcedge

import (
	"io"

	"hdcedge/internal/bagging"
	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/experiments"
	"hdcedge/internal/federated"
	"hdcedge/internal/hdc"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// --- HDC core ---

// Model is a trained HDC classifier (an encoder plus class hypervectors).
type Model = hdc.Model

// Encoder maps feature vectors to hypervectors.
type Encoder = hdc.Encoder

// TrainConfig controls HDC training.
type TrainConfig = hdc.TrainConfig

// TrainStats records per-epoch training progress.
type TrainStats = hdc.TrainStats

// DefaultDim is the paper's hypervector width, d = 10,000.
const DefaultDim = hdc.DefaultDim

// DefaultTrainConfig returns the paper's fully-trained-model settings
// (d = 10,000, 20 iterations, tanh encoding).
func DefaultTrainConfig() TrainConfig { return hdc.DefaultTrainConfig() }

// Train trains an HDC classifier on the host CPU.
func Train(train, val *Dataset, cfg TrainConfig) (*Model, *TrainStats, error) {
	return hdc.Train(train, val, cfg)
}

// LoadModel reads a model saved with Model.Save.
func LoadModel(path string) (*Model, error) { return hdc.LoadModel(path) }

// NewEncoder draws base hypervectors for nFeatures inputs at width dim.
func NewEncoder(nFeatures, dim int, nonlinear bool, r *RNG) *Encoder {
	return hdc.NewEncoder(nFeatures, dim, nonlinear, r)
}

// --- Bagging ---

// BaggingConfig controls the bootstrap-aggregating trainer.
type BaggingConfig = bagging.Config

// Ensemble is a trained bag of HDC sub-models.
type Ensemble = bagging.Ensemble

// DefaultBaggingConfig returns the paper's operating point
// (M = 4, d' = 2500, I' = 6, α = 0.6, β disabled).
func DefaultBaggingConfig() BaggingConfig { return bagging.DefaultConfig() }

// TrainBagging trains the ensemble; call Ensemble.Fuse for the single
// full-width inference model.
func TrainBagging(train *Dataset, cfg BaggingConfig) (*Ensemble, *bagging.Stats, error) {
	return bagging.Train(train, cfg)
}

// --- Datasets ---

// Dataset is a labelled design matrix.
type Dataset = dataset.Dataset

// DatasetSpec describes a synthetic dataset.
type DatasetSpec = dataset.Spec

// Catalog returns the five Table I dataset specs.
func Catalog() []DatasetSpec { return dataset.Catalog() }

// CatalogSpec looks up a Table I dataset by name.
func CatalogSpec(name string) (DatasetSpec, error) { return dataset.CatalogSpec(name) }

// SyntheticSpec builds a parametric dataset spec.
func SyntheticSpec(features, samples, classes int, seed uint64) DatasetSpec {
	return dataset.SyntheticSpec(features, samples, classes, seed)
}

// Generate materializes a dataset spec; maxSamples > 0 caps the rows.
func Generate(spec DatasetSpec, maxSamples int) (*Dataset, error) {
	return dataset.Generate(spec, maxSamples)
}

// --- Randomness ---

// RNG is the framework's deterministic random generator.
type RNG = rng.RNG

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// --- Co-design pipeline ---

// Platform pairs a host CPU with an optional accelerator.
type Platform = pipeline.Platform

// DeviceTiming is the accelerator's per-invocation phase timing.
type DeviceTiming = edgetpu.Timing

// CPUBaseline returns the host-only baseline platform.
func CPUBaseline() Platform { return pipeline.CPUBaseline() }

// EdgeTPU returns the proposed host-plus-accelerator platform.
func EdgeTPU() Platform { return pipeline.EdgeTPU() }

// RaspberryPi returns the Table II embedded comparison platform.
func RaspberryPi() Platform { return pipeline.RaspberryPi() }

// TrainOnDevice runs the co-design training loop: encoding on the
// simulated accelerator, class-hypervector updates on the host.
func TrainOnDevice(p Platform, train *Dataset, cfg TrainConfig) (*pipeline.FunctionalResult, error) {
	return pipeline.TrainOnDevice(p, train, cfg)
}

// InferOnDevice classifies test rows with the quantized wide-NN model on
// the simulated accelerator. calib supplies the representative dataset for
// post-training quantization (normally the training set).
func InferOnDevice(p Platform, m *Model, test, calib *Dataset, batch int) ([]int, DeviceTiming, error) {
	return pipeline.InferOnDevice(p, m, test, calib, batch)
}

// --- Fault injection and resilient execution ---

// FaultPlan configures seeded fault injection on the simulated accelerator:
// transient link errors, spontaneous device resets, and parameter-SRAM bit
// upsets. The zero value injects nothing.
type FaultPlan = edgetpu.FaultPlan

// RecoveryPolicy controls retry, backoff, reload, and circuit-breaker
// behavior of the resilient runtime.
type RecoveryPolicy = pipeline.RecoveryPolicy

// ReliabilityReport records what the resilient runtime did to keep a run
// alive under faults.
type ReliabilityReport = pipeline.ReliabilityReport

// ParseFaultPlan builds a plan from a spec string such as
// "link=0.01,reset=0.001,seu=1e-7,timeout=5ms".
func ParseFaultPlan(spec string, seed uint64) (FaultPlan, error) {
	return edgetpu.ParseFaultPlan(spec, seed)
}

// DefaultRecoveryPolicy returns the standard retry/backoff/breaker settings.
func DefaultRecoveryPolicy() RecoveryPolicy { return pipeline.DefaultRecoveryPolicy() }

// TrainOnDeviceResilient is TrainOnDevice with the accelerator driven under
// the fault plan; transient faults are absorbed by retry, reload, and
// host-CPU fallback, so the trained model matches the healthy run's.
func TrainOnDeviceResilient(p Platform, train *Dataset, cfg TrainConfig, plan FaultPlan, policy RecoveryPolicy) (*pipeline.FunctionalResult, *ReliabilityReport, error) {
	return pipeline.TrainOnDeviceResilient(p, train, cfg, plan, policy)
}

// InferOnDeviceResilient is InferOnDevice under a fault plan. Parameter SEUs
// can genuinely degrade predictions between reloads; everything else is
// absorbed exactly.
func InferOnDeviceResilient(p Platform, m *Model, test, calib *Dataset, batch int, plan FaultPlan, policy RecoveryPolicy) ([]int, DeviceTiming, *ReliabilityReport, error) {
	return pipeline.InferOnDeviceResilient(p, m, test, calib, batch, plan, policy)
}

// --- Paper artifacts ---

// ExperimentConfig scales the functional parts of the evaluation suite.
type ExperimentConfig = experiments.Config

// DefaultExperimentConfig returns the standard evaluation scale.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// Experiments lists every reproducible paper artifact.
func Experiments() []string { return experiments.AllExperiments }

// RunExperiment regenerates one paper table or figure, rendering to w.
func RunExperiment(name string, cfg ExperimentConfig, w io.Writer) error {
	return experiments.RunOne(name, cfg, w)
}

// --- Extensions beyond the paper ---

// OnlineConfig controls single-pass confidence-weighted training
// (OnlineHD-style, the paper's reference [17]).
type OnlineConfig = hdc.OnlineConfig

// TrainOnline trains a model with `passes` confidence-weighted passes.
func TrainOnline(train *Dataset, dim, passes int, cfg OnlineConfig, nonlinear bool, seed uint64) (*Model, *TrainStats, error) {
	return hdc.TrainOnline(train, dim, passes, cfg, nonlinear, seed)
}

// BipolarModel is the 1-bit packed deployment form of a trained model;
// see Model.Binarize.
type BipolarModel = hdc.BipolarModel

// Regressor is an HDC regression model (RegHD-style, reference [28]).
type Regressor = hdc.Regressor

// RegressionConfig controls HDC regression training.
type RegressionConfig = hdc.RegressionConfig

// TrainRegressor fits an HDC regressor to (x, y) pairs.
func TrainRegressor(x *Tensor, y []float32, cfg RegressionConfig) (*Regressor, *hdc.RegressionStats, error) {
	return hdc.TrainRegressor(x, y, cfg)
}

// ClusterConfig controls HD k-means clustering (DUAL-style, reference
// [30]).
type ClusterConfig = hdc.ClusterConfig

// ClusterResult holds a clustering outcome.
type ClusterResult = hdc.ClusterResult

// Cluster runs HD k-means over the rows of x.
func Cluster(x *Tensor, cfg ClusterConfig) (*ClusterResult, error) {
	return hdc.Cluster(x, cfg)
}

// SequenceEncoder encodes discrete symbol sequences with permutation
// binding (GenieHD-style, references [26], [27]).
type SequenceEncoder = hdc.SequenceEncoder

// SequenceMatcher is an associative reference-library search.
type SequenceMatcher = hdc.SequenceMatcher

// NewSequenceEncoder draws an item memory over `alphabet` symbols with
// n-gram windows of length n.
func NewSequenceEncoder(alphabet, dim, n int, r *RNG) *SequenceEncoder {
	return hdc.NewSequenceEncoder(alphabet, dim, n, r)
}

// NewSequenceMatcher encodes a reference library for Match queries.
func NewSequenceMatcher(enc *SequenceEncoder, refs [][]int) *SequenceMatcher {
	return hdc.NewSequenceMatcher(enc, refs)
}

// Tensor is the dense array type shared across the framework.
type Tensor = tensor.Tensor

// FederatedConfig controls collaborative training across edge nodes
// (reference [21]'s deployment).
type FederatedConfig = federated.Config

// FederatedResult is a federated run's outcome.
type FederatedResult = federated.Result

// DefaultFederatedConfig returns an 8-node, 4-round setup.
func DefaultFederatedConfig() FederatedConfig { return federated.DefaultConfig() }

// FederatedTrain runs federated HDC training over the shards.
func FederatedTrain(shards []*Dataset, eval *Dataset, cfg FederatedConfig) (*FederatedResult, error) {
	return federated.Train(shards, eval, cfg)
}

// ShardIID deals a dataset round-robin across nodes.
func ShardIID(ds *Dataset, nodes int, r *RNG) []*Dataset {
	return federated.ShardIID(ds, nodes, r)
}

// ShardByLabel deals contiguous label runs across nodes (non-IID).
func ShardByLabel(ds *Dataset, nodes int) []*Dataset {
	return federated.ShardByLabel(ds, nodes)
}

// tensorNew allocates a float32 Tensor; a convenience for facade users
// building design matrices by hand.
func tensorNew(rows, cols int) *Tensor { return tensor.New(tensor.Float32, rows, cols) }

// NewFloatTensor allocates a [rows, cols] float32 tensor.
func NewFloatTensor(rows, cols int) *Tensor { return tensorNew(rows, cols) }
