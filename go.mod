module hdcedge

go 1.22
