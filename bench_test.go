package hdcedge

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md's per-experiment index). Each benchmark
// regenerates its artifact and reports the paper's headline quantity as a
// custom metric, so `go test -bench=.` reproduces the whole evaluation.
//
// Functional benchmarks (Fig 4, 7, 8, 9 and the accuracy ablations) run at
// a reduced scale set by benchCfg; runtime benchmarks model the full
// Table I scale.

import (
	"testing"

	"hdcedge/internal/experiments"
)

// benchCfg keeps functional artifact regeneration at benchmark-friendly
// scale while preserving the paper's qualitative results.
func benchCfg() experiments.Config {
	return experiments.Config{
		FunctionalSamples: 1000,
		FunctionalDim:     1024,
		Epochs:            10,
		Seed:              7,
	}
}

// runtimeCfg uses the paper's 20-iteration schedule for runtime models.
func runtimeCfg() experiments.Config {
	cfg := benchCfg()
	cfg.Epochs = 20
	return cfg
}

func BenchmarkTableI_Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

func BenchmarkFig4_TrainingCurve(b *testing.B) {
	cfg := benchCfg()
	var finalVal float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		finalVal = 0
		for _, s := range series {
			finalVal += s.ValidationAccuracy[len(s.ValidationAccuracy)-1]
		}
		finalVal /= float64(len(series))
	}
	b.ReportMetric(finalVal, "mean-final-val-acc")
}

func BenchmarkFig5_TrainingRuntime(b *testing.B) {
	cfg := runtimeCfg()
	var mnistSpeedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Dataset == "MNIST" {
				mnistSpeedup = r.TotalSpeedupTPUB()
			}
		}
	}
	// Paper: 4.49x on MNIST.
	b.ReportMetric(mnistSpeedup, "mnist-train-speedup")
}

func BenchmarkFig6_InferenceRuntime(b *testing.B) {
	cfg := runtimeCfg()
	var mnistSpeedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Dataset == "MNIST" {
				mnistSpeedup = r.Speedup()
			}
		}
	}
	// Paper: 4.19x on MNIST.
	b.ReportMetric(mnistSpeedup, "mnist-inf-speedup")
}

func BenchmarkFig7_Accuracy(b *testing.B) {
	cfg := benchCfg()
	var worstDrop float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		worstDrop = 0
		for _, r := range rows {
			if d := r.CPU - r.TPU; d > worstDrop {
				worstDrop = d
			}
		}
	}
	// Paper: quantized accuracy within ~a point of float.
	b.ReportMetric(100*worstDrop, "worst-tpu-acc-drop-pts")
}

func BenchmarkTableII_RaspberryPi(b *testing.B) {
	cfg := runtimeCfg()
	var meanTrain, meanInf float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableII(cfg)
		if err != nil {
			b.Fatal(err)
		}
		meanTrain, meanInf = experiments.MeanSpeedups(rows)
	}
	// Paper: 19.4x training, 8.9x inference on average.
	b.ReportMetric(meanTrain, "mean-train-speedup")
	b.ReportMetric(meanInf, "mean-inf-speedup")
}

func BenchmarkFig8_RatioSearch(b *testing.B) {
	cfg := benchCfg()
	var alpha06Runtime float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.DatasetRatio == 0.6 && p.FeatureRatio == 1.0 {
				alpha06Runtime = p.Normalized
			}
		}
	}
	// Paper: α=0.6 needs ~70% of full-data training time.
	b.ReportMetric(alpha06Runtime, "alpha0.6-norm-runtime")
}

func BenchmarkFig9_Iterations(b *testing.B) {
	cfg := benchCfg()
	var sixIterRuntime float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Iterations == 6 {
				sixIterRuntime = p.Normalized
			}
		}
	}
	// Paper: 4-6 iterations save ~20% vs 8.
	b.ReportMetric(sixIterRuntime, "iters6-norm-update")
}

func BenchmarkFig10_FeatureSweep(b *testing.B) {
	cfg := runtimeCfg()
	var low, high float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		low = points[0].Speedup
		high = points[len(points)-1].Speedup
	}
	// Paper: 1.06x at n=20, 8.25x at n=700.
	b.ReportMetric(low, "n20-speedup")
	b.ReportMetric(high, "n700-speedup")
}

func BenchmarkAblation_Encoding(b *testing.B) {
	cfg := benchCfg()
	var meanDelta float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationEncoding(cfg)
		if err != nil {
			b.Fatal(err)
		}
		meanDelta = 0
		for _, r := range rows {
			meanDelta += r.Nonlinear - r.Linear
		}
		meanDelta /= float64(len(rows))
	}
	b.ReportMetric(100*meanDelta, "tanh-vs-linear-pts")
}

func BenchmarkAblation_FusedVsSerial(b *testing.B) {
	cfg := runtimeCfg()
	var meanOverhead float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationFusedVsSerial(cfg)
		if err != nil {
			b.Fatal(err)
		}
		meanOverhead = 0
		for _, r := range rows {
			meanOverhead += r.Overhead
		}
		meanOverhead /= float64(len(rows))
	}
	b.ReportMetric(meanOverhead, "serial-overhead-x")
}

func BenchmarkAblation_SubWidth(b *testing.B) {
	cfg := benchCfg()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSubWidth(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(rows[1].UpdateTime) / float64(rows[0].UpdateTime)
	}
	b.ReportMetric(ratio, "fullwidth-update-cost-x")
}

func BenchmarkAblation_Batch(b *testing.B) {
	cfg := runtimeCfg()
	var batch1Penalty float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationBatch(cfg)
		if err != nil {
			b.Fatal(err)
		}
		batch1Penalty = points[0].RelativeTo32
	}
	b.ReportMetric(batch1Penalty, "batch1-vs-32-x")
}

func BenchmarkTableEnergy(b *testing.B) {
	cfg := runtimeCfg()
	var meanTrainGain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableEnergy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		meanTrainGain = 0
		for _, r := range rows {
			meanTrainGain += r.TrainEnergyGainVsPi()
		}
		meanTrainGain /= float64(len(rows))
	}
	b.ReportMetric(meanTrainGain, "mean-train-energy-gain-vs-pi")
}

func BenchmarkAblation_Robustness(b *testing.B) {
	cfg := benchCfg()
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRobustness(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Robustness gap at 20% corruption between large and small d.
		gap = res.CorruptLargeD[3].Accuracy - res.CorruptSmallD[3].Accuracy
	}
	b.ReportMetric(100*gap, "large-d-robustness-gap-pts")
}

func BenchmarkAblation_Online(b *testing.B) {
	cfg := benchCfg()
	var meanGap float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationOnline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		meanGap = 0
		for _, r := range rows {
			meanGap += r.Iterative - r.OnlineOne
		}
		meanGap /= float64(len(rows))
	}
	b.ReportMetric(100*meanGap, "iterative-minus-1pass-pts")
}

func BenchmarkAblation_Binary(b *testing.B) {
	cfg := benchCfg()
	var meanDrop float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBinary(cfg)
		if err != nil {
			b.Fatal(err)
		}
		meanDrop = 0
		for _, r := range rows {
			meanDrop += r.FloatAcc - r.BinaryAcc
		}
		meanDrop /= float64(len(rows))
	}
	b.ReportMetric(100*meanDrop, "bipolar-acc-drop-pts")
}

func BenchmarkAblation_EncoderCompare(b *testing.B) {
	cfg := benchCfg()
	var meanDelta float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationEncoderCompare(cfg)
		if err != nil {
			b.Fatal(err)
		}
		meanDelta = 0
		for _, r := range rows {
			meanDelta += r.Projection - r.IDLevel
		}
		meanDelta /= float64(len(rows))
	}
	b.ReportMetric(100*meanDelta, "projection-vs-idlevel-pts")
}

func BenchmarkAblation_Link(b *testing.B) {
	cfg := runtimeCfg()
	var pamap2Gain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationLink(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Dataset == "PAMAP2" {
				pamap2Gain = r.Gain
			}
		}
	}
	b.ReportMetric(pamap2Gain, "pamap2-pcie-gain-x")
}

func BenchmarkAblation_Dim(b *testing.B) {
	cfg := benchCfg()
	var bestAcc float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationDim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bestAcc = 0
		for _, p := range points {
			if p.Accuracy > bestAcc {
				bestAcc = p.Accuracy
			}
		}
	}
	b.ReportMetric(bestAcc, "best-dim-accuracy")
}

func BenchmarkAblation_Overlap(b *testing.B) {
	cfg := runtimeCfg()
	var mnistGain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationOverlap(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Dataset == "MNIST" {
				mnistGain = r.Gain
			}
		}
	}
	b.ReportMetric(mnistGain, "mnist-overlap-gain-x")
}

func BenchmarkAblation_ScaleOut(b *testing.B) {
	cfg := runtimeCfg()
	var pcieGain float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationScaleOut(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Link == "edgetpu-pcie" && p.Devices == 8 {
				pcieGain = p.Speedup
			}
		}
	}
	b.ReportMetric(pcieGain, "pcie-8dev-gain-x")
}
