package hdcedge

// Integration tests: the complete co-design flow at moderate scale,
// crossing every package boundary the way the paper's framework does —
// data generation → (bagging) training → fusion → wide-NN mapping →
// post-training quantization → accelerator compilation → simulated
// invocation → accuracy and timing checks — plus artifact persistence.

import (
	"os"
	"path/filepath"
	"testing"

	"hdcedge/internal/edgetpu"
	"hdcedge/internal/metrics"
	"hdcedge/internal/nnmap"
	"hdcedge/internal/tflite"
)

func TestIntegrationFullCoDesignFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// 1. Data: an ISOLET-like workload at reduced scale.
	spec, err := CatalogSpec("ISOLET")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Generate(spec, 1600)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.25, NewRNG(100))

	// 2. Bagging training at the paper's ratios.
	bcfg := DefaultBaggingConfig()
	bcfg.Dim = 2000
	bcfg.Seed = 101
	ens, stats, err := TrainBagging(train, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalUpdates() == 0 {
		t.Fatal("no updates recorded")
	}
	oob, evaluated := ens.OOBAccuracy(train)
	if evaluated == 0 {
		t.Fatal("no out-of-bag samples")
	}
	fused := ens.Fuse()
	hostAcc := fused.Accuracy(test)
	if hostAcc < 0.85 {
		t.Fatalf("fused host accuracy %.3f", hostAcc)
	}
	// The OOB estimate must land near held-out accuracy.
	if oob < hostAcc-0.12 || oob > hostAcc+0.12 {
		t.Fatalf("OOB %.3f far from test %.3f", oob, hostAcc)
	}

	// 3. Map to the wide NN, quantize, compile, and check the placement.
	im, err := nnmap.BuildInferenceModel(fused, 16)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := nnmap.QuantizeForTPU(im, train, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := edgetpu.Compile(qm, edgetpu.DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	if cm.DelegatedOps() != 3 { // FC + TANH + FC
		t.Fatalf("delegated %d ops:\n%s", cm.DelegatedOps(), cm.Report())
	}
	if !cm.Resident {
		t.Fatalf("%d-byte model should fit the 8 MiB cache", cm.ParamBytes)
	}
	if cm.ProgramCycles() == 0 {
		t.Fatal("empty device program")
	}

	// 4. Persist and reload the quantized model; behavior must survive.
	dir := t.TempDir()
	qmPath := filepath.Join(dir, "fused.htfl")
	if err := qm.Save(qmPath); err != nil {
		t.Fatal(err)
	}
	qm2, err := tflite.Load(qmPath)
	if err != nil {
		t.Fatal(err)
	}
	cm2, err := edgetpu.Compile(qm2, edgetpu.DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}

	// 5. Simulated device inference over the test set.
	dev := edgetpu.NewDevice(edgetpu.DefaultUSB())
	if _, err := dev.LoadModel(cm2); err != nil {
		t.Fatal(err)
	}
	n := test.Features()
	const batch = 16
	correct, total := 0, 0
	var timing edgetpu.Timing
	for start := 0; start+batch <= test.Samples(); start += batch {
		for r := 0; r < batch; r++ {
			copy(dev.Input(0).F32[r*n:(r+1)*n], test.X.Row(start+r))
		}
		tm, err := dev.Invoke()
		if err != nil {
			t.Fatal(err)
		}
		timing.Add(tm)
		for r := 0; r < batch; r++ {
			if int(dev.Output(0).I32[r]) == test.Y[start+r] {
				correct++
			}
			total++
		}
	}
	devAcc := float64(correct) / float64(total)
	if devAcc < hostAcc-0.04 {
		t.Fatalf("device accuracy %.3f vs host %.3f", devAcc, hostAcc)
	}
	if timing.Compute <= 0 || timing.MACs == 0 {
		t.Fatalf("timing not accumulated: %+v", timing)
	}

	// 6. Persist the fused HDC model itself and verify the reload
	// classifies identically.
	hdmPath := filepath.Join(dir, "fused.hdm")
	if err := fused.Save(hdmPath); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadModel(hdmPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if reloaded.Predict(test.X.Row(i)) != fused.Predict(test.X.Row(i)) {
			t.Fatalf("reloaded model diverges at sample %d", i)
		}
	}
	// Artifacts must be non-trivial files on disk.
	for _, p := range []string{qmPath, hdmPath} {
		fi, err := os.Stat(p)
		if err != nil || fi.Size() < 1000 {
			t.Fatalf("artifact %s missing or too small", p)
		}
	}
}

func TestIntegrationCoDesignTrainingMatchesPaperFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// The Fig 1 training path end to end, then device inference with the
	// resulting model (Fig 3 without bagging).
	spec, err := CatalogSpec("UCIHAR")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Generate(spec, 1400)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.25, NewRNG(200))

	cfg := DefaultTrainConfig()
	cfg.Dim = 1536
	cfg.Epochs = 10
	cfg.Seed = 201
	res, err := TrainOnDevice(EdgeTPU(), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	preds, timing, err := InferOnDevice(EdgeTPU(), res.Model, test, train, 8)
	if err != nil {
		t.Fatal(err)
	}
	acc := metrics.Accuracy(preds, test.Y)
	if acc < 0.75 {
		t.Fatalf("end-to-end device accuracy %.3f", acc)
	}
	// Sanity on the simulated economics: inference compute must be a
	// visible but non-dominant slice at batch 8 on 561 features.
	if timing.Compute <= 0 || timing.Compute > timing.Total() {
		t.Fatalf("inconsistent timing %+v", timing)
	}
}
