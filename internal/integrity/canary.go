package integrity

import (
	"fmt"
	"math"

	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// A Canary is a known-answer check: one held-out sample with the label and
// score margin a healthy model produces for it. Canaries run through the
// real invoke path, so they catch corruption that checksums cannot see —
// damage on the activation path, or upsets landing between scrubs.
type Canary struct {
	Input  []float32 // feature vector (one sample row)
	Label  int       // expected argmax label on a healthy model
	Margin float64   // expected top-1 minus top-2 score gap
}

// CanaryError reports a failed known-answer check.
type CanaryError struct {
	Index      int    // which canary failed
	Reason     string // "label flip", "margin collapse", or an invoke error
	WantLabel  int
	GotLabel   int
	WantMargin float64
	GotMargin  float64
}

func (e *CanaryError) Error() string {
	return fmt.Sprintf("integrity: canary %d %s: want label %d margin %.2f, got label %d margin %.2f",
		e.Index, e.Reason, e.WantLabel, e.WantMargin, e.GotLabel, e.GotMargin)
}

// BuildCanaries records the golden answers for the given sample rows by
// running them through a fresh host interpreter — bit-exact with a healthy
// device, since the simulator executes the same integer kernels. Callers
// typically pass a handful of held-out rows and may drop low-margin ones
// (ambiguous samples make jumpy canaries).
func BuildCanaries(m *tflite.Model, rows [][]float32) ([]Canary, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	it, err := tflite.NewInterpreter(m)
	if err != nil {
		return nil, fmt.Errorf("integrity: canary interpreter: %w", err)
	}
	in := it.Input(0)
	features := in.Shape[len(in.Shape)-1]
	cs := make([]Canary, 0, len(rows))
	for i, row := range rows {
		if len(row) != features {
			return nil, fmt.Errorf("integrity: canary %d has %d features, model wants %d",
				i, len(row), features)
		}
		copy(in.F32[:features], row)
		if err := it.Invoke(); err != nil {
			return nil, fmt.Errorf("integrity: canary %d invoke: %w", i, err)
		}
		cs = append(cs, Canary{
			Input:  append([]float32(nil), row...),
			Label:  int(it.Output(0).I32[0]),
			Margin: MarginRow(it.Output(1), 0),
		})
	}
	return cs, nil
}

// MarginRow returns the top-1 minus top-2 score gap of one batch row of a
// scores tensor, in raw code units (int8 codes for quantized scores, float
// values otherwise). Margins recorded at build time and measured at run
// time use the same units, so the ratio test in Canary.Check is scale-free.
func MarginRow(scores *tensor.Tensor, row int) float64 {
	k := scores.Shape[len(scores.Shape)-1]
	base := row * k
	top1, top2 := math.Inf(-1), math.Inf(-1)
	for i := 0; i < k; i++ {
		var v float64
		switch {
		case len(scores.I8) > 0:
			v = float64(scores.I8[base+i])
		case len(scores.F32) > 0:
			v = float64(scores.F32[base+i])
		default:
			v = float64(scores.I32[base+i])
		}
		if v > top1 {
			top1, top2 = v, top1
		} else if v > top2 {
			top2 = v
		}
	}
	if math.IsInf(top2, -1) {
		return 0 // single-class scores have no margin
	}
	return top1 - top2
}

// Check compares an observed answer against the canary's golden one.
// A label flip always fails; a margin below marginFrac of the recorded
// healthy margin fails as margin collapse (skipped when the recorded margin
// is not positive — an ambiguous canary can't collapse further).
func (c Canary) Check(index, pred int, margin, marginFrac float64) *CanaryError {
	if pred != c.Label {
		return &CanaryError{Index: index, Reason: "label flip",
			WantLabel: c.Label, GotLabel: pred, WantMargin: c.Margin, GotMargin: margin}
	}
	if marginFrac > 0 && c.Margin > 0 && margin < marginFrac*c.Margin {
		return &CanaryError{Index: index, Reason: "margin collapse",
			WantLabel: c.Label, GotLabel: pred, WantMargin: c.Margin, GotMargin: margin}
	}
	return nil
}
