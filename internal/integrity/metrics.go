package integrity

import (
	"time"

	"hdcedge/internal/metrics"
)

// Nil-safe metric handles: a zero checkerMetrics (Instrument never called)
// makes every record a no-op, so the checker itself never branches on
// whether metrics are wired.

type mcounter struct{ c *metrics.Counter }

func (m mcounter) inc() {
	if m.c != nil {
		m.c.Inc()
	}
}

func (m mcounter) add(n int64) {
	if m.c != nil {
		m.c.Add(n)
	}
}

type mgauge struct{ g *metrics.Gauge }

func (m mgauge) set(n int64) {
	if m.g != nil {
		m.g.Set(n)
	}
}

type mhist struct{ h *metrics.LiveHistogram }

func (m mhist) observe(d time.Duration) {
	if m.h != nil {
		m.h.Observe(d)
	}
}

type checkerMetrics struct {
	scrubs         mcounter
	corruptions    mcounter
	canaryRuns     mcounter
	canaryFailures mcounter
	repairs        [3]mcounter // ActionRestore, ActionReload, ActionReset
	quarantines    mcounter
	quarantined    mgauge
	ttr            mhist
}

// Instrument publishes the checker's live counters into reg. labels is an
// inline Prometheus label set (e.g. `worker="1",backend="tpu"`) appended to
// every series; the repair counters additionally carry an action label.
func (c *Checker) Instrument(reg *metrics.Registry, labels string) {
	if reg == nil {
		return
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	action := func(a Action) string {
		tail := "}"
		if labels != "" {
			tail = "," + labels + "}"
		}
		return `hdc_integrity_repairs_total{action="` + a.String() + `"` + tail
	}
	c.met = checkerMetrics{
		scrubs:         mcounter{reg.Counter("hdc_integrity_scrubs_total" + suffix)},
		corruptions:    mcounter{reg.Counter("hdc_integrity_corruptions_total" + suffix)},
		canaryRuns:     mcounter{reg.Counter("hdc_integrity_canary_runs_total" + suffix)},
		canaryFailures: mcounter{reg.Counter("hdc_integrity_canary_failures_total" + suffix)},
		repairs: [3]mcounter{
			{reg.Counter(action(ActionRestore))},
			{reg.Counter(action(ActionReload))},
			{reg.Counter(action(ActionReset))},
		},
		quarantines: mcounter{reg.Counter(action(ActionQuarantine))},
		quarantined: mgauge{reg.Gauge("hdc_integrity_quarantined" + suffix)},
		ttr:         mhist{reg.Histogram("hdc_integrity_time_to_repair_seconds" + suffix)},
	}
}
