package integrity

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hdcedge/internal/metrics"
)

// Trigger says which detector opened a repair incident.
type Trigger int

const (
	// TriggerScrub means a checksum scrub found a corrupt segment.
	TriggerScrub Trigger = iota
	// TriggerCanary means a known-answer check failed.
	TriggerCanary
)

// String renders the trigger.
func (t Trigger) String() string {
	switch t {
	case TriggerScrub:
		return "scrub"
	case TriggerCanary:
		return "canary"
	}
	return fmt.Sprintf("trigger(%d)", int(t))
}

// Action is one rung of the repair ladder, cheapest first.
type Action int

const (
	// ActionRestore re-uploads the corrupt segments only.
	ActionRestore Action = iota
	// ActionReload reloads the full model through the pipeline.
	ActionReload
	// ActionReset power-cycles the device.
	ActionReset
	// ActionQuarantine takes the worker out of service permanently.
	ActionQuarantine
)

// String renders the action.
func (a Action) String() string {
	switch a {
	case ActionRestore:
		return "segment-reupload"
	case ActionReload:
		return "model-reload"
	case ActionReset:
		return "device-reset"
	case ActionQuarantine:
		return "quarantine"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Event is one Seq-ordered repair-ladder step. Repaired marks the rung that
// closed the incident; its TimeToRepair spans detection to verified-clean.
// SimCost is the simulated device/link time the action itself cost.
type Event struct {
	Seq          int           // checker-local, strictly increasing
	Worker       int           // owning worker id
	Trigger      Trigger       // which detector opened the incident
	Segment      string        // first corrupt segment ("" for canary triggers)
	Offset       int           // byte offset of the first corruption
	Action       Action        // the rung attempted
	Err          error         // action failure, if any
	Repaired     bool          // this rung closed the incident
	At           time.Time     // wall-clock time of the attempt
	SimCost      time.Duration // simulated cost of the action
	TimeToRepair time.Duration // detection → verified-clean (closing rung only)
}

// String renders the event for logs.
func (e Event) String() string {
	status := "escalate"
	switch {
	case e.Repaired:
		status = fmt.Sprintf("repaired in %s", metrics.FmtDur(e.TimeToRepair))
	case e.Err != nil:
		status = "error: " + e.Err.Error()
	case e.Action == ActionQuarantine:
		status = "out of service"
	}
	seg := e.Segment
	if seg == "" {
		seg = "-"
	}
	return fmt.Sprintf("[integrity] worker=%d seq=%d trigger=%s segment=%s action=%s %s",
		e.Worker, e.Seq, e.Trigger, seg, e.Action, status)
}

// DefaultMarginFrac is the margin-collapse threshold when Policy.MarginFrac
// is unset: a canary fails if its margin drops below half the healthy one.
const DefaultMarginFrac = 0.5

// maxEvents bounds the per-checker event ring.
const maxEvents = 256

// Policy configures the integrity layer for one server. The zero value
// disables everything (and serving stays bit-identical to an integrity-free
// build).
type Policy struct {
	// ScrubInterval is how often each worker verifies device-resident
	// segments against their golden copies. Zero disables scrubbing.
	ScrubInterval time.Duration
	// CanaryInterval is how often each worker runs its known-answer
	// checks. Zero disables canaries.
	CanaryInterval time.Duration
	// Canaries are the known-answer checks (see BuildCanaries).
	Canaries []Canary
	// MarginFrac is the margin-collapse threshold as a fraction of the
	// healthy margin; 0 means DefaultMarginFrac, negative disables the
	// margin check (label flips still fail).
	MarginFrac float64
	// OnEvent, when set, observes every repair event as it is emitted
	// (called on the worker goroutine; keep it fast).
	OnEvent func(Event)
}

// Enabled reports whether the policy asks for any integrity work.
func (p *Policy) Enabled() bool {
	if p == nil {
		return false
	}
	return p.ScrubInterval > 0 || (p.CanaryInterval > 0 && len(p.Canaries) > 0)
}

// Validate checks the policy for nonsense.
func (p *Policy) Validate() error {
	if p == nil {
		return nil
	}
	if p.ScrubInterval < 0 {
		return fmt.Errorf("integrity: negative scrub interval %v", p.ScrubInterval)
	}
	if p.CanaryInterval < 0 {
		return fmt.Errorf("integrity: negative canary interval %v", p.CanaryInterval)
	}
	if p.CanaryInterval > 0 && len(p.Canaries) == 0 {
		return fmt.Errorf("integrity: canary interval %v with no canaries", p.CanaryInterval)
	}
	return nil
}

// Deps are the hooks a Checker drives repairs through. Target is nil for
// host-only workers (canary checks still run; the ladder starts at reload).
type Deps struct {
	Worker     int
	Target     Target                        // device to scrub/restore/reset, or nil
	Reload     func() (time.Duration, error) // full model reload (required)
	Quarantine func()                        // take the worker out of service
	Clock      func() time.Time              // defaults to time.Now
}

// CanaryInvoke runs one canary through the real serving path and returns
// the predicted label and score margin. It must honor ctx cancellation.
type CanaryInvoke func(ctx context.Context, c Canary) (pred int, margin float64, err error)

// Report aggregates one checker's lifetime counters. Merge combines
// reports across workers.
type Report struct {
	Scrubs         int // scrub passes completed
	Corruptions    int // corrupt segments detected
	CanaryRuns     int // individual canary invocations
	CanaryFailures int // failed known-answer checks
	Incidents      int // repair incidents opened
	Repaired       int // incidents closed verified-clean
	Restores       int // segment re-upload rungs attempted
	Reloads        int // model reload rungs attempted
	Resets         int // device reset rungs attempted
	Quarantines    int // quarantine rungs (0 or 1 per checker)
	Quarantined    bool
	RepairSimTime  time.Duration      // simulated cost of all repair actions
	TimeToRepair   *metrics.Histogram // detection → verified-clean, wall clock
}

// Merge folds o into r.
func (r *Report) Merge(o Report) {
	r.Scrubs += o.Scrubs
	r.Corruptions += o.Corruptions
	r.CanaryRuns += o.CanaryRuns
	r.CanaryFailures += o.CanaryFailures
	r.Incidents += o.Incidents
	r.Repaired += o.Repaired
	r.Restores += o.Restores
	r.Reloads += o.Reloads
	r.Resets += o.Resets
	r.Quarantines += o.Quarantines
	r.Quarantined = r.Quarantined || o.Quarantined
	r.RepairSimTime += o.RepairSimTime
	if o.TimeToRepair != nil {
		if r.TimeToRepair == nil {
			r.TimeToRepair = metrics.NewHistogram()
		}
		r.TimeToRepair.Merge(o.TimeToRepair)
	}
}

// Checker runs one worker's integrity maintenance: periodic scrubs and
// canary runs, and the self-healing repair ladder when either detector
// fires. Maintain must be called from the worker goroutine that owns the
// device; NextDue, Report, Events and Quarantined are safe from any
// goroutine.
type Checker struct {
	pol    Policy
	golden *Golden
	d      Deps
	clock  func() time.Time

	mu          sync.Mutex
	seq         int
	nextScrub   time.Time
	nextCanary  time.Time
	quarantined bool
	events      []Event
	rep         Report
	met         checkerMetrics
}

// NewChecker builds a checker for one worker. golden may be nil only when
// scrubbing is disabled or there is no target to scrub.
func NewChecker(golden *Golden, pol Policy, d Deps) (*Checker, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	if d.Reload == nil {
		return nil, fmt.Errorf("integrity: checker needs a reload hook")
	}
	if pol.ScrubInterval > 0 && d.Target != nil && golden == nil {
		return nil, fmt.Errorf("integrity: scrubbing a target needs a golden reference")
	}
	if pol.MarginFrac == 0 {
		pol.MarginFrac = DefaultMarginFrac
	}
	c := &Checker{pol: pol, golden: golden, d: d, clock: d.Clock}
	if c.clock == nil {
		c.clock = time.Now
	}
	c.rep.TimeToRepair = metrics.NewHistogram()
	now := c.clock()
	if c.scrubbing() {
		c.nextScrub = now.Add(pol.ScrubInterval)
	}
	if c.canarying() {
		c.nextCanary = now.Add(pol.CanaryInterval)
	}
	return c, nil
}

// scrubbing reports whether this checker runs checksum scrubs at all.
func (c *Checker) scrubbing() bool {
	return c.pol.ScrubInterval > 0 && c.d.Target != nil &&
		c.golden != nil && len(c.golden.Segments) > 0
}

// canarying reports whether this checker runs known-answer checks.
func (c *Checker) canarying() bool {
	return c.pol.CanaryInterval > 0 && len(c.pol.Canaries) > 0
}

// NextDue returns the earliest time integrity work is due, or ok=false when
// nothing ever will be (disabled, or quarantined).
func (c *Checker) NextDue() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.quarantined {
		return time.Time{}, false
	}
	var due time.Time
	ok := false
	if c.scrubbing() && (!ok || c.nextScrub.Before(due)) {
		due, ok = c.nextScrub, true
	}
	if c.canarying() && (!ok || c.nextCanary.Before(due)) {
		due, ok = c.nextCanary, true
	}
	return due, ok
}

// Quarantined reports whether the ladder exhausted every rung.
func (c *Checker) Quarantined() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined
}

// Report snapshots the lifetime counters.
func (c *Checker) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := c.rep
	rep.Quarantined = c.quarantined
	rep.TimeToRepair = c.rep.TimeToRepair.Clone()
	return rep
}

// Events returns a copy of the retained repair events, oldest first.
func (c *Checker) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Maintain runs whatever integrity work is due — a scrub pass, a canary
// pass, and the repair ladder if either detector fires — and returns the
// repair events it emitted (nil when all was quiet). It must run on the
// worker goroutine between batches; a cancelled ctx (drain) aborts the
// pass quietly.
func (c *Checker) Maintain(ctx context.Context, invoke CanaryInvoke) []Event {
	if c.Quarantined() {
		return nil
	}
	var evs []Event
	if c.takeDue(&c.nextScrub, c.pol.ScrubInterval, c.scrubbing()) {
		evs = append(evs, c.scrubPass(ctx, invoke)...)
	}
	if ctx.Err() == nil && !c.Quarantined() &&
		c.takeDue(&c.nextCanary, c.pol.CanaryInterval, c.canarying() && invoke != nil) {
		evs = append(evs, c.canaryPass(ctx, invoke)...)
	}
	return evs
}

// takeDue checks (and advances) one periodic deadline under the lock.
func (c *Checker) takeDue(next *time.Time, interval time.Duration, enabled bool) bool {
	if !enabled {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	if now.Before(*next) {
		return false
	}
	*next = now.Add(interval)
	return true
}

// scrubPass verifies every golden segment and opens an incident on the
// first corruption.
func (c *Checker) scrubPass(ctx context.Context, invoke CanaryInvoke) []Event {
	corrupt := c.golden.Scrub(c.d.Target)
	c.mu.Lock()
	c.rep.Scrubs++
	c.rep.Corruptions += len(corrupt)
	c.mu.Unlock()
	c.met.scrubs.inc()
	if len(corrupt) == 0 {
		return nil
	}
	c.met.corruptions.add(int64(len(corrupt)))
	return c.ladder(ctx, TriggerScrub, corrupt, invoke, c.clock())
}

// canaryPass runs the known-answer checks and opens an incident on the
// first failure.
func (c *Checker) canaryPass(ctx context.Context, invoke CanaryInvoke) []Event {
	fail, err := c.runCanaries(ctx, invoke)
	if err != nil {
		return nil // cancelled (drain): abort quietly
	}
	if fail == nil {
		return nil
	}
	c.mu.Lock()
	c.rep.CanaryFailures++
	c.mu.Unlock()
	c.met.canaryFailures.inc()
	return c.ladder(ctx, TriggerCanary, nil, invoke, c.clock())
}

// runCanaries runs every canary, returning the first failure. The error
// return is non-nil only for ctx cancellation; an invoke that errors after
// the pipeline's own retry/fallback machinery gave up counts as a failed
// check, not an aborted pass.
func (c *Checker) runCanaries(ctx context.Context, invoke CanaryInvoke) (*CanaryError, error) {
	for i, cn := range c.pol.Canaries {
		pred, margin, err := invoke(ctx, cn)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return &CanaryError{Index: i, Reason: "invoke error: " + err.Error(),
				WantLabel: cn.Label, GotLabel: -1, WantMargin: cn.Margin}, nil
		}
		c.mu.Lock()
		c.rep.CanaryRuns++
		c.mu.Unlock()
		c.met.canaryRuns.inc()
		if ce := cn.Check(i, pred, margin, c.pol.MarginFrac); ce != nil {
			return ce, nil
		}
	}
	return nil, nil
}

// verifyClean re-runs both detectors after a repair action: the segment
// scrub must come back clean and every canary must pass. A cancelled ctx
// reports unverified (false) so the ladder stops escalating on drain.
func (c *Checker) verifyClean(ctx context.Context, invoke CanaryInvoke) bool {
	if ctx.Err() != nil {
		return false
	}
	if c.scrubbing() && len(c.golden.Scrub(c.d.Target)) > 0 {
		return false
	}
	if c.canarying() && invoke != nil {
		fail, err := c.runCanaries(ctx, invoke)
		if err != nil || fail != nil {
			return false
		}
	}
	return true
}

// ladder walks the repair rungs — segment re-upload, model reload, device
// reset, quarantine — verifying after each until the incident closes.
// detected anchors time-to-repair.
func (c *Checker) ladder(ctx context.Context, trig Trigger, corrupt []*CorruptionError, invoke CanaryInvoke, detected time.Time) []Event {
	c.mu.Lock()
	c.rep.Incidents++
	c.mu.Unlock()

	var evs []Event
	segID, segOff := "", 0
	if len(corrupt) > 0 {
		segID, segOff = corrupt[0].Segment, corrupt[0].Offset
	}
	emit := func(e Event) {
		e.Worker = c.d.Worker
		e.Trigger = trig
		e.At = c.clock()
		c.record(&e)
		evs = append(evs, e)
	}
	closeOut := func(e *Event) {
		e.Repaired = true
		e.TimeToRepair = c.clock().Sub(detected)
		c.mu.Lock()
		c.rep.Repaired++
		c.rep.TimeToRepair.Observe(e.TimeToRepair)
		c.mu.Unlock()
		c.met.ttr.observe(e.TimeToRepair)
	}

	// Rung 1: re-upload just the corrupt segments. Only a scrub knows
	// which segments to restore; canary incidents start at reload.
	if trig == TriggerScrub && c.d.Target != nil {
		var cost time.Duration
		var rerr error
		for _, ce := range corrupt {
			d, err := c.restoreSegment(c.golden.Segment(ce.Segment))
			cost += d
			if err != nil && rerr == nil {
				rerr = err
			}
		}
		c.bumpRung(ActionRestore, cost)
		e := Event{Segment: segID, Offset: segOff, Action: ActionRestore, Err: rerr, SimCost: cost}
		if rerr == nil && c.verifyClean(ctx, invoke) {
			closeOut(&e)
			emit(e)
			return evs
		}
		emit(e)
		if ctx.Err() != nil {
			return evs
		}
	}

	// Rung 2: full model reload through the pipeline.
	cost, err := c.d.Reload()
	c.bumpRung(ActionReload, cost)
	e := Event{Segment: segID, Offset: segOff, Action: ActionReload, Err: err, SimCost: cost}
	if err == nil && c.verifyClean(ctx, invoke) {
		closeOut(&e)
		emit(e)
		return evs
	}
	emit(e)
	if ctx.Err() != nil {
		return evs
	}

	// Rung 3: power-cycle the device (hardware targets only).
	if c.d.Target != nil {
		cost, err := c.d.Target.PowerCycle()
		c.bumpRung(ActionReset, cost)
		e := Event{Segment: segID, Offset: segOff, Action: ActionReset, Err: err, SimCost: cost}
		if err == nil && c.verifyClean(ctx, invoke) {
			closeOut(&e)
			emit(e)
			return evs
		}
		emit(e)
		if ctx.Err() != nil {
			return evs
		}
	}

	// Rung 4: out of service. TimeToRepair here is time-to-giving-up; it
	// is recorded on the event for forensics but not in the histogram.
	c.mu.Lock()
	already := c.quarantined
	c.quarantined = true
	c.rep.Quarantines++
	c.mu.Unlock()
	c.met.quarantines.inc()
	c.met.quarantined.set(1)
	if !already && c.d.Quarantine != nil {
		c.d.Quarantine()
	}
	emit(Event{Segment: segID, Offset: segOff, Action: ActionQuarantine,
		TimeToRepair: c.clock().Sub(detected)})
	return evs
}

// restoreSegment re-uploads one segment's golden bytes to the target.
func (c *Checker) restoreSegment(seg *Segment) (time.Duration, error) {
	if seg == nil {
		return 0, fmt.Errorf("integrity: restore of unknown segment")
	}
	if seg.Kind == KindLUT {
		live := c.d.Target.CachedLUT(seg.Op)
		if live != nil {
			*live = *seg.lut
		}
		return c.d.Target.TransferCost(seg.Bytes), nil
	}
	return c.d.Target.RestoreSegment(seg.Tensor)
}

// bumpRung counts one repair-ladder action and its simulated cost.
func (c *Checker) bumpRung(a Action, cost time.Duration) {
	c.mu.Lock()
	switch a {
	case ActionRestore:
		c.rep.Restores++
	case ActionReload:
		c.rep.Reloads++
	case ActionReset:
		c.rep.Resets++
	}
	c.rep.RepairSimTime += cost
	c.mu.Unlock()
	c.met.repairs[a].inc()
}

// record assigns the event's sequence number, retains it in the bounded
// ring, and fans it out to OnEvent.
func (c *Checker) record(e *Event) {
	c.mu.Lock()
	c.seq++
	e.Seq = c.seq
	c.events = append(c.events, *e)
	if len(c.events) > maxEvents {
		c.events = c.events[len(c.events)-maxEvents:]
	}
	c.mu.Unlock()
	if c.pol.OnEvent != nil {
		c.pol.OnEvent(*e)
	}
}
