package integrity_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/integrity"
	"hdcedge/internal/pipeline"
)

// testModel trains a tiny nonlinear HDC classifier and compiles
// single-sample inference, so the delegated graph carries a projection, a
// class matrix, biases and a tanh LUT.
func testModel(t *testing.T) (*edgetpu.CompiledModel, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(16, 120, 3, 99), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: 256, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := pipeline.CompileInference(pipeline.EdgeTPU(), model, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	return cm, ds
}

// loadedDevice returns a device with the model resident and one invoke run
// (so activation LUTs have materialized).
func loadedDevice(t *testing.T, cm *edgetpu.CompiledModel, ds *dataset.Dataset) *edgetpu.Device {
	t.Helper()
	dev := edgetpu.NewDevice(edgetpu.DefaultUSB())
	if _, err := dev.LoadModel(cm); err != nil {
		t.Fatal(err)
	}
	n := ds.Features()
	copy(dev.Input(0).F32, ds.X.F32[:n])
	if _, err := dev.Invoke(); err != nil {
		t.Fatal(err)
	}
	return dev
}

// deviceInvoke returns a CanaryInvoke running directly on the device.
func deviceInvoke(dev *edgetpu.Device) integrity.CanaryInvoke {
	return func(ctx context.Context, c integrity.Canary) (int, float64, error) {
		in := dev.Input(0)
		copy(in.F32[:len(c.Input)], c.Input)
		if _, err := dev.Invoke(); err != nil {
			return 0, 0, err
		}
		return int(dev.Output(0).I32[0]), integrity.MarginRow(dev.Output(1), 0), nil
	}
}

func TestComputeGoldenSegments(t *testing.T) {
	cm, _ := testModel(t)
	g, err := integrity.ComputeGolden(cm)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[integrity.SegmentKind]int{}
	for _, s := range g.Segments {
		kinds[s.Kind]++
		if s.Bytes <= 0 {
			t.Fatalf("segment %q has %d bytes", s.ID, s.Bytes)
		}
	}
	if kinds[integrity.KindProjection] != 1 || kinds[integrity.KindClasses] != 1 {
		t.Fatalf("want one projection and one classes segment, got %v", kinds)
	}
	if kinds[integrity.KindBias] == 0 {
		t.Fatalf("no bias segments in %v", kinds)
	}
	if kinds[integrity.KindLUT] != 1 {
		t.Fatalf("nonlinear model should carry one LUT segment, got %v", kinds)
	}
	if g.Segment("classes_q") == nil || g.Segment("base_T_q") == nil {
		t.Fatal("named segment lookup failed")
	}
	if g.Segment("no-such") != nil {
		t.Fatal("lookup of unknown segment succeeded")
	}
	if g.TotalBytes <= 0 {
		t.Fatalf("TotalBytes = %d", g.TotalBytes)
	}
	// CRCs must be stable across recomputation.
	g2, err := integrity.ComputeGolden(cm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Segments {
		if g.Segments[i].CRC != g2.Segments[i].CRC {
			t.Fatalf("segment %q CRC not deterministic", g.Segments[i].ID)
		}
	}
}

func TestScrubDetectsTensorCorruption(t *testing.T) {
	cm, ds := testModel(t)
	g, err := integrity.ComputeGolden(cm)
	if err != nil {
		t.Fatal(err)
	}
	dev := loadedDevice(t, cm, ds)
	if cs := g.Scrub(dev); len(cs) != 0 {
		t.Fatalf("clean device scrubs dirty: %v", cs)
	}

	seg := g.Segment("classes_q")
	live := dev.ResidentTensor(seg.Tensor)
	live.I8[5] ^= 1 << 3
	cs := g.Scrub(dev)
	if len(cs) != 1 {
		t.Fatalf("want 1 corruption, got %d", len(cs))
	}
	ce := cs[0]
	if ce.Segment != "classes_q" || ce.Offset != 5 {
		t.Fatalf("wrong corruption report: %v", ce)
	}
	if ce.Want == ce.Got {
		t.Fatalf("want/got identical in %v", ce)
	}

	if _, err := dev.RestoreSegment(seg.Tensor); err != nil {
		t.Fatal(err)
	}
	if cs := g.Scrub(dev); len(cs) != 0 {
		t.Fatalf("restored device still dirty: %v", cs)
	}
}

func TestScrubDetectsLUTCorruption(t *testing.T) {
	cm, ds := testModel(t)
	g, err := integrity.ComputeGolden(cm)
	if err != nil {
		t.Fatal(err)
	}
	dev := loadedDevice(t, cm, ds)
	var lutSeg *integrity.Segment
	for i := range g.Segments {
		if g.Segments[i].Kind == integrity.KindLUT {
			lutSeg = &g.Segments[i]
		}
	}
	live := dev.CachedLUT(lutSeg.Op)
	if live == nil {
		t.Fatal("LUT not materialized after invoke")
	}
	live[17] ^= 1 << 6
	cs := g.Scrub(dev)
	if len(cs) != 1 || cs[0].Segment != lutSeg.ID || cs[0].Offset != 17 {
		t.Fatalf("LUT corruption not reported correctly: %v", cs)
	}
}

func TestBuildCanariesAndCheck(t *testing.T) {
	cm, ds := testModel(t)
	n := ds.Features()
	rows := [][]float32{
		ds.X.F32[0:n],
		ds.X.F32[n : 2*n],
		ds.X.F32[2*n : 3*n],
	}
	cs, err := integrity.BuildCanaries(cm.Model, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("want 3 canaries, got %d", len(cs))
	}
	dev := loadedDevice(t, cm, ds)
	invoke := deviceInvoke(dev)
	for i, c := range cs {
		pred, margin, err := invoke(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		// A healthy device must reproduce the recorded answers exactly.
		if pred != c.Label || margin != c.Margin {
			t.Fatalf("canary %d: recorded (%d, %v), healthy device (%d, %v)",
				i, c.Label, c.Margin, pred, margin)
		}
		if ce := c.Check(i, pred, margin, 0.5); ce != nil {
			t.Fatalf("healthy canary fails: %v", ce)
		}
	}
	c := cs[0]
	if ce := c.Check(0, c.Label+1, c.Margin, 0.5); ce == nil || ce.Reason != "label flip" {
		t.Fatalf("label flip not caught: %v", ce)
	}
	if c.Margin > 0 {
		if ce := c.Check(0, c.Label, c.Margin*0.25, 0.5); ce == nil || ce.Reason != "margin collapse" {
			t.Fatalf("margin collapse not caught: %v", ce)
		}
		// Negative MarginFrac disables the margin check.
		if ce := c.Check(0, c.Label, 0, -1); ce != nil {
			t.Fatalf("disabled margin check still fires: %v", ce)
		}
	}
}

func TestCheckerRepairsByRestore(t *testing.T) {
	cm, ds := testModel(t)
	g, err := integrity.ComputeGolden(cm)
	if err != nil {
		t.Fatal(err)
	}
	dev := loadedDevice(t, cm, ds)
	clk := time.Unix(1000, 0)
	var reloads int
	ck, err := integrity.NewChecker(g, integrity.Policy{ScrubInterval: time.Millisecond}, integrity.Deps{
		Worker: 3,
		Target: dev,
		Reload: func() (time.Duration, error) {
			reloads++
			return dev.PowerCycle()
		},
		Clock: func() time.Time { return clk },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Nothing due yet; nothing corrupt once due.
	if evs := ck.Maintain(context.Background(), nil); evs != nil {
		t.Fatalf("maintenance before due: %v", evs)
	}
	clk = clk.Add(2 * time.Millisecond)
	if evs := ck.Maintain(context.Background(), nil); evs != nil {
		t.Fatalf("clean scrub produced events: %v", evs)
	}

	// Corrupt the class matrix and a LUT entry: one incident, both
	// segments restored by the cheapest rung.
	seg := g.Segment("classes_q")
	dev.ResidentTensor(seg.Tensor).I8[0] ^= 1
	for i := range g.Segments {
		if g.Segments[i].Kind == integrity.KindLUT {
			dev.CachedLUT(g.Segments[i].Op)[9] ^= 1
		}
	}
	clk = clk.Add(2 * time.Millisecond)
	evs := ck.Maintain(context.Background(), nil)
	if len(evs) != 1 {
		t.Fatalf("want 1 repair event, got %v", evs)
	}
	e := evs[0]
	if e.Action != integrity.ActionRestore || !e.Repaired || e.Err != nil {
		t.Fatalf("restore rung did not close the incident: %+v", e)
	}
	// The first corrupt segment in scrub order anchors the event: the tanh
	// LUT (op 2) precedes the class matrix (op 3's weights).
	if e.Worker != 3 || e.Seq != 1 || e.Trigger != integrity.TriggerScrub || e.Segment != "lut:2" {
		t.Fatalf("event metadata off: %+v", e)
	}
	if e.SimCost <= 0 {
		t.Fatalf("restore priced at %v", e.SimCost)
	}
	if g.Scrub(dev) != nil {
		t.Fatal("device still corrupt after repair")
	}
	if reloads != 0 {
		t.Fatalf("restore rung escalated to %d reloads", reloads)
	}

	rep := ck.Report()
	if rep.Scrubs != 2 || rep.Corruptions != 2 || rep.Incidents != 1 || rep.Repaired != 1 ||
		rep.Restores != 1 || rep.Reloads != 0 || rep.Quarantines != 0 {
		t.Fatalf("report off: %+v", rep)
	}
	if rep.TimeToRepair.Count() != 1 {
		t.Fatalf("time-to-repair not recorded: %v", rep.TimeToRepair)
	}
	if rep.RepairSimTime <= 0 {
		t.Fatal("repair sim time not accounted")
	}
}

func TestCheckerCanaryEscalatesToQuarantine(t *testing.T) {
	// Canary-only checker on a host worker (no target): a persistent
	// known-answer failure with a failing reload must walk reload →
	// quarantine and take the worker out of service.
	clk := time.Unix(2000, 0)
	quarantined := false
	var seen []integrity.Event
	pol := integrity.Policy{
		CanaryInterval: time.Millisecond,
		Canaries:       []integrity.Canary{{Input: []float32{1}, Label: 0, Margin: 10}},
		OnEvent:        func(e integrity.Event) { seen = append(seen, e) },
	}
	ck, err := integrity.NewChecker(nil, pol, integrity.Deps{
		Worker:     1,
		Reload:     func() (time.Duration, error) { return 0, errors.New("boom") },
		Quarantine: func() { quarantined = true },
		Clock:      func() time.Time { return clk },
	})
	if err != nil {
		t.Fatal(err)
	}
	if due, ok := ck.NextDue(); !ok || !due.Equal(clk.Add(time.Millisecond)) {
		t.Fatalf("NextDue = %v, %v", due, ok)
	}

	badInvoke := func(ctx context.Context, c integrity.Canary) (int, float64, error) {
		return c.Label + 1, 0, nil // label flip, forever
	}
	clk = clk.Add(2 * time.Millisecond)
	evs := ck.Maintain(context.Background(), badInvoke)
	if len(evs) != 2 {
		t.Fatalf("want reload+quarantine events, got %v", evs)
	}
	if evs[0].Action != integrity.ActionReload || evs[0].Err == nil || evs[0].Repaired {
		t.Fatalf("first rung: %+v", evs[0])
	}
	if evs[1].Action != integrity.ActionQuarantine || evs[1].Seq != 2 {
		t.Fatalf("second rung: %+v", evs[1])
	}
	if !quarantined {
		t.Fatal("quarantine hook not called")
	}
	if !ck.Quarantined() {
		t.Fatal("checker not marked quarantined")
	}
	if len(seen) != 2 {
		t.Fatalf("OnEvent saw %d events", len(seen))
	}
	if _, ok := ck.NextDue(); ok {
		t.Fatal("quarantined checker still schedules work")
	}
	clk = clk.Add(time.Hour)
	if evs := ck.Maintain(context.Background(), badInvoke); evs != nil {
		t.Fatalf("quarantined checker still maintains: %v", evs)
	}
	rep := ck.Report()
	if !rep.Quarantined || rep.Quarantines != 1 || rep.Repaired != 0 || rep.CanaryFailures != 1 {
		t.Fatalf("report off: %+v", rep)
	}
	if got := ck.Events(); len(got) != 2 {
		t.Fatalf("events ring holds %d", len(got))
	}
}

func TestCheckerCanaryHealsByReload(t *testing.T) {
	// A transiently-wrong invoke path that comes back after reload closes
	// the incident at the reload rung and records time-to-repair.
	clk := time.Unix(3000, 0)
	healed := false
	pol := integrity.Policy{
		CanaryInterval: time.Millisecond,
		Canaries:       []integrity.Canary{{Input: []float32{1}, Label: 2, Margin: 8}},
	}
	ck, err := integrity.NewChecker(nil, pol, integrity.Deps{
		Reload: func() (time.Duration, error) {
			healed = true
			clk = clk.Add(40 * time.Microsecond) // reload takes wall time
			return 5 * time.Millisecond, nil
		},
		Clock: func() time.Time { return clk },
	})
	if err != nil {
		t.Fatal(err)
	}
	invoke := func(ctx context.Context, c integrity.Canary) (int, float64, error) {
		if healed {
			return c.Label, c.Margin, nil
		}
		return c.Label, c.Margin * 0.1, nil // margin collapse
	}
	clk = clk.Add(2 * time.Millisecond)
	evs := ck.Maintain(context.Background(), invoke)
	if len(evs) != 1 {
		t.Fatalf("want one event, got %v", evs)
	}
	e := evs[0]
	if e.Action != integrity.ActionReload || !e.Repaired || e.Trigger != integrity.TriggerCanary {
		t.Fatalf("reload rung: %+v", e)
	}
	if e.TimeToRepair <= 0 {
		t.Fatalf("time-to-repair %v", e.TimeToRepair)
	}
	if e.SimCost != 5*time.Millisecond {
		t.Fatalf("sim cost %v", e.SimCost)
	}
	rep := ck.Report()
	if rep.Incidents != 1 || rep.Repaired != 1 || rep.Reloads != 1 || rep.Quarantines != 0 {
		t.Fatalf("report off: %+v", rep)
	}
}

func TestCheckerDrainAbortsQuietly(t *testing.T) {
	// A cancelled ctx mid-pass must not escalate the ladder.
	clk := time.Unix(4000, 0)
	pol := integrity.Policy{
		CanaryInterval: time.Millisecond,
		Canaries:       []integrity.Canary{{Input: []float32{1}, Label: 0, Margin: 4}},
	}
	ck, err := integrity.NewChecker(nil, pol, integrity.Deps{
		Reload: func() (time.Duration, error) { return 0, nil },
		Clock:  func() time.Time { return clk },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	invoke := func(ctx context.Context, c integrity.Canary) (int, float64, error) {
		cancel() // drain lands mid-invoke
		return 0, 0, ctx.Err()
	}
	clk = clk.Add(2 * time.Millisecond)
	if evs := ck.Maintain(ctx, invoke); evs != nil {
		t.Fatalf("cancelled pass produced events: %v", evs)
	}
	if ck.Quarantined() {
		t.Fatal("cancelled pass quarantined the worker")
	}
}

func TestPolicyValidateAndEnabled(t *testing.T) {
	var nilPol *integrity.Policy
	if nilPol.Enabled() {
		t.Fatal("nil policy enabled")
	}
	if err := nilPol.Validate(); err != nil {
		t.Fatal(err)
	}
	zero := &integrity.Policy{}
	if zero.Enabled() || zero.Validate() != nil {
		t.Fatal("zero policy must be valid and disabled")
	}
	bad := []integrity.Policy{
		{ScrubInterval: -time.Second},
		{CanaryInterval: -time.Second},
		{CanaryInterval: time.Second}, // interval with no canaries
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad policy %d validated", i)
		}
	}
	on := &integrity.Policy{ScrubInterval: time.Second}
	if !on.Enabled() {
		t.Fatal("scrub-only policy disabled")
	}
}

func TestReportMerge(t *testing.T) {
	var a integrity.Report
	b := integrity.Report{Scrubs: 2, Corruptions: 1, Incidents: 1, Repaired: 1,
		Restores: 1, Quarantined: true, RepairSimTime: time.Second}
	a.Merge(b)
	a.Merge(integrity.Report{Scrubs: 3})
	if a.Scrubs != 5 || a.Corruptions != 1 || !a.Quarantined || a.RepairSimTime != time.Second {
		t.Fatalf("merge off: %+v", a)
	}
}
