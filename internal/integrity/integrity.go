// Package integrity is the silent-data-corruption defense for the serving
// path. Loud accelerator faults (link timeouts, device resets) already flow
// through the retry/breaker machinery in internal/pipeline — but a
// single-event upset in resident parameter SRAM produces wrong answers with
// no error at all. This package closes that gap with three layers:
//
//   - Scrubbing: golden per-segment checksums (encoder projection, class
//     matrix, biases, activation LUTs) are computed from the compiled model,
//     and a scrubber periodically compares the device-resident copies
//     against the pristine ones, raising a typed CorruptionError on
//     mismatch.
//   - Canary known-answer checks: held-out samples with recorded expected
//     labels and score margins run through the real invoke path; a label
//     flip or margin collapse is the algorithm-level SDC signal that
//     catches what checksums cannot (activation-path damage, or corruption
//     between scrubs).
//   - A self-healing repair ladder (Checker): segment re-upload → full
//     model reload → device power-cycle → quarantine, each rung verified
//     before the incident closes, with typed Seq-ordered events and
//     time-to-repair accounting.
//
// See docs/integrity.md for the threat model and the serving integration.
package integrity

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"strings"
	"time"

	"hdcedge/internal/edgetpu"
	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// Target is the device surface the scrubber verifies and repairs,
// implemented by *edgetpu.Device. All methods must be called from the
// goroutine that drives the device (integrity work runs on the serving
// worker between batches).
type Target interface {
	// ResidentTensor returns the live device copy of graph tensor ti, or
	// nil when no model is resident.
	ResidentTensor(ti int) *tensor.Tensor
	// CachedLUT returns the resident activation lookup table of operator
	// oi, or nil when none has materialized.
	CachedLUT(oi int) *[256]int8
	// RestoreSegment re-uploads tensor ti's pristine bytes, returning the
	// simulated link cost.
	RestoreSegment(ti int) (time.Duration, error)
	// TransferCost prices an n-byte link transfer (LUT re-uploads).
	TransferCost(n int) time.Duration
	// PowerCycle drops and reloads the program — the device-reset rung.
	PowerCycle() (time.Duration, error)
}

var _ Target = (*edgetpu.Device)(nil)

// SegmentKind classifies what a golden segment protects.
type SegmentKind int

const (
	// KindProjection is the encoder projection matrix (base_T).
	KindProjection SegmentKind = iota
	// KindClasses is the class-hypervector matrix.
	KindClasses
	// KindBias is an int32 bias vector.
	KindBias
	// KindLUT is an activation lookup table.
	KindLUT
	// KindOther is any other delegated constant.
	KindOther
)

// String renders the kind.
func (k SegmentKind) String() string {
	switch k {
	case KindProjection:
		return "projection"
	case KindClasses:
		return "classes"
	case KindBias:
		return "bias"
	case KindLUT:
		return "lut"
	case KindOther:
		return "other"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Segment is one scrub-protected unit of device-resident state: a delegated
// constant tensor or an operator's activation LUT, with its golden CRC and a
// pristine copy to verify and repair against.
type Segment struct {
	ID     string      // stable name, e.g. "classes", "base_T", "lut:2"
	Kind   SegmentKind // what the segment protects
	Tensor int         // graph tensor index; -1 for LUT segments
	Op     int         // operator index; -1 for tensor segments
	Bytes  int         // segment size in bytes
	CRC    uint32      // CRC-32 (IEEE) of the golden byte image

	golden *tensor.Tensor // pristine constant copy (tensor segments)
	lut    *[256]int8     // pristine table copy (LUT segments)
}

// Golden is the compile-time integrity reference for one compiled model:
// every device-resident segment with its pristine contents and checksum.
// It is immutable after ComputeGolden and safe to share across workers.
type Golden struct {
	Model      string
	Segments   []Segment
	TotalBytes int
}

// ComputeGolden walks the compiled model's delegated operators — the same
// walk the SEU injector uses — and records a golden copy plus CRC for every
// device-resident segment: each delegated constant tensor (projection,
// classes, biases) and each int8 activation LUT. A model with no delegated
// ops yields an empty (but valid) Golden; scrubbing it is a no-op.
func ComputeGolden(cm *edgetpu.CompiledModel) (*Golden, error) {
	if cm == nil {
		return nil, fmt.Errorf("integrity: nil compiled model")
	}
	g := &Golden{Model: cm.Model.Name}
	seen := map[int]bool{}
	for oi, op := range cm.Model.Operators {
		if cm.Placements[oi] != edgetpu.PlaceTPU {
			continue
		}
		for _, ti := range op.Inputs {
			info := cm.Model.Tensors[ti]
			if info.Buffer == tflite.NoBuffer || seen[ti] {
				continue
			}
			seen[ti] = true
			pristine, err := cm.Model.ConstTensor(ti)
			if err != nil {
				return nil, fmt.Errorf("integrity: golden copy of tensor %d: %w", ti, err)
			}
			img := tensorByteImage(pristine)
			id := info.Name
			if id == "" {
				id = fmt.Sprintf("tensor:%d", ti)
			}
			g.add(Segment{
				ID:     id,
				Kind:   kindOf(info),
				Tensor: ti,
				Op:     -1,
				Bytes:  len(img),
				CRC:    crc32.ChecksumIEEE(img),
				golden: pristine,
			})
		}
		switch op.Op {
		case tflite.OpTanh, tflite.OpLogistic:
			in := cm.Model.Tensors[op.Inputs[0]]
			out := cm.Model.Tensors[op.Outputs[0]]
			if in.DType != tensor.Int8 || in.Quant == nil || out.Quant == nil {
				continue // float path: no table in play
			}
			tbl, err := tflite.ActivationLUT(op.Op, *in.Quant, *out.Quant)
			if err != nil {
				return nil, fmt.Errorf("integrity: golden LUT of op %d: %w", oi, err)
			}
			cp := *tbl // copy: never hold (or write) the shared memoized table
			img := lutByteImage(&cp)
			g.add(Segment{
				ID:     fmt.Sprintf("lut:%d", oi),
				Kind:   KindLUT,
				Tensor: -1,
				Op:     oi,
				Bytes:  len(img),
				CRC:    crc32.ChecksumIEEE(img),
				lut:    &cp,
			})
		}
	}
	return g, nil
}

func (g *Golden) add(s Segment) {
	g.Segments = append(g.Segments, s)
	g.TotalBytes += s.Bytes
}

// Segment returns the segment with the given ID, or nil.
func (g *Golden) Segment(id string) *Segment {
	for i := range g.Segments {
		if g.Segments[i].ID == id {
			return &g.Segments[i]
		}
	}
	return nil
}

// kindOf classifies a constant tensor by the graph names the inference
// builder assigns (nnmap.BuildInferenceModel); the quantizer suffixes
// converted constants with "_q".
func kindOf(info tflite.TensorInfo) SegmentKind {
	switch strings.TrimSuffix(info.Name, "_q") {
	case "base_T":
		return KindProjection
	case "classes":
		return KindClasses
	}
	if info.DType == tensor.Int32 {
		return KindBias
	}
	return KindOther
}

// CorruptionError reports a scrub mismatch: which segment diverged from its
// golden copy, at which byte offset, and the first differing element's raw
// values (int8/int32 codes, or float32 bits).
type CorruptionError struct {
	Segment string
	Kind    SegmentKind
	Offset  int // byte offset of the first corrupt element
	Want    int64
	Got     int64
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("integrity: segment %q (%s) corrupt at byte %d: want %#x, got %#x",
		e.Segment, e.Kind, e.Offset, e.Want, e.Got)
}

// VerifySegment compares one segment's device-resident state against its
// golden copy, returning a CorruptionError on the first mismatch and nil
// when the segment is clean or not resident (no model loaded, LUT not yet
// materialized).
func (g *Golden) VerifySegment(seg *Segment, t Target) *CorruptionError {
	if seg == nil || t == nil {
		return nil
	}
	if seg.Kind == KindLUT {
		live := t.CachedLUT(seg.Op)
		if live == nil {
			return nil
		}
		for i := range live {
			if live[i] != seg.lut[i] {
				return &CorruptionError{Segment: seg.ID, Kind: seg.Kind, Offset: i,
					Want: int64(seg.lut[i]), Got: int64(live[i])}
			}
		}
		return nil
	}
	live := t.ResidentTensor(seg.Tensor)
	if live == nil {
		return nil
	}
	for i, v := range seg.golden.I8 {
		if live.I8[i] != v {
			return &CorruptionError{Segment: seg.ID, Kind: seg.Kind, Offset: i,
				Want: int64(v), Got: int64(live.I8[i])}
		}
	}
	for i, v := range seg.golden.I32 {
		if live.I32[i] != v {
			return &CorruptionError{Segment: seg.ID, Kind: seg.Kind, Offset: 4 * i,
				Want: int64(v), Got: int64(live.I32[i])}
		}
	}
	for i, v := range seg.golden.F32 {
		if live.F32[i] != v {
			return &CorruptionError{Segment: seg.ID, Kind: seg.Kind, Offset: 4 * i,
				Want: int64(math.Float32bits(v)), Got: int64(math.Float32bits(live.F32[i]))}
		}
	}
	return nil
}

// Scrub verifies every segment against the target, returning one
// CorruptionError per corrupt segment (empty means clean). Segments are
// checked in compile order, so repeated scrubs report deterministically.
func (g *Golden) Scrub(t Target) []*CorruptionError {
	var corrupt []*CorruptionError
	for i := range g.Segments {
		if ce := g.VerifySegment(&g.Segments[i], t); ce != nil {
			corrupt = append(corrupt, ce)
		}
	}
	return corrupt
}

// tensorByteImage renders a tensor's payload as the little-endian byte
// image its CRC covers.
func tensorByteImage(t *tensor.Tensor) []byte {
	switch {
	case len(t.I8) > 0:
		b := make([]byte, len(t.I8))
		for i, v := range t.I8 {
			b[i] = byte(v)
		}
		return b
	case len(t.I32) > 0:
		b := make([]byte, 4*len(t.I32))
		for i, v := range t.I32 {
			binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
		}
		return b
	default:
		b := make([]byte, 4*len(t.F32))
		for i, v := range t.F32 {
			binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
		}
		return b
	}
}

// lutByteImage renders a lookup table as its byte image.
func lutByteImage(t *[256]int8) []byte {
	b := make([]byte, len(t))
	for i, v := range t {
		b[i] = byte(v)
	}
	return b
}
