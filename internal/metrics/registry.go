package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the live-observability half of the package: a concurrent
// Registry of named counters, gauges and histograms that the serving
// runtime streams into as requests flow, with a Snapshot that is safe to
// take while workers are mid-invoke. Writes are lock-free (atomic adds and
// CAS loops); Snapshot copies the histograms, so readers never block a hot
// path and a snapshot never mutates under the reader.
//
// Metric names follow the Prometheus convention, optionally carrying a
// label suffix inline: `hdc_serve_shed_total{cause="queue_full"}`. The
// registry treats the whole string as the identity; the exposition layer
// (WritePrometheus) splits base name and labels back apart.

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, breaker state).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n is larger (a monotone high-water mark).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// LiveHistogram is the concurrent counterpart of Histogram: the same
// log-bucket layout with atomic buckets, safe for Observe from any number
// of goroutines. Snapshot copies it into a plain Histogram. Mid-flight, a
// snapshot may trail in-progress observations by a few atomic writes
// (count is derived from the bucket sums); at quiescence it is exact,
// which is what makes the final ServeReport bit-identical to the live
// stream.
type LiveHistogram struct {
	counts []atomic.Int64 // histBuckets + overflow, same layout as Histogram
	sum    atomic.Int64   // nanoseconds
	min    atomic.Int64   // nanoseconds; MaxInt64 while empty
	max    atomic.Int64   // nanoseconds
}

// NewLiveHistogram returns an empty concurrent histogram.
func NewLiveHistogram() *LiveHistogram {
	h := &LiveHistogram{counts: make([]atomic.Int64, histBuckets+1)}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one duration. Negative durations clamp to zero. Safe for
// concurrent use.
func (h *LiveHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	casMin(&h.min, int64(d))
	casMax(&h.max, int64(d))
	h.sum.Add(int64(d))
	h.counts[histBucket(d)].Add(1)
}

// Count returns the number of fully recorded observations.
func (h *LiveHistogram) Count() int {
	n := int64(0)
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return int(n)
}

// Snapshot copies the live histogram into an independent plain Histogram.
// Safe to call while observations are in flight.
func (h *LiveHistogram) Snapshot() *Histogram {
	s := NewHistogram()
	for i := range h.counts {
		c := h.counts[i].Load()
		s.counts[i] = int(c)
		s.count += int(c)
	}
	if s.count == 0 {
		return s
	}
	s.sum = time.Duration(h.sum.Load())
	if lo := h.min.Load(); lo != math.MaxInt64 {
		s.min = time.Duration(lo)
	}
	s.max = time.Duration(h.max.Load())
	return s
}

func casMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func casMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Registry is a concurrent collection of named metrics. Get-or-create
// accessors take a read lock on the fast path; the metric objects
// themselves are lock-free, so instrumented code holds no registry lock
// while recording.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*LiveHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*LiveHistogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named live histogram, creating it on first use.
func (r *Registry) Histogram(name string) *LiveHistogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = NewLiveHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry. The
// histograms are independent copies: reading them never races with
// in-flight observations.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]*Histogram
}

// Snapshot copies the registry. Safe to call at any time, including while
// instrumented code is recording; counters in successive snapshots never
// decrease.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make([]namedCounter, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, namedCounter{name, c})
	}
	gauges := make([]namedGauge, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, namedGauge{name, g})
	}
	hists := make([]namedHist, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, namedHist{name, h})
	}
	r.mu.RUnlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]*Histogram, len(hists)),
	}
	for _, nc := range counters {
		s.Counters[nc.name] = nc.c.Value()
	}
	for _, ng := range gauges {
		s.Gauges[ng.name] = ng.g.Value()
	}
	for _, nh := range hists {
		s.Histograms[nh.name] = nh.h.Snapshot()
	}
	return s
}

type namedCounter struct {
	name string
	c    *Counter
}

type namedGauge struct {
	name string
	g    *Gauge
}

type namedHist struct {
	name string
	h    *LiveHistogram
}

// Names returns every metric name in the snapshot, sorted, for
// deterministic rendering.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name := range s.Counters {
		names = append(names, name)
	}
	for name := range s.Gauges {
		names = append(names, name)
	}
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
