package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4). Counter and gauge names pass through
// verbatim (any inline `{label="v"}` suffix is already well-formed
// exposition syntax). Histograms expand into cumulative `_bucket` series
// with `le` bounds in seconds (only non-empty buckets are emitted, plus
// the mandatory `+Inf`), a `_sum` in seconds, and a `_count`.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var sb strings.Builder
	writeSorted(&sb, s.Counters, "counter")
	writeSorted(&sb, s.Gauges, "gauge")

	hists := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	for _, name := range hists {
		h := s.Histograms[name]
		base, labels := SplitName(name)
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", base)
		cum := 0
		h.Buckets(func(bound time.Duration, count int) {
			cum += count
			fmt.Fprintf(&sb, "%s_bucket{%sle=%q} %d\n",
				base, labelPrefix(labels), formatSeconds(bound), cum)
		})
		fmt.Fprintf(&sb, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labelPrefix(labels), h.Count())
		fmt.Fprintf(&sb, "%s_sum%s %s\n", base, braced(labels), formatSeconds(h.Sum()))
		fmt.Fprintf(&sb, "%s_count%s %d\n", base, braced(labels), h.Count())
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeSorted emits one plain `name value` line per metric, sorted by
// name, with a TYPE comment per distinct base name.
func writeSorted(sb *strings.Builder, values map[string]int64, kind string) {
	names := make([]string, 0, len(values))
	for name := range values {
		names = append(names, name)
	}
	sort.Strings(names)
	lastBase := ""
	for _, name := range names {
		if base, _ := SplitName(name); base != lastBase {
			fmt.Fprintf(sb, "# TYPE %s %s\n", base, kind)
			lastBase = base
		}
		fmt.Fprintf(sb, "%s %d\n", name, values[name])
	}
}

// SplitName splits a registry metric name into its base name and inline
// label suffix: `a_total{x="y"}` → ("a_total", `x="y"`). A name without a
// suffix returns empty labels.
func SplitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// labelPrefix renders labels ready to be followed by another label pair.
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// braced re-wraps a label set in braces, or nothing when empty.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatSeconds renders a duration as a seconds value for Prometheus.
func formatSeconds(d time.Duration) string {
	return fmt.Sprintf("%g", d.Seconds())
}
