package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); a != 2.0/3 {
		t.Fatalf("Accuracy = %v", a)
	}
	if a := Accuracy(nil, nil); a != 0 {
		t.Fatalf("empty Accuracy = %v", a)
	}
}

func TestAccuracyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

func TestConfusionMatrix(t *testing.T) {
	cm := NewConfusionMatrix(3, []int{0, 1, 1, 2}, []int{0, 1, 2, 2})
	if cm.Counts[0][0] != 1 || cm.Counts[1][1] != 1 || cm.Counts[2][1] != 1 || cm.Counts[2][2] != 1 {
		t.Fatalf("counts %v", cm.Counts)
	}
	if acc := cm.Accuracy(); acc != 0.75 {
		t.Fatalf("Accuracy = %v", acc)
	}
	recall := cm.PerClassRecall()
	if recall[0] != 1 || recall[1] != 1 || recall[2] != 0.5 {
		t.Fatalf("recall %v", recall)
	}
}

func TestConfusionMatrixIgnoresOutOfRange(t *testing.T) {
	cm := NewConfusionMatrix(2, []int{0, 9}, []int{0, 1})
	if cm.Accuracy() != 1 { // the out-of-range pair is dropped
		t.Fatalf("accuracy %v", cm.Accuracy())
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize(10*time.Second, 5*time.Second, 20*time.Second)
	if out[0] != 0.5 || out[1] != 2 {
		t.Fatalf("Normalize = %v", out)
	}
	if z := Normalize(0, time.Second); z[0] != 0 {
		t.Fatal("zero base should yield zeros")
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10*time.Second, 2*time.Second); s != 5 {
		t.Fatalf("Speedup = %v", s)
	}
	if s := Speedup(time.Second, 0); s != 0 {
		t.Fatal("zero denominator must not divide")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Demo", Headers: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long", "23456")
	s := tb.String()
	for _, want := range []string{"Demo", "name", "alpha", "beta-long", "23456", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
}

func TestFormatters(t *testing.T) {
	if FmtX(4.487) != "4.49x" {
		t.Fatalf("FmtX = %q", FmtX(4.487))
	}
	if FmtPct(0.931) != "93.1%" {
		t.Fatalf("FmtPct = %q", FmtPct(0.931))
	}
	if !strings.HasSuffix(FmtDur(2*time.Second), "s") {
		t.Fatal("FmtDur seconds")
	}
	if !strings.HasSuffix(FmtDur(3*time.Millisecond), "ms") {
		t.Fatal("FmtDur millis")
	}
	if !strings.HasSuffix(FmtDur(40*time.Microsecond), "us") {
		t.Fatal("FmtDur micros")
	}
}

func TestPerClassPrecision(t *testing.T) {
	cm := NewConfusionMatrix(2, []int{0, 0, 1, 1}, []int{0, 1, 1, 1})
	prec := cm.PerClassPrecision()
	// Class 0 predicted twice, once correct; class 1 predicted twice,
	// both correct.
	if prec[0] != 0.5 || prec[1] != 1.0 {
		t.Fatalf("precision %v", prec)
	}
}

func TestMacroF1(t *testing.T) {
	// Perfect predictions → F1 = 1.
	cm := NewConfusionMatrix(3, []int{0, 1, 2}, []int{0, 1, 2})
	if f1 := cm.MacroF1(); f1 != 1 {
		t.Fatalf("perfect MacroF1 = %v", f1)
	}
	// Degenerate: always predict class 0 over a 2-class balanced set.
	cm = NewConfusionMatrix(2, []int{0, 0, 0, 0}, []int{0, 0, 1, 1})
	f1 := cm.MacroF1()
	// Class 0: prec 0.5, rec 1 → F1 2/3. Class 1: 0. Macro = 1/3.
	if f1 < 0.32 || f1 > 0.34 {
		t.Fatalf("degenerate MacroF1 = %v", f1)
	}
}

func TestMacroF1EmptyClassSafe(t *testing.T) {
	cm := NewConfusionMatrix(3, []int{0, 1}, []int{0, 1})
	if f1 := cm.MacroF1(); f1 <= 0 || f1 > 1 {
		t.Fatalf("MacroF1 with empty class = %v", f1)
	}
}
