package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zeroed: %+v", h)
	}
	if !strings.Contains(h.String(), "no observations") {
		t.Fatalf("empty render %q", h.String())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 observations at 1ms and one at 1s: p50/p90 must sit near 1ms,
	// p99+ must reach toward the outlier.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	if h.Count() != 101 {
		t.Fatalf("count %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 900*time.Microsecond || p50 > 1200*time.Microsecond {
		t.Fatalf("p50 %v not within a bucket of 1ms", p50)
	}
	if h.Quantile(1.0) != time.Second {
		t.Fatalf("p100 %v != max", h.Quantile(1.0))
	}
	if h.Max() != time.Second || h.Min() != time.Millisecond {
		t.Fatalf("min/max %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	for d := time.Microsecond; d < time.Second; d *= 3 {
		for i := 0; i < 10; i++ {
			h.Observe(d)
		}
	}
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// Each observation's bucket upper bound must be within the geometric
	// ratio of the true value — the property the p99 comparisons rely on.
	h := NewHistogram()
	for _, d := range []time.Duration{
		5 * time.Microsecond, 123 * time.Microsecond, 4 * time.Millisecond,
		87 * time.Millisecond, 2 * time.Second,
	} {
		g := NewHistogram()
		g.Observe(d)
		q := g.Quantile(0.99)
		if q < d || float64(q) > 1.15*float64(d) {
			t.Fatalf("observation %v landed at %v (>15%% off)", d, q)
		}
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestHistogramMergeClone(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 50; i++ {
		a.Observe(time.Millisecond)
		b.Observe(10 * time.Millisecond)
	}
	c := a.Clone()
	c.Merge(b)
	if c.Count() != 100 {
		t.Fatalf("merged count %d", c.Count())
	}
	if c.Max() != 10*time.Millisecond || c.Min() != time.Millisecond {
		t.Fatalf("merged min/max %v/%v", c.Min(), c.Max())
	}
	if a.Count() != 50 {
		t.Fatalf("clone mutated source: %d", a.Count())
	}
	mid := c.Quantile(0.5)
	if mid < 900*time.Microsecond || mid > 1200*time.Microsecond {
		t.Fatalf("merged p50 %v", mid)
	}
	hi := c.Quantile(0.99)
	if hi < 9*time.Millisecond {
		t.Fatalf("merged p99 %v missed the upper mode", hi)
	}
}

func TestHistogramOverflowQuantileMaxAgreement(t *testing.T) {
	// Observations beyond the ~100s top bucket bound land in the overflow
	// bucket, whose quantile estimate is the observed max — Quantile must
	// never report the top bound while Max says otherwise.
	h := NewHistogram()
	h.Observe(400 * time.Second)
	if h.Max() != 400*time.Second {
		t.Fatalf("max %v", h.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got := h.Quantile(q); got != h.Max() {
			t.Fatalf("q=%v: quantile %v != max %v for out-of-range observation", q, got, h.Max())
		}
	}

	// Mixed in-range and overflow data: low quantiles stay in range, the
	// tail quantile agrees with the max, and the order stays monotone.
	m := NewHistogram()
	for i := 0; i < 99; i++ {
		m.Observe(time.Millisecond)
	}
	m.Observe(300 * time.Second)
	if p50 := m.Quantile(0.5); p50 > 2*time.Millisecond {
		t.Fatalf("p50 %v dragged up by the overflow bucket", p50)
	}
	if got := m.Quantile(0.999); got != m.Max() {
		t.Fatalf("tail quantile %v != max %v", got, m.Max())
	}

	// Merge preserves the overflow bucket.
	c := NewHistogram()
	c.Merge(h)
	if got := c.Quantile(0.99); got != 400*time.Second {
		t.Fatalf("merged overflow quantile %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	h.Observe(200 * time.Second) // overflow
	total := 0
	var last time.Duration
	h.Buckets(func(bound time.Duration, count int) {
		if bound < last {
			t.Fatalf("bucket bounds not ascending: %v after %v", bound, last)
		}
		last = bound
		total += count
	})
	if total != 3 {
		t.Fatalf("bucket counts sum to %d, want 3", total)
	}
	if last != 200*time.Second {
		t.Fatalf("overflow bucket bound %v, want the observed max", last)
	}
}

func TestHistogramClampsNegative(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5 * time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative observation not clamped: %+v", h)
	}
}
