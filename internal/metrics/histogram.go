package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Histogram is a log-bucketed latency histogram: buckets grow
// geometrically from histMin so that relative error per observation is
// bounded by the bucket ratio (~10%), which keeps quantile comparisons
// such as "p99 within 2× of baseline" meaningful without storing every
// sample. The zero value is not usable; call NewHistogram.
type Histogram struct {
	bounds []time.Duration // upper bound per bucket, ascending
	counts []int
	count  int
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// Histogram bucket layout: histBuckets buckets spanning histMin ..
// histMin·ratio^histBuckets with ratio chosen to cover ~100s.
const (
	histMin     = time.Microsecond
	histBuckets = 192
)

// histRatio is the per-bucket growth factor: 192 buckets from 1µs to 100s.
var histRatio = math.Pow(float64(100*time.Second)/float64(histMin), 1.0/float64(histBuckets-1))

// NewHistogram returns an empty latency histogram.
func NewHistogram() *Histogram {
	h := &Histogram{
		bounds: make([]time.Duration, histBuckets),
		counts: make([]int, histBuckets),
	}
	b := float64(histMin)
	for i := range h.bounds {
		h.bounds[i] = time.Duration(b)
		b *= histRatio
	}
	return h
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.counts[h.bucket(d)]++
}

// bucket returns the index of the bucket covering d.
func (h *Histogram) bucket(d time.Duration) int {
	if d <= h.bounds[0] {
		return 0
	}
	// Geometric layout ⇒ index is logarithmic in d; binary search keeps
	// it exact at bucket edges.
	lo, hi := 0, len(h.bounds)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return h.count }

// Mean returns the arithmetic mean of the observations (zero when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation (zero when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observation (zero when empty).
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an upper estimate of the q-quantile (q in [0, 1]): the
// upper bound of the bucket holding the q·count-th observation, clamped
// to the observed max. Returns zero when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	seen := 0
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			b := h.bounds[i]
			if b > h.max {
				b = h.max
			}
			return b
		}
	}
	return h.max
}

// Merge adds every observation of o into h. Both histograms must come
// from NewHistogram (identical bucket layout).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := NewHistogram()
	c.Merge(h)
	return c
}

// String renders the summary quantiles on one line.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "latency: no observations"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "latency: n=%d mean=%s p50=%s p90=%s p99=%s max=%s",
		h.count, FmtDur(h.Mean()), FmtDur(h.Quantile(0.5)),
		FmtDur(h.Quantile(0.9)), FmtDur(h.Quantile(0.99)), FmtDur(h.max))
	return sb.String()
}
