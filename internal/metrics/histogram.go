package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Histogram is a log-bucketed latency histogram: buckets grow
// geometrically from histMin so that relative error per observation is
// bounded by the bucket ratio (~10%), which keeps quantile comparisons
// such as "p99 within 2× of baseline" meaningful without storing every
// sample. Observations above the top bucket bound (~100s) land in a
// dedicated overflow bucket whose quantile estimate is the observed max,
// so Quantile and Max always agree for out-of-range data. The zero value
// is not usable; call NewHistogram.
type Histogram struct {
	counts []int // histBuckets regular buckets + 1 overflow bucket
	count  int
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// Histogram bucket layout: histBuckets buckets spanning histMin ..
// histMin·ratio^histBuckets with ratio chosen to cover ~100s, plus one
// overflow bucket for anything beyond the top bound.
const (
	histMin     = time.Microsecond
	histBuckets = 192
)

// histRatio is the per-bucket growth factor: 192 buckets from 1µs to 100s.
var histRatio = math.Pow(float64(100*time.Second)/float64(histMin), 1.0/float64(histBuckets-1))

// histBounds is the shared per-bucket upper bound table (ascending). Every
// histogram uses the same layout, so the table is computed once.
var histBounds = func() []time.Duration {
	bounds := make([]time.Duration, histBuckets)
	b := float64(histMin)
	for i := range bounds {
		bounds[i] = time.Duration(b)
		b *= histRatio
	}
	return bounds
}()

// NewHistogram returns an empty latency histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]int, histBuckets+1)}
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.counts[histBucket(d)]++
}

// histBucket returns the index of the bucket covering d: the regular
// log-spaced bucket, or histBuckets (the overflow bucket) when d exceeds
// the top bound.
func histBucket(d time.Duration) int {
	if d <= histBounds[0] {
		return 0
	}
	if d > histBounds[histBuckets-1] {
		return histBuckets
	}
	// Geometric layout ⇒ index is logarithmic in d; binary search keeps
	// it exact at bucket edges.
	lo, hi := 0, histBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if histBounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return h.count }

// Mean returns the arithmetic mean of the observations (zero when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation (zero when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observation (zero when empty).
func (h *Histogram) Max() time.Duration { return h.max }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Quantile returns an upper estimate of the q-quantile (q in [0, 1]): the
// upper bound of the bucket holding the q·count-th observation, clamped
// to the observed max. An observation that landed in the overflow bucket
// (beyond the ~100s top bound) estimates as the observed max, so Quantile
// never reports the top bound while Max says otherwise. Returns zero when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	seen := 0
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i >= histBuckets {
				return h.max // overflow bucket: only the max is known
			}
			b := histBounds[i]
			if b > h.max {
				b = h.max
			}
			return b
		}
	}
	return h.max
}

// Merge adds every observation of o into h. Both histograms must come
// from NewHistogram (identical bucket layout).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := NewHistogram()
	c.Merge(h)
	return c
}

// Buckets calls fn for every non-empty bucket in ascending order with the
// bucket's upper bound and its (non-cumulative) count. The overflow bucket
// is reported with an upper bound of the observed max. Used by exposition
// formats; the layout itself stays private.
func (h *Histogram) Buckets(fn func(bound time.Duration, count int)) {
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if i >= histBuckets {
			fn(h.max, c)
			continue
		}
		fn(histBounds[i], c)
	}
}

// HistogramSummary is the quantile digest of one histogram, convenient for
// JSON snapshots.
type HistogramSummary struct {
	Count int           `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Summary digests the histogram into its headline quantiles.
func (h *Histogram) Summary() HistogramSummary {
	return HistogramSummary{
		Count: h.count,
		Mean:  h.Mean(),
		Min:   h.min,
		Max:   h.max,
		P50:   h.Quantile(0.5),
		P90:   h.Quantile(0.9),
		P99:   h.Quantile(0.99),
	}
}

// String renders the summary quantiles on one line.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "latency: no observations"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "latency: n=%d mean=%s p50=%s p90=%s p99=%s max=%s",
		h.count, FmtDur(h.Mean()), FmtDur(h.Quantile(0.5)),
		FmtDur(h.Quantile(0.9)), FmtDur(h.Quantile(0.99)), FmtDur(h.max))
	return sb.String()
}
