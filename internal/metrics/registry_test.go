package metrics

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total")
	if c != r.Counter("a_total") {
		t.Fatal("counter identity not stable across lookups")
	}
	c.Inc()
	c.Add(2)
	if got := r.Counter("a_total").Value(); got != 3 {
		t.Fatalf("counter value %d, want 3", got)
	}
	g := r.Gauge("depth")
	g.Set(5)
	g.Add(-2)
	if got := r.Gauge("depth").Value(); got != 3 {
		t.Fatalf("gauge value %d, want 3", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 3 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax did not raise the gauge: %d", got)
	}
	h := r.Histogram("lat")
	h.Observe(time.Millisecond)
	if got := r.Histogram("lat").Count(); got != 1 {
		t.Fatalf("histogram count %d, want 1", got)
	}
}

func TestLiveHistogramMatchesHistogram(t *testing.T) {
	// A LiveHistogram fed the same observations as a plain Histogram must
	// snapshot to an identical value — the bit-identity contract the
	// serving report relies on.
	live := NewLiveHistogram()
	plain := NewHistogram()
	durs := []time.Duration{
		0, time.Nanosecond, time.Microsecond, 37 * time.Microsecond,
		time.Millisecond, 250 * time.Millisecond, 3 * time.Second,
		99 * time.Second, 250 * time.Second, // the last one overflows
	}
	for _, d := range durs {
		live.Observe(d)
		plain.Observe(d)
	}
	snap := live.Snapshot()
	if !reflect.DeepEqual(snap, plain) {
		t.Fatalf("snapshot %+v != plain histogram %+v", snap, plain)
	}
	// The snapshot is independent: further observations must not leak in.
	live.Observe(time.Second)
	if snap.Count() != len(durs) {
		t.Fatal("snapshot mutated by a later observation")
	}
}

func TestLiveHistogramConcurrentObserve(t *testing.T) {
	h := NewLiveHistogram()
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	// Concurrent snapshots must be well-formed and monotone in count.
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		prev := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count() < prev {
				t.Errorf("snapshot count went backwards: %d -> %d", prev, s.Count())
				return
			}
			prev = s.Count()
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
	s := h.Snapshot()
	if s.Count() != goroutines*per {
		t.Fatalf("final count %d, want %d", s.Count(), goroutines*per)
	}
	if s.Min() != 0 || s.Max() != time.Duration(goroutines*per-1)*time.Microsecond {
		t.Fatalf("min/max off: %v/%v", s.Min(), s.Max())
	}
}

func TestRegistrySnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Histogram("h").Observe(time.Millisecond)
	s1 := r.Snapshot()
	r.Counter("c").Inc()
	r.Histogram("h").Observe(time.Second)
	if s1.Counters["c"] != 1 || s1.Histograms["h"].Count() != 1 {
		t.Fatalf("snapshot not isolated from later writes: %+v", s1)
	}
	s2 := r.Snapshot()
	if s2.Counters["c"] != 2 || s2.Histograms["h"].Count() != 2 {
		t.Fatalf("second snapshot stale: %+v", s2)
	}
	names := s2.Names()
	if len(names) != 2 || names[0] != "c" || names[1] != "h" {
		t.Fatalf("names %v", names)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`shed_total{cause="queue_full"}`).Add(4)
	r.Counter(`shed_total{cause="draining"}`).Add(1)
	r.Gauge("queue_depth").Set(7)
	h := r.Histogram(`invoke_latency{backend="tpu"}`)
	h.Observe(2 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE shed_total counter",
		`shed_total{cause="queue_full"} 4`,
		`shed_total{cause="draining"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		"# TYPE invoke_latency histogram",
		`invoke_latency_bucket{backend="tpu",le="+Inf"} 2`,
		`invoke_latency_count{backend="tpu"} 2`,
		`invoke_latency_sum{backend="tpu"} 0.005`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be ascending.
	if strings.Index(out, `le="+Inf"`) < strings.Index(out, "invoke_latency_bucket{") {
		t.Fatalf("+Inf bucket not last:\n%s", out)
	}
}

func TestSplitName(t *testing.T) {
	for _, tc := range []struct{ in, base, labels string }{
		{"plain_total", "plain_total", ""},
		{`x_total{a="b"}`, "x_total", `a="b"`},
		{`x{a="b",c="d"}`, "x", `a="b",c="d"`},
		{"odd{unclosed", "odd{unclosed", ""},
	} {
		base, labels := SplitName(tc.in)
		if base != tc.base || labels != tc.labels {
			t.Fatalf("SplitName(%q) = %q, %q", tc.in, base, labels)
		}
	}
}
