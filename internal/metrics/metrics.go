// Package metrics provides the evaluation plumbing shared by the
// experiment drivers: classification metrics, runtime normalization, and
// plain-text rendering of the paper's tables and figure series.
package metrics

import (
	"fmt"
	"strings"
	"time"
)

// Accuracy returns the fraction of predictions matching labels.
func Accuracy(pred, labels []int) float64 {
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("metrics: %d predictions vs %d labels", len(pred), len(labels)))
	}
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// ConfusionMatrix counts label→prediction pairs; rows are true classes.
type ConfusionMatrix struct {
	K      int
	Counts [][]int
}

// NewConfusionMatrix builds the matrix from predictions and labels.
func NewConfusionMatrix(k int, pred, labels []int) *ConfusionMatrix {
	cm := &ConfusionMatrix{K: k, Counts: make([][]int, k)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, k)
	}
	for i, p := range pred {
		y := labels[i]
		if y >= 0 && y < k && p >= 0 && p < k {
			cm.Counts[y][p]++
		}
	}
	return cm
}

// Accuracy returns the trace fraction.
func (cm *ConfusionMatrix) Accuracy() float64 {
	diag, total := 0, 0
	for i := range cm.Counts {
		for j, c := range cm.Counts[i] {
			total += c
			if i == j {
				diag += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// PerClassRecall returns recall per true class (zero for empty classes).
func (cm *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, cm.K)
	for i := range cm.Counts {
		total := 0
		for _, c := range cm.Counts[i] {
			total += c
		}
		if total > 0 {
			out[i] = float64(cm.Counts[i][i]) / float64(total)
		}
	}
	return out
}

// Normalize divides every duration by base, yielding the paper's
// "normalized runtime" bars. A zero base yields zeros.
func Normalize(base time.Duration, values ...time.Duration) []float64 {
	out := make([]float64, len(values))
	if base == 0 {
		return out
	}
	for i, v := range values {
		out[i] = float64(v) / float64(base)
	}
	return out
}

// Speedup returns base/after as a factor (the paper's "N.NN×" numbers).
// A zero after duration yields +Inf-like large output guarded to zero base.
func Speedup(base, after time.Duration) float64 {
	if after == 0 {
		return 0
	}
	return float64(base) / float64(after)
}

// Table renders an aligned plain-text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// FmtX formats a speedup factor as the paper prints them, e.g. "4.49x".
func FmtX(f float64) string { return fmt.Sprintf("%.2fx", f) }

// FmtPct formats an accuracy as a percentage, e.g. "93.1%".
func FmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// FmtDur formats a duration with three significant digits.
func FmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3gs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3gms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.3gus", float64(d)/1e3)
	}
}

// PerClassPrecision returns precision per predicted class (zero when the
// class was never predicted).
func (cm *ConfusionMatrix) PerClassPrecision() []float64 {
	out := make([]float64, cm.K)
	for p := 0; p < cm.K; p++ {
		total := 0
		for y := 0; y < cm.K; y++ {
			total += cm.Counts[y][p]
		}
		if total > 0 {
			out[p] = float64(cm.Counts[p][p]) / float64(total)
		}
	}
	return out
}

// MacroF1 returns the unweighted mean of per-class F1 scores — the metric
// of choice when classes are imbalanced. Classes with zero precision and
// recall contribute zero.
func (cm *ConfusionMatrix) MacroF1() float64 {
	prec := cm.PerClassPrecision()
	rec := cm.PerClassRecall()
	var sum float64
	for c := 0; c < cm.K; c++ {
		if prec[c]+rec[c] > 0 {
			sum += 2 * prec[c] * rec[c] / (prec[c] + rec[c])
		}
	}
	return sum / float64(cm.K)
}
