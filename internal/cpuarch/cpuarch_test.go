package cpuarch

import (
	"testing"
	"time"
)

func TestGEMMTimeScalesLinearly(t *testing.T) {
	s := MobileI5()
	t1 := s.GEMMTime(32, 600, 10000) - s.DispatchOverhead
	t2 := s.GEMMTime(64, 600, 10000) - s.DispatchOverhead
	ratio := float64(t2) / float64(t1)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("doubling m scaled time by %v, want ~2", ratio)
	}
}

func TestGEMMTimeZeroDims(t *testing.T) {
	s := MobileI5()
	if s.GEMMTime(0, 10, 10) != 0 || s.GEMMTime(10, 0, 10) != 0 {
		t.Fatal("degenerate GEMM should be free")
	}
}

func TestGEMMTimeMatchesRate(t *testing.T) {
	s := MobileI5()
	// 2*1000*1000*1000 = 2e9 FLOPs at 20 GFLOP/s = 100 ms.
	got := s.GEMMTime(1000, 1000, 1000) - s.DispatchOverhead
	want := 100 * time.Millisecond
	if got < want*99/100 || got > want*101/100 {
		t.Fatalf("GEMMTime = %v, want ~%v", got, want)
	}
}

func TestStreamTimeMatchesBandwidth(t *testing.T) {
	s := CortexA53RPi3()
	got := s.StreamTime(int(s.StreamBytesPerSec)) - s.DispatchOverhead
	if got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Fatalf("one bandwidth-second of data took %v", got)
	}
}

func TestPlatformRatios(t *testing.T) {
	i5 := MobileI5()
	pi := CortexA53RPi3()
	// Compute-bound ratio (GEMM) must be far smaller than the
	// memory-bound ratio (streaming): this asymmetry drives the
	// different training vs inference speedups in Table II.
	gemmRatio := float64(i5.GEMMFLOPS) / float64(pi.GEMMFLOPS)
	streamRatio := float64(i5.StreamBytesPerSec) / float64(pi.StreamBytesPerSec)
	if gemmRatio < 2 || gemmRatio > 4 {
		t.Fatalf("GEMM ratio %v outside plausible [2,4]", gemmRatio)
	}
	if streamRatio < 6 || streamRatio > 15 {
		t.Fatalf("stream ratio %v outside plausible [6,15]", streamRatio)
	}
	if streamRatio <= gemmRatio {
		t.Fatal("memory-bound gap must exceed compute-bound gap")
	}
}

func TestGEMMBelowPeak(t *testing.T) {
	for _, s := range []Spec{MobileI5(), CortexA53RPi3()} {
		// Effective GEMM rate must be below an optimistic peak bound:
		// cores × freq × 32 FLOPs/cycle.
		peak := float64(s.Cores) * s.FreqHz * 32
		if s.GEMMFLOPS >= peak {
			t.Fatalf("%s: effective %v ≥ peak bound %v", s.Name, s.GEMMFLOPS, peak)
		}
	}
}

func TestTanhTimePositiveAndMonotone(t *testing.T) {
	s := MobileI5()
	small := s.TanhTime(1000)
	big := s.TanhTime(1000000)
	if small <= 0 || big <= small {
		t.Fatalf("tanh times: %v, %v", small, big)
	}
	if s.TanhTime(0) != 0 {
		t.Fatal("empty tanh should be free")
	}
}

func TestAxpyQuantizeArgMax(t *testing.T) {
	s := MobileI5()
	if s.AxpyTime(10000) <= s.DispatchOverhead {
		t.Fatal("axpy unpriced")
	}
	if s.QuantizeTime(10000) <= s.DispatchOverhead {
		t.Fatal("quantize unpriced")
	}
	if s.ArgMaxTime(10000) <= s.DispatchOverhead {
		t.Fatal("argmax unpriced")
	}
	if s.AxpyTime(0) != 0 || s.QuantizeTime(0) != 0 || s.ArgMaxTime(0) != 0 {
		t.Fatal("degenerate passes should be free")
	}
}

func TestEncodingCostDominatedByGEMM(t *testing.T) {
	// For the paper's dimensions, encoding cost must be GEMM-dominated:
	// sanity check that tanh is a small fraction.
	s := MobileI5()
	gemm := s.GEMMTime(1, 600, 10000)
	tanh := s.TanhTime(10000)
	if tanh > gemm/2 {
		t.Fatalf("tanh (%v) not small vs GEMM (%v)", tanh, gemm)
	}
}

func TestInt8GEMMTimeCheaperThanFloat(t *testing.T) {
	// Same op count but a quarter of the operand traffic: int8 GEMM must
	// never price above the float product, and it collapses to ~equal when
	// both are compute-bound.
	for _, s := range []Spec{MobileI5(), CortexA53RPi3()} {
		if i8, f32 := s.Int8GEMMTime(8, 617, 2000), s.GEMMTime(8, 617, 2000); i8 > f32 {
			t.Fatalf("%s: int8 GEMM %v above float %v", s.Name, i8, f32)
		}
	}
	s := MobileI5()
	if s.Int8GEMMTime(0, 10, 10) != 0 || s.Int8GEMMTime(10, -1, 10) != 0 {
		t.Fatal("degenerate int8 GEMM dims should be free")
	}
	t1 := s.Int8GEMMTime(32, 600, 10000) - s.DispatchOverhead
	t2 := s.Int8GEMMTime(64, 600, 10000) - s.DispatchOverhead
	if ratio := float64(t2) / float64(t1); ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("doubling m scaled int8 GEMM by %v, want ~2", ratio)
	}
}

func TestLUTTimeMatchesBandwidth(t *testing.T) {
	s := MobileI5()
	elems := 1 << 20
	got := s.LUTTime(elems) - s.DispatchOverhead
	want := time.Duration(float64(2*elems) / s.StreamBytesPerSec * float64(time.Second))
	if got != want {
		t.Fatalf("LUT pass %v, want %v", got, want)
	}
	if s.LUTTime(0) != 0 || s.LUTTime(-5) != 0 {
		t.Fatal("empty LUT pass should be free")
	}
	// A LUT pass moves 2 bytes/element vs tanh's 8: it must be cheaper.
	if s.LUTTime(elems) >= s.TanhTime(elems) {
		t.Fatalf("LUT %v not cheaper than float tanh %v", s.LUTTime(elems), s.TanhTime(elems))
	}
}

func TestPopcountGEMMTime(t *testing.T) {
	s := MobileI5()
	if got := s.PopcountGEMMTime(0, 1024, 26); got != 0 {
		t.Fatalf("zero rows priced %v", got)
	}
	// Compute-bound regime: the word-op count over BitOpsPerSec, plus
	// dispatch. 64 rows x 26 classes x 160 words at 2.5e9 ops/s.
	m, dim, k := 64, 10000, 26
	words := (dim + 63) / 64
	ops := float64(m*k*words)
	want := s.DispatchOverhead + time.Duration(ops/s.BitOpsPerSec*float64(time.Second))
	if got := s.PopcountGEMMTime(m, dim, k); got != want {
		t.Fatalf("PopcountGEMMTime = %v, want %v", got, want)
	}
	// The packed similarity must undercut the int8 GEMM it replaces by a
	// wide margin at HDC shapes — that ratio is the point of the backend.
	int8 := s.Int8GEMMTime(m, dim, k)
	if got := s.PopcountGEMMTime(m, dim, k); got >= int8/4 {
		t.Fatalf("popcount %v not well under int8 GEMM %v", got, int8)
	}
	// Partial tail words round up: dim 65 prices as 2 words.
	if a, b := s.PopcountGEMMTime(1, 65, 2), s.PopcountGEMMTime(1, 128, 2); a != b {
		t.Fatalf("dim 65 priced %v, dim 128 %v; tail word must round up", a, b)
	}
}

func TestPopcountGEMMTimeFallbackRate(t *testing.T) {
	// A spec without a calibrated BitOpsPerSec derives one from GEMMFLOPS
	// rather than dividing by zero.
	s := MobileI5()
	s.BitOpsPerSec = 0
	got := s.PopcountGEMMTime(16, 1024, 26)
	if got <= s.DispatchOverhead {
		t.Fatalf("fallback pricing %v lost the compute term", got)
	}
	s.BitOpsPerSec = s.GEMMFLOPS / 16
	if want := s.PopcountGEMMTime(16, 1024, 26); got != want {
		t.Fatalf("fallback %v != explicit GEMMFLOPS/16 rate %v", got, want)
	}
}

func TestSignPackTime(t *testing.T) {
	s := MobileI5()
	if got := s.SignPackTime(0); got != 0 {
		t.Fatalf("zero elements priced %v", got)
	}
	want := time.Duration(4.125 * 16384 / s.StreamBytesPerSec * float64(time.Second))
	if got := s.SignPackTime(16384); got != want {
		t.Fatalf("SignPackTime = %v, want %v", got, want)
	}
	// Fused into the encode pass: no dispatch overhead of its own.
	if got := s.SignPackTime(1); got >= s.DispatchOverhead {
		t.Fatalf("SignPackTime(1) = %v includes a dispatch term", got)
	}
}
