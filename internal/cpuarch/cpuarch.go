// Package cpuarch provides roofline-style cost models for the two host
// CPUs in the paper's evaluation: the mobile Intel i5-5250U driving the
// Edge TPU, and the Raspberry Pi 3's ARM Cortex-A53 used as the
// similar-power embedded baseline (Table II).
//
// The models price the three primitive workloads HDC training and
// inference are made of:
//
//   - dense GEMM (encoding and similarity search) — compute bound, priced
//     at an effective FLOP rate well under peak, as a BLAS-backed ML
//     runtime achieves on these parts;
//   - streaming element-wise passes (class-hypervector bundling/detaching,
//     tanh) — memory-bandwidth bound;
//   - fixed per-call dispatch overhead.
//
// Absolute numbers are calibrated to public measurements for these parts;
// what the experiments rely on is the *ratio structure*: the i5 is ~2.7×
// the A53 on compute-bound GEMM but ~10× on memory-bound streaming, which
// is exactly why the paper's training (update-heavy) and inference
// (GEMM-heavy) speedups over the Pi differ.
package cpuarch

import "time"

// Spec describes one CPU's effective throughput for the model's primitive
// workloads.
type Spec struct {
	Name string

	// Cores and FreqHz document the part; costs use the effective rates
	// below, which already include all-core parallel speedup.
	Cores  int
	FreqHz float64

	// GEMMFLOPS is the sustained dense-matmul rate in FLOP/s across all
	// cores (library-level efficiency, not peak).
	GEMMFLOPS float64

	// StreamBytesPerSec is the sustained memory bandwidth for streaming
	// element-wise passes.
	StreamBytesPerSec float64

	// ElemwiseFLOPS is the sustained rate for arithmetic-heavy
	// element-wise math such as tanh (transcendental, several tens of
	// FLOPs per element).
	ElemwiseFLOPS float64

	// BitOpsPerSec is the sustained rate of packed 64-bit hypervector
	// word operations (load + XOR + POPCNT + accumulate) across all
	// cores, for the bit-serial similarity kernels of binary HDC. Zero
	// means "not calibrated": pricing falls back to a conservative
	// derivation from GEMMFLOPS (see bitOps).
	BitOpsPerSec float64

	// DispatchOverhead is the fixed cost of issuing one kernel/pass.
	DispatchOverhead time.Duration

	// ActivePowerWatts is the package power while running these
	// workloads; IdlePowerWatts while waiting (e.g. for an accelerator).
	ActivePowerWatts float64
	IdlePowerWatts   float64
}

// ActiveEnergy returns the energy of running busy for d at active power,
// in joules.
func (s Spec) ActiveEnergy(d time.Duration) float64 {
	return s.ActivePowerWatts * d.Seconds()
}

// IdleEnergy returns the energy of idling for d, in joules.
func (s Spec) IdleEnergy(d time.Duration) float64 {
	return s.IdlePowerWatts * d.Seconds()
}

// MobileI5 models the Intel Core i5-5250U (Broadwell-U, 2C/4T, 1.6 GHz
// base): the paper's host laptop CPU.
func MobileI5() Spec {
	return Spec{
		Name:              "intel-i5-5250U",
		Cores:             2,
		FreqHz:            1.6e9,
		GEMMFLOPS:         20e9, // of ~83 GFLOP/s FP32 peak with AVX2+FMA
		StreamBytesPerSec: 12e9, // dual-channel LPDDR3-1866
		ElemwiseFLOPS:     6e9,
		BitOpsPerSec:      2.5e9, // scalar POPCNT ~0.8 word-ops/cycle/core
		DispatchOverhead:  5 * time.Microsecond,
		ActivePowerWatts:  9.5, // 15 W TDP part, memory-heavy mix
		IdlePowerWatts:    2.0,
	}
}

// CortexA53RPi3 models the Raspberry Pi 3 Model B (4× Cortex-A53 @
// 1.2 GHz): the embedded comparison platform of Table II.
func CortexA53RPi3() Spec {
	return Spec{
		Name:              "arm-cortex-a53-rpi3",
		Cores:             4,
		FreqHz:            1.2e9,
		GEMMFLOPS:         7.5e9, // NEON across 4 cores, in-order pipeline
		StreamBytesPerSec: 1.0e9, // single-channel LPDDR2
		ElemwiseFLOPS:     1.5e9,
		BitOpsPerSec:      0.8e9, // NEON VCNT + pairwise adds, in-order
		DispatchOverhead:  25 * time.Microsecond,
		ActivePowerWatts:  3.7, // board-level under load
		IdlePowerWatts:    1.3,
	}
}

// GEMMTime prices a dense [m,k]·[k,n] multiply as the slower of its
// compute cost (2mkn FLOPs at the effective GEMM rate) and its memory
// traffic (both operands read, result written, in float32). The traffic
// term is what makes skinny products — a handful of query rows against a
// large weight matrix — memory-bound, especially on the Pi's narrow
// memory system.
func (s Spec) GEMMTime(m, k, n int) time.Duration {
	if m <= 0 || k <= 0 || n <= 0 {
		return 0
	}
	flops := 2 * float64(m) * float64(k) * float64(n)
	bytes := 4 * (float64(m)*float64(k) + float64(k)*float64(n) + float64(m)*float64(n))
	cost := flops / s.GEMMFLOPS
	if mem := bytes / s.StreamBytesPerSec; mem > cost {
		cost = mem
	}
	return s.DispatchOverhead + time.Duration(cost*float64(time.Second))
}

// StreamTime prices a memory-bound pass over the given bytes (total bytes
// moved, reads plus writes).
func (s Spec) StreamTime(bytes int) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return s.DispatchOverhead + time.Duration(float64(bytes)/s.StreamBytesPerSec*float64(time.Second))
}

// TanhTime prices an element-wise tanh over float32 elements: the larger
// of its memory traffic (read+write) and its arithmetic cost (~24 FLOPs
// per element for a polynomial tanh).
func (s Spec) TanhTime(elems int) time.Duration {
	if elems <= 0 {
		return 0
	}
	mem := float64(8*elems) / s.StreamBytesPerSec
	alu := 24 * float64(elems) / s.ElemwiseFLOPS
	cost := mem
	if alu > cost {
		cost = alu
	}
	return s.DispatchOverhead + time.Duration(cost*float64(time.Second))
}

// AxpyTime prices y += a·x over float32 vectors of the given length
// (three streams of 4 bytes per element).
func (s Spec) AxpyTime(elems int) time.Duration {
	if elems <= 0 {
		return 0
	}
	return s.DispatchOverhead + time.Duration(float64(12*elems)/s.StreamBytesPerSec*float64(time.Second))
}

// QuantizeTime prices a float→int8 conversion pass (5 bytes per element
// moved plus a multiply-round, memory bound on these parts).
func (s Spec) QuantizeTime(elems int) time.Duration {
	if elems <= 0 {
		return 0
	}
	return s.DispatchOverhead + time.Duration(float64(5*elems)/s.StreamBytesPerSec*float64(time.Second))
}

// Int8GEMMTime prices a dense [m,k]·[k,n] multiply over int8 operands with
// int32 accumulation, as the tflite reference kernels run it on the host.
// Integer MACs retire at roughly the FP32 FMA rate on these parts (both are
// limited by the same vector units), but the operand traffic is a quarter of
// the float case — which is why quantized fallback inference is usually
// compute-bound even on the Pi. This is the pricing primitive behind the
// resilient runtime's host-CPU graceful-degradation path.
func (s Spec) Int8GEMMTime(m, k, n int) time.Duration {
	if m <= 0 || k <= 0 || n <= 0 {
		return 0
	}
	ops := 2 * float64(m) * float64(k) * float64(n)
	bytes := float64(m)*float64(k) + float64(k)*float64(n) + float64(m)*float64(n)
	cost := ops / s.GEMMFLOPS
	if mem := bytes / s.StreamBytesPerSec; mem > cost {
		cost = mem
	}
	return s.DispatchOverhead + time.Duration(cost*float64(time.Second))
}

// LUTTime prices an element-wise int8 table lookup pass (the host fallback
// for quantized TANH/LOGISTIC): one byte read and one written per element,
// memory bound.
func (s Spec) LUTTime(elems int) time.Duration {
	if elems <= 0 {
		return 0
	}
	return s.DispatchOverhead + time.Duration(float64(2*elems)/s.StreamBytesPerSec*float64(time.Second))
}

// ArgMaxTime prices a scan over float32 scores.
func (s Spec) ArgMaxTime(elems int) time.Duration {
	if elems <= 0 {
		return 0
	}
	return s.DispatchOverhead + time.Duration(float64(4*elems)/s.StreamBytesPerSec*float64(time.Second))
}

// bitOps returns the effective packed-word op rate: the calibrated
// BitOpsPerSec, or a conservative GEMMFLOPS-derived fallback for specs
// built before the field existed (one word op carries roughly the cost of
// an 8-lane FMA on these parts).
func (s Spec) bitOps() float64 {
	if s.BitOpsPerSec > 0 {
		return s.BitOpsPerSec
	}
	return s.GEMMFLOPS / 16
}

// PopcountGEMMTime prices the Hamming-agreement "GEMM" of binary HDC: m
// packed query hypervectors against k packed class hypervectors, each pair
// costing ceil(dim/64) XOR+POPCNT word operations. The roofline is the
// slower of that compute and the memory traffic (both packed operand sets
// read, an int32 agreement score per pair written) — the analog of
// Int8GEMMTime with 64 dims per word instead of one per byte, which is
// where the bit-serial deployment's order-of-magnitude arithmetic
// reduction shows up in simulated time.
func (s Spec) PopcountGEMMTime(m, dim, k int) time.Duration {
	if m <= 0 || dim <= 0 || k <= 0 {
		return 0
	}
	words := float64((dim + 63) / 64)
	ops := float64(m) * float64(k) * words
	bytes := 8*(float64(m)+float64(k))*words + 4*float64(m)*float64(k)
	cost := ops / s.bitOps()
	if mem := bytes / s.StreamBytesPerSec; mem > cost {
		cost = mem
	}
	return s.DispatchOverhead + time.Duration(cost*float64(time.Second))
}

// SignPackTime prices the fused sign-threshold + bit-pack pass over
// float32 encodings: each element is read once and contributes one bit to
// a packed word store (4.125 bytes of traffic per element), memory bound
// like the other element-wise passes. It rides the encode GEMM's dispatch
// (the fused kernel packs in the same pass), so no per-call overhead is
// added.
func (s Spec) SignPackTime(elems int) time.Duration {
	if elems <= 0 {
		return 0
	}
	return time.Duration(4.125 * float64(elems) / s.StreamBytesPerSec * float64(time.Second))
}
