package dataset

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"hdcedge/internal/rng"
)

func TestCatalogMatchesTableI(t *testing.T) {
	want := map[string][3]int{ // samples, features, classes
		"FACE":   {80854, 608, 2},
		"ISOLET": {7797, 617, 26},
		"UCIHAR": {7667, 561, 12},
		"MNIST":  {60000, 784, 10},
		"PAMAP2": {32768, 27, 5},
	}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d entries, want %d", len(cat), len(want))
	}
	for _, s := range cat {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected dataset %q", s.Name)
		}
		if s.Samples != w[0] || s.Features != w[1] || s.Classes != w[2] {
			t.Fatalf("%s: %d×%d×%d, want %v", s.Name, s.Samples, s.Features, s.Classes, w)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s spec invalid: %v", s.Name, err)
		}
	}
}

func TestCatalogSpecLookup(t *testing.T) {
	if _, err := CatalogSpec("MNIST"); err != nil {
		t.Fatal(err)
	}
	if _, err := CatalogSpec("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestGenerateShapeAndLabels(t *testing.T) {
	spec, _ := CatalogSpec("PAMAP2")
	ds, err := Generate(spec, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Samples() != 1000 || ds.Features() != 27 {
		t.Fatalf("shape %d×%d", ds.Samples(), ds.Features())
	}
	for _, y := range ds.Y {
		if y < 0 || y >= ds.Classes {
			t.Fatalf("label %d out of range", y)
		}
	}
	counts := ds.ClassCounts()
	for c, n := range counts {
		if n < 150 || n > 250 {
			t.Fatalf("class %d has %d samples of 1000; want near-balanced", c, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := SyntheticSpec(40, 500, 4, 7)
	a, err := Generate(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X.F32 {
		if a.X.F32[i] != b.X.F32[i] {
			t.Fatalf("regeneration differs at %d", i)
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(SyntheticSpec(20, 100, 3, 1), 0)
	b, _ := Generate(SyntheticSpec(20, 100, 3, 2), 0)
	same := 0
	for i := range a.X.F32 {
		if a.X.F32[i] == b.X.F32[i] {
			same++
		}
	}
	if same > len(a.X.F32)/100 {
		t.Fatalf("different seeds share %d/%d values", same, len(a.X.F32))
	}
}

func TestGenerateNormalized(t *testing.T) {
	ds, err := Generate(SyntheticSpec(30, 2000, 4, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	n, f := ds.Samples(), ds.Features()
	for j := 0; j < f; j++ {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(ds.X.Row(i)[j])
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		if math.Abs(mean) > 0.05 {
			t.Fatalf("feature %d mean %v", j, mean)
		}
		if math.Abs(variance-1) > 0.1 {
			t.Fatalf("feature %d variance %v", j, variance)
		}
	}
}

func TestGenerateClassStructureLearnable(t *testing.T) {
	// A nearest-class-centroid classifier on the raw features must beat
	// chance by a wide margin: the generator has to produce learnable
	// class structure.
	ds, err := Generate(SyntheticSpec(40, 2000, 4, 11), 0)
	if err != nil {
		t.Fatal(err)
	}
	f := ds.Features()
	cent := make([][]float64, ds.Classes)
	counts := make([]int, ds.Classes)
	for c := range cent {
		cent[c] = make([]float64, f)
	}
	half := ds.Samples() / 2
	for i := 0; i < half; i++ {
		c := ds.Y[i]
		counts[c]++
		for j, v := range ds.X.Row(i) {
			cent[c][j] += float64(v)
		}
	}
	for c := range cent {
		for j := range cent[c] {
			cent[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i := half; i < ds.Samples(); i++ {
		best, bestD := -1, math.Inf(1)
		for c := range cent {
			var d float64
			for j, v := range ds.X.Row(i) {
				diff := float64(v) - cent[c][j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == ds.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(ds.Samples()-half)
	if acc < 0.5 {
		t.Fatalf("centroid accuracy %.2f; chance is 0.25 — structure too weak", acc)
	}
}

func TestGenerateRejectsInvalidSpec(t *testing.T) {
	bad := SyntheticSpec(10, 100, 3, 1)
	bad.Classes = 1
	if _, err := Generate(bad, 0); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestSplit(t *testing.T) {
	ds, _ := Generate(SyntheticSpec(10, 1000, 4, 5), 0)
	train, test := ds.Split(0.2, rng.New(9))
	if test.Samples() != 200 || train.Samples() != 800 {
		t.Fatalf("split %d/%d", train.Samples(), test.Samples())
	}
	// Splits must preserve the multiset of labels.
	total := make([]int, ds.Classes)
	for _, y := range append(append([]int{}, train.Y...), test.Y...) {
		total[y]++
	}
	orig := ds.ClassCounts()
	for c := range orig {
		if total[c] != orig[c] {
			t.Fatalf("class %d count changed: %d vs %d", c, total[c], orig[c])
		}
	}
}

func TestSubset(t *testing.T) {
	ds, _ := Generate(SyntheticSpec(6, 50, 2, 5), 0)
	sub := ds.Subset([]int{3, 7, 7})
	if sub.Samples() != 3 {
		t.Fatalf("subset size %d", sub.Samples())
	}
	for j := range sub.X.Row(1) {
		if sub.X.Row(1)[j] != sub.X.Row(2)[j] {
			t.Fatal("repeated index rows differ")
		}
		if sub.X.Row(0)[j] != ds.X.Row(3)[j] {
			t.Fatal("subset row mismatch")
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	ds, _ := Generate(SyntheticSpec(8, 64, 3, 5), 0)
	path := filepath.Join(t.TempDir(), "ds.bin")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name || got.Classes != ds.Classes || got.Samples() != ds.Samples() {
		t.Fatal("metadata mismatch")
	}
	for i := range ds.X.F32 {
		if got.X.F32[i] != ds.X.F32[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
	for i := range ds.Y {
		if got.Y[i] != ds.Y[i] {
			t.Fatal("labels mismatch")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, _ := Generate(SyntheticSpec(5, 20, 3, 6), 0)
	path := filepath.Join(t.TempDir(), "ds.csv")
	if err := ds.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(path, ds.Classes)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples() != ds.Samples() || got.Features() != ds.Features() {
		t.Fatalf("shape %d×%d", got.Samples(), got.Features())
	}
	for i := range ds.X.F32 {
		if math.Abs(float64(got.X.F32[i]-ds.X.F32[i])) > 1e-5 {
			t.Fatalf("csv data mismatch at %d: %v vs %v", i, got.X.F32[i], ds.X.F32[i])
		}
	}
}

func TestLoadCSVInfersClasses(t *testing.T) {
	ds, _ := Generate(SyntheticSpec(4, 30, 3, 7), 0)
	path := filepath.Join(t.TempDir(), "ds.csv")
	if err := ds.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Classes != 3 {
		t.Fatalf("inferred %d classes", got.Classes)
	}
}

func TestLoadBinaryRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.bin")
	if err := os.WriteFile(path, []byte("not a dataset"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBinary(path); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSplitStratifiedPreservesDistribution(t *testing.T) {
	ds, _ := Generate(SyntheticSpec(10, 1000, 4, 20), 0)
	train, test := ds.SplitStratified(0.2, rng.New(21))
	if train.Samples()+test.Samples() != ds.Samples() {
		t.Fatalf("split loses samples: %d + %d", train.Samples(), test.Samples())
	}
	orig := ds.ClassCounts()
	testCounts := test.ClassCounts()
	for c := range orig {
		want := int(float64(orig[c]) * 0.2)
		if testCounts[c] < want-1 || testCounts[c] > want+1 {
			t.Fatalf("class %d: %d test samples, want ~%d", c, testCounts[c], want)
		}
	}
}

func TestSplitStratifiedTinyClasses(t *testing.T) {
	// Hand-build a set with a 2-member class; both splits must see it.
	ds, _ := Generate(SyntheticSpec(4, 40, 2, 22), 0)
	// Relabel two samples as a third class.
	ds.Classes = 3
	ds.Y[0], ds.Y[1] = 2, 2
	train, test := ds.SplitStratified(0.2, rng.New(23))
	if train.ClassCounts()[2] != 1 || test.ClassCounts()[2] != 1 {
		t.Fatalf("tiny class split train=%d test=%d, want 1/1",
			train.ClassCounts()[2], test.ClassCounts()[2])
	}
}

// Property-like sweep: corrupted binary datasets never panic the loader.
func TestLoadBinaryCorruptionNeverPanics(t *testing.T) {
	ds, _ := Generate(SyntheticSpec(6, 32, 3, 30), 0)
	path := filepath.Join(t.TempDir(), "ds.bin")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(raw); pos += 7 {
		for _, val := range []byte{0x00, 0xFF, 0x7F} {
			mut := append([]byte(nil), raw...)
			mut[pos] = val
			mutPath := filepath.Join(t.TempDir(), "mut.bin")
			if err := os.WriteFile(mutPath, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("loader panicked for corruption at %d: %v", pos, r)
					}
				}()
				_, _ = LoadBinary(mutPath)
			}()
		}
	}
}
