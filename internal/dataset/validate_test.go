package dataset

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func tinyDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(SyntheticSpec(4, 6, 3, 11), 0)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestLoadCSVRejectsCorruptValues(t *testing.T) {
	cases := []struct {
		name    string
		content string
		wantRow int
		wantCol int // -1 = label at fault, -2 = expect FormatError instead
	}{
		{name: "nan feature", content: "0,1.0,2.0\n1,NaN,2.0\n", wantRow: 1, wantCol: 0},
		{name: "plus inf", content: "0,1.0,+Inf\n", wantRow: 0, wantCol: 1},
		{name: "minus inf", content: "0,-Inf,2.0\n1,1.0,2.0\n", wantRow: 0, wantCol: 0},
		{name: "negative label", content: "-3,1.0,2.0\n", wantRow: 0, wantCol: -1},
		{name: "short row", content: "0,1.0,2.0\n1,1.0\n", wantCol: -2},
		{name: "long row", content: "0,1.0,2.0\n1,1.0,2.0,3.0\n", wantCol: -2},
		{name: "label only", content: "0\n", wantCol: -2},
		{name: "unparsable label", content: "x,1.0,2.0\n", wantCol: -2},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "bad.csv")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadCSV(path, 0)
			if err == nil {
				t.Fatal("corrupt CSV accepted")
			}
			if tc.wantCol == -2 {
				var fe *FormatError
				if !errors.As(err, &fe) {
					t.Fatalf("got %v, want FormatError", err)
				}
				return
			}
			var ve *ValueError
			if !errors.As(err, &ve) {
				t.Fatalf("got %v, want ValueError", err)
			}
			if ve.Row != tc.wantRow || ve.Col != tc.wantCol {
				t.Fatalf("error at row %d col %d, want row %d col %d: %v",
					ve.Row, ve.Col, tc.wantRow, tc.wantCol, ve)
			}
		})
	}
}

// binaryHeaderLen returns the byte offset of the X payload in d's Save
// output: magic + 4 u32 fields + name bytes.
func binaryHeaderLen(d *Dataset) int { return 4 + 4*4 + len(d.Name) }

func TestLoadBinaryRejectsCorruptValues(t *testing.T) {
	ds := tinyDataset(t)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.bin")
	if err := ds.Save(good); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	hdr := binaryHeaderLen(ds)
	xBytes := 4 * ds.Samples() * ds.Features()

	cases := []struct {
		name    string
		corrupt func(b []byte) []byte
		wantCol int // as above; -3 = any error is fine (truncation)
	}{
		{
			name: "nan feature",
			corrupt: func(b []byte) []byte {
				// Row 1, col 2 becomes NaN.
				off := hdr + 4*(1*ds.Features()+2)
				binary.LittleEndian.PutUint32(b[off:], math.Float32bits(float32(math.NaN())))
				return b
			},
			wantCol: 2,
		},
		{
			name: "inf feature",
			corrupt: func(b []byte) []byte {
				off := hdr + 4*(0*ds.Features()+0)
				binary.LittleEndian.PutUint32(b[off:], math.Float32bits(float32(math.Inf(1))))
				return b
			},
			wantCol: 0,
		},
		{
			name: "label out of range",
			corrupt: func(b []byte) []byte {
				off := hdr + xBytes // first label
				binary.LittleEndian.PutUint32(b[off:], 999)
				return b
			},
			wantCol: -1,
		},
		{
			name:    "truncated mid-features",
			corrupt: func(b []byte) []byte { return b[:hdr+xBytes/2] },
			wantCol: -3,
		},
		{
			name:    "truncated mid-labels",
			corrupt: func(b []byte) []byte { return b[:len(b)-2] },
			wantCol: -3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.corrupt(append([]byte(nil), blob...))
			path := filepath.Join(dir, "bad.bin")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadBinary(path)
			if err == nil {
				t.Fatal("corrupt binary accepted")
			}
			if tc.wantCol == -3 {
				return
			}
			var ve *ValueError
			if !errors.As(err, &ve) {
				t.Fatalf("got %v, want ValueError", err)
			}
			if ve.Col != tc.wantCol {
				t.Fatalf("error at col %d, want %d: %v", ve.Col, tc.wantCol, ve)
			}
		})
	}

	// The untouched blob still round-trips.
	if _, err := LoadBinary(good); err != nil {
		t.Fatalf("clean blob rejected: %v", err)
	}
}

func TestValidateDirect(t *testing.T) {
	ds := tinyDataset(t)
	if err := ds.Validate("mem"); err != nil {
		t.Fatalf("clean dataset rejected: %v", err)
	}
	ds.X.F32[5] = float32(math.NaN())
	var ve *ValueError
	if err := ds.Validate("mem"); !errors.As(err, &ve) {
		t.Fatalf("NaN not caught: %v", err)
	}
	ds.X.F32[5] = 0
	ds.Y[0] = ds.Classes
	if err := ds.Validate("mem"); !errors.As(err, &ve) || ve.Col != -1 {
		t.Fatalf("bad label not caught: %v", err)
	}
}
