package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"hdcedge/internal/tensor"
)

// Binary dataset format (little endian): magic "HDS1", then
// samples u32, features u32, classes u32, name string (u32 + bytes),
// X as float32 row-major, Y as u32.

const dsMagic = "HDS1"

// Save writes the dataset in the package's binary format.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := d.write(w); err != nil {
		f.Close()
		return fmt.Errorf("dataset: writing %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (d *Dataset) write(w *bufio.Writer) error {
	if _, err := w.WriteString(dsMagic); err != nil {
		return err
	}
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		w.Write(b[:])
	}
	putU32(uint32(d.Samples()))
	putU32(uint32(d.Features()))
	putU32(uint32(d.Classes))
	putU32(uint32(len(d.Name)))
	w.WriteString(d.Name)
	for _, v := range d.X.F32 {
		putU32(math.Float32bits(v))
	}
	for _, y := range d.Y {
		putU32(uint32(y))
	}
	return nil
}

// LoadBinary reads a dataset written by Save.
func LoadBinary(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		return nil, err
	}
	if string(mg[:]) != dsMagic {
		return nil, fmt.Errorf("dataset: bad magic %q in %s", mg, path)
	}
	getU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	samples, err := getU32()
	if err != nil {
		return nil, err
	}
	features, err := getU32()
	if err != nil {
		return nil, err
	}
	classes, err := getU32()
	if err != nil {
		return nil, err
	}
	if samples > 1<<26 || features > 1<<20 {
		return nil, fmt.Errorf("dataset: implausible dims %d×%d", samples, features)
	}
	nameLen, err := getU32()
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("dataset: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, err
	}
	ds := &Dataset{
		Name:    string(name),
		Classes: int(classes),
		X:       tensor.New(tensor.Float32, int(samples), int(features)),
		Y:       make([]int, samples),
	}
	for i := range ds.X.F32 {
		bits, err := getU32()
		if err != nil {
			return nil, err
		}
		ds.X.F32[i] = math.Float32frombits(bits)
	}
	for i := range ds.Y {
		y, err := getU32()
		if err != nil {
			return nil, err
		}
		ds.Y[i] = int(y)
	}
	if err := ds.Validate(path); err != nil {
		return nil, err
	}
	return ds, nil
}

// SaveCSV writes the dataset as label-first CSV rows.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for i := 0; i < d.Samples(); i++ {
		fmt.Fprintf(w, "%d", d.Y[i])
		for _, v := range d.X.Row(i) {
			fmt.Fprintf(w, ",%g", v)
		}
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCSV reads label-first CSV rows. classes, when zero, is inferred as
// max(label)+1.
func LoadCSV(path string, classes int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var rows [][]float32
	var labels []int
	features := -1
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 2 {
			return nil, &FormatError{Path: path, Line: lineNo, Msg: "need label and features"}
		}
		y, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, &FormatError{Path: path, Line: lineNo, Msg: fmt.Sprintf("bad label: %v", err)}
		}
		if features == -1 {
			features = len(parts) - 1
		} else if len(parts)-1 != features {
			return nil, &FormatError{Path: path, Line: lineNo,
				Msg: fmt.Sprintf("%d features, want %d", len(parts)-1, features)}
		}
		row := make([]float32, features)
		for j, p := range parts[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: %s line %d col %d: %w", path, lineNo, j+1, err)
			}
			row[j] = float32(v)
		}
		rows = append(rows, row)
		labels = append(labels, y)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: %s is empty", path)
	}
	if classes == 0 {
		for _, y := range labels {
			if y+1 > classes {
				classes = y + 1
			}
		}
	}
	ds := &Dataset{
		Name:    strings.TrimSuffix(path, ".csv"),
		Classes: classes,
		X:       tensor.New(tensor.Float32, len(rows), features),
		Y:       labels,
	}
	for i, row := range rows {
		copy(ds.X.Row(i), row)
	}
	if err := ds.Validate(path); err != nil {
		return nil, err
	}
	return ds, nil
}
