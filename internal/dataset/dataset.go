// Package dataset provides deterministic synthetic stand-ins for the five
// evaluation datasets of Table I, plus a parametric generator for the
// feature-count sweep of Fig 10.
//
// The real datasets are not redistributable inside this repository, so each
// catalog entry generates data with the paper's exact shape (samples ×
// features × classes) and with the statistical structure HDC learning
// dynamics depend on: every class is a mixture of several latent-space
// prototypes (so the classes are clustered but not linearly separable in
// general), lifted to the full feature dimension through a random linear
// map and perturbed with feature noise. Difficulty is controlled per
// dataset so that accuracy ranges resemble the paper's Fig 7.
package dataset

import (
	"fmt"
	"math"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// Dataset is a labelled design matrix. X has shape [Samples, Features].
type Dataset struct {
	Name     string
	Classes  int
	X        *tensor.Tensor
	Y        []int
	Metadata Spec
}

// Samples returns the number of rows.
func (d *Dataset) Samples() int { return d.X.Shape[0] }

// Features returns the number of columns.
func (d *Dataset) Features() int { return d.X.Shape[1] }

// Spec describes one synthetic dataset.
type Spec struct {
	Name        string
	Samples     int
	Features    int
	Classes     int
	Description string

	// LatentDim is the dimensionality of the class-structure space the
	// observations are lifted from.
	LatentDim int
	// ModesPerClass is how many prototype clusters make up each class;
	// values above 1 make the classes non-linearly-separable.
	ModesPerClass int
	// ClusterSpread is the within-mode standard deviation relative to
	// the unit distance between prototypes.
	ClusterSpread float64
	// NoiseStd is additive observation noise in feature space.
	NoiseStd float64
	// Seed makes generation reproducible.
	Seed uint64
}

// Validate reports structural problems with a spec.
func (s Spec) Validate() error {
	switch {
	case s.Samples <= 0:
		return fmt.Errorf("dataset %s: non-positive sample count %d", s.Name, s.Samples)
	case s.Features <= 0:
		return fmt.Errorf("dataset %s: non-positive feature count %d", s.Name, s.Features)
	case s.Classes < 2:
		return fmt.Errorf("dataset %s: need at least 2 classes, got %d", s.Name, s.Classes)
	case s.LatentDim <= 0:
		return fmt.Errorf("dataset %s: non-positive latent dim %d", s.Name, s.LatentDim)
	case s.ModesPerClass <= 0:
		return fmt.Errorf("dataset %s: non-positive modes per class %d", s.Name, s.ModesPerClass)
	}
	return nil
}

// Catalog returns the five datasets of Table I with the paper's shapes.
func Catalog() []Spec {
	return []Spec{
		{
			Name: "FACE", Samples: 80854, Features: 608, Classes: 2,
			Description: "Facial images",
			LatentDim:   24, ModesPerClass: 4, ClusterSpread: 0.65, NoiseStd: 0.55, Seed: 0xFACE,
		},
		{
			Name: "ISOLET", Samples: 7797, Features: 617, Classes: 26,
			Description: "Speech Data",
			LatentDim:   40, ModesPerClass: 2, ClusterSpread: 0.60, NoiseStd: 0.50, Seed: 0x150,
		},
		{
			Name: "UCIHAR", Samples: 7667, Features: 561, Classes: 12,
			Description: "Human Activity Logs",
			LatentDim:   32, ModesPerClass: 3, ClusterSpread: 0.60, NoiseStd: 0.55, Seed: 0x11A2,
		},
		{
			Name: "MNIST", Samples: 60000, Features: 784, Classes: 10,
			Description: "Handwritten Digits",
			LatentDim:   30, ModesPerClass: 3, ClusterSpread: 0.60, NoiseStd: 0.50, Seed: 0x3157,
		},
		{
			Name: "PAMAP2", Samples: 32768, Features: 27, Classes: 5,
			Description: "Human Activity Logs",
			LatentDim:   12, ModesPerClass: 3, ClusterSpread: 0.55, NoiseStd: 0.45, Seed: 0x9A4A,
		},
	}
}

// CatalogSpec returns the catalog entry with the given name.
func CatalogSpec(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown catalog entry %q", name)
}

// SyntheticSpec returns a parametric dataset for scaling sweeps (Fig 10).
func SyntheticSpec(features, samples, classes int, seed uint64) Spec {
	return Spec{
		Name:     fmt.Sprintf("synthetic-n%d", features),
		Samples:  samples,
		Features: features,
		Classes:  classes,
		LatentDim: func() int {
			if features < 16 {
				return features
			}
			return 16
		}(),
		ModesPerClass: 2,
		ClusterSpread: 0.5,
		NoiseStd:      0.3,
		Seed:          seed,
	}
}

// Generate materializes the spec. maxSamples, when positive, caps the
// number of rows generated (functional experiments subsample the large
// catalog datasets; runtime models still use the full Table I counts).
func Generate(spec Spec, maxSamples int) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.Samples
	if maxSamples > 0 && maxSamples < n {
		n = maxSamples
	}
	r := rng.New(spec.Seed)

	// Class prototypes: ModesPerClass latent centers per class, scaled so
	// inter-prototype distance is O(1) relative to ClusterSpread.
	nModes := spec.Classes * spec.ModesPerClass
	protos := make([][]float32, nModes)
	for i := range protos {
		p := make([]float32, spec.LatentDim)
		r.FillNormal(p)
		protos[i] = p
	}

	// Random lift from latent to feature space, shared by all samples.
	lift := tensor.New(tensor.Float32, spec.LatentDim, spec.Features)
	r.FillNormal(lift.F32)
	tensor.Scale(lift, float32(1.0/float64(spec.LatentDim))*4)

	ds := &Dataset{
		Name:     spec.Name,
		Classes:  spec.Classes,
		X:        tensor.New(tensor.Float32, n, spec.Features),
		Y:        make([]int, n),
		Metadata: spec,
	}
	z := make([]float32, spec.LatentDim)
	for i := 0; i < n; i++ {
		class := i % spec.Classes // balanced classes
		mode := r.Intn(spec.ModesPerClass)
		p := protos[class*spec.ModesPerClass+mode]
		for j := range z {
			z[j] = p[j] + float32(spec.ClusterSpread*r.NormFloat64())
		}
		row := ds.X.Row(i)
		tensor.VecMat(row, z, lift)
		for j := range row {
			row[j] += float32(spec.NoiseStd * r.NormFloat64())
		}
		ds.Y[i] = class
	}
	normalize(ds)
	// Shuffle rows so contiguous slices are class-balanced.
	r.Shuffle(n, func(a, b int) {
		ra, rb := ds.X.Row(a), ds.X.Row(b)
		for j := range ra {
			ra[j], rb[j] = rb[j], ra[j]
		}
		ds.Y[a], ds.Y[b] = ds.Y[b], ds.Y[a]
	})
	return ds, nil
}

// normalize standardizes each feature to zero mean, unit variance, then
// rescales rows into the range HDC encoding expects (features of O(1)).
func normalize(ds *Dataset) {
	n, f := ds.Samples(), ds.Features()
	if n == 0 {
		return
	}
	mean := make([]float64, f)
	m2 := make([]float64, f)
	for i := 0; i < n; i++ {
		row := ds.X.Row(i)
		for j, v := range row {
			mean[j] += float64(v)
			m2[j] += float64(v) * float64(v)
		}
	}
	inv := 1 / float64(n)
	std := make([]float64, f)
	for j := range mean {
		mean[j] *= inv
		variance := m2[j]*inv - mean[j]*mean[j]
		if variance < 1e-12 {
			variance = 1
		}
		std[j] = math.Sqrt(variance)
	}
	for i := 0; i < n; i++ {
		row := ds.X.Row(i)
		for j := range row {
			row[j] = float32((float64(row[j]) - mean[j]) / std[j])
		}
	}
}

// Split partitions the dataset into train and test parts; testFrac of the
// rows (rounded down, at least one when possible) go to the test set. The
// split is deterministic given r.
func (d *Dataset) Split(testFrac float64, r *rng.RNG) (train, test *Dataset) {
	n := d.Samples()
	nTest := int(float64(n) * testFrac)
	if nTest < 1 && n > 1 {
		nTest = 1
	}
	perm := r.Perm(n)
	test = d.subset(perm[:nTest])
	train = d.subset(perm[nTest:])
	return train, test
}

// Subset returns the rows at the given indices as a new dataset.
func (d *Dataset) Subset(idx []int) *Dataset { return d.subset(idx) }

func (d *Dataset) subset(idx []int) *Dataset {
	f := d.Features()
	out := &Dataset{
		Name:     d.Name,
		Classes:  d.Classes,
		X:        tensor.New(tensor.Float32, len(idx), f),
		Y:        make([]int, len(idx)),
		Metadata: d.Metadata,
	}
	for i, src := range idx {
		copy(out.X.Row(i), d.X.Row(src))
		out.Y[i] = d.Y[src]
	}
	return out
}

// ClassCounts returns a histogram of the labels.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		if y >= 0 && y < d.Classes {
			counts[y]++
		}
	}
	return counts
}

// WithNoise returns a copy of the dataset with i.i.d. Gaussian noise of
// the given standard deviation added to every feature. Because generated
// datasets are standardized, std is directly in units of feature standard
// deviations. It exercises the noise-tolerance claim HDC systems make.
func (d *Dataset) WithNoise(std float64, r *rng.RNG) *Dataset {
	out := &Dataset{
		Name:     d.Name,
		Classes:  d.Classes,
		X:        d.X.Clone(),
		Y:        append([]int(nil), d.Y...),
		Metadata: d.Metadata,
	}
	for i := range out.X.F32 {
		out.X.F32[i] += float32(std * r.NormFloat64())
	}
	return out
}

// SplitStratified partitions the dataset like Split but preserves the
// class distribution in both parts: testFrac of each class's samples
// (rounded down, at least one when the class has two or more) goes to the
// test set.
func (d *Dataset) SplitStratified(testFrac float64, r *rng.RNG) (train, test *Dataset) {
	byClass := make([][]int, d.Classes)
	for i, y := range d.Y {
		if y >= 0 && y < d.Classes {
			byClass[y] = append(byClass[y], i)
		}
	}
	var trainIdx, testIdx []int
	for _, members := range byClass {
		r.Shuffle(len(members), func(a, b int) { members[a], members[b] = members[b], members[a] })
		nTest := int(float64(len(members)) * testFrac)
		if nTest < 1 && len(members) > 1 {
			nTest = 1
		}
		testIdx = append(testIdx, members[:nTest]...)
		trainIdx = append(trainIdx, members[nTest:]...)
	}
	// Shuffle the concatenated per-class runs so batches are mixed.
	r.Shuffle(len(trainIdx), func(a, b int) { trainIdx[a], trainIdx[b] = trainIdx[b], trainIdx[a] })
	r.Shuffle(len(testIdx), func(a, b int) { testIdx[a], testIdx[b] = testIdx[b], testIdx[a] })
	return d.subset(trainIdx), d.subset(testIdx)
}
