package dataset

import (
	"fmt"
	"math"
)

// ValueError reports a corrupt value discovered while loading or validating
// a dataset: a non-finite feature, or a label outside [0, Classes).
type ValueError struct {
	Path   string
	Row    int
	Col    int // feature column; -1 when the label is at fault
	Value  float64
	Reason string
}

func (e *ValueError) Error() string {
	if e.Col < 0 {
		return fmt.Sprintf("dataset: %s row %d: label %v: %s", e.Path, e.Row, e.Value, e.Reason)
	}
	return fmt.Sprintf("dataset: %s row %d col %d: value %v: %s", e.Path, e.Row, e.Col, e.Value, e.Reason)
}

// FormatError reports a structural problem in a dataset file, such as a row
// whose length disagrees with the rest of the file.
type FormatError struct {
	Path string
	Line int // 1-based line (CSV) or 0 when not line-addressable
	Msg  string
}

func (e *FormatError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("dataset: %s line %d: %s", e.Path, e.Line, e.Msg)
	}
	return fmt.Sprintf("dataset: %s: %s", e.Path, e.Msg)
}

// Validate scans every feature and label: features must be finite, labels
// must lie in [0, Classes) (when Classes is known). path labels the error.
// Both loaders call this, so corrupt files fail at load, not mid-training.
func (d *Dataset) Validate(path string) error {
	for i := 0; i < d.Samples(); i++ {
		for j, v := range d.X.Row(i) {
			f := float64(v)
			if math.IsNaN(f) {
				return &ValueError{Path: path, Row: i, Col: j, Value: f, Reason: "NaN feature"}
			}
			if math.IsInf(f, 0) {
				return &ValueError{Path: path, Row: i, Col: j, Value: f, Reason: "non-finite feature"}
			}
		}
	}
	for i, y := range d.Y {
		if y < 0 || (d.Classes > 0 && y >= d.Classes) {
			return &ValueError{Path: path, Row: i, Col: -1, Value: float64(y),
				Reason: fmt.Sprintf("label outside [0, %d)", d.Classes)}
		}
	}
	return nil
}
