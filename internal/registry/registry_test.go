package registry

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/integrity"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
)

// testModel compiles a small HDC classifier at the given dimension.
func testModel(t *testing.T, dim int, seed uint64) *edgetpu.CompiledModel {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(16, 60, 3, 7), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: dim, Epochs: 1, LearningRate: 1, Nonlinear: true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := pipeline.CompileInference(pipeline.EdgeTPU(), model, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestRegisterComputesFootprintAndSetup(t *testing.T) {
	g := New()
	cm := testModel(t, 256, 1)
	e, err := g.Register("a", cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := cm.MemoryMap().Used; e.Footprint != want {
		t.Fatalf("footprint %d != memory-map used %d", e.Footprint, want)
	}
	if e.Footprint < cm.ParamBytes {
		t.Fatalf("aligned footprint %d below raw param bytes %d", e.Footprint, cm.ParamBytes)
	}
	want := cm.Config.TransferTime(e.BlobBytes) + cm.Config.TransferTime(e.Footprint)
	if e.Setup != want {
		t.Fatalf("setup %v != transfer roofline %v", e.Setup, want)
	}
	if e.Setup <= 0 {
		t.Fatal("setup cost must be positive")
	}
	if _, err := g.Register("a", cm, nil); err == nil {
		t.Fatal("duplicate register must fail")
	}
	if _, err := g.Register("", cm, nil); err == nil {
		t.Fatal("empty ID must fail")
	}
	if got := g.IDs(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("IDs %v", got)
	}
}

func TestSwapBumpsVersionAndInvalidatesResidency(t *testing.T) {
	g := New()
	cm := testModel(t, 256, 1)
	e1, err := g.Register("a", cm, nil)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := g.NewDeviceMemory(0, e1.Footprint*2, EvictLRU)
	if err != nil {
		t.Fatal(err)
	}
	if adm := mem.Acquire(e1); adm.Hit {
		t.Fatal("first touch must miss")
	}
	if adm := mem.Acquire(e1); !adm.Hit {
		t.Fatal("second touch must hit")
	}
	e2, err := g.Swap("a", testModel(t, 256, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Version != e1.Version+1 {
		t.Fatalf("swap version %d, want %d", e2.Version, e1.Version+1)
	}
	adm := mem.Acquire(e2)
	if adm.Hit {
		t.Fatal("swapped model must miss: stale parameters are invalid")
	}
	if !adm.Resident {
		t.Fatal("swapped model should re-load resident")
	}
	if _, err := g.Swap("nope", cm, nil); err == nil {
		t.Fatal("swap of unregistered ID must fail")
	}
}

// lruScenario drives a fixed arrival order through a fresh registry +
// device memory and returns the event log and stats.
func lruScenario(t *testing.T, policy EvictPolicy, reg *metrics.Registry) ([]Event, MemStats) {
	t.Helper()
	g := New()
	var entries []*Entry
	for _, id := range []string{"a", "b", "c"} {
		e, err := g.Register(id, testModel(t, 256, 1), nil)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	// Budget holds exactly two of the three same-sized models.
	mem, err := g.NewDeviceMemory(0, entries[0].Footprint*2, policy)
	if err != nil {
		t.Fatal(err)
	}
	if reg != nil {
		mem.Instrument(reg, `worker="0"`)
	}
	// a b a c a b: classic LRU exercise.
	for _, i := range []int{0, 1, 0, 2, 0, 1} {
		mem.Acquire(entries[i])
	}
	return mem.Events(), mem.Stats()
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	evs, st := lruScenario(t, EvictLRU, nil)
	// a miss, b miss, a hit, (evict b) c miss, a hit, (evict c) b miss.
	var kinds []EventKind
	var models []string
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
		models = append(models, e.Model)
	}
	wantKinds := []EventKind{EvMiss, EvMiss, EvHit, EvEvict, EvMiss, EvHit, EvEvict, EvMiss}
	wantModels := []string{"a", "b", "a", "b", "c", "a", "c", "b"}
	if !reflect.DeepEqual(kinds, wantKinds) || !reflect.DeepEqual(models, wantModels) {
		t.Fatalf("event stream %v %v, want %v %v", kinds, models, wantKinds, wantModels)
	}
	if st.Hits != 2 || st.Misses != 4 || st.Evictions != 2 {
		t.Fatalf("stats %+v", st)
	}
	// Seq must be strictly increasing (total order).
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seq not increasing at %d: %v", i, evs)
		}
	}
}

func TestPinFirstNeverEvicts(t *testing.T) {
	evs, st := lruScenario(t, PinFirst, nil)
	// a and b pin; c streams on every access and evicts nobody.
	for _, e := range evs {
		if e.Kind == EvEvict {
			t.Fatalf("pin-first evicted %s: %v", e.Model, evs)
		}
		if e.Model == "c" && e.Resident {
			t.Fatalf("pin-first made c resident: %v", evs)
		}
	}
	if st.Evictions != 0 || st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("stats %+v", st)
	}
}

// TestEvictionDeterministic: the same arrival order yields bit-identical
// event sequences and re-setup billing, run to run. Runs under -race via
// make tenant-smoke.
func TestEvictionDeterministic(t *testing.T) {
	reg1 := metrics.NewRegistry()
	evs1, st1 := lruScenario(t, EvictLRU, reg1)
	evs2, st2 := lruScenario(t, EvictLRU, metrics.NewRegistry())
	if !reflect.DeepEqual(evs1, evs2) {
		t.Fatalf("event sequences diverge:\n%v\n%v", evs1, evs2)
	}
	if st1 != st2 {
		t.Fatalf("billing diverges: %+v vs %+v", st1, st2)
	}
	if st1.SwapTime <= 0 {
		t.Fatal("no re-setup billed")
	}
	snap := reg1.Snapshot()
	if n := snap.Counters[`hdc_registry_misses_total{worker="0"}`]; n != int64(st1.Misses) {
		t.Fatalf("instrumented misses %d != stats %d", n, st1.Misses)
	}
	if n := snap.Counters[`hdc_registry_swap_ns_total{worker="0"}`]; n != int64(st1.SwapTime) {
		t.Fatalf("instrumented swap ns %d != stats %v", n, st1.SwapTime)
	}
}

func TestOversizedModelStreams(t *testing.T) {
	g := New()
	e, err := g.Register("big", testModel(t, 1024, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := g.NewDeviceMemory(0, e.Footprint/2, EvictLRU)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		adm := mem.Acquire(e)
		if adm.Hit || adm.Resident || adm.Setup != e.Setup {
			t.Fatalf("touch %d: oversized model should stream: %+v", i, adm)
		}
	}
	if st := mem.Stats(); st.Misses != 2 || st.Used != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPreloadSkipsBilling(t *testing.T) {
	g := New()
	e, err := g.Register("a", testModel(t, 256, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := g.NewDeviceMemory(0, e.Footprint*2, EvictLRU)
	if err != nil {
		t.Fatal(err)
	}
	mem.Preload(e)
	if evs := mem.Events(); len(evs) != 0 {
		t.Fatalf("preload emitted events: %v", evs)
	}
	if adm := mem.Acquire(e); !adm.Hit {
		t.Fatal("preloaded model must hit")
	}
	if st := mem.Stats(); st.Misses != 0 || st.SwapTime != 0 {
		t.Fatalf("preload billed: %+v", st)
	}
}

func TestGoldenSharedAcrossCalls(t *testing.T) {
	g := New()
	e, err := g.Register("a", testModel(t, 256, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := e.Golden()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := e.Golden()
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 || g1 == nil {
		t.Fatal("golden must be computed once and shared")
	}
}

// TestSwapPublicationAtomicUnderReaders hammers Swap from a trainer-style
// publisher while reader goroutines Get concurrently (the serving bind
// path): every observed entry must be internally consistent — its
// Compiled pointer one of the published models with the footprint, blob
// size and setup priced from exactly that model — and versions must be
// monotone per reader. Runs under -race via make online-smoke.
func TestSwapPublicationAtomicUnderReaders(t *testing.T) {
	const swaps = 200
	g := New()
	models := []*edgetpu.CompiledModel{
		testModel(t, 256, 1), testModel(t, 256, 2), testModel(t, 256, 3),
	}
	type fp struct {
		footprint, blob int
	}
	want := map[*edgetpu.CompiledModel]fp{}
	for _, cm := range models {
		want[cm] = fp{footprint: cm.MemoryMap().Used, blob: len(cm.Model.Marshal())}
	}
	if _, err := g.Register("m", models[0], nil); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	readerErr := make(chan error, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for {
				e, ok := g.Get("m")
				if !ok || e == nil {
					readerErr <- errors.New("registered model vanished")
					return
				}
				exp, known := want[e.Compiled]
				if !known {
					readerErr <- errors.New("entry holds an unpublished compiled model")
					return
				}
				if e.Footprint != exp.footprint || e.BlobBytes != exp.blob {
					readerErr <- fmt.Errorf("torn entry: footprint %d blob %d, want %d %d",
						e.Footprint, e.BlobBytes, exp.footprint, exp.blob)
					return
				}
				if e.Version < last {
					readerErr <- fmt.Errorf("version went backwards: %d after %d", e.Version, last)
					return
				}
				last = e.Version
				if g.Len() != 1 || len(g.IDs()) != 1 {
					readerErr <- errors.New("catalog shape changed under swaps")
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	for i := 1; i <= swaps; i++ {
		e, err := g.Swap("m", models[i%len(models)], nil)
		if err != nil {
			t.Fatal(err)
		}
		if e.Version != i+1 {
			t.Fatalf("swap %d produced version %d", i, e.Version)
		}
	}
	close(done)
	wg.Wait()
	close(readerErr)
	for err := range readerErr {
		t.Fatal(err)
	}
	if e, _ := g.Get("m"); e.Version != swaps+1 {
		t.Fatalf("final version %d, want %d", e.Version, swaps+1)
	}
}

// TestSetIntegrityPreservesPublishedEntries pins the copy-on-write
// contract: attaching a policy must not mutate the entry a worker already
// holds — it installs a fresh entry at the same version.
func TestSetIntegrityPreservesPublishedEntries(t *testing.T) {
	g := New()
	if _, err := g.Register("a", testModel(t, 256, 1), nil); err != nil {
		t.Fatal(err)
	}
	before, _ := g.Get("a")
	pol := &integrity.Policy{}
	if err := g.SetIntegrity("a", pol); err != nil {
		t.Fatal(err)
	}
	if before.Integrity != nil {
		t.Fatal("SetIntegrity mutated a published entry in place")
	}
	after, _ := g.Get("a")
	if after == before {
		t.Fatal("SetIntegrity did not install a fresh entry")
	}
	if after.Integrity != pol || after.Version != before.Version || after.Compiled != before.Compiled {
		t.Fatalf("replacement entry inconsistent: %+v", after)
	}
	if err := g.SetIntegrity("ghost", nil); err == nil {
		t.Fatal("SetIntegrity on unknown model accepted")
	}
}
