package registry

import (
	"fmt"
	"sync"
	"time"

	"hdcedge/internal/metrics"
)

// EvictPolicy selects how a DeviceMemory makes room under pressure.
type EvictPolicy int

const (
	// EvictLRU evicts the least-recently-used resident models until the
	// incoming one fits — the adaptive policy.
	EvictLRU EvictPolicy = iota
	// PinFirst pins the models in first-touch order: whatever fit first
	// stays resident forever, and later models stream (pay full re-setup
	// on every access). The static baseline the LRU ablation is judged
	// against.
	PinFirst
)

// String renders the policy.
func (p EvictPolicy) String() string {
	switch p {
	case EvictLRU:
		return "lru"
	case PinFirst:
		return "pin-first"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// EventKind classifies one residency transition.
type EventKind int

const (
	// EvHit: the model was resident; the invoke pays nothing.
	EvHit EventKind = iota
	// EvMiss: the model was not resident; the invoke pays Setup. If the
	// model fit (after any evictions) it is now resident; a model larger
	// than the whole budget streams and stays non-resident.
	EvMiss
	// EvEvict: a resident model was pushed out to make room.
	EvEvict
)

// String renders the kind.
func (k EventKind) String() string {
	switch k {
	case EvHit:
		return "hit"
	case EvMiss:
		return "miss"
	case EvEvict:
		return "evict"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one typed residency transition. Seq is drawn from the owning
// registry's global counter, so events merged across devices sort into one
// total order; within a device they are already ordered.
type Event struct {
	Seq      uint64
	Device   int // the DeviceMemory's device index
	Kind     EventKind
	Model    string
	Version  int
	Bytes    int           // the model's footprint
	Setup    time.Duration // re-setup billed (EvMiss only)
	Resident bool          // whether the model is resident after the event
}

// String renders the event.
func (e Event) String() string {
	s := fmt.Sprintf("#%d dev%d %s %s@v%d (%dB)", e.Seq, e.Device, e.Kind, e.Model, e.Version, e.Bytes)
	if e.Kind == EvMiss {
		s += fmt.Sprintf(" setup=%v resident=%v", e.Setup, e.Resident)
	}
	return s
}

// Admission is what one Acquire decided: whether the model was already
// on-chip, what re-setup the invoke must be billed, and who was evicted to
// make room.
type Admission struct {
	Hit      bool
	Resident bool // resident after this admission
	Setup    time.Duration
	Evicted  []string
}

// MemStats is one DeviceMemory's running accounting.
type MemStats struct {
	Device    int
	Budget    int
	Used      int
	Resident  int // resident model count
	Hits      int
	Misses    int
	Evictions int
	SwapTime  time.Duration // total re-setup billed
}

// resident is one on-chip model.
type resident struct {
	id      string
	version int
	bytes   int
	lastUse uint64 // logical-clock touch, not wall time: deterministic
}

// memMetrics are a DeviceMemory's optional live registry handles.
type memMetrics struct {
	hits, misses, evictions, swapNs *metrics.Counter
	used, residentN                 *metrics.Gauge
}

// eventCap bounds the retained event log per device; a long-running server
// keeps the most recent transitions, which is what operators and the
// determinism tests look at.
const eventCap = 4096

// DeviceMemory simulates one accelerator's bounded on-chip parameter
// memory over the registry's model footprints. Acquire is called by the
// owning worker before each invoke; reads (Stats, Events, Resident) are
// safe from anywhere. Eviction order uses a logical touch counter, never
// wall time, so the same arrival order always yields the same eviction
// sequence and the same re-setup billing.
type DeviceMemory struct {
	reg    *Registry
	device int
	budget int
	policy EvictPolicy

	mu     sync.Mutex
	models map[string]*resident
	used   int
	tick   uint64
	stats  MemStats
	events []Event
	met    *memMetrics
}

// NewDeviceMemory creates the occupancy tracker for one device. budget is
// the parameter-memory size in bytes and must be positive.
func (g *Registry) NewDeviceMemory(device, budget int, policy EvictPolicy) (*DeviceMemory, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("registry: device %d memory budget %d must be positive", device, budget)
	}
	return &DeviceMemory{
		reg:    g,
		device: device,
		budget: budget,
		policy: policy,
		models: map[string]*resident{},
		stats:  MemStats{Device: device, Budget: budget},
	}, nil
}

// Instrument streams the device's residency counters into reg under the
// given label set (e.g. `worker="0"`).
func (d *DeviceMemory) Instrument(reg *metrics.Registry, labels string) {
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	d.mu.Lock()
	d.met = &memMetrics{
		hits:      reg.Counter("hdc_registry_hits_total" + suffix),
		misses:    reg.Counter("hdc_registry_misses_total" + suffix),
		evictions: reg.Counter("hdc_registry_evictions_total" + suffix),
		swapNs:    reg.Counter("hdc_registry_swap_ns_total" + suffix),
		used:      reg.Gauge("hdc_registry_mem_used_bytes" + suffix),
		residentN: reg.Gauge("hdc_registry_resident_models" + suffix),
	}
	d.met.used.Set(int64(d.used))
	d.met.residentN.Set(int64(len(d.models)))
	d.mu.Unlock()
}

// Preload inserts e as resident without billing or events — the
// construction-time LoadModel a server performs before serving starts,
// mirroring the single-model path where the model is uploaded in New.
// Preloaded models still participate in LRU normally afterwards.
func (d *DeviceMemory) Preload(e *Entry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e.Footprint > d.budget {
		return
	}
	if r, ok := d.models[e.ID]; ok {
		r.version = e.Version
		return
	}
	d.tick++
	d.models[e.ID] = &resident{id: e.ID, version: e.Version, bytes: e.Footprint, lastUse: d.tick}
	d.used += e.Footprint
	d.publishGauges()
}

// Acquire admits one invoke of e: a hit costs nothing, a miss bills the
// entry's deterministic re-setup cost and (under LRU) evicts
// least-recently-used residents until the model fits. A model wider than
// the whole budget streams: it pays re-setup every time and never becomes
// resident. A version change (hot swap) invalidates the old residency.
func (d *DeviceMemory) Acquire(e *Entry) Admission {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tick++

	if r, ok := d.models[e.ID]; ok {
		if r.version == e.Version {
			r.lastUse = d.tick
			d.stats.Hits++
			if d.met != nil {
				d.met.hits.Inc()
			}
			d.record(Event{Kind: EvHit, Model: e.ID, Version: e.Version, Bytes: r.bytes, Resident: true})
			return Admission{Hit: true, Resident: true}
		}
		// Hot-swapped since it was loaded: the stale parameters are dead
		// weight; drop them and fall through to the miss path.
		d.evict(r)
	}

	adm := Admission{Setup: e.Setup}
	if e.Footprint <= d.budget {
		if d.policy == EvictLRU {
			for d.used+e.Footprint > d.budget {
				v := d.lruVictim()
				adm.Evicted = append(adm.Evicted, v.id)
				d.evict(v)
			}
		}
		if d.used+e.Footprint <= d.budget {
			d.models[e.ID] = &resident{id: e.ID, version: e.Version, bytes: e.Footprint, lastUse: d.tick}
			d.used += e.Footprint
			adm.Resident = true
		}
	}
	d.stats.Misses++
	d.stats.SwapTime += e.Setup
	if d.met != nil {
		d.met.misses.Inc()
		d.met.swapNs.Add(int64(e.Setup))
	}
	d.record(Event{Kind: EvMiss, Model: e.ID, Version: e.Version, Bytes: e.Footprint,
		Setup: e.Setup, Resident: adm.Resident})
	d.publishGauges()
	return adm
}

// lruVictim returns the least-recently-used resident, ties broken by ID so
// the choice is fully deterministic even if two touches shared a tick
// (they cannot, but the tie-break makes that a non-assumption).
func (d *DeviceMemory) lruVictim() *resident {
	var v *resident
	for _, r := range d.models {
		if v == nil || r.lastUse < v.lastUse || (r.lastUse == v.lastUse && r.id < v.id) {
			v = r
		}
	}
	return v
}

// evict removes r and records the transition. Caller holds d.mu.
func (d *DeviceMemory) evict(r *resident) {
	delete(d.models, r.id)
	d.used -= r.bytes
	d.stats.Evictions++
	if d.met != nil {
		d.met.evictions.Inc()
	}
	d.record(Event{Kind: EvEvict, Model: r.id, Version: r.version, Bytes: r.bytes})
}

// record stamps the event with the registry-global sequence and appends it
// to the bounded log. Caller holds d.mu.
func (d *DeviceMemory) record(e Event) {
	e.Seq = d.reg.seq.Add(1)
	e.Device = d.device
	if len(d.events) >= eventCap {
		d.events = d.events[len(d.events)-eventCap+1:]
	}
	d.events = append(d.events, e)
}

// publishGauges refreshes the occupancy gauges. Caller holds d.mu.
func (d *DeviceMemory) publishGauges() {
	if d.met == nil {
		return
	}
	d.met.used.Set(int64(d.used))
	d.met.residentN.Set(int64(len(d.models)))
}

// Resident reports whether id is currently on-chip.
func (d *DeviceMemory) Resident(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.models[id]
	return ok
}

// Stats snapshots the device's residency accounting.
func (d *DeviceMemory) Stats() MemStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.stats
	st.Used = d.used
	st.Resident = len(d.models)
	return st
}

// Events returns the retained residency transitions in order (the most
// recent eventCap of them).
func (d *DeviceMemory) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Event, len(d.events))
	copy(out, d.events)
	return out
}
