// Package registry is the multi-model serving catalog: it holds N compiled
// models (int8 accelerator graphs, optionally paired with their bit-packed
// bipolar deployment forms) behind stable string IDs, supports hot load and
// swap, and knows each model's real on-chip parameter-memory footprint from
// the compiler's memory map. DeviceMemory (memory.go) simulates the
// accelerator's bounded parameter memory over those footprints: residency,
// LRU eviction under pressure, and a deterministic re-setup bill on every
// miss, priced from the edge-TPU link roofline. See docs/multitenant.md.
package registry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hdcedge/internal/cpuarch"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/integrity"
)

// Entry is one registered model. Entries are immutable once returned from
// Register/Swap: a hot swap installs a new Entry under the same ID with a
// bumped Version rather than mutating the old one, so a worker holding the
// previous Entry keeps a coherent (if stale) view until its next bind.
type Entry struct {
	// ID is the registry key, e.g. "isolet-d2048".
	ID string

	// Version increments on every Swap of this ID, starting at 1. Worker
	// binds and device residency are keyed by (ID, Version): a swap
	// invalidates both, forcing a rebuild and a re-upload.
	Version int

	// Compiled is the accelerator-partitioned int8 graph.
	Compiled *edgetpu.CompiledModel

	// Bipolar, when non-nil, is the sign-quantized bit-packed form binary
	// HDC ("bin") workers serve for this model.
	Bipolar *hdc.BipolarModel

	// Footprint is the model's on-chip parameter-memory occupancy in
	// bytes — the compiler memory map's aligned allocation, not the raw
	// parameter bytes — which is what DeviceMemory budgets against.
	Footprint int

	// BlobBytes is the serialized model size: what the host must push over
	// the link before the device can execute the graph at all.
	BlobBytes int

	// Setup is the deterministic re-setup cost a device pays to bring this
	// model back on-chip after eviction: the model blob download plus the
	// parameter upload, both priced by the device link roofline. A cache
	// hit pays none of it.
	Setup time.Duration

	// Integrity, when non-nil, overrides the server-level integrity policy
	// for this model (per-model canaries must answer against this model's
	// graph, so they cannot be shared across entries).
	Integrity *integrity.Policy

	goldenOnce sync.Once
	golden     *integrity.Golden
	goldenErr  error
}

// HostSetup prices loading this model into a host interpreter on the given
// CPU: one memory-bound pass over the serialized blob. It is the host-side
// analogue of Setup, used for a host worker's first bind of a model.
func (e *Entry) HostSetup(host cpuarch.Spec) time.Duration {
	return host.StreamTime(e.BlobBytes)
}

// Golden returns this entry's golden integrity reference (per-segment
// checksums of the delegated parameters), computed once and shared
// read-only across workers.
func (e *Entry) Golden() (*integrity.Golden, error) {
	e.goldenOnce.Do(func() {
		e.golden, e.goldenErr = integrity.ComputeGolden(e.Compiled)
	})
	return e.golden, e.goldenErr
}

// catalog is one immutable snapshot of the registry contents. Mutators
// never modify a published catalog: they build a fresh one and publish it
// with a single atomic pointer store (copy-on-write).
type catalog struct {
	entries map[string]*Entry
	order   []string // registration order, stable across swaps
}

// clone returns a mutable copy sharing no structure with c.
func (c *catalog) clone() *catalog {
	n := &catalog{
		entries: make(map[string]*Entry, len(c.entries)),
		order:   append([]string(nil), c.order...),
	}
	for id, e := range c.entries {
		n.entries[id] = e
	}
	return n
}

// Registry is the model catalog. All methods are safe for concurrent use.
// Readers (Get, IDs, Len) are lock-free — they load the current immutable
// catalog with one atomic pointer read — so a trainer hot-swapping models
// through Swap never blocks the serving invoke path, and vice versa.
// Mutators serialize on an internal mutex and publish copy-on-write.
type Registry struct {
	mu  sync.Mutex // serializes mutators; readers never take it
	cat atomic.Pointer[catalog]

	// seq is the global residency-event sequence shared by every
	// DeviceMemory created from this registry, so events from different
	// devices interleave in one total order.
	seq atomic.Uint64
}

// New returns an empty registry.
func New() *Registry {
	g := &Registry{}
	g.cat.Store(&catalog{entries: map[string]*Entry{}})
	return g
}

// build assembles an Entry from its parts, pricing footprint and setup
// from the compiled model's own device config.
func build(id string, version int, cm *edgetpu.CompiledModel, bip *hdc.BipolarModel) (*Entry, error) {
	if id == "" {
		return nil, fmt.Errorf("registry: empty model ID")
	}
	if cm == nil {
		return nil, fmt.Errorf("registry: model %q: nil compiled model", id)
	}
	blob := len(cm.Model.Marshal())
	foot := cm.MemoryMap().Used
	return &Entry{
		ID:        id,
		Version:   version,
		Compiled:  cm,
		Bipolar:   bip,
		Footprint: foot,
		BlobBytes: blob,
		Setup:     cm.Config.TransferTime(blob) + cm.Config.TransferTime(foot),
	}, nil
}

// Register adds a model under id. Registering an already-registered ID is
// an error; use Swap to replace a live model.
func (g *Registry) Register(id string, cm *edgetpu.CompiledModel, bip *hdc.BipolarModel) (*Entry, error) {
	e, err := build(id, 1, cm, bip)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	cat := g.cat.Load()
	if _, dup := cat.entries[id]; dup {
		return nil, fmt.Errorf("registry: model %q already registered", id)
	}
	next := cat.clone()
	next.entries[id] = e
	next.order = append(next.order, id)
	g.cat.Store(next)
	return e, nil
}

// Swap hot-replaces the model under id with a new compiled form, bumping
// its version. Workers rebuild their binds and devices re-upload the
// parameters on their next touch of the ID; in-flight invokes against the
// old entry finish undisturbed.
func (g *Registry) Swap(id string, cm *edgetpu.CompiledModel, bip *hdc.BipolarModel) (*Entry, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cat := g.cat.Load()
	old, ok := cat.entries[id]
	if !ok {
		return nil, fmt.Errorf("registry: swap of unregistered model %q", id)
	}
	e, err := build(id, old.Version+1, cm, bip)
	if err != nil {
		return nil, err
	}
	e.Integrity = old.Integrity
	next := cat.clone()
	next.entries[id] = e
	g.cat.Store(next)
	return e, nil
}

// SetIntegrity attaches a per-model integrity policy to id (nil clears the
// override, falling back to the server-level policy). Published entries
// are immutable, so this installs a fresh Entry at the same Version with
// the policy attached; the golden cache restarts cold (it recomputes from
// the same compiled graph).
func (g *Registry) SetIntegrity(id string, pol *integrity.Policy) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	cat := g.cat.Load()
	e, ok := cat.entries[id]
	if !ok {
		return fmt.Errorf("registry: unregistered model %q", id)
	}
	// Field-wise copy: Entry embeds a sync.Once, so it must not be copied
	// by value.
	n := &Entry{
		ID:        e.ID,
		Version:   e.Version,
		Compiled:  e.Compiled,
		Bipolar:   e.Bipolar,
		Footprint: e.Footprint,
		BlobBytes: e.BlobBytes,
		Setup:     e.Setup,
		Integrity: pol,
	}
	next := cat.clone()
	next.entries[id] = n
	g.cat.Store(next)
	return nil
}

// Get returns the current entry for id. It is lock-free: one atomic load
// of the published catalog, so the serving invoke path never contends
// with a trainer publishing snapshots through Swap.
func (g *Registry) Get(id string) (*Entry, bool) {
	e, ok := g.cat.Load().entries[id]
	return e, ok
}

// IDs returns the registered model IDs in registration order (lock-free).
func (g *Registry) IDs() []string {
	order := g.cat.Load().order
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// Len returns the number of registered models (lock-free).
func (g *Registry) Len() int {
	return len(g.cat.Load().entries)
}

// SortEvents orders a merged event slice by global sequence number, the
// total order the shared registry counter imposes across devices.
func SortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
}
