package edgetpu

import (
	"errors"
	"testing"
	"time"

	"hdcedge/internal/rng"
	"hdcedge/internal/tflite"
)

func fillInput(d *Device, seed uint64) {
	r := rng.New(seed)
	r.FillNormal(d.Input(0).F32)
}

// invokeSequence drives n invokes against a fresh device under plan,
// reloading on every retryable failure, and returns the event log plus the
// final outputs and stats.
func invokeSequence(t *testing.T, plan FaultPlan, n int) ([]string, []int32, FaultStats) {
	t.Helper()
	dev, cm, _ := loadedDevice(t, 3, 20, 96, 5)
	if err := dev.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	var events []string
	var lastPreds []int32
	for i := 0; i < n; i++ {
		fillInput(dev, uint64(i))
		_, err := dev.Invoke()
		switch {
		case err == nil:
			events = append(events, "ok")
			lastPreds = append([]int32(nil), dev.Output(0).I32...)
		case IsRetryable(err):
			events = append(events, err.Error())
			if NeedsReload(err) {
				if _, err := dev.LoadModel(cm); err != nil {
					t.Fatal(err)
				}
			}
		default:
			t.Fatalf("invoke %d: permanent error %v", i, err)
		}
	}
	return events, lastPreds, dev.FaultStats()
}

func TestFaultPlanDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 11, LinkErrorRate: 0.2, ResetRate: 0.1, BitFlipRate: 1e-5}
	e1, p1, s1 := invokeSequence(t, plan, 40)
	e2, p2, s2 := invokeSequence(t, plan, 40)
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs: %q vs %q", i, e1[i], e2[i])
		}
	}
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("output %d differs: %d vs %d", i, p1[i], p2[i])
		}
	}
	if s1.LinkFaults == 0 || s1.Resets == 0 {
		t.Fatalf("rates this high should have injected something: %+v", s1)
	}

	// A different seed must shuffle the fault sequence.
	other := plan
	other.Seed = 12
	e3, _, _ := invokeSequence(t, other, 40)
	same := len(e3) == len(e1)
	if same {
		for i := range e1 {
			if e1[i] != e3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical fault sequence")
	}
}

func TestZeroRatePlanIsInert(t *testing.T) {
	// With all rates zero the device must behave bit-identically to an
	// un-faulted one: same timing, same outputs, no rng draws.
	devA, _, _ := loadedDevice(t, 2, 16, 64, 4)
	devB, _, _ := loadedDevice(t, 2, 16, 64, 4)
	if err := devB.InjectFaults(FaultPlan{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if devB.faults != nil {
		t.Fatal("disabled plan left an injector armed")
	}
	fillInput(devA, 9)
	fillInput(devB, 9)
	ta, err := devA.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := devB.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if ta != tb {
		t.Fatalf("timing diverged: %+v vs %+v", ta, tb)
	}
	for i := range devA.Output(0).I32 {
		if devA.Output(0).I32[i] != devB.Output(0).I32[i] {
			t.Fatal("outputs diverged under a disabled plan")
		}
	}
}

func TestResetDropsModelUntilReload(t *testing.T) {
	dev, cm, _ := loadedDevice(t, 2, 16, 64, 4)
	if err := dev.InjectFaults(FaultPlan{Seed: 3, ResetRate: 1}); err != nil {
		t.Fatal(err)
	}
	fillInput(dev, 1)
	timing, err := dev.Invoke()
	var re *ResetError
	if !errors.As(err, &re) {
		t.Fatalf("want ResetError, got %v", err)
	}
	if timing.Host != dev.Config().InvokeOverhead {
		t.Fatalf("reset attempt should pay dispatch overhead, got %+v", timing)
	}
	// The model is gone: ErrNoModel until LoadModel is re-paid.
	if _, err := dev.Invoke(); !errors.Is(err, ErrNoModel) {
		t.Fatalf("want ErrNoModel after reset, got %v", err)
	}
	if !NeedsReload(err) || !IsRetryable(err) {
		t.Fatal("reset must classify as retryable-with-reload")
	}
	// Disarm faults so the reload sticks.
	if err := dev.InjectFaults(FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	setup, err := dev.LoadModel(cm)
	if err != nil {
		t.Fatal(err)
	}
	if setup != dev.SetupTime || setup <= 0 {
		t.Fatalf("reload must re-pay setup, got %v", setup)
	}
	fillInput(dev, 1)
	if _, err := dev.Invoke(); err != nil {
		t.Fatalf("invoke after reload: %v", err)
	}
}

func TestLinkFaultPaysTimeoutAndRetries(t *testing.T) {
	dev, _, _ := loadedDevice(t, 2, 16, 64, 4)
	timeout := 700 * time.Microsecond
	if err := dev.InjectFaults(FaultPlan{Seed: 8, LinkErrorRate: 1, LinkTimeout: timeout}); err != nil {
		t.Fatal(err)
	}
	fillInput(dev, 2)
	timing, err := dev.Invoke()
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("want LinkError, got %v", err)
	}
	if le.Phase != PhaseTransferIn {
		t.Fatalf("first fault should hit transfer-in, got %s", le.Phase)
	}
	if timing.TransferIn != timeout {
		t.Fatalf("failed transfer should pay the timeout, got %v", timing.TransferIn)
	}
	if IsRetryable(err) == false || NeedsReload(err) == true {
		t.Fatal("link fault must be retryable without reload")
	}
	// The device is not poisoned by a transfer failure: disarm and retry.
	if err := dev.InjectFaults(FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Invoke(); err != nil {
		t.Fatalf("retry after link fault: %v", err)
	}
	stats := FaultStats{}
	if dev.FaultStats() != stats {
		t.Fatal("disarming should clear the stats view")
	}
}

func TestSEUCorruptsResidentWeights(t *testing.T) {
	// A massive per-bit upset rate must change the functional outputs of a
	// resident model, and a reload must restore the clean results.
	dev, cm, _ := loadedDevice(t, 3, 20, 96, 5)
	fillInput(dev, 4)
	if _, err := dev.Invoke(); err != nil {
		t.Fatal(err)
	}
	clean := append([]float32(nil), dev.Output(1).F32...)

	if err := dev.InjectFaults(FaultPlan{Seed: 6, BitFlipRate: 0.02}); err != nil {
		t.Fatal(err)
	}
	fillInput(dev, 4)
	if _, err := dev.Invoke(); err != nil {
		t.Fatal(err)
	}
	if dev.FaultStats().BitFlips == 0 {
		t.Fatal("no bits flipped at rate 0.02")
	}
	diff := false
	for i := range clean {
		if dev.Output(1).F32[i] != clean[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("heavy SEU injection left outputs bit-identical")
	}

	// Reload restores pristine parameters.
	if err := dev.InjectFaults(FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.LoadModel(cm); err != nil {
		t.Fatal(err)
	}
	fillInput(dev, 4)
	if _, err := dev.Invoke(); err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if dev.Output(1).F32[i] != clean[i] {
			t.Fatal("reload did not restore clean weights")
		}
	}
}

func TestSEUSkipsStreamingModels(t *testing.T) {
	cfg := DefaultUSB()
	cfg.ParamMemBytes = 1 << 10 // force parameter streaming
	m := buildFloatNet(2, 16, 256, 4, 3)
	qm := quantizeNet(t, m, 2, 16, 4)
	cm, err := Compile(qm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Resident {
		t.Fatal("test setup: model unexpectedly resident")
	}
	dev := NewDevice(cfg)
	if _, err := dev.LoadModel(cm); err != nil {
		t.Fatal(err)
	}
	if err := dev.InjectFaults(FaultPlan{Seed: 1, BitFlipRate: 0.05}); err != nil {
		t.Fatal(err)
	}
	fillInput(dev, 7)
	if _, err := dev.Invoke(); err != nil {
		t.Fatal(err)
	}
	if got := dev.FaultStats().BitFlips; got != 0 {
		t.Fatalf("streaming model took %d SEUs; its parameters re-stream every invoke", got)
	}
}

// Regression test for the poisoned-device fix: a mid-op error must not
// leave the device silently reusable with half-executed interpreter state.
func TestMidInvokeErrorPoisonsDevice(t *testing.T) {
	dev, cm, qm := loadedDevice(t, 2, 16, 64, 4)
	// Sabotage the placement plan: delegate an operator the accelerator
	// cannot execute, so the op-walk aborts mid-invoke.
	var sabotaged int = -1
	for oi, op := range qm.Operators {
		if cm.Placements[oi] == PlaceCPU && op.Op == tflite.OpArgMax {
			cm.Placements[oi] = PlaceTPU
			sabotaged = oi
			break
		}
	}
	if sabotaged < 0 {
		t.Fatal("test setup: no CPU-placed ARG_MAX to sabotage")
	}
	fillInput(dev, 3)
	if _, err := dev.Invoke(); err == nil {
		t.Fatal("sabotaged model executed cleanly")
	}
	// Subsequent invokes refuse with the typed poison error.
	if _, err := dev.Invoke(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("want ErrPoisoned, got %v", err)
	}
	// EstimateInvoke does not execute kernels and stays usable... but on a
	// poisoned device it shares the walk; it must still estimate (the cost
	// model has no state). Repair the plan and reload to recover.
	cm.Placements[sabotaged] = PlaceCPU
	if _, err := dev.LoadModel(cm); err != nil {
		t.Fatal(err)
	}
	fillInput(dev, 3)
	if _, err := dev.Invoke(); err != nil {
		t.Fatalf("reload did not clear poisoning: %v", err)
	}
}

func TestEstimateInvokeNeverInjects(t *testing.T) {
	dev, _, _ := loadedDevice(t, 2, 16, 64, 4)
	want, err := dev.EstimateInvoke()
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.InjectFaults(FaultPlan{Seed: 2, LinkErrorRate: 1, ResetRate: 1, BitFlipRate: 0.1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := dev.EstimateInvoke()
		if err != nil {
			t.Fatalf("estimate %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("estimate %d drifted under faults: %+v vs %+v", i, got, want)
		}
	}
	if s := dev.FaultStats(); s != (FaultStats{}) {
		t.Fatalf("estimation injected faults: %+v", s)
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("link=0.02,reset=0.005,seu=1e-7,timeout=5ms", 42)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.LinkErrorRate != 0.02 || p.ResetRate != 0.005 ||
		p.BitFlipRate != 1e-7 || p.LinkTimeout != 5*time.Millisecond {
		t.Fatalf("parsed %+v", p)
	}
	if p, err = ParseFaultPlan("0.05", 1); err != nil {
		t.Fatal(err)
	} else if p.LinkErrorRate != 0.05 || p.ResetRate != 0.005 {
		t.Fatalf("bare rate parsed as %+v", p)
	}
	if p, err = ParseFaultPlan("", 9); err != nil || p.Enabled() {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	for _, bad := range []string{"link=2", "bogus=1", "link=x", "timeout=-3ms", "reset=-0.1"} {
		if _, err := ParseFaultPlan(bad, 0); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestFaultPlanValidate(t *testing.T) {
	good := FaultPlan{Seed: 1, LinkErrorRate: 0.5, ResetRate: 1, BitFlipRate: 0}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []FaultPlan{
		{LinkErrorRate: -0.1},
		{ResetRate: 1.5},
		{BitFlipRate: 2},
		{LinkTimeout: -time.Second},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad plan %d accepted: %+v", i, p)
		}
	}
	dev := NewDevice(DefaultUSB())
	if err := dev.InjectFaults(FaultPlan{LinkErrorRate: 7}); err == nil {
		t.Fatal("InjectFaults accepted an invalid plan")
	}
}

// FuzzFaultPlan exercises plan validation and the injector's samplers for
// arbitrary seed/rate combinations: any plan that validates must produce a
// reproducible decision stream with in-range flip counts.
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint64(1), 0.1, 0.01, 1e-6, int64(0))
	f.Add(uint64(99), 1.0, 1.0, 1.0, int64(time.Second))
	f.Add(uint64(0), 0.0, 0.0, 0.0, int64(-1))
	f.Add(uint64(7), 0.5, 2.0, -0.5, int64(time.Millisecond))
	f.Fuzz(func(t *testing.T, seed uint64, link, reset, bitflip float64, timeout int64) {
		plan := FaultPlan{
			Seed: seed, LinkErrorRate: link, ResetRate: reset,
			BitFlipRate: bitflip, LinkTimeout: time.Duration(timeout),
		}
		if plan.Validate() != nil {
			return
		}
		run := func() (int, int, time.Duration) {
			fs := newFaultState(plan)
			flips := 0
			for i := 0; i < 50; i++ {
				fs.reset()
				fs.linkFault(PhaseTransferIn, 128)
				n := fs.flipCount(4096)
				if n < 0 || n > 4096 {
					t.Fatalf("flip count %d out of range", n)
				}
				flips += n
			}
			if fs.stats.WastedTime < 0 {
				t.Fatalf("negative wasted time %v", fs.stats.WastedTime)
			}
			return fs.stats.LinkFaults, fs.stats.Resets, fs.stats.WastedTime
		}
		l1, r1, w1 := run()
		l2, r2, w2 := run()
		if l1 != l2 || r1 != r2 || w1 != w2 {
			t.Fatalf("same plan diverged: (%d,%d,%v) vs (%d,%d,%v)", l1, r1, w1, l2, r2, w2)
		}
	})
}
