package edgetpu

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hdcedge/internal/tflite"
)

// OpTrace records one operator execution inside an Invoke, in the spirit
// of the Edge TPU profiler's per-op breakdown.
type OpTrace struct {
	Op        int
	Code      tflite.OpCode
	Placement Placement
	Cycles    uint64        // accelerator cycles (TPU-placed ops)
	HostTime  time.Duration // host cost (CPU-placed ops)
	MACs      uint64
}

// Profiler accumulates traces across invocations of one device.
type Profiler struct {
	Invocations int
	Ops         map[int]*OpTrace // keyed by operator index, summed
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{Ops: map[int]*OpTrace{}}
}

// record folds one invocation's traces in.
func (p *Profiler) record(traces []OpTrace) {
	p.Invocations++
	for _, tr := range traces {
		agg, ok := p.Ops[tr.Op]
		if !ok {
			cp := tr
			p.Ops[tr.Op] = &cp
			continue
		}
		agg.Cycles += tr.Cycles
		agg.HostTime += tr.HostTime
		agg.MACs += tr.MACs
	}
}

// Report renders the aggregated per-op profile, hottest first.
func (p *Profiler) Report(cfg Config) string {
	var rows []*OpTrace
	for _, tr := range p.Ops {
		rows = append(rows, tr)
	}
	sort.Slice(rows, func(a, b int) bool {
		ta := cfg.cyclesToTime(rows[a].Cycles) + rows[a].HostTime
		tb := cfg.cyclesToTime(rows[b].Cycles) + rows[b].HostTime
		return ta > tb
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "Profile over %d invocations:\n", p.Invocations)
	var totalTime time.Duration
	for _, tr := range rows {
		totalTime += cfg.cyclesToTime(tr.Cycles) + tr.HostTime
	}
	for _, tr := range rows {
		t := cfg.cyclesToTime(tr.Cycles) + tr.HostTime
		pct := 0.0
		if totalTime > 0 {
			pct = 100 * float64(t) / float64(totalTime)
		}
		fmt.Fprintf(&sb, "  op%-3d %-16v %-4v %10v %5.1f%%  %12d MACs\n",
			tr.Op, tr.Code, tr.Placement, t.Round(time.Microsecond), pct, tr.MACs)
	}
	return sb.String()
}

// InvokeProfiled executes the loaded model like Invoke and additionally
// returns the per-op trace of this invocation; when the device has an
// attached profiler the trace is folded in.
func (d *Device) InvokeProfiled() (Timing, []OpTrace, error) {
	t, traces, err := d.run(true, true, 0)
	if err != nil {
		return t, nil, err
	}
	if d.profiler != nil {
		d.profiler.record(traces)
	}
	return t, traces, nil
}

// AttachProfiler starts accumulating per-op traces from InvokeProfiled
// calls; it returns the profiler for reporting.
func (d *Device) AttachProfiler() *Profiler {
	d.profiler = NewProfiler()
	return d.profiler
}
