package edgetpu

import (
	"fmt"
	"time"

	"hdcedge/internal/tensor"
)

// This file is the device surface the integrity layer (internal/integrity)
// scrubs and repairs: read access to the resident parameter and LUT state
// the SEU injector corrupts, plus the two hardware repair actions — re-
// uploading one parameter segment and power-cycling the device. Both repair
// actions are priced by the same link cost model as LoadModel, so a scrub-
// and-repair cycle shows up in simulated time the way it would on the wire.

// ResidentTensor returns the device's live copy of the tensor at graph
// index ti — the interpreter-owned buffer that SEU injection mutates — or
// nil when no model is resident. The caller must treat it as device SRAM:
// reads are scrubbing, writes are corruption.
func (d *Device) ResidentTensor(ti int) *tensor.Tensor {
	if d.interp == nil {
		return nil
	}
	return d.interp.Tensor(ti)
}

// CachedLUT returns the device's resident activation lookup table for
// operator oi, or nil when none has materialized (op never executed on this
// interpreter). Like ResidentTensor, the pointer is live device state.
func (d *Device) CachedLUT(oi int) *[256]int8 {
	if d.interp == nil {
		return nil
	}
	return d.interp.CachedLUT(oi)
}

// TransferCost prices moving n bytes across the host link — the cost model
// repair actions outside this package (LUT re-uploads) account with.
func (d *Device) TransferCost(n int) time.Duration {
	return d.cfg.transferTime(n)
}

// RestoreSegment re-uploads the pristine parameter bytes of the constant
// tensor at graph index ti from the compiled model into the device's
// resident copy — the repair ladder's cheapest rung. It returns the
// simulated link time the re-upload cost. Restoring a non-constant or
// unknown tensor is an error; restoring with no model resident is too, so a
// caller escalates to a full reload instead of silently "fixing" nothing.
func (d *Device) RestoreSegment(ti int) (time.Duration, error) {
	if d.loaded == nil || d.interp == nil {
		return 0, ErrNoModel
	}
	m := d.loaded.Model
	if ti < 0 || ti >= len(m.Tensors) {
		return 0, fmt.Errorf("edgetpu: restore of unknown tensor %d", ti)
	}
	pristine, err := m.ConstTensor(ti)
	if err != nil {
		return 0, fmt.Errorf("edgetpu: restore tensor %d: %w", ti, err)
	}
	live := d.interp.Tensor(ti)
	n := copy(live.I8, pristine.I8)
	n += 4 * copy(live.I32, pristine.I32)
	n += 4 * copy(live.F32, pristine.F32)
	return d.cfg.transferTime(n), nil
}

// PowerCycle models a commanded device reset: the program is dropped (as a
// spontaneous reset would) and immediately re-loaded, rebuilding every
// resident parameter and LUT from the pristine compiled model. It is the
// repair ladder's last hardware rung before quarantine. The returned
// duration is the reload's setup cost.
func (d *Device) PowerCycle() (time.Duration, error) {
	cm := d.loaded
	if cm == nil {
		return 0, ErrNoModel
	}
	d.loaded = nil
	d.interp = nil
	d.poisoned = false
	return d.LoadModel(cm)
}
