package edgetpu

import (
	"strings"
	"testing"
)

func TestInvokeProfiledMatchesInvoke(t *testing.T) {
	// Same inputs through Invoke and InvokeProfiled on two devices must
	// produce identical timing and outputs.
	dev, _, qm := loadedDevice(t, 4, 24, 192, 5)
	dev2, _, _ := loadedDevice(t, 4, 24, 192, 5)
	for i := range dev.Input(0).F32 {
		v := float32(i%13) * 0.1
		dev.Input(0).F32[i] = v
		dev2.Input(0).F32[i] = v
	}
	plain, err := dev.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	profiled, traces, err := dev2.InvokeProfiled()
	if err != nil {
		t.Fatal(err)
	}
	if plain != profiled {
		t.Fatalf("timings differ: %+v vs %+v", plain, profiled)
	}
	if len(traces) != len(qm.Operators) {
		t.Fatalf("%d traces for %d ops", len(traces), len(qm.Operators))
	}
	for i := range dev.Output(0).I32 {
		if dev.Output(0).I32[i] != dev2.Output(0).I32[i] {
			t.Fatal("outputs differ")
		}
	}
	// Trace cycle sum must equal the reported compute cycles.
	var cyc uint64
	for _, tr := range traces {
		cyc += tr.Cycles
	}
	if cyc != profiled.Cycles {
		t.Fatalf("trace cycles %d vs timing %d", cyc, profiled.Cycles)
	}
}

func TestProfilerAggregation(t *testing.T) {
	dev, _, _ := loadedDevice(t, 2, 16, 128, 3)
	prof := dev.AttachProfiler()
	const invokes = 5
	for i := 0; i < invokes; i++ {
		if _, _, err := dev.InvokeProfiled(); err != nil {
			t.Fatal(err)
		}
	}
	if prof.Invocations != invokes {
		t.Fatalf("profiler saw %d invocations", prof.Invocations)
	}
	// FC ops must dominate the cycle budget.
	single, _, _ := loadedDevice(t, 2, 16, 128, 3)
	est, err := single.EstimateInvoke()
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, tr := range prof.Ops {
		total += tr.Cycles
	}
	if total != est.Cycles*invokes {
		t.Fatalf("aggregated cycles %d, want %d", total, est.Cycles*invokes)
	}
	rep := prof.Report(dev.Config())
	for _, want := range []string{"FULLY_CONNECTED", "TPU", "CPU", "MACs", "%"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestInvokeProfiledWithoutModel(t *testing.T) {
	dev := NewDevice(DefaultUSB())
	if _, _, err := dev.InvokeProfiled(); err == nil {
		t.Fatal("profiled invoke without model succeeded")
	}
}
