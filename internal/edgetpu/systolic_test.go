package edgetpu

import (
	"testing"
	"testing/quick"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// randFC builds a random quantized FC problem of the given dimensions.
func randFC(r *rng.RNG, batch, depth, units int) (in, w, bias, out *tensor.Tensor) {
	in = tensor.New(tensor.Int8, batch, depth)
	in.Quant = &tensor.QuantParams{Scale: 0.02, ZeroPoint: int32(r.Intn(9) - 4)}
	for i := range in.I8 {
		in.I8[i] = int8(r.Intn(256) - 128)
	}
	w = tensor.New(tensor.Int8, units, depth)
	w.Quant = &tensor.QuantParams{Scale: 0.015, ZeroPoint: 0}
	for i := range w.I8 {
		w.I8[i] = int8(r.Intn(256) - 128)
	}
	bias = tensor.New(tensor.Int32, units)
	bias.Quant = &tensor.QuantParams{Scale: in.Quant.Scale * w.Quant.Scale}
	for i := range bias.I32 {
		bias.I32[i] = int32(r.Intn(2000) - 1000)
	}
	out = tensor.New(tensor.Int8, batch, units)
	out.Quant = &tensor.QuantParams{Scale: 0.05, ZeroPoint: int32(r.Intn(5) - 2)}
	return in, w, bias, out
}

// refFC runs the tflite reference int8 kernel on the same problem.
func refFC(t *testing.T, in, w, bias, out *tensor.Tensor) []int8 {
	t.Helper()
	b := tflite.NewBuilder("ref")
	inIdx := b.AddInput("in", tensor.Int8, in.Shape...)
	b.SetQuant(inIdx, *in.Quant)
	outIdx := b.FullyConnected(inIdx, b.AddConstI8("w", w), b.AddConstI32("bias", bias), "out")
	b.SetQuant(outIdx, *out.Quant)
	b.MarkOutput(outIdx)
	it, err := tflite.NewInterpreter(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	copy(it.Input(0).I8, in.I8)
	if err := it.Invoke(); err != nil {
		t.Fatal(err)
	}
	return append([]int8(nil), it.Output(0).I8...)
}

func TestSystolicFCBitExactWithReference(t *testing.T) {
	r := rng.New(21)
	a := Array{Rows: 64, Cols: 64}
	// Dimensions straddling tile boundaries in every combination.
	dims := [][3]int{
		{1, 1, 1}, {1, 64, 64}, {2, 63, 65}, {3, 65, 63},
		{5, 128, 128}, {4, 130, 250}, {7, 27, 500}, {2, 700, 40},
	}
	for _, d := range dims {
		in, w, bias, out := randFC(r, d[0], d[1], d[2])
		want := refFC(t, in, w, bias, out)
		if _, err := a.RunFullyConnected(in, w, bias, out); err != nil {
			t.Fatalf("dims %v: %v", d, err)
		}
		for i := range want {
			if out.I8[i] != want[i] {
				t.Fatalf("dims %v: elem %d = %d, reference %d", d, i, out.I8[i], want[i])
			}
		}
	}
}

func TestSystolicFCTileIndependence(t *testing.T) {
	// Results must not depend on array geometry, only timing does.
	r := rng.New(5)
	in, w, bias, out := randFC(r, 3, 100, 90)
	a1 := Array{Rows: 64, Cols: 64}
	a2 := Array{Rows: 8, Cols: 16}
	if _, err := a1.RunFullyConnected(in, w, bias, out); err != nil {
		t.Fatal(err)
	}
	got1 := append([]int8(nil), out.I8...)
	if _, err := a2.RunFullyConnected(in, w, bias, out); err != nil {
		t.Fatal(err)
	}
	for i := range got1 {
		if out.I8[i] != got1[i] {
			t.Fatalf("geometry changed functional result at %d", i)
		}
	}
}

func TestSystolicFCRejectsAsymmetricWeights(t *testing.T) {
	r := rng.New(6)
	in, w, bias, out := randFC(r, 1, 8, 4)
	w.Quant.ZeroPoint = 5
	if _, err := (Array{Rows: 64, Cols: 64}).RunFullyConnected(in, w, bias, out); err == nil {
		t.Fatal("asymmetric weights accepted")
	}
}

func TestSystolicFCRejectsFloat(t *testing.T) {
	in := tensor.New(tensor.Float32, 1, 4)
	w := tensor.New(tensor.Int8, 2, 4)
	bias := tensor.New(tensor.Int32, 2)
	out := tensor.New(tensor.Int8, 1, 2)
	if _, err := (Array{Rows: 8, Cols: 8}).RunFullyConnected(in, w, bias, out); err == nil {
		t.Fatal("float input accepted")
	}
}

func TestFCStatsTileCounts(t *testing.T) {
	a := Array{Rows: 64, Cols: 64}
	s := a.fcCycles(32, 784, 10000)
	if s.TilesK != 13 {
		t.Errorf("TilesK = %d, want 13", s.TilesK)
	}
	if s.TilesU != 157 {
		t.Errorf("TilesU = %d, want 157", s.TilesU)
	}
	if s.MACs != 32*784*10000 {
		t.Errorf("MACs = %d", s.MACs)
	}
	perTile := uint64(64 + 32 + 64 + 64)
	if want := uint64(13*157) * perTile; s.Cycles != want {
		t.Errorf("Cycles = %d, want %d", s.Cycles, want)
	}
}

func TestFCCyclesMonotoneInBatch(t *testing.T) {
	a := Array{Rows: 64, Cols: 64}
	prev := uint64(0)
	for batch := 1; batch <= 256; batch *= 2 {
		c := a.fcCycles(batch, 600, 10000).Cycles
		if c <= prev {
			t.Fatalf("cycles not increasing with batch: %d at batch %d", c, batch)
		}
		prev = c
	}
}

func TestFCBatchAmortization(t *testing.T) {
	// Per-sample cycles must fall as batch grows (pipeline fill amortizes).
	a := Array{Rows: 64, Cols: 64}
	per1 := float64(a.fcCycles(1, 600, 10000).Cycles)
	per64 := float64(a.fcCycles(64, 600, 10000).Cycles) / 64
	if per64 >= per1 {
		t.Fatalf("no batch amortization: %v per sample at batch 64 vs %v at batch 1", per64, per1)
	}
}

func TestLUTCycles(t *testing.T) {
	a := Array{Rows: 64, Cols: 64}
	if got := a.lutCycles(64); got != 1 {
		t.Errorf("lutCycles(64) = %d", got)
	}
	if got := a.lutCycles(65); got != 2 {
		t.Errorf("lutCycles(65) = %d", got)
	}
	if got := a.lutCycles(0); got != 0 {
		t.Errorf("lutCycles(0) = %d", got)
	}
}

// Property: the systolic FC agrees with the reference kernel on random
// shapes and data.
func TestQuickSystolicMatchesReference(t *testing.T) {
	a := Array{Rows: 16, Cols: 16}
	f := func(seed uint64, b8, d8, u8 uint8) bool {
		batch := int(b8%4) + 1
		depth := int(d8%70) + 1
		units := int(u8%70) + 1
		r := rng.New(seed)
		in, w, bias, out := randFC(r, batch, depth, units)
		refB := tflite.NewBuilder("q")
		inIdx := refB.AddInput("in", tensor.Int8, batch, depth)
		refB.SetQuant(inIdx, *in.Quant)
		outIdx := refB.FullyConnected(inIdx, refB.AddConstI8("w", w), refB.AddConstI32("b", bias), "out")
		refB.SetQuant(outIdx, *out.Quant)
		refB.MarkOutput(outIdx)
		it, err := tflite.NewInterpreter(refB.Finish())
		if err != nil {
			return false
		}
		copy(it.Input(0).I8, in.I8)
		if err := it.Invoke(); err != nil {
			return false
		}
		if _, err := a.RunFullyConnected(in, w, bias, out); err != nil {
			return false
		}
		for i := range out.I8 {
			if out.I8[i] != it.Output(0).I8[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
