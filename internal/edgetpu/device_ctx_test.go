package edgetpu

import (
	"context"
	"errors"
	"testing"
)

func TestDeviceInvokeCtxCancelled(t *testing.T) {
	dev, _, _ := loadedDevice(t, 1, 8, 32, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dev.InvokeCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx returned %v", err)
	}
	// The refused dispatch must not have touched device state: a live
	// context invokes normally afterwards.
	if _, err := dev.InvokeCtx(context.Background()); err != nil {
		t.Fatalf("invoke after cancelled ctx: %v", err)
	}
}

func TestDeviceInvokeCtxMatchesInvoke(t *testing.T) {
	a, _, _ := loadedDevice(t, 1, 8, 32, 3)
	b, _, _ := loadedDevice(t, 1, 8, 32, 3)
	ta, err := a.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.InvokeCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ta != tb {
		t.Fatalf("timing diverged: %+v vs %+v", ta, tb)
	}
}
