// Package edgetpu simulates an Edge-TPU-class inference accelerator
// attached to a host over USB: a weight-stationary int8 systolic matrix
// unit, on-chip parameter memory, a compiler that partitions a quantized
// tflite model into accelerator-delegated and CPU-fallback operators, and
// a runtime that executes compiled models functionally (bit-exact with the
// tflite reference interpreter) while accounting cycle-level compute time
// and byte-level transfer time.
//
// The paper's co-design hinges on three architectural facts this package
// reproduces from first principles:
//
//   - large matrix multiplications are fast: the MXU retires
//     Rows×Cols int8 MACs per cycle once a weight tile is resident;
//   - every invocation pays fixed host/USB costs, so small input
//     dimensions (PAMAP2's 27 features) cannot amortize them;
//   - element-wise weight updates are not supported at all, which forces
//     HDC class-hypervector training back onto the host CPU.
package edgetpu

import "time"

// Config describes one accelerator instance and its host link.
type Config struct {
	Name string

	// MXURows and MXUCols give the systolic array geometry. The Edge TPU
	// MXU is a 64×64 array of 8-bit MACs.
	MXURows, MXUCols int

	// ClockHz is the accelerator clock. 480 MHz yields the advertised
	// 4 TOPS peak (64·64·480e6·2 ops).
	ClockHz float64

	// ParamMemBytes is the on-chip parameter memory. Models whose
	// delegated weights fit stay resident after LoadModel; larger models
	// re-stream their parameters over the link on every invocation, as
	// the Edge TPU compiler's "parameter streaming" mode does.
	ParamMemBytes int

	// ActMemBytes is the on-chip activation scratch. The compiler warns
	// when a single delegated activation tensor exceeds it (the cue to
	// shrink the invoke batch).
	ActMemBytes int

	// LinkBandwidth is the effective host-device bandwidth in bytes per
	// second (USB 3.0 bulk transfers sustain well under the 5 Gb/s line
	// rate).
	LinkBandwidth float64

	// LinkLatency is the fixed cost of one bulk transfer.
	LinkLatency time.Duration

	// InvokeOverhead is the per-Invoke host runtime cost: interpreter
	// dispatch, delegate entry, and USB round-trip setup.
	InvokeOverhead time.Duration

	// HostNsPerElem prices CPU-fallback operators (QUANTIZE, DEQUANTIZE,
	// ARG_MAX) in nanoseconds per produced element.
	HostNsPerElem float64

	// ActivePowerWatts is the accelerator's power while computing or
	// transferring; IdlePowerWatts while waiting between invocations.
	ActivePowerWatts float64
	IdlePowerWatts   float64
}

// ActiveEnergy returns the accelerator energy for d of busy time, in
// joules.
func (c Config) ActiveEnergy(d time.Duration) float64 {
	return c.ActivePowerWatts * d.Seconds()
}

// DefaultUSB returns the configuration of the USB-attached Edge TPU
// accelerator used in the paper's experiments.
func DefaultUSB() Config {
	return Config{
		Name:           "edgetpu-usb",
		MXURows:        64,
		MXUCols:        64,
		ClockHz:        480e6,
		ParamMemBytes:  8 << 20,
		ActMemBytes:    2 << 20,
		LinkBandwidth:  320e6, // ~2.5 Gb/s sustained over USB 3.0 bulk
		LinkLatency:    150 * time.Microsecond,
		InvokeOverhead: 250 * time.Microsecond,
		HostNsPerElem:  1.2,

		ActivePowerWatts: 2.0, // USB accelerator under sustained load
		IdlePowerWatts:   0.5,
	}
}

// DefaultPCIe returns the configuration of a PCIe/M.2-attached variant
// (as on the Coral Dev Board): same MXU, but a wider, lower-latency host
// link and cheaper invocations. It exists for link-sensitivity studies.
func DefaultPCIe() Config {
	c := DefaultUSB()
	c.Name = "edgetpu-pcie"
	c.LinkBandwidth = 1.6e9
	c.LinkLatency = 20 * time.Microsecond
	c.InvokeOverhead = 60 * time.Microsecond
	return c
}

// TransferTime returns the cost of moving n bytes across the host link:
// one bulk-transfer latency plus the bandwidth term. It is the roofline
// the model registry prices re-setup with (model blob download + parameter
// upload) when a swapped-out model must be brought back on-chip.
func (c Config) TransferTime(n int) time.Duration { return c.transferTime(n) }

// transferTime returns the cost of moving n bytes across the host link.
// Zero-byte transfers are free (no bulk transfer is issued).
func (c Config) transferTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return c.LinkLatency + time.Duration(float64(n)/c.LinkBandwidth*float64(time.Second))
}

// cyclesToTime converts MXU cycles to wall-clock time.
func (c Config) cyclesToTime(cycles uint64) time.Duration {
	return time.Duration(float64(cycles) / c.ClockHz * float64(time.Second))
}
