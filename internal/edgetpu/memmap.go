package edgetpu

import (
	"fmt"
	"strings"

	"hdcedge/internal/tflite"
)

// MemRegion is one constant tensor's placement in on-chip parameter
// memory.
type MemRegion struct {
	Tensor int // tflite tensor index
	Name   string
	Offset int
	Bytes  int
}

// MemoryMap is the compiler's parameter-memory allocation for the
// delegated segment.
type MemoryMap struct {
	Regions []MemRegion
	// Used is the total allocated bytes including alignment padding.
	Used int
	// Capacity is the device's parameter memory size.
	Capacity int
	// Resident mirrors CompiledModel.Resident: whether Used fits.
	Resident bool
}

// paramAlignment is the allocation granularity of the parameter memory:
// tiles stream in 64-byte lines.
const paramAlignment = 64

// MemoryMap lays the delegated constants out in on-chip memory in
// first-use order with line alignment — the allocation the weight
// streamer walks. Non-resident models still get a map (the streaming
// window reuses it as a schedule); Resident reports whether it fits.
func (cm *CompiledModel) MemoryMap() *MemoryMap {
	mm := &MemoryMap{Capacity: cm.Config.ParamMemBytes}
	seen := map[int]bool{}
	offset := 0
	for oi, op := range cm.Model.Operators {
		if cm.Placements[oi] != PlaceTPU {
			continue
		}
		for _, ti := range op.Inputs {
			info := cm.Model.Tensors[ti]
			if info.Buffer == tflite.NoBuffer || seen[ti] {
				continue
			}
			seen[ti] = true
			size := len(cm.Model.Buffers[info.Buffer])
			mm.Regions = append(mm.Regions, MemRegion{
				Tensor: ti, Name: info.Name, Offset: offset, Bytes: size,
			})
			offset += align(size, paramAlignment)
		}
	}
	mm.Used = offset
	mm.Resident = offset <= mm.Capacity
	return mm
}

func align(n, a int) int { return (n + a - 1) / a * a }

// String renders the layout.
func (mm *MemoryMap) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "parameter memory: %d / %d bytes (resident: %v)\n",
		mm.Used, mm.Capacity, mm.Resident)
	for _, r := range mm.Regions {
		fmt.Fprintf(&sb, "  0x%08x  %-24s %10d bytes\n", r.Offset, r.Name, r.Bytes)
	}
	return sb.String()
}
