package edgetpu

import (
	"fmt"
	"time"

	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// Timing breaks one invocation's wall-clock cost into the phases the
// paper's runtime figures distinguish.
type Timing struct {
	Host         time.Duration // interpreter/delegate dispatch overhead
	TransferIn   time.Duration // activations host → device
	WeightStream time.Duration // parameter streaming (non-resident models)
	Compute      time.Duration // MXU + activation pipeline
	HostFallback time.Duration // CPU-placed operators
	TransferOut  time.Duration // activations device → host

	Cycles uint64 // accelerator cycles spent in Compute
	MACs   uint64 // multiply-accumulates performed on the MXU
}

// Total returns the end-to-end invocation latency.
func (t Timing) Total() time.Duration {
	return t.Host + t.TransferIn + t.WeightStream + t.Compute + t.HostFallback + t.TransferOut
}

// Add accumulates another invocation's timing into t.
func (t *Timing) Add(o Timing) {
	t.Host += o.Host
	t.TransferIn += o.TransferIn
	t.WeightStream += o.WeightStream
	t.Compute += o.Compute
	t.HostFallback += o.HostFallback
	t.TransferOut += o.TransferOut
	t.Cycles += o.Cycles
	t.MACs += o.MACs
}

// Device is one simulated accelerator instance with at most one loaded
// model, mirroring the single-program restriction of the real part.
type Device struct {
	cfg      Config
	loaded   *CompiledModel
	interp   *tflite.Interpreter
	array    Array
	profiler *Profiler

	// SetupTime is the one-time cost paid by LoadModel (model transfer
	// and, for resident models, the parameter upload).
	SetupTime time.Duration
}

// NewDevice returns an idle device.
func NewDevice(cfg Config) *Device {
	return &Device{cfg: cfg, array: Array{Rows: cfg.MXURows, Cols: cfg.MXUCols}}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// LoadModel uploads a compiled model. For resident models the parameters
// cross the link once here; streaming models pay per invocation instead.
func (d *Device) LoadModel(cm *CompiledModel) (time.Duration, error) {
	if cm == nil {
		return 0, fmt.Errorf("edgetpu: nil compiled model")
	}
	if cm.Config != d.cfg {
		return 0, fmt.Errorf("edgetpu: model compiled for %q, device is %q", cm.Config.Name, d.cfg.Name)
	}
	it, err := tflite.NewInterpreter(cm.Model)
	if err != nil {
		return 0, err
	}
	setup := d.cfg.transferTime(len(cm.Model.Marshal()))
	if cm.Resident {
		setup += d.cfg.transferTime(cm.ParamBytes)
	}
	d.loaded = cm
	d.interp = it
	d.SetupTime = setup
	return setup, nil
}

// Input returns the i-th model input tensor of the loaded model.
func (d *Device) Input(i int) *tensor.Tensor {
	return d.interp.Input(i)
}

// Output returns the i-th model output tensor after Invoke.
func (d *Device) Output(i int) *tensor.Tensor {
	return d.interp.Output(i)
}

// Invoke executes the loaded model once and returns the phase timing.
// CPU-placed operators run with the tflite reference kernels priced by the
// host cost model; TPU-placed FULLY_CONNECTED ops run on the systolic
// array (bit-exact with the reference); other delegated ops run on the
// activation pipeline.
func (d *Device) Invoke() (Timing, error) {
	if d.loaded == nil {
		return Timing{}, fmt.Errorf("edgetpu: no model loaded")
	}
	cm := d.loaded
	var t Timing
	t.Host = d.cfg.InvokeOverhead
	if cm.DelegatedOps() > 0 {
		t.TransferIn = d.cfg.transferTime(cm.TransferInBytes)
		t.TransferOut = d.cfg.transferTime(cm.TransferOutBytes)
		if !cm.Resident {
			t.WeightStream = d.cfg.transferTime(cm.ParamBytes)
		}
	}

	var cycles uint64
	for oi, op := range cm.Model.Operators {
		if cm.Placements[oi] == PlaceCPU {
			if err := d.interp.InvokeOp(oi); err != nil {
				return t, err
			}
			t.HostFallback += d.hostOpCost(op)
			continue
		}
		switch op.Op {
		case tflite.OpFullyConnected:
			in := d.interp.Tensor(op.Inputs[0])
			w := d.interp.Tensor(op.Inputs[1])
			bias := d.interp.Tensor(op.Inputs[2])
			out := d.interp.Tensor(op.Outputs[0])
			stats, err := d.array.RunFullyConnected(in, w, bias, out)
			if err != nil {
				return t, fmt.Errorf("edgetpu: op %d: %w", oi, err)
			}
			cycles += stats.Cycles
			t.MACs += stats.MACs
		case tflite.OpTanh, tflite.OpLogistic, tflite.OpConcat, tflite.OpReshape:
			if err := d.interp.InvokeOp(oi); err != nil {
				return t, err
			}
			cycles += d.array.lutCycles(d.interp.Tensor(op.Outputs[0]).Elems())
		default:
			return t, fmt.Errorf("edgetpu: op %d (%v) delegated but not executable", oi, op.Op)
		}
	}
	t.Cycles = cycles
	t.Compute = d.cfg.cyclesToTime(cycles)
	return t, nil
}

// EstimateInvoke returns the timing one Invoke would take without
// executing any kernels. It uses the same cycle and transfer models as
// Invoke, so runtime experiments can be evaluated at the paper's full
// dataset scale where functional execution would be wasteful.
func (d *Device) EstimateInvoke() (Timing, error) {
	if d.loaded == nil {
		return Timing{}, fmt.Errorf("edgetpu: no model loaded")
	}
	cm := d.loaded
	var t Timing
	t.Host = d.cfg.InvokeOverhead
	if cm.DelegatedOps() > 0 {
		t.TransferIn = d.cfg.transferTime(cm.TransferInBytes)
		t.TransferOut = d.cfg.transferTime(cm.TransferOutBytes)
		if !cm.Resident {
			t.WeightStream = d.cfg.transferTime(cm.ParamBytes)
		}
	}
	var cycles uint64
	for oi, op := range cm.Model.Operators {
		if cm.Placements[oi] == PlaceCPU {
			t.HostFallback += d.hostOpCost(op)
			continue
		}
		switch op.Op {
		case tflite.OpFullyConnected:
			in := cm.Model.Tensors[op.Inputs[0]]
			w := cm.Model.Tensors[op.Inputs[1]]
			stats := d.array.fcCycles(in.Shape[0], in.Shape[1], w.Shape[0])
			cycles += stats.Cycles
			t.MACs += stats.MACs
		case tflite.OpTanh, tflite.OpLogistic, tflite.OpConcat, tflite.OpReshape:
			cycles += d.array.lutCycles(cm.Model.Tensors[op.Outputs[0]].Shape.Elems())
		default:
			return t, fmt.Errorf("edgetpu: op %d (%v) delegated but not executable", oi, op.Op)
		}
	}
	t.Cycles = cycles
	t.Compute = d.cfg.cyclesToTime(cycles)
	return t, nil
}

// hostOpCost prices a CPU-fallback operator by its produced elements.
func (d *Device) hostOpCost(op tflite.Operator) time.Duration {
	elems := 0
	for _, ti := range op.Outputs {
		elems += d.loaded.Model.Tensors[ti].Shape.Elems()
	}
	return time.Duration(float64(elems) * d.cfg.HostNsPerElem)
}
