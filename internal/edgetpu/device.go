package edgetpu

import (
	"context"
	"fmt"
	"time"

	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// Timing breaks one invocation's wall-clock cost into the phases the
// paper's runtime figures distinguish.
type Timing struct {
	Host         time.Duration // interpreter/delegate dispatch overhead
	TransferIn   time.Duration // activations host → device
	WeightStream time.Duration // parameter streaming (non-resident models)
	Compute      time.Duration // MXU + activation pipeline
	HostFallback time.Duration // CPU-placed operators
	TransferOut  time.Duration // activations device → host

	Cycles uint64 // accelerator cycles spent in Compute
	MACs   uint64 // multiply-accumulates performed on the MXU
}

// Total returns the end-to-end invocation latency.
func (t Timing) Total() time.Duration {
	return t.Host + t.TransferIn + t.WeightStream + t.Compute + t.HostFallback + t.TransferOut
}

// Add accumulates another invocation's timing into t.
func (t *Timing) Add(o Timing) {
	t.Host += o.Host
	t.TransferIn += o.TransferIn
	t.WeightStream += o.WeightStream
	t.Compute += o.Compute
	t.HostFallback += o.HostFallback
	t.TransferOut += o.TransferOut
	t.Cycles += o.Cycles
	t.MACs += o.MACs
}

// Device is one simulated accelerator instance with at most one loaded
// model, mirroring the single-program restriction of the real part.
type Device struct {
	cfg      Config
	loaded   *CompiledModel
	interp   *tflite.Interpreter
	array    Array
	profiler *Profiler
	faults   *faultState

	// poisoned marks the interpreter state as half-executed after a
	// mid-operator error; Invoke refuses to run until LoadModel resets it.
	poisoned bool

	// SetupTime is the one-time cost paid by LoadModel (model transfer
	// and, for resident models, the parameter upload).
	SetupTime time.Duration
}

// NewDevice returns an idle device.
func NewDevice(cfg Config) *Device {
	return &Device{cfg: cfg, array: Array{Rows: cfg.MXURows, Cols: cfg.MXUCols}}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// LoadModel uploads a compiled model. For resident models the parameters
// cross the link once here; streaming models pay per invocation instead.
// Loading also clears a poisoned or reset device: the fresh interpreter
// state (including pristine parameter copies) replaces whatever a previous
// fault corrupted.
func (d *Device) LoadModel(cm *CompiledModel) (time.Duration, error) {
	if cm == nil {
		return 0, fmt.Errorf("edgetpu: nil compiled model")
	}
	if cm.Config != d.cfg {
		return 0, fmt.Errorf("edgetpu: model compiled for %q, device is %q", cm.Config.Name, d.cfg.Name)
	}
	it, err := tflite.NewInterpreter(cm.Model)
	if err != nil {
		return 0, err
	}
	setup := d.cfg.transferTime(len(cm.Model.Marshal()))
	if cm.Resident {
		setup += d.cfg.transferTime(cm.ParamBytes)
	}
	d.loaded = cm
	d.interp = it
	d.poisoned = false
	d.SetupTime = setup
	return setup, nil
}

// Input returns the i-th model input tensor of the loaded model.
func (d *Device) Input(i int) *tensor.Tensor {
	return d.interp.Input(i)
}

// Output returns the i-th model output tensor after Invoke.
func (d *Device) Output(i int) *tensor.Tensor {
	return d.interp.Output(i)
}

// Invoke executes the loaded model once and returns the phase timing.
// CPU-placed operators run with the tflite reference kernels priced by the
// host cost model; TPU-placed FULLY_CONNECTED ops run on the systolic
// array (bit-exact with the reference); other delegated ops run on the
// activation pipeline.
//
// With a fault plan armed (InjectFaults), Invoke may return a typed
// transient error — *LinkError, *ResetError, ErrNoModel, ErrPoisoned —
// classified by IsRetryable/NeedsReload. On such errors the returned Timing
// carries the time the failed attempt wasted.
func (d *Device) Invoke() (Timing, error) {
	t, _, err := d.run(true, false)
	return t, err
}

// InvokeCtx is Invoke gated on a context: a cancelled or expired context
// fails fast with the context's error before any device work is
// dispatched, leaving the device state (loaded model, fault stream)
// untouched. The simulated invoke itself completes instantaneously in
// wall-clock terms, so the admission check is the cancellation point.
func (d *Device) InvokeCtx(ctx context.Context) (Timing, error) {
	if err := ctx.Err(); err != nil {
		return Timing{}, err
	}
	return d.Invoke()
}

// EstimateInvoke returns the timing one Invoke would take without
// executing any kernels. It uses the same cycle and transfer models as
// Invoke, so runtime experiments can be evaluated at the paper's full
// dataset scale where functional execution would be wasteful. Estimation
// never injects faults and never poisons the device.
func (d *Device) EstimateInvoke() (Timing, error) {
	t, _, err := d.run(false, false)
	return t, err
}

// run is the single op-walk behind Invoke, InvokeProfiled and
// EstimateInvoke. execute selects functional execution (kernels run, faults
// inject) versus pure estimation; trace additionally collects per-op
// traces.
func (d *Device) run(execute, trace bool) (Timing, []OpTrace, error) {
	if d.loaded == nil {
		return Timing{}, nil, ErrNoModel
	}
	if execute && d.poisoned {
		return Timing{}, nil, ErrPoisoned
	}
	cm := d.loaded
	var t Timing
	t.Host = d.cfg.InvokeOverhead

	inject := execute && d.faults != nil
	if inject && d.faults.reset() {
		// The device dropped its program before dispatch reached it; the
		// host paid the invoke overhead to find out.
		d.loaded = nil
		d.interp = nil
		d.poisoned = false
		return t, nil, &ResetError{}
	}

	if cm.DelegatedOps() > 0 {
		if inject {
			if le, penalty := d.faults.linkFault(PhaseTransferIn, cm.TransferInBytes); le != nil {
				t.TransferIn = penalty
				return t, nil, le
			}
		}
		t.TransferIn = d.cfg.transferTime(cm.TransferInBytes)
		if !cm.Resident {
			if inject {
				if le, penalty := d.faults.linkFault(PhaseWeightStream, cm.ParamBytes); le != nil {
					t.WeightStream = penalty
					return t, nil, le
				}
			}
			t.WeightStream = d.cfg.transferTime(cm.ParamBytes)
		}
	}

	if inject {
		d.faults.injectSEUs(d)
	}

	var traces []OpTrace
	if trace {
		traces = make([]OpTrace, 0, len(cm.Model.Operators))
	}
	var cycles uint64
	for oi, op := range cm.Model.Operators {
		tr := OpTrace{Op: oi, Code: op.Op, Placement: cm.Placements[oi]}
		if cm.Placements[oi] == PlaceCPU {
			if execute {
				if err := d.interp.InvokeOp(oi); err != nil {
					d.poisoned = true
					return t, traces, err
				}
			}
			tr.HostTime = d.hostOpCost(op)
			t.HostFallback += tr.HostTime
			if trace {
				traces = append(traces, tr)
			}
			continue
		}
		switch op.Op {
		case tflite.OpFullyConnected:
			var stats FCStats
			if execute {
				in := d.interp.Tensor(op.Inputs[0])
				w := d.interp.Tensor(op.Inputs[1])
				bias := d.interp.Tensor(op.Inputs[2])
				out := d.interp.Tensor(op.Outputs[0])
				var err error
				stats, err = d.array.RunFullyConnected(in, w, bias, out)
				if err != nil {
					d.poisoned = true
					return t, traces, fmt.Errorf("edgetpu: op %d: %w", oi, err)
				}
			} else {
				in := cm.Model.Tensors[op.Inputs[0]]
				w := cm.Model.Tensors[op.Inputs[1]]
				stats = d.array.fcCycles(in.Shape[0], in.Shape[1], w.Shape[0])
			}
			tr.Cycles = stats.Cycles
			tr.MACs = stats.MACs
			cycles += stats.Cycles
			t.MACs += stats.MACs
		case tflite.OpTanh, tflite.OpLogistic, tflite.OpConcat, tflite.OpReshape:
			var elems int
			if execute {
				if err := d.interp.InvokeOp(oi); err != nil {
					d.poisoned = true
					return t, traces, err
				}
				elems = d.interp.Tensor(op.Outputs[0]).Elems()
			} else {
				elems = cm.Model.Tensors[op.Outputs[0]].Shape.Elems()
			}
			tr.Cycles = d.array.lutCycles(elems)
			cycles += tr.Cycles
		default:
			if execute {
				d.poisoned = true
			}
			return t, traces, fmt.Errorf("edgetpu: op %d (%v) delegated but not executable", oi, op.Op)
		}
		if trace {
			traces = append(traces, tr)
		}
	}
	t.Cycles = cycles
	t.Compute = d.cfg.cyclesToTime(cycles)

	if inject && cm.DelegatedOps() > 0 {
		if le, penalty := d.faults.linkFault(PhaseTransferOut, cm.TransferOutBytes); le != nil {
			// Compute completed, but the results never made it back: the
			// attempt pays everything up to here plus the timeout.
			t.TransferOut = penalty
			return t, traces, le
		}
	}
	if cm.DelegatedOps() > 0 {
		t.TransferOut = d.cfg.transferTime(cm.TransferOutBytes)
	}
	return t, traces, nil
}

// hostOpCost prices a CPU-fallback operator by its produced elements.
func (d *Device) hostOpCost(op tflite.Operator) time.Duration {
	elems := 0
	for _, ti := range op.Outputs {
		elems += d.loaded.Model.Tensors[ti].Shape.Elems()
	}
	return time.Duration(float64(elems) * d.cfg.HostNsPerElem)
}
