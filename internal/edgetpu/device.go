package edgetpu

import (
	"context"
	"fmt"
	"time"

	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// Timing breaks one invocation's wall-clock cost into the phases the
// paper's runtime figures distinguish.
type Timing struct {
	Host         time.Duration // interpreter/delegate dispatch overhead
	TransferIn   time.Duration // activations host → device
	WeightStream time.Duration // parameter streaming (non-resident models)
	Compute      time.Duration // MXU + activation pipeline
	HostFallback time.Duration // CPU-placed operators
	TransferOut  time.Duration // activations device → host

	Cycles uint64 // accelerator cycles spent in Compute
	MACs   uint64 // multiply-accumulates performed on the MXU
}

// Total returns the end-to-end invocation latency.
func (t Timing) Total() time.Duration {
	return t.Host + t.TransferIn + t.WeightStream + t.Compute + t.HostFallback + t.TransferOut
}

// Add accumulates another invocation's timing into t.
func (t *Timing) Add(o Timing) {
	t.Host += o.Host
	t.TransferIn += o.TransferIn
	t.WeightStream += o.WeightStream
	t.Compute += o.Compute
	t.HostFallback += o.HostFallback
	t.TransferOut += o.TransferOut
	t.Cycles += o.Cycles
	t.MACs += o.MACs
}

// Device is one simulated accelerator instance with at most one loaded
// model, mirroring the single-program restriction of the real part.
type Device struct {
	cfg      Config
	loaded   *CompiledModel
	interp   *tflite.Interpreter
	array    Array
	profiler *Profiler
	faults   *faultState

	// poisoned marks the interpreter state as half-executed after a
	// mid-operator error; Invoke refuses to run until LoadModel resets it.
	poisoned bool

	// SetupTime is the one-time cost paid by LoadModel (model transfer
	// and, for resident models, the parameter upload).
	SetupTime time.Duration
}

// NewDevice returns an idle device.
func NewDevice(cfg Config) *Device {
	return &Device{cfg: cfg, array: Array{Rows: cfg.MXURows, Cols: cfg.MXUCols}}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// LoadModel uploads a compiled model. For resident models the parameters
// cross the link once here; streaming models pay per invocation instead.
// Loading also clears a poisoned or reset device: the fresh interpreter
// state (including pristine parameter copies) replaces whatever a previous
// fault corrupted.
func (d *Device) LoadModel(cm *CompiledModel) (time.Duration, error) {
	if cm == nil {
		return 0, fmt.Errorf("edgetpu: nil compiled model")
	}
	if cm.Config != d.cfg {
		return 0, fmt.Errorf("edgetpu: model compiled for %q, device is %q", cm.Config.Name, d.cfg.Name)
	}
	it, err := tflite.NewInterpreter(cm.Model)
	if err != nil {
		return 0, err
	}
	setup := d.cfg.transferTime(len(cm.Model.Marshal()))
	if cm.Resident {
		setup += d.cfg.transferTime(cm.ParamBytes)
	}
	d.loaded = cm
	d.interp = it
	d.poisoned = false
	d.SetupTime = setup
	return setup, nil
}

// Input returns the i-th model input tensor of the loaded model.
func (d *Device) Input(i int) *tensor.Tensor {
	return d.interp.Input(i)
}

// Output returns the i-th model output tensor after Invoke.
func (d *Device) Output(i int) *tensor.Tensor {
	return d.interp.Output(i)
}

// Invoke executes the loaded model once and returns the phase timing.
// CPU-placed operators run with the tflite reference kernels priced by the
// host cost model; TPU-placed FULLY_CONNECTED ops run on the systolic
// array (bit-exact with the reference); other delegated ops run on the
// activation pipeline.
//
// With a fault plan armed (InjectFaults), Invoke may return a typed
// transient error — *LinkError, *ResetError, ErrNoModel, ErrPoisoned —
// classified by IsRetryable/NeedsReload. On such errors the returned Timing
// carries the time the failed attempt wasted.
func (d *Device) Invoke() (Timing, error) {
	t, _, err := d.run(true, false, 0)
	return t, err
}

// InvokeBatch executes only the first rows sample rows of the loaded model:
// kernels run on row-prefix views (unoccupied rows are never computed) and
// the cycle, transfer and host cost models are charged at the effective
// batch, so a model compiled at capacity B serves rows < B requests at the
// partially-amortized cost the hardware would pay. rows <= 0 or rows >= the
// model's batch capacity is a full invoke, bit-identical to Invoke. Partial
// rows require a row-sliceable model (every activation batch-leading).
func (d *Device) InvokeBatch(rows int) (Timing, error) {
	t, _, err := d.run(true, false, rows)
	return t, err
}

// InvokeCtx is Invoke gated on a context: a cancelled or expired context
// fails fast with the context's error before any device work is
// dispatched, leaving the device state (loaded model, fault stream)
// untouched. The simulated invoke itself completes instantaneously in
// wall-clock terms, so the admission check is the cancellation point.
func (d *Device) InvokeCtx(ctx context.Context) (Timing, error) {
	if err := ctx.Err(); err != nil {
		return Timing{}, err
	}
	return d.Invoke()
}

// InvokeBatchCtx is InvokeBatch behind the same context gate as InvokeCtx.
func (d *Device) InvokeBatchCtx(ctx context.Context, rows int) (Timing, error) {
	if err := ctx.Err(); err != nil {
		return Timing{}, err
	}
	return d.InvokeBatch(rows)
}

// EstimateInvoke returns the timing one Invoke would take without
// executing any kernels. It uses the same cycle and transfer models as
// Invoke, so runtime experiments can be evaluated at the paper's full
// dataset scale where functional execution would be wasteful. Estimation
// never injects faults and never poisons the device.
func (d *Device) EstimateInvoke() (Timing, error) {
	t, _, err := d.run(false, false, 0)
	return t, err
}

// EstimateInvokeBatch is EstimateInvoke at an effective batch of rows
// occupied sample rows: the same rows-scaled pricing as InvokeBatch with no
// kernel execution.
func (d *Device) EstimateInvokeBatch(rows int) (Timing, error) {
	t, _, err := d.run(false, false, rows)
	return t, err
}

// run is the single op-walk behind Invoke, InvokeProfiled and
// EstimateInvoke. execute selects functional execution (kernels run, faults
// inject) versus pure estimation; trace additionally collects per-op
// traces. rows limits execution and pricing to the first rows sample rows
// of the batch; rows <= 0 (or >= the compiled batch capacity) is a full
// invoke and takes exactly the unscaled arithmetic, so the full path stays
// bit-identical to the pre-batching runtime.
func (d *Device) run(execute, trace bool, rows int) (Timing, []OpTrace, error) {
	if d.loaded == nil {
		return Timing{}, nil, ErrNoModel
	}
	if execute && d.poisoned {
		return Timing{}, nil, ErrPoisoned
	}
	cm := d.loaded
	capacity := cm.BatchCapacity()
	partial := rows > 0 && rows < capacity
	if partial && !cm.Model.RowSliceable() {
		return Timing{}, nil, fmt.Errorf("edgetpu: model %q is not row-sliceable; cannot invoke %d of %d rows",
			cm.Model.Name, rows, capacity)
	}
	vrows := 0 // rows argument for the interpreter's view resolution
	if partial {
		vrows = rows
	}
	// scaleElems prices a batch-leading tensor quantity at the effective
	// batch. Boundary tensors and activations are batch-leading on
	// row-sliceable models, so n is divisible by capacity and the division
	// is exact — partial-batch pricing is exact integer arithmetic, not a
	// rounded approximation.
	scaleElems := func(n int) int {
		if !partial {
			return n
		}
		return n * rows / capacity
	}
	var t Timing
	t.Host = d.cfg.InvokeOverhead

	inject := execute && d.faults != nil
	if inject && d.faults.reset() {
		// The device dropped its program before dispatch reached it; the
		// host paid the invoke overhead to find out.
		d.loaded = nil
		d.interp = nil
		d.poisoned = false
		return t, nil, &ResetError{}
	}

	if cm.DelegatedOps() > 0 {
		inBytes := scaleElems(cm.TransferInBytes)
		if inject {
			if le, penalty := d.faults.linkFault(PhaseTransferIn, inBytes); le != nil {
				t.TransferIn = penalty
				return t, nil, le
			}
		}
		t.TransferIn = d.cfg.transferTime(inBytes)
		if !cm.Resident {
			// Streamed parameters are batch-independent: the full weight
			// set crosses the link however many rows are occupied.
			if inject {
				if le, penalty := d.faults.linkFault(PhaseWeightStream, cm.ParamBytes); le != nil {
					t.WeightStream = penalty
					return t, nil, le
				}
			}
			t.WeightStream = d.cfg.transferTime(cm.ParamBytes)
		}
	}

	if inject {
		d.faults.injectSEUs(d)
	}

	var traces []OpTrace
	if trace {
		traces = make([]OpTrace, 0, len(cm.Model.Operators))
	}
	var cycles uint64
	for oi, op := range cm.Model.Operators {
		tr := OpTrace{Op: oi, Code: op.Op, Placement: cm.Placements[oi]}
		if cm.Placements[oi] == PlaceCPU {
			if execute {
				if err := d.interp.InvokeOpRows(oi, vrows); err != nil {
					d.poisoned = true
					return t, traces, err
				}
			}
			tr.HostTime = d.hostOpCost(op, scaleElems)
			t.HostFallback += tr.HostTime
			if trace {
				traces = append(traces, tr)
			}
			continue
		}
		switch op.Op {
		case tflite.OpFullyConnected:
			var stats FCStats
			if execute {
				in := d.interp.TensorRows(op.Inputs[0], vrows)
				w := d.interp.Tensor(op.Inputs[1])
				bias := d.interp.Tensor(op.Inputs[2])
				out := d.interp.TensorRows(op.Outputs[0], vrows)
				var err error
				stats, err = d.array.RunFullyConnected(in, w, bias, out)
				if err != nil {
					d.poisoned = true
					return t, traces, fmt.Errorf("edgetpu: op %d: %w", oi, err)
				}
			} else {
				in := cm.Model.Tensors[op.Inputs[0]]
				w := cm.Model.Tensors[op.Inputs[1]]
				batch := in.Shape[0]
				if partial {
					batch = rows
				}
				stats = d.array.fcCycles(batch, in.Shape[1], w.Shape[0])
			}
			tr.Cycles = stats.Cycles
			tr.MACs = stats.MACs
			cycles += stats.Cycles
			t.MACs += stats.MACs
		case tflite.OpTanh, tflite.OpLogistic, tflite.OpConcat, tflite.OpReshape:
			var elems int
			if execute {
				if err := d.interp.InvokeOpRows(oi, vrows); err != nil {
					d.poisoned = true
					return t, traces, err
				}
				elems = d.interp.TensorRows(op.Outputs[0], vrows).Elems()
			} else {
				elems = scaleElems(cm.Model.Tensors[op.Outputs[0]].Shape.Elems())
			}
			tr.Cycles = d.array.lutCycles(elems)
			cycles += tr.Cycles
		default:
			if execute {
				d.poisoned = true
			}
			return t, traces, fmt.Errorf("edgetpu: op %d (%v) delegated but not executable", oi, op.Op)
		}
		if trace {
			traces = append(traces, tr)
		}
	}
	t.Cycles = cycles
	t.Compute = d.cfg.cyclesToTime(cycles)

	if cm.DelegatedOps() > 0 {
		outBytes := scaleElems(cm.TransferOutBytes)
		if inject {
			if le, penalty := d.faults.linkFault(PhaseTransferOut, outBytes); le != nil {
				// Compute completed, but the results never made it back: the
				// attempt pays everything up to here plus the timeout.
				t.TransferOut = penalty
				return t, traces, le
			}
		}
		t.TransferOut = d.cfg.transferTime(outBytes)
	}
	return t, traces, nil
}

// hostOpCost prices a CPU-fallback operator by its produced elements,
// scaled to the effective batch by scaleElems.
func (d *Device) hostOpCost(op tflite.Operator, scaleElems func(int) int) time.Duration {
	elems := 0
	for _, ti := range op.Outputs {
		elems += scaleElems(d.loaded.Model.Tensors[ti].Shape.Elems())
	}
	return time.Duration(float64(elems) * d.cfg.HostNsPerElem)
}
