package edgetpu

import (
	"strings"
	"testing"
)

func TestProgramCyclesMatchEstimate(t *testing.T) {
	m := buildFloatNet(4, 30, 300, 5, 90)
	qm := quantizeNet(t, m, 4, 30, 91)
	cm, err := Compile(qm, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(DefaultUSB())
	if _, err := dev.LoadModel(cm); err != nil {
		t.Fatal(err)
	}
	est, err := dev.EstimateInvoke()
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.ProgramCycles(); got != est.Cycles {
		t.Fatalf("program cycles %d, estimator reports %d", got, est.Cycles)
	}
	// And the functional path must agree too.
	timing, err := dev.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if timing.Cycles != est.Cycles {
		t.Fatalf("invoke cycles %d vs estimate %d", timing.Cycles, est.Cycles)
	}
}

func TestProgramStructure(t *testing.T) {
	m := buildFloatNet(2, 20, 128, 3, 92)
	qm := quantizeNet(t, m, 2, 20, 93)
	cm, err := Compile(qm, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	prog := cm.Program()
	if len(prog) == 0 {
		t.Fatal("empty program for delegated model")
	}
	// Every MATMUL_TILE must be preceded by its LOAD_TILE.
	for i, in := range prog {
		if in.Kind == InstrMatMulTile {
			if i == 0 || prog[i-1].Kind != InstrLoadTile ||
				prog[i-1].TileK != in.TileK || prog[i-1].TileU != in.TileU {
				t.Fatalf("instruction %d: matmul tile without matching load", i)
			}
		}
		if in.Cycles == 0 {
			t.Fatalf("instruction %d has zero cycles", i)
		}
	}
	// FC1 (d=128, n=20) on a 64×64 array: 1 depth tile × 2 unit tiles.
	loads := 0
	for _, in := range prog {
		if in.Kind == InstrLoadTile && in.Op == 1 {
			loads++
		}
	}
	if loads != 2 {
		t.Fatalf("FC1 loaded %d tiles, want 2", loads)
	}
}

func TestProgramEmptyForCPUOnly(t *testing.T) {
	m := buildFloatNet(1, 8, 32, 2, 94) // float model: nothing delegates
	cm, err := Compile(m, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.Program()) != 0 {
		t.Fatal("CPU-only model has a device program")
	}
}

func TestDisassembleReadable(t *testing.T) {
	m := buildFloatNet(2, 20, 128, 3, 95)
	qm := quantizeNet(t, m, 2, 20, 96)
	cm, err := Compile(qm, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	asm := cm.Disassemble()
	for _, want := range []string{"FULLY_CONNECTED", "LUT", "total", "cycles"} {
		if !strings.Contains(asm, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

func TestInstrKindString(t *testing.T) {
	if InstrLoadTile.String() != "LOAD_TILE" || InstrLUT.String() != "LUT" {
		t.Fatal("instruction names wrong")
	}
	if !strings.HasPrefix(InstrKind(99).String(), "INSTR(") {
		t.Fatal("unknown kind should render numerically")
	}
}

func TestPCIeFasterThanUSB(t *testing.T) {
	// The PCIe variant exists for link-sensitivity studies: identical
	// compute, cheaper transfers and dispatch.
	m := buildFloatNet(8, 100, 512, 4, 97)
	qm := quantizeNet(t, m, 8, 100, 98)

	invoke := func(cfg Config) Timing {
		cm, err := Compile(qm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		dev := NewDevice(cfg)
		if _, err := dev.LoadModel(cm); err != nil {
			t.Fatal(err)
		}
		timing, err := dev.EstimateInvoke()
		if err != nil {
			t.Fatal(err)
		}
		return timing
	}
	usb := invoke(DefaultUSB())
	pcie := invoke(DefaultPCIe())
	if pcie.Compute != usb.Compute {
		t.Fatalf("link change altered compute: %v vs %v", pcie.Compute, usb.Compute)
	}
	if pcie.Total() >= usb.Total() {
		t.Fatalf("PCIe (%v) not faster than USB (%v)", pcie.Total(), usb.Total())
	}
}

func TestMemoryMapLayout(t *testing.T) {
	m := buildFloatNet(2, 20, 192, 4, 120)
	qm := quantizeNet(t, m, 2, 20, 121)
	cm, err := Compile(qm, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	mm := cm.MemoryMap()
	// Delegated constants: w1, b1, w2, b2.
	if len(mm.Regions) != 4 {
		t.Fatalf("%d regions", len(mm.Regions))
	}
	// Offsets must be aligned, increasing and non-overlapping.
	prevEnd := 0
	for i, r := range mm.Regions {
		if r.Offset%64 != 0 {
			t.Fatalf("region %d offset %d not 64-aligned", i, r.Offset)
		}
		if r.Offset < prevEnd {
			t.Fatalf("region %d overlaps previous", i)
		}
		prevEnd = r.Offset + r.Bytes
	}
	if mm.Used < cm.ParamBytes {
		t.Fatalf("Used %d below raw param bytes %d", mm.Used, cm.ParamBytes)
	}
	// Alignment padding is bounded: at most 63 bytes per region.
	if mm.Used > cm.ParamBytes+64*len(mm.Regions) {
		t.Fatalf("Used %d exceeds params+padding bound", mm.Used)
	}
	if mm.Resident != cm.Resident {
		t.Fatal("residency disagrees with compiler")
	}
	s := mm.String()
	if !strings.Contains(s, "parameter memory") || !strings.Contains(s, "0x00000000") {
		t.Fatalf("map render:\n%s", s)
	}
}

func TestMemoryMapEmptyForCPUOnly(t *testing.T) {
	m := buildFloatNet(1, 8, 32, 2, 122)
	cm, err := Compile(m, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	mm := cm.MemoryMap()
	if len(mm.Regions) != 0 || mm.Used != 0 {
		t.Fatalf("CPU-only model has memory map %+v", mm)
	}
}
