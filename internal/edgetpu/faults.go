package edgetpu

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"hdcedge/internal/rng"
	"hdcedge/internal/tflite"
)

// This file is the simulator's fault model. Real USB-attached Edge TPU
// deployments are not always healthy: bulk transfers time out, the device
// resets and drops its loaded program, and parameter SRAM takes single-event
// upsets. All three are modeled here as deterministic, seeded injections so
// that a run with a given FaultPlan is exactly reproducible — the property
// the resilient runtime's tests and the fault-rate sweeps depend on.

// Sentinel errors for the device's unproductive states. Both are transient
// from the caller's perspective: a LoadModel brings the device back.
var (
	// ErrNoModel is returned by Invoke when no model is loaded — either
	// none ever was, or a device reset dropped it.
	ErrNoModel = errors.New("edgetpu: no model loaded")

	// ErrPoisoned is returned by Invoke after a previous invocation aborted
	// mid-operator, leaving the interpreter state half-executed. The device
	// refuses further work until LoadModel reinitializes it.
	ErrPoisoned = errors.New("edgetpu: device poisoned by a mid-invoke error; reload the model")
)

// Link transfer phases where a transient fault can strike.
const (
	PhaseTransferIn   = "transfer-in"
	PhaseWeightStream = "weight-stream"
	PhaseTransferOut  = "transfer-out"
)

// LinkError is a transient host-link failure: one bulk transfer timed out.
// The invocation that hit it already paid the configured timeout penalty;
// retrying the whole Invoke is safe (no device state was corrupted).
type LinkError struct {
	Phase   string
	Timeout time.Duration
}

// Error implements error.
func (e *LinkError) Error() string {
	return fmt.Sprintf("edgetpu: transient link fault during %s (timed out after %v)", e.Phase, e.Timeout)
}

// ResetError reports that the device spontaneously reset: the loaded model
// is gone and every Invoke returns ErrNoModel until LoadModel is re-paid.
type ResetError struct{}

// Error implements error.
func (e *ResetError) Error() string {
	return "edgetpu: device reset; loaded model dropped"
}

// IsRetryable reports whether err is a transient device condition a caller
// can recover from by retrying (possibly after reloading the model, see
// NeedsReload). Anything else — graph bugs, dtype mismatches — is permanent.
func IsRetryable(err error) bool {
	var le *LinkError
	var re *ResetError
	return errors.As(err, &le) || errors.As(err, &re) ||
		errors.Is(err, ErrNoModel) || errors.Is(err, ErrPoisoned)
}

// NeedsReload reports whether recovering from err requires re-paying
// LoadModel before the next Invoke can succeed.
func NeedsReload(err error) bool {
	var re *ResetError
	return errors.As(err, &re) || errors.Is(err, ErrNoModel) || errors.Is(err, ErrPoisoned)
}

// DefaultLinkTimeout is the penalty a failed bulk transfer pays when
// FaultPlan.LinkTimeout is zero: the host runtime's transfer deadline.
const DefaultLinkTimeout = 2 * time.Millisecond

// FaultPlan configures seeded fault injection on one device. The zero value
// injects nothing. Every random choice derives from Seed, so two devices
// running the same plan against the same invoke sequence misbehave
// identically.
type FaultPlan struct {
	// Seed drives the injection stream.
	Seed uint64

	// LinkErrorRate is the probability that one bulk-transfer phase
	// (transfer-in, weight-stream, transfer-out) of an Invoke fails with a
	// LinkError. Phases that move zero bytes issue no transfer and cannot
	// fault.
	LinkErrorRate float64

	// ResetRate is the per-Invoke probability that the device resets
	// before dispatch, dropping the loaded model.
	ResetRate float64

	// BitFlipRate is the per-bit, per-Invoke probability of a single-event
	// upset in resident parameter SRAM. Flips persist across invocations
	// until the model is reloaded. Streaming (non-resident) models refresh
	// their parameters over the link every invoke and are immune.
	BitFlipRate float64

	// LinkTimeout is the time a failed transfer wastes before the error
	// surfaces (DefaultLinkTimeout when zero).
	LinkTimeout time.Duration
}

// Validate checks the plan's rates and penalty for sanity.
func (p FaultPlan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"LinkErrorRate", p.LinkErrorRate},
		{"ResetRate", p.ResetRate},
		{"BitFlipRate", p.BitFlipRate},
	} {
		if math.IsNaN(r.v) || r.v < 0 || r.v > 1 {
			return fmt.Errorf("edgetpu: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	if p.LinkTimeout < 0 {
		return fmt.Errorf("edgetpu: negative LinkTimeout %v", p.LinkTimeout)
	}
	return nil
}

// Enabled reports whether the plan can inject anything at all.
func (p FaultPlan) Enabled() bool {
	return p.LinkErrorRate > 0 || p.ResetRate > 0 || p.BitFlipRate > 0
}

// linkTimeout returns the effective failed-transfer penalty.
func (p FaultPlan) linkTimeout() time.Duration {
	if p.LinkTimeout > 0 {
		return p.LinkTimeout
	}
	return DefaultLinkTimeout
}

// ParseFaultPlan builds a plan from a comma-separated spec such as
// "link=0.01,reset=0.001,seu=1e-7,timeout=5ms". A bare number sets both
// link and reset rates. The empty string yields a disabled plan.
func ParseFaultPlan(spec string, seed uint64) (FaultPlan, error) {
	p := FaultPlan{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, found := strings.Cut(field, "=")
		if !found {
			// Bare rate: transient faults on both the link and reset paths.
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return p, fmt.Errorf("edgetpu: bad fault spec %q: %v", field, err)
			}
			p.LinkErrorRate = v
			p.ResetRate = v / 10
			continue
		}
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "link":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return p, fmt.Errorf("edgetpu: bad link rate %q: %v", val, err)
			}
			p.LinkErrorRate = v
		case "reset":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return p, fmt.Errorf("edgetpu: bad reset rate %q: %v", val, err)
			}
			p.ResetRate = v
		case "seu", "bitflip":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return p, fmt.Errorf("edgetpu: bad SEU rate %q: %v", val, err)
			}
			p.BitFlipRate = v
		case "timeout":
			d, err := time.ParseDuration(strings.TrimSpace(val))
			if err != nil {
				return p, fmt.Errorf("edgetpu: bad timeout %q: %v", val, err)
			}
			p.LinkTimeout = d
		default:
			return p, fmt.Errorf("edgetpu: unknown fault knob %q (have link, reset, seu, timeout)", key)
		}
	}
	return p, p.Validate()
}

// FaultStats counts what the injector actually did to one device.
type FaultStats struct {
	LinkFaults int           // transient transfer failures injected
	Resets     int           // spontaneous device resets injected
	BitFlips   int           // parameter-SRAM bits flipped
	WastedTime time.Duration // timeout penalties paid by failed transfers
}

// faultState is the per-device injector: the plan plus its private rng
// stream and counters.
type faultState struct {
	plan  FaultPlan
	r     *rng.RNG
	stats FaultStats
}

func newFaultState(plan FaultPlan) *faultState {
	return &faultState{plan: plan, r: rng.New(plan.Seed)}
}

// fires draws one Bernoulli decision at rate p. Rates of zero draw nothing,
// which keeps disabled fault classes out of the stream entirely (adding a
// reset rate does not change where link faults land).
func (f *faultState) fires(p float64) bool {
	if p <= 0 {
		return false
	}
	return f.r.Float64() < p
}

// reset decides whether this Invoke hits a spontaneous device reset.
func (f *faultState) reset() bool {
	if !f.fires(f.plan.ResetRate) {
		return false
	}
	f.stats.Resets++
	return true
}

// linkFault decides whether the transfer phase moving n bytes fails. On
// failure it returns the typed error and the timeout penalty the caller
// must account.
func (f *faultState) linkFault(phase string, n int) (*LinkError, time.Duration) {
	if n <= 0 || !f.fires(f.plan.LinkErrorRate) {
		return nil, 0
	}
	timeout := f.plan.linkTimeout()
	f.stats.LinkFaults++
	f.stats.WastedTime += timeout
	return &LinkError{Phase: phase, Timeout: timeout}, timeout
}

// flipCount samples how many of the given bits upset this invoke:
// Binomial(bits, rate), approximated by Poisson (Knuth's product method for
// small means, a clamped normal for large ones). Both paths draw from the
// seeded stream only, keeping the fault sequence reproducible.
func (f *faultState) flipCount(bits int) int {
	lambda := f.plan.BitFlipRate * float64(bits)
	if lambda <= 0 || bits <= 0 {
		return 0
	}
	var k int
	if lambda < 30 {
		l := math.Exp(-lambda)
		p := 1.0
		for p > l {
			p *= f.r.Float64()
			k++
		}
		k--
	} else {
		k = int(math.Round(lambda + math.Sqrt(lambda)*f.r.NormFloat64()))
	}
	if k < 0 {
		k = 0
	}
	if k > bits {
		k = bits
	}
	return k
}

// injectSEUs flips seeded random bits in the device's resident int8
// parameter tensors. The flips land in the interpreter's own copies of the
// constant buffers, so the compiled model stays pristine and a LoadModel
// restores clean weights — exactly like re-uploading parameters to SRAM.
func (f *faultState) injectSEUs(d *Device) {
	if f.plan.BitFlipRate <= 0 {
		return
	}
	cm := d.loaded
	if cm == nil || !cm.Resident {
		return
	}
	// Collect the delegated constant int8 tensors (the resident weights).
	var resident [][]int8
	total := 0
	seen := map[int]bool{}
	for oi, op := range cm.Model.Operators {
		if cm.Placements[oi] != PlaceTPU {
			continue
		}
		for _, ti := range op.Inputs {
			info := cm.Model.Tensors[ti]
			if info.Buffer == tflite.NoBuffer || seen[ti] {
				continue
			}
			seen[ti] = true
			t := d.interp.Tensor(ti)
			if len(t.I8) == 0 {
				continue // int32 bias and friends: not in the int8 weight SRAM model
			}
			resident = append(resident, t.I8)
			total += len(t.I8)
		}
	}
	bits := total * 8
	flips := f.flipCount(bits)
	for i := 0; i < flips; i++ {
		pos := f.r.Intn(bits)
		byteIdx, bit := pos/8, uint(pos%8)
		for _, w := range resident {
			if byteIdx < len(w) {
				w[byteIdx] ^= int8(1) << bit
				break
			}
			byteIdx -= len(w)
		}
	}
	f.stats.BitFlips += flips
}

// InjectFaults arms the device with a seeded fault plan. Passing a disabled
// plan (or the zero FaultPlan) removes injection entirely; the device then
// behaves — and times — exactly as an un-faulted device.
func (d *Device) InjectFaults(plan FaultPlan) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	if !plan.Enabled() {
		d.faults = nil
		return nil
	}
	d.faults = newFaultState(plan)
	return nil
}

// FaultStats returns what the injector has done so far (zero value when no
// plan is armed).
func (d *Device) FaultStats() FaultStats {
	if d.faults == nil {
		return FaultStats{}
	}
	return d.faults.stats
}
