package edgetpu

import (
	"fmt"
	"strings"

	"hdcedge/internal/tflite"
)

// InstrKind enumerates the accelerator's schedule-level instructions.
type InstrKind uint8

const (
	// InstrLoadTile shifts one weight tile from parameter memory into
	// the MXU.
	InstrLoadTile InstrKind = iota
	// InstrMatMulTile streams the activation batch through the resident
	// weight tile, accumulating partial sums.
	InstrMatMulTile
	// InstrLUT runs an element-wise pass through the activation
	// pipeline's lookup unit.
	InstrLUT
	// InstrMove copies activations without arithmetic (CONCAT, RESHAPE).
	InstrMove
)

// String implements fmt.Stringer.
func (k InstrKind) String() string {
	switch k {
	case InstrLoadTile:
		return "LOAD_TILE"
	case InstrMatMulTile:
		return "MATMUL_TILE"
	case InstrLUT:
		return "LUT"
	case InstrMove:
		return "MOVE"
	default:
		return fmt.Sprintf("INSTR(%d)", uint8(k))
	}
}

// Instruction is one step of the compiled tile schedule.
type Instruction struct {
	Kind   InstrKind
	Op     int // index of the source tflite operator
	TileK  int // depth-tile index (matmul instructions)
	TileU  int // unit-tile index (matmul instructions)
	Cycles uint64
}

// Program expands the delegated segment into its tile-level instruction
// schedule — the representation the real compiler lowers to (and the unit
// the timing model charges). CPU-placed operators do not appear.
func (cm *CompiledModel) Program() []Instruction {
	arr := Array{Rows: cm.Config.MXURows, Cols: cm.Config.MXUCols}
	var prog []Instruction
	for oi, op := range cm.Model.Operators {
		if cm.Placements[oi] != PlaceTPU {
			continue
		}
		switch op.Op {
		case tflite.OpFullyConnected:
			in := cm.Model.Tensors[op.Inputs[0]]
			w := cm.Model.Tensors[op.Inputs[1]]
			batch, depth := in.Shape[0], in.Shape[1]
			units := w.Shape[0]
			tilesK := (depth + arr.Rows - 1) / arr.Rows
			tilesU := (units + arr.Cols - 1) / arr.Cols
			loadCycles := uint64(arr.Rows)
			streamCycles := uint64(batch + arr.Rows + arr.Cols)
			for tk := 0; tk < tilesK; tk++ {
				for tu := 0; tu < tilesU; tu++ {
					prog = append(prog,
						Instruction{Kind: InstrLoadTile, Op: oi, TileK: tk, TileU: tu, Cycles: loadCycles},
						Instruction{Kind: InstrMatMulTile, Op: oi, TileK: tk, TileU: tu, Cycles: streamCycles},
					)
				}
			}
		case tflite.OpTanh, tflite.OpLogistic:
			elems := cm.Model.Tensors[op.Outputs[0]].Shape.Elems()
			prog = append(prog, Instruction{Kind: InstrLUT, Op: oi, Cycles: arr.lutCycles(elems)})
		case tflite.OpConcat, tflite.OpReshape:
			elems := cm.Model.Tensors[op.Outputs[0]].Shape.Elems()
			prog = append(prog, Instruction{Kind: InstrMove, Op: oi, Cycles: arr.lutCycles(elems)})
		}
	}
	return prog
}

// ProgramCycles sums the schedule's cycle budget; it equals the Compute
// cycles EstimateInvoke and Invoke report.
func (cm *CompiledModel) ProgramCycles() uint64 {
	var total uint64
	for _, in := range cm.Program() {
		total += in.Cycles
	}
	return total
}

// Disassemble renders the schedule, collapsing tile runs per operator for
// readability.
func (cm *CompiledModel) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; program for %q on %s\n", cm.Model.Name, cm.Config.Name)
	prog := cm.Program()
	i := 0
	for i < len(prog) {
		in := prog[i]
		switch in.Kind {
		case InstrLoadTile, InstrMatMulTile:
			// Collapse the whole tile loop of this operator.
			j := i
			var cycles uint64
			tiles := 0
			for j < len(prog) && prog[j].Op == in.Op &&
				(prog[j].Kind == InstrLoadTile || prog[j].Kind == InstrMatMulTile) {
				cycles += prog[j].Cycles
				if prog[j].Kind == InstrMatMulTile {
					tiles++
				}
				j++
			}
			op := cm.Model.Operators[in.Op]
			w := cm.Model.Tensors[op.Inputs[1]]
			fmt.Fprintf(&sb, "  op%-3d FULLY_CONNECTED  %4d tiles (%d×%d weights)  %10d cycles\n",
				in.Op, tiles, w.Shape[0], w.Shape[1], cycles)
			i = j
		default:
			fmt.Fprintf(&sb, "  op%-3d %-16v %28s %10d cycles\n", in.Op, in.Kind, "", in.Cycles)
			i++
		}
	}
	fmt.Fprintf(&sb, "; total %d cycles (%.3f ms @ %.0f MHz)\n",
		cm.ProgramCycles(),
		float64(cm.ProgramCycles())/cm.Config.ClockHz*1e3,
		cm.Config.ClockHz/1e6)
	return sb.String()
}
