package edgetpu

import (
	"strings"
	"testing"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// buildFloatNet returns a small float 3-layer network with an arg-max
// head, structurally identical to the paper's wide-NN inference model.
func buildFloatNet(batch, n, d, k int, seed uint64) *tflite.Model {
	r := rng.New(seed)
	b := tflite.NewBuilder("net")
	in := b.AddInput("features", tensor.Float32, batch, n)
	w1 := tensor.New(tensor.Float32, d, n)
	r.FillNormal(w1.F32)
	b1 := tensor.New(tensor.Float32, d)
	w2 := tensor.New(tensor.Float32, k, d)
	r.FillNormal(w2.F32)
	b2 := tensor.New(tensor.Float32, k)
	h := b.FullyConnected(in, b.AddConstF32("w1", w1), b.AddConstF32("b1", b1), "hidden")
	ht := b.Tanh(h, "encoded")
	scores := b.FullyConnected(ht, b.AddConstF32("w2", w2), b.AddConstF32("b2", b2), "scores")
	b.MarkOutput(b.ArgMax(scores, "pred"))
	b.MarkOutput(scores)
	return b.Finish()
}

// quantizeNet runs post-training quantization with random calibration.
func quantizeNet(t *testing.T, m *tflite.Model, batch, n int, seed uint64) *tflite.Model {
	t.Helper()
	r := rng.New(seed)
	var calib [][][]float32
	for i := 0; i < 32; i++ {
		buf := make([]float32, batch*n)
		r.FillNormal(buf)
		calib = append(calib, [][]float32{buf})
	}
	qm, err := tflite.QuantizeModel(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	return qm
}

func TestCompilePartitionsQuantizedNet(t *testing.T) {
	m := buildFloatNet(2, 16, 128, 4, 1)
	qm := quantizeNet(t, m, 2, 16, 2)
	cm, err := Compile(qm, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	// Quantized graph: QUANTIZE, FC, TANH, FC, ARGMAX, DEQUANTIZE.
	// Delegated run must be the FC/TANH/FC core.
	if cm.DelegatedOps() != 3 {
		t.Fatalf("delegated %d ops, want 3\n%s", cm.DelegatedOps(), cm.Report())
	}
	for i, op := range qm.Operators {
		wantTPU := op.Op == tflite.OpFullyConnected || op.Op == tflite.OpTanh
		if (cm.Placements[i] == PlaceTPU) != wantTPU {
			t.Fatalf("op %d (%v) placed %v", i, op.Op, cm.Placements[i])
		}
	}
	if cm.SegmentEnd-cm.SegmentStart != 3 {
		t.Fatalf("segment [%d,%d)", cm.SegmentStart, cm.SegmentEnd)
	}
}

func TestCompileFloatModelFallsBackToCPU(t *testing.T) {
	m := buildFloatNet(1, 8, 32, 3, 3)
	cm, err := Compile(m, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	if cm.DelegatedOps() != 0 {
		t.Fatalf("float model delegated %d ops", cm.DelegatedOps())
	}
	if len(cm.Warnings) == 0 || !strings.Contains(cm.Warnings[0], "quantized") {
		t.Fatalf("expected not-quantized warning, got %v", cm.Warnings)
	}
}

func TestCompileParamBytes(t *testing.T) {
	n, d, k := 16, 128, 4
	m := buildFloatNet(1, n, d, k, 4)
	qm := quantizeNet(t, m, 1, n, 5)
	cm, err := Compile(qm, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	// Delegated constants: w1 (d×n int8) + b1 (d int32) + w2 (k×d int8)
	// + b2 (k int32).
	want := d*n + 4*d + k*d + 4*k
	if cm.ParamBytes != want {
		t.Fatalf("ParamBytes = %d, want %d", cm.ParamBytes, want)
	}
	if !cm.Resident {
		t.Fatal("small model should be resident")
	}
}

func TestCompileStreamingWhenOverCache(t *testing.T) {
	cfg := DefaultUSB()
	cfg.ParamMemBytes = 1024 // force streaming
	m := buildFloatNet(1, 16, 128, 4, 6)
	qm := quantizeNet(t, m, 1, 16, 7)
	cm, err := Compile(qm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Resident {
		t.Fatal("model larger than cache marked resident")
	}
	found := false
	for _, w := range cm.Warnings {
		if strings.Contains(w, "stream") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no streaming warning: %v", cm.Warnings)
	}
}

func TestCompileBoundaryBytes(t *testing.T) {
	batch, n, d, k := 4, 16, 128, 4
	m := buildFloatNet(batch, n, d, k, 8)
	qm := quantizeNet(t, m, batch, n, 9)
	cm, err := Compile(qm, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	// In: quantized features [batch, n] int8. Out: int8 scores [batch, k]
	// consumed by CPU ARG_MAX and DEQUANTIZE.
	if cm.TransferInBytes != batch*n {
		t.Fatalf("TransferInBytes = %d, want %d", cm.TransferInBytes, batch*n)
	}
	if cm.TransferOutBytes != batch*k {
		t.Fatalf("TransferOutBytes = %d, want %d", cm.TransferOutBytes, batch*k)
	}
}

func TestCompileRejectsInvalidModel(t *testing.T) {
	m := buildFloatNet(1, 4, 8, 2, 10)
	m.Operators[0].Inputs[0] = 999
	if _, err := Compile(m, DefaultUSB()); err == nil {
		t.Fatal("invalid model compiled")
	}
}

func TestCompileRejectsInvalidConfig(t *testing.T) {
	m := buildFloatNet(1, 4, 8, 2, 11)
	cfg := DefaultUSB()
	cfg.MXURows = 0
	if _, err := Compile(m, cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCompileReportMentionsPlacements(t *testing.T) {
	m := buildFloatNet(1, 8, 64, 3, 12)
	qm := quantizeNet(t, m, 1, 8, 13)
	cm, err := Compile(qm, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	rep := cm.Report()
	for _, want := range []string{"FULLY_CONNECTED", "TANH", "TPU", "CPU", "Parameter data"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestPlacementString(t *testing.T) {
	if PlaceTPU.String() != "TPU" || PlaceCPU.String() != "CPU" {
		t.Fatal("placement names wrong")
	}
}

func TestCompileDelegatesLogistic(t *testing.T) {
	// A logistic-activated quantized graph must delegate like tanh.
	b := tflite.NewBuilder("lg")
	in := b.AddInput("in", tensor.Int8, 1, 8)
	b.SetQuant(in, tensor.QuantParams{Scale: 0.05, ZeroPoint: 0})
	w := tensor.New(tensor.Int8, 16, 8)
	w.Quant = &tensor.QuantParams{Scale: 0.02, ZeroPoint: 0}
	bias := tensor.New(tensor.Int32, 16)
	bias.Quant = &tensor.QuantParams{Scale: 0.001}
	h := b.FullyConnected(in, b.AddConstI8("w", w), b.AddConstI32("b", bias), "h")
	b.SetQuant(h, tensor.QuantParams{Scale: 0.1, ZeroPoint: 0})
	out := b.Logistic(h, "act")
	b.MarkOutput(out)
	cm, err := Compile(b.Finish(), DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	if cm.DelegatedOps() != 2 {
		t.Fatalf("delegated %d ops:\n%s", cm.DelegatedOps(), cm.Report())
	}
	dev := NewDevice(DefaultUSB())
	if _, err := dev.LoadModel(cm); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Invoke(); err != nil {
		t.Fatal(err)
	}
	if cm.ProgramCycles() == 0 {
		t.Fatal("no program cycles for logistic graph")
	}
}

func TestCompileWarnsOnActivationOverflow(t *testing.T) {
	cfg := DefaultUSB()
	cfg.ActMemBytes = 256 // tiny scratch
	m := buildFloatNet(8, 16, 512, 4, 130)
	qm := quantizeNet(t, m, 8, 16, 131)
	cm, err := Compile(qm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range cm.Warnings {
		if strings.Contains(w, "activation") && strings.Contains(w, "batch") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no activation-overflow warning: %v", cm.Warnings)
	}
	// Normal scratch: no warning.
	cm2, err := Compile(qm, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range cm2.Warnings {
		if strings.Contains(w, "activation") {
			t.Fatalf("spurious activation warning: %v", cm2.Warnings)
		}
	}
}
