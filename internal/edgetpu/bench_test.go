package edgetpu

import (
	"testing"

	"hdcedge/internal/rng"
	"hdcedge/internal/tflite"
)

func BenchmarkSystolicFC(b *testing.B) {
	// The encoder matmul at functional scale: batch 32, 617 → 2000.
	r := rng.New(1)
	in, w, bias, out := randFC(r, 32, 617, 2000)
	arr := Array{Rows: 64, Cols: 64}
	b.SetBytes(int64(len(in.I8) + len(w.I8)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arr.RunFullyConnected(in, w, bias, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	m := buildFloatNet(8, 100, 1000, 8, 1)
	var calib [][][]float32
	r := rng.New(2)
	for i := 0; i < 8; i++ {
		buf := make([]float32, 8*100)
		r.FillNormal(buf)
		calib = append(calib, [][]float32{buf})
	}
	qm, err := quantizeForBench(m, calib)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(qm, DefaultUSB()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceInvoke(b *testing.B) {
	m := buildFloatNet(8, 100, 1000, 8, 3)
	var calib [][][]float32
	r := rng.New(4)
	for i := 0; i < 8; i++ {
		buf := make([]float32, 8*100)
		r.FillNormal(buf)
		calib = append(calib, [][]float32{buf})
	}
	qm, err := quantizeForBench(m, calib)
	if err != nil {
		b.Fatal(err)
	}
	cm, err := Compile(qm, DefaultUSB())
	if err != nil {
		b.Fatal(err)
	}
	dev := NewDevice(DefaultUSB())
	if _, err := dev.LoadModel(cm); err != nil {
		b.Fatal(err)
	}
	r.FillNormal(dev.Input(0).F32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Invoke(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateInvoke(b *testing.B) {
	m := buildFloatNet(8, 100, 1000, 8, 5)
	var calib [][][]float32
	r := rng.New(6)
	for i := 0; i < 8; i++ {
		buf := make([]float32, 8*100)
		r.FillNormal(buf)
		calib = append(calib, [][]float32{buf})
	}
	qm, err := quantizeForBench(m, calib)
	if err != nil {
		b.Fatal(err)
	}
	cm, err := Compile(qm, DefaultUSB())
	if err != nil {
		b.Fatal(err)
	}
	dev := NewDevice(DefaultUSB())
	if _, err := dev.LoadModel(cm); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.EstimateInvoke(); err != nil {
			b.Fatal(err)
		}
	}
}

// quantizeForBench mirrors quantizeNet without a testing.T.
func quantizeForBench(m *tflite.Model, calib [][][]float32) (*tflite.Model, error) {
	return tflite.QuantizeModel(m, calib)
}
