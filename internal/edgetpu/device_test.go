package edgetpu

import (
	"testing"
	"time"

	"hdcedge/internal/rng"
	"hdcedge/internal/tflite"
)

func loadedDevice(t *testing.T, batch, n, d, k int) (*Device, *CompiledModel, *tflite.Model) {
	t.Helper()
	m := buildFloatNet(batch, n, d, k, 42)
	qm := quantizeNet(t, m, batch, n, 43)
	cm, err := Compile(qm, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(DefaultUSB())
	if _, err := dev.LoadModel(cm); err != nil {
		t.Fatal(err)
	}
	return dev, cm, qm
}

func TestDeviceInvokeMatchesInterpreter(t *testing.T) {
	batch, n, d, k := 3, 20, 96, 5
	dev, _, qm := loadedDevice(t, batch, n, d, k)

	ref, err := tflite.NewInterpreter(qm)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	in := make([]float32, batch*n)
	r.FillNormal(in)
	copy(dev.Input(0).F32, in)
	copy(ref.Input(0).F32, in)
	if _, err := dev.Invoke(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Invoke(); err != nil {
		t.Fatal(err)
	}
	// Output 0: argmax predictions must be identical.
	for i := range ref.Output(0).I32 {
		if dev.Output(0).I32[i] != ref.Output(0).I32[i] {
			t.Fatalf("prediction %d: device %d, reference %d", i, dev.Output(0).I32[i], ref.Output(0).I32[i])
		}
	}
	// Output 1: dequantized scores must be bit-identical (same int8 path).
	for i := range ref.Output(1).F32 {
		if dev.Output(1).F32[i] != ref.Output(1).F32[i] {
			t.Fatalf("score %d: device %v, reference %v", i, dev.Output(1).F32[i], ref.Output(1).F32[i])
		}
	}
}

func TestDeviceInvokeWithoutModel(t *testing.T) {
	dev := NewDevice(DefaultUSB())
	if _, err := dev.Invoke(); err == nil {
		t.Fatal("invoke without model succeeded")
	}
}

func TestDeviceLoadRejectsConfigMismatch(t *testing.T) {
	m := buildFloatNet(1, 8, 32, 2, 1)
	qm := quantizeNet(t, m, 1, 8, 2)
	other := DefaultUSB()
	other.Name = "other"
	other.ClockHz = 1e9
	cm, err := Compile(qm, other)
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(DefaultUSB())
	if _, err := dev.LoadModel(cm); err == nil {
		t.Fatal("mismatched compile target accepted")
	}
}

func TestDeviceTimingPhases(t *testing.T) {
	dev, cm, _ := loadedDevice(t, 4, 32, 256, 4)
	timing, err := dev.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	cfg := dev.Config()
	if timing.Host != cfg.InvokeOverhead {
		t.Errorf("Host = %v, want %v", timing.Host, cfg.InvokeOverhead)
	}
	if timing.TransferIn < cfg.LinkLatency {
		t.Errorf("TransferIn %v below link latency", timing.TransferIn)
	}
	if timing.Compute <= 0 || timing.Cycles == 0 {
		t.Errorf("no compute accounted: %+v", timing)
	}
	if timing.WeightStream != 0 {
		t.Errorf("resident model streamed weights: %v", timing.WeightStream)
	}
	if cm.Resident && dev.SetupTime <= 0 {
		t.Error("resident model should pay setup time")
	}
	if timing.MACs == 0 {
		t.Error("MAC count missing")
	}
	if total := timing.Total(); total != timing.Host+timing.TransferIn+timing.Compute+timing.HostFallback+timing.TransferOut {
		t.Errorf("Total() inconsistent: %v", total)
	}
}

func TestDeviceStreamingModelPaysWeightTime(t *testing.T) {
	cfg := DefaultUSB()
	cfg.ParamMemBytes = 1 << 10
	m := buildFloatNet(2, 16, 256, 4, 3)
	qm := quantizeNet(t, m, 2, 16, 4)
	cm, err := Compile(qm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(cfg)
	if _, err := dev.LoadModel(cm); err != nil {
		t.Fatal(err)
	}
	timing, err := dev.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if timing.WeightStream <= 0 {
		t.Fatal("streaming model paid no weight-stream time")
	}
	wantMin := time.Duration(float64(cm.ParamBytes) / cfg.LinkBandwidth * float64(time.Second))
	if timing.WeightStream < wantMin {
		t.Fatalf("WeightStream %v below bandwidth bound %v", timing.WeightStream, wantMin)
	}
}

func TestDeviceCPUOnlyModelHasNoTransfers(t *testing.T) {
	m := buildFloatNet(1, 8, 32, 2, 5) // float: nothing delegates
	cm, err := Compile(m, DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(DefaultUSB())
	if _, err := dev.LoadModel(cm); err != nil {
		t.Fatal(err)
	}
	timing, err := dev.Invoke()
	if err != nil {
		t.Fatal(err)
	}
	if timing.TransferIn != 0 || timing.TransferOut != 0 || timing.Compute != 0 {
		t.Fatalf("CPU-only model charged accelerator time: %+v", timing)
	}
	if timing.HostFallback <= 0 {
		t.Fatal("CPU ops not priced")
	}
}

func TestDeviceEncodeSpeedupGrowsWithFeatures(t *testing.T) {
	// The architectural mechanism behind Fig 10: per-invoke fixed costs
	// amortize better as the feature count grows, so device time per
	// sample rises sublinearly in n while CPU time rises linearly.
	const batch, d, k = 32, 512, 4
	timeFor := func(n int) time.Duration {
		m := buildFloatNet(batch, n, d, k, uint64(n))
		qm := quantizeNet(t, m, batch, n, uint64(n)+1)
		cm, err := Compile(qm, DefaultUSB())
		if err != nil {
			t.Fatal(err)
		}
		dev := NewDevice(DefaultUSB())
		if _, err := dev.LoadModel(cm); err != nil {
			t.Fatal(err)
		}
		timing, err := dev.Invoke()
		if err != nil {
			t.Fatal(err)
		}
		return timing.Total()
	}
	t20 := timeFor(20)
	t700 := timeFor(700)
	ratio := float64(t700) / float64(t20)
	if ratio > 10 {
		t.Fatalf("device time grew %vx from n=20 to n=700; fixed costs not amortizing", ratio)
	}
	if t700 <= t20 {
		t.Fatalf("more features cannot be cheaper: %v vs %v", t700, t20)
	}
}

func TestTimingAdd(t *testing.T) {
	a := Timing{Host: 1, TransferIn: 2, Compute: 3, Cycles: 10, MACs: 100}
	b := Timing{Host: 10, TransferOut: 5, Cycles: 7, MACs: 1}
	a.Add(b)
	if a.Host != 11 || a.TransferOut != 5 || a.Cycles != 17 || a.MACs != 101 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestConfigTransferTime(t *testing.T) {
	cfg := DefaultUSB()
	if cfg.transferTime(0) != 0 {
		t.Error("zero-byte transfer should be free")
	}
	small := cfg.transferTime(1)
	big := cfg.transferTime(1 << 20)
	if small < cfg.LinkLatency {
		t.Error("transfer below latency floor")
	}
	if big <= small {
		t.Error("transfer time not increasing in bytes")
	}
}
