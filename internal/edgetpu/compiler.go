package edgetpu

import (
	"fmt"
	"strings"

	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// Placement says where a compiled operator executes.
type Placement uint8

const (
	// PlaceCPU runs the operator on the host with the reference kernels.
	PlaceCPU Placement = iota
	// PlaceTPU runs the operator on the accelerator.
	PlaceTPU
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	if p == PlaceTPU {
		return "TPU"
	}
	return "CPU"
}

// CompiledModel is the result of compiling a tflite model for a device
// configuration: an operator placement plan plus the transfer and memory
// analysis the runtime needs.
type CompiledModel struct {
	Model  *tflite.Model
	Config Config

	// Placements has one entry per model operator.
	Placements []Placement

	// SegmentStart and SegmentEnd delimit the delegated operator run
	// [start, end); start == end means nothing was delegated.
	SegmentStart, SegmentEnd int

	// ParamBytes is the total constant data referenced by delegated ops.
	ParamBytes int

	// Resident reports whether the delegated parameters fit in on-chip
	// memory and therefore upload once at LoadModel instead of streaming
	// on every invoke.
	Resident bool

	// TransferInBytes and TransferOutBytes are the activation bytes that
	// cross the host-device link per invocation.
	TransferInBytes, TransferOutBytes int

	// Warnings collects non-fatal compilation notes (e.g. nothing could
	// be delegated).
	Warnings []string
}

// Compile partitions m for the device described by cfg. Like the Edge TPU
// compiler, it delegates a single contiguous run of supported operators —
// the longest one — and leaves everything else on the CPU. Compilation
// never fails on an undelegatable model; it returns a CPU-only plan with a
// warning, because that is what the real toolchain does.
func Compile(m *tflite.Model, cfg Config) (*CompiledModel, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("edgetpu: %w", err)
	}
	if cfg.MXURows <= 0 || cfg.MXUCols <= 0 || cfg.ClockHz <= 0 {
		return nil, fmt.Errorf("edgetpu: invalid config %+v", cfg)
	}
	cm := &CompiledModel{
		Model:      m,
		Config:     cfg,
		Placements: make([]Placement, len(m.Operators)),
	}

	supported := make([]bool, len(m.Operators))
	for i, op := range m.Operators {
		supported[i] = opSupported(m, op)
	}

	// Longest contiguous supported run.
	bestStart, bestEnd := 0, 0
	i := 0
	for i < len(supported) {
		if !supported[i] {
			i++
			continue
		}
		j := i
		for j < len(supported) && supported[j] {
			j++
		}
		if j-i > bestEnd-bestStart {
			bestStart, bestEnd = i, j
		}
		i = j
	}
	cm.SegmentStart, cm.SegmentEnd = bestStart, bestEnd
	for i := bestStart; i < bestEnd; i++ {
		cm.Placements[i] = PlaceTPU
	}
	if bestEnd == bestStart {
		cm.Warnings = append(cm.Warnings,
			"model does not contain any operator mappable to the accelerator; "+
				"it will run entirely on the CPU (is the model quantized?)")
		return cm, nil
	}

	cm.ParamBytes = delegatedParamBytes(m, cm.Placements)
	cm.Resident = cm.ParamBytes <= cfg.ParamMemBytes
	if !cm.Resident {
		cm.Warnings = append(cm.Warnings, fmt.Sprintf(
			"delegated parameters (%d bytes) exceed on-chip memory (%d bytes); "+
				"parameters will stream on every invocation", cm.ParamBytes, cfg.ParamMemBytes))
	}
	cm.TransferInBytes, cm.TransferOutBytes = boundaryBytes(m, cm.Placements)
	if cfg.ActMemBytes > 0 {
		if ti, bytes := largestDelegatedActivation(m, cm.Placements); bytes > cfg.ActMemBytes {
			cm.Warnings = append(cm.Warnings, fmt.Sprintf(
				"activation tensor %q (%d bytes) exceeds on-chip activation memory (%d bytes); "+
					"reduce the batch size", m.Tensors[ti].Name, bytes, cfg.ActMemBytes))
		}
	}
	return cm, nil
}

// largestDelegatedActivation finds the biggest runtime tensor the
// delegated segment touches.
func largestDelegatedActivation(m *tflite.Model, place []Placement) (idx, bytes int) {
	idx = -1
	for oi, op := range m.Operators {
		if place[oi] != PlaceTPU {
			continue
		}
		for _, list := range [][]int{op.Inputs, op.Outputs} {
			for _, ti := range list {
				info := m.Tensors[ti]
				if info.Buffer != tflite.NoBuffer {
					continue
				}
				if b := info.Shape.Elems() * info.DType.Size(); b > bytes {
					idx, bytes = ti, b
				}
			}
		}
	}
	return idx, bytes
}

// opSupported implements the delegate's operator whitelist: full-integer
// FULLY_CONNECTED / TANH / CONCATENATION / RESHAPE map to the accelerator;
// anything touching float data, QUANTIZE/DEQUANTIZE boundaries, ARG_MAX
// and SOFTMAX stay on the CPU.
func opSupported(m *tflite.Model, op tflite.Operator) bool {
	allInt8 := func(idxs []int, allowI32Bias bool) bool {
		for pos, ti := range idxs {
			info := m.Tensors[ti]
			if info.DType == tensor.Int8 {
				continue
			}
			if allowI32Bias && pos == 2 && info.DType == tensor.Int32 {
				continue
			}
			return false
		}
		return true
	}
	switch op.Op {
	case tflite.OpFullyConnected:
		if !allInt8(op.Inputs, true) || !allInt8(op.Outputs, false) {
			return false
		}
		// Weights and bias must be compile-time constants with symmetric
		// weight quantization, matching the MXU's accumulate path.
		w := m.Tensors[op.Inputs[1]]
		bias := m.Tensors[op.Inputs[2]]
		if w.Buffer == tflite.NoBuffer || bias.Buffer == tflite.NoBuffer {
			return false
		}
		return w.Quant != nil && w.Quant.ZeroPoint == 0
	case tflite.OpTanh, tflite.OpLogistic, tflite.OpConcat, tflite.OpReshape:
		return allInt8(op.Inputs, false) && allInt8(op.Outputs, false)
	default:
		return false
	}
}

func delegatedParamBytes(m *tflite.Model, place []Placement) int {
	seen := map[int]bool{}
	total := 0
	for i, op := range m.Operators {
		if place[i] != PlaceTPU {
			continue
		}
		for _, ti := range op.Inputs {
			info := m.Tensors[ti]
			if info.Buffer == tflite.NoBuffer || seen[ti] {
				continue
			}
			seen[ti] = true
			total += len(m.Buffers[info.Buffer])
		}
	}
	return total
}

// boundaryBytes sums the activation bytes entering and leaving the
// delegated segment on each invocation.
func boundaryBytes(m *tflite.Model, place []Placement) (in, out int) {
	producer := make([]int, len(m.Tensors)) // op index, or -1 for inputs/consts
	for i := range producer {
		producer[i] = -1
	}
	for oi, op := range m.Operators {
		for _, t := range op.Outputs {
			producer[t] = oi
		}
	}
	consumedByCPU := make([]bool, len(m.Tensors))
	for oi, op := range m.Operators {
		if place[oi] == PlaceTPU {
			continue
		}
		for _, t := range op.Inputs {
			consumedByCPU[t] = true
		}
	}
	for _, t := range m.Outputs {
		consumedByCPU[t] = true
	}

	seenIn := map[int]bool{}
	for oi, op := range m.Operators {
		if place[oi] != PlaceTPU {
			continue
		}
		for _, t := range op.Inputs {
			info := m.Tensors[t]
			if info.Buffer != tflite.NoBuffer || seenIn[t] {
				continue // constants upload with the model, not per invoke
			}
			if producer[t] == -1 || place[producer[t]] == PlaceCPU {
				seenIn[t] = true
				in += info.Shape.Elems() * info.DType.Size()
			}
		}
	}
	seenOut := map[int]bool{}
	for oi, op := range m.Operators {
		if place[oi] != PlaceTPU {
			continue
		}
		for _, t := range op.Outputs {
			if consumedByCPU[t] && !seenOut[t] {
				seenOut[t] = true
				info := m.Tensors[t]
				out += info.Shape.Elems() * info.DType.Size()
			}
		}
	}
	return in, out
}

// BatchCapacity returns the number of sample rows one invocation of the
// compiled model processes — the leading dimension of the first input.
func (cm *CompiledModel) BatchCapacity() int { return cm.Model.BatchCapacity() }

// DelegatedOps returns how many operators run on the accelerator.
func (cm *CompiledModel) DelegatedOps() int {
	n := 0
	for _, p := range cm.Placements {
		if p == PlaceTPU {
			n++
		}
	}
	return n
}

// Report renders a human-readable compilation summary in the spirit of
// the edgetpu_compiler log.
func (cm *CompiledModel) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Model %q compiled for %s\n", cm.Model.Name, cm.Config.Name)
	fmt.Fprintf(&sb, "Operators delegated: %d/%d\n", cm.DelegatedOps(), len(cm.Placements))
	for i, op := range cm.Model.Operators {
		fmt.Fprintf(&sb, "  %-16v %s\n", op.Op, cm.Placements[i])
	}
	fmt.Fprintf(&sb, "Parameter data: %d bytes (resident: %v)\n", cm.ParamBytes, cm.Resident)
	fmt.Fprintf(&sb, "Per-invoke transfers: %d bytes in, %d bytes out\n",
		cm.TransferInBytes, cm.TransferOutBytes)
	for _, w := range cm.Warnings {
		fmt.Fprintf(&sb, "WARNING: %s\n", w)
	}
	return sb.String()
}
