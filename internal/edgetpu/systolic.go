package edgetpu

import (
	"fmt"
	"sync"

	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// accPool recycles the accumulator scratch across RunFullyConnected calls
// (and across concurrent devices): the serving hot path invokes the array
// per batch, and per-invoke allocation of batch×units int32s was the
// dominant steady-state garbage.
var accPool = sync.Pool{New: func() any { return new([]int32) }}

// Array is the weight-stationary systolic matrix unit. A weight tile of
// Rows×Cols int8 values is shifted into the array, then activation rows
// stream through; each cycle every resident PE performs one int8·int8→int32
// multiply-accumulate.
type Array struct {
	Rows, Cols int
}

// FCStats reports the work one FULLY_CONNECTED invocation performed.
type FCStats struct {
	Cycles uint64
	MACs   uint64
	TilesK int // tiles along the contraction (depth) axis
	TilesU int // tiles along the output-unit axis
}

// fcCycles models the dataflow cost of one FULLY_CONNECTED execution.
// For each of TilesK×TilesU weight tiles the array pays:
//
//	Rows cycles        shifting the weight tile in (column-parallel),
//	batch cycles       streaming the activation rows through, and
//	Rows+Cols cycles   pipeline fill/drain skew.
//
// Partial sums across depth tiles accumulate in the on-chip accumulators,
// so no extra cycles are charged for reduction.
func (a Array) fcCycles(batch, depth, units int) FCStats {
	tilesK := (depth + a.Rows - 1) / a.Rows
	tilesU := (units + a.Cols - 1) / a.Cols
	perTile := uint64(a.Rows + batch + a.Rows + a.Cols)
	return FCStats{
		Cycles: uint64(tilesK) * uint64(tilesU) * perTile,
		MACs:   uint64(batch) * uint64(depth) * uint64(units),
		TilesK: tilesK,
		TilesU: tilesU,
	}
}

// lutCycles models an element-wise lookup pass (TANH): the activation
// pipeline processes Cols elements per cycle.
func (a Array) lutCycles(elems int) uint64 {
	return uint64((elems + a.Cols - 1) / a.Cols)
}

// RunFullyConnected executes the quantized FC functionally in tiled
// systolic order and returns its stats. The arithmetic is bit-exact with
// the tflite reference kernel: int32 accumulation of
// (in-zpIn)·w plus the int32 bias, then fixed-point requantization.
func (a Array) RunFullyConnected(in, w, bias, out *tensor.Tensor) (FCStats, error) {
	if in.DType != tensor.Int8 || w.DType != tensor.Int8 || bias.DType != tensor.Int32 || out.DType != tensor.Int8 {
		return FCStats{}, fmt.Errorf("edgetpu: FC requires int8 tensors with int32 bias, got %v/%v/%v/%v",
			in.DType, w.DType, bias.DType, out.DType)
	}
	if in.Quant == nil || w.Quant == nil || out.Quant == nil {
		return FCStats{}, fmt.Errorf("edgetpu: FC tensors missing quantization")
	}
	if w.Quant.ZeroPoint != 0 {
		return FCStats{}, fmt.Errorf("edgetpu: MXU requires symmetric weights")
	}
	batch, depth := in.Shape[0], in.Shape[1]
	units := w.Shape[0]
	if w.Shape[1] != depth {
		return FCStats{}, fmt.Errorf("edgetpu: FC depth mismatch: input %v, weights %v", in.Shape, w.Shape)
	}

	qm, err := tflite.QuantizeMultiplier(in.Quant.Scale * w.Quant.Scale / out.Quant.Scale)
	if err != nil {
		return FCStats{}, err
	}
	zpIn := in.Quant.ZeroPoint
	zpOut := out.Quant.ZeroPoint

	// On-chip accumulators, initialized with the bias (TFLite folds the
	// bias into the accumulator before the MAC stream). The backing slice
	// is pooled across invokes — every entry is overwritten by the bias
	// copy below, so reuse cannot leak state between invocations.
	accp := accPool.Get().(*[]int32)
	defer accPool.Put(accp)
	if cap(*accp) < batch*units {
		*accp = make([]int32, batch*units)
	}
	acc := (*accp)[:batch*units]
	for b := 0; b < batch; b++ {
		copy(acc[b*units:(b+1)*units], bias.I32)
	}

	// Walk weight tiles exactly as the hardware schedules them: for each
	// (depth tile, unit tile), stream all activation rows through the
	// resident tile and accumulate partial sums. Unit tiles touch
	// disjoint accumulator columns, so the simulation parallelizes over
	// them without changing the (exact integer) results.
	unitTiles := (units + a.Cols - 1) / a.Cols
	tensor.ParallelFor(unitTiles, 1, func(t0, t1 int) {
		for k0 := 0; k0 < depth; k0 += a.Rows {
			k1 := min(k0+a.Rows, depth)
			for tu := t0; tu < t1; tu++ {
				u0 := tu * a.Cols
				u1 := min(u0+a.Cols, units)
				for b := 0; b < batch; b++ {
					inRow := in.I8[b*depth : (b+1)*depth]
					accRow := acc[b*units : (b+1)*units]
					for u := u0; u < u1; u++ {
						wRow := w.I8[u*depth : (u+1)*depth]
						var sum int32
						for k := k0; k < k1; k++ {
							sum += (int32(inRow[k]) - zpIn) * int32(wRow[k])
						}
						accRow[u] += sum
					}
				}
			}
		}
	})

	// Requantize through the activation pipeline.
	tensor.ParallelFor(len(acc), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := zpOut + qm.Apply(acc[i])
			if r > 127 {
				r = 127
			}
			if r < -128 {
				r = -128
			}
			out.I8[i] = int8(r)
		}
	})
	return a.fcCycles(batch, depth, units), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
