package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// RunOneJSON executes the named experiment and returns its structured
// rows (the same values the renderers print), for machine consumption.
func RunOneJSON(name string, cfg Config) (any, error) {
	switch name {
	case "table1":
		return TableI()
	case "fig4":
		return Fig4(cfg)
	case "fig5":
		return Fig5(cfg, nil)
	case "fig6":
		return Fig6(cfg)
	case "fig7":
		return Fig7(cfg)
	case "table2":
		return TableII(cfg)
	case "fig8":
		return Fig8(cfg)
	case "fig9":
		return Fig9(cfg)
	case "fig10":
		return Fig10(cfg)
	case "table-energy":
		return TableEnergy(cfg)
	case "table-variance":
		return TableVariance(cfg)
	case "ablation-encoding":
		return AblationEncoding(cfg)
	case "ablation-fused":
		return AblationFusedVsSerial(cfg)
	case "ablation-subwidth":
		return AblationSubWidth(cfg)
	case "ablation-batch":
		return AblationBatch(cfg)
	case "ablation-robustness":
		return AblationRobustness(cfg)
	case "ablation-online":
		return AblationOnline(cfg)
	case "ablation-binary":
		return AblationBinary(cfg)
	case "ablation-encoder-compare":
		return AblationEncoderCompare(cfg)
	case "ablation-link":
		return AblationLink(cfg)
	case "ablation-dim":
		return AblationDim(cfg)
	case "ablation-overlap":
		return AblationOverlap(cfg)
	case "ablation-scaleout":
		return AblationScaleOut(cfg)
	case "ablation-faults":
		return AblationFaults(cfg)
	case "ablation-overload":
		return AblationOverload(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, AllExperiments)
	}
}

// WriteJSON runs the experiment and writes an indented JSON document
// {"experiment": name, "rows": ...} to w.
func WriteJSON(name string, cfg Config, w io.Writer) error {
	rows, err := RunOneJSON(name, cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"experiment": name,
		"rows":       rows,
	})
}
