package experiments

import (
	"fmt"
	"io"
	"time"

	"hdcedge/internal/bagging"
	"hdcedge/internal/dataset"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
)

// Fig5Row is one dataset's training-runtime comparison across the three
// framework settings, modeled at the paper's full dataset scale.
type Fig5Row struct {
	Dataset string
	CPU     pipeline.TrainingBreakdown
	TPU     pipeline.TrainingBreakdown
	TPUB    pipeline.TrainingBreakdown
}

// TotalSpeedupTPU returns CPU total / TPU total.
func (r Fig5Row) TotalSpeedupTPU() float64 {
	return metrics.Speedup(r.CPU.Total(), r.TPU.Total())
}

// TotalSpeedupTPUB returns CPU total / TPU_B total.
func (r Fig5Row) TotalSpeedupTPUB() float64 {
	return metrics.Speedup(r.CPU.Total(), r.TPUB.Total())
}

// EncodeSpeedup returns the encoding-phase speedup of the accelerator.
func (r Fig5Row) EncodeSpeedup() float64 {
	return metrics.Speedup(r.CPU.Encode, r.TPU.Encode)
}

// UpdateSpeedup returns the update-phase speedup of bagging over the
// baseline.
func (r Fig5Row) UpdateSpeedup() float64 {
	return metrics.Speedup(r.CPU.Update, r.TPUB.Update)
}

// Fig5 models the training runtime of all three settings per dataset.
// updateFracs optionally supplies measured per-epoch misclassification
// fractions per dataset (from Fig4); nil uses the calibrated default decay.
func Fig5(cfg Config, updateFracs map[string][]float64) ([]Fig5Row, error) {
	cpu := pipeline.CPUBaseline()
	tpu := pipeline.EdgeTPU()
	bcfg := bagging.DefaultConfig()
	var rows []Fig5Row
	for _, name := range DatasetNames() {
		spec, err := dataset.CatalogSpec(name)
		if err != nil {
			return nil, err
		}
		w := pipeline.FromSpec(spec, cfg.Epochs)
		if fracs, ok := updateFracs[name]; ok {
			w.UpdateFracs = fracs
			w.Epochs = len(fracs)
		}
		cb, err := pipeline.CPUTraining(cpu.Host, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5 %s: %w", name, err)
		}
		tb, err := pipeline.TPUTraining(tpu, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5 %s: %w", name, err)
		}
		bb, err := pipeline.BaggingTraining(tpu, w, bcfg, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5 %s: %w", name, err)
		}
		rows = append(rows, Fig5Row{Dataset: name, CPU: cb, TPU: tb, TPUB: bb})
	}
	return rows, nil
}

// RenderFig5 prints per-dataset phase breakdowns normalized to the CPU
// baseline, matching the figure's stacked bars.
func RenderFig5(w io.Writer, rows []Fig5Row) {
	t := &metrics.Table{
		Title: "Fig 5: Training runtime (normalized to CPU baseline per dataset)",
		Headers: []string{"Dataset", "Setting", "Encode", "Update", "ModelGen", "Total",
			"Speedup", "AbsTotal"},
	}
	for _, r := range rows {
		base := r.CPU.Total()
		add := func(setting string, b pipeline.TrainingBreakdown) {
			n := metrics.Normalize(base, b.Encode, b.Update, b.ModelGen, b.Total())
			t.AddRow(r.Dataset, setting,
				fmt.Sprintf("%.3f", n[0]), fmt.Sprintf("%.3f", n[1]),
				fmt.Sprintf("%.3f", n[2]), fmt.Sprintf("%.3f", n[3]),
				metrics.FmtX(metrics.Speedup(base, b.Total())),
				metrics.FmtDur(b.Total()))
		}
		add("CPU", r.CPU)
		add("TPU", r.TPU)
		add("TPU_B", r.TPUB)
	}
	fprintf(w, "%s\n", t)
}

// fig5Durations exists for benchmarks that need raw totals.
func fig5Durations(rows []Fig5Row) []time.Duration {
	out := make([]time.Duration, 0, len(rows)*3)
	for _, r := range rows {
		out = append(out, r.CPU.Total(), r.TPU.Total(), r.TPUB.Total())
	}
	return out
}
