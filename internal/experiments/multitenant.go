package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/registry"
	"hdcedge/internal/rng"
	"hdcedge/internal/serve"
)

// The multi-tenant ablation measures the two co-design claims of the
// tenancy layer against their degenerate baselines:
//
// Part A (isolation): a high-priority "prod" tenant offered 1.5x the
// fleet's capacity is flooded by a "batch" tenant at 4x prod's rate. With
// strict priority + per-tenant quotas, batch work only runs in prod's idle
// gaps and a prod arrival waits at most one residual batch service — its
// p99 (dominated by its own quota-bounded queueing) must degrade by no
// more than 20% versus running alone. The fair-share cell (same flood, no
// priority edge) shows what the isolation buys: WFQ grants each tenant
// half the capacity, so prod — which demands 150% of it — loses roughly
// half its completions to the flood.
//
// Part B (parameter memory): six equal-footprint models share a device
// whose budget holds three — a working set 2x the on-chip memory — under a
// rotating hot set (90% of traffic concentrates on three models, and the
// hot trio shifts twice mid-run). A closed-loop client drives the same
// seeded request stream against LRU eviction and against the pin-first
// baseline (whatever fit first stays resident forever). Misses pay the
// model's deterministic re-setup, billed into the invoke and paced into
// wall-clock, so goodput is the figure of merit: LRU must deliver at least
// 1.3x the pin-first goodput.

// TenantPoint is one isolation cell.
type TenantPoint struct {
	Cell string // "alone", "priority+quota", "fair-share"

	ProdOffered    int
	ProdCompleted  int
	ProdShed       int
	ProdP50        time.Duration
	ProdP99        time.Duration
	BatchCompleted int
	BatchShed      int
}

// MemPoint is one eviction-policy cell.
type MemPoint struct {
	Policy    string // "lru", "pin-first"
	Requests  int
	Completed int
	Hits      int
	Misses    int
	Evictions int
	SwapTime  time.Duration // total re-setup billed
	Elapsed   time.Duration
	Goodput   float64 // completions per wall-clock second
}

// MultiTenantResult is the full ablation.
type MultiTenantResult struct {
	Isolation []TenantPoint
	Memory    []MemPoint

	// P99Degradation is the flooded-cell prod p99 over the alone-cell prod
	// p99 (1.0 = no degradation). The acceptance bar is <= 1.2.
	P99Degradation float64

	// GoodputRatio is LRU goodput over pin-first goodput on the same
	// request stream. The acceptance bar is >= 1.3.
	GoodputRatio float64
}

// Isolation-cell load shape: two paced workers; prod offers 1.5x the
// fleet's capacity (so its own quota-bounded queueing dominates its p99),
// and the flood offers 4x prod's rate on top.
const (
	mtService   = 4 * time.Millisecond
	mtWorkers   = 2
	mtProdLoad  = 1.5
	mtFloodMult = 4
	mtProdReqs  = 240
)

// AblationMultiTenant runs both parts of the tenancy ablation.
func AblationMultiTenant(cfg Config) (*MultiTenantResult, error) {
	p, cm, ds, err := overloadModel(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: multitenant model: %w", err)
	}
	res := &MultiTenantResult{}

	prod := serve.TenantSpec{Name: "prod", Weight: 4, Priority: 1, Quota: 16}
	batch := serve.TenantSpec{Name: "batch", Weight: 1, Priority: 0, Quota: 16}
	fairProd, fairBatch := prod, batch
	fairProd.Priority, fairProd.Weight = 0, 1
	cells := []struct {
		name    string
		tenants []serve.TenantSpec
		flood   bool
	}{
		{"alone", []serve.TenantSpec{prod, batch}, false},
		{"priority+quota", []serve.TenantSpec{prod, batch}, true},
		{"fair-share", []serve.TenantSpec{fairProd, fairBatch}, true},
	}
	for _, cell := range cells {
		pt, err := isolationCell(p, cm, ds, cfg, cell.name, cell.tenants, cell.flood)
		if err != nil {
			return nil, fmt.Errorf("experiments: multitenant cell %q: %w", cell.name, err)
		}
		res.Isolation = append(res.Isolation, pt)
	}
	alone, guarded := res.Isolation[0], res.Isolation[1]
	if alone.ProdP99 > 0 {
		res.P99Degradation = float64(guarded.ProdP99) / float64(alone.ProdP99)
	}

	reg, err := multitenantRegistry(p, ds, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: multitenant registry: %w", err)
	}
	for _, policy := range []registry.EvictPolicy{registry.EvictLRU, registry.PinFirst} {
		pt, err := memoryCell(p, reg, ds, cfg, policy)
		if err != nil {
			return nil, fmt.Errorf("experiments: multitenant memory %s: %w", policy, err)
		}
		res.Memory = append(res.Memory, pt)
	}
	if res.Memory[1].Goodput > 0 {
		res.GoodputRatio = res.Memory[0].Goodput / res.Memory[1].Goodput
	}
	return res, nil
}

// isolationCell drives the prod stream (and optionally the batch flood)
// against one tenant configuration and reads back prod's experience.
func isolationCell(p pipeline.Platform, cm *edgetpu.CompiledModel, ds *dataset.Dataset,
	cfg Config, name string, tenants []serve.TenantSpec, flood bool) (TenantPoint, error) {
	policy := pipeline.DefaultRecoveryPolicy()
	policy.Seed = cfg.Seed + 1
	s, err := serve.New(p, cm, serve.Config{
		Devices:       mtWorkers,
		Policy:        policy,
		PacePerInvoke: mtService,
		DrainDeadline: 10 * time.Second,
		Tenants:       tenants,
	})
	if err != nil {
		return TenantPoint{}, err
	}
	offer := func(tenant string, n int, interarrival time.Duration, wg *sync.WaitGroup) {
		defer wg.Done()
		start := time.Now()
		var inner sync.WaitGroup
		for i := 0; i < n; i++ {
			if d := time.Until(start.Add(time.Duration(i) * interarrival)); d > 0 {
				time.Sleep(d)
			}
			inner.Add(1)
			go func(i int) {
				defer inner.Done()
				// Quota sheds are the mechanism under test, not a failure.
				s.Submit(context.Background(), serve.Request{Tenant: tenant, Fill: overloadFill(ds, i)})
			}(i)
		}
		inner.Wait()
	}
	perWorker := float64(mtService) / mtWorkers
	prodGap := time.Duration(perWorker / mtProdLoad)
	var wg sync.WaitGroup
	wg.Add(1)
	go offer("prod", mtProdReqs, prodGap, &wg)
	if flood {
		wg.Add(1)
		go offer("batch", mtProdReqs*mtFloodMult, prodGap/mtFloodMult, &wg)
	}
	wg.Wait()
	if err := s.Drain(context.Background()); err != nil {
		return TenantPoint{}, err
	}
	rep := s.Report()
	if rep.Failed > 0 {
		return TenantPoint{}, fmt.Errorf("%d requests failed outright", rep.Failed)
	}
	pr, _ := rep.Tenant("prod")
	ba, _ := rep.Tenant("batch")
	return TenantPoint{
		Cell:           name,
		ProdOffered:    pr.Admitted + pr.Shed,
		ProdCompleted:  pr.Completed,
		ProdShed:       pr.Shed,
		ProdP50:        pr.Latency.Quantile(0.5),
		ProdP99:        pr.Latency.Quantile(0.99),
		BatchCompleted: ba.Completed,
		BatchShed:      ba.Shed,
	}, nil
}

// Memory-cell shape: six models, a budget that holds three, a rotating
// three-model hot set taking 90% of a closed-loop single-client stream.
const (
	mtModels   = 6
	mtMemReqs  = 600
	mtHotShare = 0.9
)

// multitenantRegistry trains and registers the six equal-footprint models.
func multitenantRegistry(p pipeline.Platform, ds *dataset.Dataset, cfg Config) (*registry.Registry, error) {
	reg := registry.New()
	for i := 0; i < mtModels; i++ {
		model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
			Dim: cfg.FunctionalDim, Epochs: cfg.Epochs, LearningRate: 1,
			Nonlinear: true, Seed: cfg.Seed + uint64(i),
		})
		if err != nil {
			return nil, err
		}
		cm, err := pipeline.CompileInference(p, model, ds, 1)
		if err != nil {
			return nil, err
		}
		if _, err := reg.Register(fmt.Sprintf("m%d", i), cm, nil); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// mtModelStream returns the seeded request-to-model schedule: three phases,
// each concentrating mtHotShare of traffic on its own three-model hot set.
func mtModelStream(seed uint64) []string {
	hotSets := [][]int{{0, 1, 2}, {2, 3, 4}, {4, 5, 0}}
	r := rng.New(seed)
	models := make([]string, mtMemReqs)
	phaseLen := mtMemReqs / len(hotSets)
	for i := range models {
		phase := i / phaseLen
		if phase >= len(hotSets) {
			phase = len(hotSets) - 1
		}
		var m int
		if r.Float64() < mtHotShare {
			hot := hotSets[phase]
			m = hot[r.Intn(len(hot))]
		} else {
			m = r.Intn(mtModels)
		}
		models[i] = fmt.Sprintf("m%d", m)
	}
	return models
}

// memoryCell replays the seeded stream closed-loop (one client, one device)
// under one eviction policy. Pacing scales with each invoke's simulated
// total — which includes the re-setup billed on a miss — so residency
// behavior is what separates the cells' wall-clock goodput.
func memoryCell(p pipeline.Platform, reg *registry.Registry, ds *dataset.Dataset,
	cfg Config, policy registry.EvictPolicy) (MemPoint, error) {
	e0, _ := reg.Get("m0")
	rpolicy := pipeline.DefaultRecoveryPolicy()
	rpolicy.Seed = cfg.Seed + 1
	s, err := serve.New(p, nil, serve.Config{
		Devices:       1,
		Policy:        rpolicy,
		Registry:      reg,
		MemBudget:     3*e0.Footprint + e0.Footprint/5,
		MemPolicy:     policy,
		PacePerInvoke: 100 * time.Microsecond,
		PaceScale:     1,
		DrainDeadline: 30 * time.Second,
	})
	if err != nil {
		return MemPoint{}, err
	}
	stream := mtModelStream(cfg.Seed + 99)
	start := time.Now()
	for i, model := range stream {
		if _, err := s.Submit(context.Background(), serve.Request{Model: model, Fill: overloadFill(ds, i)}); err != nil {
			return MemPoint{}, err
		}
	}
	elapsed := time.Since(start)
	if err := s.Drain(context.Background()); err != nil {
		return MemPoint{}, err
	}
	rep := s.Report()
	pt := MemPoint{
		Policy:    policy.String(),
		Requests:  len(stream),
		Completed: rep.Completed,
		Elapsed:   elapsed,
		Goodput:   float64(rep.Completed) / elapsed.Seconds(),
	}
	for _, ms := range rep.Memory {
		pt.Hits += ms.Hits
		pt.Misses += ms.Misses
		pt.Evictions += ms.Evictions
		pt.SwapTime += ms.SwapTime
	}
	return pt, nil
}

// RenderAblationMultiTenant prints both parts.
func RenderAblationMultiTenant(w io.Writer, res *MultiTenantResult) {
	iso := &metrics.Table{
		Title: fmt.Sprintf(
			"Tenant isolation: prod at %.1fx capacity, batch flood at %dx prod rate (%d workers, service %v)",
			mtProdLoad, mtFloodMult, mtWorkers, mtService),
		Headers: []string{"Cell", "ProdOffered", "ProdDone", "ProdShed", "Prod p50", "Prod p99", "BatchDone", "BatchShed"},
	}
	for _, pt := range res.Isolation {
		iso.AddRow(
			pt.Cell,
			fmt.Sprintf("%d", pt.ProdOffered),
			fmt.Sprintf("%d", pt.ProdCompleted),
			fmt.Sprintf("%d", pt.ProdShed),
			metrics.FmtDur(pt.ProdP50),
			metrics.FmtDur(pt.ProdP99),
			fmt.Sprintf("%d", pt.BatchCompleted),
			fmt.Sprintf("%d", pt.BatchShed),
		)
	}
	fprintf(w, "%s\n", iso)
	fprintf(w, "prod p99 under flood: %.2fx alone (bar <= 1.20x)\n\n", res.P99Degradation)

	mem := &metrics.Table{
		Title: fmt.Sprintf(
			"Parameter-memory eviction: %d models, budget holds 3, rotating 3-model hot set (%.0f%% of %d closed-loop requests)",
			mtModels, mtHotShare*100, mtMemReqs),
		Headers: []string{"Policy", "Requests", "Completed", "Hits", "Misses", "Evictions", "Swap", "Elapsed", "Goodput"},
	}
	for _, pt := range res.Memory {
		mem.AddRow(
			pt.Policy,
			fmt.Sprintf("%d", pt.Requests),
			fmt.Sprintf("%d", pt.Completed),
			fmt.Sprintf("%d", pt.Hits),
			fmt.Sprintf("%d", pt.Misses),
			fmt.Sprintf("%d", pt.Evictions),
			metrics.FmtDur(pt.SwapTime),
			metrics.FmtDur(pt.Elapsed),
			fmt.Sprintf("%.0f/s", pt.Goodput),
		)
	}
	fprintf(w, "%s\n", mem)
	fprintf(w, "lru goodput: %.2fx pin-first (bar >= 1.30x)\n", res.GoodputRatio)
}
