package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationEncodingNonlinearWins(t *testing.T) {
	skipLongUnderRace(t)
	rows, err := AblationEncoding(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	wins := 0
	for _, r := range rows {
		if r.Nonlinear >= r.Linear-0.01 {
			wins++
		}
	}
	if wins < 4 {
		t.Fatalf("nonlinear encoding won on only %d/5 datasets", wins)
	}
	var buf bytes.Buffer
	RenderAblationEncoding(&buf, rows)
	if !strings.Contains(buf.String(), "tanh") {
		t.Fatal("render missing columns")
	}
}

func TestAblationFusedBeatsSerial(t *testing.T) {
	cfg := fastCfg()
	cfg.Epochs = 20
	rows, err := AblationFusedVsSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Serial <= r.Fused {
			t.Errorf("%s: serial (%v) not slower than fused (%v)", r.Dataset, r.Serial, r.Fused)
		}
		if r.Overhead < 1.3 {
			t.Errorf("%s: serial overhead %.2fx too small to motivate fusion", r.Dataset, r.Overhead)
		}
	}
	var buf bytes.Buffer
	RenderAblationFusedVsSerial(&buf, rows)
	if !strings.Contains(buf.String(), "Serial/Fused") {
		t.Fatal("render missing overhead column")
	}
}

func TestAblationSubWidthTradeoff(t *testing.T) {
	skipLongUnderRace(t)
	rows, err := AblationSubWidth(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	divided, full := rows[0], rows[1]
	if full.UpdateTime <= divided.UpdateTime {
		t.Fatalf("full-width update (%v) not more expensive than d/M (%v)", full.UpdateTime, divided.UpdateTime)
	}
	if divided.Accuracy < full.Accuracy-0.06 {
		t.Fatalf("d/M accuracy %.3f collapsed vs full-width %.3f", divided.Accuracy, full.Accuracy)
	}
	var buf bytes.Buffer
	RenderAblationSubWidth(&buf, rows)
	if !strings.Contains(buf.String(), "d/M") {
		t.Fatal("render missing policy")
	}
}

func TestAblationBatchAmortizes(t *testing.T) {
	cfg := fastCfg()
	cfg.Epochs = 20
	points, err := AblationBatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].PerSample >= points[i-1].PerSample {
			t.Errorf("per-sample cost not falling at batch %d", points[i].Batch)
		}
	}
	if points[0].Batch != 1 || points[0].RelativeTo32 < 4 {
		t.Errorf("batch-1 penalty %.2f too small; fixed costs must dominate", points[0].RelativeTo32)
	}
	var buf bytes.Buffer
	RenderAblationBatch(&buf, points)
	if !strings.Contains(buf.String(), "Per-sample") {
		t.Fatal("render missing column")
	}
}

func TestAblationDimTradeoff(t *testing.T) {
	skipLongUnderRace(t)
	points, err := AblationDim(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("%d points", len(points))
	}
	// Runtime must grow with d; accuracy must broadly improve from the
	// smallest width to the larger ones.
	for i := 1; i < len(points); i++ {
		if points[i].TrainTime <= points[i-1].TrainTime {
			t.Errorf("training time not increasing at d=%d", points[i].Dim)
		}
	}
	if points[len(points)-1].Accuracy < points[0].Accuracy {
		t.Errorf("largest width (%.3f) worse than smallest (%.3f)",
			points[len(points)-1].Accuracy, points[0].Accuracy)
	}
	var buf bytes.Buffer
	RenderAblationDim(&buf, points)
	if !strings.Contains(buf.String(), "4096") {
		t.Fatal("render missing sweep")
	}
}

func TestAblationOverlapGains(t *testing.T) {
	cfg := fastCfg()
	cfg.Epochs = 20
	rows, err := AblationOverlap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Pipelined > r.Sequential {
			t.Errorf("%s: pipelining slowed encoding (%v vs %v)", r.Dataset, r.Pipelined, r.Sequential)
		}
		if r.Gain > 2.05 {
			t.Errorf("%s: double buffering gained %.2fx; it can at most double throughput", r.Dataset, r.Gain)
		}
	}
	var buf bytes.Buffer
	RenderAblationOverlap(&buf, rows)
	if !strings.Contains(buf.String(), "Pipelined") {
		t.Fatal("render missing column")
	}
}

func TestAblationScaleOutSaturation(t *testing.T) {
	cfg := fastCfg()
	cfg.Epochs = 20
	points, err := AblationScaleOut(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("%d points", len(points))
	}
	byLink := map[string][]ScaleOutPoint{}
	for _, p := range points {
		byLink[p.Link] = append(byLink[p.Link], p)
	}
	usb := byLink["edgetpu-usb"]
	pcie := byLink["edgetpu-pcie"]
	// USB: link-bound — extra devices must not help at all.
	if usb[3].Speedup > 1.05 {
		t.Errorf("USB scale-out gained %.2fx; the shared link should cap it", usb[3].Speedup)
	}
	// PCIe: must gain from a second device, then saturate.
	if pcie[1].Speedup <= 1.05 {
		t.Errorf("PCIe gained nothing from a second device: %.2fx", pcie[1].Speedup)
	}
	if pcie[3].Speedup > pcie[1].Speedup*1.6 {
		t.Errorf("PCIe kept scaling to 8 devices (%.2fx); link should saturate it", pcie[3].Speedup)
	}
}
