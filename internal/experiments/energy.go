package experiments

import (
	"fmt"
	"io"

	"hdcedge/internal/bagging"
	"hdcedge/internal/dataset"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
)

// EnergyRow compares modeled energy per dataset across the three
// platforms. The paper picks the Raspberry Pi 3 as the comparison point
// *because* it draws similar power to the Edge TPU platform — this table
// quantifies that claim and derives energy-efficiency factors.
type EnergyRow struct {
	Dataset string
	// Training energy in joules.
	TrainCPU, TrainTPUB, TrainPi float64
	// Inference energy in joules (full test split).
	InfCPU, InfTPU, InfPi float64
}

// TrainEnergyGainVsPi returns how many times less energy the proposed
// platform uses than the Pi for training.
func (r EnergyRow) TrainEnergyGainVsPi() float64 {
	if r.TrainTPUB == 0 {
		return 0
	}
	return r.TrainPi / r.TrainTPUB
}

// InfEnergyGainVsPi returns the inference energy factor vs the Pi.
func (r EnergyRow) InfEnergyGainVsPi() float64 {
	if r.InfTPU == 0 {
		return 0
	}
	return r.InfPi / r.InfTPU
}

// TableEnergy models training and inference energy for every dataset.
func TableEnergy(cfg Config) ([]EnergyRow, error) {
	cpu := pipeline.CPUBaseline()
	tpu := pipeline.EdgeTPU()
	pi := pipeline.RaspberryPi()
	bcfg := bagging.DefaultConfig()
	var rows []EnergyRow
	for _, name := range DatasetNames() {
		spec, err := dataset.CatalogSpec(name)
		if err != nil {
			return nil, err
		}
		w := pipeline.FromSpec(spec, cfg.Epochs)
		row := EnergyRow{Dataset: name}

		e, err := pipeline.CPUTrainingEnergy(cpu, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: energy %s: %w", name, err)
		}
		row.TrainCPU = e.Total()
		e, err = pipeline.BaggingTrainingEnergy(tpu, w, bcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: energy %s: %w", name, err)
		}
		row.TrainTPUB = e.Total()
		e, err = pipeline.CPUTrainingEnergy(pi, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: energy %s: %w", name, err)
		}
		row.TrainPi = e.Total()

		e, err = pipeline.CPUInferenceEnergy(cpu, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: energy %s: %w", name, err)
		}
		row.InfCPU = e.Total()
		e, err = pipeline.TPUInferenceEnergy(tpu, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: energy %s: %w", name, err)
		}
		row.InfTPU = e.Total()
		e, err = pipeline.CPUInferenceEnergy(pi, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: energy %s: %w", name, err)
		}
		row.InfPi = e.Total()
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTableEnergy prints the energy comparison.
func RenderTableEnergy(w io.Writer, rows []EnergyRow) {
	t := &metrics.Table{
		Title: "Energy (modeled, joules): laptop CPU vs Edge TPU platform vs Raspberry Pi 3",
		Headers: []string{"Dataset", "Train CPU", "Train TPU_B", "Train Pi", "Inf CPU", "Inf TPU", "Inf Pi",
			"Train vs Pi", "Inf vs Pi"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset,
			fmt.Sprintf("%.1f", r.TrainCPU), fmt.Sprintf("%.1f", r.TrainTPUB), fmt.Sprintf("%.1f", r.TrainPi),
			fmt.Sprintf("%.2f", r.InfCPU), fmt.Sprintf("%.2f", r.InfTPU), fmt.Sprintf("%.2f", r.InfPi),
			metrics.FmtX(r.TrainEnergyGainVsPi()), metrics.FmtX(r.InfEnergyGainVsPi()))
	}
	fprintf(w, "%s\n", t)
}
