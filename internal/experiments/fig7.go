package experiments

import (
	"fmt"
	"io"

	"hdcedge/internal/bagging"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
)

// Fig7Row is one dataset's inference accuracy under the three settings:
// the CPU float baseline, the quantized full model on the accelerator, and
// the quantized fused bagging model on the accelerator.
type Fig7Row struct {
	Dataset string
	CPU     float64
	TPU     float64
	TPUB    float64
}

// Fig7 runs the three settings functionally on every catalog dataset.
func Fig7(cfg Config) ([]Fig7Row, error) {
	plat := pipeline.EdgeTPU()
	var rows []Fig7Row
	for _, name := range DatasetNames() {
		train, test, err := loadSplit(name, cfg)
		if err != nil {
			return nil, err
		}

		// CPU baseline: fully-trained float model.
		full, _, err := hdc.Train(train, nil, hdc.TrainConfig{
			Dim: cfg.FunctionalDim, Epochs: cfg.Epochs, LearningRate: 1,
			Nonlinear: true, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 %s: %w", name, err)
		}
		row := Fig7Row{Dataset: name, CPU: full.Accuracy(test)}

		// TPU: the same model quantized and classified on the device.
		preds, _, err := pipeline.InferOnDevice(plat, full, test, train, pipeline.DefaultInferBatch)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 %s tpu: %w", name, err)
		}
		row.TPU = metrics.Accuracy(preds, test.Y)

		// TPU_B: bagging-trained, fused, quantized, classified on device.
		bcfg := bagging.DefaultConfig()
		bcfg.Dim = cfg.FunctionalDim
		bcfg.Seed = cfg.Seed
		ens, _, err := bagging.Train(train, bcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 %s bagging: %w", name, err)
		}
		fused := ens.Fuse()
		predsB, _, err := pipeline.InferOnDevice(plat, fused, test, train, pipeline.DefaultInferBatch)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 %s tpu_b: %w", name, err)
		}
		row.TPUB = metrics.Accuracy(predsB, test.Y)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig7 prints the accuracy comparison.
func RenderFig7(w io.Writer, rows []Fig7Row) {
	t := &metrics.Table{
		Title:   "Fig 7: Inference accuracy for different framework settings",
		Headers: []string{"Dataset", "CPU", "TPU", "TPU_B"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, metrics.FmtPct(r.CPU), metrics.FmtPct(r.TPU), metrics.FmtPct(r.TPUB))
	}
	fprintf(w, "%s\n", t)
}
