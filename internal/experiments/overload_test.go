package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestOverloadShedsNotSlows checks the PR's acceptance bar: the serving
// pass-through is bit-identical to a direct runner, and at 4× offered load
// the server sheds (shed > 0) while admitted p99 stays within 2× of the
// unloaded p99. The latency-tail bound is a wall-clock measurement with
// ~100 admitted samples, so a single OS-scheduler stall can poison the p99
// of one run; the bound gets a bounded retry, everything structural is
// asserted on every attempt.
func TestOverloadShedsNotSlows(t *testing.T) {
	skipLongUnderRace(t)
	const attempts = 3
	var res *OverloadResult
	for try := 1; ; try++ {
		var err error
		res, err = AblationOverload(fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		if tail := checkOverloadResult(t, res); tail == "" {
			break
		} else if try == attempts {
			t.Fatalf("after %d attempts: %s", attempts, tail)
		} else {
			t.Logf("attempt %d: %s (scheduler noise; retrying)", try, tail)
		}
	}
	var buf bytes.Buffer
	RenderAblationOverload(&buf, res)
	if !strings.Contains(buf.String(), "Overload") || !strings.Contains(buf.String(), "4.0x") {
		t.Fatalf("render missing content:\n%s", buf.String())
	}
}

// checkOverloadResult asserts everything deterministic about one sweep and
// returns a non-empty description if only the wall-clock tail bound failed.
func checkOverloadResult(t *testing.T, res *OverloadResult) string {
	t.Helper()
	if !res.BitIdentical {
		t.Fatal("serving pass-through is not bit-identical to the direct runner")
	}
	if res.UnloadedP99 <= 0 {
		t.Fatalf("unloaded p99 %v", res.UnloadedP99)
	}
	if len(res.Points) != len(OverloadLoads)*len(OverloadFaultRates) {
		t.Fatalf("%d sweep points", len(res.Points))
	}
	tail := ""
	sawOverload := false
	for _, pt := range res.Points {
		if pt.Offered == 0 || pt.Admitted != pt.Completed+pt.DeadlineExceeded {
			t.Fatalf("cell %.1fx/%.2f does not balance: %+v", pt.Load, pt.FaultRate, pt)
		}
		if pt.Admitted+pt.Shed != pt.Offered {
			t.Fatalf("cell %.1fx/%.2f admission does not balance: %+v", pt.Load, pt.FaultRate, pt)
		}
		if pt.Load != 4 || pt.FaultRate != 0 {
			continue
		}
		sawOverload = true
		if pt.Shed == 0 {
			t.Fatalf("4x offered load shed nothing: %+v", pt)
		}
		if pt.P99 > 2*res.UnloadedP99 {
			tail = fmt.Sprintf("admitted p99 %v exceeds 2x unloaded p99 %v under overload",
				pt.P99, res.UnloadedP99)
		}
	}
	if !sawOverload {
		t.Fatal("sweep missing the 4x zero-fault cell")
	}
	return tail
}
