package experiments

import (
	"fmt"
	"io"
	"time"

	"hdcedge/internal/backend/binhd"
	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// The binary-HDC backend sweep: at each hypervector dimension, train one
// float model and serve its two deployment forms side by side — the int8
// quantized graph through the interpreter path, and the sign-quantized
// bit-packed model through the binhd backend — measuring wall-clock cost,
// simulated cost, and held-out accuracy through each real serving path.
// The comparison shape is class-heavy (k > n) so the similarity search,
// which bit-packing collapses by ~64x, dominates the encode GEMM both
// engines share; dimension is the swept axis because it moves the two
// engines differently (the int8 path pays per-d fixed costs the packed
// path amortizes). See docs/backends.md.

// BinHDDims is the swept hypervector width.
var BinHDDims = []int{256, 512, 1024, 2048}

// binHDShape is the fixed comparison shape: features, classes, batch.
const (
	binHDFeatures = 16
	binHDClasses  = 26
	binHDBatch    = 16
	binHDSamples  = 1560 // 60 rows per class
	binHDEpochs   = 6
)

// BinHDPoint is one dimension cell.
type BinHDPoint struct {
	Dim int

	Int8Acc float64 // held-out accuracy via the int8 interpreter path
	BinAcc  float64 // held-out accuracy via the binhd packed path

	Int8WallNs int64 // wall ns per sample, full-batch invokes, best-of-reps
	BinWallNs  int64
	Int8SimUs  float64 // simulated us per sample at full batch
	BinSimUs   float64

	SpeedupWall float64 // Int8WallNs / BinWallNs
	SpeedupSim  float64 // Int8SimUs / BinSimUs

	PackedBytes int // bit-packed class-hypervector footprint
}

// BinHDResult is the full sweep.
type BinHDResult struct {
	Features, Classes, Batch int
	TrainRows, TestRows      int
	Points                   []BinHDPoint
}

// AblationBinHD sweeps dimension across both serving backends.
func AblationBinHD(cfg Config) (*BinHDResult, error) {
	train, test, err := binHDSplit(cfg)
	if err != nil {
		return nil, err
	}
	res := &BinHDResult{
		Features: binHDFeatures, Classes: binHDClasses, Batch: binHDBatch,
		TrainRows: train.Samples(), TestRows: test.Samples(),
	}
	for _, d := range BinHDDims {
		pt, err := BinHDCell(cfg, train, test, d)
		if err != nil {
			return nil, fmt.Errorf("experiments: binhd d=%d: %w", d, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// binHDSplit generates the synthetic comparison set and splits it. The
// clusters are kept single-mode and well separated: the quantization
// question is how much margin sign-thresholding gives up at a given d, and
// on a task both engines get mostly right the answer is a point or two —
// the regime the paper's binary-deployment claim is about — rather than
// being confounded with both engines failing on an under-determined task.
func binHDSplit(cfg Config) (train, test *dataset.Dataset, err error) {
	spec := dataset.SyntheticSpec(binHDFeatures, binHDSamples, binHDClasses, 7)
	spec.ModesPerClass = 1
	spec.NoiseStd = 0.15
	spec.ClusterSpread = 0.35
	ds, err := dataset.Generate(spec, 0)
	if err != nil {
		return nil, nil, err
	}
	train, test = ds.SplitStratified(0.25, rng.New(cfg.Seed+11))
	return train, test, nil
}

// BinHDCell trains one model at dimension d and measures both serving
// paths. Exported (within the package's public API) so the acceptance test
// can pin the paper bar at a single dimension without paying for the full
// sweep.
func BinHDCell(cfg Config, train, test *dataset.Dataset, d int) (BinHDPoint, error) {
	model, _, err := hdc.Train(train, nil, hdc.TrainConfig{
		Dim: d, Epochs: binHDEpochs, LearningRate: 1, Nonlinear: true, Seed: 7,
	})
	if err != nil {
		return BinHDPoint{}, err
	}
	p := pipeline.EdgeTPU()
	cm, err := pipeline.CompileInference(p, model, train, binHDBatch)
	if err != nil {
		return BinHDPoint{}, err
	}
	policy := pipeline.DefaultRecoveryPolicy()
	int8Runner, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, policy)
	if err != nil {
		return BinHDPoint{}, err
	}
	bm := model.Binarize()
	bin, err := binhd.New(p.Host, bm, binHDBatch)
	if err != nil {
		return BinHDPoint{}, err
	}
	binRunner, err := pipeline.WrapBackends(bin, nil, policy)
	if err != nil {
		return BinHDPoint{}, err
	}

	pt := BinHDPoint{Dim: d, PackedBytes: bm.Bytes()}
	if pt.Int8Acc, err = runnerAccuracy(int8Runner, test); err != nil {
		return BinHDPoint{}, err
	}
	if pt.BinAcc, err = runnerAccuracy(binRunner, test); err != nil {
		return BinHDPoint{}, err
	}
	if pt.Int8WallNs, pt.Int8SimUs, err = runnerWall(int8Runner, test); err != nil {
		return BinHDPoint{}, err
	}
	if pt.BinWallNs, pt.BinSimUs, err = runnerWall(binRunner, test); err != nil {
		return BinHDPoint{}, err
	}
	pt.SpeedupWall = float64(pt.Int8WallNs) / float64(pt.BinWallNs)
	pt.SpeedupSim = pt.Int8SimUs / pt.BinSimUs
	return pt, nil
}

// runnerAccuracy classifies the whole test set through the runner in
// full-capacity batches (a short tail rides a row-prefix invoke).
func runnerAccuracy(r *pipeline.ResilientRunner, test *dataset.Dataset) (float64, error) {
	n := test.Features()
	correct := 0
	for off := 0; off < test.Samples(); off += binHDBatch {
		rows := min(binHDBatch, test.Samples()-off)
		_, err := r.InvokeBatch(rows, func(in *tensor.Tensor) {
			copy(in.F32[:rows*n], test.X.F32[off*n:(off+rows)*n])
		})
		if err != nil {
			return 0, err
		}
		for i := 0; i < rows; i++ {
			if int(r.Output(0).I32[i]) == test.Y[off+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(test.Samples()), nil
}

// runnerWall measures full-batch invoke cost: wall ns per sample as the
// best of several timed repetitions (minimum filters scheduler noise), and
// the simulated cost per sample alongside.
func runnerWall(r *pipeline.ResilientRunner, test *dataset.Dataset) (int64, float64, error) {
	const (
		reps    = 5
		invokes = 20
	)
	n := test.Features()
	fill := func(in *tensor.Tensor) {
		copy(in.F32[:binHDBatch*n], test.X.F32[:binHDBatch*n])
	}
	sim, err := r.InvokeBatch(binHDBatch, fill) // warm caches and pools
	if err != nil {
		return 0, 0, err
	}
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for i := 0; i < invokes; i++ {
			if _, err := r.InvokeBatch(binHDBatch, fill); err != nil {
				return 0, 0, err
			}
		}
		if el := time.Since(start); el < best {
			best = el
		}
	}
	wallNs := best.Nanoseconds() / (invokes * binHDBatch)
	simUs := float64(sim.Total()) / float64(time.Microsecond) / binHDBatch
	return wallNs, simUs, nil
}

// RenderAblationBinHD prints the sweep.
func RenderAblationBinHD(w io.Writer, res *BinHDResult) {
	t := &metrics.Table{
		Title: fmt.Sprintf(
			"Binary-HDC backend: int8 interpreter vs bit-packed bin, n=%d k=%d batch=%d (%d train / %d test rows)",
			res.Features, res.Classes, res.Batch, res.TrainRows, res.TestRows),
		Headers: []string{"Dim", "int8 acc", "bin acc", "int8 ns/sample", "bin ns/sample", "wall speedup", "sim speedup", "packed bytes"},
	}
	for _, pt := range res.Points {
		t.AddRow(
			fmt.Sprintf("%d", pt.Dim),
			metrics.FmtPct(pt.Int8Acc),
			metrics.FmtPct(pt.BinAcc),
			fmt.Sprintf("%d", pt.Int8WallNs),
			fmt.Sprintf("%d", pt.BinWallNs),
			metrics.FmtX(pt.SpeedupWall),
			metrics.FmtX(pt.SpeedupSim),
			fmt.Sprintf("%d", pt.PackedBytes),
		)
	}
	fprintf(w, "%s\n", t)
}
