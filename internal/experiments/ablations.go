package experiments

import (
	"fmt"
	"io"
	"time"

	"hdcedge/internal/bagging"
	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
)

// This file implements the ablation studies DESIGN.md calls out for the
// framework's design choices. They are not paper artifacts, but each one
// isolates a decision the paper makes implicitly.

// EncodingAblationRow compares tanh (paper) vs linear (prior work)
// encoding accuracy on one dataset.
type EncodingAblationRow struct {
	Dataset   string
	Nonlinear float64
	Linear    float64
}

// AblationEncoding trains both encoders on every catalog dataset.
func AblationEncoding(cfg Config) ([]EncodingAblationRow, error) {
	var rows []EncodingAblationRow
	for _, name := range DatasetNames() {
		train, test, err := loadSplit(name, cfg)
		if err != nil {
			return nil, err
		}
		base := hdc.TrainConfig{
			Dim: cfg.FunctionalDim, Epochs: cfg.Epochs, LearningRate: 1, Seed: cfg.Seed,
		}
		nl := base
		nl.Nonlinear = true
		mNL, _, err := hdc.Train(train, nil, nl)
		if err != nil {
			return nil, fmt.Errorf("experiments: encoding ablation %s: %w", name, err)
		}
		lin := base
		lin.Nonlinear = false
		mLin, _, err := hdc.Train(train, nil, lin)
		if err != nil {
			return nil, fmt.Errorf("experiments: encoding ablation %s: %w", name, err)
		}
		rows = append(rows, EncodingAblationRow{
			Dataset:   name,
			Nonlinear: mNL.Accuracy(test),
			Linear:    mLin.Accuracy(test),
		})
	}
	return rows, nil
}

// RenderAblationEncoding prints the encoding comparison.
func RenderAblationEncoding(w io.Writer, rows []EncodingAblationRow) {
	t := &metrics.Table{
		Title:   "Ablation: non-linear (tanh) vs linear encoding accuracy",
		Headers: []string{"Dataset", "tanh", "linear", "Δ"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, metrics.FmtPct(r.Nonlinear), metrics.FmtPct(r.Linear),
			fmt.Sprintf("%+.1f pts", 100*(r.Nonlinear-r.Linear)))
	}
	fprintf(w, "%s\n", t)
}

// FusedVsSerialRow compares the fused single inference model against
// invoking the M sub-models serially (the naive bagging deployment the
// paper rejects).
type FusedVsSerialRow struct {
	Dataset string
	Fused   time.Duration
	Serial  time.Duration
	// Overhead is Serial/Fused: the cost of not fusing.
	Overhead float64
}

// AblationFusedVsSerial models both deployments per dataset.
func AblationFusedVsSerial(cfg Config) ([]FusedVsSerialRow, error) {
	tpu := pipeline.EdgeTPU()
	bcfg := bagging.DefaultConfig()
	var rows []FusedVsSerialRow
	for _, name := range DatasetNames() {
		spec, err := dataset.CatalogSpec(name)
		if err != nil {
			return nil, err
		}
		w := pipeline.FromSpec(spec, cfg.Epochs)
		fused, err := pipeline.TPUInference(tpu, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: fused-vs-serial %s: %w", name, err)
		}
		// Serial: each query runs through M sub-model inference graphs of
		// width d' — M times the invocations, each with full per-invoke
		// overheads, plus model swaps ignored (charitable to serial).
		sub := w
		sub.Dim = bcfg.SubDim()
		perSub, err := pipeline.TPUInference(tpu, sub)
		if err != nil {
			return nil, fmt.Errorf("experiments: fused-vs-serial %s: %w", name, err)
		}
		serial := time.Duration(bcfg.SubModels) * perSub
		rows = append(rows, FusedVsSerialRow{
			Dataset: name, Fused: fused, Serial: serial,
			Overhead: metrics.Speedup(serial, fused),
		})
	}
	return rows, nil
}

// RenderAblationFusedVsSerial prints the deployment comparison.
func RenderAblationFusedVsSerial(w io.Writer, rows []FusedVsSerialRow) {
	t := &metrics.Table{
		Title:   "Ablation: fused single inference model vs M serial sub-model invokes",
		Headers: []string{"Dataset", "Fused", "Serial", "Serial/Fused"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, metrics.FmtDur(r.Fused), metrics.FmtDur(r.Serial), metrics.FmtX(r.Overhead))
	}
	fprintf(w, "%s\n", t)
}

// SubWidthRow compares d' = d/M sub-models (the paper's choice) against
// full-width sub-models on ISOLET: accuracy and modeled update cost.
type SubWidthRow struct {
	SubDimPolicy string
	Accuracy     float64
	UpdateTime   time.Duration
}

// AblationSubWidth evaluates both policies.
func AblationSubWidth(cfg Config) ([]SubWidthRow, error) {
	train, test, err := loadSplit("ISOLET", cfg)
	if err != nil {
		return nil, err
	}
	spec, err := dataset.CatalogSpec("ISOLET")
	if err != nil {
		return nil, err
	}
	w := pipeline.FromSpec(spec, cfg.Epochs)
	tpu := pipeline.EdgeTPU()

	eval := func(policy string, dim int, modelDim int) (SubWidthRow, error) {
		bcfg := bagging.DefaultConfig()
		bcfg.Dim = dim
		bcfg.Seed = cfg.Seed
		ens, _, err := bagging.Train(train, bcfg)
		if err != nil {
			return SubWidthRow{}, err
		}
		modelCfg := bcfg
		modelCfg.Dim = modelDim
		bb, err := pipeline.BaggingTraining(tpu, w, modelCfg, nil)
		if err != nil {
			return SubWidthRow{}, err
		}
		return SubWidthRow{SubDimPolicy: policy, Accuracy: ens.Accuracy(test), UpdateTime: bb.Update}, nil
	}
	divided, err := eval("d' = d/M", cfg.FunctionalDim, w.Dim)
	if err != nil {
		return nil, fmt.Errorf("experiments: sub-width ablation: %w", err)
	}
	// Full-width sub-models: every sub-model is d wide (fused model would
	// be M·d — the unfair-but-stronger ensemble).
	full, err := eval("d' = d", cfg.FunctionalDim*4, w.Dim*4)
	if err != nil {
		return nil, fmt.Errorf("experiments: sub-width ablation: %w", err)
	}
	return []SubWidthRow{divided, full}, nil
}

// RenderAblationSubWidth prints the width-policy comparison.
func RenderAblationSubWidth(w io.Writer, rows []SubWidthRow) {
	t := &metrics.Table{
		Title:   "Ablation: sub-model width policy (ISOLET)",
		Headers: []string{"Policy", "Accuracy", "Modeled update time"},
	}
	for _, r := range rows {
		t.AddRow(r.SubDimPolicy, metrics.FmtPct(r.Accuracy), metrics.FmtDur(r.UpdateTime))
	}
	fprintf(w, "%s\n", t)
}

// BatchPoint is one accelerator batch size's per-sample encoding cost.
type BatchPoint struct {
	Batch        int
	PerSample    time.Duration
	RelativeTo32 float64
}

// AblationBatch models the sensitivity of per-sample encoding cost to the
// invoke batch size on MNIST.
func AblationBatch(cfg Config) ([]BatchPoint, error) {
	spec, err := dataset.CatalogSpec("MNIST")
	if err != nil {
		return nil, err
	}
	tpu := pipeline.EdgeTPU()
	var points []BatchPoint
	var base time.Duration
	for _, batch := range []int{1, 4, 8, 16, 32, 64, 128, 256} {
		w := pipeline.FromSpec(spec, cfg.Epochs)
		w.Batch = batch
		tb, err := pipeline.TPUTraining(tpu, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: batch ablation %d: %w", batch, err)
		}
		per := tb.Encode / time.Duration(w.TrainSamples)
		if batch == 32 {
			base = per
		}
		points = append(points, BatchPoint{Batch: batch, PerSample: per})
	}
	for i := range points {
		points[i].RelativeTo32 = float64(points[i].PerSample) / float64(base)
	}
	return points, nil
}

// RenderAblationBatch prints the batch sweep.
func RenderAblationBatch(w io.Writer, points []BatchPoint) {
	t := &metrics.Table{
		Title:   "Ablation: per-sample encoding cost vs invoke batch (MNIST)",
		Headers: []string{"Batch", "Per-sample", "vs batch 32"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprint(p.Batch), metrics.FmtDur(p.PerSample), fmt.Sprintf("%.2f", p.RelativeTo32))
	}
	fprintf(w, "%s\n", t)
}

// LinkRow compares the USB accelerator against a PCIe-attached variant on
// one dataset — a sensitivity study of the fixed per-invoke costs that
// gate small-feature workloads (Fig 10's mechanism).
type LinkRow struct {
	Dataset string
	USB     time.Duration
	PCIe    time.Duration
	Gain    float64
}

// AblationLink models inference on both link types.
func AblationLink(cfg Config) ([]LinkRow, error) {
	usb := pipeline.EdgeTPU()
	pcie := pipeline.EdgeTPUPCIe()
	var rows []LinkRow
	for _, name := range DatasetNames() {
		spec, err := dataset.CatalogSpec(name)
		if err != nil {
			return nil, err
		}
		w := pipeline.FromSpec(spec, cfg.Epochs)
		u, err := pipeline.TPUInference(usb, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: link %s: %w", name, err)
		}
		p, err := pipeline.TPUInference(pcie, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: link %s: %w", name, err)
		}
		rows = append(rows, LinkRow{Dataset: name, USB: u, PCIe: p, Gain: metrics.Speedup(u, p)})
	}
	return rows, nil
}

// RenderAblationLink prints the link comparison.
func RenderAblationLink(w io.Writer, rows []LinkRow) {
	t := &metrics.Table{
		Title:   "Ablation: USB vs PCIe host link (inference)",
		Headers: []string{"Dataset", "USB", "PCIe", "PCIe gain"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, metrics.FmtDur(r.USB), metrics.FmtDur(r.PCIe), metrics.FmtX(r.Gain))
	}
	fprintf(w, "%s\n", t)
}

// DimPoint is one hypervector-width setting: functional accuracy on
// ISOLET plus modeled full-scale training time.
type DimPoint struct {
	Dim       int
	Accuracy  float64
	TrainTime time.Duration
}

// AblationDim sweeps the hypervector width — the trade-off behind the
// paper's d = 10,000 choice and behind bagging's d' = d/M sub-models.
func AblationDim(cfg Config) ([]DimPoint, error) {
	train, test, err := loadSplit("ISOLET", cfg)
	if err != nil {
		return nil, err
	}
	spec, err := dataset.CatalogSpec("ISOLET")
	if err != nil {
		return nil, err
	}
	tpu := pipeline.EdgeTPU()
	var points []DimPoint
	for _, dim := range []int{256, 512, 1024, 2048, 4096} {
		m, _, err := hdc.Train(train, nil, hdc.TrainConfig{
			Dim: dim, Epochs: cfg.Epochs, LearningRate: 1, Nonlinear: true, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: dim ablation %d: %w", dim, err)
		}
		// Runtime modeled at the swept width, scaled to the paper's
		// proportions (full sample counts, 20 iterations).
		w := pipeline.FromSpec(spec, cfg.Epochs)
		w.Dim = dim * (10000 / 4096) // keep the sweep's relative spacing at full scale
		if w.Dim < dim {
			w.Dim = dim
		}
		tb, err := pipeline.TPUTraining(tpu, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: dim ablation %d: %w", dim, err)
		}
		points = append(points, DimPoint{Dim: dim, Accuracy: m.Accuracy(test), TrainTime: tb.Total()})
	}
	return points, nil
}

// RenderAblationDim prints the width sweep.
func RenderAblationDim(w io.Writer, points []DimPoint) {
	t := &metrics.Table{
		Title:   "Ablation: hypervector width d (ISOLET)",
		Headers: []string{"d", "Accuracy", "Modeled training time"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprint(p.Dim), metrics.FmtPct(p.Accuracy), metrics.FmtDur(p.TrainTime))
	}
	fprintf(w, "%s\n", t)
}

// OverlapRow compares sequential (single-buffered) against pipelined
// (double-buffered) training-set encoding.
type OverlapRow struct {
	Dataset    string
	Sequential time.Duration
	Pipelined  time.Duration
	Gain       float64
}

// AblationOverlap models both invocation disciplines per dataset.
func AblationOverlap(cfg Config) ([]OverlapRow, error) {
	tpu := pipeline.EdgeTPU()
	var rows []OverlapRow
	for _, name := range DatasetNames() {
		spec, err := dataset.CatalogSpec(name)
		if err != nil {
			return nil, err
		}
		w := pipeline.FromSpec(spec, cfg.Epochs)
		seq, err := pipeline.TPUTraining(tpu, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: overlap %s: %w", name, err)
		}
		pipe, err := pipeline.TPUTrainingPipelined(tpu, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: overlap %s: %w", name, err)
		}
		rows = append(rows, OverlapRow{
			Dataset:    name,
			Sequential: seq.Encode,
			Pipelined:  pipe.Encode,
			Gain:       metrics.Speedup(seq.Encode, pipe.Encode),
		})
	}
	return rows, nil
}

// RenderAblationOverlap prints the comparison.
func RenderAblationOverlap(w io.Writer, rows []OverlapRow) {
	t := &metrics.Table{
		Title:   "Ablation: sequential vs double-buffered training-set encoding",
		Headers: []string{"Dataset", "Sequential", "Pipelined", "Gain"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, metrics.FmtDur(r.Sequential), metrics.FmtDur(r.Pipelined), metrics.FmtX(r.Gain))
	}
	fprintf(w, "%s\n", t)
}

// ScaleOutPoint is one (link, device count) setting in the
// multi-accelerator sweep.
type ScaleOutPoint struct {
	Link    string
	Devices int
	Encode  time.Duration
	Speedup float64
}

// AblationScaleOut models MNIST training-set encoding across 1–8
// accelerators sharing one host link, for both link types. The encoder
// workload streams d bytes of hypervector back per sample, so the USB
// variant is link-bound already at one device — extra dongles buy
// nothing — while the PCIe variant starts compute-bound and scales until
// its link saturates.
func AblationScaleOut(cfg Config) ([]ScaleOutPoint, error) {
	spec, err := dataset.CatalogSpec("MNIST")
	if err != nil {
		return nil, err
	}
	w := pipeline.FromSpec(spec, cfg.Epochs)
	invokes := (w.TrainSamples + w.Batch - 1) / w.Batch
	var points []ScaleOutPoint
	for _, plat := range []pipeline.Platform{pipeline.EdgeTPU(), pipeline.EdgeTPUPCIe()} {
		per, _, err := pipeline.AcceleratorEncodeTiming(plat, w)
		if err != nil {
			return nil, err
		}
		base := pipeline.MultiDeviceSeries(per, invokes, 1)
		for _, devices := range []int{1, 2, 4, 8} {
			enc := pipeline.MultiDeviceSeries(per, invokes, devices)
			points = append(points, ScaleOutPoint{
				Link:    plat.Accel.Name,
				Devices: devices,
				Encode:  enc,
				Speedup: metrics.Speedup(base, enc),
			})
		}
	}
	return points, nil
}

// RenderAblationScaleOut prints the sweep.
func RenderAblationScaleOut(w io.Writer, points []ScaleOutPoint) {
	t := &metrics.Table{
		Title:   "Ablation: multi-accelerator encode scaling (MNIST, shared host link)",
		Headers: []string{"Link", "Devices", "Encode", "Speedup vs 1"},
	}
	for _, p := range points {
		t.AddRow(p.Link, fmt.Sprint(p.Devices), metrics.FmtDur(p.Encode), metrics.FmtX(p.Speedup))
	}
	fprintf(w, "%s\n", t)
}
