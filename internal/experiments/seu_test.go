package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestSEUAblationSelfHeals checks the acceptance bars for the integrity
// layer: at the top swept upset rate an undefended device loses real
// accuracy, while the full scrub-and-repair defense stays within
// SEUSelfHealDropPts of the clean baseline at every rate and closes every
// incident it opens. The self-heal accuracy bar depends on scrub
// timeliness — a wall-clock property — so it gets a bounded retry against
// scheduler noise; the structural accounting is asserted on every attempt.
func TestSEUAblationSelfHeals(t *testing.T) {
	skipLongUnderRace(t)
	const attempts = 3
	var res *SEUResult
	for try := 1; ; try++ {
		var err error
		res, err = AblationSEU(fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		if msg := checkSEUResult(t, res); msg == "" {
			break
		} else if try == attempts {
			t.Fatalf("after %d attempts: %s", attempts, msg)
		} else {
			t.Logf("attempt %d: %s (scheduler noise; retrying)", try, msg)
		}
	}
	var buf bytes.Buffer
	RenderAblationSEU(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "SEU ablation") || !strings.Contains(out, "self-heal") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

// checkSEUResult asserts the deterministic properties of one sweep and
// returns a non-empty description if only a wall-clock-sensitive accuracy
// bar failed.
func checkSEUResult(t *testing.T, res *SEUResult) string {
	t.Helper()
	if want := 1 + 3*len(SEUDefenseRates); len(res.Points) != want {
		t.Fatalf("%d sweep points, want %d", len(res.Points), want)
	}
	for _, pt := range res.Points {
		if pt.Requests != SEURequests || pt.Correct < 0 || pt.Correct > pt.Requests {
			t.Fatalf("cell %q rate %g has bad accounting: %+v", pt.Scenario, pt.Rate, pt)
		}
		if pt.Quarantines != 0 {
			t.Fatalf("cell %q rate %g quarantined its worker: SEU damage is repairable: %+v",
				pt.Scenario, pt.Rate, pt)
		}
	}
	clean := res.Clean()
	if clean.Scenario != "clean" || clean.Rate != 0 {
		t.Fatalf("first point is not the clean baseline: %+v", clean)
	}
	if clean.Accuracy < 80 {
		t.Fatalf("clean baseline accuracy %.1f%% is too low to anchor the sweep", clean.Accuracy)
	}
	if clean.Scrubs != 0 || clean.CanaryRuns != 0 {
		t.Fatalf("clean cell ran integrity machinery: %+v", clean)
	}
	for _, rate := range SEUDefenseRates {
		for _, name := range []string{"no defense", "canary only", "self-heal"} {
			pt, ok := res.Cell(name, rate)
			if !ok {
				t.Fatalf("sweep missing cell %q at rate %g", name, rate)
			}
			switch name {
			case "no defense":
				if pt.Scrubs != 0 || pt.CanaryRuns != 0 || pt.Repaired != 0 {
					t.Fatalf("undefended cell ran defenses: %+v", pt)
				}
			case "canary only":
				if pt.Scrubs != 0 {
					t.Fatalf("canary-only cell scrubbed: %+v", pt)
				}
				if pt.CanaryRuns == 0 {
					t.Fatalf("canary-only cell ran no canaries: %+v", pt)
				}
			case "self-heal":
				if pt.Scrubs == 0 || pt.Corruptions == 0 || pt.Restores == 0 {
					t.Fatalf("self-heal cell at rate %g detected or repaired nothing: %+v", rate, pt)
				}
				if pt.Repaired != pt.Incidents {
					t.Fatalf("self-heal cell left incidents open: %+v", pt)
				}
				if pt.Repaired > 0 && pt.MeanTTR <= 0 {
					t.Fatalf("repairs with no time-to-repair accounting: %+v", pt)
				}
			}
		}
	}
	// The undefended accuracy collapse is driven by the seeded flip stream,
	// not the scheduler, so it is asserted outright.
	top := SEUDefenseRates[len(SEUDefenseRates)-1]
	noDef, _ := res.Cell("no defense", top)
	if drop := clean.Accuracy - noDef.Accuracy; drop < SEUNoDefenseDropPts {
		t.Fatalf("undefended accuracy dropped only %.1f points at rate %g, want >= %.1f: %+v",
			drop, top, SEUNoDefenseDropPts, noDef)
	}
	// Self-heal accuracy depends on scrubs landing between requests:
	// wall-clock sensitive, so failures here are retried by the caller.
	for _, rate := range SEUDefenseRates {
		heal, _ := res.Cell("self-heal", rate)
		if drop := clean.Accuracy - heal.Accuracy; drop > SEUSelfHealDropPts {
			return fmt.Sprintf("self-heal accuracy %.1f%% at rate %g is %.1f points under clean %.1f%%, bar %.1f",
				heal.Accuracy, rate, drop, clean.Accuracy, SEUSelfHealDropPts)
		}
	}
	return ""
}
