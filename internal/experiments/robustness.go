package experiments

import (
	"fmt"
	"io"

	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/rng"
)

// RobustnessPoint is one stress level of a degradation sweep.
type RobustnessPoint struct {
	Level    float64
	Accuracy float64
}

// RobustnessResult collects the HDC noise-tolerance sweeps the paper's
// introduction appeals to: accuracy under input feature noise, and under
// sign-flip corruption of the trained class hypervectors at a small and a
// large hypervector width (high dimension should degrade more gracefully).
type RobustnessResult struct {
	Dataset       string
	FeatureNoise  []RobustnessPoint
	CorruptSmallD []RobustnessPoint
	CorruptLargeD []RobustnessPoint
	SmallD        int
	LargeD        int
}

// NoiseLevels and CorruptionLevels are the sweep grids.
var (
	NoiseLevels      = []float64{0, 0.25, 0.5, 1.0, 1.5, 2.0}
	CorruptionLevels = []float64{0, 0.05, 0.10, 0.20, 0.30, 0.40}
)

// AblationRobustness runs both sweeps on ISOLET.
func AblationRobustness(cfg Config) (*RobustnessResult, error) {
	train, test, err := loadSplit("ISOLET", cfg)
	if err != nil {
		return nil, err
	}
	res := &RobustnessResult{
		Dataset: "ISOLET",
		SmallD:  cfg.FunctionalDim / 8,
		LargeD:  cfg.FunctionalDim,
	}

	model, _, err := hdc.Train(train, nil, hdc.TrainConfig{
		Dim: cfg.FunctionalDim, Epochs: cfg.Epochs, LearningRate: 1,
		Nonlinear: true, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: robustness: %w", err)
	}

	r := rng.New(cfg.Seed + 99)
	for _, lvl := range NoiseLevels {
		noisy := test.WithNoise(lvl, r.Split())
		res.FeatureNoise = append(res.FeatureNoise, RobustnessPoint{
			Level: lvl, Accuracy: model.Accuracy(noisy),
		})
	}

	sweep := func(dim int) ([]RobustnessPoint, error) {
		m, _, err := hdc.Train(train, nil, hdc.TrainConfig{
			Dim: dim, Epochs: cfg.Epochs, LearningRate: 1,
			Nonlinear: true, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		var points []RobustnessPoint
		for _, lvl := range CorruptionLevels {
			probe := m.Clone()
			probe.CorruptClasses(lvl, rng.New(cfg.Seed+uint64(1000*lvl)))
			points = append(points, RobustnessPoint{Level: lvl, Accuracy: probe.Accuracy(test)})
		}
		return points, nil
	}
	if res.CorruptSmallD, err = sweep(res.SmallD); err != nil {
		return nil, fmt.Errorf("experiments: robustness small-d: %w", err)
	}
	if res.CorruptLargeD, err = sweep(res.LargeD); err != nil {
		return nil, fmt.Errorf("experiments: robustness large-d: %w", err)
	}
	return res, nil
}

// RenderAblationRobustness prints both sweeps.
func RenderAblationRobustness(w io.Writer, res *RobustnessResult) {
	t1 := &metrics.Table{
		Title:   fmt.Sprintf("Robustness: accuracy under test-feature noise (%s)", res.Dataset),
		Headers: []string{"Noise σ", "Accuracy"},
	}
	for _, p := range res.FeatureNoise {
		t1.AddRow(fmt.Sprintf("%.2f", p.Level), metrics.FmtPct(p.Accuracy))
	}
	fprintf(w, "%s\n", t1)

	t2 := &metrics.Table{
		Title: fmt.Sprintf("Robustness: accuracy under class-hypervector sign flips (%s)", res.Dataset),
		Headers: []string{"Corrupted frac",
			fmt.Sprintf("d=%d", res.SmallD), fmt.Sprintf("d=%d", res.LargeD)},
	}
	for i := range res.CorruptSmallD {
		t2.AddRow(fmt.Sprintf("%.2f", res.CorruptSmallD[i].Level),
			metrics.FmtPct(res.CorruptSmallD[i].Accuracy),
			metrics.FmtPct(res.CorruptLargeD[i].Accuracy))
	}
	fprintf(w, "%s\n", t2)
}
