package experiments

import (
	"fmt"
	"io"

	"hdcedge/internal/dataset"
	"hdcedge/internal/metrics"
)

// TableIRow is one line of Table I: the dataset catalog.
type TableIRow struct {
	Name        string
	Samples     int
	Features    int
	Classes     int
	Description string
}

// TableI reproduces Table I and verifies each generator actually produces
// the advertised shape (on a capped sample count, for speed).
func TableI() ([]TableIRow, error) {
	var rows []TableIRow
	for _, spec := range dataset.Catalog() {
		ds, err := dataset.Generate(spec, 256)
		if err != nil {
			return nil, err
		}
		if ds.Features() != spec.Features || ds.Classes != spec.Classes {
			return nil, fmt.Errorf("experiments: %s generator shape %d×%d, spec %d×%d",
				spec.Name, ds.Features(), ds.Classes, spec.Features, spec.Classes)
		}
		rows = append(rows, TableIRow{
			Name:        spec.Name,
			Samples:     spec.Samples,
			Features:    spec.Features,
			Classes:     spec.Classes,
			Description: spec.Description,
		})
	}
	return rows, nil
}

// RenderTableI prints the catalog in the paper's format.
func RenderTableI(w io.Writer, rows []TableIRow) {
	t := &metrics.Table{
		Title:   "Table I: Details of the datasets used for experiments",
		Headers: []string{"Datasets", "# Samples", "# Features", "# Classes", "Descriptions"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprint(r.Samples), fmt.Sprint(r.Features), fmt.Sprint(r.Classes), r.Description)
	}
	fprintf(w, "%s\n", t)
}
