//go:build !race

package experiments

// raceDetectorEnabled is set by the race-tagged twin of this file.
const raceDetectorEnabled = false
