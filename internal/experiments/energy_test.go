package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableEnergyShapes(t *testing.T) {
	cfg := fastCfg()
	cfg.Epochs = 20
	rows, err := TableEnergy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.TrainCPU <= 0 || r.TrainTPUB <= 0 || r.TrainPi <= 0 {
			t.Fatalf("%s: non-positive training energy %+v", r.Dataset, r)
		}
		// The proposed platform must use less training energy than both
		// CPU-only platforms: it is faster AND offloads to a 2 W device.
		if r.TrainTPUB >= r.TrainCPU {
			t.Errorf("%s: TPU_B training energy %.1f not below CPU %.1f", r.Dataset, r.TrainTPUB, r.TrainCPU)
		}
		if r.TrainEnergyGainVsPi() < 1.5 {
			t.Errorf("%s: training energy gain vs Pi %.2f too small", r.Dataset, r.TrainEnergyGainVsPi())
		}
		// Inference: feature-rich datasets must win on energy; PAMAP2 may
		// win only modestly.
		if r.Dataset != "PAMAP2" && r.InfEnergyGainVsPi() < 3 {
			t.Errorf("%s: inference energy gain vs Pi %.2f too small", r.Dataset, r.InfEnergyGainVsPi())
		}
	}
	var buf bytes.Buffer
	RenderTableEnergy(&buf, rows)
	if !strings.Contains(buf.String(), "joules") {
		t.Fatal("render missing units")
	}
}

func TestAblationRobustnessShapes(t *testing.T) {
	skipLongUnderRace(t)
	res, err := AblationRobustness(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Noise sweep: accuracy must degrade monotonically-ish (allow small
	// wiggle) and gracefully — no cliff at the first noise step.
	clean := res.FeatureNoise[0].Accuracy
	if clean < 0.8 {
		t.Fatalf("clean accuracy %.3f too low for the sweep to be meaningful", clean)
	}
	firstStep := res.FeatureNoise[1].Accuracy
	if firstStep < clean-0.10 {
		t.Errorf("accuracy cliff at σ=0.25: %.3f -> %.3f", clean, firstStep)
	}
	last := res.FeatureNoise[len(res.FeatureNoise)-1].Accuracy
	if last >= clean {
		t.Error("heavy noise did not reduce accuracy at all; sweep is vacuous")
	}

	// Corruption sweep: the large-d model must tolerate corruption better
	// at every nonzero level (the HDC robustness claim).
	for i := 1; i < len(CorruptionLevels); i++ {
		small := res.CorruptSmallD[i].Accuracy
		large := res.CorruptLargeD[i].Accuracy
		if large < small-0.02 {
			t.Errorf("at corruption %.2f, d=%d (%.3f) not more robust than d=%d (%.3f)",
				CorruptionLevels[i], res.LargeD, large, res.SmallD, small)
		}
	}
	// 10% corruption must leave the large-d model largely intact.
	if res.CorruptLargeD[2].Accuracy < res.CorruptLargeD[0].Accuracy-0.15 {
		t.Errorf("d=%d lost %.3f -> %.3f at 10%% corruption: not graceful",
			res.LargeD, res.CorruptLargeD[0].Accuracy, res.CorruptLargeD[2].Accuracy)
	}
	var buf bytes.Buffer
	RenderAblationRobustness(&buf, res)
	if !strings.Contains(buf.String(), "sign flips") {
		t.Fatal("render missing corruption table")
	}
}

func TestTableVarianceStable(t *testing.T) {
	skipLongUnderRace(t)
	rows, err := TableVariance(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Accuracies) != VarianceSeeds {
			t.Fatalf("%s: %d runs", r.Dataset, len(r.Accuracies))
		}
		// HDC in high dimension must be seed-stable: std below 3 points.
		if r.Std > 0.03 {
			t.Errorf("%s: seed std %.3f too high (%v)", r.Dataset, r.Std, r.Accuracies)
		}
		if r.Mean < 0.5 {
			t.Errorf("%s: mean accuracy %.3f", r.Dataset, r.Mean)
		}
	}
	var buf bytes.Buffer
	RenderTableVariance(&buf, rows)
	if !strings.Contains(buf.String(), "Std") {
		t.Fatal("render missing columns")
	}
}
