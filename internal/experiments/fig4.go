package experiments

import (
	"fmt"
	"io"

	"hdcedge/internal/hdc"
)

// Fig4Series is one dataset's training curve: per-epoch training and
// validation accuracy over the fully-trained schedule (Fig 4).
type Fig4Series struct {
	Dataset            string
	TrainAccuracy      []float64
	ValidationAccuracy []float64
	// UpdateFracs are the measured per-epoch misclassification fractions,
	// fed into the runtime models of Fig 5.
	UpdateFracs []float64
}

// Fig4 trains the CPU float model on every catalog dataset and records the
// accuracy-vs-epoch curves.
func Fig4(cfg Config) ([]Fig4Series, error) {
	var out []Fig4Series
	for _, name := range DatasetNames() {
		train, test, err := loadSplit(name, cfg)
		if err != nil {
			return nil, err
		}
		_, stats, err := hdc.Train(train, test, hdc.TrainConfig{
			Dim: cfg.FunctionalDim, Epochs: cfg.Epochs, LearningRate: 1,
			Nonlinear: true, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: fig4 %s: %w", name, err)
		}
		s := Fig4Series{Dataset: name}
		for _, e := range stats.Epochs {
			s.TrainAccuracy = append(s.TrainAccuracy, e.TrainAccuracy)
			s.ValidationAccuracy = append(s.ValidationAccuracy, e.ValidationAccuracy)
			s.UpdateFracs = append(s.UpdateFracs, float64(e.Updates)/float64(train.Samples()))
		}
		out = append(out, s)
	}
	return out, nil
}

// RenderFig4 prints the training curves.
func RenderFig4(w io.Writer, series []Fig4Series) {
	fprintf(w, "Fig 4: Training and validation accuracy for CPU experiments\n")
	for _, s := range series {
		fprintf(w, "  %s\n    epoch:", s.Dataset)
		for e := range s.TrainAccuracy {
			fprintf(w, " %5d", e+1)
		}
		fprintf(w, "\n    train:")
		for _, a := range s.TrainAccuracy {
			fprintf(w, " %5.3f", a)
		}
		fprintf(w, "\n    valid:")
		for _, a := range s.ValidationAccuracy {
			fprintf(w, " %5.3f", a)
		}
		fprintf(w, "\n")
	}
}
