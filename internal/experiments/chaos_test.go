package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestChaosAblationHoldsGoodput checks the acceptance bar for the routing
// tier: with a quarter of the fleet crashed and another node gray-slow,
// the router with hedging on holds at least MinChaosGoodputFrac of the
// healthy fleet's goodput. The goodput ratio is a wall-clock measurement,
// so it gets a bounded retry against scheduler noise; the structural
// accounting and health-detection properties are asserted on every
// attempt.
func TestChaosAblationHoldsGoodput(t *testing.T) {
	skipLongUnderRace(t)
	const attempts = 3
	var res *ChaosResult
	for try := 1; ; try++ {
		var err error
		res, err = AblationChaos(fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		if msg := checkChaosResult(t, res); msg == "" {
			break
		} else if try == attempts {
			t.Fatalf("after %d attempts: %s", attempts, msg)
		} else {
			t.Logf("attempt %d: %s (scheduler noise; retrying)", try, msg)
		}
	}
	var buf bytes.Buffer
	RenderAblationChaos(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "Chaos ablation") || !strings.Contains(out, "chaos + hedging") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

// checkChaosResult asserts the deterministic properties of one sweep and
// returns a non-empty description if only the wall-clock goodput bar
// failed.
func checkChaosResult(t *testing.T, res *ChaosResult) string {
	t.Helper()
	if len(res.Points) != 3 {
		t.Fatalf("%d sweep points, want 3", len(res.Points))
	}
	byName := map[string]ChaosPoint{}
	for _, pt := range res.Points {
		byName[pt.Scenario] = pt
		// The hedge-accounting invariant: every offered request settled
		// with exactly one outcome, however many node attempts served it.
		if pt.Offered == 0 || pt.Settled() != pt.Offered {
			t.Fatalf("cell %q does not settle exactly once per request: %+v", pt.Scenario, pt)
		}
		// A request fails hard only after exhausting every node (e.g. the
		// last untried node is the crashed one); allow the rare straggler
		// but never a systematic failure rate.
		if pt.Failed > pt.Offered/50 {
			t.Fatalf("cell %q produced %d hard failures: %+v", pt.Scenario, pt.Failed, pt)
		}
		if pt.Completed == 0 {
			t.Fatalf("cell %q completed nothing: %+v", pt.Scenario, pt)
		}
	}
	healthy, ok := byName["healthy"]
	if !ok {
		t.Fatal("sweep missing the healthy baseline")
	}
	// Failovers and degraded verdicts can happen under pure load (a shed
	// on one node retries on another; a slow probe de-weights); a down
	// node or a fired hedge cannot.
	if healthy.DownNodes != 0 || healthy.HedgesFired != 0 {
		t.Fatalf("healthy baseline saw chaos effects: %+v", healthy)
	}
	for _, name := range []string{"chaos, failover only", "chaos + hedging"} {
		pt, ok := byName[name]
		if !ok {
			t.Fatalf("sweep missing %q", name)
		}
		if pt.Failovers == 0 {
			t.Fatalf("cell %q routed around nothing despite a crashed node: %+v", name, pt)
		}
		if pt.DownNodes == 0 || pt.Transitions == 0 {
			t.Fatalf("cell %q health machine never marked the crashed node down: %+v", name, pt)
		}
	}
	hedged := byName["chaos + hedging"]
	if hedged.HedgesFired == 0 {
		t.Fatalf("hedging cell fired no hedges against a gray-slow node: %+v", hedged)
	}
	if hedged.HedgesWon > hedged.HedgesFired || hedged.HedgesWasted > hedged.HedgesFired {
		t.Fatalf("hedge accounting inconsistent: %+v", hedged)
	}
	if frac := hedged.GoodputRPS / healthy.GoodputRPS; frac < MinChaosGoodputFrac {
		return fmt.Sprintf("hedged chaos goodput %.0f/s is %.0f%% of healthy %.0f/s, bar %.0f%%",
			hedged.GoodputRPS, 100*frac, healthy.GoodputRPS, 100*MinChaosGoodputFrac)
	}
	return ""
}
