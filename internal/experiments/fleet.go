package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"hdcedge/internal/backend/hostcpu"
	"hdcedge/internal/backend/tpu"
	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/serve"
)

// The fleet-composition sweep: hold the offered request rate fixed and vary
// what the worker pool is made of — all accelerators, all host CPUs, and
// mixes — to measure what heterogeneous capacity buys at saturation. Every
// composition faces the same open-loop arrival stream (paced against a
// 4-worker reference fleet at FleetLoad× capacity), so an undersized fleet
// saturates and sheds while a larger or mixed one converts the same demand
// into completions. Worker occupancy is the flat service pace plus the
// invoke's own simulated cost, so the accelerator/host cost asymmetry shows
// up in the throughput split, not just the timing columns.

// FleetCompositions is the swept worker-pool makeup, including the 2-TPU
// baseline the mixed fleets are judged against.
var FleetCompositions = []string{"tpu=2", "tpu=4", "tpu=3,cpu=1", "tpu=2,cpu=2", "cpu=4"}

// FleetLoad is the offered load as a multiple of the 4-worker reference
// fleet's capacity — past saturation for the 2-worker baseline.
const FleetLoad = 2.0

// fleetRefWorkers is the reference pool size the arrival rate is paced
// against, independent of each cell's actual fleet.
const fleetRefWorkers = 4

// FleetPoint is one composition cell.
type FleetPoint struct {
	Fleet   string // canonical composition, e.g. "tpu=2,cpu=2"
	Workers int

	Offered          int
	Admitted         int
	Shed             int
	DeadlineExceeded int
	Completed        int
	TPURequests      int // completions served by accelerator workers
	CPURequests      int // completions served by host-CPU workers

	P50          time.Duration // admitted (completed) end-to-end latency
	P99          time.Duration
	CompletedRPS float64 // completions per wall-clock second
}

// FleetResult is the full composition sweep.
type FleetResult struct {
	Dataset string
	Service time.Duration // flat per-invoke pacing component
	Load    float64       // offered load vs the reference fleet
	Points  []FleetPoint
}

// AblationFleet sweeps fleet composition at a fixed offered load.
func AblationFleet(cfg Config) (*FleetResult, error) {
	p, cm, ds, err := overloadModel(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: fleet model: %w", err)
	}
	// The flat pace dominates occupancy so capacity is close to
	// workers/service for every class; PaceScale 1 adds each invoke's own
	// simulated cost on top, keeping the accelerator/host asymmetry honest
	// without letting OS-timer noise swamp the comparison.
	const (
		service   = 4 * time.Millisecond
		queue     = 4
		perWorker = 150 // offered requests per reference worker
	)
	policy := pipeline.DefaultRecoveryPolicy()
	policy.Seed = cfg.Seed + 1
	res := &FleetResult{Dataset: "ISOLET", Service: service, Load: FleetLoad}
	n := perWorker * fleetRefWorkers
	for _, spec := range FleetCompositions {
		fleet, err := serve.ParseFleet(spec)
		if err != nil {
			return nil, err
		}
		pt, err := fleetCell(p, cm, ds, serve.Config{
			Fleet:           fleet,
			QueueCapacity:   queue,
			DefaultDeadline: 250 * time.Millisecond,
			DrainDeadline:   5 * time.Second,
			Policy:          policy,
			PacePerInvoke:   service,
			PaceScale:       1,
		}, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: fleet %q: %w", spec, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// fleetCell drives the fixed open-loop arrival stream against one fleet.
func fleetCell(p pipeline.Platform, cm *edgetpu.CompiledModel, ds *dataset.Dataset,
	scfg serve.Config, n int) (FleetPoint, error) {
	s, err := serve.New(p, cm, scfg)
	if err != nil {
		return FleetPoint{}, err
	}
	workers := len(scfg.Fleet)
	// The arrival rate is paced against the reference fleet, not this cell's
	// fleet: every composition faces the same demand. Arrivals pace against
	// absolute deadlines so OS timer slack becomes catch-up bursts rather
	// than silently capping the offered rate; the first arrivals are spaced
	// across one service interval so the paced workers start out of phase
	// (see overloadCell).
	interarrival := time.Duration(float64(scfg.PacePerInvoke) / (fleetRefWorkers * FleetLoad))
	staggerGap := scfg.PacePerInvoke / time.Duration(workers)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var due time.Duration
		if i < workers {
			due = time.Duration(i) * staggerGap
		} else {
			due = time.Duration(workers-1)*staggerGap + time.Duration(i-workers+1)*interarrival
		}
		if d := time.Until(start.Add(due)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Sheds and deadline misses are expected at saturation; hard
			// failures surface in the report's Failed count, checked below.
			s.Do(context.Background(), overloadFill(ds, i), nil)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := s.Drain(context.Background()); err != nil {
		return FleetPoint{}, err
	}
	rep := s.Report()
	if rep.Failed > 0 {
		return FleetPoint{}, fmt.Errorf("%d requests failed outright", rep.Failed)
	}
	pt := FleetPoint{
		Fleet:            scfg.Fleet.String(),
		Workers:          workers,
		Offered:          rep.Submitted,
		Admitted:         rep.Admitted,
		Shed:             rep.Shed(),
		DeadlineExceeded: rep.DeadlineExceeded,
		Completed:        rep.Completed,
		P50:              rep.Latency.Quantile(0.5),
		P99:              rep.Latency.Quantile(0.99),
		CompletedRPS:     float64(rep.Completed) / elapsed.Seconds(),
	}
	if b, ok := rep.Backend(tpu.Name); ok {
		pt.TPURequests = b.Requests
	}
	if b, ok := rep.Backend(hostcpu.Name); ok {
		pt.CPURequests = b.Requests
	}
	return pt, nil
}

// RenderAblationFleet prints the sweep.
func RenderAblationFleet(w io.Writer, res *FleetResult) {
	t := &metrics.Table{
		Title: fmt.Sprintf(
			"Fleet composition: fixed %.1fx open-loop load vs a %d-worker reference on %s (service %v + 1x simulated cost)",
			res.Load, fleetRefWorkers, res.Dataset, res.Service),
		Headers: []string{"Fleet", "Workers", "Offered", "Admitted", "Shed", "Deadline", "Completed", "TPU", "CPU", "p50", "p99", "Goodput"},
	}
	for _, pt := range res.Points {
		t.AddRow(
			pt.Fleet,
			fmt.Sprintf("%d", pt.Workers),
			fmt.Sprintf("%d", pt.Offered),
			fmt.Sprintf("%d", pt.Admitted),
			fmt.Sprintf("%d", pt.Shed),
			fmt.Sprintf("%d", pt.DeadlineExceeded),
			fmt.Sprintf("%d", pt.Completed),
			fmt.Sprintf("%d", pt.TPURequests),
			fmt.Sprintf("%d", pt.CPURequests),
			metrics.FmtDur(pt.P50),
			metrics.FmtDur(pt.P99),
			fmt.Sprintf("%.0f/s", pt.CompletedRPS),
		)
	}
	fprintf(w, "%s\n", t)
}
