package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/serve"
	"hdcedge/internal/tensor"
)

// The overload sweep: what the serving runtime does as offered load crosses
// capacity, with and without accelerator faults. Offered load is open-loop
// (arrivals do not wait for completions), so beyond capacity the bounded
// admission queue must shed rather than let latency grow without bound. The
// quality bar measured here: at 4× capacity the server sheds (shed > 0)
// while admitted p99 stays within 2× of the unloaded p99 — overload degrades
// availability, not the latency of the work that is admitted.

// OverloadLoads is the offered-load grid, as multiples of server capacity.
var OverloadLoads = []float64{0.5, 1, 2, 4}

// OverloadFaultRates is the link-fault dimension of the sweep.
var OverloadFaultRates = []float64{0, 0.1}

// OverloadPoint is one load × fault cell.
type OverloadPoint struct {
	Load      float64 // offered load as a multiple of capacity
	FaultRate float64

	Offered          int
	Admitted         int
	Shed             int
	DeadlineExceeded int
	Completed        int
	HostFallback     int

	P50        time.Duration // admitted (completed) end-to-end latency
	P99        time.Duration
	GoodputRPS float64 // completions per wall-clock second
}

// OverloadResult is the full study.
type OverloadResult struct {
	Dataset string
	Devices int
	Queue   int
	Service time.Duration // per-invoke pacing (emulated device occupancy)

	// BitIdentical records the pass-through check: with zero faults, an
	// unbounded queue and no deadlines, the server's per-invoke simulated
	// timing and predictions match a directly-driven ResilientRunner.
	BitIdentical bool

	UnloadedP50 time.Duration
	UnloadedP99 time.Duration
	Points      []OverloadPoint
}

// overloadModel trains the tiny classifier served by the sweep.
func overloadModel(cfg Config) (pipeline.Platform, *edgetpu.CompiledModel, *dataset.Dataset, error) {
	train, _, err := loadSplit("ISOLET", cfg)
	if err != nil {
		return pipeline.Platform{}, nil, nil, err
	}
	tc := hdc.TrainConfig{
		Dim: cfg.FunctionalDim, Epochs: cfg.Epochs, LearningRate: 1,
		Nonlinear: true, Seed: cfg.Seed,
	}
	model, _, err := hdc.Train(train, nil, tc)
	if err != nil {
		return pipeline.Platform{}, nil, nil, err
	}
	p := pipeline.EdgeTPU()
	cm, err := pipeline.CompileInference(p, model, train, 1)
	if err != nil {
		return pipeline.Platform{}, nil, nil, err
	}
	return p, cm, train, nil
}

// overloadFill loads row i of ds into the model input.
func overloadFill(ds *dataset.Dataset, i int) func(in *tensor.Tensor) {
	n := ds.Features()
	row := i % ds.Samples()
	return func(in *tensor.Tensor) {
		copy(in.F32, ds.X.F32[row*n:(row+1)*n])
	}
}

// AblationOverload sweeps offered load × fault rate over the serving
// runtime and verifies the zero-load pass-through is bit-identical.
func AblationOverload(cfg Config) (*OverloadResult, error) {
	p, cm, ds, err := overloadModel(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: overload model: %w", err)
	}
	// A short queue keeps the admitted-latency bound tight: a queued
	// request waits at most one service interval for one of the workers,
	// so admitted p99 stays well inside 2× the unloaded p99 even at 4×
	// offered load — overload sheds instead of stretching latency.
	// perCell is sized so a cell's p99 is a real quantile rather than the
	// sample max: with ~hundreds of admitted requests, a single
	// OS-scheduling straggler cannot define the tail. The service pace is
	// deliberately coarse (8ms) so that OS timer slack and scheduling
	// jitter — milliseconds on a small shared host — stay proportionally
	// small against both sides of the p99 ratio.
	const (
		devices  = 4
		queue    = 1
		service  = 8 * time.Millisecond
		perCell  = 400
		baseline = 128
	)
	policy := pipeline.DefaultRecoveryPolicy()
	policy.Seed = cfg.Seed + 1
	res := &OverloadResult{
		Dataset: "ISOLET",
		Devices: devices,
		Queue:   queue,
		Service: service,
	}

	// Pass-through check: one device, unbounded queue, no deadlines, no
	// pacing — every Do must match a direct ResilientRunner invoke for
	// invoke, timing and prediction.
	direct, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, policy)
	if err != nil {
		return nil, err
	}
	ident, err := serve.New(p, cm, serve.Config{Devices: 1, Policy: policy})
	if err != nil {
		return nil, err
	}
	res.BitIdentical = true
	for i := 0; i < 32; i++ {
		fill := overloadFill(ds, i)
		dt, err := direct.Invoke(fill)
		if err != nil {
			return nil, err
		}
		want := direct.Output(0).I32[0]
		var got int32
		sr, err := ident.Do(context.Background(), fill, func(out *tensor.Tensor) { got = out.I32[0] })
		if err != nil {
			return nil, err
		}
		if sr.Timing != dt || got != want {
			res.BitIdentical = false
			break
		}
	}
	if err := ident.Close(); err != nil {
		return nil, err
	}

	// Unloaded baseline: sequential requests through the paced server, so
	// the only latency is the service time itself.
	base, err := serve.New(p, cm, serve.Config{
		Devices: devices, Policy: policy, PacePerInvoke: service,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < baseline; i++ {
		if _, err := base.Do(context.Background(), overloadFill(ds, i), nil); err != nil {
			return nil, fmt.Errorf("experiments: overload baseline: %w", err)
		}
	}
	if err := base.Close(); err != nil {
		return nil, err
	}
	baseRep := base.Report()
	res.UnloadedP50 = baseRep.Latency.Quantile(0.5)
	res.UnloadedP99 = baseRep.Latency.Quantile(0.99)

	for _, fault := range OverloadFaultRates {
		for _, load := range OverloadLoads {
			// Above capacity only ~1/load of offered requests are admitted,
			// so offer proportionally more: the admitted-latency p99 then
			// rests on hundreds of samples in every cell, not just the
			// underloaded ones.
			n := perCell
			if load > 1 {
				n = int(float64(perCell) * load)
			}
			pt, err := overloadCell(p, cm, ds, policy, serve.Config{
				Devices:         devices,
				QueueCapacity:   queue,
				DefaultDeadline: 250 * time.Millisecond,
				DrainDeadline:   5 * time.Second,
				PacePerInvoke:   service,
			}, load, fault, n, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: overload %.1fx/%.2f: %w", load, fault, err)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// overloadCell drives one open-loop load cell against a fresh server.
func overloadCell(p pipeline.Platform, cm *edgetpu.CompiledModel, ds *dataset.Dataset,
	policy pipeline.RecoveryPolicy, scfg serve.Config, load, fault float64, n int, seed uint64) (OverloadPoint, error) {
	scfg.Policy = policy
	scfg.Plan = edgetpu.FaultPlan{Seed: seed + uint64(1e3*fault), LinkErrorRate: fault, ResetRate: fault / 10}
	s, err := serve.New(p, cm, scfg)
	if err != nil {
		return OverloadPoint{}, err
	}
	// Capacity is Devices invokes per service interval; offered load scales
	// the open-loop arrival rate against that. Arrivals pace against
	// absolute deadlines (start + i·interarrival) rather than sleeping the
	// gap each iteration: OS timer slack then turns into small catch-up
	// bursts instead of silently capping the offered rate, so the measured
	// load multiple stays honest even when sleeps overshoot. The first
	// Devices arrivals are spaced one service-fraction apart so the paced
	// workers start out of phase: under overload each worker's cycle is
	// exactly the service time, so an initial bunching would persist for
	// the whole cell and stretch queue waits toward a full service interval.
	workers := max(scfg.Devices, 1)
	interarrival := time.Duration(float64(scfg.PacePerInvoke) / (float64(workers) * load))
	staggerGap := scfg.PacePerInvoke / time.Duration(workers)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var due time.Duration
		if i < workers {
			due = time.Duration(i) * staggerGap
		} else {
			due = time.Duration(workers-1)*staggerGap + time.Duration(i-workers+1)*interarrival
		}
		if d := time.Until(start.Add(due)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Sheds and deadline misses are expected outcomes here; anything
			// else surfaces in the report's Failed count, checked below.
			s.Do(context.Background(), overloadFill(ds, i), nil)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := s.Drain(context.Background()); err != nil {
		return OverloadPoint{}, err
	}
	rep := s.Report()
	if rep.Failed > 0 {
		return OverloadPoint{}, fmt.Errorf("%d requests failed outright", rep.Failed)
	}
	return OverloadPoint{
		Load:             load,
		FaultRate:        fault,
		Offered:          rep.Submitted,
		Admitted:         rep.Admitted,
		Shed:             rep.Shed(),
		DeadlineExceeded: rep.DeadlineExceeded,
		Completed:        rep.Completed,
		HostFallback:     rep.HostFallback,
		P50:              rep.Latency.Quantile(0.5),
		P99:              rep.Latency.Quantile(0.99),
		GoodputRPS:       float64(rep.Completed) / elapsed.Seconds(),
	}, nil
}

// RenderAblationOverload prints the sweep.
func RenderAblationOverload(w io.Writer, res *OverloadResult) {
	t := &metrics.Table{
		Title: fmt.Sprintf(
			"Overload: open-loop serving on %s (%d devices, queue %d, service %v; unloaded p50 %v p99 %v; pass-through bit-identical: %v)",
			res.Dataset, res.Devices, res.Queue, res.Service,
			res.UnloadedP50.Round(time.Microsecond), res.UnloadedP99.Round(time.Microsecond),
			res.BitIdentical),
		Headers: []string{"Load", "Faults", "Offered", "Admitted", "Shed", "Deadline", "Completed", "Host", "p50", "p99", "Goodput"},
	}
	for _, pt := range res.Points {
		t.AddRow(
			fmt.Sprintf("%.1fx", pt.Load),
			fmt.Sprintf("%.2f", pt.FaultRate),
			fmt.Sprintf("%d", pt.Offered),
			fmt.Sprintf("%d", pt.Admitted),
			fmt.Sprintf("%d", pt.Shed),
			fmt.Sprintf("%d", pt.DeadlineExceeded),
			fmt.Sprintf("%d", pt.Completed),
			fmt.Sprintf("%d", pt.HostFallback),
			metrics.FmtDur(pt.P50),
			metrics.FmtDur(pt.P99),
			fmt.Sprintf("%.0f/s", pt.GoodputRPS),
		)
	}
	fprintf(w, "%s\n", t)
}
