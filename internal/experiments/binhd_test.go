package experiments

import "testing"

// TestBinHDAcceptanceBars pins the binary-HDC backend's paper bar at the
// headline dimension: at d=1024 the bit-packed path must serve at least 5x
// faster per sample (wall clock) than the int8 interpreter path, while
// giving up at most 2 accuracy points on held-out data. Accuracy on both
// paths is deterministic (seeded data, seeded training, exact kernels);
// the wall ratio is best-of-reps on both sides, and the measured margin
// (~6.7x) leaves headroom over the bar.
func TestBinHDAcceptanceBars(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("timing bar under the race detector's slowdown; conformance covers binhd under race")
	}
	cfg := Config{Seed: 7}
	train, test, err := binHDSplit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := BinHDCell(cfg, train, test, 1024)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("d=%d: int8 %.1f%% @ %dns/sample, bin %.1f%% @ %dns/sample, speedup %.2fx wall %.2fx sim",
		pt.Dim, pt.Int8Acc*100, pt.Int8WallNs, pt.BinAcc*100, pt.BinWallNs, pt.SpeedupWall, pt.SpeedupSim)
	if pt.SpeedupWall < 5 {
		t.Errorf("wall speedup %.2fx under the 5x bar (int8 %d ns/sample, bin %d)",
			pt.SpeedupWall, pt.Int8WallNs, pt.BinWallNs)
	}
	if pt.SpeedupSim < 5 {
		t.Errorf("simulated speedup %.2fx under 5x", pt.SpeedupSim)
	}
	if gap := pt.Int8Acc - pt.BinAcc; gap > 0.02 {
		t.Errorf("bipolar path gives up %.1f points (int8 %.1f%%, bin %.1f%%), bar is 2",
			gap*100, pt.Int8Acc*100, pt.BinAcc*100)
	}
	// Both paths must actually work on the task, or the gap bar is vacuous.
	if pt.Int8Acc < 0.9 || pt.BinAcc < 0.9 {
		t.Errorf("accuracy collapsed: int8 %.3f, bin %.3f", pt.Int8Acc, pt.BinAcc)
	}
}
