package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/serve"
	"hdcedge/internal/tensor"
)

// The micro-batching sweep: what coalescing queued requests into multi-row
// device invokes buys under open-loop load. One invoke's cost is dominated by
// per-invoke overheads (weight streaming, transfer setup, pipeline fill), so
// serving B queued rows in one invoke costs barely more than serving one —
// the per-sample cost divides by the occupancy. The sweep offers the same
// arrival process to servers that differ only in MaxBatch and measures how
// throughput, occupancy, and admitted latency respond as load crosses the
// single-sample capacity. Quality bar: at saturation (4× the batch-1
// capacity) a MaxBatch ≥ 8 server completes at least 2× the requests per
// second of the batch-1 server while its admitted p99 stays inside the
// request deadline.

// BatchingMaxBatches is the coalescing-limit grid.
var BatchingMaxBatches = []int{1, 4, 8, 16}

// BatchingWindows is the batch-window grid for MaxBatch > 1 servers: a zero
// window coalesces only what is already queued, a positive one holds an
// underfull batch open for company. MaxBatch = 1 has nothing to coalesce and
// runs only at zero.
var BatchingWindows = []time.Duration{0, 2 * time.Millisecond}

// BatchingLoads is the offered-load grid, as multiples of the batch-1
// serving capacity.
var BatchingLoads = []float64{1, 2, 4}

// BatchingPoint is one MaxBatch × window × load cell.
type BatchingPoint struct {
	MaxBatch int
	Window   time.Duration
	Load     float64 // offered load as a multiple of batch-1 capacity

	Offered          int
	Admitted         int
	Shed             int
	DeadlineExceeded int
	Completed        int

	BatchInvokes  int
	MeanOccupancy float64
	PerSampleP50  time.Duration // simulated compute per sample row

	P50           time.Duration // admitted (completed) end-to-end latency
	P99           time.Duration
	ThroughputRPS float64 // completions per wall-clock second
}

// BatchingResult is the full study.
type BatchingResult struct {
	Dataset  string
	Devices  int
	Queue    int
	BasePace time.Duration // paced wall cost of a batch-1 invoke
	Window   time.Duration // batch window for MaxBatch > 1 cells
	Deadline time.Duration

	// BitIdentical records the degenerate-path check: a MaxBatch=8 server
	// with a zero window serving sequential requests matches single-row
	// InvokeBatch calls on the same compiled model for timing and
	// prediction, bit for bit.
	BitIdentical bool

	Points []BatchingPoint
}

// AblationBatching sweeps offered load × MaxBatch over the serving runtime.
func AblationBatching(cfg Config) (*BatchingResult, error) {
	train, _, err := loadSplit("ISOLET", cfg)
	if err != nil {
		return nil, err
	}
	model, _, err := hdc.Train(train, nil, hdc.TrainConfig{
		Dim: cfg.FunctionalDim, Epochs: cfg.Epochs, LearningRate: 1,
		Nonlinear: true, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	p := pipeline.EdgeTPU()
	cms := make(map[int]*edgetpu.CompiledModel, len(BatchingMaxBatches))
	for _, mb := range BatchingMaxBatches {
		cm, err := pipeline.CompileInference(p, model, train, mb)
		if err != nil {
			return nil, fmt.Errorf("experiments: batching compile b=%d: %w", mb, err)
		}
		cms[mb] = cm
	}

	const (
		devices  = 2
		queue    = 64
		basePace = 2 * time.Millisecond
		window   = 2 * time.Millisecond
		deadline = 250 * time.Millisecond
		perCell  = 240
	)
	policy := pipeline.DefaultRecoveryPolicy()
	policy.Seed = cfg.Seed + 1
	res := &BatchingResult{
		Dataset:  "ISOLET",
		Devices:  devices,
		Queue:    queue,
		BasePace: basePace,
		Window:   window,
		Deadline: deadline,
	}

	// PaceScale maps simulated invoke time onto wall-clock worker occupancy
	// so that a batch-1 invoke paces exactly basePace; a coalesced invoke
	// then occupies its worker for its (barely larger) simulated cost and
	// the amortization becomes measurable wall-clock throughput.
	direct1, err := pipeline.NewResilientRunner(p, cms[1], edgetpu.FaultPlan{}, policy)
	if err != nil {
		return nil, err
	}
	t1, err := direct1.Invoke(overloadFill(train, 0))
	if err != nil {
		return nil, err
	}
	paceScale := float64(basePace) / float64(t1.Total())

	if res.BitIdentical, err = batchingBitIdentical(p, cms[8], train, policy); err != nil {
		return nil, fmt.Errorf("experiments: batching pass-through: %w", err)
	}

	for _, mb := range BatchingMaxBatches {
		windows := BatchingWindows
		if mb == 1 {
			windows = []time.Duration{0}
		}
		for _, win := range windows {
			for _, load := range BatchingLoads {
				// Above capacity only a fraction of offered requests are
				// admitted; offer proportionally more so tail quantiles rest
				// on real sample counts.
				n := perCell
				if load > 1 {
					n = int(float64(perCell) * load)
				}
				scfg := serve.Config{
					Devices:         devices,
					QueueCapacity:   queue,
					DefaultDeadline: deadline,
					DrainDeadline:   10 * time.Second,
					Policy:          policy,
					PaceScale:       paceScale,
					MaxBatch:        mb,
					BatchWindow:     win,
				}
				pt, err := batchingCell(p, cms[mb], train, scfg, basePace, load, n)
				if err != nil {
					return nil, fmt.Errorf("experiments: batching b=%d w=%v %.1fx: %w", mb, win, load, err)
				}
				pt.MaxBatch = mb
				pt.Window = win
				res.Points = append(res.Points, pt)
			}
		}
	}
	return res, nil
}

// batchingBitIdentical checks the zero-window degenerate path: sequential
// requests through a MaxBatch-capable server are single-row invokes of the
// same compiled model, bit-identical in timing and prediction to driving the
// runner's InvokeBatch(1) directly.
func batchingBitIdentical(p pipeline.Platform, cm *edgetpu.CompiledModel,
	ds *dataset.Dataset, policy pipeline.RecoveryPolicy) (bool, error) {
	direct, err := pipeline.NewResilientRunner(p, cm, edgetpu.FaultPlan{}, policy)
	if err != nil {
		return false, err
	}
	s, err := serve.New(p, cm, serve.Config{
		Devices: 1, Policy: policy, MaxBatch: cm.BatchCapacity(),
	})
	if err != nil {
		return false, err
	}
	defer s.Close()
	for i := 0; i < 24; i++ {
		fill := overloadFill(ds, i)
		dt, err := direct.InvokeBatch(1, fill)
		if err != nil {
			return false, err
		}
		want := direct.Output(0).I32[0]
		var got int32
		sr, err := s.Do(context.Background(), fill, func(out *tensor.Tensor) { got = out.I32[0] })
		if err != nil {
			return false, err
		}
		if sr.Timing != dt || got != want || sr.BatchSize != 1 {
			return false, nil
		}
	}
	return true, nil
}

// batchingCell drives one open-loop load cell against a fresh server.
func batchingCell(p pipeline.Platform, cm *edgetpu.CompiledModel, ds *dataset.Dataset,
	scfg serve.Config, basePace time.Duration, load float64, n int) (BatchingPoint, error) {
	s, err := serve.New(p, cm, scfg)
	if err != nil {
		return BatchingPoint{}, err
	}
	// Same open-loop arrival discipline as the overload sweep: absolute
	// deadlines keep the offered rate honest against timer slack, and the
	// first Devices arrivals are staggered out of phase. The rate is always
	// relative to batch-1 capacity, so every MaxBatch sees the same arrivals.
	workers := max(scfg.Devices, 1)
	interarrival := time.Duration(float64(basePace) / (float64(workers) * load))
	staggerGap := basePace / time.Duration(workers)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var due time.Duration
		if i < workers {
			due = time.Duration(i) * staggerGap
		} else {
			due = time.Duration(workers-1)*staggerGap + time.Duration(i-workers+1)*interarrival
		}
		if d := time.Until(start.Add(due)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Sheds and deadline misses are expected outcomes; anything else
			// surfaces in the report's Failed count, checked below.
			s.Do(context.Background(), overloadFill(ds, i), nil)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := s.Drain(context.Background()); err != nil {
		return BatchingPoint{}, err
	}
	rep := s.Report()
	if rep.Failed > 0 {
		return BatchingPoint{}, fmt.Errorf("%d requests failed outright", rep.Failed)
	}
	return BatchingPoint{
		Load:             load,
		Offered:          rep.Submitted,
		Admitted:         rep.Admitted,
		Shed:             rep.Shed(),
		DeadlineExceeded: rep.DeadlineExceeded,
		Completed:        rep.Completed,
		BatchInvokes:     rep.BatchInvokes,
		MeanOccupancy:    rep.MeanOccupancy(),
		PerSampleP50:     rep.PerSample.Quantile(0.5),
		P50:              rep.Latency.Quantile(0.5),
		P99:              rep.Latency.Quantile(0.99),
		ThroughputRPS:    float64(rep.Completed) / elapsed.Seconds(),
	}, nil
}

// RenderAblationBatching prints the sweep.
func RenderAblationBatching(w io.Writer, res *BatchingResult) {
	t := &metrics.Table{
		Title: fmt.Sprintf(
			"Micro-batching: open-loop serving on %s (%d devices, queue %d, batch-1 pace %v, deadline %v; zero-window pass-through bit-identical: %v)",
			res.Dataset, res.Devices, res.Queue, res.BasePace, res.Deadline,
			res.BitIdentical),
		Headers: []string{"MaxBatch", "Window", "Load", "Offered", "Admitted", "Shed", "Deadline", "Completed", "Invokes", "Occupancy", "Sample-p50", "p50", "p99", "Throughput"},
	}
	for _, pt := range res.Points {
		t.AddRow(
			fmt.Sprintf("%d", pt.MaxBatch),
			metrics.FmtDur(pt.Window),
			fmt.Sprintf("%.1fx", pt.Load),
			fmt.Sprintf("%d", pt.Offered),
			fmt.Sprintf("%d", pt.Admitted),
			fmt.Sprintf("%d", pt.Shed),
			fmt.Sprintf("%d", pt.DeadlineExceeded),
			fmt.Sprintf("%d", pt.Completed),
			fmt.Sprintf("%d", pt.BatchInvokes),
			fmt.Sprintf("%.2f", pt.MeanOccupancy),
			metrics.FmtDur(pt.PerSampleP50),
			metrics.FmtDur(pt.P50),
			metrics.FmtDur(pt.P99),
			fmt.Sprintf("%.0f/s", pt.ThroughputRPS),
		)
	}
	fprintf(w, "%s\n", t)
}
