package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestFleetCompositionAddsCapacity checks the acceptance bar for the
// heterogeneous fleet: under the same fixed offered load, a 2-TPU + 2-CPU
// fleet completes more requests per second than the saturated 2-TPU
// baseline, and mixed fleets really serve from both classes. The
// throughput comparison is a wall-clock measurement, so it gets a bounded
// retry against scheduler noise; the structural properties are asserted on
// every attempt.
func TestFleetCompositionAddsCapacity(t *testing.T) {
	skipLongUnderRace(t)
	const attempts = 3
	var res *FleetResult
	for try := 1; ; try++ {
		var err error
		res, err = AblationFleet(fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		if msg := checkFleetResult(t, res); msg == "" {
			break
		} else if try == attempts {
			t.Fatalf("after %d attempts: %s", attempts, msg)
		} else {
			t.Logf("attempt %d: %s (scheduler noise; retrying)", try, msg)
		}
	}
	var buf bytes.Buffer
	RenderAblationFleet(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "Fleet composition") || !strings.Contains(out, "tpu=2,cpu=2") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

// checkFleetResult asserts the deterministic properties of one sweep and
// returns a non-empty description if only the wall-clock throughput
// comparison failed.
func checkFleetResult(t *testing.T, res *FleetResult) string {
	t.Helper()
	if len(res.Points) != len(FleetCompositions) {
		t.Fatalf("%d sweep points for %d compositions", len(res.Points), len(FleetCompositions))
	}
	byFleet := map[string]FleetPoint{}
	for _, pt := range res.Points {
		byFleet[pt.Fleet] = pt
		if pt.Offered == 0 || pt.Admitted != pt.Completed+pt.DeadlineExceeded {
			t.Fatalf("cell %q does not balance: %+v", pt.Fleet, pt)
		}
		if pt.Admitted+pt.Shed != pt.Offered {
			t.Fatalf("cell %q admission does not balance: %+v", pt.Fleet, pt)
		}
		if pt.TPURequests+pt.CPURequests != pt.Completed {
			t.Fatalf("cell %q backend split does not balance: %+v", pt.Fleet, pt)
		}
	}
	base, ok := byFleet["tpu=2"]
	if !ok {
		t.Fatal("sweep missing the 2-TPU baseline")
	}
	mixed, ok := byFleet["tpu=2,cpu=2"]
	if !ok {
		t.Fatal("sweep missing the 2-TPU + 2-CPU fleet")
	}
	if base.Shed == 0 {
		t.Fatalf("2-TPU baseline at %.1fx reference load shed nothing: %+v", res.Load, base)
	}
	for _, spec := range []string{"tpu=3,cpu=1", "tpu=2,cpu=2"} {
		pt := byFleet[spec]
		if pt.TPURequests == 0 || pt.CPURequests == 0 {
			t.Fatalf("mixed fleet %q did not serve from both classes: %+v", spec, pt)
		}
	}
	if cpu := byFleet["cpu=4"]; cpu.TPURequests != 0 {
		t.Fatalf("all-CPU fleet served from a TPU: %+v", cpu)
	}
	if mixed.CompletedRPS <= base.CompletedRPS {
		return fmt.Sprintf("2+2 fleet completed %.0f req/s, not above the 2-TPU baseline's %.0f req/s",
			mixed.CompletedRPS, base.CompletedRPS)
	}
	return ""
}
