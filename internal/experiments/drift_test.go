package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestDriftAcceptanceBars pins the online-learning claims end to end:
// under a mid-run feature-permutation shift at full serving load, the
// feedback-trained cell recovers to within 2 accuracy points of its own
// pre-shift baseline (drift-triggered regeneration included), the frozen
// control stays at least 8 points down, and the online cell's p99 stays
// within 1.2x the frozen cell's on the identical schedule — host-side
// training and atomic snapshot publication never block serving.
//
// The p99 bar is wall-clock, so the test skips under the race detector;
// the trainer/registry/serving concurrency itself is race-tested by
// make online-smoke (internal/online and the swap-storm tests).
func TestDriftAcceptanceBars(t *testing.T) {
	skipLongUnderRace(t)
	res, err := AblationDrift(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderAblationDrift(&buf, res)
	t.Logf("\n%s", buf.String())
	if !strings.Contains(buf.String(), "online+regen") {
		t.Error("render omits the online cell")
	}

	frozen, on := res.Frozen, res.Online
	if len(frozen.Rounds) != driftRounds+1 || len(on.Rounds) != driftRounds+1 {
		t.Fatalf("unexpected shape: %d frozen rounds, %d online rounds",
			len(frozen.Rounds), len(on.Rounds))
	}
	// Both cells start from the same trained model; a weak baseline would
	// make the recovery bar vacuous.
	if frozen.Baseline < 0.7 || on.Baseline < 0.7 {
		t.Fatalf("pre-shift baselines too weak to measure recovery: frozen %.3f, online %.3f",
			frozen.Baseline, on.Baseline)
	}

	// The shift must actually break the frozen model, and stay broken.
	if res.FrozenGap < 0.08 {
		t.Errorf("frozen cell lost only %.3f accuracy to the shift (baseline %.3f, final %.3f); bar is >= 0.080",
			res.FrozenGap, frozen.Baseline, frozen.Final)
	}
	// The online cell must climb back to within 2 points of its baseline.
	if res.RecoveryGap > 0.02 {
		t.Errorf("online cell recovered to %.3f vs baseline %.3f (gap %.3f); bar is <= 0.020",
			on.Final, on.Baseline, res.RecoveryGap)
	}
	// Recovery must come from the mechanism under test: snapshots were
	// published and the drift detector fired at least one regeneration.
	if on.Stats.Snapshots == 0 || on.Stats.Regens == 0 {
		t.Errorf("online cell published %d snapshots, %d regens; drift recovery did not engage",
			on.Stats.Snapshots, on.Stats.Regens)
	}
	if on.Stats.PublishErrors != 0 {
		t.Errorf("online cell hit %d publish errors", on.Stats.PublishErrors)
	}
	if frozen.Stats.Feedback != 0 || frozen.Stats.Snapshots != 0 {
		t.Errorf("frozen cell ran a trainer: %+v", frozen.Stats)
	}
	// Serving must not pay for training: identical schedules, so the
	// whole-run p99s are directly comparable.
	if res.P99Ratio > 1.2 {
		t.Errorf("online p99 %v is %.2fx frozen p99 %v; bar is 1.20x",
			on.P99, res.P99Ratio, frozen.P99)
	}
}
