package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/router"
	"hdcedge/internal/serve"
)

// The chaos ablation: a fixed open-loop request stream against a 4-node
// fleet behind the routing tier, with node-grade failures injected at the
// server boundary — one node crashed outright, one gray-slow (answering
// correctly at 8x latency, the failure mode liveness checks never catch).
// Three cells isolate what each resilience layer buys: the healthy fleet
// as the goodput reference, chaos with failover-only routing, and chaos
// with hedged requests on top. The acceptance bar is the hedged cell
// holding at least MinChaosGoodputFrac of the healthy fleet's goodput
// with a quarter of the fleet dead and another quarter gray.

// ChaosNodes is the fleet size behind the router.
const ChaosNodes = 4

// ChaosLoad is the offered load as a multiple of a single node's paced
// capacity — about 40% of the healthy fleet, comfortably above what two
// nodes plus change must absorb once chaos removes capacity.
const ChaosLoad = 1.5

// ChaosSpec is the injected failure set: node 0 crashed, node 1 gray-slow
// at 8x latency.
const ChaosSpec = "0:crash,1:slow=8"

// MinChaosGoodputFrac is the acceptance bar: hedged goodput under chaos
// as a fraction of the healthy fleet's.
const MinChaosGoodputFrac = 0.70

// ChaosPoint is one scenario cell.
type ChaosPoint struct {
	Scenario string
	Chaos    string // injected chaos spec, "" for the healthy baseline
	Hedged   bool

	Offered          int
	Completed        int
	Shed             int
	DeadlineExceeded int
	Failed           int

	Failovers     int
	HedgesFired   int
	HedgesWon     int
	HedgesWasted  int
	Transitions   int
	DownNodes     int // nodes the health machine holds down at the end
	DegradedNodes int

	P50, P99   time.Duration // router-observed completed latency
	GoodputRPS float64       // completions per wall-clock second
}

// Settled is the requests with exactly one recorded outcome.
func (p ChaosPoint) Settled() int {
	return p.Completed + p.Shed + p.DeadlineExceeded + p.Failed
}

// ChaosResult is the full scenario sweep.
type ChaosResult struct {
	Dataset string
	Nodes   int
	Service time.Duration
	Load    float64
	Points  []ChaosPoint
}

// AblationChaos runs the chaos scenario sweep.
func AblationChaos(cfg Config) (*ChaosResult, error) {
	p, cm, ds, err := overloadModel(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos model: %w", err)
	}
	const (
		service = 4 * time.Millisecond
		perNode = 100 // offered requests per fleet node
	)
	scenarios := []struct {
		name  string
		chaos string
		hedge bool
	}{
		{"healthy", "", false},
		{"chaos, failover only", ChaosSpec, false},
		{"chaos + hedging", ChaosSpec, true},
	}
	res := &ChaosResult{Dataset: "ISOLET", Nodes: ChaosNodes, Service: service, Load: ChaosLoad}
	for _, sc := range scenarios {
		pt, err := chaosCell(p, cm, ds, cfg, sc.name, sc.chaos, sc.hedge, service, perNode*ChaosNodes)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos cell %q: %w", sc.name, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// chaosCell drives the open-loop stream against one router scenario.
func chaosCell(p pipeline.Platform, cm *edgetpu.CompiledModel, ds *dataset.Dataset,
	cfg Config, name, chaosSpec string, hedge bool, service time.Duration, n int) (ChaosPoint, error) {
	plans, err := router.ParseChaos(chaosSpec, cfg.Seed+100)
	if err != nil {
		return ChaosPoint{}, err
	}
	nodes := make([]serve.Node, ChaosNodes)
	for i := range nodes {
		policy := pipeline.DefaultRecoveryPolicy()
		policy.Seed = cfg.Seed + 1 + uint64(i)*17 // decorrelate node jitter streams
		s, err := serve.New(p, cm, serve.Config{
			Devices:         1,
			QueueCapacity:   4,
			DefaultDeadline: 250 * time.Millisecond,
			DrainDeadline:   2 * time.Second,
			Policy:          policy,
			PacePerInvoke:   service,
			PaceScale:       1,
		})
		if err != nil {
			return ChaosPoint{}, err
		}
		if plan, ok := plans[i]; ok {
			cn, err := router.NewChaosNode(s, i, plan)
			if err != nil {
				return ChaosPoint{}, err
			}
			nodes[i] = cn
		} else {
			nodes[i] = s
		}
	}
	r, err := router.New(nodes, router.Config{
		ProbeInterval:      25 * time.Millisecond,
		ProbeTimeout:       100 * time.Millisecond,
		ProbeFailThreshold: 2,
		DegradedLatency:    15 * time.Millisecond,
		ProbeFill:          overloadFill(ds, 0),
		// A fixed hedge delay of 3 service intervals: a request stalled on
		// the gray-slow node (~8 intervals) is re-issued long before the
		// stall resolves, while the healthy-path p99 never triggers it.
		Hedge: router.HedgeConfig{Enabled: hedge, Delay: 3 * service},
	})
	if err != nil {
		return ChaosPoint{}, err
	}

	// The same open-loop arrival stream for every scenario: paced against
	// absolute deadlines (see overloadCell) at ChaosLoad x one node's
	// capacity, so chaos changes what the fleet can absorb, not what is
	// asked of it.
	interarrival := time.Duration(float64(service) / ChaosLoad)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interarrival)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Sheds and deadline misses are tolerated outcomes under
			// chaos; hard failures surface in the report, checked below.
			r.Do(context.Background(), overloadFill(ds, i), nil)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := r.Drain(context.Background()); err != nil {
		return ChaosPoint{}, err
	}
	rep := r.Report()
	pt := ChaosPoint{
		Scenario:         name,
		Chaos:            chaosSpec,
		Hedged:           hedge,
		Offered:          rep.Submitted,
		Completed:        rep.Completed,
		Shed:             rep.Shed,
		DeadlineExceeded: rep.DeadlineExceeded,
		Failed:           rep.Failed + rep.Cancelled,
		Failovers:        rep.Failovers,
		HedgesFired:      rep.HedgesFired,
		HedgesWon:        rep.HedgesWon,
		HedgesWasted:     rep.HedgesWasted,
		Transitions:      rep.Transitions,
		P50:              rep.P50,
		P99:              rep.P99,
		GoodputRPS:       float64(rep.Completed) / elapsed.Seconds(),
	}
	for _, nr := range rep.Nodes {
		switch nr.State {
		case router.NodeDown:
			pt.DownNodes++
		case router.NodeDegraded:
			pt.DegradedNodes++
		}
	}
	return pt, nil
}

// RenderAblationChaos prints the sweep.
func RenderAblationChaos(w io.Writer, res *ChaosResult) {
	t := &metrics.Table{
		Title: fmt.Sprintf(
			"Chaos ablation: %d-node fleet behind the router, %.1fx single-node open-loop load on %s (service %v + 1x simulated cost; chaos %q)",
			res.Nodes, res.Load, res.Dataset, res.Service, ChaosSpec),
		Headers: []string{"Scenario", "Offered", "Completed", "Shed", "Deadline", "Failed",
			"Failovers", "Hedges", "Won", "Wasted", "Down", "Degraded", "p50", "p99", "Goodput"},
	}
	for _, pt := range res.Points {
		t.AddRow(
			pt.Scenario,
			fmt.Sprintf("%d", pt.Offered),
			fmt.Sprintf("%d", pt.Completed),
			fmt.Sprintf("%d", pt.Shed),
			fmt.Sprintf("%d", pt.DeadlineExceeded),
			fmt.Sprintf("%d", pt.Failed),
			fmt.Sprintf("%d", pt.Failovers),
			fmt.Sprintf("%d", pt.HedgesFired),
			fmt.Sprintf("%d", pt.HedgesWon),
			fmt.Sprintf("%d", pt.HedgesWasted),
			fmt.Sprintf("%d", pt.DownNodes),
			fmt.Sprintf("%d", pt.DegradedNodes),
			metrics.FmtDur(pt.P50),
			metrics.FmtDur(pt.P99),
			fmt.Sprintf("%.0f/s", pt.GoodputRPS),
		)
	}
	fprintf(w, "%s\n", t)
}
