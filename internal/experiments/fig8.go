package experiments

import (
	"fmt"
	"io"
	"time"

	"hdcedge/internal/bagging"
	"hdcedge/internal/dataset"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
)

// Fig8Point is one (α, β) setting of the bagging parameter search on
// ISOLET: fused-model accuracy (functional) and modeled training runtime
// normalized to α = β = 1.
type Fig8Point struct {
	DatasetRatio float64 // α
	FeatureRatio float64 // β
	Accuracy     float64
	Runtime      time.Duration
	Normalized   float64
}

// Fig8Alphas and Fig8Betas are the searched grids.
var (
	Fig8Alphas = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	Fig8Betas  = []float64{0.4, 0.6, 0.8, 1.0}
)

// Fig8 sweeps the dataset-sampling ratio (with β = 1) and the
// feature-sampling ratio (with α = 0.6) on ISOLET at 6 iterations,
// mirroring the paper's search.
func Fig8(cfg Config) ([]Fig8Point, error) {
	train, test, err := loadSplit("ISOLET", cfg)
	if err != nil {
		return nil, err
	}
	spec, err := dataset.CatalogSpec("ISOLET")
	if err != nil {
		return nil, err
	}
	w := pipeline.FromSpec(spec, cfg.Epochs)
	tpu := pipeline.EdgeTPU()

	evalPoint := func(alpha, beta float64) (Fig8Point, error) {
		bcfg := bagging.DefaultConfig()
		bcfg.Dim = cfg.FunctionalDim
		bcfg.DatasetRatio = alpha
		bcfg.FeatureRatio = beta
		bcfg.Seed = cfg.Seed
		ens, _, err := bagging.Train(train, bcfg)
		if err != nil {
			return Fig8Point{}, err
		}
		acc := ens.Accuracy(test)

		modelCfg := bcfg
		modelCfg.Dim = w.Dim // runtime modeled at full width
		bb, err := pipeline.BaggingTraining(tpu, w, modelCfg, nil)
		if err != nil {
			return Fig8Point{}, err
		}
		return Fig8Point{
			DatasetRatio: alpha, FeatureRatio: beta,
			Accuracy: acc, Runtime: bb.Total(),
		}, nil
	}

	var points []Fig8Point
	for _, alpha := range Fig8Alphas {
		p, err := evalPoint(alpha, 1.0)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig8 α=%v: %w", alpha, err)
		}
		points = append(points, p)
	}
	for _, beta := range Fig8Betas {
		if beta == 1.0 {
			continue // already covered by the α sweep's endpoint pattern
		}
		p, err := evalPoint(0.6, beta)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig8 β=%v: %w", beta, err)
		}
		points = append(points, p)
	}

	// Normalize runtimes to the α = β = 1 point.
	var base time.Duration
	for _, p := range points {
		if p.DatasetRatio == 1.0 && p.FeatureRatio == 1.0 {
			base = p.Runtime
		}
	}
	for i := range points {
		points[i].Normalized = float64(points[i].Runtime) / float64(base)
	}
	return points, nil
}

// RenderFig8 prints the ratio search.
func RenderFig8(w io.Writer, points []Fig8Point) {
	t := &metrics.Table{
		Title:   "Fig 8: Bagging ratio search on ISOLET (runtime normalized to α=1, β=1)",
		Headers: []string{"α (dataset)", "β (feature)", "Accuracy", "Norm. runtime"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%.1f", p.DatasetRatio), fmt.Sprintf("%.1f", p.FeatureRatio),
			metrics.FmtPct(p.Accuracy), fmt.Sprintf("%.3f", p.Normalized))
	}
	fprintf(w, "%s\n", t)
}
