package experiments

import (
	"fmt"
	"io"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
)

// Fig10Point is one synthetic feature count's encoding runtime comparison.
type Fig10Point struct {
	Features  int
	CPUEncode time.Duration
	TPUEncode time.Duration
	Speedup   float64
}

// Fig10Features is the sweep grid, spanning the paper's 20–700 range.
var Fig10Features = []int{20, 50, 100, 200, 300, 400, 500, 600, 700}

// Fig10 models training-set encoding runtime on synthetic datasets with
// varying input feature counts (10,000 samples each, d = 10,000).
func Fig10(cfg Config) ([]Fig10Point, error) {
	cpu := pipeline.CPUBaseline()
	tpu := pipeline.EdgeTPU()
	var points []Fig10Point
	for _, n := range Fig10Features {
		spec := dataset.SyntheticSpec(n, 10000, 8, cfg.Seed)
		w := pipeline.FromSpec(spec, cfg.Epochs)
		cb, err := pipeline.CPUTraining(cpu.Host, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig10 n=%d: %w", n, err)
		}
		tb, err := pipeline.TPUTraining(tpu, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig10 n=%d: %w", n, err)
		}
		points = append(points, Fig10Point{
			Features:  n,
			CPUEncode: cb.Encode,
			TPUEncode: tb.Encode,
			Speedup:   metrics.Speedup(cb.Encode, tb.Encode),
		})
	}
	return points, nil
}

// RenderFig10 prints the encoding scalability sweep.
func RenderFig10(w io.Writer, points []Fig10Point) {
	t := &metrics.Table{
		Title:   "Fig 10: Encoding runtime speedup on TPU vs CPU baseline by feature count",
		Headers: []string{"# Features", "CPU encode", "TPU encode", "Speedup"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprint(p.Features), metrics.FmtDur(p.CPUEncode),
			metrics.FmtDur(p.TPUEncode), metrics.FmtX(p.Speedup))
	}
	fprintf(w, "%s\n", t)
}
