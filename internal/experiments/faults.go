package experiments

import (
	"fmt"
	"io"
	"time"

	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
)

// The fault-rate × recovery-policy sweep: how much reliability costs on the
// co-design pipeline. Transient faults (link timeouts, device resets) are
// absorbed exactly by the resilient runtime — same trained model, same
// predictions — so the transient sweep reports pure time overhead. Parameter
// SEUs corrupt resident inference weights between reloads, so that sweep
// reports the accuracy degradation band instead.

// TransientFaultRates is the link-error sweep grid; each point also injects
// resets at a tenth of the link rate.
var TransientFaultRates = []float64{0.02, 0.05, 0.10, 0.20}

// SEURates is the per-bit upset sweep grid for resident inference weights.
var SEURates = []float64{1e-6, 1e-5, 1e-4}

// FaultRow is one sweep point.
type FaultRow struct {
	LinkRate  float64
	ResetRate float64
	SEURate   float64

	Accuracy   float64
	DeviceTime time.Duration
	Report     pipeline.ReliabilityReport
}

// OverheadFrac is the reliability overhead relative to useful device time.
func (r FaultRow) OverheadFrac(baseline time.Duration) float64 {
	if baseline <= 0 {
		return 0
	}
	return float64(r.Report.Overhead()+r.Report.FallbackTime) / float64(baseline)
}

// FaultsResult is the full study.
type FaultsResult struct {
	Dataset          string
	BaselineAccuracy float64
	BaselineTime     time.Duration
	InferBaselineAcc float64
	Transient        []FaultRow // training under link faults + resets
	SEU              []FaultRow // inference under parameter upsets
}

// AblationFaults runs both sweeps on ISOLET with the default recovery policy.
func AblationFaults(cfg Config) (*FaultsResult, error) {
	train, test, err := loadSplit("ISOLET", cfg)
	if err != nil {
		return nil, err
	}
	p := pipeline.EdgeTPU()
	tc := hdc.TrainConfig{
		Dim: cfg.FunctionalDim, Epochs: cfg.Epochs, LearningRate: 1,
		Nonlinear: true, Seed: cfg.Seed,
	}
	policy := pipeline.DefaultRecoveryPolicy()
	policy.Seed = cfg.Seed + 1

	// Healthy baseline: what training costs with no faults injected.
	base, err := pipeline.TrainOnDevice(p, train, tc)
	if err != nil {
		return nil, fmt.Errorf("experiments: faults baseline: %w", err)
	}
	res := &FaultsResult{
		Dataset:          "ISOLET",
		BaselineAccuracy: base.Model.Accuracy(test),
		BaselineTime:     base.DeviceTime.Total(),
	}

	// Transient sweep: train under link faults and resets. The resilient
	// runtime replays every failed batch, so accuracy must hold at the
	// baseline; the interesting number is the time overhead.
	for _, rate := range TransientFaultRates {
		plan := edgetpu.FaultPlan{
			Seed:          cfg.Seed + uint64(1e6*rate),
			LinkErrorRate: rate,
			ResetRate:     rate / 10,
		}
		fr, report, err := pipeline.TrainOnDeviceResilient(p, train, tc, plan, policy)
		if err != nil {
			return nil, fmt.Errorf("experiments: faults transient %.2f: %w", rate, err)
		}
		res.Transient = append(res.Transient, FaultRow{
			LinkRate:   rate,
			ResetRate:  rate / 10,
			Accuracy:   fr.Model.Accuracy(test),
			DeviceTime: fr.DeviceTime.Total(),
			Report:     *report,
		})
	}

	// SEU sweep: infer with the healthy model while resident weights take
	// seeded bit upsets. Accuracy degrades gracefully with the rate.
	healthyPreds, _, err := pipeline.InferOnDevice(p, base.Model, test, train, pipeline.DefaultInferBatch)
	if err != nil {
		return nil, fmt.Errorf("experiments: faults infer baseline: %w", err)
	}
	res.InferBaselineAcc = metrics.Accuracy(healthyPreds, test.Y)
	for _, rate := range SEURates {
		plan := edgetpu.FaultPlan{Seed: cfg.Seed + 31, BitFlipRate: rate}
		preds, timing, report, err := pipeline.InferOnDeviceResilient(
			p, base.Model, test, train, pipeline.DefaultInferBatch, plan, policy)
		if err != nil {
			return nil, fmt.Errorf("experiments: faults SEU %g: %w", rate, err)
		}
		res.SEU = append(res.SEU, FaultRow{
			SEURate:    rate,
			Accuracy:   metrics.Accuracy(preds, test.Y),
			DeviceTime: timing.Total(),
			Report:     *report,
		})
	}
	return res, nil
}

// RenderAblationFaults prints both sweeps.
func RenderAblationFaults(w io.Writer, res *FaultsResult) {
	t1 := &metrics.Table{
		Title: fmt.Sprintf("Fault tolerance: training under transient faults (%s, baseline %s in %v)",
			res.Dataset, metrics.FmtPct(res.BaselineAccuracy), res.BaselineTime.Round(time.Millisecond)),
		Headers: []string{"Link rate", "Reset rate", "Accuracy", "Device time", "Overhead", "Retries", "Reloads", "Fallbacks"},
	}
	for _, r := range res.Transient {
		t1.AddRow(
			fmt.Sprintf("%.2f", r.LinkRate),
			fmt.Sprintf("%.3f", r.ResetRate),
			metrics.FmtPct(r.Accuracy),
			r.DeviceTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", 100*r.OverheadFrac(res.BaselineTime)),
			fmt.Sprintf("%d", r.Report.Retries),
			fmt.Sprintf("%d", r.Report.Reloads),
			fmt.Sprintf("%d", r.Report.FallbackInvokes),
		)
	}
	fprintf(w, "%s\n", t1)

	t2 := &metrics.Table{
		Title: fmt.Sprintf("Fault tolerance: inference under parameter SEUs (%s, healthy %s)",
			res.Dataset, metrics.FmtPct(res.InferBaselineAcc)),
		Headers: []string{"Bit-flip rate", "Accuracy", "Device time"},
	}
	for _, r := range res.SEU {
		t2.AddRow(
			fmt.Sprintf("%.0e", r.SEURate),
			metrics.FmtPct(r.Accuracy),
			r.DeviceTime.Round(time.Millisecond).String(),
		)
	}
	fprintf(w, "%s\n", t2)
}
