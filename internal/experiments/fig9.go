package experiments

import (
	"fmt"
	"io"
	"time"

	"hdcedge/internal/bagging"
	"hdcedge/internal/dataset"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
)

// Fig9Point is one iteration-count setting of the bagging search on
// ISOLET: fused accuracy and modeled update-phase runtime normalized to
// 8 iterations.
type Fig9Point struct {
	Iterations int
	Accuracy   float64
	Update     time.Duration
	Normalized float64
}

// Fig9 sweeps the sub-model training iterations 3–8 with α = 0.6, β = 1.
func Fig9(cfg Config) ([]Fig9Point, error) {
	train, test, err := loadSplit("ISOLET", cfg)
	if err != nil {
		return nil, err
	}
	spec, err := dataset.CatalogSpec("ISOLET")
	if err != nil {
		return nil, err
	}
	w := pipeline.FromSpec(spec, cfg.Epochs)
	tpu := pipeline.EdgeTPU()

	var points []Fig9Point
	for iters := 3; iters <= 8; iters++ {
		bcfg := bagging.DefaultConfig()
		bcfg.Dim = cfg.FunctionalDim
		bcfg.Iterations = iters
		bcfg.Seed = cfg.Seed
		ens, _, err := bagging.Train(train, bcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig9 I'=%d: %w", iters, err)
		}
		modelCfg := bcfg
		modelCfg.Dim = w.Dim
		bb, err := pipeline.BaggingTraining(tpu, w, modelCfg, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig9 I'=%d: %w", iters, err)
		}
		points = append(points, Fig9Point{
			Iterations: iters,
			Accuracy:   ens.Accuracy(test),
			Update:     bb.Update,
		})
	}
	base := points[len(points)-1].Update // 8 iterations
	for i := range points {
		points[i].Normalized = float64(points[i].Update) / float64(base)
	}
	return points, nil
}

// RenderFig9 prints the iteration sweep.
func RenderFig9(w io.Writer, points []Fig9Point) {
	t := &metrics.Table{
		Title:   "Fig 9: Bagging iterations on ISOLET (update runtime normalized to 8 iterations)",
		Headers: []string{"Iterations", "Accuracy", "Norm. update runtime"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprint(p.Iterations), metrics.FmtPct(p.Accuracy), fmt.Sprintf("%.3f", p.Normalized))
	}
	fprintf(w, "%s\n", t)
}
