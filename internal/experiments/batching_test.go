package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestBatchingAmortizesAtSaturation checks the PR's acceptance bar: the
// zero-window batched path is bit-identical to single-row invokes, and at 4×
// the batch-1 capacity a MaxBatch ≥ 8 server completes at least 2× the
// requests per second of the batch-1 server while its admitted p99 stays
// inside the request deadline. Throughput is a wall-clock measurement on a
// shared host, so the ratio gets a bounded retry; everything structural is
// asserted on every attempt.
func TestBatchingAmortizesAtSaturation(t *testing.T) {
	skipLongUnderRace(t)
	const attempts = 3
	var res *BatchingResult
	for try := 1; ; try++ {
		var err error
		res, err = AblationBatching(fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		if tail := checkBatchingResult(t, res); tail == "" {
			break
		} else if try == attempts {
			t.Fatalf("after %d attempts: %s", attempts, tail)
		} else {
			t.Logf("attempt %d: %s (scheduler noise; retrying)", try, tail)
		}
	}
	var buf bytes.Buffer
	RenderAblationBatching(&buf, res)
	if !strings.Contains(buf.String(), "Micro-batching") || !strings.Contains(buf.String(), "4.0x") {
		t.Fatalf("render missing content:\n%s", buf.String())
	}
}

// checkBatchingResult asserts everything deterministic about one sweep and
// returns a non-empty description if only a wall-clock bound failed.
func checkBatchingResult(t *testing.T, res *BatchingResult) string {
	t.Helper()
	if !res.BitIdentical {
		t.Fatal("zero-window batched path is not bit-identical to single-row invokes")
	}
	wantPoints := len(BatchingLoads) * (1 + (len(BatchingMaxBatches)-1)*len(BatchingWindows))
	if len(res.Points) != wantPoints {
		t.Fatalf("%d sweep points, want %d", len(res.Points), wantPoints)
	}
	saturated := map[int]BatchingPoint{}
	for _, pt := range res.Points {
		if pt.Offered == 0 || pt.Admitted != pt.Completed+pt.DeadlineExceeded {
			t.Fatalf("cell b=%d %.1fx does not balance: %+v", pt.MaxBatch, pt.Load, pt)
		}
		if pt.Admitted+pt.Shed != pt.Offered {
			t.Fatalf("cell b=%d %.1fx admission does not balance: %+v", pt.MaxBatch, pt.Load, pt)
		}
		if pt.MaxBatch == 1 && pt.MeanOccupancy > 1 {
			t.Fatalf("batch-1 cell reports occupancy %.2f: %+v", pt.MeanOccupancy, pt)
		}
		// The acceptance comparison uses the windowed cells (batch-1 only
		// runs at a zero window — it has nothing to wait for).
		if pt.Load == 4 && (pt.MaxBatch == 1 || pt.Window == res.Window) {
			saturated[pt.MaxBatch] = pt
		}
	}
	base, ok := saturated[1]
	if !ok {
		t.Fatal("sweep missing the batch-1 saturated cell")
	}
	for _, mb := range BatchingMaxBatches {
		pt, ok := saturated[mb]
		if !ok {
			t.Fatalf("sweep missing the b=%d saturated cell", mb)
		}
		if mb < 8 {
			continue
		}
		// The load-4 arrival rate overruns the batch-1 capacity, so the
		// coalescer must be running multi-row invokes here.
		if pt.MeanOccupancy < 1.5 {
			return fmt.Sprintf("b=%d saturated occupancy %.2f, want >= 1.5", mb, pt.MeanOccupancy)
		}
		if pt.ThroughputRPS < 2*base.ThroughputRPS {
			return fmt.Sprintf("b=%d saturated throughput %.0f/s < 2x batch-1 %.0f/s",
				mb, pt.ThroughputRPS, base.ThroughputRPS)
		}
		if pt.P99 > res.Deadline {
			return fmt.Sprintf("b=%d saturated admitted p99 %v exceeds deadline %v",
				mb, pt.P99, res.Deadline)
		}
	}
	return ""
}
