package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/integrity"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/serve"
	"hdcedge/internal/tensor"
)

// The SEU ablation: a fixed request stream against a single-device server
// whose resident int8 parameters take seeded single-event upsets on every
// invoke, swept across upset rates and defense levels. Three defense cells
// isolate what each integrity layer buys: no defense (corruption
// accumulates in SRAM for the whole run), canaries only (known-answer
// checks catch gross damage and repair by model reload — but only damage
// big enough to move the canary rows), and full self-heal (checksum
// scrubbing catches every flipped bit and repairs by segment re-upload,
// escalating through the ladder if that fails). The acceptance bars: with
// no defense the top upset rate costs real accuracy, while full self-heal
// stays within SEUSelfHealDropPts of the clean baseline at every rate and
// closes every incident it opens.

// SEUDefenseRates are the swept per-bit, per-invoke upset probabilities. At the
// model's ~4 Mbit resident image the low rate flips a handful of bits per
// invoke, the high rate hundreds — enough to visibly bend accuracy over a
// few hundred invokes if nobody repairs the damage.
var SEUDefenseRates = []float64{1e-5, 1e-4}

// SEURequests is the request stream length per cell.
const SEURequests = 320

// SEUSelfHealDropPts is the acceptance bar for the full-defense cell:
// accuracy within this many points of the clean baseline at every rate.
const SEUSelfHealDropPts = 1.0

// SEUNoDefenseDropPts is how much accuracy the undefended cell must lose
// at the top swept rate for the injection to count as a real threat.
const SEUNoDefenseDropPts = 5.0

// SEUPoint is one (rate, defense) cell.
type SEUPoint struct {
	Scenario string  // defense level
	Rate     float64 // per-bit per-invoke upset probability, 0 for clean

	Requests int
	Correct  int
	Accuracy float64 // percent of requests classified correctly

	// Integrity accounting, all zero for the undefended cells.
	Scrubs, Corruptions        int
	CanaryRuns, CanaryFailures int
	Incidents, Repaired        int
	Restores, Reloads          int
	Resets, Quarantines        int
	MeanTTR, MaxTTR            time.Duration // wall-clock time to repair
	RepairSim                  time.Duration // simulated cost of repair traffic
}

// SEUResult is the full sweep.
type SEUResult struct {
	Dataset string
	Rates   []float64
	Points  []SEUPoint
}

// Clean returns the fault-free baseline cell.
func (r *SEUResult) Clean() SEUPoint { return r.Points[0] }

// Cell returns the named defense cell at one rate.
func (r *SEUResult) Cell(scenario string, rate float64) (SEUPoint, bool) {
	for _, pt := range r.Points {
		if pt.Scenario == scenario && pt.Rate == rate {
			return pt, true
		}
	}
	return SEUPoint{}, false
}

// AblationSEU runs the SEU-rate × defense-level sweep.
func AblationSEU(cfg Config) (*SEUResult, error) {
	p, cm, ds, err := overloadModel(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: seu model: %w", err)
	}
	canaries, err := seuCanaries(cm, ds, 4)
	if err != nil {
		return nil, fmt.Errorf("experiments: seu canaries: %w", err)
	}
	res := &SEUResult{Dataset: "ISOLET", Rates: SEUDefenseRates}
	clean, err := seuCell(p, cm, ds, cfg, "clean", 0, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: seu clean cell: %w", err)
	}
	res.Points = append(res.Points, clean)
	for _, rate := range SEUDefenseRates {
		cells := []struct {
			name string
			pol  *integrity.Policy
		}{
			{"no defense", nil},
			{"canary only", &integrity.Policy{
				CanaryInterval: 500 * time.Microsecond,
				Canaries:       canaries,
			}},
			{"self-heal", &integrity.Policy{
				ScrubInterval:  200 * time.Microsecond,
				CanaryInterval: time.Millisecond,
				Canaries:       canaries,
			}},
		}
		for _, c := range cells {
			pt, err := seuCell(p, cm, ds, cfg, c.name, rate, c.pol)
			if err != nil {
				return nil, fmt.Errorf("experiments: seu cell %q rate %g: %w", c.name, rate, err)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// seuCanaries records golden answers for the first confidently-classified
// dataset rows through the compiled graph.
func seuCanaries(cm *edgetpu.CompiledModel, ds *dataset.Dataset, n int) ([]integrity.Canary, error) {
	feat := ds.Features()
	limit := 8 * n
	if limit > ds.Samples() {
		limit = ds.Samples()
	}
	rows := make([][]float32, limit)
	for i := range rows {
		rows[i] = ds.X.F32[i*feat : (i+1)*feat]
	}
	all, err := integrity.BuildCanaries(cm.Model, rows)
	if err != nil {
		return nil, err
	}
	var picked []integrity.Canary
	for _, c := range all {
		if c.Margin > 0 && len(picked) < n {
			picked = append(picked, c)
		}
	}
	if len(picked) == 0 {
		if len(all) > n {
			all = all[:n]
		}
		return all, nil
	}
	return picked, nil
}

// seuCell drives the request stream against one defense configuration and
// scores every prediction against the dataset labels.
func seuCell(p pipeline.Platform, cm *edgetpu.CompiledModel, ds *dataset.Dataset,
	cfg Config, name string, rate float64, pol *integrity.Policy) (SEUPoint, error) {
	policy := pipeline.DefaultRecoveryPolicy()
	policy.Seed = cfg.Seed + 31
	s, err := serve.New(p, cm, serve.Config{
		Devices:   1,
		Policy:    policy,
		Plan:      edgetpu.FaultPlan{Seed: cfg.Seed + 911, BitFlipRate: rate},
		Integrity: pol,
	})
	if err != nil {
		return SEUPoint{}, err
	}
	defer s.Close()

	pt := SEUPoint{Scenario: name, Rate: rate, Requests: SEURequests}
	for i := 0; i < SEURequests; i++ {
		row := i % ds.Samples()
		pred := -1
		if _, err := s.Do(context.Background(), overloadFill(ds, i), func(out *tensor.Tensor) {
			pred = int(out.I32[0])
		}); err != nil {
			return SEUPoint{}, fmt.Errorf("request %d: %w", i, err)
		}
		if pred == ds.Y[row] {
			pt.Correct++
		}
		// Brief idle windows so interval timers fire even when the
		// sequential stream would otherwise keep the worker saturated.
		if i%16 == 15 {
			time.Sleep(300 * time.Microsecond)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		return SEUPoint{}, fmt.Errorf("drain: %w", err)
	}
	pt.Accuracy = 100 * float64(pt.Correct) / float64(pt.Requests)
	if g := s.Report().Integrity; g != nil {
		pt.Scrubs, pt.Corruptions = g.Scrubs, g.Corruptions
		pt.CanaryRuns, pt.CanaryFailures = g.CanaryRuns, g.CanaryFailures
		pt.Incidents, pt.Repaired = g.Incidents, g.Repaired
		pt.Restores, pt.Reloads = g.Restores, g.Reloads
		pt.Resets, pt.Quarantines = g.Resets, g.Quarantines
		pt.RepairSim = g.RepairSimTime
		if g.TimeToRepair != nil && g.TimeToRepair.Count() > 0 {
			pt.MeanTTR = g.TimeToRepair.Mean()
			pt.MaxTTR = g.TimeToRepair.Max()
		}
	}
	return pt, nil
}

// RenderAblationSEU prints the sweep.
func RenderAblationSEU(w io.Writer, res *SEUResult) {
	clean := res.Clean()
	t := &metrics.Table{
		Title: fmt.Sprintf(
			"SEU ablation: single-device serving on %s, %d requests per cell, upset rates %v per bit per invoke",
			res.Dataset, SEURequests, res.Rates),
		Headers: []string{"Defense", "Rate", "Accuracy", "vs clean",
			"Scrubs", "Corrupt", "Canaries", "Failures",
			"Reupload", "Reload", "Reset", "Quar", "TTR mean", "Repair sim"},
	}
	for _, pt := range res.Points {
		rate := "0"
		if pt.Rate > 0 {
			rate = fmt.Sprintf("%.0e", pt.Rate)
		}
		t.AddRow(
			pt.Scenario,
			rate,
			fmt.Sprintf("%.1f%%", pt.Accuracy),
			fmt.Sprintf("%+.1f", pt.Accuracy-clean.Accuracy),
			fmt.Sprintf("%d", pt.Scrubs),
			fmt.Sprintf("%d", pt.Corruptions),
			fmt.Sprintf("%d", pt.CanaryRuns),
			fmt.Sprintf("%d", pt.CanaryFailures),
			fmt.Sprintf("%d", pt.Restores),
			fmt.Sprintf("%d", pt.Reloads),
			fmt.Sprintf("%d", pt.Resets),
			fmt.Sprintf("%d", pt.Quarantines),
			metrics.FmtDur(pt.MeanTTR),
			metrics.FmtDur(pt.RepairSim),
		)
	}
	fprintf(w, "%s\n", t)
}
