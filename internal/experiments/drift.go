package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/online"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/registry"
	"hdcedge/internal/rng"
	"hdcedge/internal/serve"
	"hdcedge/internal/tensor"
)

// The drift ablation closes the online-learning loop under load: a
// registry-mode server runs at full utilization (closed-loop clients ==
// devices) while the live stream's feature distribution is permuted
// mid-run — the classic sensor-rewiring shift that collapses a frozen
// model to near-chance. Two cells replay the identical request schedule:
//
//   - frozen: no trainer; the pre-shift model serves the whole run.
//   - online+regen: every completed request feeds its ground-truth label
//     back through online.Trainer.Offer; the trainer adapts a private
//     copy, the drift detector notices the accuracy collapse and triggers
//     dimension regeneration + replay refinement, and each snapshot is
//     hot-swapped into the registry for workers to bind.
//
// The quality bars: the online cell's trailing-round accuracy recovers to
// within 2 points of its own pre-shift baseline, the frozen cell stays at
// least 8 points down, and the online cell's end-to-end p99 stays within
// 1.2x the frozen cell's — training is host-side and snapshot publication
// is an atomic pointer swap, so serving never blocks on learning.

// DriftRound is one measured pass over the live stream.
type DriftRound struct {
	Round    int // 0 is the pre-shift baseline pass
	Shifted  bool
	Requests int
	Accuracy float64
}

// DriftCell is one configuration's full run.
type DriftCell struct {
	Cell     string // "frozen", "online+regen"
	Baseline float64
	Final    float64 // trailing-round accuracy after the shift
	Rounds   []DriftRound
	P99      time.Duration
	Stats    online.Stats // zero-valued for the frozen cell
}

// DriftResult is the ablation: the same shifted workload with and
// without the feedback trainer.
type DriftResult struct {
	Dataset     string
	Devices     int
	Service     time.Duration
	ShiftRounds int

	Frozen DriftCell
	Online DriftCell

	// RecoveryGap is the online cell's baseline minus its trailing-round
	// accuracy (bar: <= 0.02). FrozenGap is the same for the frozen cell
	// (bar: >= 0.08). P99Ratio is online p99 over frozen p99 on the
	// identical schedule (bar: <= 1.2).
	RecoveryGap float64
	FrozenGap   float64
	P99Ratio    float64
}

// Full-load shape: as many closed-loop clients as paced devices, so the
// fleet runs at 100% utilization and any training-induced stall would
// surface directly in the latency tail. The pace is coarse enough that
// OS scheduling jitter stays small against the 1.2x p99 ratio.
const (
	driftDevices = 2
	driftService = 8 * time.Millisecond
	driftRounds  = 5
	// driftFeedbackEvery samples the feedback stream: 1 in N completed
	// requests reports its ground truth (the -feedback-rate knob of
	// cmd/hdc-serve).
	driftFeedbackEvery = 1
)

// AblationDrift runs both cells on the same seeded shift.
func AblationDrift(cfg Config) (*DriftResult, error) {
	train, test, err := loadSplit("ISOLET", cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: drift split: %w", err)
	}
	model, _, err := hdc.Train(train, nil, hdc.TrainConfig{
		Dim: cfg.FunctionalDim, Epochs: cfg.Epochs, LearningRate: 1,
		Nonlinear: true, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: drift train: %w", err)
	}
	shifted := permuteColumns(test, cfg.Seed+13)

	res := &DriftResult{
		Dataset:     "ISOLET",
		Devices:     driftDevices,
		Service:     driftService,
		ShiftRounds: driftRounds,
	}
	// The online trainer sees feedback from every completed request. The
	// window/buffer are sized to the stream: the detector fires within a
	// fraction of one round of the shift, and the replay ring has turned
	// over to mostly-shifted samples by the time a regeneration's cooldown
	// elapses, so refinement works from the new distribution.
	ocfg := &online.Config{
		SnapshotEvery:  64,
		DriftWindow:    32,
		RegenCooldown:  64,
		Buffer:         256,
		RegenFraction:  0.2,
		RegenEpochs:    5,
		DriftThreshold: 0.15,
		Seed:           cfg.Seed + 1,
	}
	res.Frozen, err = driftCell(cfg, "frozen", model, train, test, shifted, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: drift frozen cell: %w", err)
	}
	res.Online, err = driftCell(cfg, "online+regen", model, train, test, shifted, ocfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: drift online cell: %w", err)
	}
	res.RecoveryGap = res.Online.Baseline - res.Online.Final
	res.FrozenGap = res.Frozen.Baseline - res.Frozen.Final
	if res.Frozen.P99 > 0 {
		res.P99Ratio = float64(res.Online.P99) / float64(res.Frozen.P99)
	}
	return res, nil
}

// driftCell serves the baseline pass and then driftRounds shifted passes
// against one configuration. A nil online config runs the frozen cell
// through the identical code path — the nil trainer's methods are no-ops,
// which is exactly the "online learning off" production wiring.
func driftCell(cfg Config, name string, model *hdc.Model, train, test, shifted *dataset.Dataset,
	ocfg *online.Config) (DriftCell, error) {
	p := pipeline.EdgeTPU()
	cm, err := pipeline.CompileInference(p, model, train, 1)
	if err != nil {
		return DriftCell{}, err
	}
	g := registry.New()
	if _, err := g.Register("m", cm, nil); err != nil {
		return DriftCell{}, err
	}
	policy := pipeline.DefaultRecoveryPolicy()
	policy.Seed = cfg.Seed + 1
	met := metrics.NewRegistry()
	s, err := serve.New(p, nil, serve.Config{
		Devices:       driftDevices,
		Policy:        policy,
		Registry:      g,
		Metrics:       met,
		PacePerInvoke: driftService,
		DrainDeadline: 30 * time.Second,
	})
	if err != nil {
		return DriftCell{}, err
	}
	defer s.Close()

	tr, err := online.New(p, g, ocfg, met)
	if err != nil {
		return DriftCell{}, err
	}
	if tr != nil {
		if err := tr.Attach("m", model, train); err != nil {
			return DriftCell{}, err
		}
		if err := tr.Start(); err != nil {
			return DriftCell{}, err
		}
	}
	defer tr.Close()

	cell := DriftCell{Cell: name}
	run := func(round int, ds *dataset.Dataset, isShifted bool) error {
		acc, err := driftPass(s, tr, ds)
		if err != nil {
			return err
		}
		cell.Rounds = append(cell.Rounds, DriftRound{
			Round: round, Shifted: isShifted, Requests: ds.Samples(), Accuracy: acc,
		})
		// Sequence rounds against the trainer so round r+1 serves a model
		// that has absorbed round r's feedback (flush publishes updates
		// still below the SnapshotEvery threshold); within a round the
		// trainer runs fully concurrent with serving.
		tr.Quiesce()
		tr.Flush()
		return nil
	}
	if err := run(0, test, false); err != nil {
		return DriftCell{}, err
	}
	for r := 1; r <= driftRounds; r++ {
		if err := run(r, shifted, true); err != nil {
			return DriftCell{}, err
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		return DriftCell{}, err
	}
	rep := s.Report()
	if rep.Failed > 0 || rep.Completed != rep.Submitted {
		return DriftCell{}, fmt.Errorf("cell dropped work: %d/%d completed, %d failed",
			rep.Completed, rep.Submitted, rep.Failed)
	}
	cell.Baseline = cell.Rounds[0].Accuracy
	cell.Final = cell.Rounds[len(cell.Rounds)-1].Accuracy
	cell.P99 = rep.Latency.Quantile(0.99)
	cell.Stats = tr.Stats()
	return cell, nil
}

// driftPass streams one full pass of ds through the server, closed-loop
// with driftDevices clients, feeding each completed request's ground
// truth back to the trainer from the Consume callback — the production
// wiring, where Offer must never block the serving path.
func driftPass(s *serve.Server, tr *online.Trainer, ds *dataset.Dataset) (float64, error) {
	n := ds.Features()
	preds := make([]int32, ds.Samples())
	var wg sync.WaitGroup
	errs := make(chan error, driftDevices)
	for c := 0; c < driftDevices; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < ds.Samples(); i += driftDevices {
				row := ds.X.F32[i*n : (i+1)*n]
				label := ds.Y[i]
				report := i%driftFeedbackEvery == 0
				_, err := s.Submit(context.Background(), serve.Request{
					Fill: func(in *tensor.Tensor) { copy(in.F32, row) },
					Consume: func(out *tensor.Tensor) {
						preds[i] = out.I32[0]
						if report {
							tr.Offer(online.Feedback{Features: row, Label: label})
						}
					},
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, err
	}
	correct := 0
	for i, p := range preds {
		if int(p) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds)), nil
}

// permuteColumns returns a copy of ds with its feature columns permuted
// by a fixed seeded shuffle — the injected distribution shift.
func permuteColumns(ds *dataset.Dataset, seed uint64) *dataset.Dataset {
	perm := rng.New(seed).Perm(ds.Features())
	out := &dataset.Dataset{
		Name:    ds.Name + "-shifted",
		Classes: ds.Classes,
		X:       ds.X.Clone(),
		Y:       append([]int(nil), ds.Y...),
	}
	for i := 0; i < ds.Samples(); i++ {
		src := ds.X.Row(i)
		dst := out.X.Row(i)
		for j, pj := range perm {
			dst[j] = src[pj]
		}
	}
	return out
}

// RenderAblationDrift prints both cells' recovery curves and the bars.
func RenderAblationDrift(w io.Writer, res *DriftResult) {
	t := &metrics.Table{
		Title: fmt.Sprintf(
			"Drift recovery: feature-permutation shift on %s at full load (%d devices, service %v, %d post-shift rounds)",
			res.Dataset, res.Devices, res.Service, res.ShiftRounds),
		Headers: []string{"Cell", "Baseline", "Rounds (post-shift accuracy)", "Final", "p99", "Snapshots", "Regens"},
	}
	for _, c := range []DriftCell{res.Frozen, res.Online} {
		curve := ""
		for _, r := range c.Rounds {
			if !r.Shifted {
				continue
			}
			if curve != "" {
				curve += " "
			}
			curve += fmt.Sprintf("%.3f", r.Accuracy)
		}
		t.AddRow(
			c.Cell,
			fmt.Sprintf("%.3f", c.Baseline),
			curve,
			fmt.Sprintf("%.3f", c.Final),
			metrics.FmtDur(c.P99),
			fmt.Sprintf("%d", c.Stats.Snapshots),
			fmt.Sprintf("%d", c.Stats.Regens),
		)
	}
	fprintf(w, "%s\n", t)
	fprintf(w, "online recovery gap: %.3f (bar <= 0.020); frozen gap: %.3f (bar >= 0.080); online p99 %.2fx frozen (bar <= 1.20x)\n",
		res.RecoveryGap, res.FrozenGap, res.P99Ratio)
}
