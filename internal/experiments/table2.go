package experiments

import (
	"fmt"
	"io"

	"hdcedge/internal/bagging"
	"hdcedge/internal/dataset"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
)

// TableIIRow is one dataset's speedup of the proposed Edge-TPU platform
// over the Raspberry Pi 3 (Table II).
type TableIIRow struct {
	Dataset          string
	TrainingSpeedup  float64
	InferenceSpeedup float64
}

// TableII models full training and inference on the Pi and divides by the
// proposed platform's (bagging) training and (fused-model) inference.
func TableII(cfg Config) ([]TableIIRow, error) {
	pi := pipeline.RaspberryPi()
	tpu := pipeline.EdgeTPU()
	bcfg := bagging.DefaultConfig()
	var rows []TableIIRow
	for _, name := range DatasetNames() {
		spec, err := dataset.CatalogSpec(name)
		if err != nil {
			return nil, err
		}
		w := pipeline.FromSpec(spec, cfg.Epochs)
		piTrain, err := pipeline.CPUTraining(pi.Host, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: tableII %s: %w", name, err)
		}
		ourTrain, err := pipeline.BaggingTraining(tpu, w, bcfg, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: tableII %s: %w", name, err)
		}
		piInf, err := pipeline.CPUInference(pi.Host, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: tableII %s: %w", name, err)
		}
		ourInf, err := pipeline.TPUInference(tpu, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: tableII %s: %w", name, err)
		}
		rows = append(rows, TableIIRow{
			Dataset:          name,
			TrainingSpeedup:  metrics.Speedup(piTrain.Total(), ourTrain.Total()),
			InferenceSpeedup: metrics.Speedup(piInf, ourInf),
		})
	}
	return rows, nil
}

// MeanSpeedups returns the averages the paper's abstract quotes
// (19.4x training, 8.9x inference).
func MeanSpeedups(rows []TableIIRow) (train, inf float64) {
	for _, r := range rows {
		train += r.TrainingSpeedup
		inf += r.InferenceSpeedup
	}
	n := float64(len(rows))
	return train / n, inf / n
}

// RenderTableII prints the Pi comparison.
func RenderTableII(w io.Writer, rows []TableIIRow) {
	t := &metrics.Table{
		Title:   "Table II: Edge TPU-based efficiency vs. Raspberry Pi 3",
		Headers: []string{"", "FACE", "ISOLET", "UCIHAR", "MNIST", "PAMAP2", "Mean"},
	}
	trainCells := []string{"Training"}
	infCells := []string{"Inference"}
	for _, r := range rows {
		trainCells = append(trainCells, metrics.FmtX(r.TrainingSpeedup))
		infCells = append(infCells, metrics.FmtX(r.InferenceSpeedup))
	}
	mt, mi := MeanSpeedups(rows)
	trainCells = append(trainCells, metrics.FmtX(mt))
	infCells = append(infCells, metrics.FmtX(mi))
	t.AddRow(trainCells...)
	t.AddRow(infCells...)
	fprintf(w, "%s\n", t)
}
