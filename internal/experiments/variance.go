package experiments

import (
	"fmt"
	"io"
	"math"

	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
)

// VarianceRow summarizes accuracy stability across random seeds for one
// dataset — base hypervectors, shuffling and generators all re-draw, so
// this is the run-to-run variance a user of the framework should expect.
type VarianceRow struct {
	Dataset    string
	Accuracies []float64
	Mean       float64
	Std        float64
}

// VarianceSeeds is how many independent runs the table averages.
const VarianceSeeds = 3

// TableVariance retrains the CPU float model under VarianceSeeds seeds
// per dataset.
func TableVariance(cfg Config) ([]VarianceRow, error) {
	var rows []VarianceRow
	for _, name := range DatasetNames() {
		train, test, err := loadSplit(name, cfg)
		if err != nil {
			return nil, err
		}
		row := VarianceRow{Dataset: name}
		for s := 0; s < VarianceSeeds; s++ {
			m, _, err := hdc.Train(train, nil, hdc.TrainConfig{
				Dim: cfg.FunctionalDim, Epochs: cfg.Epochs, LearningRate: 1,
				Nonlinear: true, Seed: cfg.Seed + uint64(100*s) + 1,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: variance %s seed %d: %w", name, s, err)
			}
			row.Accuracies = append(row.Accuracies, m.Accuracy(test))
		}
		for _, a := range row.Accuracies {
			row.Mean += a
		}
		row.Mean /= float64(len(row.Accuracies))
		for _, a := range row.Accuracies {
			row.Std += (a - row.Mean) * (a - row.Mean)
		}
		row.Std = math.Sqrt(row.Std / float64(len(row.Accuracies)))
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTableVariance prints the stability table.
func RenderTableVariance(w io.Writer, rows []VarianceRow) {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Seed stability: accuracy over %d independent runs", VarianceSeeds),
		Headers: []string{"Dataset", "Mean", "Std", "Runs"},
	}
	for _, r := range rows {
		runs := ""
		for i, a := range r.Accuracies {
			if i > 0 {
				runs += " "
			}
			runs += metrics.FmtPct(a)
		}
		t.AddRow(r.Dataset, metrics.FmtPct(r.Mean), fmt.Sprintf("%.2f pts", 100*r.Std), runs)
	}
	fprintf(w, "%s\n", t)
}
