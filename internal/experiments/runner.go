package experiments

import (
	"fmt"
	"io"
)

// Runner names used by RunOne and the hdc-bench command.
var AllExperiments = []string{
	"table1", "fig4", "fig5", "fig6", "fig7", "table2", "fig8", "fig9", "fig10",
	"table-energy",
	"ablation-encoding", "ablation-fused", "ablation-subwidth", "ablation-batch",
	"ablation-robustness", "ablation-online", "ablation-binary",
	"ablation-encoder-compare", "ablation-link", "ablation-dim", "ablation-overlap",
	"ablation-scaleout", "ablation-faults", "ablation-overload", "ablation-batching",
	"ablation-fleet", "ablation-chaos", "ablation-seu",
	"ablation-binhd", "ablation-multitenant", "ablation-drift",
	"table-variance",
}

// RunOne executes the named experiment and renders it to w.
func RunOne(name string, cfg Config, w io.Writer) error {
	switch name {
	case "table1":
		rows, err := TableI()
		if err != nil {
			return err
		}
		RenderTableI(w, rows)
	case "fig4":
		series, err := Fig4(cfg)
		if err != nil {
			return err
		}
		RenderFig4(w, series)
	case "fig5":
		rows, err := Fig5(cfg, nil)
		if err != nil {
			return err
		}
		RenderFig5(w, rows)
	case "fig6":
		rows, err := Fig6(cfg)
		if err != nil {
			return err
		}
		RenderFig6(w, rows)
	case "fig7":
		rows, err := Fig7(cfg)
		if err != nil {
			return err
		}
		RenderFig7(w, rows)
	case "table2":
		rows, err := TableII(cfg)
		if err != nil {
			return err
		}
		RenderTableII(w, rows)
	case "fig8":
		points, err := Fig8(cfg)
		if err != nil {
			return err
		}
		RenderFig8(w, points)
	case "fig9":
		points, err := Fig9(cfg)
		if err != nil {
			return err
		}
		RenderFig9(w, points)
	case "fig10":
		points, err := Fig10(cfg)
		if err != nil {
			return err
		}
		RenderFig10(w, points)
	case "table-variance":
		rows, err := TableVariance(cfg)
		if err != nil {
			return err
		}
		RenderTableVariance(w, rows)
	case "table-energy":
		rows, err := TableEnergy(cfg)
		if err != nil {
			return err
		}
		RenderTableEnergy(w, rows)
	case "ablation-robustness":
		res, err := AblationRobustness(cfg)
		if err != nil {
			return err
		}
		RenderAblationRobustness(w, res)
	case "ablation-encoding":
		rows, err := AblationEncoding(cfg)
		if err != nil {
			return err
		}
		RenderAblationEncoding(w, rows)
	case "ablation-fused":
		rows, err := AblationFusedVsSerial(cfg)
		if err != nil {
			return err
		}
		RenderAblationFusedVsSerial(w, rows)
	case "ablation-subwidth":
		rows, err := AblationSubWidth(cfg)
		if err != nil {
			return err
		}
		RenderAblationSubWidth(w, rows)
	case "ablation-batch":
		points, err := AblationBatch(cfg)
		if err != nil {
			return err
		}
		RenderAblationBatch(w, points)
	case "ablation-encoder-compare":
		rows, err := AblationEncoderCompare(cfg)
		if err != nil {
			return err
		}
		RenderAblationEncoderCompare(w, rows)
	case "ablation-overlap":
		rows, err := AblationOverlap(cfg)
		if err != nil {
			return err
		}
		RenderAblationOverlap(w, rows)
	case "ablation-scaleout":
		points, err := AblationScaleOut(cfg)
		if err != nil {
			return err
		}
		RenderAblationScaleOut(w, points)
	case "ablation-dim":
		points, err := AblationDim(cfg)
		if err != nil {
			return err
		}
		RenderAblationDim(w, points)
	case "ablation-link":
		rows, err := AblationLink(cfg)
		if err != nil {
			return err
		}
		RenderAblationLink(w, rows)
	case "ablation-faults":
		res, err := AblationFaults(cfg)
		if err != nil {
			return err
		}
		RenderAblationFaults(w, res)
	case "ablation-overload":
		res, err := AblationOverload(cfg)
		if err != nil {
			return err
		}
		RenderAblationOverload(w, res)
	case "ablation-batching":
		res, err := AblationBatching(cfg)
		if err != nil {
			return err
		}
		RenderAblationBatching(w, res)
	case "ablation-fleet":
		res, err := AblationFleet(cfg)
		if err != nil {
			return err
		}
		RenderAblationFleet(w, res)
	case "ablation-chaos":
		res, err := AblationChaos(cfg)
		if err != nil {
			return err
		}
		RenderAblationChaos(w, res)
	case "ablation-seu":
		res, err := AblationSEU(cfg)
		if err != nil {
			return err
		}
		RenderAblationSEU(w, res)
	case "ablation-online":
		rows, err := AblationOnline(cfg)
		if err != nil {
			return err
		}
		RenderAblationOnline(w, rows)
	case "ablation-binary":
		rows, err := AblationBinary(cfg)
		if err != nil {
			return err
		}
		RenderAblationBinary(w, rows)
	case "ablation-binhd":
		res, err := AblationBinHD(cfg)
		if err != nil {
			return err
		}
		RenderAblationBinHD(w, res)
	case "ablation-multitenant":
		res, err := AblationMultiTenant(cfg)
		if err != nil {
			return err
		}
		RenderAblationMultiTenant(w, res)
	case "ablation-drift":
		res, err := AblationDrift(cfg)
		if err != nil {
			return err
		}
		RenderAblationDrift(w, res)
	default:
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, AllExperiments)
	}
	return nil
}

// RunAll executes every experiment in order. It runs Fig 4 first and
// feeds its measured per-epoch misclassification fractions into Fig 5's
// runtime model, as the paper's setup implies (the update-phase cost is
// whatever training actually did).
func RunAll(cfg Config, w io.Writer) error {
	fprintf(w, "=== fig4 ===\n")
	series, err := Fig4(cfg)
	if err != nil {
		return fmt.Errorf("experiments: fig4: %w", err)
	}
	RenderFig4(w, series)
	measured := map[string][]float64{}
	for _, s := range series {
		measured[s.Dataset] = s.UpdateFracs
	}
	for _, name := range AllExperiments {
		if name == "fig4" {
			continue
		}
		fprintf(w, "=== %s ===\n", name)
		if name == "fig5" {
			rows, err := Fig5(cfg, measured)
			if err != nil {
				return fmt.Errorf("experiments: fig5: %w", err)
			}
			RenderFig5(w, rows)
			continue
		}
		if err := RunOne(name, cfg, w); err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
	}
	return nil
}
