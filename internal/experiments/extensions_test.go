package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestAblationOnlineCompetitive(t *testing.T) {
	skipLongUnderRace(t)
	rows, err := AblationOnline(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.OnlineOne < r.Iterative-0.12 {
			t.Errorf("%s: single online pass %.3f collapsed vs iterative %.3f",
				r.Dataset, r.OnlineOne, r.Iterative)
		}
		if r.OnlineThree < r.OnlineOne-0.05 {
			t.Errorf("%s: extra passes hurt: %.3f -> %.3f", r.Dataset, r.OnlineOne, r.OnlineThree)
		}
	}
	var buf bytes.Buffer
	RenderAblationOnline(&buf, rows)
	if !strings.Contains(buf.String(), "Online") {
		t.Fatal("render missing columns")
	}
}

func TestAblationBinaryShrinks(t *testing.T) {
	skipLongUnderRace(t)
	rows, err := AblationBinary(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if got := float64(r.FloatBytes) / float64(r.PackedByte); got < 25 || got > 40 {
			t.Errorf("%s: shrink factor %.1f outside ~32x", r.Dataset, got)
		}
		if r.BinaryAcc < r.FloatAcc-0.10 {
			t.Errorf("%s: bipolar accuracy %.3f too far below float %.3f",
				r.Dataset, r.BinaryAcc, r.FloatAcc)
		}
	}
	var buf bytes.Buffer
	RenderAblationBinary(&buf, rows)
	if !strings.Contains(buf.String(), "bipolar") {
		t.Fatal("render missing columns")
	}
}

func TestRunnerKnowsExtensions(t *testing.T) {
	found := map[string]bool{}
	for _, name := range AllExperiments {
		found[name] = true
	}
	for _, want := range []string{"ablation-online", "ablation-binary", "ablation-robustness", "table-energy"} {
		if !found[want] {
			t.Errorf("experiment %q not registered", want)
		}
	}
}

func TestAblationEncoderCompareProjectionWins(t *testing.T) {
	skipLongUnderRace(t)
	rows, err := AblationEncoderCompare(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, r := range rows {
		if r.Projection >= r.IDLevel-0.02 {
			wins++
		}
	}
	if wins < 4 {
		t.Fatalf("projection won only %d/5 datasets", wins)
	}
	var buf bytes.Buffer
	RenderAblationEncoderCompare(&buf, rows)
	if !strings.Contains(buf.String(), "ID-level") {
		t.Fatal("render missing columns")
	}
}

func TestAblationLinkPCIeWins(t *testing.T) {
	cfg := fastCfg()
	cfg.Epochs = 20
	rows, err := AblationLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PCIe >= r.USB {
			t.Errorf("%s: PCIe (%v) not faster than USB (%v)", r.Dataset, r.PCIe, r.USB)
		}
	}
	// PAMAP2 is dominated by fixed link costs, so it must gain the most
	// from a faster link.
	var pamap2, mnist float64
	for _, r := range rows {
		switch r.Dataset {
		case "PAMAP2":
			pamap2 = r.Gain
		case "MNIST":
			mnist = r.Gain
		}
	}
	if pamap2 <= mnist {
		t.Errorf("PAMAP2 link gain %.2f not above MNIST's %.2f; fixed costs should dominate it", pamap2, mnist)
	}
	var buf bytes.Buffer
	RenderAblationLink(&buf, rows)
	if !strings.Contains(buf.String(), "PCIe") {
		t.Fatal("render missing columns")
	}
}

func TestRunOneJSONCoversEveryExperiment(t *testing.T) {
	for _, name := range AllExperiments {
		// Only verify the dispatch table is complete; running every
		// functional experiment here would be slow, so probe the cheap
		// runtime ones and check the error path for unknowns.
		switch name {
		case "table1", "fig5", "fig6", "table2", "fig10",
			"ablation-fused", "ablation-batch", "ablation-link",
			"ablation-overlap", "ablation-scaleout", "table-energy":
			rows, err := RunOneJSON(name, fastCfg())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if rows == nil {
				t.Fatalf("%s returned no rows", name)
			}
		}
	}
	if _, err := RunOneJSON("nope", fastCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestWriteJSONWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON("table1", fastCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc["experiment"] != "table1" {
		t.Fatalf("doc %v", doc)
	}
	rows, ok := doc["rows"].([]any)
	if !ok || len(rows) != 5 {
		t.Fatalf("rows %v", doc["rows"])
	}
}
