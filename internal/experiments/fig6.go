package experiments

import (
	"fmt"
	"io"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
)

// Fig6Row is one dataset's inference-runtime comparison. TPU_B equals the
// TPU setting by construction: the fused bagging model has the same
// dimensions as the single full model, which is the paper's zero-overhead
// claim — the row carries both so the renderer can show it.
type Fig6Row struct {
	Dataset string
	CPU     time.Duration
	TPU     time.Duration
	TPUB    time.Duration
}

// Speedup returns CPU / TPU_B.
func (r Fig6Row) Speedup() float64 { return metrics.Speedup(r.CPU, r.TPUB) }

// Fig6 models inference runtime over each dataset's full test split.
func Fig6(cfg Config) ([]Fig6Row, error) {
	cpu := pipeline.CPUBaseline()
	tpu := pipeline.EdgeTPU()
	var rows []Fig6Row
	for _, name := range DatasetNames() {
		spec, err := dataset.CatalogSpec(name)
		if err != nil {
			return nil, err
		}
		w := pipeline.FromSpec(spec, cfg.Epochs)
		ci, err := pipeline.CPUInference(cpu.Host, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6 %s: %w", name, err)
		}
		ti, err := pipeline.TPUInference(tpu, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6 %s: %w", name, err)
		}
		// The fused bagging model is dimension-identical to the full
		// model, so its modeled inference cost is the same invocation
		// stream.
		rows = append(rows, Fig6Row{Dataset: name, CPU: ci, TPU: ti, TPUB: ti})
	}
	return rows, nil
}

// RenderFig6 prints normalized inference runtimes.
func RenderFig6(w io.Writer, rows []Fig6Row) {
	t := &metrics.Table{
		Title:   "Fig 6: Inference runtime (normalized to CPU baseline per dataset)",
		Headers: []string{"Dataset", "CPU", "TPU", "TPU_B", "Speedup", "AbsCPU", "AbsTPU"},
	}
	for _, r := range rows {
		n := metrics.Normalize(r.CPU, r.CPU, r.TPU, r.TPUB)
		t.AddRow(r.Dataset,
			fmt.Sprintf("%.3f", n[0]), fmt.Sprintf("%.3f", n[1]), fmt.Sprintf("%.3f", n[2]),
			metrics.FmtX(r.Speedup()), metrics.FmtDur(r.CPU), metrics.FmtDur(r.TPUB))
	}
	fprintf(w, "%s\n", t)
}
