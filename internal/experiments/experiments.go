// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section IV). Each driver returns structured rows
// that the benchmark harness, the hdc-bench command, and the tests consume,
// plus a renderer that prints the same series the paper reports.
//
// Runtime artifacts (Figs 5, 6, 10, Table II) are modeled at the paper's
// full Table I scale through the platform cost models. Accuracy artifacts
// (Figs 4, 7, 8, 9) execute functionally on subsampled catalog datasets at
// a reduced hypervector width; Config controls that scale.
package experiments

import (
	"fmt"
	"io"

	"hdcedge/internal/dataset"
	"hdcedge/internal/rng"
)

// Config scales the functional (actually executed) parts of the suite.
type Config struct {
	// FunctionalSamples caps how many rows of each catalog dataset are
	// generated for functional runs.
	FunctionalSamples int
	// FunctionalDim is the hypervector width for functional runs.
	// Runtime models always use the paper's d = 10,000.
	FunctionalDim int
	// Epochs is the fully-trained iteration count (paper: 20).
	Epochs int
	// Seed drives every random choice in the suite.
	Seed uint64
}

// DefaultConfig returns the scale used by the benchmark harness: large
// enough for stable accuracy ordering, small enough to run in seconds per
// experiment.
func DefaultConfig() Config {
	return Config{
		FunctionalSamples: 1500,
		FunctionalDim:     2000,
		Epochs:            20,
		Seed:              7,
	}
}

// loadSplit generates the (possibly capped) catalog dataset and splits it.
func loadSplit(name string, cfg Config) (train, test *dataset.Dataset, err error) {
	spec, err := dataset.CatalogSpec(name)
	if err != nil {
		return nil, nil, err
	}
	ds, err := dataset.Generate(spec, cfg.FunctionalSamples)
	if err != nil {
		return nil, nil, err
	}
	train, test = ds.Split(0.25, rng.New(cfg.Seed^spec.Seed))
	return train, test, nil
}

// DatasetNames lists the catalog in the paper's order.
func DatasetNames() []string {
	names := make([]string, 0, 5)
	for _, s := range dataset.Catalog() {
		names = append(names, s.Name)
	}
	return names
}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
