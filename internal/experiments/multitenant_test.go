package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestMultiTenantAcceptanceBars pins the two tenancy claims:
//
//   - Isolation: the prod tenant's p99 under a 4x batch flood stays within
//     20% of its p99 running alone (strict priority + quotas), while the
//     fair-share cell shows the flood costing prod roughly half its
//     completions.
//   - Parameter memory: LRU eviction delivers at least 1.3x the pin-first
//     goodput when the working set is twice the on-chip budget and the hot
//     set rotates.
//
// Both bars are wall-clock, so the test skips under the race detector; the
// scheduler and eviction machinery themselves are race-tested in
// internal/serve (tenant-smoke runs the deterministic eviction and
// snapshot-monotonicity tests under -race).
func TestMultiTenantAcceptanceBars(t *testing.T) {
	skipLongUnderRace(t)
	res, err := AblationMultiTenant(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderAblationMultiTenant(&buf, res)
	t.Logf("\n%s", buf.String())
	if !strings.Contains(buf.String(), "priority+quota") {
		t.Error("render omits the isolation cells")
	}

	if len(res.Isolation) != 3 || len(res.Memory) != 2 {
		t.Fatalf("unexpected shape: %d isolation cells, %d memory cells",
			len(res.Isolation), len(res.Memory))
	}
	alone, guarded, fair := res.Isolation[0], res.Isolation[1], res.Isolation[2]

	// The alone cell must actually be overloaded — prod's own quota-bounded
	// queueing is what the flood is measured against.
	if alone.ProdShed == 0 {
		t.Errorf("alone cell shed nothing; prod is not past capacity (%+v)", alone)
	}
	if res.P99Degradation > 1.20 {
		t.Errorf("prod p99 degraded %.2fx under the flood (alone %v, flooded %v), bar is 1.20x",
			res.P99Degradation, alone.ProdP99, guarded.ProdP99)
	}
	// Priority must also protect prod's completions, not just its tail.
	if guarded.ProdCompleted < alone.ProdCompleted*9/10 {
		t.Errorf("flood cost prod completions under priority: %d alone vs %d flooded",
			alone.ProdCompleted, guarded.ProdCompleted)
	}
	// The fair-share cell is the contrast: without the priority edge the
	// flood claims roughly half the capacity prod was using.
	if fair.ProdCompleted >= alone.ProdCompleted*3/4 {
		t.Errorf("fair-share cell shows no contention: prod completed %d of %d alone",
			fair.ProdCompleted, alone.ProdCompleted)
	}
	if fair.BatchCompleted <= guarded.BatchCompleted {
		t.Errorf("flood gained nothing from losing priority: %d fair vs %d guarded batch completions",
			fair.BatchCompleted, guarded.BatchCompleted)
	}

	lru, pin := res.Memory[0], res.Memory[1]
	if lru.Completed != lru.Requests || pin.Completed != pin.Requests {
		t.Fatalf("closed-loop cells dropped work: lru %d/%d, pin %d/%d",
			lru.Completed, lru.Requests, pin.Completed, pin.Requests)
	}
	// Pin-first must be paying for the rotated hot set, and LRU must be
	// evicting rather than pinning — otherwise the goodput bar is vacuous.
	if pin.Misses <= lru.Misses {
		t.Errorf("pin-first missed %d times, LRU %d; rotation is not stressing the pin set",
			pin.Misses, lru.Misses)
	}
	if lru.Evictions == 0 {
		t.Error("LRU cell never evicted; budget is not below the working set")
	}
	if pin.Evictions != 0 {
		t.Errorf("pin-first cell evicted %d times", pin.Evictions)
	}
	if res.GoodputRatio < 1.3 {
		t.Errorf("LRU goodput %.0f/s is only %.2fx pin-first %.0f/s, bar is 1.30x",
			lru.Goodput, res.GoodputRatio, pin.Goodput)
	}
}
