//go:build race

package experiments

// raceDetectorEnabled reports whether this test binary was built with the
// race detector. The long functional sweeps skip themselves under race —
// they multiply a ~minute of single-core arithmetic by the detector's
// order-of-magnitude slowdown without exercising any concurrency; the
// concurrent machinery they sit on (bagging workers, the resilient runner)
// is race-tested in its own packages.
const raceDetectorEnabled = true
