package experiments

import (
	"strings"
	"testing"
	"time"

	"hdcedge/internal/pipeline"
)

func TestAblationFaultsSweep(t *testing.T) {
	skipLongUnderRace(t)
	cfg := fastCfg()
	res, err := AblationFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transient) != len(TransientFaultRates) || len(res.SEU) != len(SEURates) {
		t.Fatalf("sweep sizes: %d transient, %d SEU", len(res.Transient), len(res.SEU))
	}
	if res.BaselineAccuracy < 0.7 {
		t.Fatalf("baseline accuracy %.3f below sanity floor", res.BaselineAccuracy)
	}
	for i, r := range res.Transient {
		// Transient faults are absorbed exactly: the resilient run replays
		// each failed batch bit-exactly, so the trained model is identical.
		if r.Accuracy != res.BaselineAccuracy {
			t.Fatalf("transient point %d: accuracy %.4f diverged from baseline %.4f",
				i, r.Accuracy, res.BaselineAccuracy)
		}
		if r.Report.Retries == 0 {
			t.Fatalf("transient point %d (link %.2f) injected nothing: %+v", i, r.LinkRate, r.Report)
		}
		if r.DeviceTime <= res.BaselineTime {
			t.Fatalf("transient point %d: faulty time %v not above baseline %v",
				i, r.DeviceTime, res.BaselineTime)
		}
	}
	// Higher fault rates must cost strictly more recovery overhead.
	for i := 1; i < len(res.Transient); i++ {
		if res.Transient[i].Report.Overhead() <= res.Transient[i-1].Report.Overhead() {
			t.Fatalf("overhead not increasing with fault rate: %v then %v",
				res.Transient[i-1].Report.Overhead(), res.Transient[i].Report.Overhead())
		}
	}
	// SEUs degrade gracefully: every point completes, stays above chance
	// (ISOLET has 26 classes), and the lightest rate stays near healthy.
	for i, r := range res.SEU {
		if r.Accuracy < 0.2 {
			t.Fatalf("SEU point %d (rate %g): accuracy %.3f collapsed", i, r.SEURate, r.Accuracy)
		}
	}
	if res.SEU[0].Accuracy < res.InferBaselineAcc-0.05 {
		t.Fatalf("lightest SEU rate %g lost too much: %.3f vs healthy %.3f",
			res.SEU[0].SEURate, res.SEU[0].Accuracy, res.InferBaselineAcc)
	}
}

func TestAblationFaultsRenders(t *testing.T) {
	// Rendering is shape-only; a hand-built result avoids re-running the
	// full sweep.
	res := &FaultsResult{
		Dataset:          "ISOLET",
		BaselineAccuracy: 0.9,
		BaselineTime:     40 * time.Millisecond,
		InferBaselineAcc: 0.88,
		Transient: []FaultRow{{
			LinkRate: 0.05, ResetRate: 0.005, Accuracy: 0.9,
			DeviceTime: 46 * time.Millisecond,
			Report:     pipeline.ReliabilityReport{Retries: 7, Reloads: 1, BackoffTime: time.Millisecond},
		}},
		SEU: []FaultRow{{SEURate: 1e-5, Accuracy: 0.83, DeviceTime: 12 * time.Millisecond}},
	}
	var sb strings.Builder
	RenderAblationFaults(&sb, res)
	out := sb.String()
	for _, want := range []string{"transient faults", "parameter SEUs", "Retries", "Bit-flip rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}
