package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// fastCfg keeps functional experiment tests quick while preserving the
// qualitative shapes the assertions check.
func fastCfg() Config {
	return Config{FunctionalSamples: 900, FunctionalDim: 768, Epochs: 8, Seed: 7}
}

// skipLongUnderRace exempts the multi-second functional sweeps from
// race-detector runs: they are single-goroutine arithmetic that the
// detector slows by an order of magnitude without gaining coverage (the
// concurrent code they drive is race-tested in its own packages), and
// together they would blow the per-package test timeout on small machines.
func skipLongUnderRace(t *testing.T) {
	t.Helper()
	if raceDetectorEnabled {
		t.Skip("long functional sweep; skipped under the race detector")
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	rows, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Name != "FACE" || rows[0].Samples != 80854 {
		t.Fatalf("first row %+v", rows[0])
	}
	if rows[4].Name != "PAMAP2" || rows[4].Features != 27 {
		t.Fatalf("last row %+v", rows[4])
	}
	var buf bytes.Buffer
	RenderTableI(&buf, rows)
	if !strings.Contains(buf.String(), "ISOLET") {
		t.Fatal("render missing dataset")
	}
}

func TestFig4CurvesImprove(t *testing.T) {
	skipLongUnderRace(t)
	series, err := Fig4(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		last := len(s.TrainAccuracy) - 1
		if s.TrainAccuracy[last] <= s.TrainAccuracy[0] {
			t.Errorf("%s: training accuracy flat or falling (%.3f -> %.3f)",
				s.Dataset, s.TrainAccuracy[0], s.TrainAccuracy[last])
		}
		if s.ValidationAccuracy[last] < 0.5 {
			t.Errorf("%s: final validation accuracy %.3f too low", s.Dataset, s.ValidationAccuracy[last])
		}
		if len(s.UpdateFracs) != len(s.TrainAccuracy) {
			t.Errorf("%s: update fracs length mismatch", s.Dataset)
		}
	}
	var buf bytes.Buffer
	RenderFig4(&buf, series)
	if !strings.Contains(buf.String(), "valid:") {
		t.Fatal("render missing validation row")
	}
}

func TestFig5Shapes(t *testing.T) {
	cfg := fastCfg()
	cfg.Epochs = 20 // runtime model uses the paper's schedule
	rows, err := Fig5(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Dataset == "PAMAP2" {
			if s := r.EncodeSpeedup(); s > 1.5 {
				t.Errorf("PAMAP2 encode speedup %.2f; paper shows ~1x", s)
			}
			continue
		}
		if s := r.TotalSpeedupTPUB(); s < 1.5 {
			t.Errorf("%s: bagging training speedup %.2f too small", r.Dataset, s)
		}
		if r.TPUB.Total() >= r.TPU.Total() {
			t.Errorf("%s: TPU_B (%v) not faster than TPU (%v)", r.Dataset, r.TPUB.Total(), r.TPU.Total())
		}
		if s := r.EncodeSpeedup(); s < 3 {
			t.Errorf("%s: encode speedup %.2f too small", r.Dataset, s)
		}
	}
	// MNIST is the paper's best case (4.49x).
	for _, r := range rows {
		if r.Dataset == "MNIST" {
			if s := r.TotalSpeedupTPUB(); s < 3 || s > 7 {
				t.Errorf("MNIST bagging speedup %.2f outside [3,7] (paper: 4.49)", s)
			}
		}
	}
	var buf bytes.Buffer
	RenderFig5(&buf, rows)
	if !strings.Contains(buf.String(), "TPU_B") {
		t.Fatal("render missing TPU_B rows")
	}
	if len(fig5Durations(rows)) != 15 {
		t.Fatal("duration extraction wrong")
	}
}

func TestFig6Shapes(t *testing.T) {
	cfg := fastCfg()
	cfg.Epochs = 20
	rows, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TPU != r.TPUB {
			t.Errorf("%s: fused bagging model must cost the same as the full model", r.Dataset)
		}
		if r.Dataset == "PAMAP2" {
			if s := r.Speedup(); s > 1.3 {
				t.Errorf("PAMAP2 inference speedup %.2f; paper shows a regression", s)
			}
		} else if s := r.Speedup(); s < 2 || s > 6 {
			t.Errorf("%s: inference speedup %.2f outside [2,6] (paper: 2.1-4.2)", r.Dataset, s)
		}
	}
	var buf bytes.Buffer
	RenderFig6(&buf, rows)
	if !strings.Contains(buf.String(), "Speedup") {
		t.Fatal("render missing speedups")
	}
}

func TestFig7AccuracyPreserved(t *testing.T) {
	skipLongUnderRace(t)
	rows, err := Fig7(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TPU < r.CPU-0.04 {
			t.Errorf("%s: quantized accuracy %.3f too far below float %.3f", r.Dataset, r.TPU, r.CPU)
		}
		if r.TPUB < r.CPU-0.10 {
			t.Errorf("%s: bagging accuracy %.3f too far below full model %.3f", r.Dataset, r.TPUB, r.CPU)
		}
	}
	var buf bytes.Buffer
	RenderFig7(&buf, rows)
	if !strings.Contains(buf.String(), "TPU_B") {
		t.Fatal("render missing columns")
	}
}

func TestTableIIOrderOfMagnitude(t *testing.T) {
	cfg := fastCfg()
	cfg.Epochs = 20
	rows, err := TableII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mt, mi := MeanSpeedups(rows)
	// Paper: 19.4x training, 8.9x inference on average.
	if mt < 8 || mt > 35 {
		t.Errorf("mean training speedup %.1f outside [8,35]", mt)
	}
	if mi < 4 || mi > 20 {
		t.Errorf("mean inference speedup %.1f outside [4,20]", mi)
	}
	for _, r := range rows {
		if r.TrainingSpeedup < 5 {
			t.Errorf("%s: Pi training ratio %.1f implausibly low", r.Dataset, r.TrainingSpeedup)
		}
	}
	var buf bytes.Buffer
	RenderTableII(&buf, rows)
	if !strings.Contains(buf.String(), "Training") {
		t.Fatal("render missing rows")
	}
}

func TestFig8RatioSearch(t *testing.T) {
	skipLongUnderRace(t)
	points, err := Fig8(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Runtime must fall monotonically with α (β = 1 branch).
	var alphaPoints []Fig8Point
	for _, p := range points {
		if p.FeatureRatio == 1.0 {
			alphaPoints = append(alphaPoints, p)
		}
	}
	if len(alphaPoints) != len(Fig8Alphas) {
		t.Fatalf("%d α points", len(alphaPoints))
	}
	for i := 1; i < len(alphaPoints); i++ {
		if alphaPoints[i].Normalized <= alphaPoints[i-1].Normalized {
			t.Errorf("runtime not increasing with α at %v", alphaPoints[i].DatasetRatio)
		}
	}
	// The paper's chosen point α=0.6 runs in well under full-data time.
	for _, p := range alphaPoints {
		if p.DatasetRatio == 0.6 && (p.Normalized < 0.4 || p.Normalized > 0.9) {
			t.Errorf("α=0.6 normalized runtime %.3f outside [0.4,0.9] (paper: ~0.7)", p.Normalized)
		}
		if p.DatasetRatio == 1.0 && p.Normalized != 1.0 {
			t.Errorf("α=1 must normalize to 1, got %.3f", p.Normalized)
		}
	}
	// Feature sampling must NOT provide a meaningful runtime win — the
	// paper's reason for disabling it.
	for _, p := range points {
		if p.FeatureRatio < 1.0 && p.Normalized < 0.4 {
			t.Errorf("β=%v runtime %.3f suspiciously low; feature sampling shouldn't help this much",
				p.FeatureRatio, p.Normalized)
		}
	}
	var buf bytes.Buffer
	RenderFig8(&buf, points)
	if !strings.Contains(buf.String(), "α") {
		t.Fatal("render missing ratios")
	}
}

func TestFig9IterationSweep(t *testing.T) {
	skipLongUnderRace(t)
	points, err := Fig9(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("%d points", len(points))
	}
	if points[5].Normalized != 1.0 {
		t.Fatalf("8-iteration point normalizes to %.3f", points[5].Normalized)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Normalized <= points[i-1].Normalized {
			t.Errorf("update runtime not increasing with iterations at %d", points[i].Iterations)
		}
	}
	// The paper: 4-6 iterations save ~20% vs 8 with similar accuracy.
	mid := points[3] // 6 iterations
	if mid.Normalized > 0.95 {
		t.Errorf("6 iterations runtime %.3f saves nothing vs 8", mid.Normalized)
	}
	if mid.Accuracy < points[5].Accuracy-0.05 {
		t.Errorf("6-iteration accuracy %.3f collapsed vs 8-iteration %.3f", mid.Accuracy, points[5].Accuracy)
	}
	var buf bytes.Buffer
	RenderFig9(&buf, points)
	if !strings.Contains(buf.String(), "Iterations") {
		t.Fatal("render missing header")
	}
}

func TestFig10ShapeMatchesPaper(t *testing.T) {
	cfg := fastCfg()
	cfg.Epochs = 20
	points, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Features != 20 || points[len(points)-1].Features != 700 {
		t.Fatalf("sweep endpoints %d..%d", points[0].Features, points[len(points)-1].Features)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Speedup <= points[i-1].Speedup {
			t.Errorf("speedup not increasing at n=%d", points[i].Features)
		}
	}
	if s := points[0].Speedup; s > 1.5 {
		t.Errorf("n=20 speedup %.2f; paper: 1.06", s)
	}
	if s := points[len(points)-1].Speedup; s < 5 || s > 12 {
		t.Errorf("n=700 speedup %.2f; paper: 8.25", s)
	}
	var buf bytes.Buffer
	RenderFig10(&buf, points)
	if !strings.Contains(buf.String(), "700") {
		t.Fatal("render missing sweep")
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := RunOne("nope", fastCfg(), nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunOneRendersAllRuntimeExperiments(t *testing.T) {
	cfg := fastCfg()
	for _, name := range []string{"table1", "fig5", "fig6", "table2", "fig10", "ablation-fused", "ablation-batch"} {
		var buf bytes.Buffer
		if err := RunOne(name, cfg, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s rendered nothing", name)
		}
	}
}

func TestRunAllTinyScale(t *testing.T) {
	skipLongUnderRace(t)
	// Full runner coverage, including the Fig4→Fig5 measured-fraction
	// wiring; tiny scale keeps it tractable.
	if testing.Short() {
		t.Skip("full runner pass")
	}
	cfg := Config{FunctionalSamples: 500, FunctionalDim: 384, Epochs: 5, Seed: 3}
	var buf bytes.Buffer
	if err := RunAll(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range AllExperiments {
		if !strings.Contains(out, "=== "+name+" ===") {
			t.Errorf("RunAll output missing %s", name)
		}
	}
}
