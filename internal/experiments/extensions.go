package experiments

import (
	"fmt"
	"io"

	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
)

// This file holds the extension studies beyond the paper's evaluation:
// single-pass OnlineHD-style training (the paper's reference [17], a
// natural future-work direction for even cheaper host-side updates) and
// bipolar model quantization (the microcontroller-class deployment form).

// OnlineRow compares single-pass confidence-weighted training against the
// paper's 20-iteration perceptron on one dataset.
type OnlineRow struct {
	Dataset     string
	Iterative   float64 // fully-trained accuracy
	OnlineOne   float64 // one adaptive pass
	OnlineThree float64 // three adaptive passes
}

// AblationOnline runs both trainers on every catalog dataset.
func AblationOnline(cfg Config) ([]OnlineRow, error) {
	var rows []OnlineRow
	for _, name := range DatasetNames() {
		train, test, err := loadSplit(name, cfg)
		if err != nil {
			return nil, err
		}
		iter, _, err := hdc.Train(train, nil, hdc.TrainConfig{
			Dim: cfg.FunctionalDim, Epochs: cfg.Epochs, LearningRate: 1,
			Nonlinear: true, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: online %s: %w", name, err)
		}
		one, _, err := hdc.TrainOnline(train, cfg.FunctionalDim, 1, hdc.OnlineConfig{LearningRate: 1}, true, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: online %s: %w", name, err)
		}
		three, _, err := hdc.TrainOnline(train, cfg.FunctionalDim, 3, hdc.OnlineConfig{LearningRate: 1}, true, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: online %s: %w", name, err)
		}
		one.Metric = hdc.CosineSimilarity
		three.Metric = hdc.CosineSimilarity
		rows = append(rows, OnlineRow{
			Dataset:     name,
			Iterative:   iter.Accuracy(test),
			OnlineOne:   one.Accuracy(test),
			OnlineThree: three.Accuracy(test),
		})
	}
	return rows, nil
}

// RenderAblationOnline prints the comparison.
func RenderAblationOnline(w io.Writer, rows []OnlineRow) {
	t := &metrics.Table{
		Title:   "Extension: single-pass OnlineHD-style training vs iterative perceptron",
		Headers: []string{"Dataset", "Iterative (20it)", "Online (1 pass)", "Online (3 passes)"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, metrics.FmtPct(r.Iterative), metrics.FmtPct(r.OnlineOne), metrics.FmtPct(r.OnlineThree))
	}
	fprintf(w, "%s\n", t)
}

// BinaryRow compares the float model against its bipolar quantization.
type BinaryRow struct {
	Dataset    string
	FloatAcc   float64
	BinaryAcc  float64
	FloatBytes int
	PackedByte int
}

// AblationBinary quantizes trained models to bipolar form per dataset.
func AblationBinary(cfg Config) ([]BinaryRow, error) {
	var rows []BinaryRow
	for _, name := range DatasetNames() {
		train, test, err := loadSplit(name, cfg)
		if err != nil {
			return nil, err
		}
		m, _, err := hdc.Train(train, nil, hdc.TrainConfig{
			Dim: cfg.FunctionalDim, Epochs: cfg.Epochs, LearningRate: 1,
			Nonlinear: true, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: binary %s: %w", name, err)
		}
		bm := m.Binarize()
		preds := bm.PredictBatch(test.X)
		rows = append(rows, BinaryRow{
			Dataset:    name,
			FloatAcc:   m.Accuracy(test),
			BinaryAcc:  metrics.Accuracy(preds, test.Y),
			FloatBytes: m.K() * m.Dim() * 4,
			PackedByte: bm.Bytes(),
		})
	}
	return rows, nil
}

// RenderAblationBinary prints the quantization comparison.
func RenderAblationBinary(w io.Writer, rows []BinaryRow) {
	t := &metrics.Table{
		Title:   "Extension: bipolar (1-bit) class hypervectors vs float",
		Headers: []string{"Dataset", "float acc", "bipolar acc", "float bytes", "packed bytes", "shrink"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, metrics.FmtPct(r.FloatAcc), metrics.FmtPct(r.BinaryAcc),
			fmt.Sprint(r.FloatBytes), fmt.Sprint(r.PackedByte),
			metrics.FmtX(float64(r.FloatBytes)/float64(r.PackedByte)))
	}
	fprintf(w, "%s\n", t)
}

// EncoderCompareRow compares the paper's non-linear projection encoding
// against the classic record-based (ID–level) encoding. Only the
// projection form maps to the accelerator (it is a matmul); ID–level
// binding is element-wise with a per-value gather, so it stays on the
// CPU — the comparison quantifies what the co-design choice gives up
// (nothing) and gains (delegability).
type EncoderCompareRow struct {
	Dataset    string
	Projection float64
	IDLevel    float64
}

// AblationEncoderCompare trains both encoders on every catalog dataset.
func AblationEncoderCompare(cfg Config) ([]EncoderCompareRow, error) {
	var rows []EncoderCompareRow
	for _, name := range DatasetNames() {
		train, test, err := loadSplit(name, cfg)
		if err != nil {
			return nil, err
		}
		proj, _, err := hdc.Train(train, nil, hdc.TrainConfig{
			Dim: cfg.FunctionalDim, Epochs: cfg.Epochs, LearningRate: 1,
			Nonlinear: true, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: encoder-compare %s: %w", name, err)
		}
		idl, _, err := hdc.TrainIDLevel(train, hdc.IDLevelConfig{
			Dim: cfg.FunctionalDim, Levels: 32, Epochs: cfg.Epochs, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: encoder-compare %s: %w", name, err)
		}
		rows = append(rows, EncoderCompareRow{
			Dataset:    name,
			Projection: proj.Accuracy(test),
			IDLevel:    idl.Accuracy(test),
		})
	}
	return rows, nil
}

// RenderAblationEncoderCompare prints the comparison.
func RenderAblationEncoderCompare(w io.Writer, rows []EncoderCompareRow) {
	t := &metrics.Table{
		Title:   "Extension: projection (TPU-mappable) vs ID-level (CPU-only) encoding",
		Headers: []string{"Dataset", "projection", "ID-level", "Δ"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, metrics.FmtPct(r.Projection), metrics.FmtPct(r.IDLevel),
			fmt.Sprintf("%+.1f pts", 100*(r.Projection-r.IDLevel)))
	}
	fprintf(w, "%s\n", t)
}
