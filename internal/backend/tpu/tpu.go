// Package tpu adapts the Edge TPU simulator (internal/edgetpu) to the
// backend.Backend seam: one simulated device with one loaded compiled
// model, fault plan included. A healthy, fault-free instance is a
// zero-overhead pass-through — its Invoke timing is bit-identical to
// driving the device directly.
package tpu

import (
	"context"
	"time"

	"hdcedge/internal/backend"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/metrics"
	"hdcedge/internal/tensor"
)

// Name is the backend class name TPU instances report.
const Name = "tpu"

// Backend drives one simulated Edge TPU device. Not safe for concurrent
// use, like the device it wraps.
type Backend struct {
	dev *edgetpu.Device
	cm  *edgetpu.CompiledModel

	// Live telemetry handles; nil until Instrument is called.
	liveInvokes *metrics.Counter
	liveSim     *metrics.LiveHistogram

	// SetupTime is the initial LoadModel cost (model transfer plus, for
	// resident models, the parameter upload).
	SetupTime time.Duration
}

// New creates a device for cfg, loads cm, and arms the fault plan.
func New(cfg edgetpu.Config, cm *edgetpu.CompiledModel, plan edgetpu.FaultPlan) (*Backend, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	dev := edgetpu.NewDevice(cfg)
	setup, err := dev.LoadModel(cm)
	if err != nil {
		return nil, err
	}
	if err := dev.InjectFaults(plan); err != nil {
		return nil, err
	}
	return &Backend{dev: dev, cm: cm, SetupTime: setup}, nil
}

// Name implements backend.Backend.
func (b *Backend) Name() string { return Name }

// Caps implements backend.Backend.
func (b *Backend) Caps() backend.Caps {
	return backend.Caps{
		BatchCapacity: b.cm.BatchCapacity(),
		RowSliceable:  b.cm.Model.RowSliceable(),
		Accelerated:   true,
	}
}

// Instrument streams per-invoke telemetry into reg: an attempt counter and
// a histogram of simulated invoke time for successful attempts. labels is
// an inline Prometheus label set (e.g. `worker="0",backend="tpu"`) appended
// to each metric name so a fleet of backends shares one registry without
// colliding.
func (b *Backend) Instrument(reg *metrics.Registry, labels string) {
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	b.liveInvokes = reg.Counter("hdc_backend_invokes_total" + suffix)
	b.liveSim = reg.Histogram("hdc_backend_invoke_sim_seconds" + suffix)
}

// observe records one invoke attempt in the live telemetry (when armed) and
// passes the result through unchanged.
func (b *Backend) observe(t backend.Timing, err error) (backend.Timing, error) {
	if b.liveInvokes != nil {
		b.liveInvokes.Inc()
		if err == nil {
			b.liveSim.Observe(t.Total())
		}
	}
	return t, err
}

// Device exposes the wrapped simulator device (for tests and fault-stat
// readers).
func (b *Backend) Device() *edgetpu.Device { return b.dev }

// CompiledModel returns the loaded compiled model.
func (b *Backend) CompiledModel() *edgetpu.CompiledModel { return b.cm }

// Input implements backend.Backend.
func (b *Backend) Input(i int) *tensor.Tensor { return b.dev.Input(i) }

// Output implements backend.Backend.
func (b *Backend) Output(i int) *tensor.Tensor { return b.dev.Output(i) }

// Invoke implements backend.Backend.
func (b *Backend) Invoke() (backend.Timing, error) { return b.observe(b.dev.Invoke()) }

// InvokeCtx implements backend.Backend.
func (b *Backend) InvokeCtx(ctx context.Context) (backend.Timing, error) {
	return b.observe(b.dev.InvokeCtx(ctx))
}

// InvokeBatch implements backend.Backend.
func (b *Backend) InvokeBatch(rows int) (backend.Timing, error) {
	return b.observe(b.dev.InvokeBatch(rows))
}

// InvokeBatchCtx implements backend.Backend.
func (b *Backend) InvokeBatchCtx(ctx context.Context, rows int) (backend.Timing, error) {
	return b.observe(b.dev.InvokeBatchCtx(ctx, rows))
}

// EstimateInvoke implements backend.Backend.
func (b *Backend) EstimateInvoke() (backend.Timing, error) { return b.dev.EstimateInvoke() }

// EstimateInvokeBatch implements backend.Backend.
func (b *Backend) EstimateInvokeBatch(rows int) (backend.Timing, error) {
	return b.dev.EstimateInvokeBatch(rows)
}

// Reset re-loads the compiled model, clearing a reset or poisoned device
// exactly as the resilient runtime's reload path always has. The returned
// duration is the LoadModel repayment.
func (b *Backend) Reset() (time.Duration, error) {
	return b.dev.LoadModel(b.cm)
}
