// Package backend defines the execution-backend seam of the co-design
// runtime: one interface over "something that can invoke the compiled
// model and price the invocation", implemented by the Edge TPU simulator
// (internal/backend/tpu) and the host CPU interpreter
// (internal/backend/hostcpu).
//
// The paper's whole premise is a split across heterogeneous silicon —
// encoding on an Edge-TPU-class accelerator, class-vector updates on the
// host CPU — so the host is a peer execution engine, not a buried fallback
// path. Everything above this seam (the resilient runner, the serving
// fleet, the experiments) speaks Backend and never names a concrete
// device type.
//
// Contract highlights (enforced by internal/backend/conformance):
//
//   - Determinism: identical construction + identical inputs produce
//     identical outputs and identical Timing, invoke after invoke.
//   - Row-prefix equivalence: on a row-sliceable model, InvokeBatch(k)
//     computes exactly the first k output rows of a full invoke.
//   - Cancellation: a done context fails fast with ctx.Err() before any
//     work is dispatched, leaving the backend reusable.
//   - Estimation: for a fault-free backend, EstimateInvoke{,Batch}
//     returns the same Timing the functional invoke would, without
//     executing kernels.
package backend

import (
	"context"
	"time"

	"hdcedge/internal/edgetpu"
	"hdcedge/internal/tensor"
)

// Timing is the per-invocation phase breakdown shared by every backend.
// It aliases the simulator's type so existing reports, results and tests
// keep their exact shape; a CPU backend prices its compute into the
// HostFallback phase.
type Timing = edgetpu.Timing

// Caps describes what a backend instance can do, so callers can validate
// configuration (batch coalescing, row slicing) without knowing the
// concrete type.
type Caps struct {
	// BatchCapacity is the number of sample rows one full invocation
	// processes — the leading dimension of the model's first input.
	BatchCapacity int

	// RowSliceable reports whether partial-batch invokes (InvokeBatch
	// with 0 < rows < BatchCapacity) are supported: every activation of
	// the loaded model must be batch-leading.
	RowSliceable bool

	// Accelerated reports whether the backend is a discrete accelerator
	// (pays link transfers, can fault and reset) as opposed to running in
	// host memory.
	Accelerated bool
}

// Backend is one execution engine holding one loaded model. Implementations
// are not safe for concurrent use; drive each instance from one goroutine,
// like the devices they wrap.
type Backend interface {
	// Name identifies the backend class for reports and fleet grouping
	// (e.g. "tpu", "cpu"). Instances of the same class share a name.
	Name() string

	// Caps returns the capability flags of the loaded model on this
	// backend.
	Caps() Caps

	// Input returns the i-th model input tensor; callers populate it
	// before Invoke.
	Input(i int) *tensor.Tensor

	// Output returns the i-th model output tensor after a successful
	// invoke.
	Output(i int) *tensor.Tensor

	// Invoke executes the loaded model once and returns the phase timing.
	Invoke() (Timing, error)

	// InvokeCtx is Invoke gated on a context: a done context fails fast
	// with ctx.Err() before any work is dispatched.
	InvokeCtx(ctx context.Context) (Timing, error)

	// InvokeBatch executes only the first rows sample rows. rows <= 0 or
	// rows >= BatchCapacity is a full invoke, bit-identical to Invoke;
	// anything between requires RowSliceable.
	InvokeBatch(rows int) (Timing, error)

	// InvokeBatchCtx is InvokeBatch behind the same context gate as
	// InvokeCtx.
	InvokeBatchCtx(ctx context.Context, rows int) (Timing, error)

	// EstimateInvoke prices one full invoke without executing kernels or
	// consuming fault-stream randomness.
	EstimateInvoke() (Timing, error)

	// EstimateInvokeBatch is EstimateInvoke at an effective batch of rows
	// occupied sample rows.
	EstimateInvokeBatch(rows int) (Timing, error)

	// Reset restores the backend to a freshly-loaded state (re-uploading
	// the model after a reset-class fault, rebuilding interpreter state)
	// and returns the setup cost the reset paid.
	Reset() (time.Duration, error)
}

// IsRetryable reports whether an invoke error is transient: the same
// invoke may succeed if attempted again (possibly after a Reset).
func IsRetryable(err error) bool { return edgetpu.IsRetryable(err) }

// NeedsReload reports whether an invoke error dropped the loaded model, so
// the backend must Reset before the next attempt.
func NeedsReload(err error) bool { return edgetpu.NeedsReload(err) }
