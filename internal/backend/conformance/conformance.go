// Package conformance is the executable contract of backend.Backend: a
// reusable test suite that every backend implementation must pass. It
// checks the properties the layers above the seam lean on — determinism,
// row-prefix (batch ≡ sequential) equivalence, fail-fast context
// cancellation that leaves the backend reusable, estimate-vs-actual timing
// consistency on fault-free instances, and reset idempotence.
//
// Usage, from a backend's test package:
//
//	conformance.Run(t, func() (backend.Backend, error) {
//	    return tpu.New(cfg, cm, edgetpu.FaultPlan{})
//	})
//
// The factory must return a fresh, identically-configured, fault-free
// instance on every call; several properties compare independently
// constructed instances against each other.
package conformance

import (
	"context"
	"errors"
	"testing"
	"time"

	"hdcedge/internal/backend"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// Factory builds a fresh, identically-configured, fault-free backend
// instance. Each call must be independent of every prior call.
type Factory func() (backend.Backend, error)

// Run executes the full conformance suite against factory-built instances.
func Run(t *testing.T, factory Factory) {
	t.Helper()
	t.Run("determinism", func(t *testing.T) { testDeterminism(t, factory) })
	t.Run("row-prefix", func(t *testing.T) { testRowPrefix(t, factory) })
	t.Run("full-batch-alias", func(t *testing.T) { testFullBatchAlias(t, factory) })
	t.Run("cancellation", func(t *testing.T) { testCancellation(t, factory) })
	t.Run("estimate", func(t *testing.T) { testEstimate(t, factory) })
	t.Run("reset", func(t *testing.T) { testReset(t, factory) })
}

// build constructs one instance or fails the test.
func build(t *testing.T, factory Factory) backend.Backend {
	t.Helper()
	b, err := factory()
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if b.Caps().BatchCapacity < 1 {
		t.Fatalf("BatchCapacity %d < 1", b.Caps().BatchCapacity)
	}
	return b
}

// fillInput writes a deterministic seed-derived pattern into the backend's
// first input, whatever its dtype.
func fillInput(t *testing.T, b backend.Backend, seed uint64) {
	t.Helper()
	in := b.Input(0)
	r := rng.New(seed)
	switch {
	case in.F32 != nil:
		for i := range in.F32 {
			in.F32[i] = float32(r.Uint64()%512)/256 - 1
		}
	case in.I8 != nil:
		for i := range in.I8 {
			in.I8[i] = int8(r.Uint64() % 256)
		}
	case in.U8 != nil:
		for i := range in.U8 {
			in.U8[i] = uint8(r.Uint64() % 256)
		}
	case in.I32 != nil:
		for i := range in.I32 {
			in.I32[i] = int32(r.Uint64() % 1024)
		}
	default:
		t.Fatal("input tensor has no backing data")
	}
}

// values flattens the active buffer of a tensor into float64 for exact
// comparison (every supported dtype embeds losslessly).
func values(t *testing.T, x *tensor.Tensor) []float64 {
	t.Helper()
	switch {
	case x.F32 != nil:
		out := make([]float64, len(x.F32))
		for i, v := range x.F32 {
			out[i] = float64(v)
		}
		return out
	case x.I8 != nil:
		out := make([]float64, len(x.I8))
		for i, v := range x.I8 {
			out[i] = float64(v)
		}
		return out
	case x.U8 != nil:
		out := make([]float64, len(x.U8))
		for i, v := range x.U8 {
			out[i] = float64(v)
		}
		return out
	case x.I32 != nil:
		out := make([]float64, len(x.I32))
		for i, v := range x.I32 {
			out[i] = float64(v)
		}
		return out
	}
	t.Fatal("output tensor has no backing data")
	return nil
}

// equal compares two flattened buffers exactly.
func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// invoke fills with seed and runs one full invoke, returning timing and a
// snapshot of output 0.
func invoke(t *testing.T, b backend.Backend, seed uint64) (backend.Timing, []float64) {
	t.Helper()
	fillInput(t, b, seed)
	tm, err := b.Invoke()
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	return tm, values(t, b.Output(0))
}

// testDeterminism: identical construction + identical inputs must produce
// identical outputs and identical Timing — invoke after invoke on one
// instance, and across independently built instances.
func testDeterminism(t *testing.T, factory Factory) {
	a := build(t, factory)
	t1, o1 := invoke(t, a, 7)
	t2, o2 := invoke(t, a, 7)
	if t1 != t2 {
		t.Fatalf("repeat invoke timing drifted: %+v then %+v", t1, t2)
	}
	if !equal(o1, o2) {
		t.Fatal("repeat invoke output drifted")
	}
	b := build(t, factory)
	t3, o3 := invoke(t, b, 7)
	if t1 != t3 {
		t.Fatalf("sibling instance timing differs: %+v vs %+v", t1, t3)
	}
	if !equal(o1, o3) {
		t.Fatal("sibling instance output differs")
	}
}

// testRowPrefix: on a row-sliceable model, InvokeBatch(k) must compute
// exactly the first k output rows of a full invoke over the same input.
func testRowPrefix(t *testing.T, factory Factory) {
	probe := build(t, factory)
	caps := probe.Caps()
	if !caps.RowSliceable || caps.BatchCapacity < 2 {
		t.Skipf("model not row-sliceable (caps %+v)", caps)
	}
	_, full := invoke(t, probe, 11)
	if len(full)%caps.BatchCapacity != 0 {
		t.Fatalf("output length %d not divisible by batch %d", len(full), caps.BatchCapacity)
	}
	rowElems := len(full) / caps.BatchCapacity
	ks := []int{1, caps.BatchCapacity / 2, caps.BatchCapacity - 1}
	for _, k := range ks {
		if k < 1 {
			continue
		}
		// Fresh instance per slice so stale rows from a previous invoke can
		// never mask a row the partial invoke failed to compute.
		b := build(t, factory)
		fillInput(t, b, 11)
		if _, err := b.InvokeBatch(k); err != nil {
			t.Fatalf("InvokeBatch(%d): %v", k, err)
		}
		got := values(t, b.Output(0))
		if !equal(got[:k*rowElems], full[:k*rowElems]) {
			t.Fatalf("InvokeBatch(%d) prefix differs from full invoke", k)
		}
	}
}

// testFullBatchAlias: rows <= 0 and rows >= BatchCapacity are full invokes,
// bit-identical to Invoke in both output and timing.
func testFullBatchAlias(t *testing.T, factory Factory) {
	a := build(t, factory)
	tFull, oFull := invoke(t, a, 13)
	for _, rows := range []int{0, -1, a.Caps().BatchCapacity, a.Caps().BatchCapacity + 5} {
		b := build(t, factory)
		fillInput(t, b, 13)
		tm, err := b.InvokeBatch(rows)
		if err != nil {
			t.Fatalf("InvokeBatch(%d): %v", rows, err)
		}
		if tm != tFull {
			t.Fatalf("InvokeBatch(%d) timing %+v != full invoke %+v", rows, tm, tFull)
		}
		if !equal(values(t, b.Output(0)), oFull) {
			t.Fatalf("InvokeBatch(%d) output differs from full invoke", rows)
		}
	}
}

// testCancellation: a done context must fail fast with ctx.Err() before any
// work is dispatched, leaving the backend fully reusable.
func testCancellation(t *testing.T, factory Factory) {
	b := build(t, factory)
	want, wantOut := invoke(t, b, 3)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fillInput(t, b, 3)
	start := time.Now()
	if _, err := b.InvokeCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled InvokeCtx returned %v", err)
	}
	if _, err := b.InvokeBatchCtx(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled InvokeBatchCtx returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation took %v; not fail-fast", elapsed)
	}

	got, gotOut := invoke(t, b, 3)
	if got != want {
		t.Fatalf("post-cancel timing %+v != pre-cancel %+v", got, want)
	}
	if !equal(gotOut, wantOut) {
		t.Fatal("post-cancel output differs; backend not reusable")
	}
}

// testEstimate: on a fault-free instance, EstimateInvoke{,Batch} must return
// exactly the Timing the functional invoke observes — priced before and
// after execution, without perturbing it.
func testEstimate(t *testing.T, factory Factory) {
	b := build(t, factory)
	est, err := b.EstimateInvoke()
	if err != nil {
		t.Fatalf("EstimateInvoke: %v", err)
	}
	act, _ := invoke(t, b, 5)
	if est != act {
		t.Fatalf("estimate %+v != actual %+v", est, act)
	}
	if est2, err := b.EstimateInvoke(); err != nil || est2 != act {
		t.Fatalf("post-invoke estimate %+v (err %v) != actual %+v", est2, err, act)
	}
	caps := b.Caps()
	if !caps.RowSliceable || caps.BatchCapacity < 2 {
		return
	}
	for _, k := range []int{1, caps.BatchCapacity - 1} {
		estK, err := b.EstimateInvokeBatch(k)
		if err != nil {
			t.Fatalf("EstimateInvokeBatch(%d): %v", k, err)
		}
		fillInput(t, b, 5)
		actK, err := b.InvokeBatch(k)
		if err != nil {
			t.Fatalf("InvokeBatch(%d): %v", k, err)
		}
		if estK != actK {
			t.Fatalf("batch-%d estimate %+v != actual %+v", k, estK, actK)
		}
	}
}

// testReset: Reset must restore a freshly-loaded state — the next invoke is
// bit-identical to the pre-reset one.
func testReset(t *testing.T, factory Factory) {
	b := build(t, factory)
	want, wantOut := invoke(t, b, 9)
	if _, err := b.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	got, gotOut := invoke(t, b, 9)
	if got != want {
		t.Fatalf("post-reset timing %+v != pre-reset %+v", got, want)
	}
	if !equal(gotOut, wantOut) {
		t.Fatal("post-reset output differs")
	}
	if _, err := b.Reset(); err != nil {
		t.Fatalf("second Reset: %v", err)
	}
	if got2, _ := invoke(t, b, 9); got2 != want {
		t.Fatalf("reset not idempotent: %+v != %+v", got2, want)
	}
}
