package conformance_test

import (
	"testing"

	"hdcedge/internal/backend"
	"hdcedge/internal/backend/binhd"
	"hdcedge/internal/backend/conformance"
	"hdcedge/internal/backend/hostcpu"
	"hdcedge/internal/backend/tpu"
	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/pipeline"
)

// confModel trains a tiny HDC classifier and compiles inference at the
// given batch capacity — the same fixture the serving tests use.
func confModel(t *testing.T, batch int) (pipeline.Platform, *edgetpu.CompiledModel) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(16, 120, 3, 99), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: 256, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.EdgeTPU()
	cm, err := pipeline.CompileInference(p, model, ds, batch)
	if err != nil {
		t.Fatal(err)
	}
	return p, cm
}

func TestTPUConformance(t *testing.T) {
	p, cm := confModel(t, 4)
	conformance.Run(t, func() (backend.Backend, error) {
		return tpu.New(*p.Accel, cm, edgetpu.FaultPlan{})
	})
}

func TestTPUConformanceSingleSample(t *testing.T) {
	p, cm := confModel(t, 1)
	conformance.Run(t, func() (backend.Backend, error) {
		return tpu.New(*p.Accel, cm, edgetpu.FaultPlan{})
	})
}

func TestHostCPUConformance(t *testing.T) {
	p, cm := confModel(t, 4)
	conformance.Run(t, func() (backend.Backend, error) {
		return hostcpu.New(p.Host, cm.Model)
	})
}

func TestHostCPUConformanceSingleSample(t *testing.T) {
	p, cm := confModel(t, 1)
	conformance.Run(t, func() (backend.Backend, error) {
		return hostcpu.New(p.Host, cm.Model)
	})
}

// confBipolar trains the same tiny fixture as confModel and binarizes it.
func confBipolar(t *testing.T) *hdc.BipolarModel {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(16, 120, 3, 99), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: 256, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return model.Binarize()
}

func TestBinHDConformance(t *testing.T) {
	bm := confBipolar(t)
	conformance.Run(t, func() (backend.Backend, error) {
		return binhd.New(pipeline.EdgeTPU().Host, bm, 4)
	})
}

func TestBinHDConformanceSingleSample(t *testing.T) {
	bm := confBipolar(t)
	conformance.Run(t, func() (backend.Backend, error) {
		return binhd.New(pipeline.EdgeTPU().Host, bm, 1)
	})
}

// Odd capacity + non-word-aligned dim exercises the fused kernel's row and
// tail-word remainders under the full contract.
func TestBinHDConformanceOddShapes(t *testing.T) {
	ds, err := dataset.Generate(dataset.SyntheticSpec(7, 120, 4, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: 130, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	bm := model.Binarize()
	conformance.Run(t, func() (backend.Backend, error) {
		return binhd.New(pipeline.EdgeTPU().Host, bm, 5)
	})
}
