package conformance_test

import (
	"testing"

	"hdcedge/internal/backend"
	"hdcedge/internal/backend/conformance"
	"hdcedge/internal/backend/hostcpu"
	"hdcedge/internal/backend/tpu"
	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/pipeline"
)

// confModel trains a tiny HDC classifier and compiles inference at the
// given batch capacity — the same fixture the serving tests use.
func confModel(t *testing.T, batch int) (pipeline.Platform, *edgetpu.CompiledModel) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(16, 120, 3, 99), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: 256, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.EdgeTPU()
	cm, err := pipeline.CompileInference(p, model, ds, batch)
	if err != nil {
		t.Fatal(err)
	}
	return p, cm
}

func TestTPUConformance(t *testing.T) {
	p, cm := confModel(t, 4)
	conformance.Run(t, func() (backend.Backend, error) {
		return tpu.New(*p.Accel, cm, edgetpu.FaultPlan{})
	})
}

func TestTPUConformanceSingleSample(t *testing.T) {
	p, cm := confModel(t, 1)
	conformance.Run(t, func() (backend.Backend, error) {
		return tpu.New(*p.Accel, cm, edgetpu.FaultPlan{})
	})
}

func TestHostCPUConformance(t *testing.T) {
	p, cm := confModel(t, 4)
	conformance.Run(t, func() (backend.Backend, error) {
		return hostcpu.New(p.Host, cm.Model)
	})
}

func TestHostCPUConformanceSingleSample(t *testing.T) {
	p, cm := confModel(t, 1)
	conformance.Run(t, func() (backend.Backend, error) {
		return hostcpu.New(p.Host, cm.Model)
	})
}
