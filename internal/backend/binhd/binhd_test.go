package binhd

import (
	"runtime"
	"testing"

	"hdcedge/internal/cpuarch"
	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
)

// fixture trains a small bipolar model and a backend over it, plus the
// dataset the inputs come from.
func fixture(t testing.TB, n, d, k, capacity int) (*Backend, *hdc.BipolarModel, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(n, 160, k, 21), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: d, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	bm := model.Binarize()
	b, err := New(cpuarch.MobileI5(), bm, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return b, bm, ds
}

// TestMatchesBipolarPredict: the fused packed path must agree with the
// reference BipolarModel.Predict on every row — including odd feature
// counts, non-word-aligned dims, and odd batch occupancy.
func TestMatchesBipolarPredict(t *testing.T) {
	for _, shape := range [][4]int{{16, 256, 3, 8}, {7, 130, 4, 5}, {5, 64, 2, 3}} {
		n, d, k, capacity := shape[0], shape[1], shape[2], shape[3]
		b, bm, ds := fixture(t, n, d, k, capacity)
		for _, rows := range []int{capacity, capacity - 1, 1} {
			if rows < 1 {
				continue
			}
			copy(b.Input(0).F32, ds.X.F32[:capacity*n])
			if _, err := b.InvokeBatch(rows); err != nil {
				t.Fatalf("n%d-d%d rows=%d: %v", n, d, rows, err)
			}
			for r := 0; r < rows; r++ {
				want := bm.Predict(ds.X.F32[r*n : (r+1)*n])
				if got := int(b.Output(0).I32[r]); got != want {
					t.Fatalf("n%d-d%d rows=%d row %d: backend %d, Predict %d", n, d, rows, r, got, want)
				}
			}
		}
	}
}

// TestScoresAreExactAgreement: output 1 must hold the true Hamming
// agreement over d dims (phantom tail-word agreements subtracted), matching
// hdc.HammingAgreement on independently packed vectors.
func TestScoresAreExactAgreement(t *testing.T) {
	n, d, k, capacity := 7, 130, 4, 5
	b, bm, ds := fixture(t, n, d, k, capacity)
	copy(b.Input(0).F32, ds.X.F32[:capacity*n])
	if _, err := b.Invoke(); err != nil {
		t.Fatal(err)
	}
	enc := make([]float32, d)
	query := make([]uint64, hdc.WordsPerVector(d))
	for r := 0; r < capacity; r++ {
		bm.Encoder.Encode(enc, ds.X.F32[r*n:(r+1)*n])
		hdc.PackSignsInto(query, enc)
		for c := 0; c < k; c++ {
			want := hdc.HammingAgreement(query, bm.Words[c], d)
			if got := int(b.Output(1).I32[r*k+c]); got != want {
				t.Fatalf("row %d class %d: score %d, want agreement %d", r, c, got, want)
			}
			if got := int(b.Output(1).I32[r*k+c]); got < 0 || got > d {
				t.Fatalf("row %d class %d: score %d outside [0, %d]", r, c, got, d)
			}
		}
	}
}

// TestSteadyStateAllocs: after warm-up, invokes must not allocate — the
// scratch pool and preallocated tensors absorb everything. Pinned to one P
// so pool behavior is deterministic.
func TestSteadyStateAllocs(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	b, _, ds := fixture(t, 16, 256, 3, 8)
	copy(b.Input(0).F32, ds.X.F32[:8*16])
	for i := 0; i < 3; i++ {
		if _, err := b.Invoke(); err != nil {
			t.Fatal(err)
		}
		if _, err := b.InvokeBatch(3); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := b.Invoke(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Invoke allocates %.1f objects per run, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(50, func() {
		if _, err := b.InvokeBatch(3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state InvokeBatch(3) allocates %.1f objects per run, want 0", allocs)
	}
}

// TestPricing: the simulated cost must decompose into the cpuarch terms,
// scale with occupied rows, and be well under the int8 interpreter path at
// the same shape — the roofline claim the backend exists to make.
func TestPricing(t *testing.T) {
	n, d, k, capacity := 16, 1024, 26, 16
	ds, err := dataset.Generate(dataset.SyntheticSpec(n, 160, k, 21), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: d, Epochs: 1, LearningRate: 1, Nonlinear: true, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	host := cpuarch.MobileI5()
	b, err := New(host, model.Binarize(), capacity)
	if err != nil {
		t.Fatal(err)
	}

	full, err := b.EstimateInvoke()
	if err != nil {
		t.Fatal(err)
	}
	want := host.GEMMTime(capacity, n, d) +
		host.SignPackTime(capacity*d) +
		host.PopcountGEMMTime(capacity, d, k) +
		host.ArgMaxTime(capacity*k)
	if full.HostFallback != want {
		t.Fatalf("full-batch price %v, want %v", full.HostFallback, want)
	}
	if full.Compute != 0 || full.TransferIn != 0 || full.TransferOut != 0 {
		t.Fatalf("binhd priced accelerator time: %+v", full)
	}

	half, err := b.EstimateInvokeBatch(capacity / 2)
	if err != nil {
		t.Fatal(err)
	}
	if half.Total() >= full.Total() {
		t.Fatalf("half batch %v not cheaper than full %v", half.Total(), full.Total())
	}

	// The host-silicon binary path must beat the host int8 interpreter at
	// the same shape: its similarity GEMM runs 64 dims per word op. The
	// int8 path prices encode + tanh LUT + similarity + argmax (see
	// hostcpu); compare against just its two GEMMs to stay conservative.
	int8GEMMs := host.Int8GEMMTime(capacity, n, d) + host.Int8GEMMTime(capacity, d, k)
	if full.Total() >= int8GEMMs {
		t.Fatalf("binhd sim %v not under int8 GEMM floor %v", full.Total(), int8GEMMs)
	}

	// rows >= capacity and rows <= 0 alias the full batch price.
	for _, rows := range []int{0, -3, capacity, capacity + 9} {
		tm, err := b.EstimateInvokeBatch(rows)
		if err != nil {
			t.Fatal(err)
		}
		if tm != full {
			t.Fatalf("EstimateInvokeBatch(%d) = %+v, want full-batch %+v", rows, tm, full)
		}
	}
}

// TestInstrument: live counters must record invokes and simulated time.
func TestInstrument(t *testing.T) {
	b, _, ds := fixture(t, 16, 256, 3, 4)
	reg := metrics.NewRegistry()
	b.Instrument(reg, `backend="bin"`)
	copy(b.Input(0).F32, ds.X.F32[:4*16])
	for i := 0; i < 3; i++ {
		if _, err := b.Invoke(); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	name := `hdc_backend_invokes_total{backend="bin"}`
	if got := snap.Counters[name]; got != 3 {
		t.Fatalf("%s = %d, want 3 (counters: %v)", name, got, snap.Counters)
	}
}

// TestNewRejectsBadConfig: constructor validation.
func TestNewRejectsBadConfig(t *testing.T) {
	_, bm, _ := fixture(t, 5, 64, 2, 3)
	if _, err := New(cpuarch.MobileI5(), nil, 4); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := New(cpuarch.MobileI5(), bm, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	short := &hdc.BipolarModel{Encoder: bm.Encoder, Dim: bm.Dim, Words: [][]uint64{{}, {}}}
	if _, err := New(cpuarch.MobileI5(), short, 4); err == nil {
		t.Fatal("truncated class words accepted")
	}
}
