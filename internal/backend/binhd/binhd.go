// Package binhd is the bit-packed binary HDC execution backend: the
// bipolar deployment form of the paper's classifier served as a
// first-class peer of the simulated Edge TPU and the host interpreter.
// Hypervectors pack 64 dimensions per uint64 word; similarity is Hamming
// agreement via XOR+POPCNT. The serving path is a single fused kernel per
// invoke — float random-projection encode, sign-threshold, bit-pack, then
// the packed similarity scan — with no intermediate float class scores
// and no tanh pass (sign(tanh(z)) == sign(z), so the nonlinearity cannot
// change a packed bit and is skipped outright).
//
// Against the int8 graph the arithmetic drops from (n+k)·d MACs per
// sample to n·d float MACs plus k·⌈d/64⌉ word ops: the class-similarity
// GEMM collapses by ~64× and the model shrinks ~8×. Simulated cost is
// priced by the cpuarch popcount roofline (PopcountGEMMTime), so the
// speedup is visible in both wall-clock and simulated time. See
// docs/backends.md.
package binhd

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"hdcedge/internal/backend"
	"hdcedge/internal/cpuarch"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/tensor"
)

// Name is the backend class name binary-HDC instances report ("bin" in a
// fleet spec).
const Name = "bin"

// encodeRowsPerBlock is how many sample rows one fused-kernel block
// processes: the kernel is unrolled 2 rows × 4 features, and blocks of 8
// rows keep ParallelFor chunks big enough to amortize scheduling.
const encodeRowsPerBlock = 8

// scratchPool recycles the per-block float accumulators of the fused
// encode kernel, so steady-state invokes allocate nothing. Entries are
// *[]float32 (a pointer, so Put does not allocate) sized max(2·d, need)
// on first use and grown monotonically.
var scratchPool = sync.Pool{New: func() any { s := make([]float32, 0); return &s }}

// Backend serves one BipolarModel. Not safe for concurrent use: the
// input/output tensors and the packed query buffer are reused across
// invokes, exactly like the interpreter-backed peers.
type Backend struct {
	host     cpuarch.Spec
	bm       *hdc.BipolarModel
	capacity int
	n, d, k  int
	words    int

	in     *tensor.Tensor // [capacity, n] float32 features
	preds  *tensor.Tensor // [capacity] int32 argmax class per row
	scores *tensor.Tensor // [capacity, k] int32 Hamming agreement per class

	packed     []uint64 // capacity × words packed query hypervectors
	classWords []uint64 // k × words class hypervectors, flattened contiguous

	times map[int]time.Duration // rows (0 = full batch) → priced invoke

	// runRows is the occupied row count of the invoke in flight; the
	// kernel closures below read it so they can be built once in New and
	// never allocated again on the invoke path.
	runRows    int
	encodeFn   func(lo, hi int)
	classifyFn func(lo, hi int)

	// Live telemetry handles; nil until Instrument is called.
	liveInvokes *metrics.Counter
	liveSim     *metrics.LiveHistogram
}

// New builds a backend serving bm at the given batch capacity, priced by
// host. The model is referenced, not copied; callers must not mutate it
// while the backend lives.
func New(host cpuarch.Spec, bm *hdc.BipolarModel, capacity int) (*Backend, error) {
	if bm == nil || bm.Encoder == nil || bm.Encoder.Base == nil {
		return nil, fmt.Errorf("binhd: nil bipolar model or encoder")
	}
	if capacity < 1 {
		return nil, fmt.Errorf("binhd: batch capacity %d < 1", capacity)
	}
	n, d := bm.Encoder.Features(), bm.Dim
	if bm.Encoder.Base.Shape[1] != d {
		return nil, fmt.Errorf("binhd: encoder emits %d dims, model has %d", bm.Encoder.Base.Shape[1], d)
	}
	k := bm.K()
	if k < 2 {
		return nil, fmt.Errorf("binhd: %d classes, need at least 2", k)
	}
	words := hdc.WordsPerVector(d)
	b := &Backend{
		host: host, bm: bm, capacity: capacity,
		n: n, d: d, k: k, words: words,
		in:         tensor.New(tensor.Float32, capacity, n),
		preds:      tensor.New(tensor.Int32, capacity),
		scores:     tensor.New(tensor.Int32, capacity, k),
		packed:     make([]uint64, capacity*words),
		classWords: make([]uint64, 0, k*words),
		times:      make(map[int]time.Duration),
	}
	for c := 0; c < k; c++ {
		if len(bm.Words[c]) != words {
			return nil, fmt.Errorf("binhd: class %d packs %d words, want %d", c, len(bm.Words[c]), words)
		}
		b.classWords = append(b.classWords, bm.Words[c]...)
	}
	b.encodeFn = b.encodeBlocks
	b.classifyFn = b.classifyRows
	return b, nil
}

// Name implements backend.Backend.
func (b *Backend) Name() string { return Name }

// Caps implements backend.Backend: row-sliceable at the built capacity,
// host-resident (not accelerated).
func (b *Backend) Caps() backend.Caps {
	return backend.Caps{BatchCapacity: b.capacity, RowSliceable: true, Accelerated: false}
}

// Model returns the served bipolar model.
func (b *Backend) Model() *hdc.BipolarModel { return b.bm }

// Instrument streams per-invoke telemetry into reg, mirroring the other
// backends: an attempt counter and a histogram of simulated invoke time.
func (b *Backend) Instrument(reg *metrics.Registry, labels string) {
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	b.liveInvokes = reg.Counter("hdc_backend_invokes_total" + suffix)
	b.liveSim = reg.Histogram("hdc_backend_invoke_sim_seconds" + suffix)
}

// observe records one invoke attempt in the live telemetry (when armed)
// and passes the result through unchanged.
func (b *Backend) observe(t backend.Timing, err error) (backend.Timing, error) {
	if b.liveInvokes != nil {
		b.liveInvokes.Inc()
		if err == nil {
			b.liveSim.Observe(t.Total())
		}
	}
	return t, err
}

// Input implements backend.Backend.
func (b *Backend) Input(i int) *tensor.Tensor {
	if i != 0 {
		panic(fmt.Sprintf("binhd: input %d of 1", i))
	}
	return b.in
}

// Output implements backend.Backend: output 0 is the [batch] int32
// predicted class per row, output 1 the [batch, k] int32 Hamming
// agreement scores — the same argmax-plus-scores contract as the compiled
// inference graph, so serving-layer row scatter/gather works unchanged.
func (b *Backend) Output(i int) *tensor.Tensor {
	switch i {
	case 0:
		return b.preds
	case 1:
		return b.scores
	}
	panic(fmt.Sprintf("binhd: output %d of 2", i))
}

// normRows folds out-of-range row counts onto the full batch, so full
// invokes share one cache entry and exactly the unscaled arithmetic.
func (b *Backend) normRows(rows int) int {
	if rows <= 0 || rows >= b.capacity {
		return 0
	}
	return rows
}

// price returns the cached simulated cost of one invoke at rows occupied
// sample rows (0 = full batch): the fused encode GEMM with its in-pass
// sign-pack, the popcount similarity, and the argmax scan.
func (b *Backend) price(rows int) time.Duration {
	t, ok := b.times[rows]
	if !ok {
		eff := rows
		if eff == 0 {
			eff = b.capacity
		}
		t = b.host.GEMMTime(eff, b.n, b.d) +
			b.host.SignPackTime(eff*b.d) +
			b.host.PopcountGEMMTime(eff, b.d, b.k) +
			b.host.ArgMaxTime(eff*b.k)
		b.times[rows] = t
	}
	return t
}

// Invoke implements backend.Backend.
func (b *Backend) Invoke() (backend.Timing, error) { return b.InvokeBatch(0) }

// InvokeCtx implements backend.Backend.
func (b *Backend) InvokeCtx(ctx context.Context) (backend.Timing, error) {
	return b.InvokeBatchCtx(ctx, 0)
}

// InvokeBatch implements backend.Backend: the fused kernel runs on the
// occupied row prefix and the invoke is priced into the HostFallback
// phase (this backend *is* host silicon). Invoke, InvokeCtx and
// InvokeBatchCtx all funnel here, so the live telemetry records each
// entry exactly once.
func (b *Backend) InvokeBatch(rows int) (backend.Timing, error) {
	return b.observe(b.invokeBatch(rows))
}

func (b *Backend) invokeBatch(rows int) (backend.Timing, error) {
	rows = b.normRows(rows)
	eff := rows
	if eff == 0 {
		eff = b.capacity
	}
	b.run(eff)
	return backend.Timing{HostFallback: b.price(rows)}, nil
}

// InvokeBatchCtx implements backend.Backend. The kernel is wall-clock
// fast, so the admission check is the cancellation point, mirroring the
// other backends.
func (b *Backend) InvokeBatchCtx(ctx context.Context, rows int) (backend.Timing, error) {
	if err := ctx.Err(); err != nil {
		return backend.Timing{}, err
	}
	return b.InvokeBatch(rows)
}

// EstimateInvoke implements backend.Backend.
func (b *Backend) EstimateInvoke() (backend.Timing, error) { return b.EstimateInvokeBatch(0) }

// EstimateInvokeBatch implements backend.Backend: pricing only, no kernels.
func (b *Backend) EstimateInvokeBatch(rows int) (backend.Timing, error) {
	return backend.Timing{HostFallback: b.price(b.normRows(rows))}, nil
}

// Reset implements backend.Backend. The packed class words are immutable
// and the scratch state carries nothing between invokes, so a reset has
// nothing to rebuild; the pricing cache survives (the model is unchanged).
func (b *Backend) Reset() (time.Duration, error) { return 0, nil }

// run executes the fused kernel over the first rows sample rows:
// encode+pack in row blocks, then the packed classify, both parallelized
// over disjoint row ranges (deterministic regardless of worker count; on
// a single-P host ParallelFor runs inline). The worker bodies are the
// closures built once in New, so the invoke path itself allocates nothing.
func (b *Backend) run(rows int) {
	b.runRows = rows
	blocks := (rows + encodeRowsPerBlock - 1) / encodeRowsPerBlock
	tensor.ParallelFor(blocks, 1, b.encodeFn)
	tensor.ParallelFor(rows, encodeRowsPerBlock, b.classifyFn)
}

// encodeBlocks is the encode-phase worker body: each unit is one block of
// encodeRowsPerBlock sample rows, clamped to the in-flight row count. Each
// worker checks out its own scratch pair from the pool, so concurrent
// blocks never share accumulators.
func (b *Backend) encodeBlocks(lo, hi int) {
	sp := scratchPool.Get().(*[]float32)
	scratch := *sp
	if cap(scratch) < 2*b.d {
		scratch = make([]float32, 2*b.d)
	}
	scratch = scratch[:2*b.d]
	for blk := lo; blk < hi; blk++ {
		r0 := blk * encodeRowsPerBlock
		r1 := r0 + encodeRowsPerBlock
		if r1 > b.runRows {
			r1 = b.runRows
		}
		b.encodePackRows(r0, r1, scratch)
	}
	*sp = scratch
	scratchPool.Put(sp)
}

// encodePackRows fuses float encode → sign-threshold → bit-pack for rows
// [r0, r1): C = X·B computed two rows × four features at a time into the
// scratch accumulators (the first feature initializes, so there is no
// zeroing pass), each finished row packed straight into b.packed. The
// sign of the optional tanh nonlinearity equals the sign of its argument,
// so no transcendental pass runs and the packed bits still match
// BipolarModel.Predict exactly.
func (b *Backend) encodePackRows(r0, r1 int, scratch []float32) {
	n, d, words := b.n, b.d, b.words
	base := b.bm.Encoder.Base.F32
	x := b.in.F32
	r := r0
	for ; r+1 < r1; r += 2 {
		c0 := scratch[:d]
		c1 := scratch[d : 2*d][:d]
		x0 := x[r*n : (r+1)*n]
		x1 := x[(r+1)*n : (r+2)*n]

		a0, a1 := x0[0], x1[0]
		for j, bv := range base[:d] {
			c0[j] = a0 * bv
			c1[j] = a1 * bv
		}
		i := 1
		for ; i+3 < n; i += 4 {
			a00, a01, a02, a03 := x0[i], x0[i+1], x0[i+2], x0[i+3]
			a10, a11, a12, a13 := x1[i], x1[i+1], x1[i+2], x1[i+3]
			p0 := base[i*d : (i+1)*d][:d]
			p1 := base[(i+1)*d : (i+2)*d][:d]
			p2 := base[(i+2)*d : (i+3)*d][:d]
			p3 := base[(i+3)*d : (i+4)*d][:d]
			for j, bv0 := range p0 {
				bv1, bv2, bv3 := p1[j], p2[j], p3[j]
				c0[j] += a00*bv0 + a01*bv1 + a02*bv2 + a03*bv3
				c1[j] += a10*bv0 + a11*bv1 + a12*bv2 + a13*bv3
			}
		}
		for ; i < n; i++ {
			av0, av1 := x0[i], x1[i]
			bi := base[i*d : (i+1)*d][:d]
			for j, bv := range bi {
				c0[j] += av0 * bv
				c1[j] += av1 * bv
			}
		}
		hdc.PackSignsInto(b.packed[r*words:(r+1)*words], c0)
		hdc.PackSignsInto(b.packed[(r+1)*words:(r+2)*words], c1)
	}
	for ; r < r1; r++ {
		c0 := scratch[:d]
		x0 := x[r*n : (r+1)*n]
		a0 := x0[0]
		for j, bv := range base[:d] {
			c0[j] = a0 * bv
		}
		for i := 1; i < n; i++ {
			av := x0[i]
			bi := base[i*d : (i+1)*d][:d]
			for j, bv := range bi {
				c0[j] += av * bv
			}
		}
		hdc.PackSignsInto(b.packed[r*words:(r+1)*words], c0)
	}
}

// classifyRows scans rows [lo, hi) of the packed queries against every
// class hypervector: per pair, one XOR+POPCNT pass over the packed words
// (bits.OnesCount64 compiles to the POPCNT instruction). PackSignsInto
// cleared the tail-word high bits on both sides, so whole-word agreement
// counts a fixed 64·words − d phantom agreements per class — identical
// across classes, which leaves the argmax untouched; the reported scores
// subtract it to stay exact Hamming agreement over d dims.
func (b *Backend) classifyRows(lo, hi int) {
	words, k := b.words, b.k
	phantom := int32(64*words - b.d)
	for r := lo; r < hi; r++ {
		q := b.packed[r*words : (r+1)*words]
		scores := b.scores.I32[r*k : (r+1)*k]
		best, bestAgree := 0, int32(-1)
		for c := 0; c < k; c++ {
			cw := b.classWords[c*words : (c+1)*words][:len(q)]
			agree := 0
			for wi, qv := range q {
				agree += bits.OnesCount64(^(qv ^ cw[wi]))
			}
			a := int32(agree) - phantom
			scores[c] = a
			if a > bestAgree {
				best, bestAgree = c, a
			}
		}
		b.preds.I32[r] = int32(best)
	}
}
