// Package hostcpu is the host-CPU execution backend: the tflite reference
// interpreter running the (typically quantized) model functionally, priced
// by the cpuarch roofline cost model. It is the promotion of the resilient
// runtime's buried host-fallback path into a first-class peer backend — the
// same engine now serves both as the degraded mode behind a faulting
// accelerator and as a standalone worker class in a heterogeneous serving
// fleet.
//
// The quantized graph is bit-exact with a healthy simulated device, so a
// CPU-served request differs from a TPU-served one in cost, never in
// answer.
package hostcpu

import (
	"context"
	"fmt"
	"time"

	"hdcedge/internal/backend"
	"hdcedge/internal/cpuarch"
	"hdcedge/internal/metrics"
	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// Name is the backend class name host-CPU instances report.
const Name = "cpu"

// timeKey caches one priced invocation. Keying by (model, rows) — not rows
// alone — means a backend that reloads or swaps its model can never serve a
// stale price computed for a previous graph.
type timeKey struct {
	m    *tflite.Model
	rows int // 0 = full batch
}

// Backend runs one loaded model on the host CPU. Not safe for concurrent
// use; the interpreter's activation tensors are reused across invokes.
type Backend struct {
	host   cpuarch.Spec
	m      *tflite.Model
	interp *tflite.Interpreter
	times  map[timeKey]time.Duration

	// Live telemetry handles; nil until Instrument is called.
	liveInvokes *metrics.Counter
	liveSim     *metrics.LiveHistogram
}

// New builds an interpreter for m priced by host.
func New(host cpuarch.Spec, m *tflite.Model) (*Backend, error) {
	b := &Backend{host: host, times: make(map[timeKey]time.Duration)}
	if _, err := b.Load(m); err != nil {
		return nil, err
	}
	return b, nil
}

// Load replaces the loaded model with m, rebuilding interpreter state. The
// pricing cache is keyed per model, so entries for other models neither
// leak into m's pricing nor are lost if m is loaded again. Host setup is
// free in simulated time: there is no link to cross.
func (b *Backend) Load(m *tflite.Model) (time.Duration, error) {
	it, err := tflite.NewInterpreter(m)
	if err != nil {
		return 0, err
	}
	b.m = m
	b.interp = it
	return 0, nil
}

// Name implements backend.Backend.
func (b *Backend) Name() string { return Name }

// Caps implements backend.Backend.
func (b *Backend) Caps() backend.Caps {
	return backend.Caps{
		BatchCapacity: b.m.BatchCapacity(),
		RowSliceable:  b.m.RowSliceable(),
		Accelerated:   false,
	}
}

// Model returns the loaded model.
func (b *Backend) Model() *tflite.Model { return b.m }

// Instrument streams per-invoke telemetry into reg: an attempt counter and
// a histogram of simulated invoke time for successful attempts. labels is
// an inline Prometheus label set (e.g. `worker="1",backend="cpu"`) appended
// to each metric name so a fleet of backends shares one registry without
// colliding.
func (b *Backend) Instrument(reg *metrics.Registry, labels string) {
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	b.liveInvokes = reg.Counter("hdc_backend_invokes_total" + suffix)
	b.liveSim = reg.Histogram("hdc_backend_invoke_sim_seconds" + suffix)
}

// observe records one invoke attempt in the live telemetry (when armed) and
// passes the result through unchanged.
func (b *Backend) observe(t backend.Timing, err error) (backend.Timing, error) {
	if b.liveInvokes != nil {
		b.liveInvokes.Inc()
		if err == nil {
			b.liveSim.Observe(t.Total())
		}
	}
	return t, err
}

// Input implements backend.Backend.
func (b *Backend) Input(i int) *tensor.Tensor { return b.interp.Input(i) }

// Output implements backend.Backend.
func (b *Backend) Output(i int) *tensor.Tensor { return b.interp.Output(i) }

// normRows folds out-of-range row counts onto the full batch, so full
// invokes share one cache entry and exactly the unscaled arithmetic.
func (b *Backend) normRows(rows int) int {
	if rows <= 0 || rows >= b.m.BatchCapacity() {
		return 0
	}
	return rows
}

// price returns the cached simulated cost of one invoke at rows occupied
// sample rows (0 = full batch).
func (b *Backend) price(rows int) time.Duration {
	k := timeKey{m: b.m, rows: rows}
	t, ok := b.times[k]
	if !ok {
		t = ModelTimeRows(b.host, b.m, rows)
		b.times[k] = t
	}
	return t
}

// Invoke implements backend.Backend.
func (b *Backend) Invoke() (backend.Timing, error) { return b.InvokeBatch(0) }

// InvokeCtx implements backend.Backend.
func (b *Backend) InvokeCtx(ctx context.Context) (backend.Timing, error) {
	return b.InvokeBatchCtx(ctx, 0)
}

// InvokeBatch implements backend.Backend: the reference kernels run on the
// occupied row prefix and the invoke is priced into the HostFallback phase
// at the effective batch. Invoke, InvokeCtx and InvokeBatchCtx all funnel
// here, so the live telemetry records each entry exactly once.
func (b *Backend) InvokeBatch(rows int) (backend.Timing, error) {
	return b.observe(b.invokeBatch(rows))
}

func (b *Backend) invokeBatch(rows int) (backend.Timing, error) {
	rows = b.normRows(rows)
	if rows > 0 && !b.m.RowSliceable() {
		return backend.Timing{}, fmt.Errorf("hostcpu: model %q is not row-sliceable; cannot invoke %d of %d rows",
			b.m.Name, rows, b.m.BatchCapacity())
	}
	if err := b.interp.InvokeRows(rows); err != nil {
		return backend.Timing{}, fmt.Errorf("hostcpu: invoke: %w", err)
	}
	return backend.Timing{HostFallback: b.price(rows)}, nil
}

// InvokeBatchCtx implements backend.Backend. The functional invoke is
// wall-clock instantaneous, so the admission check is the cancellation
// point, mirroring the simulated device.
func (b *Backend) InvokeBatchCtx(ctx context.Context, rows int) (backend.Timing, error) {
	if err := ctx.Err(); err != nil {
		return backend.Timing{}, err
	}
	return b.InvokeBatch(rows)
}

// EstimateInvoke implements backend.Backend.
func (b *Backend) EstimateInvoke() (backend.Timing, error) { return b.EstimateInvokeBatch(0) }

// EstimateInvokeBatch implements backend.Backend: pricing only, no kernels.
func (b *Backend) EstimateInvokeBatch(rows int) (backend.Timing, error) {
	rows = b.normRows(rows)
	if rows > 0 && !b.m.RowSliceable() {
		return backend.Timing{}, fmt.Errorf("hostcpu: model %q is not row-sliceable; cannot price %d of %d rows",
			b.m.Name, rows, b.m.BatchCapacity())
	}
	return backend.Timing{HostFallback: b.price(rows)}, nil
}

// Reset rebuilds the interpreter for the loaded model. The pricing cache
// survives: it is keyed by the model, which has not changed.
func (b *Backend) Reset() (time.Duration, error) { return b.Load(b.m) }

// ModelTime prices one full invocation of a (typically quantized) model on
// the host CPU using the cpuarch primitives.
func ModelTime(host cpuarch.Spec, m *tflite.Model) time.Duration {
	return ModelTimeRows(host, m, 0)
}

// ModelTimeRows prices one invocation at an effective batch of rows
// occupied sample rows. rows <= 0 (or >= the model's batch capacity) prices
// the full batch with exactly the unscaled arithmetic. On row-sliceable
// models the per-op element counts are batch-leading, so the scaling is an
// exact integer division, mirroring the device-side partial-batch pricing.
func ModelTimeRows(host cpuarch.Spec, m *tflite.Model, rows int) time.Duration {
	capacity := m.BatchCapacity()
	partial := rows > 0 && rows < capacity
	scale := func(n int) int {
		if !partial {
			return n
		}
		return n * rows / capacity
	}
	var total time.Duration
	for _, op := range m.Operators {
		outElems := 0
		for _, ti := range op.Outputs {
			outElems += scale(m.Tensors[ti].Shape.Elems())
		}
		switch op.Op {
		case tflite.OpFullyConnected:
			in := m.Tensors[op.Inputs[0]]
			w := m.Tensors[op.Inputs[1]]
			batch, depth, units := in.Shape[0], in.Shape[1], w.Shape[0]
			if partial {
				batch = rows
			}
			if in.DType == tensor.Int8 {
				total += host.Int8GEMMTime(batch, depth, units)
			} else {
				total += host.GEMMTime(batch, depth, units)
			}
		case tflite.OpTanh, tflite.OpLogistic:
			if m.Tensors[op.Inputs[0]].DType == tensor.Int8 {
				total += host.LUTTime(outElems)
			} else {
				total += host.TanhTime(outElems)
			}
		case tflite.OpQuantize, tflite.OpDequantize:
			total += host.QuantizeTime(outElems)
		case tflite.OpArgMax:
			in := m.Tensors[op.Inputs[0]]
			total += host.ArgMaxTime(scale(in.Shape.Elems()))
		case tflite.OpSoftmax:
			total += host.TanhTime(outElems)
		default: // CONCAT, RESHAPE and other data movement
			bytes := 0
			for _, ti := range op.Outputs {
				info := m.Tensors[ti]
				bytes += scale(info.Shape.Elems()) * info.DType.Size()
			}
			total += host.StreamTime(2 * bytes)
		}
	}
	return total
}
