package tensor

import (
	"testing"

	"hdcedge/internal/rng"
)

func benchMatrix(r *rng.RNG, rows, cols int) *Tensor {
	t := New(Float32, rows, cols)
	r.FillNormal(t.F32)
	return t
}

func BenchmarkMatMulEncodeShape(b *testing.B) {
	// The encoding GEMM at functional-experiment scale: [32, 617]·[617, 2000].
	r := rng.New(1)
	a := benchMatrix(r, 32, 617)
	w := benchMatrix(r, 617, 2000)
	c := New(Float32, 32, 2000)
	b.SetBytes(int64(a.Bytes() + w.Bytes() + c.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, w)
	}
}

func BenchmarkMatMulSimilarityShape(b *testing.B) {
	// The similarity GEMM: [256, 2000]·[2000, 26].
	r := rng.New(2)
	a := benchMatrix(r, 256, 2000)
	w := benchMatrix(r, 2000, 26)
	c := New(Float32, 256, 26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, w)
	}
}

func BenchmarkVecMat(b *testing.B) {
	r := rng.New(3)
	a := benchMatrix(r, 617, 2000)
	x := make([]float32, 617)
	r.FillNormal(x)
	dst := make([]float32, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VecMat(dst, x, a)
	}
}

func BenchmarkTanhSlice(b *testing.B) {
	r := rng.New(4)
	xs := make([]float32, 10000)
	r.FillNormal(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TanhSlice(xs)
	}
}

func BenchmarkQuantizeTensor(b *testing.B) {
	r := rng.New(5)
	src := benchMatrix(r, 32, 2000)
	q := ChooseQuantParams(-4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantize(src, q)
	}
}

func BenchmarkAxpyHypervector(b *testing.B) {
	r := rng.New(6)
	x := make([]float32, 10000)
	y := make([]float32, 10000)
	r.FillNormal(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(1, x, y)
	}
}

func BenchmarkDotHypervector(b *testing.B) {
	r := rng.New(7)
	x := make([]float32, 10000)
	y := make([]float32, 10000)
	r.FillNormal(x)
	r.FillNormal(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}
