package tensor

import (
	"fmt"
	"math"
)

// QuantParams holds per-tensor affine quantization parameters in the TFLite
// convention: real = (q - ZeroPoint) * Scale.
type QuantParams struct {
	Scale     float64
	ZeroPoint int32
}

// ChooseQuantParams derives int8 quantization parameters covering
// [lo, hi] in the TFLite style: the range is widened to include zero so
// the zero point is exact, and degenerate ranges get a unit scale.
func ChooseQuantParams(lo, hi float64) QuantParams {
	if lo > hi {
		lo, hi = hi, lo
	}
	// Zero must be exactly representable.
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	const qmin, qmax = -128, 127
	if lo == hi {
		return QuantParams{Scale: 1, ZeroPoint: 0}
	}
	scale := (hi - lo) / float64(qmax-qmin)
	zpReal := float64(qmin) - lo/scale
	zp := int32(math.Round(zpReal))
	if zp < qmin {
		zp = qmin
	}
	if zp > qmax {
		zp = qmax
	}
	return QuantParams{Scale: scale, ZeroPoint: zp}
}

// SymmetricQuantParams derives symmetric int8 parameters (zero point 0) for
// weights, covering [-absMax, absMax]. TFLite quantizes FC weights this way
// so that the MXU can accumulate without zero-point cross terms.
func SymmetricQuantParams(absMax float64) QuantParams {
	if absMax <= 0 {
		return QuantParams{Scale: 1, ZeroPoint: 0}
	}
	return QuantParams{Scale: absMax / 127, ZeroPoint: 0}
}

// QuantizeOne converts a real value to int8 under q, saturating.
func (q QuantParams) QuantizeOne(v float64) int8 {
	r := math.Round(v/q.Scale) + float64(q.ZeroPoint)
	if r > 127 {
		r = 127
	}
	if r < -128 {
		r = -128
	}
	return int8(r)
}

// DequantizeOne converts an int8 value back to a real value under q.
func (q QuantParams) DequantizeOne(v int8) float64 {
	return float64(int32(v)-q.ZeroPoint) * q.Scale
}

// Quantize converts a float tensor to an int8 tensor under q.
func Quantize(src *Tensor, q QuantParams) *Tensor {
	if src.DType != Float32 {
		panic(fmt.Sprintf("tensor: Quantize requires float input, got %v", src.DType))
	}
	dst := New(Int8, src.Shape...)
	dst.Quant = &q
	for i, v := range src.F32 {
		dst.I8[i] = q.QuantizeOne(float64(v))
	}
	return dst
}

// Dequantize converts an int8 tensor back to float using its own params.
func Dequantize(src *Tensor) *Tensor {
	if src.DType != Int8 || src.Quant == nil {
		panic("tensor: Dequantize requires a quantized int8 tensor")
	}
	dst := New(Float32, src.Shape...)
	for i, v := range src.I8 {
		dst.F32[i] = float32(src.Quant.DequantizeOne(v))
	}
	return dst
}

// MinMax returns the minimum and maximum of a float tensor. An empty tensor
// yields (0, 0).
func MinMax(t *Tensor) (lo, hi float64) {
	if t.DType != Float32 {
		panic("tensor: MinMax requires a float tensor")
	}
	if len(t.F32) == 0 {
		return 0, 0
	}
	lo, hi = float64(t.F32[0]), float64(t.F32[0])
	for _, v := range t.F32[1:] {
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return lo, hi
}

// AbsMax returns the maximum absolute value of a float tensor.
func AbsMax(t *Tensor) float64 {
	lo, hi := MinMax(t)
	return math.Max(math.Abs(lo), math.Abs(hi))
}

// RangeObserver accumulates the observed value range across calibration
// batches, as the post-training quantizer does over a representative
// dataset.
type RangeObserver struct {
	Min, Max float64
	seen     bool
}

// Observe folds the values of a float tensor into the running range.
func (o *RangeObserver) Observe(t *Tensor) {
	if t.DType != Float32 {
		panic("tensor: RangeObserver requires float tensors")
	}
	if len(t.F32) == 0 {
		return
	}
	mn, mx := MinMax(t)
	if !o.seen {
		o.Min, o.Max, o.seen = mn, mx, true
		return
	}
	if mn < o.Min {
		o.Min = mn
	}
	if mx > o.Max {
		o.Max = mx
	}
}

// Params returns quantization parameters covering the observed range.
func (o *RangeObserver) Params() QuantParams {
	if !o.seen {
		return QuantParams{Scale: 1, ZeroPoint: 0}
	}
	return ChooseQuantParams(o.Min, o.Max)
}
