package tensor

import (
	"runtime"
	"sync"
)

// ParallelFor splits [0, n) into contiguous chunks and runs fn on each
// chunk concurrently. It runs inline when the work is too small to be
// worth scheduling (n < minPerWorker) or when only one CPU is available.
// fn must be safe to call concurrently on disjoint ranges.
func ParallelFor(n, minPerWorker int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if minPerWorker < 1 {
		minPerWorker = 1
	}
	if bound := n / minPerWorker; workers > bound {
		workers = bound
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelWorkers reports how many workers ParallelFor would use for the
// same (n, minPerWorker). Callers on allocation-sensitive hot paths use it
// to take a direct serial path without constructing the chunk closure
// (which escapes to the heap because ParallelFor may hand it to
// goroutines).
func parallelWorkers(n, minPerWorker int) int {
	if n <= 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0)
	if minPerWorker < 1 {
		minPerWorker = 1
	}
	if bound := n / minPerWorker; workers > bound {
		workers = bound
	}
	return workers
}
