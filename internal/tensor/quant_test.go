package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChooseQuantParamsZeroExact(t *testing.T) {
	cases := [][2]float64{{-1, 1}, {0, 10}, {-5, 0}, {-0.3, 7.7}, {2, 8}}
	for _, c := range cases {
		q := ChooseQuantParams(c[0], c[1])
		// Zero must map to an exact int8 code and back to exactly zero.
		z := q.QuantizeOne(0)
		if got := q.DequantizeOne(z); got != 0 {
			t.Errorf("range %v: zero round-trips to %v", c, got)
		}
	}
}

func TestChooseQuantParamsDegenerate(t *testing.T) {
	q := ChooseQuantParams(0, 0)
	if q.Scale != 1 || q.ZeroPoint != 0 {
		t.Fatalf("degenerate params %+v", q)
	}
}

func TestChooseQuantParamsSwappedArgs(t *testing.T) {
	a := ChooseQuantParams(-2, 3)
	b := ChooseQuantParams(3, -2)
	if a != b {
		t.Fatalf("order-sensitive params: %+v vs %+v", a, b)
	}
}

func TestSymmetricQuantParams(t *testing.T) {
	q := SymmetricQuantParams(127)
	if q.ZeroPoint != 0 || q.Scale != 1 {
		t.Fatalf("params %+v", q)
	}
	if SymmetricQuantParams(0).Scale != 1 {
		t.Fatal("degenerate symmetric scale should be 1")
	}
}

func TestQuantizeSaturates(t *testing.T) {
	q := QuantParams{Scale: 1, ZeroPoint: 0}
	if q.QuantizeOne(1000) != 127 {
		t.Error("no positive saturation")
	}
	if q.QuantizeOne(-1000) != -128 {
		t.Error("no negative saturation")
	}
}

func TestQuantizeRoundTripError(t *testing.T) {
	// Round-trip error of any in-range value is bounded by scale/2.
	q := ChooseQuantParams(-3, 3)
	for v := -3.0; v <= 3.0; v += 0.01 {
		back := q.DequantizeOne(q.QuantizeOne(v))
		if math.Abs(back-v) > q.Scale/2+1e-12 {
			t.Fatalf("round trip %v -> %v exceeds scale/2=%v", v, back, q.Scale/2)
		}
	}
}

func TestQuantizeDequantizeTensors(t *testing.T) {
	src := FromFloat32([]float32{-1, -0.5, 0, 0.5, 1}, 5)
	q := ChooseQuantParams(-1, 1)
	it := Quantize(src, q)
	if it.DType != Int8 || it.Quant == nil {
		t.Fatal("Quantize output malformed")
	}
	back := Dequantize(it)
	for i := range src.F32 {
		if math.Abs(float64(back.F32[i]-src.F32[i])) > q.Scale/2+1e-6 {
			t.Fatalf("elem %d: %v -> %v", i, src.F32[i], back.F32[i])
		}
	}
}

func TestMinMaxAbsMax(t *testing.T) {
	tn := FromFloat32([]float32{3, -7, 2}, 3)
	mn, mx := MinMax(tn)
	if mn != -7 || mx != 3 {
		t.Fatalf("MinMax = %v, %v", mn, mx)
	}
	if AbsMax(tn) != 7 {
		t.Fatalf("AbsMax = %v", AbsMax(tn))
	}
	if mn, mx := MinMax(New(Float32, 0)); mn != 0 || mx != 0 {
		t.Fatal("empty MinMax nonzero")
	}
}

func TestRangeObserver(t *testing.T) {
	var o RangeObserver
	o.Observe(FromFloat32([]float32{1, 2}, 2))
	o.Observe(FromFloat32([]float32{-4, 0.5}, 2))
	if o.Min != -4 || o.Max != 2 {
		t.Fatalf("observer range [%v, %v]", o.Min, o.Max)
	}
	q := o.Params()
	if q.DequantizeOne(q.QuantizeOne(0)) != 0 {
		t.Fatal("observer params do not represent zero exactly")
	}
}

func TestRangeObserverEmpty(t *testing.T) {
	var o RangeObserver
	q := o.Params()
	if q.Scale != 1 || q.ZeroPoint != 0 {
		t.Fatalf("empty observer params %+v", q)
	}
}

// Property: quantization round-trip error is bounded by scale/2 for values
// inside the chosen range.
func TestQuickQuantRoundTrip(t *testing.T) {
	f := func(a, b float64, frac float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		// Keep ranges sane.
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		q := ChooseQuantParams(a, b)
		lo, hi := math.Min(a, b), math.Max(a, b)
		if lo > 0 {
			lo = 0
		}
		if hi < 0 {
			hi = 0
		}
		frac = math.Abs(math.Mod(frac, 1))
		v := lo + frac*(hi-lo)
		back := q.DequantizeOne(q.QuantizeOne(v))
		return math.Abs(back-v) <= q.Scale/2*1.0001+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantized codes are monotone in the real value.
func TestQuickQuantMonotone(t *testing.T) {
	f := func(lo, hi float64, x, y float64) bool {
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
			return true
		}
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		q := ChooseQuantParams(math.Mod(lo, 100), math.Mod(hi, 100))
		x, y = math.Mod(x, 200), math.Mod(y, 200)
		if x > y {
			x, y = y, x
		}
		return q.QuantizeOne(x) <= q.QuantizeOne(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
