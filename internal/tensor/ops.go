package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// MatMul computes dst = a · b for 2-D float tensors, with a of shape
// [m, k] and b of shape [k, n]. dst must be a float tensor of shape [m, n].
// The kernel is blocked for cache locality and parallelized across rows.
func MatMul(dst, a, b *Tensor) {
	checkMatMulShapes(dst, a, b)
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	matMulF32(dst.F32, a.F32, b.F32, m, k, n)
}

func checkMatMulShapes(dst, a, b *Tensor) {
	if a.DType != Float32 || b.DType != Float32 || dst.DType != Float32 {
		panic("tensor: MatMul requires float tensors")
	}
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(dst.Shape) != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	if a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul inner dims mismatch %v x %v", a.Shape, b.Shape))
	}
	if dst.Shape[0] != a.Shape[0] || dst.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMul dst shape %v, want [%d %d]", dst.Shape, a.Shape[0], b.Shape[1]))
	}
}

// matMulF32 is the blocked inner kernel: C[m,n] = A[m,k] * B[k,n].
// It walks B row-wise (i-k-j order) so all inner accesses are sequential.
func matMulF32(c, a, b []float32, m, k, n int) {
	for i := range c {
		c[i] = 0
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 || m*k*n < 1<<16 {
		matMulRows(c, a, b, 0, m, k, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(c, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

func matMulRows(c, a, b []float32, lo, hi, k, n int) {
	const kb = 256
	for k0 := 0; k0 < k; k0 += kb {
		k1 := k0 + kb
		if k1 > k {
			k1 = k
		}
		for i := lo; i < hi; i++ {
			ci := c[i*n : (i+1)*n]
			ai := a[i*k : (i+1)*k]
			for kk := k0; kk < k1; kk++ {
				av := ai[kk]
				if av == 0 {
					continue
				}
				bk := b[kk*n : (kk+1)*n]
				for j, bv := range bk {
					ci[j] += av * bv
				}
			}
		}
	}
}

// MatVec computes dst = a · x for a [m, k] float matrix and a length-k
// vector; dst must have length m.
func MatVec(dst []float32, a *Tensor, x []float32) {
	if a.DType != Float32 || len(a.Shape) != 2 {
		panic("tensor: MatVec requires a 2-D float matrix")
	}
	m, k := a.Shape[0], a.Shape[1]
	if len(x) != k || len(dst) != m {
		panic(fmt.Sprintf("tensor: MatVec dims: matrix %v, x %d, dst %d", a.Shape, len(x), len(dst)))
	}
	for i := 0; i < m; i++ {
		row := a.F32[i*k : (i+1)*k]
		var sum float32
		for j, v := range row {
			sum += v * x[j]
		}
		dst[i] = sum
	}
}

// VecMat computes dst = x · a for a length-m vector and an [m, k] float
// matrix; dst must have length k. This is the encoding primitive
// E = F · B with B laid out feature-major.
func VecMat(dst []float32, x []float32, a *Tensor) {
	if a.DType != Float32 || len(a.Shape) != 2 {
		panic("tensor: VecMat requires a 2-D float matrix")
	}
	m, k := a.Shape[0], a.Shape[1]
	if len(x) != m || len(dst) != k {
		panic(fmt.Sprintf("tensor: VecMat dims: matrix %v, x %d, dst %d", a.Shape, len(x), len(dst)))
	}
	// Parallelize over disjoint column blocks: every dst[j] is owned by
	// exactly one worker and accumulates its contributions in the same
	// ascending-i order (with the same xv == 0 skips) as the serial loop,
	// so the float results are bit-identical regardless of worker count.
	// Small widths skip ParallelFor entirely — the chunk closure escapes
	// to the heap, and streaming callers (hdc.AdaptWith) need this path
	// allocation-free.
	if parallelWorkers(k, 1024) <= 1 {
		vecMatBlock(dst, x, a.F32, m, k, 0, k)
		return
	}
	ParallelFor(k, 1024, func(j0, j1 int) {
		vecMatBlock(dst, x, a.F32, m, k, j0, j1)
	})
}

// vecMatBlock accumulates the [j0, j1) column block of dst = x · a.
func vecMatBlock(dst, x, af []float32, m, k, j0, j1 int) {
	out := dst[j0:j1]
	for j := range out {
		out[j] = 0
	}
	for i := 0; i < m; i++ {
		xv := x[i]
		if xv == 0 {
			continue
		}
		row := af[i*k+j0 : i*k+j1]
		for j, v := range row {
			out[j] += xv * v
		}
	}
}

// Transpose returns the transpose of a 2-D tensor (float or int8).
func Transpose(t *Tensor) *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: Transpose requires a 2-D tensor")
	}
	r, c := t.Shape[0], t.Shape[1]
	out := New(t.DType, c, r)
	if t.Quant != nil {
		q := *t.Quant
		out.Quant = &q
	}
	switch t.DType {
	case Float32:
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				out.F32[j*r+i] = t.F32[i*c+j]
			}
		}
	case Int8:
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				out.I8[j*r+i] = t.I8[i*c+j]
			}
		}
	default:
		panic(fmt.Sprintf("tensor: Transpose unsupported dtype %v", t.DType))
	}
	return out
}

// Tanh applies the hyperbolic tangent element-wise in place on a float
// tensor.
func Tanh(t *Tensor) {
	if t.DType != Float32 {
		panic("tensor: Tanh requires a float tensor")
	}
	for i, v := range t.F32 {
		t.F32[i] = float32(math.Tanh(float64(v)))
	}
}

// TanhSlice applies tanh in place on a raw slice. Elements are independent,
// so the parallel chunks produce bit-identical results to a serial pass.
func TanhSlice(xs []float32) {
	if parallelWorkers(len(xs), 4096) <= 1 {
		tanhBlock(xs, 0, len(xs))
		return
	}
	ParallelFor(len(xs), 4096, func(lo, hi int) {
		tanhBlock(xs, lo, hi)
	})
}

func tanhBlock(xs []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		xs[i] = float32(math.Tanh(float64(xs[i])))
	}
}

// Axpy computes y += alpha * x over raw float slices of equal length.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Dot returns the inner product of two equal-length float slices.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var sum float32
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// Norm returns the Euclidean norm of a float slice.
func Norm(a []float32) float32 {
	var sum float64
	for _, v := range a {
		sum += float64(v) * float64(v)
	}
	return float32(math.Sqrt(sum))
}

// CosineSimilarity returns the cosine of the angle between two vectors,
// or 0 when either has zero norm.
func CosineSimilarity(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// ArgMax returns the index of the largest element of a float slice, or -1
// for an empty slice. Ties resolve to the lowest index, matching the
// paper's arg max over class scores.
func ArgMax(xs []float32) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMaxI32 returns the index of the largest element of an int32 slice.
func ArgMaxI32(xs []int32) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// Scale multiplies a float tensor by alpha in place.
func Scale(t *Tensor, alpha float32) {
	if t.DType != Float32 {
		panic("tensor: Scale requires a float tensor")
	}
	for i := range t.F32 {
		t.F32[i] *= alpha
	}
}

// HStack concatenates 2-D float tensors horizontally (equal row counts).
// It is the bagging fusion primitive for base-hypervector matrices.
func HStack(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: HStack of nothing")
	}
	rows := ts[0].Shape[0]
	cols := 0
	for _, t := range ts {
		if t.DType != Float32 || len(t.Shape) != 2 {
			panic("tensor: HStack requires 2-D float tensors")
		}
		if t.Shape[0] != rows {
			panic("tensor: HStack row mismatch")
		}
		cols += t.Shape[1]
	}
	out := New(Float32, rows, cols)
	off := 0
	for _, t := range ts {
		c := t.Shape[1]
		for r := 0; r < rows; r++ {
			copy(out.F32[r*cols+off:r*cols+off+c], t.F32[r*c:(r+1)*c])
		}
		off += c
	}
	return out
}

// VStack concatenates 2-D float tensors vertically (equal column counts).
// It is the bagging fusion primitive for class-hypervector matrices.
func VStack(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: VStack of nothing")
	}
	cols := ts[0].Shape[1]
	rows := 0
	for _, t := range ts {
		if t.DType != Float32 || len(t.Shape) != 2 {
			panic("tensor: VStack requires 2-D float tensors")
		}
		if t.Shape[1] != cols {
			panic("tensor: VStack column mismatch")
		}
		rows += t.Shape[0]
	}
	out := New(Float32, rows, cols)
	off := 0
	for _, t := range ts {
		copy(out.F32[off:off+len(t.F32)], t.F32)
		off += len(t.F32)
	}
	return out
}
