// Package tensor provides the dense numeric arrays and kernels shared by
// the HDC core, the TFLite-style interpreter, and the Edge TPU simulator.
//
// Tensors are row-major and carry an explicit element type so that the same
// graph structures can describe both float32 reference models and their
// full-integer quantized counterparts.
package tensor

import (
	"fmt"
	"strings"
)

// DType enumerates the element types understood by the framework. They
// mirror the subset of TFLite types the paper's models use.
type DType uint8

const (
	Float32 DType = iota
	Int8
	Int32
	UInt8
)

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Int8:
		return "int8"
	case Int32:
		return "int32"
	case UInt8:
		return "uint8"
	default:
		return fmt.Sprintf("dtype(%d)", uint8(d))
	}
}

// Size returns the width of one element in bytes.
func (d DType) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	default:
		return 1
	}
}

// Shape describes tensor dimensions, outermost first.
type Shape []int

// Elems returns the total element count; the empty shape is a scalar with
// one element.
func (s Shape) Elems() int {
	n := 1
	for _, d := range s {
		if d < 0 {
			return 0
		}
		n *= d
	}
	return n
}

// Equal reports whether two shapes match exactly.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// String renders the shape as, e.g., [3 608].
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Tensor is a dense row-major array. Exactly one of the backing slices is
// populated, selected by DType.
type Tensor struct {
	DType DType
	Shape Shape

	F32 []float32
	I8  []int8
	I32 []int32
	U8  []uint8

	// Quant carries quantization parameters for integer tensors; it is
	// nil for float tensors.
	Quant *QuantParams
}

// New allocates a zero tensor of the given type and shape.
func New(dt DType, shape ...int) *Tensor {
	t := &Tensor{DType: dt, Shape: Shape(shape).Clone()}
	n := t.Shape.Elems()
	switch dt {
	case Float32:
		t.F32 = make([]float32, n)
	case Int8:
		t.I8 = make([]int8, n)
	case Int32:
		t.I32 = make([]int32, n)
	case UInt8:
		t.U8 = make([]uint8, n)
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %v", dt))
	}
	return t
}

// FromFloat32 wraps data (not copied) in a float tensor. It panics when the
// length does not match the shape.
func FromFloat32(data []float32, shape ...int) *Tensor {
	s := Shape(shape)
	if len(data) != s.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), s))
	}
	return &Tensor{DType: Float32, Shape: s.Clone(), F32: data}
}

// FromInt8 wraps data (not copied) in an int8 tensor.
func FromInt8(data []int8, q *QuantParams, shape ...int) *Tensor {
	s := Shape(shape)
	if len(data) != s.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), s))
	}
	return &Tensor{DType: Int8, Shape: s.Clone(), I8: data, Quant: q}
}

// FromInt32 wraps data (not copied) in an int32 tensor.
func FromInt32(data []int32, q *QuantParams, shape ...int) *Tensor {
	s := Shape(shape)
	if len(data) != s.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), s))
	}
	return &Tensor{DType: Int32, Shape: s.Clone(), I32: data, Quant: q}
}

// Elems returns the number of elements.
func (t *Tensor) Elems() int { return t.Shape.Elems() }

// Bytes returns the size of the raw data in bytes.
func (t *Tensor) Bytes() int { return t.Elems() * t.DType.Size() }

// Clone returns a deep copy of the tensor, including quantization params.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{DType: t.DType, Shape: t.Shape.Clone()}
	switch t.DType {
	case Float32:
		c.F32 = append([]float32(nil), t.F32...)
	case Int8:
		c.I8 = append([]int8(nil), t.I8...)
	case Int32:
		c.I32 = append([]int32(nil), t.I32...)
	case UInt8:
		c.U8 = append([]uint8(nil), t.U8...)
	}
	if t.Quant != nil {
		q := *t.Quant
		c.Quant = &q
	}
	return c
}

// At returns the float value at the row-major offset i, dequantizing
// integer tensors on the fly. It is a convenience for tests and metrics,
// not a hot path.
func (t *Tensor) At(i int) float64 {
	switch t.DType {
	case Float32:
		return float64(t.F32[i])
	case Int8:
		if t.Quant != nil {
			return t.Quant.DequantizeOne(t.I8[i])
		}
		return float64(t.I8[i])
	case Int32:
		if t.Quant != nil {
			return float64(t.I32[i]-t.Quant.ZeroPoint) * t.Quant.Scale
		}
		return float64(t.I32[i])
	case UInt8:
		return float64(t.U8[i])
	}
	panic("tensor: At on unknown dtype")
}

// Row returns a view of row r of a 2-D float tensor.
func (t *Tensor) Row(r int) []float32 {
	if t.DType != Float32 || len(t.Shape) != 2 {
		panic("tensor: Row requires a 2-D float tensor")
	}
	cols := t.Shape[1]
	return t.F32[r*cols : (r+1)*cols]
}

// ViewRows returns a tensor aliasing rows [lo, hi) of t along its leading
// dimension: same dtype, shared backing storage and quantization params,
// with the leading dimension clipped to hi-lo. Writes through the view are
// visible in t. It is the batching primitive: a model compiled at capacity
// B executes on a ViewRows(0, rows) prefix to serve rows occupied samples.
func (t *Tensor) ViewRows(lo, hi int) *Tensor {
	if len(t.Shape) == 0 {
		panic("tensor: ViewRows on a scalar")
	}
	if lo < 0 || hi < lo || hi > t.Shape[0] {
		panic(fmt.Sprintf("tensor: ViewRows [%d, %d) outside leading dim %d", lo, hi, t.Shape[0]))
	}
	stride := 1
	for _, d := range t.Shape[1:] {
		stride *= d
	}
	shape := t.Shape.Clone()
	shape[0] = hi - lo
	v := &Tensor{DType: t.DType, Shape: shape, Quant: t.Quant}
	a, b := lo*stride, hi*stride
	switch t.DType {
	case Float32:
		v.F32 = t.F32[a:b]
	case Int8:
		v.I8 = t.I8[a:b]
	case Int32:
		v.I32 = t.I32[a:b]
	case UInt8:
		v.U8 = t.U8[a:b]
	}
	return v
}

// RowI8 returns a view of row r of a 2-D int8 tensor.
func (t *Tensor) RowI8(r int) []int8 {
	if t.DType != Int8 || len(t.Shape) != 2 {
		panic("tensor: RowI8 requires a 2-D int8 tensor")
	}
	cols := t.Shape[1]
	return t.I8[r*cols : (r+1)*cols]
}

// String renders a short description, not the data.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%v %v)", t.DType, t.Shape)
}
