package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeElems(t *testing.T) {
	cases := []struct {
		s    Shape
		want int
	}{
		{Shape{}, 1},
		{Shape{5}, 5},
		{Shape{3, 4}, 12},
		{Shape{2, 3, 4}, 24},
		{Shape{0, 7}, 0},
	}
	for _, c := range cases {
		if got := c.s.Elems(); got != c.want {
			t.Errorf("%v.Elems() = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestShapeEqual(t *testing.T) {
	if !(Shape{2, 3}).Equal(Shape{2, 3}) {
		t.Error("equal shapes reported unequal")
	}
	if (Shape{2, 3}).Equal(Shape{3, 2}) {
		t.Error("unequal shapes reported equal")
	}
	if (Shape{2}).Equal(Shape{2, 1}) {
		t.Error("different ranks reported equal")
	}
}

func TestShapeCloneIndependent(t *testing.T) {
	s := Shape{1, 2}
	c := s.Clone()
	c[0] = 9
	if s[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestNewAllocates(t *testing.T) {
	for _, dt := range []DType{Float32, Int8, Int32, UInt8} {
		tn := New(dt, 2, 3)
		if tn.Elems() != 6 {
			t.Errorf("%v: elems %d", dt, tn.Elems())
		}
		if tn.Bytes() != 6*dt.Size() {
			t.Errorf("%v: bytes %d", dt, tn.Bytes())
		}
	}
}

func TestFromFloat32PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	FromFloat32([]float32{1, 2, 3}, 2, 2)
}

func TestCloneDeep(t *testing.T) {
	a := FromFloat32([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.F32[0] = 99
	if a.F32[0] != 1 {
		t.Error("Clone shares float data")
	}
	q := QuantParams{Scale: 0.5, ZeroPoint: 3}
	c := FromInt8([]int8{1, 2}, &q, 2)
	d := c.Clone()
	d.Quant.Scale = 9
	if c.Quant.Scale != 0.5 {
		t.Error("Clone shares quant params")
	}
}

func TestAtDequantizes(t *testing.T) {
	q := QuantParams{Scale: 0.5, ZeroPoint: 2}
	tn := FromInt8([]int8{4}, &q, 1)
	if got := tn.At(0); got != 1.0 {
		t.Errorf("At = %v, want 1.0", got)
	}
}

func TestRowViews(t *testing.T) {
	tn := FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r1 := tn.Row(1)
	if r1[0] != 4 || r1[2] != 6 {
		t.Errorf("Row(1) = %v", r1)
	}
	r1[0] = 40
	if tn.F32[3] != 40 {
		t.Error("Row is not a view")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromFloat32([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := New(Float32, 2, 2)
	MatMul(c, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.F32[i] != w {
			t.Fatalf("c[%d] = %v, want %v", i, c.F32[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	const n = 17
	a := New(Float32, n, n)
	id := New(Float32, n, n)
	for i := 0; i < n; i++ {
		id.F32[i*n+i] = 1
		for j := 0; j < n; j++ {
			a.F32[i*n+j] = float32(i*31+j) * 0.25
		}
	}
	c := New(Float32, n, n)
	MatMul(c, a, id)
	for i := range c.F32 {
		if c.F32[i] != a.F32[i] {
			t.Fatalf("A*I differs at %d: %v vs %v", i, c.F32[i], a.F32[i])
		}
	}
}

func TestMatMulLargeMatchesNaive(t *testing.T) {
	const m, k, n = 33, 129, 47
	a := New(Float32, m, k)
	b := New(Float32, k, n)
	for i := range a.F32 {
		a.F32[i] = float32((i*2654435761)%17) - 8
	}
	for i := range b.F32 {
		b.F32[i] = float32((i*40503)%13) - 6
	}
	c := New(Float32, m, n)
	MatMul(c, a, b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for kk := 0; kk < k; kk++ {
				want += float64(a.F32[i*k+kk]) * float64(b.F32[kk*n+j])
			}
			got := float64(c.F32[i*n+j])
			if math.Abs(got-want) > 1e-3*math.Max(1, math.Abs(want)) {
				t.Fatalf("c[%d,%d] = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a := New(Float32, 2, 3)
	b := New(Float32, 4, 2)
	c := New(Float32, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on inner-dim mismatch")
		}
	}()
	MatMul(c, a, b)
}

func TestMatVec(t *testing.T) {
	a := FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	dst := make([]float32, 2)
	MatVec(dst, a, []float32{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MatVec = %v", dst)
	}
}

func TestVecMat(t *testing.T) {
	a := FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	dst := make([]float32, 3)
	VecMat(dst, []float32{1, 2}, a)
	if dst[0] != 9 || dst[1] != 12 || dst[2] != 15 {
		t.Fatalf("VecMat = %v", dst)
	}
}

func TestVecMatSkipsZeros(t *testing.T) {
	// Zero inputs (masked features under bagging) must contribute nothing.
	a := FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	dst := make([]float32, 3)
	VecMat(dst, []float32{0, 2}, a)
	if dst[0] != 8 || dst[1] != 10 || dst[2] != 12 {
		t.Fatalf("VecMat = %v", dst)
	}
}

func TestTransposeFloat(t *testing.T) {
	a := FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if !at.Shape.Equal(Shape{3, 2}) {
		t.Fatalf("shape %v", at.Shape)
	}
	want := []float32{1, 4, 2, 5, 3, 6}
	for i, w := range want {
		if at.F32[i] != w {
			t.Fatalf("at[%d] = %v, want %v", i, at.F32[i], w)
		}
	}
}

func TestTransposeTwiceIsIdentity(t *testing.T) {
	a := New(Float32, 5, 9)
	for i := range a.F32 {
		a.F32[i] = float32(i)
	}
	b := Transpose(Transpose(a))
	for i := range a.F32 {
		if a.F32[i] != b.F32[i] {
			t.Fatalf("double transpose differs at %d", i)
		}
	}
}

func TestTransposeInt8KeepsQuant(t *testing.T) {
	q := QuantParams{Scale: 2, ZeroPoint: 1}
	a := FromInt8([]int8{1, 2, 3, 4}, &q, 2, 2)
	at := Transpose(a)
	if at.Quant == nil || at.Quant.Scale != 2 {
		t.Fatal("Transpose dropped quant params")
	}
	if at.I8[1] != 3 {
		t.Fatalf("int8 transpose wrong: %v", at.I8)
	}
}

func TestTanh(t *testing.T) {
	a := FromFloat32([]float32{0, 1, -1, 10}, 4)
	Tanh(a)
	if a.F32[0] != 0 {
		t.Errorf("tanh(0) = %v", a.F32[0])
	}
	if math.Abs(float64(a.F32[1])-math.Tanh(1)) > 1e-6 {
		t.Errorf("tanh(1) = %v", a.F32[1])
	}
	if a.F32[2] != -a.F32[1] {
		t.Error("tanh not odd")
	}
	if a.F32[3] < 0.9999 {
		t.Errorf("tanh(10) = %v", a.F32[3])
	}
}

func TestAxpyDotNorm(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{4, 5, 6}
	Axpy(2, x, y)
	if y[0] != 6 || y[2] != 12 {
		t.Fatalf("Axpy = %v", y)
	}
	if d := Dot(x, x); d != 14 {
		t.Fatalf("Dot = %v", d)
	}
	if n := Norm([]float32{3, 4}); n != 5 {
		t.Fatalf("Norm = %v", n)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if c := CosineSimilarity([]float32{1, 0}, []float32{1, 0}); math.Abs(float64(c)-1) > 1e-6 {
		t.Errorf("parallel cosine = %v", c)
	}
	if c := CosineSimilarity([]float32{1, 0}, []float32{0, 1}); math.Abs(float64(c)) > 1e-6 {
		t.Errorf("orthogonal cosine = %v", c)
	}
	if c := CosineSimilarity([]float32{0, 0}, []float32{1, 1}); c != 0 {
		t.Errorf("zero-vector cosine = %v", c)
	}
}

func TestArgMax(t *testing.T) {
	if i := ArgMax([]float32{1, 5, 3}); i != 1 {
		t.Errorf("ArgMax = %d", i)
	}
	if i := ArgMax([]float32{2, 2}); i != 0 {
		t.Errorf("tie-break ArgMax = %d", i)
	}
	if i := ArgMax(nil); i != -1 {
		t.Errorf("empty ArgMax = %d", i)
	}
	if i := ArgMaxI32([]int32{-3, -1, -2}); i != 1 {
		t.Errorf("ArgMaxI32 = %d", i)
	}
}

func TestHStack(t *testing.T) {
	a := FromFloat32([]float32{1, 2, 3, 4}, 2, 2)
	b := FromFloat32([]float32{5, 6, 7, 8, 9, 10}, 2, 3)
	s := HStack(a, b)
	if !s.Shape.Equal(Shape{2, 5}) {
		t.Fatalf("shape %v", s.Shape)
	}
	want := []float32{1, 2, 5, 6, 7, 3, 4, 8, 9, 10}
	for i, w := range want {
		if s.F32[i] != w {
			t.Fatalf("s[%d] = %v, want %v", i, s.F32[i], w)
		}
	}
}

func TestVStack(t *testing.T) {
	a := FromFloat32([]float32{1, 2, 3, 4}, 2, 2)
	b := FromFloat32([]float32{5, 6}, 1, 2)
	s := VStack(a, b)
	if !s.Shape.Equal(Shape{3, 2}) {
		t.Fatalf("shape %v", s.Shape)
	}
	if s.F32[4] != 5 || s.F32[5] != 6 {
		t.Fatalf("VStack = %v", s.F32)
	}
}

func TestHStackRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched rows")
		}
	}()
	HStack(New(Float32, 2, 2), New(Float32, 3, 2))
}

func TestScale(t *testing.T) {
	a := FromFloat32([]float32{1, -2}, 2)
	Scale(a, -3)
	if a.F32[0] != -3 || a.F32[1] != 6 {
		t.Fatalf("Scale = %v", a.F32)
	}
}

func TestDTypeString(t *testing.T) {
	if Float32.String() != "float32" || Int8.String() != "int8" {
		t.Error("DType String wrong")
	}
	if DType(99).String() == "" {
		t.Error("unknown DType should still render")
	}
}

// Property: MatMul row i equals VecMat of row i (kernel consistency).
func TestQuickMatMulVecMatConsistent(t *testing.T) {
	f := func(seed uint64, m8, k8, n8 uint8) bool {
		m := int(m8%6) + 1
		k := int(k8%20) + 1
		n := int(n8%20) + 1
		r := newTestRNG(seed)
		a := New(Float32, m, k)
		b := New(Float32, k, n)
		for i := range a.F32 {
			a.F32[i] = float32(r()%17) - 8
		}
		for i := range b.F32 {
			b.F32[i] = float32(r()%13) - 6
		}
		c := New(Float32, m, n)
		MatMul(c, a, b)
		row := make([]float32, n)
		for i := 0; i < m; i++ {
			VecMat(row, a.Row(i), b)
			for j := 0; j < n; j++ {
				d := float64(c.F32[i*n+j] - row[j])
				if d > 1e-3 || d < -1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: HStack of row slices recombines to the original matrix.
func TestQuickStackRoundTrip(t *testing.T) {
	f := func(seed uint64, r8, c8 uint8) bool {
		rows := int(r8%5) + 1
		cols1 := int(c8%6) + 1
		cols2 := int(c8%4) + 1
		r := newTestRNG(seed)
		a := New(Float32, rows, cols1)
		b := New(Float32, rows, cols2)
		for i := range a.F32 {
			a.F32[i] = float32(r() % 100)
		}
		for i := range b.F32 {
			b.F32[i] = float32(r() % 100)
		}
		s := HStack(a, b)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols1; j++ {
				if s.F32[i*(cols1+cols2)+j] != a.F32[i*cols1+j] {
					return false
				}
			}
			for j := 0; j < cols2; j++ {
				if s.F32[i*(cols1+cols2)+cols1+j] != b.F32[i*cols2+j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// newTestRNG is a tiny deterministic generator for property tests that
// avoids importing internal/rng (which itself depends on nothing here,
// but keeping tensor's tests self-contained documents the layering).
func newTestRNG(seed uint64) func() uint64 {
	state := seed | 1
	return func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
}
