// Package nnmap realizes the paper's central interpretation: an HDC model
// *is* a hyper-wide three-layer neural network. The base-hypervector
// matrix B (n×d) becomes the first fully-connected layer's weights, tanh
// is its activation, and the class-hypervector matrix C (k×d) becomes the
// second fully-connected layer. The resulting tflite models are what the
// Edge TPU compiler consumes:
//
//   - the encoder model (first half) accelerates training-set encoding;
//   - the inference model (both halves plus arg-max) runs classification
//     entirely on the accelerator.
package nnmap

import (
	"fmt"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// BuildEncoderModel maps the encoding half of the HDC model to a float
// tflite graph with a fixed batch size: input [batch, n] → FC(d) → TANH →
// encoded [batch, d]. With a linear encoder the TANH is omitted.
func BuildEncoderModel(enc *hdc.Encoder, batch int) (*tflite.Model, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("nnmap: batch must be positive, got %d", batch)
	}
	b := tflite.NewBuilder(fmt.Sprintf("hdc-encoder-n%d-d%d", enc.Features(), enc.Dim()))
	in := b.AddInput("features", tensor.Float32, batch, enc.Features())
	// FC weights are [units, depth] = [d, n]: the transpose of B.
	w := tensor.Transpose(enc.Base)
	bias := tensor.New(tensor.Float32, enc.Dim())
	h := b.FullyConnected(in, b.AddConstF32("base_T", w), b.AddConstF32("bias0", bias), "bundled")
	out := h
	if enc.Nonlinear {
		out = b.Tanh(h, "encoded")
	}
	b.MarkOutput(out)
	return b.Finish(), nil
}

// BuildInferenceModel maps the full HDC classifier to a float tflite
// graph: input [batch, n] → FC(d) → TANH → FC(k) → {ARG_MAX, scores}.
// Output 0 is the int32 class prediction; output 1 the similarity scores.
func BuildInferenceModel(m *hdc.Model, batch int) (*tflite.Model, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("nnmap: batch must be positive, got %d", batch)
	}
	enc := m.Encoder
	b := tflite.NewBuilder(fmt.Sprintf("hdc-inference-n%d-d%d-k%d", enc.Features(), m.Dim(), m.K()))
	in := b.AddInput("features", tensor.Float32, batch, enc.Features())
	w1 := tensor.Transpose(enc.Base)
	bias1 := tensor.New(tensor.Float32, enc.Dim())
	h := b.FullyConnected(in, b.AddConstF32("base_T", w1), b.AddConstF32("bias0", bias1), "bundled")
	e := h
	if enc.Nonlinear {
		e = b.Tanh(h, "encoded")
	}
	// Class hypervectors are already [k, d] = [units, depth].
	bias2 := tensor.New(tensor.Float32, m.K())
	scores := b.FullyConnected(e, b.AddConstF32("classes", m.Classes), b.AddConstF32("bias1", bias2), "scores")
	b.MarkOutput(b.ArgMax(scores, "prediction"))
	b.MarkOutput(scores)
	return b.Finish(), nil
}

// CalibrationBatches packs dataset rows into full calibration batches for
// a model whose input is [batch, features]. At most maxBatches batches are
// produced; the trailing partial batch is dropped.
func CalibrationBatches(ds *dataset.Dataset, batch, maxBatches int) [][][]float32 {
	n := ds.Features()
	full := ds.Samples() / batch
	if maxBatches > 0 && full > maxBatches {
		full = maxBatches
	}
	out := make([][][]float32, 0, full)
	for bi := 0; bi < full; bi++ {
		buf := make([]float32, batch*n)
		for r := 0; r < batch; r++ {
			copy(buf[r*n:(r+1)*n], ds.X.Row(bi*batch+r))
		}
		out = append(out, [][]float32{buf})
	}
	return out
}

// QuantizeForTPU runs post-training full-integer quantization against a
// representative dataset, producing the model the Edge TPU compiler
// accepts.
func QuantizeForTPU(m *tflite.Model, calib *dataset.Dataset, batch, maxBatches int) (*tflite.Model, error) {
	batches := CalibrationBatches(calib, batch, maxBatches)
	if len(batches) == 0 {
		return nil, fmt.Errorf("nnmap: calibration dataset has fewer than %d samples", batch)
	}
	return tflite.QuantizeModel(m, batches)
}
