package nnmap

import (
	"math"
	"testing"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/rng"
	"hdcedge/internal/tflite"
)

func trainedModel(t *testing.T, dim int) (*hdc.Model, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(24, 1500, 4, 77), 0)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.25, rng.New(78))
	m, _, err := hdc.Train(train, nil, hdc.TrainConfig{
		Dim: dim, Epochs: 8, LearningRate: 1, Nonlinear: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, train, test
}

func TestEncoderModelMatchesHDCEncoder(t *testing.T) {
	m, train, _ := trainedModel(t, 512)
	const batch = 4
	em, err := BuildEncoderModel(m.Encoder, batch)
	if err != nil {
		t.Fatal(err)
	}
	it, err := tflite.NewInterpreter(em)
	if err != nil {
		t.Fatal(err)
	}
	n := train.Features()
	for r := 0; r < batch; r++ {
		copy(it.Input(0).F32[r*n:(r+1)*n], train.X.Row(r))
	}
	if err := it.Invoke(); err != nil {
		t.Fatal(err)
	}
	// The NN encoding must equal the HDC encoding element-wise.
	e := make([]float32, m.Dim())
	for r := 0; r < batch; r++ {
		m.Encoder.Encode(e, train.X.Row(r))
		for j := range e {
			got := it.Output(0).F32[r*m.Dim()+j]
			if math.Abs(float64(got-e[j])) > 1e-4 {
				t.Fatalf("row %d elem %d: NN %v, HDC %v", r, j, got, e[j])
			}
		}
	}
}

func TestInferenceModelMatchesHDCPredictions(t *testing.T) {
	m, _, test := trainedModel(t, 512)
	const batch = 8
	im, err := BuildInferenceModel(m, batch)
	if err != nil {
		t.Fatal(err)
	}
	it, err := tflite.NewInterpreter(im)
	if err != nil {
		t.Fatal(err)
	}
	n := test.Features()
	for r := 0; r < batch; r++ {
		copy(it.Input(0).F32[r*n:(r+1)*n], test.X.Row(r))
	}
	if err := it.Invoke(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < batch; r++ {
		want := m.Predict(test.X.Row(r))
		if got := int(it.Output(0).I32[r]); got != want {
			t.Fatalf("row %d: NN predicts %d, HDC %d", r, got, want)
		}
	}
}

func TestLinearEncoderModelHasNoTanh(t *testing.T) {
	enc := hdc.NewEncoder(8, 64, false, rng.New(3))
	em, err := BuildEncoderModel(enc, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range em.Operators {
		if op.Op == tflite.OpTanh {
			t.Fatal("linear encoder model contains TANH")
		}
	}
}

func TestBuildRejectsBadBatch(t *testing.T) {
	enc := hdc.NewEncoder(4, 32, true, rng.New(1))
	if _, err := BuildEncoderModel(enc, 0); err == nil {
		t.Fatal("zero batch accepted")
	}
	m := hdc.NewModel(enc, 2)
	if _, err := BuildInferenceModel(m, -1); err == nil {
		t.Fatal("negative batch accepted")
	}
}

func TestCalibrationBatches(t *testing.T) {
	ds, _ := dataset.Generate(dataset.SyntheticSpec(6, 100, 3, 9), 0)
	batches := CalibrationBatches(ds, 16, 0)
	if len(batches) != 6 { // 100/16
		t.Fatalf("%d batches, want 6", len(batches))
	}
	if len(batches[0][0]) != 16*6 {
		t.Fatalf("batch size %d values", len(batches[0][0]))
	}
	capped := CalibrationBatches(ds, 16, 2)
	if len(capped) != 2 {
		t.Fatalf("cap ignored: %d batches", len(capped))
	}
}

func TestQuantizedInferenceAccuracyNearFloat(t *testing.T) {
	// The end-to-end paper path: HDC model → wide NN → int8 → compiled →
	// simulated device, with accuracy within a couple points of float.
	m, train, test := trainedModel(t, 1024)
	const batch = 16
	im, err := BuildInferenceModel(m, batch)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := QuantizeForTPU(im, train, batch, 20)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := edgetpu.Compile(qm, edgetpu.DefaultUSB())
	if err != nil {
		t.Fatal(err)
	}
	if cm.DelegatedOps() < 3 {
		t.Fatalf("only %d ops delegated:\n%s", cm.DelegatedOps(), cm.Report())
	}
	dev := edgetpu.NewDevice(edgetpu.DefaultUSB())
	if _, err := dev.LoadModel(cm); err != nil {
		t.Fatal(err)
	}

	n := test.Features()
	nBatches := test.Samples() / batch
	correctQ, correctF, total := 0, 0, 0
	for bi := 0; bi < nBatches; bi++ {
		for r := 0; r < batch; r++ {
			copy(dev.Input(0).F32[r*n:(r+1)*n], test.X.Row(bi*batch+r))
		}
		if _, err := dev.Invoke(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < batch; r++ {
			idx := bi*batch + r
			if int(dev.Output(0).I32[r]) == test.Y[idx] {
				correctQ++
			}
			if m.Predict(test.X.Row(idx)) == test.Y[idx] {
				correctF++
			}
			total++
		}
	}
	accQ := float64(correctQ) / float64(total)
	accF := float64(correctF) / float64(total)
	if accQ < accF-0.03 {
		t.Fatalf("quantized accuracy %.3f vs float %.3f: degradation too large", accQ, accF)
	}
}

func TestQuantizeForTPURejectsTinyCalib(t *testing.T) {
	m, _, _ := trainedModel(t, 128)
	im, err := BuildInferenceModel(m, 64)
	if err != nil {
		t.Fatal(err)
	}
	tiny, _ := dataset.Generate(dataset.SyntheticSpec(24, 10, 4, 1), 0)
	if _, err := QuantizeForTPU(im, tiny, 64, 0); err == nil {
		t.Fatal("undersized calibration accepted")
	}
}
