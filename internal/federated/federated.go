// Package federated implements collaborative HDC training across edge
// nodes — the deployment the paper's introduction motivates (federated
// learning over unreliable IoT devices) and its reference [21] develops
// (collaborative learning in high-dimensional space).
//
// HDC makes federation unusually clean: when every node shares the same
// base hypervectors (distributed as a seed, not data), a trained model is
// just a sum of ±λ·E update vectors. Class hypervectors therefore
// aggregate by plain addition, and one round of "train locally, sum the
// models" is mathematically identical to training once over the union of
// the shards (up to sample order). The package simulates nodes, IID and
// label-skewed sharding, multi-round training with per-round model
// aggregation, and communication-cost accounting.
package federated

import (
	"fmt"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// Config controls a federated training run.
type Config struct {
	// Nodes is the number of participating edge devices.
	Nodes int
	// Rounds is how many aggregate-and-redistribute cycles run.
	Rounds int
	// LocalEpochs is each node's training passes per round.
	LocalEpochs int
	// Dim is the hypervector width; the base hypervectors derive from
	// Seed on every node, so only class matrices ever travel.
	Dim          int
	LearningRate float32
	Nonlinear    bool
	Seed         uint64
}

// DefaultConfig returns a 8-node, 4-round setup.
func DefaultConfig() Config {
	return Config{
		Nodes: 8, Rounds: 4, LocalEpochs: 2,
		Dim: hdc.DefaultDim, LearningRate: 1, Nonlinear: true, Seed: 1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("federated: need at least one node, got %d", c.Nodes)
	case c.Rounds < 1:
		return fmt.Errorf("federated: need at least one round, got %d", c.Rounds)
	case c.LocalEpochs < 1:
		return fmt.Errorf("federated: need at least one local epoch, got %d", c.LocalEpochs)
	case c.Dim <= 0:
		return fmt.Errorf("federated: non-positive dim %d", c.Dim)
	}
	return nil
}

// ShardIID deals samples round-robin after a shuffle: every node sees
// every class.
func ShardIID(ds *dataset.Dataset, nodes int, r *rng.RNG) []*dataset.Dataset {
	perm := r.Perm(ds.Samples())
	buckets := make([][]int, nodes)
	for i, idx := range perm {
		buckets[i%nodes] = append(buckets[i%nodes], idx)
	}
	out := make([]*dataset.Dataset, nodes)
	for i, b := range buckets {
		out[i] = ds.Subset(b)
	}
	return out
}

// ShardByLabel gives each node a skewed label distribution: samples are
// sorted by class and dealt in contiguous runs, the classic pathological
// non-IID split.
func ShardByLabel(ds *dataset.Dataset, nodes int) []*dataset.Dataset {
	byClass := make([][]int, ds.Classes)
	for i, y := range ds.Y {
		byClass[y] = append(byClass[y], i)
	}
	var ordered []int
	for _, members := range byClass {
		ordered = append(ordered, members...)
	}
	per := (len(ordered) + nodes - 1) / nodes
	out := make([]*dataset.Dataset, nodes)
	for i := 0; i < nodes; i++ {
		lo := i * per
		hi := lo + per
		if hi > len(ordered) {
			hi = len(ordered)
		}
		if lo > hi {
			lo = hi
		}
		out[i] = ds.Subset(ordered[lo:hi])
	}
	return out
}

// Result is the outcome of a federated run.
type Result struct {
	// Global is the aggregated model after the final round.
	Global *hdc.Model
	// RoundAccuracy is the global model's accuracy on the evaluation set
	// after each round.
	RoundAccuracy []float64
	// UploadBytesPerRound is what each node sends per round (its class
	// matrix); the base hypervectors never travel.
	UploadBytesPerRound int
	// RawDataBytes is the counterfactual cost of centralizing the shards.
	RawDataBytes int
}

// Train runs federated HDC training over the shards, evaluating the
// global model on eval after each round (eval may be nil).
func Train(shards []*dataset.Dataset, eval *dataset.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(shards) != cfg.Nodes {
		return nil, fmt.Errorf("federated: %d shards for %d nodes", len(shards), cfg.Nodes)
	}
	features, classes := -1, -1
	totalSamples := 0
	for i, s := range shards {
		if s == nil || s.Samples() == 0 {
			return nil, fmt.Errorf("federated: shard %d is empty", i)
		}
		if features == -1 {
			features, classes = s.Features(), s.Classes
		} else if s.Features() != features || s.Classes != classes {
			return nil, fmt.Errorf("federated: shard %d shape mismatch", i)
		}
		totalSamples += s.Samples()
	}

	// Every node regenerates the same encoder from the shared seed; only
	// the class matrices are exchanged.
	baseRNG := rng.New(cfg.Seed)
	enc := hdc.NewEncoder(features, cfg.Dim, cfg.Nonlinear, baseRNG.Split())
	global := hdc.NewModel(enc, classes)
	// Pre-encode each shard once (base HVs are fixed across rounds).
	encoded := make([]*tensor.Tensor, cfg.Nodes)
	for i, s := range shards {
		encoded[i] = global.Encoder.EncodeBatch(s.X)
	}
	var evalEncoded *tensor.Tensor
	if eval != nil {
		evalEncoded = global.Encoder.EncodeBatch(eval.X)
	}

	res := &Result{
		UploadBytesPerRound: classes * cfg.Dim * 4,
		RawDataBytes:        totalSamples * features * 4,
	}
	nodeRNGs := make([]*rng.RNG, cfg.Nodes)
	for i := range nodeRNGs {
		nodeRNGs[i] = baseRNG.Split()
	}
	for round := 0; round < cfg.Rounds; round++ {
		// Each node copies the global class matrix, trains locally, and
		// uploads its delta. Deltas are additive, so aggregation averages
		// them into the global model (federated averaging; plain summing
		// would apply N× the effective step each round and oscillate once
		// the model is warm).
		agg := global.Classes.Clone()
		invN := float32(1) / float32(len(shards))
		for i := range shards {
			local := &hdc.Model{Encoder: global.Encoder, Classes: global.Classes.Clone()}
			if _, err := local.FitEncoded(encoded[i], shards[i].Y, nil, nil,
				cfg.LocalEpochs, cfg.LearningRate, nodeRNGs[i].Split()); err != nil {
				return nil, fmt.Errorf("federated: node %d round %d: %w", i, round, err)
			}
			for j := range agg.F32 {
				agg.F32[j] += (local.Classes.F32[j] - global.Classes.F32[j]) * invN
			}
		}
		global.Classes = agg
		if evalEncoded != nil {
			preds := global.ClassifyEncodedBatch(evalEncoded)
			correct := 0
			for i, p := range preds {
				if p == eval.Y[i] {
					correct++
				}
			}
			res.RoundAccuracy = append(res.RoundAccuracy, float64(correct)/float64(eval.Samples()))
		}
	}
	res.Global = global
	return res, nil
}

// CommunicationSavings returns how many times cheaper shipping models is
// than shipping the raw shards once: rawBytes / (rounds · nodes · upload).
func (r *Result) CommunicationSavings(cfg Config) float64 {
	modelTraffic := cfg.Rounds * cfg.Nodes * r.UploadBytesPerRound
	if modelTraffic == 0 {
		return 0
	}
	return float64(r.RawDataBytes) / float64(modelTraffic)
}
