package federated

import (
	"testing"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/rng"
)

func fedData(t *testing.T, seed uint64) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(32, 2400, 4, seed), 0)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Split(0.25, rng.New(seed+1))
}

func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.Dim = 1024
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.LocalEpochs = 0 },
		func(c *Config) { c.Dim = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestShardIIDCoversAllSamples(t *testing.T) {
	train, _ := fedData(t, 10)
	shards := ShardIID(train, 8, rng.New(11))
	total := 0
	for _, s := range shards {
		total += s.Samples()
	}
	if total != train.Samples() {
		t.Fatalf("shards cover %d of %d samples", total, train.Samples())
	}
	// IID: every shard should see every class.
	for i, s := range shards {
		for c, n := range s.ClassCounts() {
			if n == 0 {
				t.Fatalf("IID shard %d missing class %d", i, c)
			}
		}
	}
}

func TestShardByLabelIsSkewed(t *testing.T) {
	train, _ := fedData(t, 12)
	shards := ShardByLabel(train, 8)
	// With 4 classes over 8 contiguous shards, most shards must miss at
	// least one class.
	skewed := 0
	for _, s := range shards {
		missing := 0
		for _, n := range s.ClassCounts() {
			if n == 0 {
				missing++
			}
		}
		if missing > 0 {
			skewed++
		}
	}
	if skewed < 6 {
		t.Fatalf("only %d/8 label shards are skewed", skewed)
	}
}

func TestFederatedIIDMatchesCentralized(t *testing.T) {
	train, test := fedData(t, 13)
	cfg := fastCfg()
	shards := ShardIID(train, cfg.Nodes, rng.New(14))
	res, err := Train(shards, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	central, _, err := hdc.Train(train, nil, hdc.TrainConfig{
		Dim: cfg.Dim, Epochs: cfg.Rounds * cfg.LocalEpochs, LearningRate: 1,
		Nonlinear: true, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	fedAcc := res.RoundAccuracy[len(res.RoundAccuracy)-1]
	centralAcc := central.Accuracy(test)
	if fedAcc < centralAcc-0.05 {
		t.Fatalf("federated IID accuracy %.3f too far below centralized %.3f", fedAcc, centralAcc)
	}
}

func TestFederatedAccuracyImprovesOverRounds(t *testing.T) {
	train, test := fedData(t, 15)
	cfg := fastCfg()
	cfg.Rounds = 5
	cfg.LocalEpochs = 1
	shards := ShardIID(train, cfg.Nodes, rng.New(16))
	res, err := Train(shards, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundAccuracy) != 5 {
		t.Fatalf("%d round accuracies", len(res.RoundAccuracy))
	}
	first, last := res.RoundAccuracy[0], res.RoundAccuracy[4]
	if last < first-0.02 {
		t.Fatalf("accuracy degraded over rounds: %.3f -> %.3f", first, last)
	}
}

func TestFederatedSurvivesLabelSkew(t *testing.T) {
	// The robustness claim: additive HDC aggregation tolerates
	// pathologically skewed shards far better than chance.
	train, test := fedData(t, 17)
	cfg := fastCfg()
	shards := ShardByLabel(train, cfg.Nodes)
	res, err := Train(shards, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.RoundAccuracy[len(res.RoundAccuracy)-1]; acc < 0.6 {
		t.Fatalf("label-skew accuracy %.3f (chance 0.25)", acc)
	}
}

func TestFederatedDeterministic(t *testing.T) {
	train, test := fedData(t, 18)
	cfg := fastCfg()
	shards := ShardIID(train, cfg.Nodes, rng.New(19))
	a, err := Train(shards, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(shards, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Global.Classes.F32 {
		if a.Global.Classes.F32[i] != b.Global.Classes.F32[i] {
			t.Fatal("same seed produced different global models")
		}
	}
}

func TestCommunicationSavings(t *testing.T) {
	train, test := fedData(t, 20)
	cfg := fastCfg()
	shards := ShardIID(train, cfg.Nodes, rng.New(21))
	res, err := Train(shards, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UploadBytesPerRound != train.Classes*cfg.Dim*4 {
		t.Fatalf("upload bytes %d", res.UploadBytesPerRound)
	}
	if res.RawDataBytes != train.Samples()*train.Features()*4 {
		t.Fatalf("raw bytes %d", res.RawDataBytes)
	}
	if s := res.CommunicationSavings(cfg); s <= 0 {
		t.Fatalf("savings %v", s)
	}
}

func TestTrainValidation(t *testing.T) {
	train, _ := fedData(t, 22)
	cfg := fastCfg()
	if _, err := Train(ShardIID(train, 3, rng.New(23)), nil, cfg); err == nil {
		t.Fatal("shard/node mismatch accepted")
	}
	shards := ShardIID(train, cfg.Nodes, rng.New(24))
	shards[2] = shards[2].Subset(nil)
	if _, err := Train(shards, nil, cfg); err == nil {
		t.Fatal("empty shard accepted")
	}
}
