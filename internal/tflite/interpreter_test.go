package tflite

import (
	"fmt"
	"math"
	"testing"

	"hdcedge/internal/tensor"
)

func TestInterpreterFloatForward(t *testing.T) {
	m := buildTinyFloatModel(1)
	it, err := NewInterpreter(m)
	if err != nil {
		t.Fatal(err)
	}
	copy(it.Input(0).F32, []float32{1, 2, 3})
	if err := it.Invoke(); err != nil {
		t.Fatal(err)
	}
	// h = [1, 2, 3, 6]; ht = tanh(h);
	// out0 = ht0 - ht1 + ht2 - ht3 + 0.1 ; out1 = 0.5*sum(ht) - 0.1
	ht := []float64{math.Tanh(1), math.Tanh(2), math.Tanh(3), math.Tanh(6)}
	want0 := ht[0] - ht[1] + ht[2] - ht[3] + 0.1
	want1 := 0.5*(ht[0]+ht[1]+ht[2]+ht[3]) - 0.1
	out := it.Output(0)
	if math.Abs(float64(out.F32[0])-want0) > 1e-5 {
		t.Fatalf("out0 = %v, want %v", out.F32[0], want0)
	}
	if math.Abs(float64(out.F32[1])-want1) > 1e-5 {
		t.Fatalf("out1 = %v, want %v", out.F32[1], want1)
	}
}

func TestInterpreterBatched(t *testing.T) {
	m := buildTinyFloatModel(3)
	it, err := NewInterpreter(m)
	if err != nil {
		t.Fatal(err)
	}
	in := it.Input(0)
	rows := [][]float32{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for r, row := range rows {
		copy(in.F32[r*3:(r+1)*3], row)
	}
	if err := it.Invoke(); err != nil {
		t.Fatal(err)
	}
	// Each batch row must be independent: compare against single-sample runs.
	for r, row := range rows {
		single, _ := NewInterpreter(buildTinyFloatModel(1))
		copy(single.Input(0).F32, row)
		if err := single.Invoke(); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			got := it.Output(0).F32[r*2+j]
			want := single.Output(0).F32[j]
			if got != want {
				t.Fatalf("batch row %d col %d: %v vs single %v", r, j, got, want)
			}
		}
	}
}

func TestInterpreterArgMax(t *testing.T) {
	b := NewBuilder("am")
	in := b.AddInput("in", tensor.Float32, 2, 3)
	out := b.ArgMax(in, "pred")
	b.MarkOutput(out)
	m := b.Finish()
	it, err := NewInterpreter(m)
	if err != nil {
		t.Fatal(err)
	}
	copy(it.Input(0).F32, []float32{1, 9, 2, 7, 3, 5})
	if err := it.Invoke(); err != nil {
		t.Fatal(err)
	}
	o := it.Output(0)
	if o.I32[0] != 1 || o.I32[1] != 0 {
		t.Fatalf("argmax = %v", o.I32)
	}
}

func TestInterpreterQuantizeDequantizeRoundTrip(t *testing.T) {
	b := NewBuilder("qdq")
	in := b.AddInput("in", tensor.Float32, 1, 4)
	q := b.Quantize(in, tensor.ChooseQuantParams(-2, 2), "q")
	dq := b.Dequantize(q, "dq")
	b.MarkOutput(dq)
	it, err := NewInterpreter(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	src := []float32{-2, -0.5, 0.5, 2}
	copy(it.Input(0).F32, src)
	if err := it.Invoke(); err != nil {
		t.Fatal(err)
	}
	// Tolerance is slightly over scale/2: the zero-point rounding can add
	// up to half a step of extra error at the range edges.
	scale := it.Tensor(q).Quant.Scale
	for i, v := range it.Output(0).F32 {
		if math.Abs(float64(v-src[i])) > scale*0.51 {
			t.Fatalf("round trip elem %d: %v -> %v", i, src[i], v)
		}
	}
}

func TestInterpreterConcat(t *testing.T) {
	b := NewBuilder("cc")
	in1 := b.AddInput("a", tensor.Float32, 2, 2)
	in2 := b.AddInput("b", tensor.Float32, 2, 3)
	out := b.AddActivation("cat", tensor.Float32, 2, 5)
	b.m.Operators = append(b.m.Operators, Operator{
		Op: OpConcat, Inputs: []int{in1, in2}, Outputs: []int{out}, Opts: Options{Axis: 1},
	})
	b.MarkOutput(out)
	it, err := NewInterpreter(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	copy(it.Input(0).F32, []float32{1, 2, 3, 4})
	copy(it.Input(1).F32, []float32{5, 6, 7, 8, 9, 10})
	if err := it.Invoke(); err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 5, 6, 7, 3, 4, 8, 9, 10}
	for i, w := range want {
		if it.Output(0).F32[i] != w {
			t.Fatalf("concat[%d] = %v, want %v", i, it.Output(0).F32[i], w)
		}
	}
}

func TestInterpreterSoftmax(t *testing.T) {
	b := NewBuilder("sm")
	in := b.AddInput("in", tensor.Float32, 1, 3)
	out := b.AddActivation("probs", tensor.Float32, 1, 3)
	b.m.Operators = append(b.m.Operators, Operator{
		Op: OpSoftmax, Inputs: []int{in}, Outputs: []int{out}, Opts: Options{Beta: 1},
	})
	b.MarkOutput(out)
	it, err := NewInterpreter(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	copy(it.Input(0).F32, []float32{1, 2, 3})
	if err := it.Invoke(); err != nil {
		t.Fatal(err)
	}
	var sum float64
	probs := it.Output(0).F32
	for _, p := range probs {
		sum += float64(p)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax sums to %v", sum)
	}
	if !(probs[2] > probs[1] && probs[1] > probs[0]) {
		t.Fatalf("softmax not monotone: %v", probs)
	}
}

func TestInterpreterTanhInt8LUT(t *testing.T) {
	// Quantized tanh must agree with float tanh within one output step.
	inQ := tensor.ChooseQuantParams(-4, 4)
	b := NewBuilder("qt")
	in := b.AddInput("in", tensor.Int8, 1, 256)
	b.SetQuant(in, inQ)
	out := b.Tanh(in, "t")
	b.MarkOutput(out)
	it, err := NewInterpreter(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		it.Input(0).I8[i] = int8(uint8(i))
	}
	if err := it.Invoke(); err != nil {
		t.Fatal(err)
	}
	o := it.Output(0)
	for i := 0; i < 256; i++ {
		x := inQ.DequantizeOne(int8(uint8(i)))
		want := math.Tanh(x)
		got := o.Quant.DequantizeOne(o.I8[i])
		if math.Abs(got-want) > o.Quant.Scale {
			t.Fatalf("tanh(%v) = %v, want %v (tol %v)", x, got, want, o.Quant.Scale)
		}
	}
}

func TestInterpreterRejectsInvalidModel(t *testing.T) {
	m := buildTinyFloatModel(1)
	m.Operators[0].Inputs[0] = 500
	if _, err := NewInterpreter(m); err == nil {
		t.Fatal("NewInterpreter accepted invalid model")
	}
}

func TestInt8FCMatchesFloatWithinQuantError(t *testing.T) {
	// A manually quantized 1-layer FC must track the float result within
	// a small multiple of the output scale.
	k, units := 16, 4
	wF := tensor.New(tensor.Float32, units, k)
	for i := range wF.F32 {
		wF.F32[i] = float32((i%7)-3) * 0.25
	}
	biasF := tensor.FromFloat32([]float32{0.5, -0.5, 1, 0}, units)
	inF := make([]float32, k)
	for i := range inF {
		inF[i] = float32(i%5) - 2
	}

	// Float reference.
	fb := NewBuilder("f")
	fin := fb.AddInput("in", tensor.Float32, 1, k)
	fout := fb.FullyConnected(fin, fb.AddConstF32("w", wF), fb.AddConstF32("b", biasF), "out")
	fb.MarkOutput(fout)
	fit, _ := NewInterpreter(fb.Finish())
	copy(fit.Input(0).F32, inF)
	if err := fit.Invoke(); err != nil {
		t.Fatal(err)
	}

	// Int8 version.
	inQ := tensor.ChooseQuantParams(-2, 2)
	wq := tensor.SymmetricQuantParams(tensor.AbsMax(wF))
	outQ := tensor.ChooseQuantParams(-16, 16)
	wI := tensor.Quantize(wF, wq)
	biasScale := inQ.Scale * wq.Scale
	biasI := tensor.New(tensor.Int32, units)
	biasI.Quant = &tensor.QuantParams{Scale: biasScale}
	for i, v := range biasF.F32 {
		biasI.I32[i] = int32(math.Round(float64(v) / biasScale))
	}
	qb := NewBuilder("q")
	qin := qb.AddInput("in", tensor.Int8, 1, k)
	qb.SetQuant(qin, inQ)
	qout := qb.FullyConnected(qin, qb.AddConstI8("w", wI), qb.AddConstI32("b", biasI), "out")
	qb.SetQuant(qout, outQ)
	qb.MarkOutput(qout)
	qit, err := NewInterpreter(qb.Finish())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range inF {
		qit.Input(0).I8[i] = inQ.QuantizeOne(float64(v))
	}
	if err := qit.Invoke(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < units; u++ {
		got := outQ.DequantizeOne(qit.Output(0).I8[u])
		want := float64(fit.Output(0).F32[u])
		// Error budget: input quant error propagated through k MACs plus
		// one output step.
		tol := float64(k)*inQ.Scale*0.6 + outQ.Scale
		if math.Abs(got-want) > tol {
			t.Fatalf("unit %d: int8 %v vs float %v (tol %v)", u, got, want, tol)
		}
	}
}

func TestInt8FCRejectsAsymmetricWeights(t *testing.T) {
	k, units := 4, 2
	wI := tensor.New(tensor.Int8, units, k)
	wI.Quant = &tensor.QuantParams{Scale: 0.1, ZeroPoint: 3}
	biasI := tensor.New(tensor.Int32, units)
	biasI.Quant = &tensor.QuantParams{Scale: 0.01}
	b := NewBuilder("bad")
	in := b.AddInput("in", tensor.Int8, 1, k)
	b.SetQuant(in, tensor.QuantParams{Scale: 0.1, ZeroPoint: 0})
	out := b.FullyConnected(in, b.AddConstI8("w", wI), b.AddConstI32("b", biasI), "out")
	b.SetQuant(out, tensor.QuantParams{Scale: 0.1, ZeroPoint: 0})
	b.MarkOutput(out)
	it, err := NewInterpreter(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Invoke(); err == nil {
		t.Fatal("int8 FC accepted asymmetric weights")
	}
}

func TestInterpretersConcurrentlySafe(t *testing.T) {
	// Separate interpreters over the same quantized model share only the
	// memoized tanh LUT; concurrent invokes must be race-free and
	// identical. Run with -race to check the LUT cache.
	m := buildTinyFloatModel(1)
	qm, err := QuantizeModel(m, tinyCalib())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewInterpreter(qm)
	if err != nil {
		t.Fatal(err)
	}
	copy(ref.Input(0).F32, []float32{0.5, -1, 1.5})
	if err := ref.Invoke(); err != nil {
		t.Fatal(err)
	}
	want := append([]float32(nil), ref.Output(0).F32...)

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			it, err := NewInterpreter(qm)
			if err != nil {
				errs <- err
				return
			}
			copy(it.Input(0).F32, []float32{0.5, -1, 1.5})
			for i := 0; i < 20; i++ {
				if err := it.Invoke(); err != nil {
					errs <- err
					return
				}
				for j := range want {
					if it.Output(0).F32[j] != want[j] {
						errs <- fmt.Errorf("worker output diverged at %d", j)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestInterpreterLogisticFloat(t *testing.T) {
	b := NewBuilder("lg")
	in := b.AddInput("in", tensor.Float32, 1, 5)
	out := b.Logistic(in, "s")
	b.MarkOutput(out)
	it, err := NewInterpreter(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	copy(it.Input(0).F32, []float32{-10, -1, 0, 1, 10})
	if err := it.Invoke(); err != nil {
		t.Fatal(err)
	}
	o := it.Output(0).F32
	if o[2] != 0.5 {
		t.Fatalf("sigmoid(0) = %v", o[2])
	}
	if o[0] > 0.001 || o[4] < 0.999 {
		t.Fatalf("saturation wrong: %v", o)
	}
	if math.Abs(float64(o[1]+o[3])-1) > 1e-6 {
		t.Fatalf("sigmoid symmetry: %v + %v", o[1], o[3])
	}
}

func TestInterpreterLogisticInt8LUT(t *testing.T) {
	inQ := tensor.ChooseQuantParams(-6, 6)
	b := NewBuilder("lgq")
	in := b.AddInput("in", tensor.Int8, 1, 256)
	b.SetQuant(in, inQ)
	out := b.Logistic(in, "s")
	b.MarkOutput(out)
	it, err := NewInterpreter(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	oq := it.Output(0).Quant
	if oq.Scale != 1.0/256.0 || oq.ZeroPoint != -128 {
		t.Fatalf("logistic output quant %+v; want TFLite convention", oq)
	}
	for i := 0; i < 256; i++ {
		it.Input(0).I8[i] = int8(uint8(i))
	}
	if err := it.Invoke(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		x := inQ.DequantizeOne(int8(uint8(i)))
		want := 1 / (1 + math.Exp(-x))
		got := oq.DequantizeOne(it.Output(0).I8[i])
		if math.Abs(got-want) > oq.Scale {
			t.Fatalf("sigmoid(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestLogisticDelegatesAndQuantizes(t *testing.T) {
	// A logistic-activated wide network must quantize and delegate just
	// like the tanh one.
	b := NewBuilder("lgnet")
	in := b.AddInput("in", tensor.Float32, 2, 6)
	w := tensor.New(tensor.Float32, 16, 6)
	for i := range w.F32 {
		w.F32[i] = float32(i%5) * 0.1
	}
	bias := tensor.New(tensor.Float32, 16)
	h := b.FullyConnected(in, b.AddConstF32("w", w), b.AddConstF32("b", bias), "h")
	s := b.Logistic(h, "act")
	b.MarkOutput(s)
	m := b.Finish()
	var calib [][][]float32
	for i := 0; i < 16; i++ {
		buf := make([]float32, 12)
		for j := range buf {
			buf[j] = float32((i+j)%7) - 3
		}
		calib = append(calib, [][]float32{buf})
	}
	qm, err := QuantizeModel(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	hasLogistic := false
	for _, op := range qm.Operators {
		if op.Op == OpLogistic {
			hasLogistic = true
		}
	}
	if !hasLogistic {
		t.Fatal("quantized model lost the LOGISTIC op")
	}
	// Quantized output must track float.
	fit, _ := NewInterpreter(m)
	qit, err := NewInterpreter(qm)
	if err != nil {
		t.Fatal(err)
	}
	input := []float32{1, -1, 2, -2, 0.5, 0, -0.5, 3, -3, 1.5, 0.25, -0.25}
	copy(fit.Input(0).F32, input)
	copy(qit.Input(0).F32, input)
	if err := fit.Invoke(); err != nil {
		t.Fatal(err)
	}
	if err := qit.Invoke(); err != nil {
		t.Fatal(err)
	}
	for i := range fit.Output(0).F32 {
		d := math.Abs(float64(fit.Output(0).F32[i] - qit.Output(0).F32[i]))
		if d > 0.05 {
			t.Fatalf("elem %d deviates %v", i, d)
		}
	}
}
