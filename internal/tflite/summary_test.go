package tflite

import (
	"strings"
	"testing"
	"testing/quick"

	"hdcedge/internal/tensor"
)

func TestAnalyzeOpsMACs(t *testing.T) {
	m := buildTinyFloatModel(2) // [2,3] -> FC(4) -> TANH -> FC(2)
	costs := m.AnalyzeOps()
	if len(costs) != 3 {
		t.Fatalf("%d op costs", len(costs))
	}
	if costs[0].MACs != 2*3*4 {
		t.Errorf("FC1 MACs = %d, want 24", costs[0].MACs)
	}
	if costs[1].MACs != 0 {
		t.Errorf("TANH MACs = %d", costs[1].MACs)
	}
	if costs[2].MACs != 2*4*2 {
		t.Errorf("FC2 MACs = %d, want 16", costs[2].MACs)
	}
	if m.TotalMACs() != 24+16 {
		t.Errorf("TotalMACs = %d", m.TotalMACs())
	}
}

func TestAnalyzeOpsParams(t *testing.T) {
	m := buildTinyFloatModel(1)
	costs := m.AnalyzeOps()
	// FC1 references w1 (12 floats) + b1 (4 floats) = 64 bytes.
	if costs[0].Params != 64 {
		t.Errorf("FC1 params = %d, want 64", costs[0].Params)
	}
}

func TestActivationBytes(t *testing.T) {
	m := buildTinyFloatModel(1)
	// Activations: in [1,3], h [1,4], ht [1,4], out [1,2] = 13 floats.
	if got := m.ActivationBytes(); got != 13*4 {
		t.Errorf("ActivationBytes = %d, want 52", got)
	}
}

func TestSummaryRenders(t *testing.T) {
	s := buildTinyFloatModel(2).Summary()
	for _, want := range []string{"FULLY_CONNECTED", "TANH", "MACs", "param bytes", "inputs:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestUnusedDetection(t *testing.T) {
	m := buildTinyFloatModel(1)
	if u := m.Unused(); len(u) != 0 {
		t.Fatalf("clean model reports unused tensors %v", u)
	}
	b := NewBuilder("u")
	in := b.AddInput("in", tensor.Float32, 1, 2)
	b.AddActivation("orphan", tensor.Float32, 1, 2)
	b.MarkOutput(in)
	m2 := b.Finish()
	if u := m2.Unused(); len(u) != 1 {
		t.Fatalf("orphan not detected: %v", u)
	}
}

func TestDTypeCounts(t *testing.T) {
	m := buildTinyFloatModel(1)
	counts := m.DTypeCounts()
	if counts[tensor.Float32] != len(m.Tensors) {
		t.Fatalf("float model counts %v", counts)
	}
	qm, err := QuantizeModel(m, tinyCalib())
	if err != nil {
		t.Fatal(err)
	}
	qc := qm.DTypeCounts()
	if qc[tensor.Int8] < 5 {
		t.Fatalf("quantized model has only %d int8 tensors: %v", qc[tensor.Int8], qc)
	}
}

// Property: a corrupted serialized model never panics the reader — it
// either fails to parse or yields a model that validates.
func TestQuickReadNeverPanics(t *testing.T) {
	base := buildTinyFloatModel(2).Marshal()
	f := func(pos uint16, val byte) bool {
		raw := append([]byte(nil), base...)
		raw[int(pos)%len(raw)] = val
		defer func() {
			if recover() != nil {
				t.Errorf("Read panicked for corruption at %d=%d", pos, val)
			}
		}()
		m, err := Unmarshal(raw)
		if err != nil {
			return true
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: truncating the stream at any point never panics.
func TestQuickTruncationNeverPanics(t *testing.T) {
	base := buildTinyFloatModel(1).Marshal()
	f := func(cut uint16) bool {
		n := int(cut) % len(base)
		defer func() {
			if recover() != nil {
				t.Errorf("Read panicked for truncation at %d", n)
			}
		}()
		_, err := Unmarshal(base[:n])
		if n == len(base)-crcFooterLen {
			// Cutting exactly the integrity footer leaves a well-formed
			// legacy blob, which must still parse.
			return err == nil
		}
		return err != nil // any other strict prefix must never parse
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPruneRemovesOrphans(t *testing.T) {
	b := NewBuilder("p")
	in := b.AddInput("in", tensor.Float32, 1, 3)
	w := tensor.FromFloat32([]float32{1, 0, 0, 0, 1, 0}, 2, 3)
	bias := tensor.New(tensor.Float32, 2)
	out := b.FullyConnected(in, b.AddConstF32("w", w), b.AddConstF32("b", bias), "out")
	b.AddActivation("orphan", tensor.Float32, 1, 9)
	b.AddConstF32("deadWeight", tensor.New(tensor.Float32, 4, 4))
	b.MarkOutput(out)
	m := b.Finish()
	if len(m.Unused()) != 2 {
		t.Fatalf("setup: %d unused", len(m.Unused()))
	}

	pruned := m.Prune()
	if err := pruned.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pruned.Unused()) != 0 {
		t.Fatalf("prune left %d orphans", len(pruned.Unused()))
	}
	if len(pruned.Tensors) != len(m.Tensors)-2 {
		t.Fatalf("pruned to %d tensors from %d", len(pruned.Tensors), len(m.Tensors))
	}
	if len(pruned.Buffers) != len(m.Buffers)-1 {
		t.Fatalf("pruned to %d buffers from %d", len(pruned.Buffers), len(m.Buffers))
	}

	// Behavior must be identical.
	a, err := NewInterpreter(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewInterpreter(pruned)
	if err != nil {
		t.Fatal(err)
	}
	copy(a.Input(0).F32, []float32{1, 2, 3})
	copy(p.Input(0).F32, []float32{1, 2, 3})
	if err := a.Invoke(); err != nil {
		t.Fatal(err)
	}
	if err := p.Invoke(); err != nil {
		t.Fatal(err)
	}
	for i := range a.Output(0).F32 {
		if a.Output(0).F32[i] != p.Output(0).F32[i] {
			t.Fatal("pruning changed behavior")
		}
	}
}

func TestPruneIdempotentOnCleanModel(t *testing.T) {
	m := buildTinyFloatModel(2)
	pruned := m.Prune()
	if len(pruned.Tensors) != len(m.Tensors) || len(pruned.Buffers) != len(m.Buffers) {
		t.Fatal("prune altered a clean model")
	}
	if err := pruned.Validate(); err != nil {
		t.Fatal(err)
	}
}
