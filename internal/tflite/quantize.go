package tflite

import (
	"fmt"
	"math"

	"hdcedge/internal/tensor"
)

// QuantizeModel performs post-training full-integer quantization of a
// float model, mirroring the TFLite converter's representative-dataset
// flow:
//
//  1. The float model is executed over every calibration batch and the
//     dynamic range of each activation is recorded.
//  2. A new graph is emitted in which activations are int8 with the
//     observed ranges, FULLY_CONNECTED weights are symmetric int8, biases
//     are int32 at scale (inScale·weightScale), and TANH outputs use the
//     fixed 1/128 scale.
//  3. The model keeps float inputs/outputs: a QUANTIZE op is inserted
//     after each input and a DEQUANTIZE before each float output, so
//     callers are unaffected. ARG_MAX outputs remain int32.
//
// Each calibration batch must contain exactly one full input tensor's
// worth of float data per model input, in model-input order.
func QuantizeModel(m *Model, calib [][][]float32) (*Model, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(calib) == 0 {
		return nil, fmt.Errorf("tflite: quantization requires a representative dataset")
	}
	observers, err := calibrate(m, calib)
	if err != nil {
		return nil, err
	}
	return rewriteQuantized(m, observers)
}

func calibrate(m *Model, calib [][][]float32) ([]tensor.RangeObserver, error) {
	it, err := NewInterpreter(m)
	if err != nil {
		return nil, err
	}
	observers := make([]tensor.RangeObserver, len(m.Tensors))
	for bi, batch := range calib {
		if len(batch) != len(m.Inputs) {
			return nil, fmt.Errorf("tflite: calibration batch %d has %d inputs, model needs %d",
				bi, len(batch), len(m.Inputs))
		}
		for ii := range m.Inputs {
			in := it.Input(ii)
			if in.DType != tensor.Float32 {
				return nil, fmt.Errorf("tflite: calibration requires float model inputs")
			}
			if len(batch[ii]) != len(in.F32) {
				return nil, fmt.Errorf("tflite: calibration batch %d input %d has %d values, want %d",
					bi, ii, len(batch[ii]), len(in.F32))
			}
			copy(in.F32, batch[ii])
		}
		if err := it.Invoke(); err != nil {
			return nil, fmt.Errorf("tflite: calibration invoke: %w", err)
		}
		for ti := range m.Tensors {
			t := it.Tensor(ti)
			if t.DType == tensor.Float32 && m.Tensors[ti].Buffer == NoBuffer {
				observers[ti].Observe(t)
			}
		}
	}
	return observers, nil
}

func rewriteQuantized(m *Model, observers []tensor.RangeObserver) (*Model, error) {
	b := NewBuilder(m.Name + "_int8")
	// qIdx maps an original tensor index to its int8 (or passthrough)
	// tensor in the new graph.
	qIdx := make([]int, len(m.Tensors))
	for i := range qIdx {
		qIdx[i] = -1
	}

	actParams := func(ti int) tensor.QuantParams {
		return observers[ti].Params()
	}

	// Inputs: declare float inputs, then QUANTIZE into the graph.
	for _, in := range m.Inputs {
		info := m.Tensors[in]
		fIdx := b.AddInput(info.Name, tensor.Float32, info.Shape...)
		qIdx[in] = b.Quantize(fIdx, actParams(in), info.Name+"_q")
	}

	for oi, op := range m.Operators {
		switch op.Op {
		case OpFullyConnected:
			if err := quantizeFC(b, m, op, qIdx, actParams); err != nil {
				return nil, fmt.Errorf("tflite: op %d: %w", oi, err)
			}
		case OpTanh:
			in := qIdx[op.Inputs[0]]
			if in < 0 {
				return nil, fmt.Errorf("tflite: op %d TANH input not materialized", oi)
			}
			qIdx[op.Outputs[0]] = b.Tanh(in, m.Tensors[op.Outputs[0]].Name)
		case OpLogistic:
			in := qIdx[op.Inputs[0]]
			if in < 0 {
				return nil, fmt.Errorf("tflite: op %d LOGISTIC input not materialized", oi)
			}
			qIdx[op.Outputs[0]] = b.Logistic(in, m.Tensors[op.Outputs[0]].Name)
		case OpConcat:
			if err := quantizeConcat(b, m, op, qIdx); err != nil {
				return nil, fmt.Errorf("tflite: op %d: %w", oi, err)
			}
		case OpArgMax:
			in := qIdx[op.Inputs[0]]
			qIdx[op.Outputs[0]] = b.ArgMax(in, m.Tensors[op.Outputs[0]].Name)
		case OpReshape:
			// Reshape passes through with the input's quantization.
			in := qIdx[op.Inputs[0]]
			inInfo := b.m.Tensors[in]
			outShape := m.Tensors[op.Outputs[0]].Shape
			out := b.AddActivation(m.Tensors[op.Outputs[0]].Name, inInfo.DType, outShape...)
			if inInfo.Quant != nil {
				b.SetQuant(out, *inInfo.Quant)
			}
			b.m.Operators = append(b.m.Operators, Operator{Op: OpReshape, Inputs: []int{in}, Outputs: []int{out}})
			qIdx[op.Outputs[0]] = out
		default:
			return nil, fmt.Errorf("tflite: cannot quantize op %v", op.Op)
		}
	}

	// Outputs: dequantize int8 outputs back to float; int32 (ARG_MAX)
	// passes through.
	for _, out := range m.Outputs {
		ni := qIdx[out]
		if ni < 0 {
			return nil, fmt.Errorf("tflite: model output %d not materialized", out)
		}
		switch b.m.Tensors[ni].DType {
		case tensor.Int8:
			b.MarkOutput(b.Dequantize(ni, m.Tensors[out].Name+"_deq"))
		default:
			b.MarkOutput(ni)
		}
	}
	return b.Finish(), nil
}

func quantizeFC(b *Builder, m *Model, op Operator, qIdx []int, actParams func(int) tensor.QuantParams) error {
	in := qIdx[op.Inputs[0]]
	if in < 0 {
		return fmt.Errorf("FC input not materialized")
	}
	wT, err := m.ConstTensor(op.Inputs[1])
	if err != nil {
		return fmt.Errorf("FC weights must be constant: %w", err)
	}
	biasT, err := m.ConstTensor(op.Inputs[2])
	if err != nil {
		return fmt.Errorf("FC bias must be constant: %w", err)
	}
	if wT.DType != tensor.Float32 || biasT.DType != tensor.Float32 {
		return fmt.Errorf("FC expects float weights/bias, got %v/%v", wT.DType, biasT.DType)
	}
	wq := tensor.SymmetricQuantParams(tensor.AbsMax(wT))
	wInt := tensor.Quantize(wT, wq)

	inQuant := b.m.Tensors[in].Quant
	if inQuant == nil {
		return fmt.Errorf("FC input has no quantization")
	}
	biasScale := inQuant.Scale * wq.Scale
	biasInt := tensor.New(tensor.Int32, biasT.Shape...)
	biasInt.Quant = &tensor.QuantParams{Scale: biasScale, ZeroPoint: 0}
	for i, v := range biasT.F32 {
		q := math.Round(float64(v) / biasScale)
		if q > math.MaxInt32 {
			q = math.MaxInt32
		}
		if q < math.MinInt32 {
			q = math.MinInt32
		}
		biasInt.I32[i] = int32(q)
	}

	wName := m.Tensors[op.Inputs[1]].Name
	bName := m.Tensors[op.Inputs[2]].Name
	wi := b.AddConstI8(wName+"_q", wInt)
	bi := b.AddConstI32(bName+"_q", biasInt)
	out := b.FullyConnected(in, wi, bi, m.Tensors[op.Outputs[0]].Name)
	b.SetQuant(out, actParams(op.Outputs[0]))
	qIdx[op.Outputs[0]] = out
	return nil
}

func quantizeConcat(b *Builder, m *Model, op Operator, qIdx []int) error {
	ins := make([]int, len(op.Inputs))
	var q *tensor.QuantParams
	batch, total := 0, 0
	for i, oi := range op.Inputs {
		ni := qIdx[oi]
		if ni < 0 {
			return fmt.Errorf("CONCAT input not materialized")
		}
		info := b.m.Tensors[ni]
		if info.Quant == nil {
			return fmt.Errorf("CONCAT input missing quantization")
		}
		if q == nil {
			q = info.Quant
			batch = info.Shape[0]
		} else if info.Quant.Scale != q.Scale || info.Quant.ZeroPoint != q.ZeroPoint {
			return fmt.Errorf("CONCAT inputs have differing quantization (%v vs %v)", *info.Quant, *q)
		}
		total += info.Shape[1]
		ins[i] = ni
	}
	out := b.AddActivation(m.Tensors[op.Outputs[0]].Name, tensor.Int8, batch, total)
	b.SetQuant(out, *q)
	b.m.Operators = append(b.m.Operators, Operator{
		Op: OpConcat, Inputs: ins, Outputs: []int{out}, Opts: Options{Axis: 1},
	})
	qIdx[op.Outputs[0]] = out
	return nil
}
