// Package tflite implements a self-contained, TFLite-style model format:
// a flat graph of tensors and operators with constant buffers, a binary
// serialization, a reference interpreter with float32 and full-integer
// (int8) kernels, and a post-training quantizer driven by a representative
// dataset.
//
// The op set is the subset the paper's hyper-wide networks need:
// FULLY_CONNECTED, TANH, QUANTIZE, DEQUANTIZE, ARGMAX, CONCAT and RESHAPE.
// Integer kernels follow the TFLite reference semantics (symmetric int8
// weights, int32 bias at scale in*w, fixed-point output rescaling), so a
// quantized model here behaves like a model produced by the TFLite
// converter and consumed by the Edge TPU compiler.
package tflite

import "fmt"

// OpCode identifies an operator type.
type OpCode uint8

const (
	OpFullyConnected OpCode = iota
	OpTanh
	OpQuantize
	OpDequantize
	OpArgMax
	OpConcat
	OpReshape
	OpSoftmax
	OpLogistic
)

var opNames = map[OpCode]string{
	OpFullyConnected: "FULLY_CONNECTED",
	OpTanh:           "TANH",
	OpQuantize:       "QUANTIZE",
	OpDequantize:     "DEQUANTIZE",
	OpArgMax:         "ARG_MAX",
	OpConcat:         "CONCATENATION",
	OpReshape:        "RESHAPE",
	OpSoftmax:        "SOFTMAX",
	OpLogistic:       "LOGISTIC",
}

// String implements fmt.Stringer.
func (o OpCode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Options carries per-operator parameters. Only the fields relevant to the
// operator's OpCode are meaningful.
type Options struct {
	// Axis is the reduction/concatenation axis for ARG_MAX and
	// CONCATENATION.
	Axis int32
	// Beta is the SOFTMAX temperature.
	Beta float32
}
