package tflite

import (
	"fmt"
	"strings"

	"hdcedge/internal/tensor"
)

// OpCost summarizes one operator's static work.
type OpCost struct {
	Index  int
	Op     OpCode
	MACs   uint64 // multiply-accumulates (FULLY_CONNECTED)
	Elems  int    // output elements
	Params int    // constant bytes referenced
}

// AnalyzeOps returns the per-operator work profile of the model.
func (m *Model) AnalyzeOps() []OpCost {
	costs := make([]OpCost, len(m.Operators))
	for i, op := range m.Operators {
		c := OpCost{Index: i, Op: op.Op}
		for _, ti := range op.Outputs {
			c.Elems += m.Tensors[ti].Shape.Elems()
		}
		for _, ti := range op.Inputs {
			info := m.Tensors[ti]
			if info.Buffer != NoBuffer {
				c.Params += len(m.Buffers[info.Buffer])
			}
		}
		if op.Op == OpFullyConnected {
			in := m.Tensors[op.Inputs[0]]
			w := m.Tensors[op.Inputs[1]]
			if len(in.Shape) == 2 && len(w.Shape) == 2 {
				c.MACs = uint64(in.Shape[0]) * uint64(in.Shape[1]) * uint64(w.Shape[0])
			}
		}
		costs[i] = c
	}
	return costs
}

// TotalMACs sums the model's multiply-accumulate count per invocation.
func (m *Model) TotalMACs() uint64 {
	var total uint64
	for _, c := range m.AnalyzeOps() {
		total += c.MACs
	}
	return total
}

// ActivationBytes returns the total runtime-tensor footprint.
func (m *Model) ActivationBytes() int {
	total := 0
	for _, t := range m.Tensors {
		if t.Buffer == NoBuffer {
			total += t.Shape.Elems() * t.DType.Size()
		}
	}
	return total
}

// Summary renders a human-readable structural report: tensors, operator
// costs, parameter and activation footprints.
func (m *Model) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Model %q: %d tensors, %d operators\n", m.Name, len(m.Tensors), len(m.Operators))
	fmt.Fprintf(&sb, "  inputs:  %s\n", tensorList(m, m.Inputs))
	fmt.Fprintf(&sb, "  outputs: %s\n", tensorList(m, m.Outputs))
	for _, c := range m.AnalyzeOps() {
		fmt.Fprintf(&sb, "  op%-3d %-16v %12d MACs  %8d out elems  %10d param bytes\n",
			c.Index, c.Op, c.MACs, c.Elems, c.Params)
	}
	fmt.Fprintf(&sb, "  total: %d MACs/invoke, %d param bytes, %d activation bytes\n",
		m.TotalMACs(), m.ParamBytes(), m.ActivationBytes())
	return sb.String()
}

func tensorList(m *Model, idxs []int) string {
	parts := make([]string, len(idxs))
	for i, ti := range idxs {
		info := m.Tensors[ti]
		parts[i] = fmt.Sprintf("%s %v%v", info.Name, info.DType, info.Shape)
	}
	return strings.Join(parts, ", ")
}

// Unused reports tensors that no operator consumes and that are not model
// outputs — a lint for hand-built graphs.
func (m *Model) Unused() []int {
	used := make([]bool, len(m.Tensors))
	for _, op := range m.Operators {
		for _, ti := range op.Inputs {
			used[ti] = true
		}
	}
	for _, ti := range m.Outputs {
		used[ti] = true
	}
	var out []int
	for i := range m.Tensors {
		if !used[i] {
			out = append(out, i)
		}
	}
	return out
}

// DTypeCounts tallies tensors by element type — a quick check that a
// quantized model is actually integer-dominated.
func (m *Model) DTypeCounts() map[tensor.DType]int {
	counts := map[tensor.DType]int{}
	for _, t := range m.Tensors {
		counts[t.DType]++
	}
	return counts
}

// Prune returns a copy of the model with unused activation tensors and
// unreferenced constant buffers removed, remapping all indices — the
// dead-code-elimination pass a converter runs before serialization.
// Operators are untouched; only tensors no operator or model output
// touches disappear.
func (m *Model) Prune() *Model {
	used := make([]bool, len(m.Tensors))
	for _, op := range m.Operators {
		for _, ti := range op.Inputs {
			used[ti] = true
		}
		for _, ti := range op.Outputs {
			used[ti] = true
		}
	}
	for _, ti := range m.Inputs {
		used[ti] = true
	}
	for _, ti := range m.Outputs {
		used[ti] = true
	}

	tensorMap := make([]int, len(m.Tensors))
	out := &Model{Name: m.Name}
	bufferMap := map[int]int{}
	for i, ti := range m.Tensors {
		if !used[i] {
			tensorMap[i] = -1
			continue
		}
		nt := ti
		nt.Shape = ti.Shape.Clone()
		nt.Quant = cloneQuant(ti.Quant)
		if ti.Buffer != NoBuffer {
			nb, ok := bufferMap[ti.Buffer]
			if !ok {
				nb = len(out.Buffers)
				out.Buffers = append(out.Buffers, m.Buffers[ti.Buffer])
				bufferMap[ti.Buffer] = nb
			}
			nt.Buffer = nb
		}
		tensorMap[i] = len(out.Tensors)
		out.Tensors = append(out.Tensors, nt)
	}
	remap := func(idxs []int) []int {
		o := make([]int, len(idxs))
		for i, ti := range idxs {
			o[i] = tensorMap[ti]
		}
		return o
	}
	for _, op := range m.Operators {
		out.Operators = append(out.Operators, Operator{
			Op: op.Op, Inputs: remap(op.Inputs), Outputs: remap(op.Outputs), Opts: op.Opts,
		})
	}
	out.Inputs = remap(m.Inputs)
	out.Outputs = remap(m.Outputs)
	return out
}
