package tflite

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"
)

func TestChecksumRoundTrip(t *testing.T) {
	m := buildTinyFloatModel(2)
	blob := m.Marshal()
	if len(blob) < crcFooterLen || string(blob[len(blob)-crcFooterLen:len(blob)-4]) != crcMagic {
		t.Fatalf("marshal emitted no integrity footer: tail %q", blob[len(blob)-crcFooterLen:])
	}
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("checksummed round trip diverged")
	}
}

func TestChecksumRejectsBitFlip(t *testing.T) {
	blob := buildTinyFloatModel(1).Marshal()
	// Flip one payload bit: the footer CRC no longer matches.
	corrupt := append([]byte(nil), blob...)
	corrupt[10] ^= 0x40
	_, err := Unmarshal(corrupt)
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("payload bit flip returned %v, want ChecksumError", err)
	}
	if ce.Want == ce.Got {
		t.Fatalf("mismatch error with equal sums: %v", ce)
	}
	// Flip a bit in the recorded CRC itself: also a checksum mismatch.
	corrupt = append([]byte(nil), blob...)
	corrupt[len(corrupt)-1] ^= 0x01
	if _, err := Unmarshal(corrupt); !errors.As(err, &ce) {
		t.Fatalf("footer bit flip returned %v, want ChecksumError", err)
	}
	// Corrupt the footer magic: the blob no longer ends in a footer, so the
	// stale 8 bytes are trailing garbage, not a silently-accepted legacy blob.
	corrupt = append([]byte(nil), blob...)
	corrupt[len(corrupt)-crcFooterLen] ^= 0x02
	if _, err := Unmarshal(corrupt); err == nil {
		t.Fatal("corrupt footer magic accepted")
	}
}

func TestChecksumAcceptsLegacyBlob(t *testing.T) {
	m := buildTinyFloatModel(2)
	blob := m.Marshal()
	legacy := blob[:len(blob)-crcFooterLen] // a pre-footer writer's output
	got, err := Unmarshal(legacy)
	if err != nil {
		t.Fatalf("legacy footerless blob rejected: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("legacy round trip diverged")
	}
	// Stream reads see the same behavior.
	if _, err := Read(bytes.NewReader(legacy)); err != nil {
		t.Fatalf("legacy stream read rejected: %v", err)
	}
}

func TestChecksumRejectsTrailingGarbage(t *testing.T) {
	blob := buildTinyFloatModel(1).Marshal()
	payload := blob[:len(blob)-crcFooterLen]
	// Garbage after a legacy payload must not parse.
	if _, err := Unmarshal(append(append([]byte(nil), payload...), 0xAA, 0xBB)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// Garbage between payload and a recomputed valid footer must not parse
	// either: the CRC passes but the model has leftover bytes.
	padded := append(append([]byte(nil), payload...), 0xAA, 0xBB, 0xCC)
	var footer [crcFooterLen]byte
	copy(footer[:4], crcMagic)
	binary.LittleEndian.PutUint32(footer[4:], crc32.ChecksumIEEE(padded))
	if _, err := Unmarshal(append(padded, footer[:]...)); err == nil {
		t.Fatal("padded-but-checksummed blob accepted")
	}
}

// FuzzModelChecksum asserts the integrity property end to end: starting
// from a valid checksummed blob, any single bit flip and any strict
// truncation must be rejected — except cutting exactly the footer, which
// by design yields a valid legacy blob.
func FuzzModelChecksum(f *testing.F) {
	blob := buildTinyFloatModel(1).Marshal()
	f.Add(0, uint8(1))
	f.Add(len(blob)-1, uint8(0x80))
	f.Add(len(blob)/2, uint8(0xFF))
	f.Fuzz(func(t *testing.T, pos int, mask uint8) {
		if pos < 0 {
			pos = -pos
		}
		pos %= len(blob)
		if mask != 0 {
			corrupt := append([]byte(nil), blob...)
			corrupt[pos] ^= mask
			if _, err := Unmarshal(corrupt); err == nil {
				t.Fatalf("bit flip %#02x at %d accepted", mask, pos)
			}
		}
		if pos > 0 && pos != len(blob)-crcFooterLen {
			if _, err := Unmarshal(blob[:pos]); err == nil {
				t.Fatalf("truncation to %d bytes accepted", pos)
			}
		}
	})
}
