package tflite

import (
	"encoding/binary"
	"fmt"
	"math"

	"hdcedge/internal/tensor"
)

// Builder incrementally assembles a Model. The typical flow is:
//
//	b := tflite.NewBuilder("encoder")
//	in := b.AddInput("features", tensor.Float32, batch, n)
//	w := b.AddConstF32("B_T", bt)       // [d, n]
//	bias := b.AddConstF32("bias0", ...) // [d]
//	h := b.FullyConnected(in, w, bias, "hidden")
//	e := b.Tanh(h, "encoded")
//	b.MarkOutput(e)
//	model := b.Finish()
type Builder struct {
	m Model
}

// NewBuilder returns an empty builder for a model with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{m: Model{Name: name}}
}

// AddInput declares a model input activation and returns its tensor index.
func (b *Builder) AddInput(name string, dt tensor.DType, shape ...int) int {
	idx := b.addTensor(TensorInfo{Name: name, DType: dt, Shape: tensor.Shape(shape).Clone(), Buffer: NoBuffer})
	b.m.Inputs = append(b.m.Inputs, idx)
	return idx
}

// AddActivation declares an intermediate runtime tensor.
func (b *Builder) AddActivation(name string, dt tensor.DType, shape ...int) int {
	return b.addTensor(TensorInfo{Name: name, DType: dt, Shape: tensor.Shape(shape).Clone(), Buffer: NoBuffer})
}

// AddConstF32 adds a float32 constant tensor backed by a new buffer.
func (b *Builder) AddConstF32(name string, t *tensor.Tensor) int {
	if t.DType != tensor.Float32 {
		panic("tflite: AddConstF32 requires a float tensor")
	}
	buf := f32ToBytes(t.F32)
	return b.addConst(name, tensor.Float32, t.Shape, nil, buf)
}

// AddConstI8 adds an int8 constant tensor with quantization parameters.
func (b *Builder) AddConstI8(name string, t *tensor.Tensor) int {
	if t.DType != tensor.Int8 {
		panic("tflite: AddConstI8 requires an int8 tensor")
	}
	return b.addConst(name, tensor.Int8, t.Shape, t.Quant, i8ToBytes(t.I8))
}

// AddConstI32 adds an int32 constant tensor (e.g. a quantized bias).
func (b *Builder) AddConstI32(name string, t *tensor.Tensor) int {
	if t.DType != tensor.Int32 {
		panic("tflite: AddConstI32 requires an int32 tensor")
	}
	return b.addConst(name, tensor.Int32, t.Shape, t.Quant, i32ToBytes(t.I32))
}

func (b *Builder) addConst(name string, dt tensor.DType, shape tensor.Shape, q *tensor.QuantParams, raw []byte) int {
	b.m.Buffers = append(b.m.Buffers, raw)
	return b.addTensor(TensorInfo{
		Name: name, DType: dt, Shape: shape.Clone(), Quant: cloneQuant(q),
		Buffer: len(b.m.Buffers) - 1,
	})
}

func (b *Builder) addTensor(ti TensorInfo) int {
	b.m.Tensors = append(b.m.Tensors, ti)
	return len(b.m.Tensors) - 1
}

// SetQuant attaches quantization parameters to an existing tensor.
func (b *Builder) SetQuant(idx int, q tensor.QuantParams) {
	b.m.Tensors[idx].Quant = &q
}

// FullyConnected appends out = in · Wᵀ + bias with W of shape [units, k].
// The output activation has the input's batch dimension and W's unit count,
// and the input's dtype.
func (b *Builder) FullyConnected(in, weights, bias int, outName string) int {
	wi := b.m.Tensors[weights]
	ii := b.m.Tensors[in]
	if len(wi.Shape) != 2 {
		panic(fmt.Sprintf("tflite: FC weights must be 2-D, got %v", wi.Shape))
	}
	batch := 1
	if len(ii.Shape) == 2 {
		batch = ii.Shape[0]
	}
	outDT := ii.DType
	out := b.AddActivation(outName, outDT, batch, wi.Shape[0])
	b.m.Operators = append(b.m.Operators, Operator{
		Op:     OpFullyConnected,
		Inputs: []int{in, weights, bias}, Outputs: []int{out},
	})
	return out
}

// Tanh appends an element-wise tanh. Int8 outputs use the TFLite
// convention scale = 1/128, zero point 0.
func (b *Builder) Tanh(in int, outName string) int {
	ii := b.m.Tensors[in]
	out := b.AddActivation(outName, ii.DType, ii.Shape...)
	if ii.DType == tensor.Int8 {
		b.SetQuant(out, tensor.QuantParams{Scale: 1.0 / 128.0, ZeroPoint: 0})
	}
	b.m.Operators = append(b.m.Operators, Operator{Op: OpTanh, Inputs: []int{in}, Outputs: []int{out}})
	return out
}

// Logistic appends an element-wise sigmoid. Int8 outputs use the TFLite
// convention scale = 1/256, zero point −128 (outputs in [0, 1)).
func (b *Builder) Logistic(in int, outName string) int {
	ii := b.m.Tensors[in]
	out := b.AddActivation(outName, ii.DType, ii.Shape...)
	if ii.DType == tensor.Int8 {
		b.SetQuant(out, tensor.QuantParams{Scale: 1.0 / 256.0, ZeroPoint: -128})
	}
	b.m.Operators = append(b.m.Operators, Operator{Op: OpLogistic, Inputs: []int{in}, Outputs: []int{out}})
	return out
}

// Quantize appends a float→int8 quantize node with the given parameters.
func (b *Builder) Quantize(in int, q tensor.QuantParams, outName string) int {
	ii := b.m.Tensors[in]
	out := b.AddActivation(outName, tensor.Int8, ii.Shape...)
	b.SetQuant(out, q)
	b.m.Operators = append(b.m.Operators, Operator{Op: OpQuantize, Inputs: []int{in}, Outputs: []int{out}})
	return out
}

// Dequantize appends an int8→float dequantize node.
func (b *Builder) Dequantize(in int, outName string) int {
	ii := b.m.Tensors[in]
	out := b.AddActivation(outName, tensor.Float32, ii.Shape...)
	b.m.Operators = append(b.m.Operators, Operator{Op: OpDequantize, Inputs: []int{in}, Outputs: []int{out}})
	return out
}

// ArgMax appends an arg-max over the last axis, producing int32 indices.
func (b *Builder) ArgMax(in int, outName string) int {
	ii := b.m.Tensors[in]
	outShape := ii.Shape.Clone()
	if len(outShape) > 0 {
		outShape = outShape[:len(outShape)-1]
	}
	if len(outShape) == 0 {
		outShape = tensor.Shape{1}
	}
	out := b.AddActivation(outName, tensor.Int32, outShape...)
	b.m.Operators = append(b.m.Operators, Operator{
		Op: OpArgMax, Inputs: []int{in}, Outputs: []int{out},
		Opts: Options{Axis: int32(len(ii.Shape) - 1)},
	})
	return out
}

// MarkOutput registers a tensor as a model output.
func (b *Builder) MarkOutput(idx int) {
	b.m.Outputs = append(b.m.Outputs, idx)
}

// Finish validates and returns the model. It panics on an invalid graph,
// since builder misuse is a programming error.
func (b *Builder) Finish() *Model {
	m := b.m
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return &m
}

// --- raw byte conversion helpers (little endian, matching serialization) ---

func f32ToBytes(xs []float32) []byte {
	out := make([]byte, 4*len(xs))
	for i, v := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

func bytesToF32(raw []byte) []float32 {
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

func i8ToBytes(xs []int8) []byte {
	out := make([]byte, len(xs))
	for i, v := range xs {
		out[i] = byte(v)
	}
	return out
}

func bytesToI8(raw []byte) []int8 {
	out := make([]int8, len(raw))
	for i, v := range raw {
		out[i] = int8(v)
	}
	return out
}

func i32ToBytes(xs []int32) []byte {
	out := make([]byte, 4*len(xs))
	for i, v := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

func bytesToI32(raw []byte) []int32 {
	out := make([]int32, len(raw)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}
