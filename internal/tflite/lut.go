package tflite

import (
	"fmt"
	"math"
	"sync"

	"hdcedge/internal/tensor"
)

// Int8 element-wise functions are executed through 256-entry lookup tables,
// exactly as TFLite and the Edge TPU do: the table is indexed by the raw
// int8 code (biased to uint8), and each entry is the quantized function
// value. Tables are memoized since every invoke of a given model reuses the
// same parameters.

type lutKey struct {
	fn       string
	inScale  float64
	inZP     int32
	outScale float64
	outZP    int32
}

var (
	lutMu    sync.Mutex
	lutCache = map[lutKey]*[256]int8{}
)

// elementLUT builds (and memoizes) the int8 lookup table for fn under the
// given input/output quantization. Entry i corresponds to the int8 code
// int8(uint8(i)).
func elementLUT(name string, fn func(float64) float64, in, out tensor.QuantParams) *[256]int8 {
	key := lutKey{name, in.Scale, in.ZeroPoint, out.Scale, out.ZeroPoint}
	lutMu.Lock()
	defer lutMu.Unlock()
	if t, ok := lutCache[key]; ok {
		return t
	}
	var t [256]int8
	for i := 0; i < 256; i++ {
		code := int8(uint8(i))
		x := in.DequantizeOne(code)
		t[i] = out.QuantizeOne(fn(x))
	}
	lutCache[key] = &t
	return &t
}

// tanhLUT returns the int8 tanh table.
func tanhLUT(in, out tensor.QuantParams) *[256]int8 {
	return elementLUT("tanh", math.Tanh, in, out)
}

// logisticLUT returns the int8 sigmoid table.
func logisticLUT(in, out tensor.QuantParams) *[256]int8 {
	return elementLUT("logistic", func(x float64) float64 {
		return 1 / (1 + math.Exp(-x))
	}, in, out)
}

// ActivationLUT returns the golden lookup table for an int8 element-wise
// operator under the given quantization — the table a freshly-loaded device
// would hold in its LUT SRAM. Integrity scrubbing compares a live
// Interpreter.CachedLUT against this. Only OpTanh and OpLogistic execute
// through tables.
func ActivationLUT(op OpCode, in, out tensor.QuantParams) (*[256]int8, error) {
	switch op {
	case OpTanh:
		return tanhLUT(in, out), nil
	case OpLogistic:
		return logisticLUT(in, out), nil
	}
	return nil, fmt.Errorf("tflite: %v has no activation lookup table", op)
}

// softmaxRow computes a numerically-stable softmax into dst.
func softmaxRow(dst, src []float32, beta float32) {
	maxV := src[0]
	for _, v := range src[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(float64(beta * (v - maxV)))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}
