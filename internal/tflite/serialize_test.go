package tflite

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	m := buildTinyFloatModel(2)
	raw := m.Marshal()
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("round-tripped model differs")
	}
}

func TestSerializeRoundTripQuantized(t *testing.T) {
	m := buildTinyFloatModel(1)
	calib := [][][]float32{
		{{1, 2, 3}},
		{{-1, -2, -3}},
		{{0.5, 0, -0.5}},
	}
	qm, err := QuantizeModel(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(qm.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(qm, got) {
		t.Fatal("round-tripped quantized model differs")
	}
}

func TestSerializedModelBehavesIdentically(t *testing.T) {
	m := buildTinyFloatModel(1)
	m2, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewInterpreter(m)
	b, _ := NewInterpreter(m2)
	copy(a.Input(0).F32, []float32{0.3, -1.2, 2})
	copy(b.Input(0).F32, []float32{0.3, -1.2, 2})
	if err := a.Invoke(); err != nil {
		t.Fatal(err)
	}
	if err := b.Invoke(); err != nil {
		t.Fatal(err)
	}
	for i := range a.Output(0).F32 {
		if a.Output(0).F32[i] != b.Output(0).F32[i] {
			t.Fatalf("outputs differ at %d", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := buildTinyFloatModel(4)
	path := filepath.Join(t.TempDir(), "model.htfl")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("file round trip differs")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Unmarshal([]byte("XXXX garbage")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	raw := buildTinyFloatModel(1).Marshal()
	raw[4] = 99 // version byte (little endian u32)
	if _, err := Unmarshal(raw); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	raw := buildTinyFloatModel(1).Marshal()
	for _, cut := range []int{3, 8, len(raw) / 2, len(raw) - 1} {
		if _, err := Unmarshal(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsCorruptedGraph(t *testing.T) {
	m := buildTinyFloatModel(1)
	m.Operators[0].Inputs[0] = 77 // structurally invalid
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("reader accepted structurally invalid graph")
	}
}

func TestMarshalDeterministic(t *testing.T) {
	m := buildTinyFloatModel(2)
	if !bytes.Equal(m.Marshal(), m.Marshal()) {
		t.Fatal("Marshal is not deterministic")
	}
}
