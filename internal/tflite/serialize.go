package tflite

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"hdcedge/internal/tensor"
)

// Binary format (little endian throughout):
//
//	magic   "HTFL"          4 bytes
//	version uint32          currently 1
//	name    string          (uint32 length + bytes)
//	tensors  uint32 count, then per tensor:
//	    name string, dtype u8, rank u32, dims []i32,
//	    hasQuant u8 [scale f64, zeroPoint i32], buffer i32
//	operators uint32 count, then per op:
//	    opcode u8, nIn u32, inputs []i32, nOut u32, outputs []i32,
//	    axis i32, beta f32
//	buffers  uint32 count, then per buffer: u32 length + bytes
//	inputs   u32 count + []i32
//	outputs  u32 count + []i32
//	footer  "HCRC" + uint32 CRC32 (IEEE) of every preceding byte
//
// The footer is an integrity seal over the whole container: Unmarshal
// verifies it and rejects corrupt bytes with *ChecksumError. Blobs written
// before the footer existed (no trailing "HCRC" marker) are still accepted.

const (
	magic   = "HTFL"
	version = 1

	// crcMagic marks the integrity footer; crcFooterLen is its size.
	crcMagic     = "HCRC"
	crcFooterLen = 8
)

// ChecksumError reports a model container whose bytes do not match the
// CRC32 recorded in its footer.
type ChecksumError struct {
	Want uint32 // checksum recorded in the footer
	Got  uint32 // checksum of the payload as read
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("tflite: model checksum mismatch: footer %08x, payload %08x", e.Want, e.Got)
}

// WriteModel serializes the model and appends the CRC32 integrity footer.
func (m *Model) WriteModel(w io.Writer) error {
	h := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	if err := m.writeBody(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var footer [crcFooterLen]byte
	copy(footer[:4], crcMagic)
	binary.LittleEndian.PutUint32(footer[4:], h.Sum32())
	_, err := w.Write(footer[:])
	return err
}

// writeBody emits the container payload (everything the footer seals).
func (m *Model) writeBody(bw *bufio.Writer) error {
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	writeU32(bw, version)
	writeString(bw, m.Name)

	writeU32(bw, uint32(len(m.Tensors)))
	for _, t := range m.Tensors {
		writeString(bw, t.Name)
		bw.WriteByte(byte(t.DType))
		writeU32(bw, uint32(len(t.Shape)))
		for _, d := range t.Shape {
			writeI32(bw, int32(d))
		}
		if t.Quant != nil {
			bw.WriteByte(1)
			writeF64(bw, t.Quant.Scale)
			writeI32(bw, t.Quant.ZeroPoint)
		} else {
			bw.WriteByte(0)
		}
		writeI32(bw, int32(t.Buffer))
	}

	writeU32(bw, uint32(len(m.Operators)))
	for _, op := range m.Operators {
		bw.WriteByte(byte(op.Op))
		writeIdxList(bw, op.Inputs)
		writeIdxList(bw, op.Outputs)
		writeI32(bw, op.Opts.Axis)
		writeF32(bw, op.Opts.Beta)
	}

	writeU32(bw, uint32(len(m.Buffers)))
	for _, b := range m.Buffers {
		writeU32(bw, uint32(len(b)))
		bw.Write(b)
	}

	writeIdxList(bw, m.Inputs)
	writeIdxList(bw, m.Outputs)
	return bw.Flush()
}

// Marshal serializes the model to a byte slice.
func (m *Model) Marshal() []byte {
	var buf bytes.Buffer
	if err := m.WriteModel(&buf); err != nil {
		// bytes.Buffer writes cannot fail.
		panic(err)
	}
	return buf.Bytes()
}

// Save writes the model to a file.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteModel(f); err != nil {
		f.Close()
		return fmt.Errorf("tflite: writing %s: %w", path, err)
	}
	return f.Close()
}

// Read consumes the reader and parses the model, verifying the integrity
// footer when present.
func Read(r io.Reader) (*Model, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("tflite: reading model: %w", err)
	}
	return Unmarshal(raw)
}

// Unmarshal parses a model from a byte slice. A trailing "HCRC" footer is
// verified against the payload (mismatch yields *ChecksumError) and
// stripped; footerless blobs from before the checksum existed are parsed
// as-is. Any other bytes left over after the model is an error.
func Unmarshal(raw []byte) (*Model, error) {
	payload := raw
	if len(raw) >= crcFooterLen && string(raw[len(raw)-crcFooterLen:len(raw)-4]) == crcMagic {
		want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
		payload = raw[:len(raw)-crcFooterLen]
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, &ChecksumError{Want: want, Got: got}
		}
	}
	src := bytes.NewReader(payload)
	br := bufio.NewReader(src)
	m, err := parse(br)
	if err != nil {
		return nil, err
	}
	if rest := src.Len() + br.Buffered(); rest != 0 {
		return nil, fmt.Errorf("tflite: %d trailing bytes after model", rest)
	}
	return m, nil
}

// parse decodes the container payload and validates the model.
func parse(br *bufio.Reader) (*Model, error) {
	var mg [4]byte
	if _, err := io.ReadFull(br, mg[:]); err != nil {
		return nil, fmt.Errorf("tflite: reading magic: %w", err)
	}
	if string(mg[:]) != magic {
		return nil, fmt.Errorf("tflite: bad magic %q", mg)
	}
	ver, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("tflite: unsupported version %d", ver)
	}
	m := &Model{}
	if m.Name, err = readString(br); err != nil {
		return nil, err
	}

	nT, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if nT > 1<<24 {
		return nil, fmt.Errorf("tflite: implausible tensor count %d", nT)
	}
	m.Tensors = make([]TensorInfo, nT)
	for i := range m.Tensors {
		t := &m.Tensors[i]
		if t.Name, err = readString(br); err != nil {
			return nil, err
		}
		dt, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		t.DType = tensor.DType(dt)
		rank, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if rank > 8 {
			return nil, fmt.Errorf("tflite: tensor %d rank %d too large", i, rank)
		}
		t.Shape = make(tensor.Shape, rank)
		for d := range t.Shape {
			v, err := readI32(br)
			if err != nil {
				return nil, err
			}
			t.Shape[d] = int(v)
		}
		hasQ, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if hasQ == 1 {
			scale, err := readF64(br)
			if err != nil {
				return nil, err
			}
			zp, err := readI32(br)
			if err != nil {
				return nil, err
			}
			t.Quant = &tensor.QuantParams{Scale: scale, ZeroPoint: zp}
		}
		buf, err := readI32(br)
		if err != nil {
			return nil, err
		}
		t.Buffer = int(buf)
	}

	nOp, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if nOp > 1<<24 {
		return nil, fmt.Errorf("tflite: implausible op count %d", nOp)
	}
	m.Operators = make([]Operator, nOp)
	for i := range m.Operators {
		op := &m.Operators[i]
		code, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		op.Op = OpCode(code)
		if op.Inputs, err = readIdxList(br); err != nil {
			return nil, err
		}
		if op.Outputs, err = readIdxList(br); err != nil {
			return nil, err
		}
		if op.Opts.Axis, err = readI32(br); err != nil {
			return nil, err
		}
		if op.Opts.Beta, err = readF32(br); err != nil {
			return nil, err
		}
	}

	nB, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if nB > 1<<24 {
		return nil, fmt.Errorf("tflite: implausible buffer count %d", nB)
	}
	m.Buffers = make([][]byte, nB)
	for i := range m.Buffers {
		ln, err := readU32(br)
		if err != nil {
			return nil, err
		}
		buf, err := readBytes(br, int(ln))
		if err != nil {
			return nil, err
		}
		m.Buffers[i] = buf
	}

	if m.Inputs, err = readIdxList(br); err != nil {
		return nil, err
	}
	if m.Outputs, err = readIdxList(br); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Load reads a model from a file.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("tflite: loading %s: %w", path, err)
	}
	return m, nil
}

// --- primitive encoders/decoders ---

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeI32(w *bufio.Writer, v int32) { writeU32(w, uint32(v)) }

func writeF32(w *bufio.Writer, v float32) { writeU32(w, math.Float32bits(v)) }

func writeF64(w *bufio.Writer, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.Write(b[:])
}

func writeString(w *bufio.Writer, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s)
}

func writeIdxList(w *bufio.Writer, xs []int) {
	writeU32(w, uint32(len(xs)))
	for _, v := range xs {
		writeI32(w, int32(v))
	}
}

// readBytes reads exactly n bytes, growing the result in bounded chunks
// so a corrupted length field cannot force a huge up-front allocation.
func readBytes(r *bufio.Reader, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("tflite: negative byte count %d", n)
	}
	const chunk = 1 << 20
	out := make([]byte, 0, minInt(n, chunk))
	for len(out) < n {
		step := minInt(n-len(out), chunk)
		start := len(out)
		out = append(out, make([]byte, step)...)
		if _, err := io.ReadFull(r, out[start:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func readU32(r *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readI32(r *bufio.Reader) (int32, error) {
	v, err := readU32(r)
	return int32(v), err
}

func readF32(r *bufio.Reader) (float32, error) {
	v, err := readU32(r)
	return math.Float32frombits(v), err
}

func readF64(r *bufio.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func readString(r *bufio.Reader) (string, error) {
	ln, err := readU32(r)
	if err != nil {
		return "", err
	}
	if ln > 1<<20 {
		return "", fmt.Errorf("tflite: implausible string length %d", ln)
	}
	buf := make([]byte, ln)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readIdxList(r *bufio.Reader) ([]int, error) {
	ln, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if ln > 1<<24 {
		return nil, fmt.Errorf("tflite: implausible index list length %d", ln)
	}
	xs := make([]int, ln)
	for i := range xs {
		v, err := readI32(r)
		if err != nil {
			return nil, err
		}
		xs[i] = int(v)
	}
	return xs, nil
}
