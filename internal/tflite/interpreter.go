package tflite

import (
	"fmt"
	"math"

	"hdcedge/internal/tensor"
)

// Interpreter executes a Model on the host CPU. It is the reference
// implementation: the Edge TPU simulator must agree with it bit-exactly on
// quantized graphs.
//
// An interpreter built from a RowSliceable model can also execute a row
// prefix of the batch (InvokeRows / InvokeOpRows): kernels then run on
// cached ViewRows views of the activation tensors, computing exactly the
// first rows samples and touching nothing past them.
type Interpreter struct {
	model   *Model
	tensors []*tensor.Tensor

	capacity  int
	sliceable bool

	// views caches the row-prefix views per (rows) value so steady-state
	// batched invokes allocate nothing; luts caches the int8 activation
	// lookup tables per operator index (quantization params are fixed at
	// build time, so the tables never change).
	views map[int][]*tensor.Tensor
	luts  map[int]*[256]int8
}

// NewInterpreter validates the model and allocates all activations.
func NewInterpreter(m *Model) (*Interpreter, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	it := &Interpreter{
		model:     m,
		tensors:   make([]*tensor.Tensor, len(m.Tensors)),
		capacity:  m.BatchCapacity(),
		sliceable: m.RowSliceable(),
	}
	for i, ti := range m.Tensors {
		if ti.Buffer != NoBuffer {
			ct, err := m.ConstTensor(i)
			if err != nil {
				return nil, err
			}
			it.tensors[i] = ct
			continue
		}
		t := tensor.New(ti.DType, ti.Shape...)
		t.Quant = cloneQuant(ti.Quant)
		it.tensors[i] = t
	}
	return it, nil
}

// Model returns the model being interpreted.
func (it *Interpreter) Model() *Model { return it.model }

// Input returns the i-th model input tensor for the caller to fill.
func (it *Interpreter) Input(i int) *tensor.Tensor {
	return it.tensors[it.model.Inputs[i]]
}

// Output returns the i-th model output tensor after Invoke.
func (it *Interpreter) Output(i int) *tensor.Tensor {
	return it.tensors[it.model.Outputs[i]]
}

// Tensor returns the runtime tensor at graph index idx.
func (it *Interpreter) Tensor(idx int) *tensor.Tensor { return it.tensors[idx] }

// TensorRows returns the tensor at graph index idx as seen by a rows-limited
// invoke: constants in full, activations as a cached prefix view of rows
// leading rows. rows <= 0 (or >= the batch capacity) returns the full tensor.
func (it *Interpreter) TensorRows(idx, rows int) *tensor.Tensor {
	if rows <= 0 || rows >= it.capacity {
		return it.tensors[idx]
	}
	return it.viewFor(idx, rows)
}

// viewFor resolves graph index ti for a rows-limited execution. Constant
// tensors (weights, biases, axes) are never clipped; activations resolve to
// a cached prefix view sharing the full tensor's storage.
func (it *Interpreter) viewFor(ti, rows int) *tensor.Tensor {
	if it.model.Tensors[ti].Buffer != NoBuffer {
		return it.tensors[ti]
	}
	if it.views == nil {
		it.views = make(map[int][]*tensor.Tensor)
	}
	vs, ok := it.views[rows]
	if !ok {
		vs = make([]*tensor.Tensor, len(it.tensors))
		it.views[rows] = vs
	}
	if vs[ti] == nil {
		vs[ti] = it.tensors[ti].ViewRows(0, rows)
	}
	return vs[ti]
}

// InvokeOp executes the single operator at index i. It lets a delegate
// runtime (the Edge TPU simulator) interleave its own kernels with the
// reference CPU kernels while sharing one tensor store.
func (it *Interpreter) InvokeOp(i int) error {
	return it.InvokeOpRows(i, 0)
}

// InvokeOpRows executes the single operator at index i on the first rows
// sample rows only. rows <= 0 (or >= the batch capacity) executes the full
// batch; anything between requires a RowSliceable model.
func (it *Interpreter) InvokeOpRows(i, rows int) error {
	if i < 0 || i >= len(it.model.Operators) {
		return fmt.Errorf("tflite: op index %d out of range", i)
	}
	at := it.Tensor
	if rows > 0 && rows < it.capacity {
		if !it.sliceable {
			return fmt.Errorf("tflite: model %q is not row-sliceable; cannot invoke %d of %d rows",
				it.model.Name, rows, it.capacity)
		}
		at = func(ti int) *tensor.Tensor { return it.viewFor(ti, rows) }
	}
	op := it.model.Operators[i]
	if err := it.exec(i, op, at); err != nil {
		return fmt.Errorf("tflite: op %d (%v): %w", i, op.Op, err)
	}
	return nil
}

// Invoke runs all operators in graph order.
func (it *Interpreter) Invoke() error { return it.InvokeRows(0) }

// InvokeRows runs all operators in graph order on the first rows sample
// rows. rows <= 0 (or >= the batch capacity) runs the full batch.
func (it *Interpreter) InvokeRows(rows int) error {
	for oi := range it.model.Operators {
		if err := it.InvokeOpRows(oi, rows); err != nil {
			return err
		}
	}
	return nil
}

func (it *Interpreter) exec(oi int, op Operator, at func(int) *tensor.Tensor) error {
	switch op.Op {
	case OpFullyConnected:
		return it.execFullyConnected(op, at)
	case OpTanh:
		return it.execTanh(oi, op, at)
	case OpLogistic:
		return it.execLogistic(oi, op, at)
	case OpQuantize:
		return it.execQuantize(op, at)
	case OpDequantize:
		return it.execDequantize(op, at)
	case OpArgMax:
		return it.execArgMax(op, at)
	case OpConcat:
		return it.execConcat(op, at)
	case OpReshape:
		return it.execReshape(op, at)
	case OpSoftmax:
		return it.execSoftmax(op, at)
	default:
		return fmt.Errorf("unsupported opcode %v", op.Op)
	}
}

func (it *Interpreter) execFullyConnected(op Operator, at func(int) *tensor.Tensor) error {
	in := at(op.Inputs[0])
	w := at(op.Inputs[1])
	bias := at(op.Inputs[2])
	out := at(op.Outputs[0])
	switch in.DType {
	case tensor.Float32:
		return fullyConnectedFloat(in, w, bias, out)
	case tensor.Int8:
		return fullyConnectedInt8(in, w, bias, out)
	default:
		return fmt.Errorf("FULLY_CONNECTED on %v input", in.DType)
	}
}

// fullyConnectedFloat computes out[b, u] = Σ_k in[b, k]·w[u, k] + bias[u].
func fullyConnectedFloat(in, w, bias, out *tensor.Tensor) error {
	if w.DType != tensor.Float32 || bias.DType != tensor.Float32 {
		return fmt.Errorf("float FC with %v weights / %v bias", w.DType, bias.DType)
	}
	batch, k := in.Shape[0], in.Shape[1]
	units := w.Shape[0]
	if w.Shape[1] != k {
		return fmt.Errorf("FC depth mismatch: input %v, weights %v", in.Shape, w.Shape)
	}
	if len(bias.F32) != units {
		return fmt.Errorf("FC bias length %d, want %d", len(bias.F32), units)
	}
	// Parallelize across output units: each worker owns a disjoint slice
	// of every output row.
	tensor.ParallelFor(units, 64, func(u0, u1 int) {
		for b := 0; b < batch; b++ {
			row := in.F32[b*k : (b+1)*k]
			outRow := out.F32[b*units : (b+1)*units]
			for u := u0; u < u1; u++ {
				wRow := w.F32[u*k : (u+1)*k]
				sum := bias.F32[u]
				for i, v := range row {
					sum += v * wRow[i]
				}
				outRow[u] = sum
			}
		}
	})
	return nil
}

// fullyConnectedInt8 follows the TFLite reference quantized kernel:
// acc = Σ (in - zpIn)·w + bias ; out = clamp(zpOut + rescale(acc)).
// Weights are symmetric (zero point 0), so no weight-side correction term.
func fullyConnectedInt8(in, w, bias, out *tensor.Tensor) error {
	if w.DType != tensor.Int8 || bias.DType != tensor.Int32 {
		return fmt.Errorf("int8 FC with %v weights / %v bias", w.DType, bias.DType)
	}
	if in.Quant == nil || w.Quant == nil || out.Quant == nil {
		return fmt.Errorf("int8 FC missing quantization parameters")
	}
	if w.Quant.ZeroPoint != 0 {
		return fmt.Errorf("int8 FC weights must be symmetric, zero point %d", w.Quant.ZeroPoint)
	}
	batch, k := in.Shape[0], in.Shape[1]
	units := w.Shape[0]
	if w.Shape[1] != k {
		return fmt.Errorf("FC depth mismatch: input %v, weights %v", in.Shape, w.Shape)
	}
	qm, err := QuantizeMultiplier(in.Quant.Scale * w.Quant.Scale / out.Quant.Scale)
	if err != nil {
		return err
	}
	zpIn := in.Quant.ZeroPoint
	zpOut := out.Quant.ZeroPoint
	tensor.ParallelFor(units, 64, func(u0, u1 int) {
		for b := 0; b < batch; b++ {
			row := in.I8[b*k : (b+1)*k]
			outRow := out.I8[b*units : (b+1)*units]
			for u := u0; u < u1; u++ {
				wRow := w.I8[u*k : (u+1)*k]
				acc := bias.I32[u]
				for i, v := range row {
					acc += (int32(v) - zpIn) * int32(wRow[i])
				}
				outRow[u] = clampInt8(zpOut + qm.Apply(acc))
			}
		}
	})
	return nil
}

// lutFor returns the activation lookup table for operator oi. The global
// table store in lut.go already memoizes by quantization params, but behind
// a mutex; caching per (interpreter, op) keeps concurrent serving workers
// off that lock on the steady path. Params are fixed at build time, so the
// cache never invalidates. The cached table is this interpreter's private
// copy — it models the activation LUT SRAM of one device, so fault
// injection (and integrity scrubbing) on one interpreter can never bleed
// into another through the shared memoization store.
func (it *Interpreter) lutFor(oi int, build func() *[256]int8) *[256]int8 {
	if lut, ok := it.luts[oi]; ok {
		return lut
	}
	if it.luts == nil {
		it.luts = make(map[int]*[256]int8)
	}
	lut := *build() // private copy: this interpreter's LUT SRAM
	it.luts[oi] = &lut
	return &lut
}

// CachedLUT returns operator oi's resident activation lookup table, or nil
// when the operator has not materialized one yet (never executed, or not an
// int8 element-wise op). The returned pointer is live device state: writes
// through it model LUT-SRAM corruption, and integrity scrubbing verifies it
// against the golden table (ActivationLUT).
func (it *Interpreter) CachedLUT(oi int) *[256]int8 {
	return it.luts[oi]
}

func (it *Interpreter) execTanh(oi int, op Operator, at func(int) *tensor.Tensor) error {
	in := at(op.Inputs[0])
	out := at(op.Outputs[0])
	switch in.DType {
	case tensor.Float32:
		copy(out.F32, in.F32)
		tensor.TanhSlice(out.F32)
		return nil
	case tensor.Int8:
		if in.Quant == nil || out.Quant == nil {
			return fmt.Errorf("int8 TANH missing quantization parameters")
		}
		lut := it.lutFor(oi, func() *[256]int8 { return tanhLUT(*in.Quant, *out.Quant) })
		for i, v := range in.I8 {
			out.I8[i] = lut[uint8(v)]
		}
		return nil
	default:
		return fmt.Errorf("TANH on %v input", in.DType)
	}
}

func (it *Interpreter) execLogistic(oi int, op Operator, at func(int) *tensor.Tensor) error {
	in := at(op.Inputs[0])
	out := at(op.Outputs[0])
	switch in.DType {
	case tensor.Float32:
		for i, v := range in.F32 {
			out.F32[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
		return nil
	case tensor.Int8:
		if in.Quant == nil || out.Quant == nil {
			return fmt.Errorf("int8 LOGISTIC missing quantization parameters")
		}
		lut := it.lutFor(oi, func() *[256]int8 { return logisticLUT(*in.Quant, *out.Quant) })
		for i, v := range in.I8 {
			out.I8[i] = lut[uint8(v)]
		}
		return nil
	default:
		return fmt.Errorf("LOGISTIC on %v input", in.DType)
	}
}

func (it *Interpreter) execQuantize(op Operator, at func(int) *tensor.Tensor) error {
	in := at(op.Inputs[0])
	out := at(op.Outputs[0])
	if in.DType != tensor.Float32 || out.DType != tensor.Int8 || out.Quant == nil {
		return fmt.Errorf("QUANTIZE needs float input and quantized int8 output")
	}
	q := *out.Quant
	for i, v := range in.F32 {
		out.I8[i] = q.QuantizeOne(float64(v))
	}
	return nil
}

func (it *Interpreter) execDequantize(op Operator, at func(int) *tensor.Tensor) error {
	in := at(op.Inputs[0])
	out := at(op.Outputs[0])
	if in.DType != tensor.Int8 || in.Quant == nil || out.DType != tensor.Float32 {
		return fmt.Errorf("DEQUANTIZE needs quantized int8 input and float output")
	}
	q := *in.Quant
	for i, v := range in.I8 {
		out.F32[i] = float32(q.DequantizeOne(v))
	}
	return nil
}

func (it *Interpreter) execArgMax(op Operator, at func(int) *tensor.Tensor) error {
	in := at(op.Inputs[0])
	out := at(op.Outputs[0])
	if len(in.Shape) != 2 {
		return fmt.Errorf("ARG_MAX supports 2-D inputs, got %v", in.Shape)
	}
	batch, k := in.Shape[0], in.Shape[1]
	for b := 0; b < batch; b++ {
		switch in.DType {
		case tensor.Float32:
			out.I32[b] = int32(tensor.ArgMax(in.F32[b*k : (b+1)*k]))
		case tensor.Int8:
			row := in.I8[b*k : (b+1)*k]
			best := 0
			for i := 1; i < k; i++ {
				if row[i] > row[best] {
					best = i
				}
			}
			out.I32[b] = int32(best)
		default:
			return fmt.Errorf("ARG_MAX on %v input", in.DType)
		}
	}
	return nil
}

func (it *Interpreter) execConcat(op Operator, at func(int) *tensor.Tensor) error {
	out := at(op.Outputs[0])
	if len(out.Shape) != 2 || int(op.Opts.Axis) != 1 {
		return fmt.Errorf("CONCATENATION supports axis 1 of 2-D tensors")
	}
	batch, total := out.Shape[0], out.Shape[1]
	off := 0
	for _, idx := range op.Inputs {
		in := at(idx)
		if in.DType != out.DType || in.Shape[0] != batch {
			return fmt.Errorf("CONCATENATION input mismatch")
		}
		c := in.Shape[1]
		for b := 0; b < batch; b++ {
			switch out.DType {
			case tensor.Float32:
				copy(out.F32[b*total+off:b*total+off+c], in.F32[b*c:(b+1)*c])
			case tensor.Int8:
				copy(out.I8[b*total+off:b*total+off+c], in.I8[b*c:(b+1)*c])
			default:
				return fmt.Errorf("CONCATENATION on %v", out.DType)
			}
		}
		off += c
	}
	if off != total {
		return fmt.Errorf("CONCATENATION inputs cover %d of %d columns", off, total)
	}
	return nil
}

func (it *Interpreter) execReshape(op Operator, at func(int) *tensor.Tensor) error {
	in := at(op.Inputs[0])
	out := at(op.Outputs[0])
	if in.Elems() != out.Elems() || in.DType != out.DType {
		return fmt.Errorf("RESHAPE size mismatch %v -> %v", in.Shape, out.Shape)
	}
	switch in.DType {
	case tensor.Float32:
		copy(out.F32, in.F32)
	case tensor.Int8:
		copy(out.I8, in.I8)
	case tensor.Int32:
		copy(out.I32, in.I32)
	default:
		return fmt.Errorf("RESHAPE on %v", in.DType)
	}
	return nil
}

func (it *Interpreter) execSoftmax(op Operator, at func(int) *tensor.Tensor) error {
	in := at(op.Inputs[0])
	out := at(op.Outputs[0])
	if in.DType != tensor.Float32 || len(in.Shape) != 2 {
		return fmt.Errorf("SOFTMAX supports 2-D float inputs")
	}
	beta := op.Opts.Beta
	if beta == 0 {
		beta = 1
	}
	batch, k := in.Shape[0], in.Shape[1]
	for b := 0; b < batch; b++ {
		row := in.F32[b*k : (b+1)*k]
		outRow := out.F32[b*k : (b+1)*k]
		softmaxRow(outRow, row, beta)
	}
	return nil
}
