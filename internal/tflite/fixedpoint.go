package tflite

import (
	"fmt"
	"math"
)

// This file implements TFLite's fixed-point rescaling arithmetic, which the
// Edge TPU hardware also uses: a positive real multiplier less than one is
// represented as a Q31 integer multiplier plus a right shift, and applied
// with rounding-to-nearest at each step. Reproducing it exactly means the
// quantized interpreter here and the systolic-array simulator produce
// bit-identical outputs.

// QuantizedMultiplier is a real-valued scale factor in fixed-point form:
// real = Multiplier * 2^(-Shift - 31) i.e. value × multiplier, then
// arithmetic right shift.
type QuantizedMultiplier struct {
	Multiplier int32 // in [2^30, 2^31) (Q31), or 0 for a zero scale
	Shift      int32 // right shift applied after the Q31 multiply
}

// QuantizeMultiplier converts a positive real multiplier into Q31
// multiplier+shift form, following the TFLite reference implementation.
func QuantizeMultiplier(realMultiplier float64) (QuantizedMultiplier, error) {
	if realMultiplier < 0 || math.IsNaN(realMultiplier) || math.IsInf(realMultiplier, 0) {
		return QuantizedMultiplier{}, fmt.Errorf("tflite: invalid multiplier %v", realMultiplier)
	}
	if realMultiplier == 0 {
		return QuantizedMultiplier{Multiplier: 0, Shift: 0}, nil
	}
	frac, exp := math.Frexp(realMultiplier) // frac in [0.5, 1)
	q := int64(math.Round(frac * (1 << 31)))
	if q == 1<<31 { // rounding overflow: frac was ~1
		q /= 2
		exp++
	}
	shift := int32(-exp)
	if shift > 62 {
		// Scale too small to represent; flush to zero.
		return QuantizedMultiplier{Multiplier: 0, Shift: 0}, nil
	}
	if shift < -31 {
		return QuantizedMultiplier{}, fmt.Errorf("tflite: multiplier %v too large", realMultiplier)
	}
	return QuantizedMultiplier{Multiplier: int32(q), Shift: shift}, nil
}

// Apply multiplies x by the fixed-point multiplier with TFLite's
// round-half-away-from-zero doubling-high-mul followed by rounding right
// shift.
func (qm QuantizedMultiplier) Apply(x int32) int32 {
	if qm.Multiplier == 0 {
		return 0
	}
	v := saturatingRoundingDoublingHighMul(x, qm.Multiplier)
	return roundingDivideByPOT(v, qm.Shift)
}

// saturatingRoundingDoublingHighMul returns round(a*b/2^31) with saturation
// at int32 bounds, as in gemmlowp.
func saturatingRoundingDoublingHighMul(a, b int32) int32 {
	if a == math.MinInt32 && b == math.MinInt32 {
		return math.MaxInt32
	}
	ab := int64(a) * int64(b)
	var nudge int64 = 1 << 30
	if ab < 0 {
		nudge = 1 - (1 << 30)
	}
	// gemmlowp divides (truncation toward zero), which differs from an
	// arithmetic shift for negative products.
	return int32((ab + nudge) / (1 << 31))
}

// roundingDivideByPOT computes x / 2^exponent with rounding to nearest,
// ties away from zero. Negative exponents shift left.
func roundingDivideByPOT(x int32, exponent int32) int32 {
	if exponent < 0 {
		shifted := int64(x) << uint(-exponent)
		if shifted > math.MaxInt32 {
			return math.MaxInt32
		}
		if shifted < math.MinInt32 {
			return math.MinInt32
		}
		return int32(shifted)
	}
	if exponent == 0 {
		return x
	}
	mask := int32(1)<<uint(exponent) - 1
	remainder := x & mask
	result := x >> uint(exponent)
	threshold := mask >> 1
	if x < 0 {
		threshold++
	}
	if remainder > threshold {
		result++
	}
	return result
}

// clampInt8 saturates an int32 into int8 range.
func clampInt8(v int32) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}
