package tflite

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantizeMultiplierRepresentsScale(t *testing.T) {
	for _, scale := range []float64{0.5, 0.25, 0.001, 0.7382, 1.0 / 3, 0.9999} {
		qm, err := QuantizeMultiplier(scale)
		if err != nil {
			t.Fatalf("scale %v: %v", scale, err)
		}
		got := float64(qm.Multiplier) / (1 << 31) * math.Pow(2, float64(-qm.Shift))
		if math.Abs(got-scale)/scale > 1e-6 {
			t.Fatalf("scale %v represented as %v", scale, got)
		}
	}
}

func TestQuantizeMultiplierZero(t *testing.T) {
	qm, err := QuantizeMultiplier(0)
	if err != nil || qm.Multiplier != 0 {
		t.Fatalf("zero scale: %+v, %v", qm, err)
	}
	if qm.Apply(12345) != 0 {
		t.Fatal("zero multiplier should map everything to 0")
	}
}

func TestQuantizeMultiplierRejectsInvalid(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := QuantizeMultiplier(bad); err == nil {
			t.Errorf("QuantizeMultiplier(%v) succeeded", bad)
		}
	}
}

func TestQuantizeMultiplierTinyFlushesToZero(t *testing.T) {
	qm, err := QuantizeMultiplier(1e-30)
	if err != nil {
		t.Fatal(err)
	}
	if qm.Apply(1<<30) != 0 {
		t.Fatal("tiny multiplier should flush to zero")
	}
}

func TestApplyMatchesFloat(t *testing.T) {
	// Apply must track round(x*scale) within 1 ULP for typical FC scales.
	scales := []float64{0.0001, 0.0073, 0.5, 0.031415}
	inputs := []int32{0, 1, -1, 100, -100, 32767, -32768, 1 << 20, -(1 << 20)}
	for _, s := range scales {
		qm, err := QuantizeMultiplier(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range inputs {
			got := qm.Apply(x)
			want := math.Round(float64(x) * s)
			if math.Abs(float64(got)-want) > 1 {
				t.Fatalf("scale %v, x %d: got %d, want %v", s, x, got, want)
			}
		}
	}
}

func TestRoundingDivideByPOT(t *testing.T) {
	cases := []struct {
		x    int32
		exp  int32
		want int32
	}{
		{8, 2, 2},
		{9, 2, 2},
		{10, 2, 3}, // 2.5 rounds away from zero
		{11, 2, 3},
		{-10, 2, -3},
		{-9, 2, -2},
		{7, 0, 7},
		{3, -1, 6}, // negative exponent shifts left
	}
	for _, c := range cases {
		if got := roundingDivideByPOT(c.x, c.exp); got != c.want {
			t.Errorf("roundingDivideByPOT(%d, %d) = %d, want %d", c.x, c.exp, got, c.want)
		}
	}
}

func TestRoundingDivideByPOTSaturatesLeftShift(t *testing.T) {
	if got := roundingDivideByPOT(math.MaxInt32, -2); got != math.MaxInt32 {
		t.Fatalf("left shift did not saturate: %d", got)
	}
	if got := roundingDivideByPOT(math.MinInt32, -2); got != math.MinInt32 {
		t.Fatalf("negative left shift did not saturate: %d", got)
	}
}

func TestSaturatingRoundingDoublingHighMulEdge(t *testing.T) {
	if got := saturatingRoundingDoublingHighMul(math.MinInt32, math.MinInt32); got != math.MaxInt32 {
		t.Fatalf("min*min = %d, want MaxInt32", got)
	}
	// (1<<30) * (1<<31 as Q31=1.0... actually 2^31-1) ~ doubling-high-mul identity-ish check:
	if got := saturatingRoundingDoublingHighMul(1<<30, math.MaxInt32); got < (1<<30)-2 || got > 1<<30 {
		t.Fatalf("near-identity multiply = %d", got)
	}
}

func TestClampInt8(t *testing.T) {
	if clampInt8(500) != 127 || clampInt8(-500) != -128 || clampInt8(5) != 5 {
		t.Fatal("clampInt8 wrong")
	}
}

// Property: Apply is monotone non-decreasing in x for any valid scale.
func TestQuickApplyMonotone(t *testing.T) {
	f := func(scaleBits uint16, a, b int32) bool {
		scale := (float64(scaleBits%10000) + 1) / 20000 // (0, 0.5]
		qm, err := QuantizeMultiplier(scale)
		if err != nil {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return qm.Apply(a) <= qm.Apply(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Apply tracks the real product within one unit.
func TestQuickApplyAccuracy(t *testing.T) {
	f := func(scaleBits uint16, x int16) bool {
		scale := (float64(scaleBits%10000) + 1) / 20000
		qm, err := QuantizeMultiplier(scale)
		if err != nil {
			return true
		}
		got := float64(qm.Apply(int32(x)))
		want := float64(x) * scale
		return math.Abs(got-want) <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
