package tflite

import (
	"testing"

	"hdcedge/internal/tensor"
)

// Native fuzz targets. `go test` runs the seed corpus; `go test -fuzz`
// explores further.

func FuzzReadModel(f *testing.F) {
	f.Add(buildTinyFloatModel(1).Marshal())
	f.Add(buildTinyFloatModel(3).Marshal())
	qm, err := QuantizeModel(buildTinyFloatModel(1), tinyCalib())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(qm.Marshal())
	f.Add([]byte("HTFL"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Anything that parses must validate and re-serialize.
		if err := m.Validate(); err != nil {
			t.Fatalf("parsed model fails validation: %v", err)
		}
		if _, err := Unmarshal(m.Marshal()); err != nil {
			t.Fatalf("re-serialized model fails to parse: %v", err)
		}
	})
}

func FuzzQuantRoundTrip(f *testing.F) {
	f.Add(-3.0, 3.0, 1.5)
	f.Add(0.0, 10.0, 9.0)
	f.Add(-0.001, 0.001, 0.0)
	f.Fuzz(func(t *testing.T, lo, hi, v float64) {
		if lo != lo || hi != hi || v != v { // NaN guards
			return
		}
		if lo < -1e12 || lo > 1e12 || hi < -1e12 || hi > 1e12 {
			return
		}
		q := tensor.ChooseQuantParams(lo, hi)
		if q.Scale <= 0 {
			t.Fatalf("non-positive scale %v for [%v, %v]", q.Scale, lo, hi)
		}
		code := q.QuantizeOne(v)
		back := q.DequantizeOne(code)
		// Dequantized values always lie in the representable envelope.
		floor := q.DequantizeOne(-128)
		ceil := q.DequantizeOne(127)
		if back < floor || back > ceil {
			t.Fatalf("round trip escaped the representable range: %v not in [%v, %v]", back, floor, ceil)
		}
	})
}
