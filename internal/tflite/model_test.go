package tflite

import (
	"strings"
	"testing"

	"hdcedge/internal/tensor"
)

// buildTinyFloatModel returns a 2-layer float network:
// input [batch, 3] -> FC(4 units) -> TANH -> FC(2 units) -> out.
func buildTinyFloatModel(batch int) *Model {
	b := NewBuilder("tiny")
	in := b.AddInput("in", tensor.Float32, batch, 3)
	w1 := tensor.FromFloat32([]float32{
		1, 0, 0,
		0, 1, 0,
		0, 0, 1,
		1, 1, 1,
	}, 4, 3)
	b1 := tensor.FromFloat32([]float32{0, 0, 0, 0}, 4)
	w2 := tensor.FromFloat32([]float32{
		1, -1, 1, -1,
		0.5, 0.5, 0.5, 0.5,
	}, 2, 4)
	b2 := tensor.FromFloat32([]float32{0.1, -0.1}, 2)
	h := b.FullyConnected(in, b.AddConstF32("w1", w1), b.AddConstF32("b1", b1), "h")
	ht := b.Tanh(h, "ht")
	out := b.FullyConnected(ht, b.AddConstF32("w2", w2), b.AddConstF32("b2", b2), "out")
	b.MarkOutput(out)
	return b.Finish()
}

func TestValidateAcceptsBuilderOutput(t *testing.T) {
	m := buildTinyFloatModel(2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadTensorIndex(t *testing.T) {
	m := buildTinyFloatModel(1)
	m.Operators[0].Inputs[0] = 99
	if err := m.Validate(); err == nil {
		t.Fatal("validate accepted out-of-range tensor index")
	}
}

func TestValidateRejectsUseBeforeDef(t *testing.T) {
	m := buildTinyFloatModel(1)
	// Swap the two FC ops so the second consumes an unproduced tensor.
	m.Operators[0], m.Operators[2] = m.Operators[2], m.Operators[0]
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "before it is produced") {
		t.Fatalf("validate accepted topological violation: %v", err)
	}
}

func TestValidateRejectsBufferSizeMismatch(t *testing.T) {
	m := buildTinyFloatModel(1)
	m.Buffers[0] = m.Buffers[0][:4]
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "buffer has") {
		t.Fatalf("validate accepted truncated buffer: %v", err)
	}
}

func TestValidateRejectsBadArity(t *testing.T) {
	m := buildTinyFloatModel(1)
	m.Operators[1].Inputs = append(m.Operators[1].Inputs, 0)
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("validate accepted bad arity: %v", err)
	}
}

func TestValidateRejectsUnproducedOutput(t *testing.T) {
	m := buildTinyFloatModel(1)
	m.Operators = m.Operators[:2] // drop the op that produces the output
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "never produced") {
		t.Fatalf("validate accepted unproduced output: %v", err)
	}
}

func TestConstTensorRoundTrip(t *testing.T) {
	m := buildTinyFloatModel(1)
	w1Idx := m.TensorByName("w1")
	if w1Idx < 0 {
		t.Fatal("w1 not found")
	}
	ct, err := m.ConstTensor(w1Idx)
	if err != nil {
		t.Fatal(err)
	}
	if !ct.Shape.Equal(tensor.Shape{4, 3}) {
		t.Fatalf("shape %v", ct.Shape)
	}
	if ct.F32[0] != 1 || ct.F32[11] != 1 || ct.F32[1] != 0 {
		t.Fatalf("data %v", ct.F32)
	}
}

func TestConstTensorRejectsActivation(t *testing.T) {
	m := buildTinyFloatModel(1)
	if _, err := m.ConstTensor(m.Inputs[0]); err == nil {
		t.Fatal("ConstTensor on activation should fail")
	}
}

func TestParamBytes(t *testing.T) {
	m := buildTinyFloatModel(1)
	// w1: 12 floats, b1: 4, w2: 8, b2: 2 -> 26 floats = 104 bytes.
	if got := m.ParamBytes(); got != 104 {
		t.Fatalf("ParamBytes = %d, want 104", got)
	}
}

func TestTensorByNameMissing(t *testing.T) {
	m := buildTinyFloatModel(1)
	if m.TensorByName("nope") != -1 {
		t.Fatal("missing name should return -1")
	}
}

func TestOpCodeString(t *testing.T) {
	if OpFullyConnected.String() != "FULLY_CONNECTED" {
		t.Fatal("opcode name wrong")
	}
	if !strings.HasPrefix(OpCode(200).String(), "OP(") {
		t.Fatal("unknown opcode should render numerically")
	}
}
