package tflite

import (
	"fmt"

	"hdcedge/internal/tensor"
)

// NoBuffer marks a tensor with no constant data (a runtime activation).
const NoBuffer = -1

// TensorInfo describes one tensor in the graph. Constant tensors reference
// a buffer; activations use NoBuffer and are allocated by the interpreter.
type TensorInfo struct {
	Name   string
	DType  tensor.DType
	Shape  tensor.Shape
	Quant  *tensor.QuantParams
	Buffer int
}

// Operator is one node of the flat graph. Inputs and Outputs index into
// Model.Tensors. Execution order is the operator order (the graph is
// required to be topologically sorted, as in a TFLite flatbuffer).
type Operator struct {
	Op      OpCode
	Inputs  []int
	Outputs []int
	Opts    Options
}

// Model is a complete serializable network.
type Model struct {
	Name      string
	Tensors   []TensorInfo
	Operators []Operator
	Buffers   [][]byte
	Inputs    []int
	Outputs   []int
}

// Validate checks graph structural invariants: index ranges, buffer
// references, topological ordering, and per-op arity.
func (m *Model) Validate() error {
	nT := len(m.Tensors)
	checkIdx := func(what string, idx int) error {
		if idx < 0 || idx >= nT {
			return fmt.Errorf("tflite: %s tensor index %d out of range [0,%d)", what, idx, nT)
		}
		return nil
	}
	for i, ti := range m.Tensors {
		if ti.Buffer != NoBuffer {
			if ti.Buffer < 0 || ti.Buffer >= len(m.Buffers) {
				return fmt.Errorf("tflite: tensor %d (%s) buffer %d out of range", i, ti.Name, ti.Buffer)
			}
			want := ti.Shape.Elems() * ti.DType.Size()
			if got := len(m.Buffers[ti.Buffer]); got != want {
				return fmt.Errorf("tflite: tensor %d (%s) buffer has %d bytes, shape %v needs %d",
					i, ti.Name, got, ti.Shape, want)
			}
		}
	}
	for _, in := range m.Inputs {
		if err := checkIdx("model input", in); err != nil {
			return err
		}
	}
	for _, out := range m.Outputs {
		if err := checkIdx("model output", out); err != nil {
			return err
		}
	}
	// Topological order: an activation may only be consumed after it has
	// been produced (model inputs and constants are always ready).
	ready := make([]bool, nT)
	for i, ti := range m.Tensors {
		if ti.Buffer != NoBuffer {
			ready[i] = true
		}
	}
	for _, in := range m.Inputs {
		ready[in] = true
	}
	for oi, op := range m.Operators {
		for _, in := range op.Inputs {
			if err := checkIdx(fmt.Sprintf("op %d input", oi), in); err != nil {
				return err
			}
			if !ready[in] {
				return fmt.Errorf("tflite: op %d (%v) consumes tensor %d before it is produced", oi, op.Op, in)
			}
		}
		for _, out := range op.Outputs {
			if err := checkIdx(fmt.Sprintf("op %d output", oi), out); err != nil {
				return err
			}
			ready[out] = true
		}
		if err := checkArity(oi, op); err != nil {
			return err
		}
	}
	for _, out := range m.Outputs {
		if !ready[out] {
			return fmt.Errorf("tflite: model output %d is never produced", out)
		}
	}
	return nil
}

func checkArity(oi int, op Operator) error {
	type arity struct{ in, out int }
	want := map[OpCode]arity{
		OpFullyConnected: {3, 1},
		OpTanh:           {1, 1},
		OpQuantize:       {1, 1},
		OpDequantize:     {1, 1},
		OpArgMax:         {1, 1},
		OpReshape:        {1, 1},
		OpSoftmax:        {1, 1},
		OpLogistic:       {1, 1},
	}
	if w, ok := want[op.Op]; ok {
		if len(op.Inputs) != w.in || len(op.Outputs) != w.out {
			return fmt.Errorf("tflite: op %d (%v) arity %d->%d, want %d->%d",
				oi, op.Op, len(op.Inputs), len(op.Outputs), w.in, w.out)
		}
	}
	if op.Op == OpConcat && (len(op.Inputs) < 1 || len(op.Outputs) != 1) {
		return fmt.Errorf("tflite: op %d CONCATENATION needs >=1 inputs and 1 output", oi)
	}
	return nil
}

// ConstTensor materializes the constant data of tensor ti as a
// tensor.Tensor view (data shared with the buffer for 1-byte types,
// decoded for multi-byte types).
func (m *Model) ConstTensor(ti int) (*tensor.Tensor, error) {
	info := m.Tensors[ti]
	if info.Buffer == NoBuffer {
		return nil, fmt.Errorf("tflite: tensor %d (%s) is not constant", ti, info.Name)
	}
	raw := m.Buffers[info.Buffer]
	t := &tensor.Tensor{DType: info.DType, Shape: info.Shape.Clone(), Quant: cloneQuant(info.Quant)}
	switch info.DType {
	case tensor.Float32:
		t.F32 = bytesToF32(raw)
	case tensor.Int8:
		t.I8 = bytesToI8(raw)
	case tensor.Int32:
		t.I32 = bytesToI32(raw)
	case tensor.UInt8:
		t.U8 = append([]uint8(nil), raw...)
	default:
		return nil, fmt.Errorf("tflite: const tensor dtype %v unsupported", info.DType)
	}
	return t, nil
}

func cloneQuant(q *tensor.QuantParams) *tensor.QuantParams {
	if q == nil {
		return nil
	}
	c := *q
	return &c
}

// ParamBytes returns the total size of all constant buffers — the quantity
// the Edge TPU compiler fits into on-chip parameter memory.
func (m *Model) ParamBytes() int {
	n := 0
	for _, b := range m.Buffers {
		n += len(b)
	}
	return n
}

// BatchCapacity returns the leading dimension of the first model input —
// the number of sample rows one invocation processes. Zero when the model
// has no inputs or a scalar input.
func (m *Model) BatchCapacity() int {
	if len(m.Inputs) == 0 {
		return 0
	}
	shape := m.Tensors[m.Inputs[0]].Shape
	if len(shape) == 0 {
		return 0
	}
	return shape[0]
}

// RowSliceable reports whether every runtime (non-constant) tensor is
// batch-leading: its leading dimension equals the model's batch capacity.
// Such a graph can execute on a row prefix — all kernels are row-independent,
// so running on ViewRows(0, rows) views computes exactly the first rows
// samples, bit-identically to a full-capacity invoke.
func (m *Model) RowSliceable() bool {
	capacity := m.BatchCapacity()
	if capacity <= 0 {
		return false
	}
	for _, ti := range m.Tensors {
		if ti.Buffer != NoBuffer {
			continue
		}
		if len(ti.Shape) == 0 || ti.Shape[0] != capacity {
			return false
		}
	}
	return true
}

// TensorByName returns the index of the first tensor with the given name,
// or -1.
func (m *Model) TensorByName(name string) int {
	for i, t := range m.Tensors {
		if t.Name == name {
			return i
		}
	}
	return -1
}
