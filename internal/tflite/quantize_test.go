package tflite

import (
	"math"
	"testing"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

func tinyCalib() [][][]float32 {
	r := rng.New(99)
	var calib [][][]float32
	for i := 0; i < 2000; i++ {
		row := make([]float32, 3)
		r.FillUniform(row, -2, 2)
		calib = append(calib, [][]float32{row})
	}
	return calib
}

func TestQuantizeModelStructure(t *testing.T) {
	qm, err := QuantizeModel(buildTinyFloatModel(1), tinyCalib())
	if err != nil {
		t.Fatal(err)
	}
	if err := qm.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected op sequence: QUANTIZE, FC, TANH, FC, DEQUANTIZE.
	wantOps := []OpCode{OpQuantize, OpFullyConnected, OpTanh, OpFullyConnected, OpDequantize}
	if len(qm.Operators) != len(wantOps) {
		t.Fatalf("got %d ops, want %d", len(qm.Operators), len(wantOps))
	}
	for i, w := range wantOps {
		if qm.Operators[i].Op != w {
			t.Fatalf("op %d = %v, want %v", i, qm.Operators[i].Op, w)
		}
	}
	// Inputs/outputs stay float.
	if qm.Tensors[qm.Inputs[0]].DType != tensor.Float32 {
		t.Fatal("quantized model input is not float")
	}
	if qm.Tensors[qm.Outputs[0]].DType != tensor.Float32 {
		t.Fatal("quantized model output is not float")
	}
}

func TestQuantizeModelWeightsSymmetric(t *testing.T) {
	qm, err := QuantizeModel(buildTinyFloatModel(1), tinyCalib())
	if err != nil {
		t.Fatal(err)
	}
	for i, ti := range qm.Tensors {
		if ti.DType == tensor.Int8 && ti.Buffer != NoBuffer {
			if ti.Quant == nil || ti.Quant.ZeroPoint != 0 {
				t.Fatalf("weight tensor %d (%s) not symmetric: %+v", i, ti.Name, ti.Quant)
			}
		}
	}
}

func TestQuantizeModelBiasScale(t *testing.T) {
	qm, err := QuantizeModel(buildTinyFloatModel(1), tinyCalib())
	if err != nil {
		t.Fatal(err)
	}
	// For every FC, bias scale must equal inScale * weightScale.
	for _, op := range qm.Operators {
		if op.Op != OpFullyConnected {
			continue
		}
		inQ := qm.Tensors[op.Inputs[0]].Quant
		wQ := qm.Tensors[op.Inputs[1]].Quant
		bQ := qm.Tensors[op.Inputs[2]].Quant
		if inQ == nil || wQ == nil || bQ == nil {
			t.Fatal("FC missing quant params")
		}
		want := inQ.Scale * wQ.Scale
		if math.Abs(bQ.Scale-want)/want > 1e-12 {
			t.Fatalf("bias scale %v, want %v", bQ.Scale, want)
		}
	}
}

func TestQuantizedModelTracksFloat(t *testing.T) {
	m := buildTinyFloatModel(1)
	qm, err := QuantizeModel(m, tinyCalib())
	if err != nil {
		t.Fatal(err)
	}
	fit, _ := NewInterpreter(m)
	qit, err := NewInterpreter(qm)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	worst := 0.0
	for trial := 0; trial < 50; trial++ {
		in := make([]float32, 3)
		r.FillUniform(in, -2, 2)
		copy(fit.Input(0).F32, in)
		copy(qit.Input(0).F32, in)
		if err := fit.Invoke(); err != nil {
			t.Fatal(err)
		}
		if err := qit.Invoke(); err != nil {
			t.Fatal(err)
		}
		for i := range fit.Output(0).F32 {
			d := math.Abs(float64(fit.Output(0).F32[i] - qit.Output(0).F32[i]))
			if d > worst {
				worst = d
			}
		}
	}
	// Output range is a few units; int8 quantization across two layers
	// plus calibration-tail clipping should stay within 0.2.
	if worst > 0.2 {
		t.Fatalf("worst-case int8 deviation %v too large", worst)
	}
}

func TestQuantizedArgMaxAgreesWithFloat(t *testing.T) {
	// Classification decisions must survive quantization almost always.
	b := NewBuilder("cls")
	in := b.AddInput("in", tensor.Float32, 1, 8)
	r := rng.New(17)
	w := tensor.New(tensor.Float32, 4, 8)
	r.FillNormal(w.F32)
	bias := tensor.New(tensor.Float32, 4)
	h := b.FullyConnected(in, b.AddConstF32("w", w), b.AddConstF32("b", bias), "scores")
	b.MarkOutput(b.ArgMax(h, "pred"))
	b.MarkOutput(h)
	m := b.Finish()

	var calib [][][]float32
	for i := 0; i < 32; i++ {
		row := make([]float32, 8)
		r.FillNormal(row)
		calib = append(calib, [][]float32{row})
	}
	qm, err := QuantizeModel(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	fit, _ := NewInterpreter(m)
	qit, _ := NewInterpreter(qm)
	agree, total := 0, 200
	for trial := 0; trial < total; trial++ {
		row := make([]float32, 8)
		r.FillNormal(row)
		copy(fit.Input(0).F32, row)
		copy(qit.Input(0).F32, row)
		if err := fit.Invoke(); err != nil {
			t.Fatal(err)
		}
		if err := qit.Invoke(); err != nil {
			t.Fatal(err)
		}
		if fit.Output(0).I32[0] == qit.Output(0).I32[0] {
			agree++
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Fatalf("quantized argmax agreement %.2f < 0.95", frac)
	}
}

func TestQuantizeModelRequiresCalibration(t *testing.T) {
	if _, err := QuantizeModel(buildTinyFloatModel(1), nil); err == nil {
		t.Fatal("quantization without calibration accepted")
	}
}

func TestQuantizeModelRejectsWrongBatchSize(t *testing.T) {
	calib := [][][]float32{{{1, 2}}} // model wants 3 values
	if _, err := QuantizeModel(buildTinyFloatModel(1), calib); err == nil {
		t.Fatal("wrong-size calibration batch accepted")
	}
}

func TestQuantizeModelConcatGraph(t *testing.T) {
	// Two tanh branches concatenated: both have the fixed 1/128 scale, so
	// concat quantization must be accepted and correct.
	b := NewBuilder("cat")
	in := b.AddInput("in", tensor.Float32, 1, 2)
	w1 := tensor.FromFloat32([]float32{1, 0, 0, 1}, 2, 2)
	w2 := tensor.FromFloat32([]float32{-1, 0, 0, -1}, 2, 2)
	z := tensor.New(tensor.Float32, 2)
	h1 := b.Tanh(b.FullyConnected(in, b.AddConstF32("w1", w1), b.AddConstF32("z1", z), "h1"), "t1")
	h2 := b.Tanh(b.FullyConnected(in, b.AddConstF32("w2", w2), b.AddConstF32("z2", z), "h2"), "t2")
	out := b.AddActivation("cat", tensor.Float32, 1, 4)
	b.m.Operators = append(b.m.Operators, Operator{
		Op: OpConcat, Inputs: []int{h1, h2}, Outputs: []int{out}, Opts: Options{Axis: 1},
	})
	b.MarkOutput(out)
	m := b.Finish()

	calib := [][][]float32{{{0.5, -0.5}}, {{1, 1}}, {{-1, 0.2}}}
	qm, err := QuantizeModel(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	qit, err := NewInterpreter(qm)
	if err != nil {
		t.Fatal(err)
	}
	copy(qit.Input(0).F32, []float32{0.7, -0.3})
	if err := qit.Invoke(); err != nil {
		t.Fatal(err)
	}
	got := qit.Output(0).F32
	want := []float64{math.Tanh(0.7), math.Tanh(-0.3), math.Tanh(-0.7), math.Tanh(0.3)}
	for i, w := range want {
		if math.Abs(float64(got[i])-w) > 0.05 {
			t.Fatalf("concat elem %d: %v, want %v", i, got[i], w)
		}
	}
}
