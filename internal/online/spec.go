package online

import (
	"math"
	"strconv"
	"strings"
)

// SpecError is a structured rejection of an -online spec, naming the
// offending field so CLI errors point at the exact key.
type SpecError struct {
	Field string
	Msg   string
}

func (e *SpecError) Error() string {
	if e.Field == "" {
		return "online: bad spec: " + e.Msg
	}
	return "online: bad spec field " + strconv.Quote(e.Field) + ": " + e.Msg
}

// ParseSpec parses the -online flag grammar into a Config. The spec is
// "on" (all defaults) or a comma-separated list of key=value settings:
//
//	lr=0.2        learning rate
//	margin=0.1    reinforcement margin
//	every=32      snapshot after this many applied updates
//	window=64     drift-detector window
//	threshold=0.2 drift trigger (accuracy-gap)
//	regen=0.2     fraction of dimensions regenerated on drift
//	epochs=2      refinement epochs after regeneration
//	cooldown=128  min feedback samples between regenerations
//	queue=256     feedback queue capacity
//	buffer=512    replay-buffer capacity
//	batch=1       compile batch of published snapshots
//	seed=7        regeneration/refinement seed
//	bin           also publish the bit-packed bipolar form
//
// Every accepted spec satisfies Config.Validate.
func ParseSpec(spec string) (*Config, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return nil, &SpecError{Msg: "empty spec"}
	}
	cfg := &Config{}
	if s == "on" {
		return cfg, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, &SpecError{Msg: "empty setting"}
		}
		if part == "bin" {
			cfg.Binarize = true
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return nil, &SpecError{Field: part, Msg: "want key=value"}
		}
		switch key {
		case "lr":
			f, ok := parsePositiveFloat(val)
			if !ok {
				return nil, &SpecError{Field: key, Msg: "want a positive number"}
			}
			cfg.LearningRate = float32(f)
		case "margin":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f >= 1 {
				return nil, &SpecError{Field: key, Msg: "want a value in [0, 1)"}
			}
			cfg.Margin = float32(f)
		case "threshold":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f >= 1 {
				return nil, &SpecError{Field: key, Msg: "want a value in (0, 1)"}
			}
			cfg.DriftThreshold = f
		case "regen":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f > 1 {
				return nil, &SpecError{Field: key, Msg: "want a value in (0, 1]"}
			}
			cfg.RegenFraction = f
		case "every":
			n, ok := parsePositiveInt(val)
			if !ok {
				return nil, &SpecError{Field: key, Msg: "want a positive integer"}
			}
			cfg.SnapshotEvery = n
		case "window":
			n, ok := parsePositiveInt(val)
			if !ok || n < 2 {
				return nil, &SpecError{Field: key, Msg: "want an integer >= 2"}
			}
			cfg.DriftWindow = n
		case "epochs":
			n, ok := parsePositiveInt(val)
			if !ok {
				return nil, &SpecError{Field: key, Msg: "want a positive integer"}
			}
			cfg.RegenEpochs = n
		case "cooldown":
			n, ok := parsePositiveInt(val)
			if !ok {
				return nil, &SpecError{Field: key, Msg: "want a positive integer"}
			}
			cfg.RegenCooldown = n
		case "queue":
			n, ok := parsePositiveInt(val)
			if !ok {
				return nil, &SpecError{Field: key, Msg: "want a positive integer"}
			}
			cfg.Queue = n
		case "buffer":
			n, ok := parsePositiveInt(val)
			if !ok {
				return nil, &SpecError{Field: key, Msg: "want a positive integer"}
			}
			cfg.Buffer = n
		case "batch":
			n, ok := parsePositiveInt(val)
			if !ok {
				return nil, &SpecError{Field: key, Msg: "want a positive integer"}
			}
			cfg.Batch = n
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, &SpecError{Field: key, Msg: "want an unsigned integer"}
			}
			cfg.Seed = n
		default:
			return nil, &SpecError{Field: key, Msg: "unknown setting"}
		}
	}
	// Cross-field sanity the per-key checks cannot see (e.g. a buffer
	// smaller than the drift window).
	if err := cfg.Validate(); err != nil {
		return nil, &SpecError{Msg: err.Error()}
	}
	return cfg, nil
}

func parsePositiveFloat(val string) (float64, bool) {
	f, err := strconv.ParseFloat(val, 64)
	return f, err == nil && f > 0 && !math.IsInf(f, 0)
}

func parsePositiveInt(val string) (int, bool) {
	n, err := strconv.Atoi(val)
	return n, err == nil && n >= 1
}
