package online

import (
	"testing"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/registry"
	"hdcedge/internal/rng"
)

// harness builds a trained model, a registry holding its compiled form
// under id "m", and the datasets the tests feed back.
func harness(t *testing.T, dim int) (pipeline.Platform, *registry.Registry, *hdc.Model, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(16, 200, 3, 41), 0)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := hdc.Train(ds, nil, hdc.TrainConfig{
		Dim: dim, Epochs: 3, LearningRate: 1, Nonlinear: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.EdgeTPU()
	cm, err := pipeline.CompileInference(p, model, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := registry.New()
	if _, err := g.Register("m", cm, nil); err != nil {
		t.Fatal(err)
	}
	return p, g, model, ds
}

// permuteFeatures returns a copy of ds with its feature columns permuted
// by a fixed seeded shuffle — the injected distribution shift used across
// the online tests and the ablation-drift experiment.
func permuteFeatures(ds *dataset.Dataset, seed uint64) *dataset.Dataset {
	perm := rng.New(seed).Perm(ds.Features())
	out := &dataset.Dataset{
		Name:    ds.Name + "-shifted",
		Classes: ds.Classes,
		X:       ds.X.Clone(),
		Y:       append([]int(nil), ds.Y...),
	}
	for i := 0; i < ds.Samples(); i++ {
		src := ds.X.Row(i)
		dst := out.X.Row(i)
		for j, pj := range perm {
			dst[j] = src[pj]
		}
	}
	return out
}

func TestTrainerPublishesSnapshots(t *testing.T) {
	p, g, model, ds := harness(t, 256)
	met := metrics.NewRegistry()
	tr, err := New(p, g, &Config{SnapshotEvery: 8, DriftWindow: 16, Buffer: 64}, met)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach("m", model, ds); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	// Feed shifted samples so predictions miss and updates accumulate.
	shifted := permuteFeatures(ds, 99)
	for i := 0; i < shifted.Samples(); i++ {
		if !tr.Offer(Feedback{Features: shifted.X.Row(i), Label: shifted.Y[i]}) {
			tr.Quiesce() // queue full: let the loop catch up, then retry once
			tr.Offer(Feedback{Features: shifted.X.Row(i), Label: shifted.Y[i]})
		}
	}
	tr.Quiesce()
	tr.Close()

	st := tr.Stats()
	if st.Feedback == 0 || st.Updates == 0 {
		t.Fatalf("no feedback applied: %+v", st)
	}
	if st.Snapshots == 0 {
		t.Fatalf("no snapshots published: %+v", st)
	}
	e, ok := g.Get("m")
	if !ok || e.Version < 2 {
		t.Fatalf("registry version %d after %d snapshots", e.Version, st.Snapshots)
	}
	if int64(e.Version-1) != st.Snapshots {
		t.Fatalf("version %d does not match %d published snapshots", e.Version, st.Snapshots)
	}
	// The published telemetry must flow through the shared registry.
	snap := met.Snapshot()
	if snap.Counters["hdc_online_snapshots_total"] != st.Snapshots {
		t.Fatalf("metrics registry missed snapshots: %+v", snap.Counters)
	}
	if snap.Counters["hdc_online_updates_total"] != st.Updates {
		t.Fatalf("metrics registry missed updates: %+v", snap.Counters)
	}
}

func TestTrainerDriftTriggersRegeneration(t *testing.T) {
	p, g, model, ds := harness(t, 256)
	tr, err := New(p, g, &Config{
		SnapshotEvery:  1 << 30, // isolate regen-driven publication
		DriftWindow:    16,
		DriftThreshold: 0.10,
		RegenCooldown:  32,
		Buffer:         128,
		RegenEpochs:    2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach("m", model, ds); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	offer := func(d *dataset.Dataset, rounds int) {
		for round := 0; round < rounds; round++ {
			for i := 0; i < d.Samples(); i++ {
				if !tr.Offer(Feedback{Features: d.X.Row(i), Label: d.Y[i]}) {
					tr.Quiesce()
					tr.Offer(Feedback{Features: d.X.Row(i), Label: d.Y[i]})
				}
			}
			tr.Quiesce()
		}
	}
	// Establish the accuracy baseline on the training distribution, then
	// shift: feedback accuracy collapses, the gap crosses the threshold,
	// and a regeneration (with its snapshot) must fire.
	offer(ds, 2)
	base := tr.Stats()
	if base.Regens != 0 {
		t.Fatalf("regen fired on the stable distribution: %+v", base)
	}
	offer(permuteFeatures(ds, 99), 3)
	tr.Close()
	st := tr.Stats()
	if st.Regens == 0 {
		t.Fatalf("distribution shift never triggered regeneration: %+v", st)
	}
	if st.Snapshots < st.Regens {
		t.Fatalf("regeneration did not publish: %+v", st)
	}
	if e, _ := g.Get("m"); int64(e.Version-1) != st.Snapshots {
		t.Fatalf("version %d vs %d snapshots", e.Version, st.Snapshots)
	}
	if st.PublishErrors != 0 {
		t.Fatalf("publish errors: %+v", st)
	}
}

func TestTrainerDropsWhenQueueFull(t *testing.T) {
	p, g, model, ds := harness(t, 256)
	tr, err := New(p, g, &Config{Queue: 2, DriftWindow: 8, Buffer: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach("m", model, ds); err != nil {
		t.Fatal(err)
	}
	// Not started: the queue cannot drain, so offers past capacity must
	// drop rather than block.
	accepted := 0
	for i := 0; i < 10; i++ {
		if tr.Offer(Feedback{Features: ds.X.Row(i), Label: ds.Y[i]}) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d offers into a capacity-2 queue", accepted)
	}
	if st := tr.Stats(); st.Dropped != 8 {
		t.Fatalf("dropped counter %d, want 8", st.Dropped)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	tr.Close()
}

func TestTrainerRejectsMalformedFeedback(t *testing.T) {
	p, g, model, ds := harness(t, 256)
	tr, err := New(p, g, &Config{DriftWindow: 8, Buffer: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach("m", model, ds); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	tr.Offer(Feedback{Features: make([]float32, 3), Label: 0})            // wrong width
	tr.Offer(Feedback{Features: ds.X.Row(0), Label: 99})                  // bad label
	tr.Offer(Feedback{Model: "ghost", Features: ds.X.Row(0), Label: 0})   // unknown model
	tr.Quiesce()
	tr.Close()
	st := tr.Stats()
	if st.Dropped != 3 {
		t.Fatalf("malformed feedback dropped %d, want 3", st.Dropped)
	}
	if st.Updates != 0 {
		t.Fatalf("malformed feedback applied updates: %+v", st)
	}
	if e, _ := g.Get("m"); e.Version != 1 {
		t.Fatalf("malformed feedback published a snapshot (version %d)", e.Version)
	}
}

func TestNilTrainerIsInert(t *testing.T) {
	tr, err := New(pipeline.EdgeTPU(), registry.New(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr != nil {
		t.Fatal("nil config built a trainer")
	}
	// Every method on the nil trainer must be a safe no-op.
	if tr.Offer(Feedback{Features: []float32{1}, Label: 0}) {
		t.Fatal("nil trainer accepted feedback")
	}
	if err := tr.Attach("m", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	tr.Quiesce()
	tr.Close()
	if st := tr.Stats(); st != (Stats{}) {
		t.Fatalf("nil trainer reported stats %+v", st)
	}
}

func TestTrainerAttachValidation(t *testing.T) {
	p, g, model, ds := harness(t, 256)
	tr, err := New(p, g, &Config{DriftWindow: 8, Buffer: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach("ghost", model, ds); err == nil {
		t.Fatal("attach of unregistered model accepted")
	}
	if err := tr.Attach("m", nil, ds); err == nil {
		t.Fatal("nil model accepted")
	}
	if err := tr.Attach("m", model, ds); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach("m", model, ds); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach("m2", model, ds); err == nil {
		t.Fatal("attach after Start accepted")
	}
	if err := tr.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	tr.Close()
	tr.Close() // idempotent
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Queue: -1},
		{LearningRate: -1},
		{Margin: 1},
		{DriftWindow: 1},
		{DriftThreshold: 1},
		{RegenFraction: 1.5},
		{RegenEpochs: -1},
		{RegenCooldown: -1},
		{Buffer: 8, DriftWindow: 64},
		{Batch: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

func TestDriftDetectorGapAndReset(t *testing.T) {
	d := newDriftDetector(16, 0.15)
	// Stable high accuracy: no trigger, score near zero.
	for i := 0; i < 200; i++ {
		if d.observe(i%10 != 0) { // 90% accuracy
			t.Fatalf("stable stream triggered at %d (score %.3f)", i, d.score())
		}
	}
	if s := d.score(); s > 0.12 || s < -0.12 {
		t.Fatalf("stable score %.3f not near zero", s)
	}
	// Collapse to 10% accuracy: the fast average falls first and the gap
	// must cross the threshold.
	fired := false
	for i := 0; i < 200 && !fired; i++ {
		fired = d.observe(i%10 == 0)
	}
	if !fired {
		t.Fatal("accuracy collapse never triggered")
	}
	// reset re-anchors: the very next observation must not re-trigger.
	d.reset()
	if d.observe(false) {
		t.Fatal("detector re-triggered immediately after reset")
	}
}

func TestReplayRingWrapsChronologically(t *testing.T) {
	r := newReplayRing(4, 2)
	for i := 0; i < 6; i++ {
		r.push([]float32{float32(i), float32(-i)}, i)
	}
	if r.len() != 4 {
		t.Fatalf("ring length %d, want 4", r.len())
	}
	x, y := r.design()
	// Oldest surviving sample is 2; order must be 2,3,4,5.
	for i := 0; i < 4; i++ {
		want := i + 2
		if y[i] != want || x.Row(i)[0] != float32(want) {
			t.Fatalf("slot %d: label %d features %v, want sample %d", i, y[i], x.Row(i), want)
		}
	}
}
