package online

import (
	"errors"
	"reflect"
	"testing"
)

func TestParseSpecTable(t *testing.T) {
	good := []struct {
		spec string
		want Config
	}{
		{"on", Config{}},
		{"lr=0.2", Config{LearningRate: 0.2}},
		{"lr=0.5,margin=0.1,every=16,window=32,threshold=0.2,regen=0.3,epochs=3,cooldown=64,queue=128,buffer=256,batch=4,seed=7,bin", Config{
			LearningRate: 0.5, Margin: 0.1, SnapshotEvery: 16, DriftWindow: 32,
			DriftThreshold: 0.2, RegenFraction: 0.3, RegenEpochs: 3, RegenCooldown: 64,
			Queue: 128, Buffer: 256, Batch: 4, Seed: 7, Binarize: true,
		}},
		{" lr = 1 , bin ", Config{LearningRate: 1, Binarize: true}},
	}
	for _, tc := range good {
		got, err := ParseSpec(tc.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
		}
		if !reflect.DeepEqual(*got, tc.want) {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", tc.spec, *got, tc.want)
		}
	}

	bad := []string{
		"", "  ", ",", "on,", "lr", "lr=", "=1", "lr=0", "lr=-1", "lr=x", "lr=Inf",
		"margin=1", "margin=-0.1", "threshold=0", "threshold=1", "regen=0", "regen=1.5",
		"every=0", "window=1", "epochs=0", "cooldown=0", "queue=0", "buffer=0",
		"batch=0", "seed=-1", "zzz=1", "bin=1", "buffer=4,window=64", "lr=1,,bin",
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Fatalf("ParseSpec(%q) accepted a bad spec", spec)
		} else {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("ParseSpec(%q) error %T is not *SpecError", spec, err)
			}
		}
	}
}

// FuzzParseOnlineFlags checks the -online spec parser never panics and
// that every accepted spec yields a Config passing Validate — the
// contract cmd/hdc-serve relies on before handing the config to the
// trainer. Named for the CLI flag family it guards; make fuzz-smoke picks
// it up automatically.
func FuzzParseOnlineFlags(f *testing.F) {
	for _, seed := range []string{
		"on", "lr=0.2,margin=0.1,every=16", "window=32,threshold=0.2,regen=0.3",
		"epochs=3,cooldown=64,queue=128,buffer=256,bin", "batch=4,seed=7",
		"=", ",,", "lr=1e300", "window=2,buffer=2", "bin,bin",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseSpec(spec)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("ParseSpec(%q) error %T is not *SpecError", spec, err)
			}
			return
		}
		if cfg == nil {
			t.Fatalf("ParseSpec(%q) returned nil config without error", spec)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseSpec(%q) accepted a config failing Validate: %v", spec, err)
		}
	})
}
