package online

import (
	"context"
	"sync"
	"testing"

	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/serve"
	"hdcedge/internal/tensor"
)

// TestServeOnlineSnapshotPickupDuringServing closes the loop end to end:
// a registry-mode server keeps serving while the trainer consumes
// feedback and publishes snapshots; workers must pick the new versions up
// through the ordinary (ID, Version) bind path, with every request
// succeeding. Runs under -race via make online-smoke.
func TestServeOnlineSnapshotPickupDuringServing(t *testing.T) {
	p, g, model, ds := harness(t, 256)
	met := metrics.NewRegistry()
	s, err := serve.New(p, nil, serve.Config{
		Devices: 2, Policy: pipeline.DefaultRecoveryPolicy(),
		Registry: g, Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr, err := New(p, g, &Config{SnapshotEvery: 8, DriftWindow: 16, Buffer: 64}, met)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach("m", model, ds); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	shifted := permuteFeatures(ds, 99)
	n := ds.Features()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for gi := 0; gi < 4; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := gi; i < shifted.Samples(); i += 4 {
				row := shifted.X.F32[i*n : (i+1)*n]
				_, err := s.Submit(context.Background(), serve.Request{
					Fill: func(in *tensor.Tensor) { copy(in.F32, row) },
					Consume: func(out *tensor.Tensor) {
						// The application later learns the truth and feeds
						// it back; Offer never blocks the serving path.
						tr.Offer(Feedback{Features: row, Label: shifted.Y[i]})
					},
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	tr.Quiesce()

	st := tr.Stats()
	if st.Snapshots == 0 {
		t.Fatalf("serving feedback published nothing: %+v", st)
	}
	// A fresh request after publication must serve the new version.
	if _, err := s.Submit(context.Background(), serve.Request{
		Fill: func(in *tensor.Tensor) { copy(in.F32, shifted.X.F32[:n]) },
	}); err != nil {
		t.Fatal(err)
	}
	ms, ok := s.Report().Model("m")
	if !ok {
		t.Fatal("model missing from report")
	}
	if int64(ms.Version) != st.Snapshots+1 {
		t.Fatalf("served version %d after %d snapshots", ms.Version, st.Snapshots)
	}
	// Online telemetry and serving telemetry share one registry, so the
	// /snapshot surface carries both.
	snap := met.Snapshot()
	if snap.Counters["hdc_online_snapshots_total"] != st.Snapshots {
		t.Fatalf("shared metrics registry missed online counters: %+v", snap.Counters)
	}
}

// TestServeNilTrainerBitIdentical is the regression bar for the "online
// learning off" configuration: wiring a nil trainer through the serving
// callbacks must leave timings and predictions bit-identical to a server
// with no online code in sight.
func TestServeNilTrainerBitIdentical(t *testing.T) {
	policy := pipeline.DefaultRecoveryPolicy()
	// harness is fully seeded, so two calls build identical models and
	// registries; one server runs bare, the other with the nil trainer
	// wired through its Consume callbacks.
	p1, g1, _, ds := harness(t, 256)
	plain, err := serve.New(p1, nil, serve.Config{Devices: 1, Policy: policy, Registry: g1})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	p2, g2, _, _ := harness(t, 256)
	wired, err := serve.New(p2, nil, serve.Config{Devices: 1, Policy: policy, Registry: g2})
	if err != nil {
		t.Fatal(err)
	}
	defer wired.Close()
	tr, err := New(p2, g2, nil, nil) // nil config: online learning off
	if err != nil {
		t.Fatal(err)
	}

	n := ds.Features()
	for i := 0; i < 16; i++ {
		row := ds.X.F32[i*n : (i+1)*n]
		fill := func(in *tensor.Tensor) { copy(in.F32, row) }
		var pv, wv int32
		pres, err := plain.Submit(context.Background(), serve.Request{
			Fill:    fill,
			Consume: func(out *tensor.Tensor) { pv = out.I32[0] },
		})
		if err != nil {
			t.Fatal(err)
		}
		wres, err := wired.Submit(context.Background(), serve.Request{
			Fill: fill,
			Consume: func(out *tensor.Tensor) {
				wv = out.I32[0]
				if tr.Offer(Feedback{Features: row, Label: ds.Y[i]}) {
					t.Error("nil trainer accepted feedback")
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if pres.Timing != wres.Timing {
			t.Fatalf("row %d: timing diverged with nil trainer: %+v vs %+v", i, wres.Timing, pres.Timing)
		}
		if pv != wv {
			t.Fatalf("row %d: prediction diverged with nil trainer: %d vs %d", i, wv, pv)
		}
	}
	tr.Quiesce()
	tr.Close()
	if e, _ := g2.Get("m"); e.Version != 1 {
		t.Fatalf("nil trainer published a snapshot (version %d)", e.Version)
	}
}
