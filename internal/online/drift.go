package online

// driftDetector watches the stream of per-feedback correctness outcomes
// for distribution shift, DDM-style but with two exponential moving
// averages instead of windows: a fast EWMA tracking recent feedback
// accuracy and a slow EWMA tracking the long-run baseline. Under a stable
// distribution the two stay close; when the inputs shift, the fast
// average falls first and the gap (slow − fast) grows. Crossing the
// threshold signals drift; the caller then regenerates and calls reset so
// one shift does not re-trigger on every subsequent sample.
type driftDetector struct {
	fastAlpha float64
	slowAlpha float64
	threshold float64
	minObs    int
	persist   int // consecutive over-threshold samples required to fire

	n      int
	fast   float64
	slow   float64
	breach int // current over-threshold run length
}

// newDriftDetector sizes the averages from a nominal window: the fast
// EWMA has the classic 2/(w+1) smoothing of a w-sample window, the slow
// one is 8× more sluggish so it holds the pre-shift baseline while the
// fast one falls.
func newDriftDetector(window int, threshold float64) *driftDetector {
	fast := 2.0 / (float64(window) + 1)
	persist := window / 4
	if persist < 2 {
		persist = 2
	}
	return &driftDetector{
		fastAlpha: fast,
		slowAlpha: fast / 8,
		threshold: threshold,
		minObs:    window,
		persist:   persist,
	}
}

// observe folds one feedback outcome into both averages and reports
// whether the accuracy gap has now stayed over the drift threshold for
// `persist` consecutive samples — a single misprediction spikes the fast
// average by roughly its smoothing factor, so an instantaneous comparison
// would fire on noise; a genuine shift holds the gap open. The first
// observation seeds both averages so the detector needs no warm-up bias
// correction; it stays silent until minObs samples have arrived.
func (d *driftDetector) observe(correct bool) bool {
	v := 0.0
	if correct {
		v = 1.0
	}
	if d.n == 0 {
		d.fast, d.slow = v, v
	} else {
		d.fast += d.fastAlpha * (v - d.fast)
		d.slow += d.slowAlpha * (v - d.slow)
	}
	d.n++
	if d.n >= d.minObs && d.score() > d.threshold {
		d.breach++
	} else {
		d.breach = 0
	}
	return d.breach >= d.persist
}

// score is the current accuracy gap: positive when recent feedback
// accuracy has fallen below the long-run baseline.
func (d *driftDetector) score() float64 {
	return d.slow - d.fast
}

// reset re-anchors the fast average on the baseline after a recovery
// action, so the detector arms against the *new* steady state rather than
// immediately re-firing on the residue of the old shift.
func (d *driftDetector) reset() {
	d.fast = d.slow
	d.breach = 0
}
