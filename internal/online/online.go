// Package online closes the serving loop with host-side learning: labelled
// feedback from completed requests streams through a bounded queue into a
// trainer goroutine that applies OnlineHD-style confidence-weighted
// updates to a private copy of each model, and periodically publishes the
// result as a freshly compiled, immutable snapshot through registry.Swap.
// Serving workers pick the new version up through the existing (ID,
// Version) bind-invalidation path, so inference never blocks on training:
// the only shared state between the two is the registry's lock-free
// catalog pointer and the feedback channel, and a full queue drops
// feedback rather than stalling the producer.
//
// A windowed drift detector (fast vs slow EWMA of feedback accuracy)
// watches for distribution shift; when recent accuracy falls well below
// the long-run baseline it triggers a DistHD-style recovery — regenerate
// the least-discriminative dimensions and refine on a replay buffer of
// recent feedback — published as the next snapshot. See docs/online.md.
package online

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/pipeline"
	"hdcedge/internal/registry"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// Feedback is one labelled outcome from the application: the features a
// request carried and the ground-truth label that later became known.
type Feedback struct {
	// Tenant is the submitting tenant (informational; per-tenant
	// attribution only).
	Tenant string
	// Model is the registry ID the request was served under. "" means the
	// trainer's default (first attached) model.
	Model string
	// Features is the raw feature vector. Offer copies it, so the caller
	// may reuse the backing slice immediately.
	Features []float32
	// Label is the ground-truth class.
	Label int
}

// Config tunes the feedback trainer. The zero value of each field selects
// the documented default; use New(nil) semantics — a nil *Config — to
// disable online learning entirely (every Trainer method on the resulting
// nil trainer is a safe no-op, keeping the serving path bit-identical).
type Config struct {
	// Queue bounds the feedback channel; a full queue drops (default 256).
	Queue int
	// LearningRate scales updates (1 when zero, as in hdc.OnlineConfig).
	LearningRate float32
	// Margin reinforces correct-but-weak predictions below it (0 off).
	Margin float32
	// SnapshotEvery publishes a snapshot after this many applied updates
	// (default 32). Publication also always follows a regeneration.
	SnapshotEvery int
	// DriftWindow is the nominal sample window of the drift detector's
	// fast EWMA, and its minimum observation count (default 64).
	DriftWindow int
	// DriftThreshold is the accuracy gap (slow − fast EWMA) that signals
	// drift (default 0.15).
	DriftThreshold float64
	// RegenFraction is the fraction of dimensions regenerated on drift
	// (default 0.2).
	RegenFraction float64
	// RegenEpochs is how many refinement epochs run over the replay
	// buffer after regeneration (default 2).
	RegenEpochs int
	// RegenCooldown is the minimum number of feedback samples between
	// regenerations of one model (default 2×DriftWindow).
	RegenCooldown int
	// Buffer is the per-model replay ring capacity backing refinement
	// (default 512). Regeneration waits until at least DriftWindow
	// samples are buffered.
	Buffer int
	// Batch is the compile batch capacity of published snapshots
	// (default 1). It must match what the serving fleet was compiled at.
	Batch int
	// Binarize also publishes the sign-quantized bit-packed form with
	// each snapshot, for fleets with binary-HDC workers.
	Binarize bool
	// Seed drives regeneration's re-drawn base hypervectors and the
	// refinement shuffle.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Queue == 0 {
		c.Queue = 256
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 32
	}
	if c.DriftWindow == 0 {
		c.DriftWindow = 64
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.15
	}
	if c.RegenFraction == 0 {
		c.RegenFraction = 0.2
	}
	if c.RegenEpochs == 0 {
		c.RegenEpochs = 2
	}
	if c.RegenCooldown == 0 {
		c.RegenCooldown = 2 * c.DriftWindow
	}
	if c.Buffer == 0 {
		c.Buffer = 512
	}
	if c.Batch == 0 {
		c.Batch = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate rejects configurations the trainer cannot run.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Queue < 0:
		return fmt.Errorf("online: negative Queue %d", c.Queue)
	case c.LearningRate < 0:
		return fmt.Errorf("online: negative LearningRate %g", c.LearningRate)
	case c.Margin < 0 || c.Margin >= 1:
		return fmt.Errorf("online: Margin %g outside [0, 1)", c.Margin)
	case c.SnapshotEvery < 0:
		return fmt.Errorf("online: negative SnapshotEvery %d", c.SnapshotEvery)
	case c.DriftWindow < 2:
		return fmt.Errorf("online: DriftWindow %d below 2", c.DriftWindow)
	case c.DriftThreshold < 0 || c.DriftThreshold >= 1:
		return fmt.Errorf("online: DriftThreshold %g outside [0, 1)", c.DriftThreshold)
	case c.RegenFraction < 0 || c.RegenFraction > 1:
		return fmt.Errorf("online: RegenFraction %g outside [0, 1]", c.RegenFraction)
	case c.RegenEpochs < 1:
		return fmt.Errorf("online: RegenEpochs %d below 1", c.RegenEpochs)
	case c.RegenCooldown < 0:
		return fmt.Errorf("online: negative RegenCooldown %d", c.RegenCooldown)
	case c.Buffer < c.DriftWindow:
		return fmt.Errorf("online: Buffer %d below DriftWindow %d", c.Buffer, c.DriftWindow)
	case c.Batch < 1:
		return fmt.Errorf("online: Batch %d below 1", c.Batch)
	}
	return nil
}

// replayRing is a bounded chronological buffer of recent feedback, the
// refinement set for post-drift recovery.
type replayRing struct {
	feats  []float32 // cap × n, flat
	labels []int
	n      int // feature width
	next   int // write cursor
	full   bool
}

func newReplayRing(capacity, features int) *replayRing {
	return &replayRing{
		feats:  make([]float32, capacity*features),
		labels: make([]int, capacity),
		n:      features,
	}
}

func (r *replayRing) push(features []float32, label int) {
	copy(r.feats[r.next*r.n:(r.next+1)*r.n], features)
	r.labels[r.next] = label
	r.next++
	if r.next == len(r.labels) {
		r.next, r.full = 0, true
	}
}

func (r *replayRing) len() int {
	if r.full {
		return len(r.labels)
	}
	return r.next
}

// design copies the buffered samples, oldest first, into a design matrix
// and label slice for refinement.
func (r *replayRing) design() (*tensor.Tensor, []int) {
	m := r.len()
	x := tensor.New(tensor.Float32, m, r.n)
	y := make([]int, m)
	start := 0
	if r.full {
		start = r.next
	}
	for i := 0; i < m; i++ {
		src := (start + i) % len(r.labels)
		copy(x.Row(i), r.feats[src*r.n:(src+1)*r.n])
		y[i] = r.labels[src]
	}
	return x, y
}

// modelState is everything the trainer goroutine owns for one model. Only
// that goroutine touches it.
type modelState struct {
	id      string
	model   *hdc.Model // private working copy, never shared
	calib   *dataset.Dataset
	scratch *hdc.AdaptScratch
	ring    *replayRing
	det     *driftDetector
	r       *rng.RNG

	pending    int // applied updates since the last snapshot
	sinceRegen int // feedback samples since the last regeneration
	regenArmed bool
}

// Trainer consumes the feedback stream and publishes model snapshots. Use
// New to construct one; a nil *Trainer is valid and inert.
type Trainer struct {
	cfg Config
	p   pipeline.Platform
	g   *registry.Registry

	mu      sync.Mutex // guards states/defaultID before Start
	states  map[string]*modelState
	defID   string
	started bool

	ch    chan Feedback
	flush chan chan struct{}
	done  chan struct{}
	wg    sync.WaitGroup

	accepted  atomic.Int64 // Offer successes
	processed atomic.Int64 // applied by the loop

	feedback   *metrics.Counter
	dropped    *metrics.Counter
	updates    *metrics.Counter
	mispred    *metrics.Counter
	snapshots  *metrics.Counter
	regens     *metrics.Counter
	pubErrs    *metrics.Counter
	driftScore *metrics.Gauge
	queueDepth *metrics.Gauge
}

// New builds a trainer publishing into g. A nil cfg returns a nil trainer
// — the "online learning off" configuration; every method on a nil
// trainer is a safe no-op, so callers thread the pointer through without
// branching and the serving path stays bit-identical to a build without
// this package. met receives the hdc_online_* telemetry (pass the serving
// registry so /snapshot and /metrics carry it); nil uses a private one.
func New(p pipeline.Platform, g *registry.Registry, cfg *Config, met *metrics.Registry) (*Trainer, error) {
	if cfg == nil {
		return nil, nil
	}
	if g == nil {
		return nil, fmt.Errorf("online: nil registry")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	if met == nil {
		met = metrics.NewRegistry()
	}
	t := &Trainer{
		cfg:    c,
		p:      p,
		g:      g,
		states: map[string]*modelState{},
		ch:     make(chan Feedback, c.Queue),
		flush:  make(chan chan struct{}),
		done:   make(chan struct{}),

		feedback:   met.Counter("hdc_online_feedback_total"),
		dropped:    met.Counter("hdc_online_feedback_dropped_total"),
		updates:    met.Counter("hdc_online_updates_total"),
		mispred:    met.Counter("hdc_online_mispredictions_total"),
		snapshots:  met.Counter("hdc_online_snapshots_total"),
		regens:     met.Counter("hdc_online_regens_total"),
		pubErrs:    met.Counter("hdc_online_publish_errors_total"),
		driftScore: met.Gauge("hdc_online_drift_score_e4"),
		queueDepth: met.Gauge("hdc_online_queue_depth"),
	}
	return t, nil
}

// Attach registers a model for online training: the trainer takes a
// private deep copy of model (the caller's copy is never touched again)
// and will publish snapshots under the registry ID id, compiling against
// calib. The first attached model is the default for Feedback with an
// empty Model. Attach must precede Start.
func (t *Trainer) Attach(id string, model *hdc.Model, calib *dataset.Dataset) error {
	if t == nil {
		return nil
	}
	if model == nil || calib == nil || calib.Samples() == 0 {
		return fmt.Errorf("online: attach %q needs a model and a non-empty calibration set", id)
	}
	if _, ok := t.g.Get(id); !ok {
		return fmt.Errorf("online: attach of unregistered model %q", id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		return fmt.Errorf("online: attach %q after Start", id)
	}
	if _, dup := t.states[id]; dup {
		return fmt.Errorf("online: model %q attached twice", id)
	}
	priv := model.Clone()
	t.states[id] = &modelState{
		id:      id,
		model:   priv,
		calib:   calib,
		scratch: priv.NewAdaptScratch(),
		ring:    newReplayRing(t.cfg.Buffer, model.Encoder.Features()),
		det:     newDriftDetector(t.cfg.DriftWindow, t.cfg.DriftThreshold),
		r:       rng.New(t.cfg.Seed + uint64(len(t.states))),
	}
	if t.defID == "" {
		t.defID = id
	}
	return nil
}

// Start launches the trainer goroutine. It requires at least one attached
// model.
func (t *Trainer) Start() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		return fmt.Errorf("online: Start called twice")
	}
	if len(t.states) == 0 {
		return fmt.Errorf("online: Start with no attached models")
	}
	t.started = true
	t.wg.Add(1)
	go t.loop()
	return nil
}

// Offer enqueues one feedback sample without blocking: when the queue is
// full the sample is dropped (counted in hdc_online_feedback_dropped_total)
// and Offer reports false. Features are copied, so the caller may reuse
// the slice. Offer is safe from any goroutine, including serving Consume
// callbacks — it never takes a lock the invoke path could wait on.
func (t *Trainer) Offer(fb Feedback) bool {
	if t == nil {
		return false
	}
	fb.Features = append([]float32(nil), fb.Features...)
	select {
	case t.ch <- fb:
		t.accepted.Add(1)
		t.queueDepth.Set(int64(len(t.ch)))
		return true
	default:
		t.dropped.Inc()
		return false
	}
}

// Quiesce blocks until every accepted feedback sample has been applied
// (or the trainer closes). It exists so tests and experiment drivers can
// sequence assertions after a burst of Offers.
func (t *Trainer) Quiesce() {
	if t == nil {
		return
	}
	for t.processed.Load() < t.accepted.Load() {
		select {
		case <-t.done:
			return
		default:
			runtime.Gosched()
		}
	}
}

// Flush publishes any applied-but-unsnapshotted updates immediately,
// without waiting for the SnapshotEvery threshold, and blocks until the
// publication is done (or the trainer closes). Callers that want every
// accepted sample reflected first should Quiesce before flushing.
// Flushing an idle or unstarted trainer is a no-op.
func (t *Trainer) Flush() {
	if t == nil {
		return
	}
	t.mu.Lock()
	started := t.started
	t.mu.Unlock()
	if !started {
		return
	}
	ack := make(chan struct{})
	select {
	case t.flush <- ack:
		select {
		case <-ack:
		case <-t.done:
		}
	case <-t.done:
	}
}

// Close stops the trainer after draining the queued feedback and waits
// for the goroutine to exit. Safe to call more than once.
func (t *Trainer) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	started := t.started
	select {
	case <-t.done:
		t.mu.Unlock()
		return
	default:
	}
	close(t.done)
	t.mu.Unlock()
	if started {
		t.wg.Wait()
	}
}

// Stats is a point-in-time summary of the trainer's counters.
type Stats struct {
	Feedback       int64
	Dropped        int64
	Updates        int64
	Mispredictions int64
	Snapshots      int64
	Regens         int64
	PublishErrors  int64
	DriftScore     float64
}

// Stats reads the current counters. Safe from any goroutine.
func (t *Trainer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Feedback:       t.feedback.Value(),
		Dropped:        t.dropped.Value(),
		Updates:        t.updates.Value(),
		Mispredictions: t.mispred.Value(),
		Snapshots:      t.snapshots.Value(),
		Regens:         t.regens.Value(),
		PublishErrors:  t.pubErrs.Value(),
		DriftScore:     float64(t.driftScore.Value()) / 1e4,
	}
}

// loop is the trainer goroutine: apply feedback, watch for drift, publish
// snapshots. It drains the channel before honoring done, so Close after a
// burst of Offers still applies everything.
func (t *Trainer) loop() {
	defer t.wg.Done()
	for {
		select {
		case fb := <-t.ch:
			t.apply(fb)
		case ack := <-t.flush:
			t.flushAll()
			close(ack)
		case <-t.done:
			for {
				select {
				case fb := <-t.ch:
					t.apply(fb)
				default:
					t.flushAll()
					return
				}
			}
		}
	}
}

// apply folds one feedback sample into its model's private copy. It ends
// with a scheduler yield for the same reason refinement yields per
// sample: draining a backlog of queued feedback must not hold a core for
// the runtime's full preemption quantum while serving workers wait.
func (t *Trainer) apply(fb Feedback) {
	defer func() {
		t.processed.Add(1)
		t.queueDepth.Set(int64(len(t.ch)))
		runtime.Gosched()
	}()
	t.feedback.Inc()
	id := fb.Model
	if id == "" {
		id = t.defID
	}
	st := t.states[id]
	if st == nil || len(fb.Features) != st.model.Encoder.Features() ||
		fb.Label < 0 || fb.Label >= st.model.K() {
		t.dropped.Inc()
		return
	}
	pred, updated := st.model.AdaptOnline(st.scratch, fb.Features, fb.Label, hdc.OnlineConfig{
		LearningRate: t.cfg.LearningRate,
		Margin:       t.cfg.Margin,
	})
	if updated {
		t.updates.Inc()
		st.pending++
	}
	correct := pred == fb.Label
	if !correct {
		t.mispred.Inc()
	}
	st.ring.push(fb.Features, fb.Label)
	st.sinceRegen++

	drifted := st.det.observe(correct)
	if id == t.defID {
		t.driftScore.Set(int64(st.det.score() * 1e4))
	}
	if drifted && !st.regenArmed {
		st.regenArmed = true
	}
	if st.regenArmed && st.sinceRegen >= t.cfg.RegenCooldown && st.ring.len() >= t.cfg.DriftWindow {
		t.regenerate(st)
		return
	}
	if st.pending >= t.cfg.SnapshotEvery {
		t.publish(st)
	}
}

// regenerate runs the DistHD-style recovery on one model: re-draw the
// weakest dimensions, refine on the replay buffer, publish the result.
//
// Refinement runs sample-by-sample with a scheduler yield between
// samples rather than through the monolithic RegenerateAndRefine: on
// small hosts the trainer time-shares cores with the serving workers,
// and a refine pass that holds a core for its full length would park
// in-flight requests for the runtime's whole preemption quantum — a
// stall that surfaces directly in the serving tail. Yielding caps the
// worst-case worker wait at one sample's encode.
func (t *Trainer) regenerate(st *modelState) {
	if _, err := st.model.Regenerate(t.cfg.RegenFraction, st.r.Split()); err != nil {
		t.pubErrs.Inc()
		return
	}
	x, y := st.ring.design()
	lr := t.cfg.LearningRate
	if lr == 0 {
		lr = 1
	}
	shuffle := st.r.Split()
	for e := 0; e < t.cfg.RegenEpochs; e++ {
		for _, i := range shuffle.Perm(len(y)) {
			st.model.AdaptWith(st.scratch, x.Row(i), y[i], lr)
			runtime.Gosched()
		}
	}
	t.regens.Inc()
	st.det.reset()
	st.regenArmed = false
	st.sinceRegen = 0
	t.publish(st)
}

// publish compiles the current private model and hot-swaps it into the
// registry. The compile runs on a fresh clone, so the published snapshot
// shares no storage with the copy the trainer keeps mutating — workers
// binding the new version read immutable state.
func (t *Trainer) publish(st *modelState) {
	st.pending = 0
	snap := st.model.Clone()
	cm, err := pipeline.CompileInference(t.p, snap, st.calib, t.cfg.Batch)
	if err != nil {
		t.pubErrs.Inc()
		return
	}
	var bip *hdc.BipolarModel
	if t.cfg.Binarize {
		bip = snap.Binarize()
	}
	if _, err := t.g.Swap(st.id, cm, bip); err != nil {
		t.pubErrs.Inc()
		return
	}
	t.snapshots.Inc()
}

// flushAll publishes any unpublished updates on shutdown so accepted
// feedback is never silently lost between snapshots.
func (t *Trainer) flushAll() {
	for _, id := range sortedIDs(t.states) {
		if st := t.states[id]; st.pending > 0 {
			t.publish(st)
		}
	}
}

func sortedIDs(m map[string]*modelState) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}
