package pipeline

import (
	"fmt"
	"time"

	"hdcedge/internal/bagging"
	"hdcedge/internal/cpuarch"
	"hdcedge/internal/edgetpu"
)

// TrainingBreakdown splits training runtime into the phases Fig 5 charts.
type TrainingBreakdown struct {
	// Encode is the training-set encoding time (CPU or accelerator).
	Encode time.Duration
	// Update is the host-CPU class-hypervector training time: per-epoch
	// similarity search plus bundling/detaching of misclassified samples.
	Update time.Duration
	// ModelGen is the one-time cost of generating and compiling the
	// accelerator models on the host (zero for the CPU baseline).
	ModelGen time.Duration
}

// Total returns the end-to-end training time.
func (b TrainingBreakdown) Total() time.Duration { return b.Encode + b.Update + b.ModelGen }

// calibBatches is how many representative batches post-training
// quantization runs during model generation.
const calibBatches = 8

// CPUTraining models full HDC training on the host alone: float encoding
// of the training set, then Epochs passes of similarity search and
// perceptron updates.
func CPUTraining(host cpuarch.Spec, w Workload) (TrainingBreakdown, error) {
	if err := w.Validate(); err != nil {
		return TrainingBreakdown{}, err
	}
	var b TrainingBreakdown
	b.Encode = host.GEMMTime(w.TrainSamples, w.Features, w.Dim) + host.TanhTime(w.TrainSamples*w.Dim)
	b.Update = updateTime(host, w.TrainSamples, w.Dim, w.Classes, w.UpdateFracs)
	return b, nil
}

// updateTime prices the host-side class-hypervector training: every epoch
// scores all samples against the class matrix (GEMM + argmax scan) and
// applies two λ·E vector updates per misclassified sample.
func updateTime(host cpuarch.Spec, samples, d, k int, fracs []float64) time.Duration {
	var total time.Duration
	perUpdate := 2 * host.AxpyTime(d)
	for _, f := range fracs {
		total += host.GEMMTime(samples, d, k)
		total += host.ArgMaxTime(samples * k)
		updates := int(f * float64(samples))
		total += time.Duration(updates) * perUpdate
	}
	return total
}

// modelGenTime prices generating one accelerator model on the host:
// running the representative dataset through the float graph for
// calibration, the quantization/serialization passes over the parameters,
// and the accelerator compiler pass.
func modelGenTime(host cpuarch.Spec, batch, n, d, paramBytes int) time.Duration {
	calibSamples := calibBatches * batch
	calib := host.GEMMTime(calibSamples, n, d) + host.TanhTime(calibSamples*d)
	quantize := host.StreamTime(5 * paramBytes)
	compile := host.StreamTime(3 * paramBytes)
	return calib + quantize + compile
}

// acceleratorSweep compiles a skeleton with the given shape, loads it and
// returns (per-invoke timing, parameter bytes).
func acceleratorSweep(p Platform, name string, batch, n, d, k int, withClassifier bool) (edgetpu.Timing, int, error) {
	if !p.HasAccel() {
		return edgetpu.Timing{}, 0, fmt.Errorf("pipeline: platform %s has no accelerator", p.Name)
	}
	model, err := BuildSkeleton(name, batch, n, d, k, withClassifier)
	if err != nil {
		return edgetpu.Timing{}, 0, err
	}
	cm, err := edgetpu.Compile(model, *p.Accel)
	if err != nil {
		return edgetpu.Timing{}, 0, err
	}
	dev := edgetpu.NewDevice(*p.Accel)
	if _, err := dev.LoadModel(cm); err != nil {
		return edgetpu.Timing{}, 0, err
	}
	timing, err := dev.EstimateInvoke()
	if err != nil {
		return edgetpu.Timing{}, 0, err
	}
	return timing, cm.ParamBytes, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// TPUTraining models the co-design split without bagging: encoding on the
// accelerator (batched invokes of the encoder model), class-hypervector
// updates on the host, plus the one-time model-generation cost.
func TPUTraining(p Platform, w Workload) (TrainingBreakdown, error) {
	if err := w.Validate(); err != nil {
		return TrainingBreakdown{}, err
	}
	perInvoke, paramBytes, err := acceleratorSweep(p, "encoder", w.Batch, w.Features, w.Dim, w.Classes, false)
	if err != nil {
		return TrainingBreakdown{}, err
	}
	var b TrainingBreakdown
	invokes := ceilDiv(w.TrainSamples, w.Batch)
	b.Encode = time.Duration(invokes) * perInvoke.Total()
	b.Update = updateTime(p.Host, w.TrainSamples, w.Dim, w.Classes, w.UpdateFracs)
	b.ModelGen = modelGenTime(p.Host, w.Batch, w.Features, w.Dim, paramBytes)
	return b, nil
}

// BaggingTraining models the full proposed framework (TPU_B): M encoder
// models of width d' = d/M encode bootstrap subsets on the accelerator,
// the weak sub-models train on the host for I' iterations, and model
// generation covers the M encoder models plus the fused inference model.
// subFracs gives the per-iteration misclassification profile of the weak
// learners (DefaultUpdateFracs(cfg.Iterations) when nil).
func BaggingTraining(p Platform, w Workload, cfg bagging.Config, subFracs []float64) (TrainingBreakdown, error) {
	if err := w.Validate(); err != nil {
		return TrainingBreakdown{}, err
	}
	if err := cfg.Validate(); err != nil {
		return TrainingBreakdown{}, err
	}
	if subFracs == nil {
		subFracs = DefaultUpdateFracs(cfg.Iterations)
	}
	if len(subFracs) != cfg.Iterations {
		return TrainingBreakdown{}, fmt.Errorf("pipeline: %d sub-model fractions for %d iterations", len(subFracs), cfg.Iterations)
	}
	subDim := cfg.SubDim()
	subSamples := int(float64(w.TrainSamples) * cfg.DatasetRatio)
	keptFeatures := w.Features
	if cfg.FeatureRatio < 1 {
		keptFeatures = int(float64(w.Features) * cfg.FeatureRatio)
		if keptFeatures < 1 {
			keptFeatures = 1
		}
	}

	perInvoke, subParamBytes, err := acceleratorSweep(p, "sub-encoder", w.Batch, w.Features, subDim, w.Classes, false)
	if err != nil {
		return TrainingBreakdown{}, err
	}
	var b TrainingBreakdown
	invokesPerSub := ceilDiv(subSamples, w.Batch)
	b.Encode = time.Duration(cfg.SubModels*invokesPerSub) * perInvoke.Total()
	for m := 0; m < cfg.SubModels; m++ {
		b.Update += updateTime(p.Host, subSamples, subDim, w.Classes, subFracs)
	}
	// Model generation: M sub-encoder models, then the fused inference
	// model at full width. Calibration GEMM scales with the kept features.
	subGen := modelGenTime(p.Host, w.Batch, keptFeatures, subDim, subParamBytes)
	b.ModelGen = time.Duration(cfg.SubModels) * subGen

	_, fusedParamBytes, err := acceleratorSweep(p, "fused-inference", w.Batch, w.Features, cfg.Dim, w.Classes, true)
	if err != nil {
		return TrainingBreakdown{}, err
	}
	b.ModelGen += modelGenTime(p.Host, w.Batch, w.Features, cfg.Dim, fusedParamBytes)
	return b, nil
}

// CPUInference models classifying the test set on the host alone.
func CPUInference(host cpuarch.Spec, w Workload) (time.Duration, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	total := host.GEMMTime(w.TestSamples, w.Features, w.Dim)
	total += host.TanhTime(w.TestSamples * w.Dim)
	total += host.GEMMTime(w.TestSamples, w.Dim, w.Classes)
	total += host.ArgMaxTime(w.TestSamples * w.Classes)
	return total, nil
}

// TPUInference models classifying the test set with the full inference
// model on the accelerator. Model generation is a one-time cost excluded
// here, as in Fig 6.
func TPUInference(p Platform, w Workload) (time.Duration, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	perInvoke, _, err := acceleratorSweep(p, "inference", w.InferBatch, w.Features, w.Dim, w.Classes, true)
	if err != nil {
		return 0, err
	}
	invokes := ceilDiv(w.TestSamples, w.InferBatch)
	return time.Duration(invokes) * perInvoke.Total(), nil
}

// PipelinedSeries models a double-buffered invocation stream: while the
// accelerator computes batch i, the host prepares and transfers batch
// i+1. Steady-state throughput is set by the slower of the two resources
// (the link+host side vs the MXU); the faster side hides completely. The
// first invocation pays both (pipeline fill).
func PipelinedSeries(per edgetpu.Timing, invokes int) time.Duration {
	if invokes <= 0 {
		return 0
	}
	linkSide := per.Host + per.TransferIn + per.WeightStream + per.TransferOut + per.HostFallback
	computeSide := per.Compute
	bottleneck := linkSide
	if computeSide > bottleneck {
		bottleneck = computeSide
	}
	fill := per.Total() - bottleneck
	return time.Duration(invokes)*bottleneck + fill
}

// TPUTrainingPipelined is TPUTraining with double-buffered encoding: the
// extension the single-buffer TFLite runtime of the paper leaves on the
// table.
func TPUTrainingPipelined(p Platform, w Workload) (TrainingBreakdown, error) {
	if err := w.Validate(); err != nil {
		return TrainingBreakdown{}, err
	}
	perInvoke, paramBytes, err := acceleratorSweep(p, "encoder", w.Batch, w.Features, w.Dim, w.Classes, false)
	if err != nil {
		return TrainingBreakdown{}, err
	}
	var b TrainingBreakdown
	b.Encode = PipelinedSeries(perInvoke, ceilDiv(w.TrainSamples, w.Batch))
	b.Update = updateTime(p.Host, w.TrainSamples, w.Dim, w.Classes, w.UpdateFracs)
	b.ModelGen = modelGenTime(p.Host, w.Batch, w.Features, w.Dim, paramBytes)
	return b, nil
}

// MultiDeviceSeries models fanning an invocation stream across `devices`
// accelerators that share the single host link: compute parallelizes, but
// every batch still crosses the same USB/PCIe connection and pays its
// host dispatch serially. Scaling therefore saturates once the link side
// becomes the bottleneck — the practical ceiling of multi-dongle setups.
func MultiDeviceSeries(per edgetpu.Timing, invokes, devices int) time.Duration {
	if invokes <= 0 {
		return 0
	}
	if devices < 1 {
		devices = 1
	}
	linkSide := per.Host + per.TransferIn + per.WeightStream + per.TransferOut + per.HostFallback
	computeSide := per.Compute / time.Duration(devices)
	bottleneck := linkSide
	if computeSide > bottleneck {
		bottleneck = computeSide
	}
	fill := per.Total() - bottleneck
	if fill < 0 {
		fill = 0
	}
	return time.Duration(invokes)*bottleneck + fill
}

// AcceleratorEncodeTiming exposes the per-invoke encoder timing and
// parameter bytes for a workload — the quantity scale-out and pipelining
// studies reason over.
func AcceleratorEncodeTiming(p Platform, w Workload) (edgetpu.Timing, int, error) {
	if err := w.Validate(); err != nil {
		return edgetpu.Timing{}, 0, err
	}
	return acceleratorSweep(p, "encoder", w.Batch, w.Features, w.Dim, w.Classes, false)
}
