package pipeline

import (
	"fmt"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// FunctionalResult is the outcome of a functional (actually executed)
// pipeline run.
type FunctionalResult struct {
	Model *hdc.Model
	Stats *hdc.TrainStats
	// DeviceTime accumulates the simulated accelerator timing across all
	// invocations of the run.
	DeviceTime edgetpu.Timing
}

// TrainOnDevice runs the co-design training loop functionally: base
// hypervectors are generated on the host, the encoder model is quantized
// and compiled for the accelerator, the training set is encoded batch by
// batch on the simulated device, and the class hypervectors are trained on
// the host from the device-produced (int8-quantized) encodings — exactly
// the paper's Fig 1 flow.
func TrainOnDevice(p Platform, train *dataset.Dataset, cfg hdc.TrainConfig) (*FunctionalResult, error) {
	if !p.HasAccel() {
		return nil, fmt.Errorf("pipeline: platform %s has no accelerator", p.Name)
	}
	if train == nil || train.Samples() == 0 {
		return nil, fmt.Errorf("pipeline: empty training set")
	}
	if cfg.Dim == 0 {
		cfg.Dim = hdc.DefaultDim
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 20
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 1
	}
	r := rng.New(cfg.Seed)
	enc := hdc.NewEncoder(train.Features(), cfg.Dim, cfg.Nonlinear, r.Split())

	encoded, timing, err := EncodeOnDevice(p, enc, train, DefaultBatch)
	if err != nil {
		return nil, err
	}
	model := hdc.NewModel(enc, train.Classes)
	stats, err := model.FitEncoded(encoded, train.Y, nil, nil, cfg.Epochs, cfg.LearningRate, r.Split())
	if err != nil {
		return nil, err
	}
	return &FunctionalResult{Model: model, Stats: stats, DeviceTime: timing}, nil
}

// EncodeOnDevice encodes every row of ds through the accelerator's
// quantized encoder model, returning the [samples, d] float matrix of
// (quantization-faithful) hypervectors plus accumulated device timing.
func EncodeOnDevice(p Platform, enc *hdc.Encoder, ds *dataset.Dataset, batch int) (*tensor.Tensor, edgetpu.Timing, error) {
	var zero edgetpu.Timing
	cm, err := CompileEncoder(p, enc, ds, batch)
	if err != nil {
		return nil, zero, err
	}
	dev := edgetpu.NewDevice(*p.Accel)
	if _, err := dev.LoadModel(cm); err != nil {
		return nil, zero, err
	}

	n := ds.Features()
	d := enc.Dim()
	s := ds.Samples()
	out := tensor.New(tensor.Float32, s, d)
	var total edgetpu.Timing
	for start := 0; start < s; start += batch {
		end := start + batch
		if end > s {
			end = s
		}
		in := dev.Input(0)
		for r := 0; r < batch; r++ {
			src := start + r
			if src >= s {
				src = s - 1 // pad the final partial batch with the last row
			}
			copy(in.F32[r*n:(r+1)*n], ds.X.Row(src))
		}
		timing, err := dev.Invoke()
		if err != nil {
			return nil, zero, err
		}
		total.Add(timing)
		encOut := dev.Output(0)
		for r := 0; start+r < end; r++ {
			copy(out.Row(start+r), encOut.F32[r*d:(r+1)*d])
		}
	}
	return out, total, nil
}

// InferOnDevice classifies every row of test with the full inference
// model on the simulated accelerator. calib provides the representative
// dataset for quantization (normally the training set). It returns
// predictions and accumulated device timing.
func InferOnDevice(p Platform, model *hdc.Model, test, calib *dataset.Dataset, batch int) ([]int, edgetpu.Timing, error) {
	preds, timing, _, err := inferOnDevice(p, model, test, calib, batch, false)
	return preds, timing, err
}

// InferOnDeviceProfiled is InferOnDevice with a per-op execution profile
// accumulated across all invocations.
func InferOnDeviceProfiled(p Platform, model *hdc.Model, test, calib *dataset.Dataset, batch int) ([]int, edgetpu.Timing, *edgetpu.Profiler, error) {
	return inferOnDevice(p, model, test, calib, batch, true)
}

func inferOnDevice(p Platform, model *hdc.Model, test, calib *dataset.Dataset, batch int, profile bool) ([]int, edgetpu.Timing, *edgetpu.Profiler, error) {
	var zero edgetpu.Timing
	if !p.HasAccel() {
		return nil, zero, nil, fmt.Errorf("pipeline: platform %s has no accelerator", p.Name)
	}
	cm, err := CompileInference(p, model, calib, batch)
	if err != nil {
		return nil, zero, nil, err
	}
	dev := edgetpu.NewDevice(*p.Accel)
	if _, err := dev.LoadModel(cm); err != nil {
		return nil, zero, nil, err
	}
	var prof *edgetpu.Profiler
	if profile {
		prof = dev.AttachProfiler()
	}

	n := test.Features()
	s := test.Samples()
	preds := make([]int, s)
	var total edgetpu.Timing
	for start := 0; start < s; start += batch {
		end := start + batch
		if end > s {
			end = s
		}
		in := dev.Input(0)
		for r := 0; r < batch; r++ {
			src := start + r
			if src >= s {
				src = s - 1
			}
			copy(in.F32[r*n:(r+1)*n], test.X.Row(src))
		}
		var timing edgetpu.Timing
		if profile {
			timing, _, err = dev.InvokeProfiled()
		} else {
			timing, err = dev.Invoke()
		}
		if err != nil {
			return nil, zero, nil, err
		}
		total.Add(timing)
		for r := 0; start+r < end; r++ {
			preds[start+r] = int(dev.Output(0).I32[r])
		}
	}
	return preds, total, prof, nil
}

// TrainOnDeviceStreaming interleaves the co-design loop at batch
// granularity: each batch is encoded on the accelerator and immediately
// applied to the class hypervectors on the host (single pass, in stream
// order), then optional refinement epochs run over the retained
// encodings. It models the deployment where training data arrives as a
// stream rather than a stored dataset.
func TrainOnDeviceStreaming(p Platform, train *dataset.Dataset, cfg hdc.TrainConfig, refineEpochs int) (*FunctionalResult, error) {
	if !p.HasAccel() {
		return nil, fmt.Errorf("pipeline: platform %s has no accelerator", p.Name)
	}
	if train == nil || train.Samples() == 0 {
		return nil, fmt.Errorf("pipeline: empty training set")
	}
	if cfg.Dim == 0 {
		cfg.Dim = hdc.DefaultDim
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 1
	}
	r := rng.New(cfg.Seed)
	enc := hdc.NewEncoder(train.Features(), cfg.Dim, cfg.Nonlinear, r.Split())
	encoded, timing, err := EncodeOnDevice(p, enc, train, DefaultBatch)
	if err != nil {
		return nil, err
	}
	model := hdc.NewModel(enc, train.Classes)
	stats := &hdc.TrainStats{}
	// Streaming pass: apply each sample once, in arrival order.
	updates := 0
	for i := 0; i < train.Samples(); i++ {
		e := encoded.Row(i)
		if pred := model.ClassifyEncoded(e); pred != train.Y[i] {
			model.Bundle(train.Y[i], cfg.LearningRate, e)
			model.Detach(pred, cfg.LearningRate, e)
			updates++
		}
	}
	stats.Epochs = append(stats.Epochs, hdc.EpochStats{
		Epoch: 0, Updates: updates,
		TrainAccuracy: 1 - float64(updates)/float64(train.Samples()),
	})
	if refineEpochs > 0 {
		more, err := model.FitEncoded(encoded, train.Y, nil, nil, refineEpochs, cfg.LearningRate, r.Split())
		if err != nil {
			return nil, err
		}
		stats.Epochs = append(stats.Epochs, more.Epochs...)
	}
	return &FunctionalResult{Model: model, Stats: stats, DeviceTime: timing}, nil
}
