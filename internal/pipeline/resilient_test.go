package pipeline

import (
	"math"
	"testing"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/rng"
)

// resilientData returns a small split so the fault-path tests stay fast.
func resilientData(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	train, test := functionalData(t)
	idx := make([]int, 160)
	for i := range idx {
		idx[i] = i
	}
	tidx := make([]int, 64)
	for i := range tidx {
		tidx[i] = i
	}
	return train.Subset(idx), test.Subset(tidx)
}

func TestResilientZeroPlanBitIdentical(t *testing.T) {
	// With no faults armed, the resilient path must cost exactly nothing:
	// same encodings, same timing, no recovery activity.
	train, _ := resilientData(t)
	enc := hdc.NewEncoder(train.Features(), 256, true, rng.New(12))
	base, baseT, err := EncodeOnDevice(EdgeTPU(), enc, train, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, resT, report, err := EncodeOnDeviceResilient(EdgeTPU(), enc, train, 16, edgetpu.FaultPlan{}, DefaultRecoveryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if baseT != resT {
		t.Fatalf("timing diverged: direct %+v resilient %+v", baseT, resT)
	}
	for i := range base.F32 {
		if base.F32[i] != res.F32[i] {
			t.Fatalf("encoding element %d diverged: %v vs %v", i, base.F32[i], res.F32[i])
		}
	}
	if report.Retries != 0 || report.FallbackInvokes != 0 || report.Overhead() != 0 {
		t.Fatalf("healthy run recorded recovery activity: %+v", report)
	}
	if report.Invokes == 0 || report.Invokes != report.DeviceInvokes {
		t.Fatalf("invoke accounting off: %+v", report)
	}
}

func TestResilientDeterministic(t *testing.T) {
	// Same fault plan + policy seeds ⇒ identical fault sequence, identical
	// recovery, identical report, identical outputs.
	train, test := resilientData(t)
	cfg := hdc.TrainConfig{Dim: 512, Epochs: 4, LearningRate: 1, Nonlinear: true, Seed: 9}
	model, _, err := hdc.Train(train, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := edgetpu.FaultPlan{Seed: 11, LinkErrorRate: 0.2, ResetRate: 0.05}
	run := func() ([]int, edgetpu.Timing, *ReliabilityReport) {
		preds, timing, report, err := InferOnDeviceResilient(EdgeTPU(), model, test, train, 8, plan, DefaultRecoveryPolicy())
		if err != nil {
			t.Fatal(err)
		}
		return preds, timing, report
	}
	p1, t1, r1 := run()
	p2, t2, r2 := run()
	if *r1 != *r2 {
		t.Fatalf("reports diverged:\n%+v\n%+v", *r1, *r2)
	}
	if t1 != t2 {
		t.Fatalf("timings diverged: %+v vs %+v", t1, t2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("prediction %d diverged: %d vs %d", i, p1[i], p2[i])
		}
	}
	if r1.Retries == 0 && r1.FallbackInvokes == 0 {
		t.Fatalf("plan %+v injected nothing: %+v", plan, r1)
	}
}

func TestResilientAbsorbsLinkAndResetFaults(t *testing.T) {
	// Transient link faults and resets are absorbed exactly: the resilient
	// run produces the same predictions as the healthy run, just slower.
	train, test := resilientData(t)
	cfg := hdc.TrainConfig{Dim: 512, Epochs: 4, LearningRate: 1, Nonlinear: true, Seed: 9}
	model, _, err := hdc.Train(train, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	healthy, healthyT, err := InferOnDevice(EdgeTPU(), model, test, train, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := edgetpu.FaultPlan{Seed: 3, LinkErrorRate: 0.3, ResetRate: 0.08}
	preds, timing, report, err := InferOnDeviceResilient(EdgeTPU(), model, test, train, 8, plan, DefaultRecoveryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for i := range healthy {
		if preds[i] != healthy[i] {
			t.Fatalf("prediction %d diverged under transient faults: %d vs %d", i, preds[i], healthy[i])
		}
	}
	if report.Retries == 0 {
		t.Fatalf("no retries at link rate 0.3: %+v", report)
	}
	if report.Resets > 0 && report.Reloads == 0 {
		t.Fatalf("resets without reloads: %+v", report)
	}
	if timing.Total() <= healthyT.Total() {
		t.Fatalf("faulty run %v not slower than healthy %v", timing.Total(), healthyT.Total())
	}
	if report.Overhead() <= 0 {
		t.Fatalf("no overhead recorded: %+v", report)
	}
}

func TestResilientBreakerFallsBackToHost(t *testing.T) {
	// A dead link (every transfer fails) exhausts retries on consecutive
	// invokes, trips the breaker, and the run still completes on the host
	// with bit-exact predictions.
	train, test := resilientData(t)
	cfg := hdc.TrainConfig{Dim: 512, Epochs: 4, LearningRate: 1, Nonlinear: true, Seed: 9}
	model, _, err := hdc.Train(train, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	healthy, _, err := InferOnDevice(EdgeTPU(), model, test, train, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := edgetpu.FaultPlan{Seed: 5, LinkErrorRate: 1}
	preds, timing, report, err := InferOnDeviceResilient(EdgeTPU(), model, test, train, 8, plan, DefaultRecoveryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !report.BreakerTripped {
		t.Fatalf("breaker did not trip on a dead link: %+v", report)
	}
	if report.FallbackInvokes != report.Invokes {
		t.Fatalf("%d of %d invokes fell back; dead link should force all", report.FallbackInvokes, report.Invokes)
	}
	if report.FallbackTime <= 0 || timing.HostFallback <= 0 {
		t.Fatalf("no host fallback time accounted: report %+v timing %+v", report, timing)
	}
	for i := range healthy {
		if preds[i] != healthy[i] {
			t.Fatalf("host-fallback prediction %d diverged: %d vs %d", i, preds[i], healthy[i])
		}
	}
	// Once the breaker trips, later invokes must stop burning device attempts.
	maxAttempts := report.Invokes * (1 + DefaultRecoveryPolicy().MaxRetries)
	if report.DeviceInvokes >= maxAttempts {
		t.Fatalf("breaker did not stop device attempts: %d attempts for %d invokes", report.DeviceInvokes, report.Invokes)
	}
}

func TestResilientSEUCompletesDegraded(t *testing.T) {
	// Heavy SEU rates corrupt resident weights; the run must still complete
	// and stay above chance (graceful, not catastrophic, degradation).
	train, test := resilientData(t)
	cfg := hdc.TrainConfig{Dim: 512, Epochs: 4, LearningRate: 1, Nonlinear: true, Seed: 9}
	model, _, err := hdc.Train(train, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := edgetpu.FaultPlan{Seed: 17, BitFlipRate: 1e-5}
	preds, _, _, err := InferOnDeviceResilient(EdgeTPU(), model, test, train, 8, plan, DefaultRecoveryPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != test.Samples() {
		t.Fatalf("%d predictions for %d samples", len(preds), test.Samples())
	}
}

func TestRecoveryPolicyValidate(t *testing.T) {
	good := DefaultRecoveryPolicy()
	if err := good.Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	cases := []func(*RecoveryPolicy){
		func(p *RecoveryPolicy) { p.MaxRetries = -1 },
		func(p *RecoveryPolicy) { p.BaseBackoff = 0 },
		func(p *RecoveryPolicy) { p.MaxBackoff = p.BaseBackoff - 1 },
		func(p *RecoveryPolicy) { p.JitterFrac = -0.1 },
		func(p *RecoveryPolicy) { p.JitterFrac = 1.5 },
		func(p *RecoveryPolicy) { p.JitterFrac = math.NaN() },
		func(p *RecoveryPolicy) { p.BreakerThreshold = 0 },
	}
	for i, mutate := range cases {
		p := DefaultRecoveryPolicy()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: invalid policy accepted: %+v", i, p)
		}
	}
}

func TestHostModelTimePricesInferenceModel(t *testing.T) {
	train, _ := resilientData(t)
	cfg := hdc.TrainConfig{Dim: 512, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 9}
	model, _, err := hdc.Train(train, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := EdgeTPU()
	small, err := CompileInference(p, model, train, 4)
	if err != nil {
		t.Fatal(err)
	}
	large, err := CompileInference(p, model, train, 32)
	if err != nil {
		t.Fatal(err)
	}
	ts := HostModelTime(p.Host, small.Model)
	tl := HostModelTime(p.Host, large.Model)
	if ts <= 0 {
		t.Fatalf("host pricing %v for a real model", ts)
	}
	if tl <= ts {
		t.Fatalf("8× batch not slower on host: %v vs %v", tl, ts)
	}
}

// FuzzBackoffSchedule checks the backoff schedule can never produce a
// negative or overflowing wait, for any policy that passes Validate.
func FuzzBackoffSchedule(f *testing.F) {
	f.Add(int64(200*time.Microsecond), int64(10*time.Millisecond), 0.2, uint64(1), 5)
	f.Add(int64(1), int64(math.MaxInt64), 1.0, uint64(99), 63)
	f.Add(int64(time.Hour), int64(time.Hour), 0.0, uint64(0), 1000)
	f.Fuzz(func(t *testing.T, base, ceil int64, jitter float64, seed uint64, attempts int) {
		p := RecoveryPolicy{
			MaxRetries:       3,
			BaseBackoff:      time.Duration(base),
			MaxBackoff:       time.Duration(ceil),
			JitterFrac:       jitter,
			BreakerThreshold: 1,
			Seed:             seed,
		}
		if p.Validate() != nil {
			t.Skip()
		}
		if attempts < 0 {
			attempts = -attempts
		}
		attempts = attempts%200 + 1
		r := rng.New(seed)
		ceiling := float64(p.MaxBackoff) * (1 + p.JitterFrac)
		for a := 0; a <= attempts; a++ {
			d := p.backoff(a, r)
			if d < 0 {
				t.Fatalf("attempt %d: negative backoff %v (policy %+v)", a, d, p)
			}
			if float64(d) > ceiling+1 && ceiling < float64(math.MaxInt64) {
				t.Fatalf("attempt %d: backoff %v above ceiling %v (policy %+v)", a, d, time.Duration(ceiling), p)
			}
		}
	})
}
