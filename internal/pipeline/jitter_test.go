package pipeline

import (
	"testing"
	"time"

	"hdcedge/internal/edgetpu"
	"hdcedge/internal/metrics"
	"hdcedge/internal/rng"
)

// backoffSeq draws the first n backoff waits of a policy from a fresh
// seeded stream, one per retry attempt cycling 1..MaxRetries the way a
// run of consecutive faulted invokes would.
func backoffSeq(p RecoveryPolicy, seed uint64, n int) []time.Duration {
	r := rng.New(seed)
	seq := make([]time.Duration, n)
	for i := range seq {
		seq[i] = p.backoff(i%p.MaxRetries+1, r)
	}
	return seq
}

func TestBackoffJitterDeterministicUnderFixedSeed(t *testing.T) {
	// Same policy + same seed ⇒ bit-identical backoff schedule, in both
	// jitter modes. This is the regression gate for seeded jitter: a
	// determinism break here would make every fault experiment
	// unreproducible.
	for _, mode := range []JitterMode{JitterEqual, JitterFull} {
		p := DefaultRecoveryPolicy()
		p.Jitter = mode
		a := backoffSeq(p, 42, 64)
		b := backoffSeq(p, 42, 64)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v jitter: draw %d diverged under the same seed: %v vs %v", mode, i, a[i], b[i])
			}
		}
	}
}

func TestBackoffFullJitterDesynchronizesWorkers(t *testing.T) {
	// N workers retrying one shared fault take per-worker seeds (Seed+i,
	// exactly how serve.New offsets its fleet). Their schedules must not
	// align: synchronized backoff turns one fault into a retry storm that
	// re-collides on every attempt. Full jitter must also use the whole
	// [0, nominal] window, not just a band around nominal.
	p := DefaultRecoveryPolicy()
	p.Jitter = JitterFull
	const workers, draws = 8, 32
	seqs := make([][]time.Duration, workers)
	for w := range seqs {
		seqs[w] = backoffSeq(p, p.Seed+uint64(w), draws)
	}
	for a := 0; a < workers; a++ {
		for b := a + 1; b < workers; b++ {
			same := 0
			for i := 0; i < draws; i++ {
				if seqs[a][i] == seqs[b][i] {
					same++
				}
			}
			if same > draws/4 {
				t.Fatalf("workers %d and %d share %d/%d backoff draws — seeds not decorrelated", a, b, same, draws)
			}
		}
	}
	// Spread check on the first-attempt waits (nominal = BaseBackoff).
	lo, hi := false, false
	for w := 0; w < workers; w++ {
		for i := 0; i < draws; i += p.MaxRetries { // attempt-1 draws only
			d := seqs[w][i]
			if d < 0 || d > p.BaseBackoff {
				t.Fatalf("full jitter draw %v outside [0, %v]", d, p.BaseBackoff)
			}
			if d < p.BaseBackoff/4 {
				lo = true
			}
			if d > 3*p.BaseBackoff/4 {
				hi = true
			}
		}
	}
	if !lo || !hi {
		t.Fatalf("full jitter not spread across the window (low quarter hit: %v, high quarter hit: %v)", lo, hi)
	}
}

func TestBackoffEqualJitterStaysInBand(t *testing.T) {
	// Legacy mode regression: equal jitter stays within ±JitterFrac of the
	// nominal exponential value, so existing seeded experiments keep their
	// schedules.
	p := DefaultRecoveryPolicy() // JitterEqual, JitterFrac 0.2
	r := rng.New(7)
	for attempt := 1; attempt <= p.MaxRetries; attempt++ {
		nominal := p.BaseBackoff << (attempt - 1)
		if nominal > p.MaxBackoff {
			nominal = p.MaxBackoff
		}
		for i := 0; i < 32; i++ {
			d := p.backoff(attempt, r)
			lo := time.Duration(float64(nominal) * (1 - p.JitterFrac))
			hi := time.Duration(float64(nominal) * (1 + p.JitterFrac))
			if d < lo || d > hi {
				t.Fatalf("attempt %d: equal jitter %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
}

func TestRecoveryPolicyRejectsUnknownJitterMode(t *testing.T) {
	p := DefaultRecoveryPolicy()
	p.Jitter = JitterMode(7)
	if err := p.Validate(); err == nil {
		t.Fatal("unknown JitterMode accepted")
	}
}

func TestBreakerProbeOutcomeMetrics(t *testing.T) {
	// The half-open probe outcomes must be visible in the registry: a
	// failed probe shows up as a re-trip, a successful one as a probe
	// success, on top of the state gauge. Drive trip → probe-retrip →
	// heal → probe-success and read the counters back.
	r := breakerRunner(t, edgetpu.FaultPlan{Seed: 1, LinkErrorRate: 1}, probePolicy())
	reg := metrics.NewRegistry()
	r.Instrument(reg, `worker="0"`)
	invoke := func() {
		t.Helper()
		if _, err := r.Invoke(nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ { // trip
		invoke()
	}
	for i := 0; i < 2; i++ { // cooldown
		invoke()
	}
	invoke() // probe: link still dead → re-trip
	for i := 0; i < 2; i++ { // second cooldown
		invoke()
	}
	// The link heals; the next probe closes the breaker.
	if err := r.Device().InjectFaults(edgetpu.FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	invoke() // probe: success → close

	snap := reg.Snapshot()
	success := snap.Counters[`hdc_runner_breaker_probe_outcomes_total{outcome="success",worker="0"}`]
	retrip := snap.Counters[`hdc_runner_breaker_probe_outcomes_total{outcome="retrip",worker="0"}`]
	if success != 1 || retrip != 1 {
		t.Fatalf("probe outcome counters success=%d retrip=%d, want 1/1 (snapshot counters: %v)",
			success, retrip, snap.Counters)
	}
	rep := r.Report()
	if int(success) != rep.BreakerCloses || int(retrip) != rep.BreakerTrips-1 {
		t.Fatalf("registry (success=%d retrip=%d) disagrees with report %+v", success, retrip, rep)
	}
	if got := snap.Gauges[`hdc_runner_breaker_state{worker="0"}`]; got != int64(BreakerClosed) {
		t.Fatalf("breaker state gauge %d after successful probe, want closed", got)
	}
}
