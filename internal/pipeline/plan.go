package pipeline

import (
	"fmt"
	"strings"
	"time"

	"hdcedge/internal/bagging"
	"hdcedge/internal/metrics"
)

// DeploymentPlan is the full co-design picture for one workload: what
// each framework setting costs in time and energy, where the phases go,
// and whether the accelerator is worth attaching at all. It is the
// "should I deploy this on an Edge TPU?" answer the paper's analysis
// enables.
type DeploymentPlan struct {
	Workload Workload

	CPUTrain     TrainingBreakdown
	TPUTrain     TrainingBreakdown
	BaggingTrain TrainingBreakdown

	CPUInfer time.Duration
	TPUInfer time.Duration

	CPUTrainEnergy     EnergyBreakdown
	BaggingTrainEnergy EnergyBreakdown
	CPUInferEnergy     EnergyBreakdown
	TPUInferEnergy     EnergyBreakdown

	// Recommended reports whether the accelerator path wins end to end.
	Recommended bool
	// Reasons collects the human-readable judgement.
	Reasons []string
}

// Plan evaluates a workload across the CPU baseline and the accelerator
// platform with the paper's bagging configuration.
func Plan(host, accel Platform, w Workload, bcfg bagging.Config) (*DeploymentPlan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p := &DeploymentPlan{Workload: w}
	var err error
	if p.CPUTrain, err = CPUTraining(host.Host, w); err != nil {
		return nil, err
	}
	if p.TPUTrain, err = TPUTraining(accel, w); err != nil {
		return nil, err
	}
	if p.BaggingTrain, err = BaggingTraining(accel, w, bcfg, nil); err != nil {
		return nil, err
	}
	if p.CPUInfer, err = CPUInference(host.Host, w); err != nil {
		return nil, err
	}
	if p.TPUInfer, err = TPUInference(accel, w); err != nil {
		return nil, err
	}
	if p.CPUTrainEnergy, err = CPUTrainingEnergy(host, w); err != nil {
		return nil, err
	}
	if p.BaggingTrainEnergy, err = BaggingTrainingEnergy(accel, w, bcfg); err != nil {
		return nil, err
	}
	if p.CPUInferEnergy, err = CPUInferenceEnergy(host, w); err != nil {
		return nil, err
	}
	if p.TPUInferEnergy, err = TPUInferenceEnergy(accel, w); err != nil {
		return nil, err
	}

	trainGain := metrics.Speedup(p.CPUTrain.Total(), p.BaggingTrain.Total())
	inferGain := metrics.Speedup(p.CPUInfer, p.TPUInfer)
	switch {
	case w.Features < 50 && inferGain < 1.1:
		p.Reasons = append(p.Reasons, fmt.Sprintf(
			"%d input features cannot amortize per-invoke host/link costs (inference gain %.2fx)",
			w.Features, inferGain))
	case inferGain < 1.1 && trainGain < 1.3:
		p.Reasons = append(p.Reasons, fmt.Sprintf(
			"accelerator gains are marginal (train %.2fx, inference %.2fx)", trainGain, inferGain))
	default:
		p.Recommended = true
		p.Reasons = append(p.Reasons, fmt.Sprintf(
			"training %.2fx and inference %.2fx faster than the host baseline", trainGain, inferGain))
	}
	if eGain := p.CPUInferEnergy.Total() / p.TPUInferEnergy.Total(); eGain > 1.5 {
		p.Reasons = append(p.Reasons, fmt.Sprintf("inference energy drops %.1fx", eGain))
	}
	if w.Features < 50 {
		p.Reasons = append(p.Reasons,
			"consider batching more aggressively or keeping this workload on the CPU (see Fig 10)")
	}
	return p, nil
}

// Render prints the plan.
func (p *DeploymentPlan) Render() string {
	var sb strings.Builder
	w := p.Workload
	fmt.Fprintf(&sb, "Deployment plan for %s: %d train / %d test samples, %d features, %d classes, d=%d\n",
		w.Name, w.TrainSamples, w.TestSamples, w.Features, w.Classes, w.Dim)

	t := &metrics.Table{
		Title:   "Training (modeled at full scale)",
		Headers: []string{"Setting", "Encode", "Update", "ModelGen", "Total", "Speedup"},
	}
	base := p.CPUTrain.Total()
	add := func(name string, b TrainingBreakdown) {
		t.AddRow(name, metrics.FmtDur(b.Encode), metrics.FmtDur(b.Update),
			metrics.FmtDur(b.ModelGen), metrics.FmtDur(b.Total()),
			metrics.FmtX(metrics.Speedup(base, b.Total())))
	}
	add("CPU", p.CPUTrain)
	add("TPU", p.TPUTrain)
	add("TPU+bagging", p.BaggingTrain)
	sb.WriteString(t.String())

	t2 := &metrics.Table{
		Title:   "Inference (full test split)",
		Headers: []string{"Setting", "Total", "Per-sample", "Speedup", "Energy (J)"},
	}
	per := func(d time.Duration) time.Duration {
		if w.TestSamples == 0 {
			return 0
		}
		return d / time.Duration(w.TestSamples)
	}
	t2.AddRow("CPU", metrics.FmtDur(p.CPUInfer), metrics.FmtDur(per(p.CPUInfer)),
		"1.00x", fmt.Sprintf("%.2f", p.CPUInferEnergy.Total()))
	t2.AddRow("TPU", metrics.FmtDur(p.TPUInfer), metrics.FmtDur(per(p.TPUInfer)),
		metrics.FmtX(metrics.Speedup(p.CPUInfer, p.TPUInfer)),
		fmt.Sprintf("%.2f", p.TPUInferEnergy.Total()))
	sb.WriteString(t2.String())

	if p.Recommended {
		sb.WriteString("verdict: ACCELERATOR RECOMMENDED\n")
	} else {
		sb.WriteString("verdict: KEEP ON CPU\n")
	}
	for _, r := range p.Reasons {
		fmt.Fprintf(&sb, "  - %s\n", r)
	}
	return sb.String()
}
