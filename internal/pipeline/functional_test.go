package pipeline

import (
	"testing"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
	"hdcedge/internal/metrics"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

func functionalData(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(32, 1600, 4, 404), 0)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Split(0.25, rng.New(405))
}

func TestTrainOnDeviceLearns(t *testing.T) {
	train, test := functionalData(t)
	cfg := hdc.TrainConfig{Dim: 1024, Epochs: 8, LearningRate: 1, Nonlinear: true, Seed: 3}
	res, err := TrainOnDevice(EdgeTPU(), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Model.Accuracy(test); acc < 0.7 {
		t.Fatalf("device-trained accuracy %.3f (chance 0.25)", acc)
	}
	if res.DeviceTime.Total() <= 0 || res.DeviceTime.MACs == 0 {
		t.Fatalf("device timing not accumulated: %+v", res.DeviceTime)
	}
	if len(res.Stats.Epochs) != 8 {
		t.Fatalf("%d epochs recorded", len(res.Stats.Epochs))
	}
}

func TestDeviceTrainingTracksCPUTraining(t *testing.T) {
	// Training on int8-quantized encodings must land close to float
	// training (Fig 7's premise).
	train, test := functionalData(t)
	cfg := hdc.TrainConfig{Dim: 1024, Epochs: 8, LearningRate: 1, Nonlinear: true, Seed: 3}
	cpuModel, _, err := hdc.Train(train, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	devRes, err := TrainOnDevice(EdgeTPU(), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cpuAcc := cpuModel.Accuracy(test)
	devAcc := devRes.Model.Accuracy(test)
	if devAcc < cpuAcc-0.05 {
		t.Fatalf("device training accuracy %.3f too far below CPU %.3f", devAcc, cpuAcc)
	}
}

func TestInferOnDeviceMatchesHostModel(t *testing.T) {
	train, test := functionalData(t)
	cfg := hdc.TrainConfig{Dim: 1024, Epochs: 6, LearningRate: 1, Nonlinear: true, Seed: 9}
	model, _, err := hdc.Train(train, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	preds, timing, err := InferOnDevice(EdgeTPU(), model, test, train, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != test.Samples() {
		t.Fatalf("%d predictions for %d samples", len(preds), test.Samples())
	}
	devAcc := metrics.Accuracy(preds, test.Y)
	hostAcc := model.Accuracy(test)
	if devAcc < hostAcc-0.05 {
		t.Fatalf("device accuracy %.3f too far below host %.3f", devAcc, hostAcc)
	}
	if timing.Total() <= 0 {
		t.Fatal("no inference timing")
	}
}

func TestEncodeOnDevicePartialBatch(t *testing.T) {
	// Sample counts not divisible by the batch must still encode every row.
	train, _ := functionalData(t)
	sub := train.Subset([]int{0, 1, 2, 3, 4, 5, 6}) // 7 rows, batch 4
	enc := hdc.NewEncoder(sub.Features(), 256, true, rng.New(12))
	out, _, err := EncodeOnDevice(EdgeTPU(), enc, sub, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape[0] != 7 || out.Shape[1] != 256 {
		t.Fatalf("encoded shape %v", out.Shape)
	}
	// Rows must be individually correct. Per-element int8 error can reach
	// ~0.15 where the wide pre-activation range meets tanh's linear
	// region, so compare at the hypervector level: the device encoding
	// must be nearly parallel to the host encoding.
	ref := make([]float32, 256)
	for r := 0; r < 7; r++ {
		enc.Encode(ref, sub.X.Row(r))
		if cos := tensor.CosineSimilarity(out.Row(r), ref); cos < 0.97 {
			t.Fatalf("row %d: device/host encoding cosine %.4f", r, cos)
		}
	}
}

func TestTrainOnDeviceRequiresAccel(t *testing.T) {
	train, _ := functionalData(t)
	if _, err := TrainOnDevice(CPUBaseline(), train, hdc.TrainConfig{Dim: 64, Epochs: 1}); err == nil {
		t.Fatal("accel-less platform accepted")
	}
}

func TestTrainOnDeviceRejectsEmpty(t *testing.T) {
	if _, err := TrainOnDevice(EdgeTPU(), nil, hdc.TrainConfig{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestTrainOnDeviceStreaming(t *testing.T) {
	train, test := functionalData(t)
	cfg := hdc.TrainConfig{Dim: 1024, LearningRate: 1, Nonlinear: true, Seed: 31}
	res, err := TrainOnDeviceStreaming(EdgeTPU(), train, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Epochs) != 4 { // 1 streaming pass + 3 refinement
		t.Fatalf("%d epochs recorded", len(res.Stats.Epochs))
	}
	if acc := res.Model.Accuracy(test); acc < 0.7 {
		t.Fatalf("streaming-trained accuracy %.3f", acc)
	}
}

func TestTrainOnDeviceStreamingRequiresAccel(t *testing.T) {
	train, _ := functionalData(t)
	if _, err := TrainOnDeviceStreaming(CPUBaseline(), train, hdc.TrainConfig{Dim: 64}, 0); err == nil {
		t.Fatal("accel-less platform accepted")
	}
}

func TestInferOnDeviceProfiled(t *testing.T) {
	train, test := functionalData(t)
	model, _, err := hdc.Train(train, nil, hdc.TrainConfig{Dim: 512, Epochs: 4, LearningRate: 1, Nonlinear: true, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	preds, timing, prof, err := InferOnDeviceProfiled(EdgeTPU(), model, test, train, 16)
	if err != nil {
		t.Fatal(err)
	}
	plain, plainTiming, err := InferOnDevice(EdgeTPU(), model, test, train, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		if preds[i] != plain[i] {
			t.Fatal("profiled predictions differ")
		}
	}
	if timing != plainTiming {
		t.Fatalf("profiled timing differs: %+v vs %+v", timing, plainTiming)
	}
	if prof == nil || prof.Invocations == 0 {
		t.Fatal("no profile accumulated")
	}
}
