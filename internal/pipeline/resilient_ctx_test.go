package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/rng"
)

// breakerRunner builds a runner over a tiny encoder model with the given
// plan and policy, for driving the breaker state machine directly.
func breakerRunner(t *testing.T, plan edgetpu.FaultPlan, policy RecoveryPolicy) *ResilientRunner {
	t.Helper()
	ds, err := dataset.Generate(dataset.SyntheticSpec(16, 160, 3, 77), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := EdgeTPU()
	enc := hdc.NewEncoder(ds.Features(), 64, true, rng.New(5))
	cm, err := CompileEncoder(p, enc, ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewResilientRunner(p, cm, plan, policy)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// probePolicy trips after two failed invokes and probes after a
// three-invoke cooldown, with a single retry per invoke.
func probePolicy() RecoveryPolicy {
	p := DefaultRecoveryPolicy()
	p.MaxRetries = 1
	p.BreakerThreshold = 2
	p.BreakerCooldown = 3
	return p
}

func TestBreakerTripProbeClose(t *testing.T) {
	// Dead link: trips the breaker, cooldown passes on the host; the link
	// then heals, so the half-open probe succeeds and closes the breaker.
	r := breakerRunner(t, edgetpu.FaultPlan{Seed: 1, LinkErrorRate: 1}, probePolicy())
	invoke := func() {
		t.Helper()
		if _, err := r.Invoke(nil); err != nil {
			t.Fatal(err)
		}
	}
	// Two invokes exhaust retries and trip the breaker.
	invoke()
	if r.BreakerState() != BreakerClosed {
		t.Fatalf("breaker %v after one failed invoke (threshold 2)", r.BreakerState())
	}
	invoke()
	if r.BreakerState() != BreakerOpen {
		t.Fatalf("breaker %v after threshold reached", r.BreakerState())
	}
	// The link heals while the breaker is open.
	if err := r.Device().InjectFaults(edgetpu.FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	// Cooldown: two more host-served invokes leave the breaker open...
	attemptsBefore := r.Report().DeviceInvokes
	invoke()
	invoke()
	if r.BreakerState() != BreakerOpen {
		t.Fatalf("breaker %v during cooldown", r.BreakerState())
	}
	if got := r.Report().DeviceInvokes; got != attemptsBefore {
		t.Fatalf("open breaker burned %d device attempts", got-attemptsBefore)
	}
	// ...and the third half-opens and probes: success closes it.
	invoke()
	rep := r.Report()
	if r.BreakerState() != BreakerClosed {
		t.Fatalf("breaker %v after successful probe", r.BreakerState())
	}
	if rep.BreakerProbes != 1 || rep.BreakerCloses != 1 || rep.BreakerTrips != 1 {
		t.Fatalf("probe accounting off: %+v", rep)
	}
	if rep.DeviceInvokes != attemptsBefore+1 {
		t.Fatalf("probe cost %d device attempts, want 1", rep.DeviceInvokes-attemptsBefore)
	}
	// Closed again: the next invoke runs on the device, not the host.
	fallbackBefore := rep.FallbackInvokes
	invoke()
	if got := r.Report().FallbackInvokes; got != fallbackBefore {
		t.Fatalf("closed breaker still served from host (%d new fallbacks)", got-fallbackBefore)
	}
}

func TestBreakerTripProbeRetrip(t *testing.T) {
	// The link stays dead: the probe's single trial attempt fails and
	// re-opens the breaker for another full cooldown.
	r := breakerRunner(t, edgetpu.FaultPlan{Seed: 1, LinkErrorRate: 1}, probePolicy())
	invoke := func() {
		t.Helper()
		if _, err := r.Invoke(nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ { // trip
		invoke()
	}
	for i := 0; i < 2; i++ { // cooldown
		invoke()
	}
	attemptsBefore := r.Report().DeviceInvokes
	invoke() // probe: fails, re-opens
	rep := r.Report()
	if r.BreakerState() != BreakerOpen {
		t.Fatalf("breaker %v after failed probe", r.BreakerState())
	}
	if rep.BreakerProbes != 1 || rep.BreakerCloses != 0 || rep.BreakerTrips != 2 {
		t.Fatalf("re-trip accounting off: %+v", rep)
	}
	if rep.DeviceInvokes != attemptsBefore+1 {
		t.Fatalf("failed probe cost %d attempts, want exactly 1", rep.DeviceInvokes-attemptsBefore)
	}
	if rep.FallbackInvokes != rep.Invokes {
		t.Fatalf("dead link: %d of %d invokes completed on host", rep.FallbackInvokes, rep.Invokes)
	}
	// The next cooldown runs host-only again, then another probe fires.
	for i := 0; i < 2; i++ {
		invoke()
	}
	invoke()
	if got := r.Report().BreakerProbes; got != 2 {
		t.Fatalf("second cooldown did not yield a second probe: %d probes", got)
	}
}

func TestBreakerCooldownZeroStaysOpen(t *testing.T) {
	// BreakerCooldown = 0 preserves the legacy permanently-open behavior.
	policy := probePolicy()
	policy.BreakerCooldown = 0
	r := breakerRunner(t, edgetpu.FaultPlan{Seed: 1, LinkErrorRate: 1}, policy)
	for i := 0; i < 12; i++ {
		if _, err := r.Invoke(nil); err != nil {
			t.Fatal(err)
		}
	}
	rep := r.Report()
	if r.BreakerState() != BreakerOpen || rep.BreakerProbes != 0 {
		t.Fatalf("zero cooldown probed anyway: state %v, %+v", r.BreakerState(), rep)
	}
}

func TestBreakerRecoversAfterReset(t *testing.T) {
	// Reset-class faults drop the model; a probe after the device heals
	// must re-pay LoadModel and still close the breaker.
	r := breakerRunner(t, edgetpu.FaultPlan{Seed: 9, ResetRate: 1}, probePolicy())
	invoke := func() {
		t.Helper()
		if _, err := r.Invoke(nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ { // trip + part of cooldown
		invoke()
	}
	if err := r.Device().InjectFaults(edgetpu.FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	invoke() // probe
	rep := r.Report()
	if r.BreakerState() != BreakerClosed {
		t.Fatalf("breaker %v after probe on healed device", r.BreakerState())
	}
	if rep.Reloads == 0 {
		t.Fatalf("probe after resets did not reload the model: %+v", rep)
	}
	if rep.BreakerCloses != 1 {
		t.Fatalf("probe accounting off: %+v", rep)
	}
}

func TestInvokeCtxHealthyBitIdentical(t *testing.T) {
	// On a healthy device InvokeCtx must time exactly like Invoke.
	a := breakerRunner(t, edgetpu.FaultPlan{}, DefaultRecoveryPolicy())
	b := breakerRunner(t, edgetpu.FaultPlan{}, DefaultRecoveryPolicy())
	for i := 0; i < 4; i++ {
		ta, err := a.Invoke(nil)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := b.InvokeCtx(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if ta != tb {
			t.Fatalf("invoke %d: timing diverged: %+v vs %+v", i, ta, tb)
		}
	}
}

func TestInvokeCtxCancelledBeforeStart(t *testing.T) {
	r := breakerRunner(t, edgetpu.FaultPlan{}, DefaultRecoveryPolicy())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.InvokeCtx(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx returned %v", err)
	}
}

func TestInvokeCtxDeadlineCancelsBackoffPromptly(t *testing.T) {
	// The policy's backoff is far longer than the request deadline: the
	// invoke must return context.DeadlineExceeded about when the deadline
	// fires, not after sleeping the backoff out.
	policy := DefaultRecoveryPolicy()
	policy.BaseBackoff = 2 * time.Second
	policy.MaxBackoff = 4 * time.Second
	r := breakerRunner(t, edgetpu.FaultPlan{Seed: 1, LinkErrorRate: 1}, policy)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.InvokeCtx(ctx, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline mid-backoff returned %v", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("cancellation took %v; backoff was waited out", elapsed)
	}
	// The runner survives a cancelled invoke: clearing the faults lets
	// the next request run normally.
	if err := r.Device().InjectFaults(edgetpu.FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.InvokeCtx(context.Background(), nil); err != nil {
		t.Fatalf("invoke after cancelled predecessor: %v", err)
	}
}

func TestInvokeCtxCancelledMidBackoffReturnsCanceled(t *testing.T) {
	policy := DefaultRecoveryPolicy()
	policy.BaseBackoff = 2 * time.Second
	policy.MaxBackoff = 4 * time.Second
	r := breakerRunner(t, edgetpu.FaultPlan{Seed: 1, LinkErrorRate: 1}, policy)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := r.InvokeCtx(ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel mid-backoff returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("cancellation took %v; backoff was waited out", elapsed)
	}
}
