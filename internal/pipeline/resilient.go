package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"hdcedge/internal/backend"
	"hdcedge/internal/backend/hostcpu"
	"hdcedge/internal/backend/tpu"
	"hdcedge/internal/cpuarch"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/metrics"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// This file is the resilient runtime on top of the backend seam:
// typed-error classification, bounded retry with seeded exponential backoff,
// automatic model reload after device resets, a three-state circuit breaker
// (closed → open → half-open probe), and graceful degradation to a
// secondary backend (classically the host CPU). The design goal is that a
// training or inference run never hard-fails on transient accelerator
// faults — it completes with degraded throughput instead.
//
// Two invoke entry points share one loop: Invoke is the batch path, where
// backoff is accounted in simulated time only; InvokeCtx is the serving
// path, where backoff is also waited out in wall-clock time and the
// context can cancel the wait (and the whole invoke) mid-flight.

// RecoveryPolicy controls how a ResilientRunner reacts to transient device
// faults.
type RecoveryPolicy struct {
	// MaxRetries bounds the device re-attempts after the first failed try
	// of one invoke. When they are exhausted the invoke completes on the
	// host CPU instead.
	MaxRetries int

	// BaseBackoff is the wait before the first retry; each further retry
	// doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// JitterFrac spreads each backoff uniformly over ±JitterFrac of its
	// nominal value, drawn from the runner's seeded stream. Must lie in
	// [0, 1]. Ignored under JitterFull.
	JitterFrac float64

	// Jitter selects the jitter distribution. JitterEqual (the zero value)
	// keeps the legacy ±JitterFrac spread; JitterFull draws each wait
	// uniformly from [0, nominal], which decorrelates N workers retrying a
	// shared fault — with equal jitter their waits still cluster inside a
	// ±20% band and re-collide as a retry storm, while full jitter spreads
	// them across the whole backoff window.
	Jitter JitterMode

	// BreakerThreshold is how many consecutive invokes must exhaust their
	// retries before the circuit breaker opens and routes further invokes
	// to the host CPU.
	BreakerThreshold int

	// BreakerCooldown is how many invokes an open breaker serves on the
	// host before it half-opens and probes the device with a single trial
	// attempt: success closes the breaker, failure re-opens it for another
	// cooldown. Zero keeps an opened breaker open permanently (the
	// pre-probe behavior).
	BreakerCooldown int

	// Seed drives the backoff jitter stream.
	Seed uint64
}

// JitterMode selects the shape of the backoff jitter distribution.
type JitterMode int

const (
	// JitterEqual spreads each wait over ±JitterFrac of nominal (legacy;
	// bit-identical to the pre-mode behavior).
	JitterEqual JitterMode = iota
	// JitterFull draws each wait uniformly from [0, nominal] — the
	// anti-retry-storm distribution.
	JitterFull
)

// String renders the mode.
func (m JitterMode) String() string {
	switch m {
	case JitterEqual:
		return "equal"
	case JitterFull:
		return "full"
	}
	return fmt.Sprintf("jitter(%d)", int(m))
}

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed routes invokes to the device (healthy).
	BreakerClosed BreakerState = iota
	// BreakerOpen routes invokes to the host while the cooldown runs.
	BreakerOpen
	// BreakerHalfOpen marks the next invoke as a single-attempt device
	// probe that decides between closing and re-opening.
	BreakerHalfOpen
)

// String renders the state for reports and health endpoints.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breaker(%d)", int(s))
}

// DefaultRecoveryPolicy returns the policy used by the fault-rate sweeps:
// three retries with 200µs..10ms backoff, a breaker after four consecutive
// failed invokes, and a half-open probe every eight host-served invokes.
func DefaultRecoveryPolicy() RecoveryPolicy {
	return RecoveryPolicy{
		MaxRetries:       3,
		BaseBackoff:      200 * time.Microsecond,
		MaxBackoff:       10 * time.Millisecond,
		JitterFrac:       0.2,
		BreakerThreshold: 4,
		BreakerCooldown:  8,
		Seed:             1,
	}
}

// Validate checks the policy for sanity.
func (p RecoveryPolicy) Validate() error {
	if p.MaxRetries < 0 {
		return fmt.Errorf("pipeline: negative MaxRetries %d", p.MaxRetries)
	}
	if p.BaseBackoff <= 0 {
		return fmt.Errorf("pipeline: BaseBackoff %v must be positive", p.BaseBackoff)
	}
	if p.MaxBackoff < p.BaseBackoff {
		return fmt.Errorf("pipeline: MaxBackoff %v below BaseBackoff %v", p.MaxBackoff, p.BaseBackoff)
	}
	if math.IsNaN(p.JitterFrac) || p.JitterFrac < 0 || p.JitterFrac > 1 {
		return fmt.Errorf("pipeline: JitterFrac %v outside [0, 1]", p.JitterFrac)
	}
	if p.Jitter != JitterEqual && p.Jitter != JitterFull {
		return fmt.Errorf("pipeline: unknown JitterMode %d", int(p.Jitter))
	}
	if p.BreakerThreshold < 1 {
		return fmt.Errorf("pipeline: BreakerThreshold %d must be at least 1", p.BreakerThreshold)
	}
	if p.BreakerCooldown < 0 {
		return fmt.Errorf("pipeline: negative BreakerCooldown %d", p.BreakerCooldown)
	}
	return nil
}

// backoff returns the wait before retry `attempt` (1-based): exponential
// growth from BaseBackoff capped at MaxBackoff, with seeded jitter drawn
// from r in the configured JitterMode. The result is never negative and
// never exceeds MaxBackoff·(1+JitterFrac), for any seed, attempt, or
// duration combination (fuzz-checked).
func (p RecoveryPolicy) backoff(attempt int, r *rng.RNG) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.BaseBackoff) * math.Pow(2, float64(attempt-1))
	if ceil := float64(p.MaxBackoff); d > ceil || math.IsInf(d, 1) {
		d = ceil
	}
	switch {
	case p.Jitter == JitterFull && r != nil:
		d *= r.Float64()
	case p.JitterFrac > 0 && r != nil:
		d *= 1 + p.JitterFrac*(2*r.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	// float64(MaxInt64) rounds up to 2^63, which overflows the conversion;
	// anything at or above it must saturate explicitly.
	if d >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(d)
}

// ReliabilityReport records what a ResilientRunner did to keep a run alive.
type ReliabilityReport struct {
	Invokes         int // invokes requested by the caller
	DeviceInvokes   int // device attempts, including failed ones
	Retries         int // device re-attempts after transient errors
	LinkFaults      int // transient transfer failures observed
	Resets          int // reset-class failures observed (model dropped)
	Reloads         int // LoadModel repayments performed
	FallbackInvokes int // invokes completed on the host CPU
	BreakerTripped  bool
	BreakerTrips    int // closed→open transitions (including probe re-trips)
	BreakerProbes   int // half-open trial invokes attempted
	BreakerCloses   int // successful probes that closed the breaker again

	BackoffTime  time.Duration // simulated time spent waiting between retries
	ReloadTime   time.Duration // simulated time re-paying model setup
	WastedTime   time.Duration // simulated device time consumed by failed attempts
	FallbackTime time.Duration // simulated host time spent in degraded mode
}

// Overhead sums the simulated time reliability cost on top of the useful
// device work: everything the run would not have paid had the accelerator
// stayed healthy.
func (r ReliabilityReport) Overhead() time.Duration {
	return r.BackoffTime + r.ReloadTime + r.WastedTime
}

// String renders a one-paragraph summary for CLI consumption.
func (r ReliabilityReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "reliability: %d invokes (%d on device, %d on host fallback)",
		r.Invokes, r.Invokes-r.FallbackInvokes, r.FallbackInvokes)
	fmt.Fprintf(&sb, ", %d retries, %d link faults, %d resets, %d reloads",
		r.Retries, r.LinkFaults, r.Resets, r.Reloads)
	if r.BreakerTripped {
		fmt.Fprintf(&sb, ", circuit breaker TRIPPED (%d trips, %d probes, %d closes)",
			r.BreakerTrips, r.BreakerProbes, r.BreakerCloses)
	}
	fmt.Fprintf(&sb, "; overhead %v (backoff %v, reload %v, wasted %v), fallback compute %v",
		r.Overhead().Round(time.Microsecond), r.BackoffTime.Round(time.Microsecond),
		r.ReloadTime.Round(time.Microsecond), r.WastedTime.Round(time.Microsecond),
		r.FallbackTime.Round(time.Microsecond))
	return sb.String()
}

// ResilientRunner wraps a primary execution backend with retry, reload,
// circuit breaking and graceful degradation to a secondary backend. It is
// not safe for concurrent use; drive it from one goroutine like the
// backends it wraps.
type ResilientRunner struct {
	primary   backend.Backend
	secondary backend.Backend

	// makeSecondary lazily constructs the secondary the first time the
	// runner degrades, so a healthy run never pays for an engine it does
	// not use. nil (with a nil secondary) means there is no degraded mode.
	makeSecondary func() (backend.Backend, error)

	policy RecoveryPolicy
	jitter *rng.RNG

	report          ReliabilityReport
	consecutive     int
	breaker         BreakerState
	cooldownLeft    int
	pendingReload   bool
	lastWasFallback bool

	// quarantined pins the breaker open permanently: the integrity layer
	// found damage the repair ladder could not fix, so no cooldown or
	// half-open probe may route work back to the primary.
	quarantined bool

	// live streams the reliability events into a metrics registry as they
	// happen (see Instrument). nil leaves the runner uninstrumented.
	live *runnerMetrics

	// SetupTime is the primary's initial load cost (not counted as
	// overhead).
	SetupTime time.Duration
}

// runnerMetrics holds the live-registry handles one instrumented runner
// streams into. Every field is an atomic metric, so recording from the
// runner's single goroutine never blocks a concurrent Snapshot.
type runnerMetrics struct {
	invokes, deviceInvokes, retries *metrics.Counter
	linkFaults, resets, reloads     *metrics.Counter
	fallbackInvokes                 *metrics.Counter
	breakerTrips, probes, closes    *metrics.Counter
	probeSuccesses, probeReTrips    *metrics.Counter
	breakerTransitions              *metrics.Counter
	breakerState                    *metrics.Gauge
}

// Instrument streams the runner's reliability events — invokes, retries,
// faults, reloads, host fallbacks, and every breaker state transition —
// into reg as they happen. labels is an inline Prometheus label set
// (e.g. `worker="0",backend="tpu"`) appended to every metric name so a
// fleet of runners shares one registry without colliding. Call before the
// first invoke; the runner itself stays single-goroutine.
func (r *ResilientRunner) Instrument(reg *metrics.Registry, labels string) {
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	r.live = &runnerMetrics{
		invokes:            reg.Counter("hdc_runner_invokes_total" + suffix),
		deviceInvokes:      reg.Counter("hdc_runner_device_invokes_total" + suffix),
		retries:            reg.Counter("hdc_runner_retries_total" + suffix),
		linkFaults:         reg.Counter("hdc_runner_link_faults_total" + suffix),
		resets:             reg.Counter("hdc_runner_resets_total" + suffix),
		reloads:            reg.Counter("hdc_runner_reloads_total" + suffix),
		fallbackInvokes:    reg.Counter("hdc_runner_fallback_invokes_total" + suffix),
		breakerTrips:       reg.Counter("hdc_runner_breaker_trips_total" + suffix),
		probes:             reg.Counter("hdc_runner_breaker_probes_total" + suffix),
		closes:             reg.Counter("hdc_runner_breaker_closes_total" + suffix),
		probeSuccesses:     reg.Counter(`hdc_runner_breaker_probe_outcomes_total{outcome="success"` + probeLabelTail(labels)),
		probeReTrips:       reg.Counter(`hdc_runner_breaker_probe_outcomes_total{outcome="retrip"` + probeLabelTail(labels)),
		breakerTransitions: reg.Counter("hdc_runner_breaker_transitions_total" + suffix),
		breakerState:       reg.Gauge("hdc_runner_breaker_state" + suffix),
	}
	r.live.breakerState.Set(int64(r.breaker))
}

// probeLabelTail closes the label set of the probe-outcome counters: the
// outcome label is always present, the caller's labels ride behind it.
func probeLabelTail(labels string) string {
	if labels == "" {
		return "}"
	}
	return "," + labels + "}"
}

// The on* recorders are nil-safe so an uninstrumented runner pays a single
// pointer test per event.

func (m *runnerMetrics) onInvoke() {
	if m != nil {
		m.invokes.Inc()
	}
}

func (m *runnerMetrics) onDeviceInvoke() {
	if m != nil {
		m.deviceInvokes.Inc()
	}
}

func (m *runnerMetrics) onRetry() {
	if m != nil {
		m.retries.Inc()
	}
}

func (m *runnerMetrics) onFault(reset bool) {
	if m == nil {
		return
	}
	if reset {
		m.resets.Inc()
	} else {
		m.linkFaults.Inc()
	}
}

func (m *runnerMetrics) onReload() {
	if m != nil {
		m.reloads.Inc()
	}
}

func (m *runnerMetrics) onFallback() {
	if m != nil {
		m.fallbackInvokes.Inc()
	}
}

// onProbeOutcome publishes how one half-open trial invoke ended: success
// (the breaker closes) or a re-trip (back to open for another cooldown).
// Without these the state gauge shows only where the breaker is now —
// probe churn (a device that passes one probe in five and keeps flapping)
// is invisible in /metrics.
func (m *runnerMetrics) onProbeOutcome(success bool) {
	if m == nil {
		return
	}
	if success {
		m.probeSuccesses.Inc()
	} else {
		m.probeReTrips.Inc()
	}
}

// onBreaker publishes a breaker state transition.
func (m *runnerMetrics) onBreaker(s BreakerState) {
	if m == nil {
		return
	}
	m.breakerState.Set(int64(s))
	m.breakerTransitions.Inc()
	switch s {
	case BreakerOpen:
		m.breakerTrips.Inc()
	case BreakerHalfOpen:
		m.probes.Inc()
	case BreakerClosed:
		m.closes.Inc()
	}
}

// NewResilientRunner creates a TPU backend for the platform's accelerator,
// loads cm, arms the fault plan, and wraps it with the recovery policy; the
// host CPU (priced by the platform's cpuarch spec) stands by as the
// secondary backend. A disabled plan plus a healthy device makes the runner
// a zero-overhead pass-through: its Invoke timing is bit-identical to
// driving the device directly.
func NewResilientRunner(p Platform, cm *edgetpu.CompiledModel, plan edgetpu.FaultPlan, policy RecoveryPolicy) (*ResilientRunner, error) {
	if !p.HasAccel() {
		return nil, fmt.Errorf("pipeline: platform %s has no accelerator", p.Name)
	}
	primary, err := tpu.New(*p.Accel, cm, plan)
	if err != nil {
		return nil, err
	}
	r, err := WrapBackends(primary, nil, policy)
	if err != nil {
		return nil, err
	}
	r.makeSecondary = func() (backend.Backend, error) {
		return hostcpu.New(p.Host, cm.Model)
	}
	r.SetupTime = primary.SetupTime
	return r, nil
}

// WrapBackends wraps an already-constructed primary backend with the
// recovery policy, degrading to secondary once device attempts are
// exhausted or the breaker opens. secondary may be nil, in which case an
// invoke that would degrade fails instead — appropriate for backends (like
// the host CPU itself) that never fault.
func WrapBackends(primary, secondary backend.Backend, policy RecoveryPolicy) (*ResilientRunner, error) {
	if primary == nil {
		return nil, fmt.Errorf("pipeline: nil primary backend")
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	return &ResilientRunner{
		primary:   primary,
		secondary: secondary,
		policy:    policy,
		jitter:    rng.New(policy.Seed),
	}, nil
}

// Backend exposes the primary backend.
func (r *ResilientRunner) Backend() backend.Backend { return r.primary }

// Device exposes the wrapped simulator device when the primary backend is
// device-backed (for tests and fault-stat readers), and nil otherwise.
func (r *ResilientRunner) Device() *edgetpu.Device {
	if d, ok := r.primary.(interface{ Device() *edgetpu.Device }); ok {
		return d.Device()
	}
	return nil
}

// Degraded reports whether the circuit breaker currently routes invokes
// away from the device (open or half-open).
func (r *ResilientRunner) Degraded() bool { return r.breaker != BreakerClosed }

// BreakerState returns the circuit breaker's current position.
func (r *ResilientRunner) BreakerState() BreakerState { return r.breaker }

// Report returns a copy of the reliability accounting so far.
func (r *ResilientRunner) Report() ReliabilityReport { return r.report }

// Output returns the i-th model output tensor of whichever backend ran the
// last successful invoke (primary, or secondary in degraded mode).
func (r *ResilientRunner) Output(i int) *tensor.Tensor {
	if r.secondary != nil && r.lastWasFallback {
		return r.secondary.Output(i)
	}
	return r.primary.Output(i)
}

// Invoke runs the model once. fill is called with the current input tensor
// to populate; it may be called more than once when recovery reloads the
// model or falls back to the host, so it must be idempotent. The returned
// timing covers the whole invoke including recovery overhead; on the
// healthy path it is exactly the device's own timing. Backoff waits are
// accounted in simulated time only — Invoke never sleeps.
func (r *ResilientRunner) Invoke(fill func(in *tensor.Tensor)) (edgetpu.Timing, error) {
	return r.invoke(nil, 0, fill)
}

// InvokeBatch is Invoke limited to the first rows sample rows of the
// compiled batch: the device executes and prices only the occupied rows
// (edgetpu.Device.InvokeBatch), and a host fallback runs and is priced at
// the same effective batch. rows <= 0 (or >= the model's batch capacity)
// is a full invoke. fill receives the full-capacity input tensor; it must
// populate the first rows rows.
func (r *ResilientRunner) InvokeBatch(rows int, fill func(in *tensor.Tensor)) (edgetpu.Timing, error) {
	return r.invoke(nil, rows, fill)
}

// InvokeCtx is Invoke under a context: the deadline or cancellation is
// honored before every device attempt and during backoff, which is waited
// out in real wall-clock time (a cancelled request returns ctx.Err()
// immediately instead of sleeping the backoff out). The simulated-time
// accounting is identical to Invoke's, so with a healthy device the
// returned timing is bit-identical to the direct path.
func (r *ResilientRunner) InvokeCtx(ctx context.Context, fill func(in *tensor.Tensor)) (edgetpu.Timing, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return r.invoke(ctx, 0, fill)
}

// InvokeBatchCtx is InvokeBatch under a context, with the same cancellation
// semantics as InvokeCtx. It is the serving micro-batcher's entry point.
func (r *ResilientRunner) InvokeBatchCtx(ctx context.Context, rows int, fill func(in *tensor.Tensor)) (edgetpu.Timing, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return r.invoke(ctx, rows, fill)
}

// invoke is the shared retry/reload/breaker loop. A nil ctx selects the
// batch behavior (no wall-clock waits, no cancellation points); rows
// limits device execution and pricing to the occupied sample rows.
func (r *ResilientRunner) invoke(ctx context.Context, rows int, fill func(in *tensor.Tensor)) (edgetpu.Timing, error) {
	r.report.Invokes++
	r.live.onInvoke()
	var waste edgetpu.Timing
	if err := ctxErr(ctx); err != nil {
		return waste, err
	}

	// Breaker gate: an open breaker serves from the host until the
	// cooldown elapses, then half-opens; a half-open breaker lets exactly
	// one trial attempt through below.
	probing := false
	if r.breaker != BreakerClosed {
		if r.quarantined {
			// A quarantined primary is never probed again: every invoke
			// serves from the secondary until the runner is rebuilt.
			return r.invokeSecondary(fill, waste, rows)
		}
		if r.breaker == BreakerOpen && r.policy.BreakerCooldown > 0 {
			r.cooldownLeft--
			if r.cooldownLeft <= 0 {
				r.breaker = BreakerHalfOpen
				r.live.onBreaker(BreakerHalfOpen)
			}
		}
		if r.breaker == BreakerOpen {
			return r.invokeSecondary(fill, waste, rows)
		}
		probing = true
		r.report.BreakerProbes++
	}

	attempts := 0
	for {
		if err := ctxErr(ctx); err != nil {
			return waste, err
		}
		if r.pendingReload {
			// A previous invoke abandoned the device mid-recovery (host
			// fallback after a reset-class error): re-pay the model load
			// before attempting the device again.
			if err := r.reload(&waste); err != nil {
				return waste, err
			}
		}
		if fill != nil {
			fill(r.primary.Input(0))
		}
		attempts++
		r.report.DeviceInvokes++
		r.live.onDeviceInvoke()
		t, err := r.deviceInvoke(ctx, rows)
		if err == nil {
			r.consecutive = 0
			r.lastWasFallback = false
			if probing {
				r.breaker = BreakerClosed
				r.report.BreakerCloses++
				r.live.onProbeOutcome(true)
				r.live.onBreaker(BreakerClosed)
			}
			t.Add(waste)
			return t, nil
		}
		waste.Add(t)
		r.report.WastedTime += t.Total()
		if !backend.IsRetryable(err) {
			if ctx != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				return waste, err
			}
			return waste, fmt.Errorf("pipeline: resilient invoke failed permanently: %w", err)
		}
		if backend.NeedsReload(err) {
			r.report.Resets++
			r.live.onFault(true)
			r.pendingReload = true
		} else {
			r.report.LinkFaults++
			r.live.onFault(false)
		}
		if probing {
			// The trial attempt failed: back to open for another cooldown.
			r.live.onProbeOutcome(false)
			r.trip()
			return r.invokeSecondary(fill, waste, rows)
		}
		if attempts > r.policy.MaxRetries {
			// This invoke is out of device attempts: complete it on the
			// secondary so the run survives, and let the breaker decide
			// whether the device is worth trying again.
			r.consecutive++
			if r.consecutive >= r.policy.BreakerThreshold {
				r.trip()
			}
			return r.invokeSecondary(fill, waste, rows)
		}
		r.report.Retries++
		r.live.onRetry()
		wait := r.policy.backoff(attempts, r.jitter)
		waste.Host += wait
		r.report.BackoffTime += wait
		if r.pendingReload {
			if err := r.reload(&waste); err != nil {
				return waste, err
			}
		}
		if err := sleepCtx(ctx, wait); err != nil {
			return waste, err
		}
	}
}

// ForceReload re-pays the primary's model load outside the fault-recovery
// path — the integrity repair ladder's full-reload rung. It restores every
// device-resident parameter from the pristine compiled model and returns
// the simulated setup cost, accounted as reload overhead exactly like a
// fault-driven reload. Call it from the goroutine that drives the runner.
func (r *ResilientRunner) ForceReload() (time.Duration, error) {
	setup, err := r.primary.Reset()
	if err != nil {
		return 0, fmt.Errorf("pipeline: forced reload failed: %w", err)
	}
	r.pendingReload = false
	r.report.Reloads++
	r.live.onReload()
	r.report.ReloadTime += setup
	return setup, nil
}

// Quarantine opens the breaker permanently: every subsequent invoke serves
// from the secondary backend and no cooldown or half-open probe ever routes
// work back to the primary. The integrity layer calls this when the repair
// ladder is exhausted — the device answers, but its answers can no longer
// be trusted. Quarantine is one-way for the life of the runner.
func (r *ResilientRunner) Quarantine() {
	if r.quarantined {
		return
	}
	r.quarantined = true
	if r.breaker != BreakerOpen {
		r.trip()
	}
}

// Quarantined reports whether Quarantine was called.
func (r *ResilientRunner) Quarantined() bool { return r.quarantined }

// reload re-pays the primary's model load after a reset-class fault,
// accounting the setup cost as recovery overhead.
func (r *ResilientRunner) reload(waste *edgetpu.Timing) error {
	setup, err := r.primary.Reset()
	if err != nil {
		return fmt.Errorf("pipeline: model reload failed: %w", err)
	}
	r.pendingReload = false
	r.report.Reloads++
	r.live.onReload()
	waste.Host += setup
	r.report.ReloadTime += setup
	return nil
}

// deviceInvoke dispatches one primary attempt, context-gated when a ctx is
// present and limited to rows occupied sample rows (0 = full batch).
func (r *ResilientRunner) deviceInvoke(ctx context.Context, rows int) (edgetpu.Timing, error) {
	if ctx != nil {
		return r.primary.InvokeBatchCtx(ctx, rows)
	}
	return r.primary.InvokeBatch(rows)
}

// trip opens the breaker and arms the cooldown.
func (r *ResilientRunner) trip() {
	r.breaker = BreakerOpen
	r.cooldownLeft = r.policy.BreakerCooldown
	r.report.BreakerTripped = true
	r.report.BreakerTrips++
	r.live.onBreaker(BreakerOpen)
}

// ctxErr returns the context's error, tolerating the batch path's nil ctx.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// sleepCtx waits d of wall-clock time when a context is present, returning
// early with ctx.Err() on cancellation. The batch path (nil ctx) does not
// sleep: its backoff exists in simulated time only.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil || d <= 0 {
		return ctxErr(ctx)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// invokeSecondary completes one invoke on the secondary backend
// (classically the host CPU interpreter priced by the cpuarch model). The
// quantized graph is bit-exact with the healthy device, so degradation
// costs throughput, not accuracy.
func (r *ResilientRunner) invokeSecondary(fill func(in *tensor.Tensor), waste edgetpu.Timing, rows int) (edgetpu.Timing, error) {
	if r.secondary == nil {
		if r.makeSecondary == nil {
			return waste, fmt.Errorf("pipeline: no secondary backend to degrade to")
		}
		b, err := r.makeSecondary()
		if err != nil {
			return waste, fmt.Errorf("pipeline: host fallback unavailable: %w", err)
		}
		r.secondary = b
	}
	if fill != nil {
		fill(r.secondary.Input(0))
	}
	st, err := r.secondary.InvokeBatch(rows)
	if err != nil {
		return waste, fmt.Errorf("pipeline: host fallback invoke: %w", err)
	}
	r.lastWasFallback = true
	r.report.FallbackInvokes++
	r.live.onFallback()
	r.report.FallbackTime += st.Total()
	t := waste
	t.Add(st)
	return t, nil
}

// HostModelTime prices one full invocation of a (typically quantized) model
// on the host CPU using the cpuarch primitives — the cost the resilient
// runtime pays per invoke once it has degraded off the accelerator. It is
// hostcpu.ModelTime, re-exported where the pipeline's consumers expect it.
func HostModelTime(host cpuarch.Spec, m *tflite.Model) time.Duration {
	return hostcpu.ModelTime(host, m)
}

// HostModelTimeRows prices one invocation at an effective batch of rows
// occupied sample rows; see hostcpu.ModelTimeRows.
func HostModelTimeRows(host cpuarch.Spec, m *tflite.Model, rows int) time.Duration {
	return hostcpu.ModelTimeRows(host, m, rows)
}
