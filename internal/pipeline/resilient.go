package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"hdcedge/internal/cpuarch"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// This file is the resilient runtime on top of the simulator's fault model:
// typed-error classification, bounded retry with seeded exponential backoff,
// automatic model reload after device resets, a three-state circuit breaker
// (closed → open → half-open probe), and graceful degradation to the host
// CPU. The design goal is that a training or inference run never hard-fails
// on transient accelerator faults — it completes with degraded throughput
// instead.
//
// Two invoke entry points share one loop: Invoke is the batch path, where
// backoff is accounted in simulated time only; InvokeCtx is the serving
// path, where backoff is also waited out in wall-clock time and the
// context can cancel the wait (and the whole invoke) mid-flight.

// RecoveryPolicy controls how a ResilientRunner reacts to transient device
// faults.
type RecoveryPolicy struct {
	// MaxRetries bounds the device re-attempts after the first failed try
	// of one invoke. When they are exhausted the invoke completes on the
	// host CPU instead.
	MaxRetries int

	// BaseBackoff is the wait before the first retry; each further retry
	// doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// JitterFrac spreads each backoff uniformly over ±JitterFrac of its
	// nominal value, drawn from the runner's seeded stream. Must lie in
	// [0, 1].
	JitterFrac float64

	// BreakerThreshold is how many consecutive invokes must exhaust their
	// retries before the circuit breaker opens and routes further invokes
	// to the host CPU.
	BreakerThreshold int

	// BreakerCooldown is how many invokes an open breaker serves on the
	// host before it half-opens and probes the device with a single trial
	// attempt: success closes the breaker, failure re-opens it for another
	// cooldown. Zero keeps an opened breaker open permanently (the
	// pre-probe behavior).
	BreakerCooldown int

	// Seed drives the backoff jitter stream.
	Seed uint64
}

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed routes invokes to the device (healthy).
	BreakerClosed BreakerState = iota
	// BreakerOpen routes invokes to the host while the cooldown runs.
	BreakerOpen
	// BreakerHalfOpen marks the next invoke as a single-attempt device
	// probe that decides between closing and re-opening.
	BreakerHalfOpen
)

// String renders the state for reports and health endpoints.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breaker(%d)", int(s))
}

// DefaultRecoveryPolicy returns the policy used by the fault-rate sweeps:
// three retries with 200µs..10ms backoff, a breaker after four consecutive
// failed invokes, and a half-open probe every eight host-served invokes.
func DefaultRecoveryPolicy() RecoveryPolicy {
	return RecoveryPolicy{
		MaxRetries:       3,
		BaseBackoff:      200 * time.Microsecond,
		MaxBackoff:       10 * time.Millisecond,
		JitterFrac:       0.2,
		BreakerThreshold: 4,
		BreakerCooldown:  8,
		Seed:             1,
	}
}

// Validate checks the policy for sanity.
func (p RecoveryPolicy) Validate() error {
	if p.MaxRetries < 0 {
		return fmt.Errorf("pipeline: negative MaxRetries %d", p.MaxRetries)
	}
	if p.BaseBackoff <= 0 {
		return fmt.Errorf("pipeline: BaseBackoff %v must be positive", p.BaseBackoff)
	}
	if p.MaxBackoff < p.BaseBackoff {
		return fmt.Errorf("pipeline: MaxBackoff %v below BaseBackoff %v", p.MaxBackoff, p.BaseBackoff)
	}
	if math.IsNaN(p.JitterFrac) || p.JitterFrac < 0 || p.JitterFrac > 1 {
		return fmt.Errorf("pipeline: JitterFrac %v outside [0, 1]", p.JitterFrac)
	}
	if p.BreakerThreshold < 1 {
		return fmt.Errorf("pipeline: BreakerThreshold %d must be at least 1", p.BreakerThreshold)
	}
	if p.BreakerCooldown < 0 {
		return fmt.Errorf("pipeline: negative BreakerCooldown %d", p.BreakerCooldown)
	}
	return nil
}

// backoff returns the wait before retry `attempt` (1-based): exponential
// growth from BaseBackoff capped at MaxBackoff, with seeded jitter. The
// result is never negative and never exceeds MaxBackoff·(1+JitterFrac),
// for any seed, attempt, or duration combination (fuzz-checked).
func (p RecoveryPolicy) backoff(attempt int, r *rng.RNG) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.BaseBackoff) * math.Pow(2, float64(attempt-1))
	if max := float64(p.MaxBackoff); d > max || math.IsInf(d, 1) {
		d = max
	}
	if p.JitterFrac > 0 && r != nil {
		d *= 1 + p.JitterFrac*(2*r.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	// float64(MaxInt64) rounds up to 2^63, which overflows the conversion;
	// anything at or above it must saturate explicitly.
	if d >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(d)
}

// ReliabilityReport records what a ResilientRunner did to keep a run alive.
type ReliabilityReport struct {
	Invokes         int // invokes requested by the caller
	DeviceInvokes   int // device attempts, including failed ones
	Retries         int // device re-attempts after transient errors
	LinkFaults      int // transient transfer failures observed
	Resets          int // reset-class failures observed (model dropped)
	Reloads         int // LoadModel repayments performed
	FallbackInvokes int // invokes completed on the host CPU
	BreakerTripped  bool
	BreakerTrips    int // closed→open transitions (including probe re-trips)
	BreakerProbes   int // half-open trial invokes attempted
	BreakerCloses   int // successful probes that closed the breaker again

	BackoffTime  time.Duration // simulated time spent waiting between retries
	ReloadTime   time.Duration // simulated time re-paying model setup
	WastedTime   time.Duration // simulated device time consumed by failed attempts
	FallbackTime time.Duration // simulated host time spent in degraded mode
}

// Overhead sums the simulated time reliability cost on top of the useful
// device work: everything the run would not have paid had the accelerator
// stayed healthy.
func (r ReliabilityReport) Overhead() time.Duration {
	return r.BackoffTime + r.ReloadTime + r.WastedTime
}

// String renders a one-paragraph summary for CLI consumption.
func (r ReliabilityReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "reliability: %d invokes (%d on device, %d on host fallback)",
		r.Invokes, r.Invokes-r.FallbackInvokes, r.FallbackInvokes)
	fmt.Fprintf(&sb, ", %d retries, %d link faults, %d resets, %d reloads",
		r.Retries, r.LinkFaults, r.Resets, r.Reloads)
	if r.BreakerTripped {
		fmt.Fprintf(&sb, ", circuit breaker TRIPPED (%d trips, %d probes, %d closes)",
			r.BreakerTrips, r.BreakerProbes, r.BreakerCloses)
	}
	fmt.Fprintf(&sb, "; overhead %v (backoff %v, reload %v, wasted %v), fallback compute %v",
		r.Overhead().Round(time.Microsecond), r.BackoffTime.Round(time.Microsecond),
		r.ReloadTime.Round(time.Microsecond), r.WastedTime.Round(time.Microsecond),
		r.FallbackTime.Round(time.Microsecond))
	return sb.String()
}

// ResilientRunner wraps one simulated device with retry, reload, circuit
// breaking and host-CPU graceful degradation. It is not safe for concurrent
// use; drive it from one goroutine like the device it wraps.
type ResilientRunner struct {
	dev    *edgetpu.Device
	cm     *edgetpu.CompiledModel
	host   cpuarch.Spec
	policy RecoveryPolicy
	jitter *rng.RNG

	report          ReliabilityReport
	consecutive     int
	breaker         BreakerState
	cooldownLeft    int
	pendingReload   bool
	lastWasFallback bool

	hostInterp *tflite.Interpreter
	hostTimes  map[int]time.Duration // host fallback cost per effective rows (0 = full batch)

	// SetupTime is the initial LoadModel cost (not counted as overhead).
	SetupTime time.Duration
}

// NewResilientRunner creates a device for the platform's accelerator, loads
// cm, arms the fault plan, and wraps it with the recovery policy. A disabled
// plan plus a healthy device makes the runner a zero-overhead pass-through:
// its Invoke timing is bit-identical to driving the device directly.
func NewResilientRunner(p Platform, cm *edgetpu.CompiledModel, plan edgetpu.FaultPlan, policy RecoveryPolicy) (*ResilientRunner, error) {
	if !p.HasAccel() {
		return nil, fmt.Errorf("pipeline: platform %s has no accelerator", p.Name)
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	dev := edgetpu.NewDevice(*p.Accel)
	setup, err := dev.LoadModel(cm)
	if err != nil {
		return nil, err
	}
	if err := dev.InjectFaults(plan); err != nil {
		return nil, err
	}
	return &ResilientRunner{
		dev:       dev,
		cm:        cm,
		host:      p.Host,
		policy:    policy,
		jitter:    rng.New(policy.Seed),
		SetupTime: setup,
	}, nil
}

// Device exposes the wrapped device (for tests and fault-stat readers).
func (r *ResilientRunner) Device() *edgetpu.Device { return r.dev }

// Degraded reports whether the circuit breaker currently routes invokes
// away from the device (open or half-open).
func (r *ResilientRunner) Degraded() bool { return r.breaker != BreakerClosed }

// BreakerState returns the circuit breaker's current position.
func (r *ResilientRunner) BreakerState() BreakerState { return r.breaker }

// Report returns a copy of the reliability accounting so far.
func (r *ResilientRunner) Report() ReliabilityReport { return r.report }

// Output returns the i-th model output tensor of whichever engine ran the
// last successful invoke (device, or host interpreter in degraded mode).
func (r *ResilientRunner) Output(i int) *tensor.Tensor {
	if r.hostInterp != nil && r.lastWasFallback {
		return r.hostInterp.Output(i)
	}
	return r.dev.Output(i)
}

// Invoke runs the model once. fill is called with the current input tensor
// to populate; it may be called more than once when recovery reloads the
// model or falls back to the host, so it must be idempotent. The returned
// timing covers the whole invoke including recovery overhead; on the
// healthy path it is exactly the device's own timing. Backoff waits are
// accounted in simulated time only — Invoke never sleeps.
func (r *ResilientRunner) Invoke(fill func(in *tensor.Tensor)) (edgetpu.Timing, error) {
	return r.invoke(nil, 0, fill)
}

// InvokeBatch is Invoke limited to the first rows sample rows of the
// compiled batch: the device executes and prices only the occupied rows
// (edgetpu.Device.InvokeBatch), and a host fallback runs and is priced at
// the same effective batch. rows <= 0 (or >= the model's batch capacity)
// is a full invoke. fill receives the full-capacity input tensor; it must
// populate the first rows rows.
func (r *ResilientRunner) InvokeBatch(rows int, fill func(in *tensor.Tensor)) (edgetpu.Timing, error) {
	return r.invoke(nil, rows, fill)
}

// InvokeCtx is Invoke under a context: the deadline or cancellation is
// honored before every device attempt and during backoff, which is waited
// out in real wall-clock time (a cancelled request returns ctx.Err()
// immediately instead of sleeping the backoff out). The simulated-time
// accounting is identical to Invoke's, so with a healthy device the
// returned timing is bit-identical to the direct path.
func (r *ResilientRunner) InvokeCtx(ctx context.Context, fill func(in *tensor.Tensor)) (edgetpu.Timing, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return r.invoke(ctx, 0, fill)
}

// InvokeBatchCtx is InvokeBatch under a context, with the same cancellation
// semantics as InvokeCtx. It is the serving micro-batcher's entry point.
func (r *ResilientRunner) InvokeBatchCtx(ctx context.Context, rows int, fill func(in *tensor.Tensor)) (edgetpu.Timing, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return r.invoke(ctx, rows, fill)
}

// invoke is the shared retry/reload/breaker loop. A nil ctx selects the
// batch behavior (no wall-clock waits, no cancellation points); rows
// limits device execution and pricing to the occupied sample rows.
func (r *ResilientRunner) invoke(ctx context.Context, rows int, fill func(in *tensor.Tensor)) (edgetpu.Timing, error) {
	r.report.Invokes++
	var waste edgetpu.Timing
	if err := ctxErr(ctx); err != nil {
		return waste, err
	}

	// Breaker gate: an open breaker serves from the host until the
	// cooldown elapses, then half-opens; a half-open breaker lets exactly
	// one trial attempt through below.
	probing := false
	if r.breaker != BreakerClosed {
		if r.breaker == BreakerOpen && r.policy.BreakerCooldown > 0 {
			r.cooldownLeft--
			if r.cooldownLeft <= 0 {
				r.breaker = BreakerHalfOpen
			}
		}
		if r.breaker == BreakerOpen {
			return r.invokeHost(fill, waste, rows)
		}
		probing = true
		r.report.BreakerProbes++
	}

	attempts := 0
	for {
		if err := ctxErr(ctx); err != nil {
			return waste, err
		}
		if r.pendingReload {
			// A previous invoke abandoned the device mid-recovery (host
			// fallback after a reset-class error): re-pay LoadModel before
			// attempting the device again.
			setup, lerr := r.dev.LoadModel(r.cm)
			if lerr != nil {
				return waste, fmt.Errorf("pipeline: model reload failed: %w", lerr)
			}
			r.pendingReload = false
			r.report.Reloads++
			waste.Host += setup
			r.report.ReloadTime += setup
		}
		if fill != nil {
			fill(r.dev.Input(0))
		}
		attempts++
		r.report.DeviceInvokes++
		t, err := r.deviceInvoke(ctx, rows)
		if err == nil {
			r.consecutive = 0
			r.lastWasFallback = false
			if probing {
				r.breaker = BreakerClosed
				r.report.BreakerCloses++
			}
			t.Add(waste)
			return t, nil
		}
		waste.Add(t)
		r.report.WastedTime += t.Total()
		if !edgetpu.IsRetryable(err) {
			if ctx != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				return waste, err
			}
			return waste, fmt.Errorf("pipeline: resilient invoke failed permanently: %w", err)
		}
		if edgetpu.NeedsReload(err) {
			r.report.Resets++
			r.pendingReload = true
		} else {
			r.report.LinkFaults++
		}
		if probing {
			// The trial attempt failed: back to open for another cooldown.
			r.trip()
			return r.invokeHost(fill, waste, rows)
		}
		if attempts > r.policy.MaxRetries {
			// This invoke is out of device attempts: complete it on the
			// host so the run survives, and let the breaker decide whether
			// the device is worth trying again.
			r.consecutive++
			if r.consecutive >= r.policy.BreakerThreshold {
				r.trip()
			}
			return r.invokeHost(fill, waste, rows)
		}
		r.report.Retries++
		wait := r.policy.backoff(attempts, r.jitter)
		waste.Host += wait
		r.report.BackoffTime += wait
		if r.pendingReload {
			setup, lerr := r.dev.LoadModel(r.cm)
			if lerr != nil {
				return waste, fmt.Errorf("pipeline: model reload failed: %w", lerr)
			}
			r.pendingReload = false
			r.report.Reloads++
			waste.Host += setup
			r.report.ReloadTime += setup
		}
		if err := sleepCtx(ctx, wait); err != nil {
			return waste, err
		}
	}
}

// deviceInvoke dispatches one device attempt, context-gated when a ctx is
// present and limited to rows occupied sample rows (0 = full batch).
func (r *ResilientRunner) deviceInvoke(ctx context.Context, rows int) (edgetpu.Timing, error) {
	if ctx != nil {
		return r.dev.InvokeBatchCtx(ctx, rows)
	}
	return r.dev.InvokeBatch(rows)
}

// trip opens the breaker and arms the cooldown.
func (r *ResilientRunner) trip() {
	r.breaker = BreakerOpen
	r.cooldownLeft = r.policy.BreakerCooldown
	r.report.BreakerTripped = true
	r.report.BreakerTrips++
}

// ctxErr returns the context's error, tolerating the batch path's nil ctx.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// sleepCtx waits d of wall-clock time when a context is present, returning
// early with ctx.Err() on cancellation. The batch path (nil ctx) does not
// sleep: its backoff exists in simulated time only.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil || d <= 0 {
		return ctxErr(ctx)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// invokeHost completes one invoke on the host CPU with the reference
// interpreter, priced by the cpuarch fallback model. The quantized graph is
// bit-exact with the healthy device, so degradation costs throughput, not
// accuracy.
func (r *ResilientRunner) invokeHost(fill func(in *tensor.Tensor), waste edgetpu.Timing, rows int) (edgetpu.Timing, error) {
	if r.hostInterp == nil {
		it, err := tflite.NewInterpreter(r.cm.Model)
		if err != nil {
			return waste, fmt.Errorf("pipeline: host fallback unavailable: %w", err)
		}
		r.hostInterp = it
		r.hostTimes = make(map[int]time.Duration)
	}
	if rows >= r.cm.BatchCapacity() {
		rows = 0 // full batch: share the unscaled cache entry
	}
	hostTime, ok := r.hostTimes[rows]
	if !ok {
		hostTime = HostModelTimeRows(r.host, r.cm.Model, rows)
		r.hostTimes[rows] = hostTime
	}
	if fill != nil {
		fill(r.hostInterp.Input(0))
	}
	if err := r.hostInterp.InvokeRows(rows); err != nil {
		return waste, fmt.Errorf("pipeline: host fallback invoke: %w", err)
	}
	r.lastWasFallback = true
	r.report.FallbackInvokes++
	r.report.FallbackTime += hostTime
	t := waste
	t.HostFallback += hostTime
	return t, nil
}

// HostModelTime prices one full invocation of a (typically quantized) model
// on the host CPU using the cpuarch primitives — the cost the resilient
// runtime pays per invoke once it has degraded off the accelerator.
func HostModelTime(host cpuarch.Spec, m *tflite.Model) time.Duration {
	return HostModelTimeRows(host, m, 0)
}

// HostModelTimeRows prices one invocation at an effective batch of rows
// occupied sample rows. rows <= 0 (or >= the model's batch capacity) prices
// the full batch with exactly the unscaled arithmetic. On row-sliceable
// models the per-op element counts are batch-leading, so the scaling is an
// exact integer division, mirroring the device-side partial-batch pricing.
func HostModelTimeRows(host cpuarch.Spec, m *tflite.Model, rows int) time.Duration {
	capacity := m.BatchCapacity()
	partial := rows > 0 && rows < capacity
	scale := func(n int) int {
		if !partial {
			return n
		}
		return n * rows / capacity
	}
	var total time.Duration
	for _, op := range m.Operators {
		outElems := 0
		for _, ti := range op.Outputs {
			outElems += scale(m.Tensors[ti].Shape.Elems())
		}
		switch op.Op {
		case tflite.OpFullyConnected:
			in := m.Tensors[op.Inputs[0]]
			w := m.Tensors[op.Inputs[1]]
			batch, depth, units := in.Shape[0], in.Shape[1], w.Shape[0]
			if partial {
				batch = rows
			}
			if in.DType == tensor.Int8 {
				total += host.Int8GEMMTime(batch, depth, units)
			} else {
				total += host.GEMMTime(batch, depth, units)
			}
		case tflite.OpTanh, tflite.OpLogistic:
			if m.Tensors[op.Inputs[0]].DType == tensor.Int8 {
				total += host.LUTTime(outElems)
			} else {
				total += host.TanhTime(outElems)
			}
		case tflite.OpQuantize, tflite.OpDequantize:
			total += host.QuantizeTime(outElems)
		case tflite.OpArgMax:
			in := m.Tensors[op.Inputs[0]]
			total += host.ArgMaxTime(scale(in.Shape.Elems()))
		case tflite.OpSoftmax:
			total += host.TanhTime(outElems)
		default: // CONCAT, RESHAPE and other data movement
			bytes := 0
			for _, ti := range op.Outputs {
				info := m.Tensors[ti]
				bytes += scale(info.Shape.Elems()) * info.DType.Size()
			}
			total += host.StreamTime(2 * bytes)
		}
	}
	return total
}
