package pipeline

import (
	"fmt"

	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
	"hdcedge/internal/hdc"
	"hdcedge/internal/nnmap"
	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// CompileEncoder builds, quantizes and compiles the encoder model for the
// platform's accelerator — the shared front half of the healthy and
// resilient encoding paths.
func CompileEncoder(p Platform, enc *hdc.Encoder, calib *dataset.Dataset, batch int) (*edgetpu.CompiledModel, error) {
	em, err := nnmap.BuildEncoderModel(enc, batch)
	if err != nil {
		return nil, err
	}
	qm, err := nnmap.QuantizeForTPU(em, calib, batch, calibBatches)
	if err != nil {
		return nil, err
	}
	cm, err := edgetpu.Compile(qm, *p.Accel)
	if err != nil {
		return nil, err
	}
	if cm.DelegatedOps() == 0 {
		return nil, fmt.Errorf("pipeline: encoder model did not delegate: %v", cm.Warnings)
	}
	return cm, nil
}

// CompileInference builds, quantizes and compiles the full inference model
// for the platform's accelerator.
func CompileInference(p Platform, model *hdc.Model, calib *dataset.Dataset, batch int) (*edgetpu.CompiledModel, error) {
	im, err := nnmap.BuildInferenceModel(model, batch)
	if err != nil {
		return nil, err
	}
	qm, err := nnmap.QuantizeForTPU(im, calib, batch, calibBatches)
	if err != nil {
		return nil, err
	}
	cm, err := edgetpu.Compile(qm, *p.Accel)
	if err != nil {
		return nil, err
	}
	if cm.DelegatedOps() == 0 {
		return nil, fmt.Errorf("pipeline: inference model did not delegate: %v", cm.Warnings)
	}
	return cm, nil
}

// EncodeOnDeviceResilient is EncodeOnDevice running through a
// ResilientRunner: the accelerator is driven under the given fault plan and
// every transient failure is absorbed by retry, reload, or host fallback.
// With a disabled plan the timing is bit-identical to EncodeOnDevice.
func EncodeOnDeviceResilient(p Platform, enc *hdc.Encoder, ds *dataset.Dataset, batch int, plan edgetpu.FaultPlan, policy RecoveryPolicy) (*tensor.Tensor, edgetpu.Timing, *ReliabilityReport, error) {
	var zero edgetpu.Timing
	if !p.HasAccel() {
		return nil, zero, nil, fmt.Errorf("pipeline: platform %s has no accelerator", p.Name)
	}
	cm, err := CompileEncoder(p, enc, ds, batch)
	if err != nil {
		return nil, zero, nil, err
	}
	runner, err := NewResilientRunner(p, cm, plan, policy)
	if err != nil {
		return nil, zero, nil, err
	}

	n := ds.Features()
	d := enc.Dim()
	s := ds.Samples()
	out := tensor.New(tensor.Float32, s, d)
	var total edgetpu.Timing
	for start := 0; start < s; start += batch {
		end := start + batch
		if end > s {
			end = s
		}
		first := start
		timing, err := runner.Invoke(func(in *tensor.Tensor) {
			for r := 0; r < batch; r++ {
				src := first + r
				if src >= s {
					src = s - 1 // pad the final partial batch with the last row
				}
				copy(in.F32[r*n:(r+1)*n], ds.X.Row(src))
			}
		})
		if err != nil {
			return nil, zero, nil, err
		}
		total.Add(timing)
		encOut := runner.Output(0)
		for r := 0; start+r < end; r++ {
			copy(out.Row(start+r), encOut.F32[r*d:(r+1)*d])
		}
	}
	report := runner.Report()
	return out, total, &report, nil
}

// TrainOnDeviceResilient is TrainOnDevice with the training-set encoding
// driven through a ResilientRunner under the given fault plan. Because
// retries, reloads and the host fallback all reproduce the same quantized
// encodings, the trained model is identical to the healthy run's — faults
// cost time, not accuracy.
func TrainOnDeviceResilient(p Platform, train *dataset.Dataset, cfg hdc.TrainConfig, plan edgetpu.FaultPlan, policy RecoveryPolicy) (*FunctionalResult, *ReliabilityReport, error) {
	if !p.HasAccel() {
		return nil, nil, fmt.Errorf("pipeline: platform %s has no accelerator", p.Name)
	}
	if train == nil || train.Samples() == 0 {
		return nil, nil, fmt.Errorf("pipeline: empty training set")
	}
	if cfg.Dim == 0 {
		cfg.Dim = hdc.DefaultDim
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 20
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 1
	}
	r := rng.New(cfg.Seed)
	enc := hdc.NewEncoder(train.Features(), cfg.Dim, cfg.Nonlinear, r.Split())

	encoded, timing, report, err := EncodeOnDeviceResilient(p, enc, train, DefaultBatch, plan, policy)
	if err != nil {
		return nil, nil, err
	}
	model := hdc.NewModel(enc, train.Classes)
	stats, err := model.FitEncoded(encoded, train.Y, nil, nil, cfg.Epochs, cfg.LearningRate, r.Split())
	if err != nil {
		return nil, nil, err
	}
	return &FunctionalResult{Model: model, Stats: stats, DeviceTime: timing}, report, nil
}

// InferOnDeviceResilient is InferOnDevice driven through a ResilientRunner.
// Unlike link faults and resets (which are absorbed exactly), parameter SEUs
// in the plan corrupt resident weights until the next reload, so predictions
// can genuinely degrade — this is the entry point the SEU sensitivity sweep
// uses.
func InferOnDeviceResilient(p Platform, model *hdc.Model, test, calib *dataset.Dataset, batch int, plan edgetpu.FaultPlan, policy RecoveryPolicy) ([]int, edgetpu.Timing, *ReliabilityReport, error) {
	var zero edgetpu.Timing
	if !p.HasAccel() {
		return nil, zero, nil, fmt.Errorf("pipeline: platform %s has no accelerator", p.Name)
	}
	cm, err := CompileInference(p, model, calib, batch)
	if err != nil {
		return nil, zero, nil, err
	}
	runner, err := NewResilientRunner(p, cm, plan, policy)
	if err != nil {
		return nil, zero, nil, err
	}

	n := test.Features()
	s := test.Samples()
	preds := make([]int, s)
	var total edgetpu.Timing
	for start := 0; start < s; start += batch {
		end := start + batch
		if end > s {
			end = s
		}
		first := start
		timing, err := runner.Invoke(func(in *tensor.Tensor) {
			for r := 0; r < batch; r++ {
				src := first + r
				if src >= s {
					src = s - 1
				}
				copy(in.F32[r*n:(r+1)*n], test.X.Row(src))
			}
		})
		if err != nil {
			return nil, zero, nil, err
		}
		total.Add(timing)
		out := runner.Output(0)
		for r := 0; start+r < end; r++ {
			preds[start+r] = int(out.I32[r])
		}
	}
	report := runner.Report()
	return preds, total, &report, nil
}
