package pipeline

import (
	"fmt"
	"time"

	"hdcedge/internal/bagging"
)

// EnergyBreakdown reports modeled energy in joules for one workload on one
// platform. The accounting convention: the host draws active power while a
// host phase runs; during accelerator phases the host idles (it is blocked
// on the USB completion) while the accelerator draws active power.
type EnergyBreakdown struct {
	HostJoules  float64
	AccelJoules float64
}

// Total returns the platform energy.
func (e EnergyBreakdown) Total() float64 { return e.HostJoules + e.AccelJoules }

// MeanPowerWatts returns the average platform power over duration d.
func (e EnergyBreakdown) MeanPowerWatts(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return e.Total() / d.Seconds()
}

// hostOnlyEnergy charges the host's active power for the whole duration.
func hostOnlyEnergy(p Platform, d time.Duration) EnergyBreakdown {
	return EnergyBreakdown{HostJoules: p.Host.ActiveEnergy(d)}
}

// splitEnergy charges accelerator phases at accelerator-active +
// host-idle power, and host phases at host-active power.
func splitEnergy(p Platform, accel, host time.Duration) (EnergyBreakdown, error) {
	if !p.HasAccel() {
		return EnergyBreakdown{}, fmt.Errorf("pipeline: platform %s has no accelerator", p.Name)
	}
	return EnergyBreakdown{
		HostJoules:  p.Host.ActiveEnergy(host) + p.Host.IdleEnergy(accel),
		AccelJoules: p.Accel.ActiveEnergy(accel) + p.Accel.IdlePowerWatts*host.Seconds(),
	}, nil
}

// CPUTrainingEnergy models training energy on a host-only platform.
func CPUTrainingEnergy(p Platform, w Workload) (EnergyBreakdown, error) {
	b, err := CPUTraining(p.Host, w)
	if err != nil {
		return EnergyBreakdown{}, err
	}
	return hostOnlyEnergy(p, b.Total()), nil
}

// TPUTrainingEnergy models co-design training energy: encoding runs on the
// accelerator, update and model generation on the host.
func TPUTrainingEnergy(p Platform, w Workload) (EnergyBreakdown, error) {
	b, err := TPUTraining(p, w)
	if err != nil {
		return EnergyBreakdown{}, err
	}
	return splitEnergy(p, b.Encode, b.Update+b.ModelGen)
}

// BaggingTrainingEnergy models the full framework's training energy.
func BaggingTrainingEnergy(p Platform, w Workload, cfg bagging.Config) (EnergyBreakdown, error) {
	b, err := BaggingTraining(p, w, cfg, nil)
	if err != nil {
		return EnergyBreakdown{}, err
	}
	return splitEnergy(p, b.Encode, b.Update+b.ModelGen)
}

// CPUInferenceEnergy models test-set classification energy on a host-only
// platform.
func CPUInferenceEnergy(p Platform, w Workload) (EnergyBreakdown, error) {
	d, err := CPUInference(p.Host, w)
	if err != nil {
		return EnergyBreakdown{}, err
	}
	return hostOnlyEnergy(p, d), nil
}

// TPUInferenceEnergy models test-set classification energy on the
// accelerator platform. The whole invocation stream counts as accelerator
// time (the host only shuffles buffers).
func TPUInferenceEnergy(p Platform, w Workload) (EnergyBreakdown, error) {
	d, err := TPUInference(p, w)
	if err != nil {
		return EnergyBreakdown{}, err
	}
	return splitEnergy(p, d, 0)
}
