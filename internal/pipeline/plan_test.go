package pipeline

import (
	"strings"
	"testing"

	"hdcedge/internal/bagging"
)

func TestPlanRecommendsAcceleratorForMNIST(t *testing.T) {
	w := workloadFor(t, "MNIST")
	p, err := Plan(CPUBaseline(), EdgeTPU(), w, bagging.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Recommended {
		t.Fatalf("MNIST not recommended: %v", p.Reasons)
	}
	if p.BaggingTrain.Total() >= p.CPUTrain.Total() {
		t.Fatal("bagging training not faster in plan")
	}
	r := p.Render()
	for _, want := range []string{"ACCELERATOR RECOMMENDED", "TPU+bagging", "Per-sample", "Energy"} {
		if !strings.Contains(r, want) {
			t.Fatalf("render missing %q:\n%s", want, r)
		}
	}
}

func TestPlanRejectsPAMAP2(t *testing.T) {
	w := workloadFor(t, "PAMAP2")
	p, err := Plan(CPUBaseline(), EdgeTPU(), w, bagging.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Recommended {
		t.Fatalf("PAMAP2 recommended despite 27 features: %v", p.Reasons)
	}
	if !strings.Contains(p.Render(), "KEEP ON CPU") {
		t.Fatal("render missing verdict")
	}
	found := false
	for _, r := range p.Reasons {
		if strings.Contains(r, "features") {
			found = true
		}
	}
	if !found {
		t.Fatalf("reasons do not mention the feature count: %v", p.Reasons)
	}
}

func TestPlanValidatesWorkload(t *testing.T) {
	w := workloadFor(t, "ISOLET")
	w.Batch = 0
	if _, err := Plan(CPUBaseline(), EdgeTPU(), w, bagging.DefaultConfig()); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestPlanEnergyConsistency(t *testing.T) {
	w := workloadFor(t, "FACE")
	p, err := Plan(CPUBaseline(), EdgeTPU(), w, bagging.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.CPUTrainEnergy.Total() <= 0 || p.TPUInferEnergy.Total() <= 0 {
		t.Fatalf("unpriced energy: %+v", p)
	}
	// The accelerator platform must beat the CPU on inference energy for
	// a feature-rich dataset.
	if p.TPUInferEnergy.Total() >= p.CPUInferEnergy.Total() {
		t.Fatal("accelerator inference energy not lower")
	}
}
