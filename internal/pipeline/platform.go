// Package pipeline is the paper's co-design framework (Figs 1 and 3): it
// orchestrates HDC training and inference across a host CPU and the
// simulated Edge TPU, producing both functional results (models,
// predictions, accuracy) and phase-level runtime breakdowns (encoding,
// class-hypervector update, model generation, inference).
//
// Runtime figures are evaluated analytically at the paper's full dataset
// scale through the cost models in internal/cpuarch and the device's
// EstimateInvoke, while accuracy figures come from functional runs (which
// may use subsampled datasets).
package pipeline

import (
	"hdcedge/internal/cpuarch"
	"hdcedge/internal/edgetpu"
)

// Platform pairs a host CPU with an optional accelerator.
type Platform struct {
	Name  string
	Host  cpuarch.Spec
	Accel *edgetpu.Config
}

// CPUBaseline is the paper's baseline: the laptop host alone.
func CPUBaseline() Platform {
	return Platform{Name: "cpu-i5", Host: cpuarch.MobileI5()}
}

// EdgeTPU is the proposed platform: the laptop host plus the USB Edge TPU.
func EdgeTPU() Platform {
	cfg := edgetpu.DefaultUSB()
	return Platform{Name: "i5+edgetpu", Host: cpuarch.MobileI5(), Accel: &cfg}
}

// RaspberryPi is the similar-power embedded comparison of Table II.
func RaspberryPi() Platform {
	return Platform{Name: "raspberry-pi-3", Host: cpuarch.CortexA53RPi3()}
}

// HasAccel reports whether the platform includes an accelerator.
func (p Platform) HasAccel() bool { return p.Accel != nil }

// EdgeTPUPCIe returns the host paired with the PCIe-attached accelerator
// variant, for link-sensitivity studies.
func EdgeTPUPCIe() Platform {
	cfg := edgetpu.DefaultPCIe()
	return Platform{Name: "i5+edgetpu-pcie", Host: cpuarch.MobileI5(), Accel: &cfg}
}

// DeviceTiming aliases the accelerator timing type for CLI consumers.
type DeviceTiming = edgetpu.Timing

// DeviceProfiler aliases the accelerator profiler type for CLI consumers.
type DeviceProfiler = edgetpu.Profiler
