package pipeline

import (
	"fmt"
	"math"

	"hdcedge/internal/dataset"
	"hdcedge/internal/hdc"
)

// Workload captures the dimensions at which runtimes are modeled. It is
// decoupled from functional execution so that runtime figures can use the
// paper's full Table I sample counts.
type Workload struct {
	Name         string
	TrainSamples int
	TestSamples  int
	Features     int
	Classes      int
	Dim          int
	Epochs       int
	// Batch is the accelerator invocation batch size for throughput-
	// oriented phases (training-set encoding).
	Batch int
	// InferBatch is the accelerator batch for inference, kept small for
	// latency as an edge deployment would.
	InferBatch int
	// UpdateFracs[e] is the fraction of training samples misclassified
	// (and therefore updated) in epoch e. Functional runs supply measured
	// values; DefaultUpdateFracs gives a calibrated decay otherwise.
	UpdateFracs []float64
}

// Validate reports structural problems.
func (w Workload) Validate() error {
	switch {
	case w.TrainSamples <= 0 || w.TestSamples < 0:
		return fmt.Errorf("pipeline: workload %s: bad sample counts %d/%d", w.Name, w.TrainSamples, w.TestSamples)
	case w.Features <= 0 || w.Classes < 2 || w.Dim <= 0:
		return fmt.Errorf("pipeline: workload %s: bad dims n=%d k=%d d=%d", w.Name, w.Features, w.Classes, w.Dim)
	case w.Epochs <= 0:
		return fmt.Errorf("pipeline: workload %s: bad epoch count %d", w.Name, w.Epochs)
	case w.Batch <= 0 || w.InferBatch <= 0:
		return fmt.Errorf("pipeline: workload %s: bad batch %d/%d", w.Name, w.Batch, w.InferBatch)
	case len(w.UpdateFracs) != w.Epochs:
		return fmt.Errorf("pipeline: workload %s: %d update fractions for %d epochs", w.Name, len(w.UpdateFracs), w.Epochs)
	}
	return nil
}

// DefaultBatch is the accelerator invoke batch used for training-set
// encoding throughout the experiments.
const DefaultBatch = 32

// DefaultInferBatch is the latency-oriented inference batch.
const DefaultInferBatch = 8

// TestFraction is the train/test split used for the catalog datasets.
const TestFraction = 0.2

// FromSpec derives a full-scale workload from a Table I dataset spec with
// the paper's training configuration (d = 10,000, 20 iterations).
func FromSpec(spec dataset.Spec, epochs int) Workload {
	test := int(float64(spec.Samples) * TestFraction)
	return Workload{
		Name:         spec.Name,
		TrainSamples: spec.Samples - test,
		TestSamples:  test,
		Features:     spec.Features,
		Classes:      spec.Classes,
		Dim:          hdc.DefaultDim,
		Epochs:       epochs,
		Batch:        DefaultBatch,
		InferBatch:   DefaultInferBatch,
		UpdateFracs:  DefaultUpdateFracs(epochs),
	}
}

// DefaultUpdateFracs returns a perceptron-style decay of per-epoch
// misclassification fractions: high in the first pass (the class
// hypervectors start from zero), settling toward a residual error floor.
// The curve matches the measured shape of functional runs on the catalog
// generators.
func DefaultUpdateFracs(epochs int) []float64 {
	out := make([]float64, epochs)
	for e := range out {
		out[e] = 0.10 + 0.75*math.Exp(-float64(e)/2.5)
	}
	return out
}

// WithMeasuredUpdates replaces the update profile with fractions measured
// by a functional training run (per-epoch updates / samples).
func (w Workload) WithMeasuredUpdates(stats *hdc.TrainStats, functionalSamples int) Workload {
	fracs := make([]float64, len(stats.Epochs))
	for i, e := range stats.Epochs {
		fracs[i] = float64(e.Updates) / float64(functionalSamples)
	}
	w.UpdateFracs = fracs
	w.Epochs = len(fracs)
	return w
}

// TotalUpdates returns the modeled number of misclassification updates
// across all epochs at full training-set scale.
func (w Workload) TotalUpdates() int {
	total := 0.0
	for _, f := range w.UpdateFracs {
		total += f * float64(w.TrainSamples)
	}
	return int(total)
}
