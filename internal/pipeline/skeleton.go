package pipeline

import (
	"fmt"

	"hdcedge/internal/tensor"
	"hdcedge/internal/tflite"
)

// BuildSkeleton constructs a full-integer model with the paper's wide-NN
// topology but zero weights and unit-range quantization. The Edge TPU
// compiler and timing estimator only depend on shapes, placements, and
// parameter bytes, so a skeleton lets runtime experiments model the full
// Table I scale without materializing or calibrating real weights.
//
// Topology: float input [batch, n] → QUANTIZE → FC(d) → TANH →
// (classifier: FC(k) → ARG_MAX, plus dequantized scores;
// encoder-only: DEQUANTIZE of the encoding).
func BuildSkeleton(name string, batch, n, d, k int, withClassifier bool) (*tflite.Model, error) {
	if batch <= 0 || n <= 0 || d <= 0 {
		return nil, fmt.Errorf("pipeline: bad skeleton dims batch=%d n=%d d=%d", batch, n, d)
	}
	if withClassifier && k < 2 {
		return nil, fmt.Errorf("pipeline: classifier skeleton needs k ≥ 2, got %d", k)
	}
	b := tflite.NewBuilder(name)
	in := b.AddInput("features", tensor.Float32, batch, n)
	q := b.Quantize(in, tensor.QuantParams{Scale: 0.05, ZeroPoint: 0}, "features_q")

	w1 := tensor.New(tensor.Int8, d, n)
	w1.Quant = &tensor.QuantParams{Scale: 0.02, ZeroPoint: 0}
	b1 := tensor.New(tensor.Int32, d)
	b1.Quant = &tensor.QuantParams{Scale: 0.05 * 0.02, ZeroPoint: 0}
	h := b.FullyConnected(q, b.AddConstI8("base_T", w1), b.AddConstI32("bias0", b1), "bundled")
	b.SetQuant(h, tensor.QuantParams{Scale: 0.1, ZeroPoint: 0})
	e := b.Tanh(h, "encoded")

	if !withClassifier {
		b.MarkOutput(b.Dequantize(e, "encoded_f"))
		return b.Finish(), nil
	}
	w2 := tensor.New(tensor.Int8, k, d)
	w2.Quant = &tensor.QuantParams{Scale: 0.02, ZeroPoint: 0}
	b2 := tensor.New(tensor.Int32, k)
	b2.Quant = &tensor.QuantParams{Scale: (1.0 / 128.0) * 0.02, ZeroPoint: 0}
	scores := b.FullyConnected(e, b.AddConstI8("classes", w2), b.AddConstI32("bias1", b2), "scores")
	b.SetQuant(scores, tensor.QuantParams{Scale: 0.5, ZeroPoint: 0})
	b.MarkOutput(b.ArgMax(scores, "prediction"))
	return b.Finish(), nil
}
