package pipeline

import (
	"testing"
	"time"

	"hdcedge/internal/bagging"
	"hdcedge/internal/dataset"
	"hdcedge/internal/edgetpu"
)

func workloadFor(t *testing.T, name string) Workload {
	t.Helper()
	spec, err := dataset.CatalogSpec(name)
	if err != nil {
		t.Fatal(err)
	}
	return FromSpec(spec, 20)
}

func TestFromSpecShapes(t *testing.T) {
	w := workloadFor(t, "MNIST")
	if w.TrainSamples+w.TestSamples != 60000 {
		t.Fatalf("split loses samples: %d + %d", w.TrainSamples, w.TestSamples)
	}
	if w.Features != 784 || w.Classes != 10 || w.Dim != 10000 {
		t.Fatalf("dims %d/%d/%d", w.Features, w.Classes, w.Dim)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadValidateRejectsBad(t *testing.T) {
	w := workloadFor(t, "ISOLET")
	bad := []func(*Workload){
		func(w *Workload) { w.TrainSamples = 0 },
		func(w *Workload) { w.Classes = 1 },
		func(w *Workload) { w.Batch = 0 },
		func(w *Workload) { w.InferBatch = 0 },
		func(w *Workload) { w.UpdateFracs = w.UpdateFracs[:3] },
	}
	for i, mutate := range bad {
		c := w
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad workload %d accepted", i)
		}
	}
}

func TestDefaultUpdateFracsDecay(t *testing.T) {
	fracs := DefaultUpdateFracs(20)
	if len(fracs) != 20 {
		t.Fatalf("%d fracs", len(fracs))
	}
	for i := 1; i < len(fracs); i++ {
		if fracs[i] >= fracs[i-1] {
			t.Fatalf("fractions not decreasing at %d", i)
		}
	}
	if fracs[0] > 1 || fracs[19] < 0.05 {
		t.Fatalf("fractions out of plausible range: %v ... %v", fracs[0], fracs[19])
	}
}

func TestCPUTrainingBreakdown(t *testing.T) {
	w := workloadFor(t, "FACE")
	b, err := CPUTraining(CPUBaseline().Host, w)
	if err != nil {
		t.Fatal(err)
	}
	if b.Encode <= 0 || b.Update <= 0 {
		t.Fatalf("phases unpriced: %+v", b)
	}
	if b.ModelGen != 0 {
		t.Fatal("CPU baseline should not pay model generation")
	}
	if b.Total() != b.Encode+b.Update {
		t.Fatal("Total inconsistent")
	}
}

func TestTPUTrainingFasterOnLargeFeatures(t *testing.T) {
	// The co-design claim: for feature-rich datasets, TPU training beats
	// the CPU baseline.
	for _, name := range []string{"FACE", "ISOLET", "UCIHAR", "MNIST"} {
		w := workloadFor(t, name)
		cb, err := CPUTraining(CPUBaseline().Host, w)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := TPUTraining(EdgeTPU(), w)
		if err != nil {
			t.Fatal(err)
		}
		if tb.Encode >= cb.Encode {
			t.Fatalf("%s: TPU encode %v not faster than CPU %v", name, tb.Encode, cb.Encode)
		}
		if tb.Total() >= cb.Total() {
			t.Fatalf("%s: TPU training %v not faster than CPU %v", name, tb.Total(), cb.Total())
		}
		if tb.ModelGen <= 0 {
			t.Fatalf("%s: TPU training must pay model generation", name)
		}
	}
}

func TestPAMAP2EncodeDoesNotBenefit(t *testing.T) {
	// The paper's counterexample: 27 features cannot amortize per-invoke
	// costs, so encoding gains little to nothing.
	w := workloadFor(t, "PAMAP2")
	cb, err := CPUTraining(CPUBaseline().Host, w)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := TPUTraining(EdgeTPU(), w)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(cb.Encode) / float64(tb.Encode)
	if speedup > 1.5 {
		t.Fatalf("PAMAP2 encode speedup %.2f; paper shows ~1x", speedup)
	}
}

func TestBaggingCutsUpdateTime(t *testing.T) {
	for _, name := range []string{"ISOLET", "MNIST"} {
		w := workloadFor(t, name)
		cb, err := CPUTraining(CPUBaseline().Host, w)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := BaggingTraining(EdgeTPU(), w, bagging.DefaultConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if bb.Update >= cb.Update {
			t.Fatalf("%s: bagging update %v not faster than CPU %v", name, bb.Update, cb.Update)
		}
		tb, err := TPUTraining(EdgeTPU(), w)
		if err != nil {
			t.Fatal(err)
		}
		if bb.Total() >= tb.Total() {
			t.Fatalf("%s: bagging total %v not faster than plain TPU %v", name, bb.Total(), tb.Total())
		}
	}
}

func TestBaggingHeadlineSpeedup(t *testing.T) {
	// MNIST is the paper's best case: 4.49x overall training speedup.
	// The simulator must land in the same neighborhood.
	w := workloadFor(t, "MNIST")
	cb, err := CPUTraining(CPUBaseline().Host, w)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := BaggingTraining(EdgeTPU(), w, bagging.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(cb.Total()) / float64(bb.Total())
	if speedup < 3 || speedup > 7 {
		t.Fatalf("MNIST bagging training speedup %.2f; paper reports 4.49", speedup)
	}
}

func TestInferenceSpeedups(t *testing.T) {
	// Paper Fig 6: MNIST 4.19x, FACE 3.16x, ISOLET 2.13x, UCIHAR 3.08x;
	// PAMAP2 regresses.
	for _, c := range []struct {
		name     string
		min, max float64
	}{
		{"MNIST", 3, 6}, {"FACE", 2.5, 6}, {"ISOLET", 2, 6}, {"UCIHAR", 2, 6},
		{"PAMAP2", 0.3, 1.3},
	} {
		w := workloadFor(t, c.name)
		ci, err := CPUInference(CPUBaseline().Host, w)
		if err != nil {
			t.Fatal(err)
		}
		ti, err := TPUInference(EdgeTPU(), w)
		if err != nil {
			t.Fatal(err)
		}
		speedup := float64(ci) / float64(ti)
		if speedup < c.min || speedup > c.max {
			t.Fatalf("%s inference speedup %.2f outside [%v, %v]", c.name, speedup, c.min, c.max)
		}
	}
}

func TestRaspberryPiOrderOfMagnitudeSlower(t *testing.T) {
	// Table II: the proposed platform is 15.6–23.6x faster at training
	// and 6.8–11.4x at inference than the Pi 3.
	for _, name := range []string{"FACE", "ISOLET", "UCIHAR", "MNIST", "PAMAP2"} {
		w := workloadFor(t, name)
		pib, err := CPUTraining(RaspberryPi().Host, w)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := BaggingTraining(EdgeTPU(), w, bagging.DefaultConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		trainRatio := float64(pib.Total()) / float64(bb.Total())
		if trainRatio < 8 || trainRatio > 40 {
			t.Fatalf("%s: Pi training ratio %.1f outside [8, 40]", name, trainRatio)
		}
		pii, err := CPUInference(RaspberryPi().Host, w)
		if err != nil {
			t.Fatal(err)
		}
		ti, err := TPUInference(EdgeTPU(), w)
		if err != nil {
			t.Fatal(err)
		}
		infRatio := float64(pii) / float64(ti)
		if infRatio < 2 || infRatio > 25 {
			t.Fatalf("%s: Pi inference ratio %.1f outside [2, 25]", name, infRatio)
		}
	}
}

func TestEncodeSpeedupGrowsWithFeatures(t *testing.T) {
	// Fig 10's monotone shape, with the paper's endpoints: ~1x at n=20,
	// ~8x at n=700.
	prev := 0.0
	for _, n := range []int{20, 100, 300, 700} {
		spec := dataset.SyntheticSpec(n, 10000, 8, 1)
		w := FromSpec(spec, 20)
		cb, err := CPUTraining(CPUBaseline().Host, w)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := TPUTraining(EdgeTPU(), w)
		if err != nil {
			t.Fatal(err)
		}
		speedup := float64(cb.Encode) / float64(tb.Encode)
		if speedup <= prev {
			t.Fatalf("encode speedup not increasing at n=%d: %.2f after %.2f", n, speedup, prev)
		}
		prev = speedup
		switch n {
		case 20:
			if speedup > 1.5 {
				t.Fatalf("n=20 speedup %.2f; paper reports 1.06", speedup)
			}
		case 700:
			if speedup < 5 || speedup > 12 {
				t.Fatalf("n=700 speedup %.2f; paper reports 8.25", speedup)
			}
		}
	}
}

func TestBuildSkeletonDelegates(t *testing.T) {
	m, err := BuildSkeleton("s", 8, 30, 500, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSkeletonRejectsBadDims(t *testing.T) {
	if _, err := BuildSkeleton("s", 0, 3, 4, 2, false); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := BuildSkeleton("s", 1, 3, 4, 1, true); err == nil {
		t.Fatal("k=1 classifier accepted")
	}
}

func TestTPUTrainingRequiresAccel(t *testing.T) {
	w := workloadFor(t, "ISOLET")
	if _, err := TPUTraining(CPUBaseline(), w); err == nil {
		t.Fatal("accel-less platform accepted")
	}
	if _, err := TPUInference(RaspberryPi(), w); err == nil {
		t.Fatal("accel-less inference accepted")
	}
}

func TestBaggingTrainingValidatesConfig(t *testing.T) {
	w := workloadFor(t, "ISOLET")
	bad := bagging.DefaultConfig()
	bad.SubModels = 0
	if _, err := BaggingTraining(EdgeTPU(), w, bad, nil); err == nil {
		t.Fatal("bad bagging config accepted")
	}
	if _, err := BaggingTraining(EdgeTPU(), w, bagging.DefaultConfig(), []float64{0.5}); err == nil {
		t.Fatal("wrong-length sub fractions accepted")
	}
}

func TestWorkloadTotalUpdates(t *testing.T) {
	w := workloadFor(t, "ISOLET")
	if w.TotalUpdates() <= 0 || w.TotalUpdates() > w.TrainSamples*w.Epochs {
		t.Fatalf("TotalUpdates = %d implausible", w.TotalUpdates())
	}
}

func TestPipelinedSeriesBounds(t *testing.T) {
	w := workloadFor(t, "MNIST")
	seq, err := TPUTraining(EdgeTPU(), w)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := TPUTrainingPipelined(EdgeTPU(), w)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Encode > seq.Encode {
		t.Fatalf("pipelined encode %v slower than sequential %v", pipe.Encode, seq.Encode)
	}
	// Double buffering can at most halve the time.
	if pipe.Encode < seq.Encode/2 {
		t.Fatalf("pipelined encode %v more than 2x faster than %v", pipe.Encode, seq.Encode)
	}
	// Update and model-gen phases are untouched.
	if pipe.Update != seq.Update || pipe.ModelGen != seq.ModelGen {
		t.Fatal("pipelining changed host phases")
	}
}

func TestPipelinedSeriesEdgeCases(t *testing.T) {
	if PipelinedSeries(edgetpuTimingForTest(), 0) != 0 {
		t.Fatal("zero invokes should be free")
	}
	per := edgetpuTimingForTest()
	one := PipelinedSeries(per, 1)
	if one != per.Total() {
		t.Fatalf("single invoke %v, want %v", one, per.Total())
	}
}

func edgetpuTimingForTest() edgetpu.Timing {
	return edgetpu.Timing{Host: 10, TransferIn: 20, Compute: 50, TransferOut: 5}
}

func TestPipelinedSeriesRegimes(t *testing.T) {
	// Compute-bound: the steady state runs at the compute rate and the fill
	// term is the link side.
	cb := edgetpu.Timing{Host: 5, TransferIn: 10, Compute: 100, TransferOut: 5}
	link := cb.Host + cb.TransferIn + cb.TransferOut
	if got, want := PipelinedSeries(cb, 10), 10*cb.Compute+link; got != want {
		t.Fatalf("compute-bound series %v, want %v", got, want)
	}
	// Link-bound: steady state runs at the link rate, fill is the compute.
	lb := edgetpu.Timing{Host: 40, TransferIn: 60, Compute: 20, TransferOut: 30}
	linkLB := lb.Host + lb.TransferIn + lb.TransferOut
	if got, want := PipelinedSeries(lb, 10), 10*linkLB+lb.Compute; got != want {
		t.Fatalf("link-bound series %v, want %v", got, want)
	}
	// Pipelining never beats the bottleneck bound and never loses to the
	// sequential series.
	for _, per := range []edgetpu.Timing{cb, lb} {
		for _, n := range []int{1, 2, 7, 100} {
			got := PipelinedSeries(per, n)
			seq := time.Duration(n) * per.Total()
			if got > seq {
				t.Fatalf("pipelined %v slower than sequential %v (n=%d)", got, seq, n)
			}
			if got < 0 {
				t.Fatalf("negative series %v", got)
			}
		}
	}
}

func TestMultiDeviceSeriesClampsDevices(t *testing.T) {
	per := edgetpu.Timing{Host: 10, TransferIn: 30, Compute: 200, TransferOut: 10}
	one := MultiDeviceSeries(per, 50, 1)
	for _, devices := range []int{0, -3} {
		if got := MultiDeviceSeries(per, 50, devices); got != one {
			t.Fatalf("devices=%d not clamped to 1: %v vs %v", devices, got, one)
		}
	}
	// One device must agree with the single-device pipelined model.
	if got, want := one, PipelinedSeries(per, 50); got != want {
		t.Fatalf("1-device multi %v != pipelined %v", got, want)
	}
}

func TestMultiDeviceSeriesCrossover(t *testing.T) {
	// Compute 200 vs link 50: devices help until compute/devices dips under
	// the link side at 4 devices, then the curve flattens.
	per := edgetpu.Timing{Host: 10, TransferIn: 30, Compute: 200, TransferOut: 10}
	prev := MultiDeviceSeries(per, 100, 1)
	for _, devices := range []int{2, 4} {
		cur := MultiDeviceSeries(per, 100, devices)
		if cur >= prev {
			t.Fatalf("%d devices did not help below crossover: %v vs %v", devices, cur, prev)
		}
		prev = cur
	}
	if MultiDeviceSeries(per, 100, 8) != MultiDeviceSeries(per, 100, 4) {
		t.Fatal("past the crossover, extra devices must not change the series")
	}
}

func TestMultiDeviceSeriesFillNonNegative(t *testing.T) {
	// With many devices the fill term (Total - bottleneck) would go negative
	// without clamping; the series must stay monotone in invokes and
	// non-negative everywhere.
	per := edgetpu.Timing{Host: 1, TransferIn: 1, Compute: 1000, TransferOut: 1}
	for _, devices := range []int{1, 10, 1000, 100000} {
		prev := time.Duration(0)
		for _, n := range []int{1, 2, 10} {
			got := MultiDeviceSeries(per, n, devices)
			if got <= 0 {
				t.Fatalf("series %v not positive (n=%d, devices=%d)", got, n, devices)
			}
			if got <= prev {
				t.Fatalf("series not increasing in invokes: %v after %v (devices=%d)", got, prev, devices)
			}
			prev = got
		}
		// A single invoke can never complete faster than one full pass.
		if one := MultiDeviceSeries(per, 1, devices); one < per.Total()/time.Duration(devices) {
			t.Fatalf("single invoke %v implausibly fast (devices=%d)", one, devices)
		}
	}
}

func TestMultiDeviceSeriesSaturates(t *testing.T) {
	per := edgetpu.Timing{Host: 10, TransferIn: 30, Compute: 200, TransferOut: 10}
	one := MultiDeviceSeries(per, 100, 1)
	two := MultiDeviceSeries(per, 100, 2)
	eight := MultiDeviceSeries(per, 100, 8)
	if two >= one {
		t.Fatalf("second device did not help: %v vs %v", two, one)
	}
	// With 8 devices compute is 25 < link 50: link-bound, so more devices
	// stop helping.
	sixteen := MultiDeviceSeries(per, 100, 16)
	if sixteen != eight {
		t.Fatalf("link-bound regime should saturate: %v vs %v", sixteen, eight)
	}
	if MultiDeviceSeries(per, 0, 4) != 0 {
		t.Fatal("zero invokes should be free")
	}
}
