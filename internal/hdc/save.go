package hdc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"hdcedge/internal/tensor"
)

// Model binary format (little endian): magic "HDM1", nonlinear u8,
// metric u8, n u32, d u32, k u32, base [n*d]f32, classes [k*d]f32.

const modelMagic = "HDM1"

// Save writes the model to a file.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := m.writeTo(w); err != nil {
		f.Close()
		return fmt.Errorf("hdc: writing %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (m *Model) writeTo(w *bufio.Writer) error {
	if _, err := w.WriteString(modelMagic); err != nil {
		return err
	}
	if m.Encoder.Nonlinear {
		w.WriteByte(1)
	} else {
		w.WriteByte(0)
	}
	w.WriteByte(byte(m.Metric))
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		w.Write(b[:])
	}
	putU32(uint32(m.Encoder.Features()))
	putU32(uint32(m.Dim()))
	putU32(uint32(m.K()))
	for _, v := range m.Encoder.Base.F32 {
		putU32(math.Float32bits(v))
	}
	for _, v := range m.Classes.F32 {
		putU32(math.Float32bits(v))
	}
	return nil
}

// LoadModel reads a model written by Save.
func LoadModel(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		return nil, err
	}
	if string(mg[:]) != modelMagic {
		return nil, fmt.Errorf("hdc: bad model magic %q in %s", mg, path)
	}
	flags := make([]byte, 2)
	if _, err := io.ReadFull(r, flags); err != nil {
		return nil, err
	}
	getU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	n, err := getU32()
	if err != nil {
		return nil, err
	}
	d, err := getU32()
	if err != nil {
		return nil, err
	}
	k, err := getU32()
	if err != nil {
		return nil, err
	}
	if n == 0 || d == 0 || k < 2 || n > 1<<20 || d > 1<<24 || k > 1<<16 {
		return nil, fmt.Errorf("hdc: implausible model dims n=%d d=%d k=%d", n, d, k)
	}
	readF32s := func(dst []float32) error {
		for i := range dst {
			bits, err := getU32()
			if err != nil {
				return err
			}
			dst[i] = math.Float32frombits(bits)
		}
		return nil
	}
	base := tensor.New(tensor.Float32, int(n), int(d))
	if err := readF32s(base.F32); err != nil {
		return nil, err
	}
	classes := tensor.New(tensor.Float32, int(k), int(d))
	if err := readF32s(classes.F32); err != nil {
		return nil, err
	}
	return &Model{
		Encoder: &Encoder{Base: base, Nonlinear: flags[0] == 1},
		Classes: classes,
		Metric:  Similarity(flags[1]),
	}, nil
}
