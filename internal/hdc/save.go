package hdc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"hdcedge/internal/tensor"
)

// Model binary format (little endian): magic "HDM1", nonlinear u8,
// metric u8, n u32, d u32, k u32, base [n*d]f32, classes [k*d]f32,
// footer "HCRC" + uint32 CRC32 (IEEE) of every preceding byte.
//
// The footer is an integrity seal over the whole file, mirroring the
// tflite container scheme: LoadModel verifies it and rejects corrupt
// bytes with *ChecksumError. Files written before the footer existed
// (no trailing "HCRC" marker) are still accepted.

const (
	modelMagic = "HDM1"

	// crcMagic marks the integrity footer; crcFooterLen is its size.
	crcMagic     = "HCRC"
	crcFooterLen = 8
)

// ChecksumError reports a model file whose bytes do not match the CRC32
// recorded in its footer.
type ChecksumError struct {
	Path string // file being loaded
	Want uint32 // checksum recorded in the footer
	Got  uint32 // checksum of the payload as read
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("hdc: model checksum mismatch in %s: footer %08x, payload %08x", e.Path, e.Want, e.Got)
}

// Save writes the model to a file, sealed by the CRC32 integrity footer.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	h := crc32.NewIEEE()
	w := bufio.NewWriter(io.MultiWriter(f, h))
	if err := m.writeTo(w); err != nil {
		f.Close()
		return fmt.Errorf("hdc: writing %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	var footer [crcFooterLen]byte
	copy(footer[:4], crcMagic)
	binary.LittleEndian.PutUint32(footer[4:], h.Sum32())
	if _, err := f.Write(footer[:]); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (m *Model) writeTo(w *bufio.Writer) error {
	if _, err := w.WriteString(modelMagic); err != nil {
		return err
	}
	if m.Encoder.Nonlinear {
		w.WriteByte(1)
	} else {
		w.WriteByte(0)
	}
	w.WriteByte(byte(m.Metric))
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		w.Write(b[:])
	}
	putU32(uint32(m.Encoder.Features()))
	putU32(uint32(m.Dim()))
	putU32(uint32(m.K()))
	for _, v := range m.Encoder.Base.F32 {
		putU32(math.Float32bits(v))
	}
	for _, v := range m.Classes.F32 {
		putU32(math.Float32bits(v))
	}
	return nil
}

// LoadModel reads a model written by Save. A trailing "HCRC" footer is
// verified against the payload (mismatch yields *ChecksumError) and
// stripped; footerless files from before the checksum existed are parsed
// as-is. Any other bytes left over after the model is an error.
func LoadModel(path string) (*Model, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload := raw
	if len(raw) >= crcFooterLen && string(raw[len(raw)-crcFooterLen:len(raw)-4]) == crcMagic {
		want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
		payload = raw[:len(raw)-crcFooterLen]
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, &ChecksumError{Path: path, Want: want, Got: got}
		}
	}
	src := bytes.NewReader(payload)
	r := bufio.NewReader(src)
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		return nil, err
	}
	if string(mg[:]) != modelMagic {
		return nil, fmt.Errorf("hdc: bad model magic %q in %s", mg, path)
	}
	flags := make([]byte, 2)
	if _, err := io.ReadFull(r, flags); err != nil {
		return nil, err
	}
	getU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	n, err := getU32()
	if err != nil {
		return nil, err
	}
	d, err := getU32()
	if err != nil {
		return nil, err
	}
	k, err := getU32()
	if err != nil {
		return nil, err
	}
	if n == 0 || d == 0 || k < 2 || n > 1<<20 || d > 1<<24 || k > 1<<16 {
		return nil, fmt.Errorf("hdc: implausible model dims n=%d d=%d k=%d", n, d, k)
	}
	readF32s := func(dst []float32) error {
		for i := range dst {
			bits, err := getU32()
			if err != nil {
				return err
			}
			dst[i] = math.Float32frombits(bits)
		}
		return nil
	}
	base := tensor.New(tensor.Float32, int(n), int(d))
	if err := readF32s(base.F32); err != nil {
		return nil, err
	}
	classes := tensor.New(tensor.Float32, int(k), int(d))
	if err := readF32s(classes.F32); err != nil {
		return nil, err
	}
	if rest := src.Len() + r.Buffered(); rest != 0 {
		return nil, fmt.Errorf("hdc: %d trailing bytes after model in %s", rest, path)
	}
	return &Model{
		Encoder: &Encoder{Base: base, Nonlinear: flags[0] == 1},
		Classes: classes,
		Metric:  Similarity(flags[1]),
	}, nil
}
