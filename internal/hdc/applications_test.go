package hdc

import (
	"math"
	"testing"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// --- regression (RegHD style) ---

// regressionProblem builds a smooth non-linear target over 4 features.
func regressionProblem(seed uint64, samples int) (*tensor.Tensor, []float32) {
	r := rng.New(seed)
	x := tensor.New(tensor.Float32, samples, 4)
	r.FillUniform(x.F32, -1, 1)
	y := make([]float32, samples)
	for i := 0; i < samples; i++ {
		row := x.Row(i)
		y[i] = float32(math.Sin(float64(2*row[0]))) + row[1]*row[2] - 0.5*row[3]
	}
	return x, y
}

func TestRegressorFitsNonlinearTarget(t *testing.T) {
	x, y := regressionProblem(1, 2000)
	xt, yt := regressionProblem(2, 500)
	reg, stats, err := TrainRegressor(x, y, RegressionConfig{
		Dim: 2048, Epochs: 15, Nonlinear: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Target variance is ~0.8; a useful fit must be well below it.
	mse := reg.MSE(xt, yt)
	if mse > 0.12 {
		t.Fatalf("test MSE %.4f too high", mse)
	}
	// Training error must decrease over epochs.
	if stats.MSE[len(stats.MSE)-1] >= stats.MSE[0] {
		t.Fatalf("training MSE did not decrease: %.4f -> %.4f", stats.MSE[0], stats.MSE[len(stats.MSE)-1])
	}
}

func TestRegressorNonlinearBeatsLinear(t *testing.T) {
	// The target has sin and product terms; the linear encoder cannot
	// represent them as well.
	x, y := regressionProblem(4, 2000)
	xt, yt := regressionProblem(5, 500)
	nl, _, err := TrainRegressor(x, y, RegressionConfig{Dim: 2048, Epochs: 15, Nonlinear: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	lin, _, err := TrainRegressor(x, y, RegressionConfig{Dim: 2048, Epochs: 15, Nonlinear: false, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if nl.MSE(xt, yt) > lin.MSE(xt, yt) {
		t.Fatalf("nonlinear MSE %.4f worse than linear %.4f", nl.MSE(xt, yt), lin.MSE(xt, yt))
	}
}

func TestTrainRegressorValidation(t *testing.T) {
	x := tensor.New(tensor.Float32, 4, 2)
	if _, _, err := TrainRegressor(x, []float32{1, 2}, RegressionConfig{Dim: 64}); err == nil {
		t.Fatal("target length mismatch accepted")
	}
	if _, _, err := TrainRegressor(nil, nil, RegressionConfig{}); err == nil {
		t.Fatal("nil design matrix accepted")
	}
}

func TestRegressorPredictMatchesMSEPath(t *testing.T) {
	x, y := regressionProblem(7, 400)
	reg, _, err := TrainRegressor(x, y, RegressionConfig{Dim: 512, Epochs: 5, Nonlinear: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// MSE computed via batch path must equal the per-sample Predict path.
	var sse float64
	for i := 0; i < x.Shape[0]; i++ {
		diff := float64(y[i] - reg.Predict(x.Row(i)))
		sse += diff * diff
	}
	batch := reg.MSE(x, y)
	if math.Abs(batch-sse/float64(x.Shape[0])) > 1e-6 {
		t.Fatalf("batch MSE %.6f vs per-sample %.6f", batch, sse/float64(x.Shape[0]))
	}
}

// --- clustering (DUAL style) ---

func TestClusterRecoversStructure(t *testing.T) {
	// The generator gives each class ModesPerClass=2 latent modes, so
	// clustering at mode granularity (K = classes × 2) should produce
	// clusters that are each dominated by a single class.
	train, _ := synthTrainTest(t, 24, 1600, 4, 900)
	res, err := Cluster(train.X, ClusterConfig{K: 8, Dim: 2048, Nonlinear: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	purity := res.Purity(train.Y, train.Classes)
	if purity < 0.7 {
		t.Fatalf("cluster purity %.3f; chance ~0.25", purity)
	}
	if res.Iterations < 1 || res.Iterations > 32 {
		t.Fatalf("iterations %d", res.Iterations)
	}
}

func TestClusterDeterministic(t *testing.T) {
	train, _ := synthTrainTest(t, 16, 600, 3, 901)
	a, err := Cluster(train.X, ClusterConfig{K: 3, Dim: 512, Nonlinear: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(train.X, ClusterConfig{K: 3, Dim: 512, Nonlinear: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed clustered differently")
		}
	}
}

func TestClusterValidation(t *testing.T) {
	train, _ := synthTrainTest(t, 8, 100, 2, 902)
	if _, err := Cluster(train.X, ClusterConfig{K: 1, Dim: 64}); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := Cluster(nil, ClusterConfig{K: 2}); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if _, err := Cluster(train.X, ClusterConfig{K: 1000, Dim: 64}); err == nil {
		t.Fatal("K > samples accepted")
	}
}

func TestClusterAssignmentsInRange(t *testing.T) {
	train, _ := synthTrainTest(t, 12, 300, 3, 903)
	res, err := Cluster(train.X, ClusterConfig{K: 5, Dim: 256, Nonlinear: true, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assignments {
		if a < 0 || a >= 5 {
			t.Fatalf("assignment %d out of range", a)
		}
	}
}

// --- regeneration ---

func TestRegenerateCountsAndZeroes(t *testing.T) {
	train, _ := synthTrainTest(t, 20, 800, 4, 904)
	m, _, err := Train(train, nil, TrainConfig{Dim: 512, Epochs: 5, LearningRate: 1, Nonlinear: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Clone().Regenerate(0.25, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if n != 128 {
		t.Fatalf("regenerated %d dims, want 128", n)
	}
	if n, err := m.Clone().Regenerate(0, rng.New(12)); err != nil || n != 0 {
		t.Fatalf("zero fraction regenerated %d dims (err %v)", n, err)
	}
}

// TestRegenerateTruncationEdges pins the fraction*d truncation behaviour:
// fractions below 1/d regenerate nothing (n truncates to 0), fraction 1
// regenerates every dimension, and out-of-range fractions clamp.
func TestRegenerateTruncationEdges(t *testing.T) {
	train, _ := synthTrainTest(t, 16, 400, 3, 906)
	m, _, err := Train(train, nil, TrainConfig{Dim: 64, Epochs: 3, LearningRate: 1, Nonlinear: true, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Dim()
	cases := []struct {
		name     string
		fraction float64
		want     int
	}{
		{"below-one-dim", 0.5 / float64(d), 0}, // fraction*d = 0.5 → truncates to 0
		{"exactly-one-dim", 1.0 / float64(d), 1},
		{"half", 0.5, d / 2},
		{"all", 1.0, d},
		{"clamped-above", 2.0, d},
		{"negative", -0.5, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := m.Clone()
			n, err := c.Regenerate(tc.fraction, rng.New(22))
			if err != nil {
				t.Fatal(err)
			}
			if n != tc.want {
				t.Fatalf("fraction %g regenerated %d dims, want %d", tc.fraction, n, tc.want)
			}
			if tc.want == d {
				// Full regeneration must zero the entire class matrix.
				for _, v := range c.Classes.F32 {
					if v != 0 {
						t.Fatal("full regeneration left non-zero class entries")
					}
				}
			}
			if tc.want == 0 {
				// No-op regeneration must leave the model untouched.
				for i, v := range c.Classes.F32 {
					if v != m.Classes.F32[i] {
						t.Fatal("zero-dim regeneration modified the class matrix")
					}
				}
			}
		})
	}
}

// TestRegenerateSingleClassErrors pins the K()<2 guard: with one class the
// across-class variance is identically zero, so weakest-dimension ranking
// is meaningless and Regenerate must refuse rather than silently mis-rank.
func TestRegenerateSingleClassErrors(t *testing.T) {
	enc := NewEncoder(8, 32, true, rng.New(23))
	m := &Model{Encoder: enc, Classes: tensor.New(tensor.Float32, 1, 32)}
	if _, err := m.Regenerate(0.5, rng.New(24)); err == nil {
		t.Fatal("single-class Regenerate succeeded; want error")
	}
	if _, _, err := m.RegenerateAndRefine(tensor.New(tensor.Float32, 4, 8), []int{0, 0, 0, 0}, 0.5, 2, 1, rng.New(25)); err == nil {
		t.Fatal("single-class RegenerateAndRefine succeeded; want error")
	}
}

func TestRegenerateAndRefineKeepsAccuracy(t *testing.T) {
	train, test := synthTrainTest(t, 24, 1600, 4, 905)
	m, _, err := Train(train, nil, TrainConfig{Dim: 1024, Epochs: 8, LearningRate: 1, Nonlinear: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Accuracy(test)
	refined := m.Clone()
	n, _, err := refined.RegenerateAndRefine(train.X, train.Y, 0.2, 4, 1, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing regenerated")
	}
	after := refined.Accuracy(test)
	if after < before-0.05 {
		t.Fatalf("regeneration hurt accuracy: %.3f -> %.3f", before, after)
	}
}

// TestRegenerateRecoversFromClassCorruption injects SEU-style corruption
// directly into the class hypervectors — the failure the integrity layer's
// ladder repairs by re-upload when golden bytes exist — and checks that
// regeneration plus refinement recovers the model from training data alone
// to within one accuracy point of the uncorrupted baseline.
func TestRegenerateRecoversFromClassCorruption(t *testing.T) {
	train, test := synthTrainTest(t, 24, 1600, 4, 907)
	m, _, err := Train(train, nil, TrainConfig{Dim: 1024, Epochs: 8, LearningRate: 1, Nonlinear: true, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	baseline := m.Accuracy(test)

	// Slam large-magnitude noise into 15% of the class-matrix entries,
	// mimicking accumulated high-order bit flips in resident weights.
	corrupt := m.Clone()
	r := rng.New(18)
	scale := float64(0)
	for _, v := range corrupt.Classes.F32 {
		if s := float64(v); s > scale {
			scale = s
		} else if -s > scale {
			scale = -s
		}
	}
	for i := range corrupt.Classes.F32 {
		if r.Float64() < 0.15 {
			corrupt.Classes.F32[i] = float32((r.Float64()*2 - 1) * 4 * scale)
		}
	}
	degraded := corrupt.Accuracy(test)
	if degraded > baseline-0.02 {
		t.Fatalf("corruption too mild to exercise recovery: %.3f -> %.3f", baseline, degraded)
	}

	n, _, err := corrupt.RegenerateAndRefine(train.X, train.Y, 0.2, 6, 1, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing regenerated")
	}
	recovered := corrupt.Accuracy(test)
	if recovered < baseline-0.01 {
		t.Fatalf("recovery fell short: baseline %.3f, corrupted %.3f, recovered %.3f (bar %.3f)",
			baseline, degraded, recovered, baseline-0.01)
	}
}

func TestRegenerateAndRefineValidation(t *testing.T) {
	train, _ := synthTrainTest(t, 8, 200, 2, 906)
	m, _, err := Train(train, nil, TrainConfig{Dim: 128, Epochs: 2, LearningRate: 1, Nonlinear: true, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.RegenerateAndRefine(train.X, train.Y, 0.1, 0, 1, rng.New(16)); err == nil {
		t.Fatal("zero refinement epochs accepted")
	}
}
