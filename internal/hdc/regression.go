package hdc

import (
	"fmt"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// This file implements HDC regression in the style of RegHD
// (Hernández-Cano et al., DAC 2021 — the paper's reference [28]): a
// single model hypervector M is trained so that the prediction for an
// encoded sample E is ŷ = M · E / d, with error-proportional bundling
//
//	M += λ · (y − ŷ) · E
//
// which is LMS/Widrow-Hoff in the hyperdimensional space. The non-linear
// encoder makes the regressor capable of fitting non-linear targets.

// Regressor is a trained HDC regression model.
type Regressor struct {
	Encoder *Encoder
	// W is the model hypervector (length d).
	W []float32
}

// RegressionConfig controls regression training.
type RegressionConfig struct {
	Dim          int
	Epochs       int
	LearningRate float32
	Nonlinear    bool
	Seed         uint64
}

// RegressionStats records per-epoch mean-squared error.
type RegressionStats struct {
	MSE []float64
}

// TrainRegressor fits an HDC regressor to (x, y) pairs. x has shape
// [s, n]; y has length s.
func TrainRegressor(x *tensor.Tensor, y []float32, cfg RegressionConfig) (*Regressor, *RegressionStats, error) {
	if x == nil || x.DType != tensor.Float32 || len(x.Shape) != 2 {
		return nil, nil, fmt.Errorf("hdc: regression needs a 2-D float design matrix")
	}
	s := x.Shape[0]
	if s == 0 || s != len(y) {
		return nil, nil, fmt.Errorf("hdc: %d samples, %d targets", s, len(y))
	}
	if cfg.Dim == 0 {
		cfg.Dim = DefaultDim
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 20
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.02
	}
	r := rng.New(cfg.Seed)
	enc := NewEncoder(x.Shape[1], cfg.Dim, cfg.Nonlinear, r.Split())
	reg := &Regressor{Encoder: enc, W: make([]float32, cfg.Dim)}
	encoded := enc.EncodeBatch(x)

	stats := &RegressionStats{}
	order := r.Perm(s)
	invD := 1 / float32(cfg.Dim)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(s, func(a, b int) { order[a], order[b] = order[b], order[a] })
		var sse float64
		for _, idx := range order {
			e := encoded.Row(idx)
			pred := tensor.Dot(reg.W, e) * invD
			err := y[idx] - pred
			sse += float64(err) * float64(err)
			tensor.Axpy(cfg.LearningRate*err*invD*float32(cfg.Dim), e, reg.W)
		}
		stats.MSE = append(stats.MSE, sse/float64(s))
	}
	return reg, stats, nil
}

// Predict returns the regression output for one feature vector.
func (r *Regressor) Predict(features []float32) float32 {
	e := make([]float32, len(r.W))
	r.Encoder.Encode(e, features)
	return tensor.Dot(r.W, e) / float32(len(r.W))
}

// MSE evaluates mean-squared error over a design matrix.
func (r *Regressor) MSE(x *tensor.Tensor, y []float32) float64 {
	enc := r.Encoder.EncodeBatch(x)
	invD := 1 / float32(len(r.W))
	var sse float64
	for i := 0; i < x.Shape[0]; i++ {
		pred := tensor.Dot(r.W, enc.Row(i)) * invD
		diff := float64(y[i] - pred)
		sse += diff * diff
	}
	return sse / float64(x.Shape[0])
}
