package hdc

import (
	"fmt"

	"hdcedge/internal/rng"
	"hdcedge/internal/tensor"
)

// This file exposes the primitive hypervector algebra — the three
// operations every HDC system composes (Kanerva [11]):
//
//	Bundle  (+)  element-wise addition: superposition; the result is
//	             similar to every operand.
//	Bind    (⊙)  element-wise multiplication: association; the result is
//	             dissimilar to both operands, and for bipolar vectors
//	             binding is its own inverse.
//	Permute (ρ)  cyclic rotation: ordering; preserves distances while
//	             decorrelating a vector from its unrotated self.
//
// The classifier above uses Bundle for class accumulation; the sequence
// encoder uses Bind and Permute. They are exported so downstream users
// can build new HDC structures (records, graphs, stacks) directly.

// RandomHypervector draws a dense N(0,1) hypervector.
func RandomHypervector(dim int, r *rng.RNG) []float32 {
	hv := make([]float32, dim)
	r.FillNormal(hv)
	return hv
}

// RandomBipolar draws a uniform ±1 hypervector.
func RandomBipolar(dim int, r *rng.RNG) []float32 {
	hv := make([]float32, dim)
	for i := range hv {
		if r.Uint64()&1 == 1 {
			hv[i] = 1
		} else {
			hv[i] = -1
		}
	}
	return hv
}

// Bundle returns the element-wise sum of the given hypervectors.
func Bundle(hvs ...[]float32) []float32 {
	if len(hvs) == 0 {
		panic("hdc: Bundle of nothing")
	}
	d := len(hvs[0])
	out := make([]float32, d)
	for _, hv := range hvs {
		if len(hv) != d {
			panic(fmt.Sprintf("hdc: Bundle length mismatch %d vs %d", len(hv), d))
		}
		for j, v := range hv {
			out[j] += v
		}
	}
	return out
}

// Bind returns the element-wise product of two hypervectors.
func Bind(a, b []float32) []float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("hdc: Bind length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float32, len(a))
	for j := range out {
		out[j] = a[j] * b[j]
	}
	return out
}

// Permute returns the hypervector rotated right by k positions (k may be
// negative for a left rotation).
func Permute(hv []float32, k int) []float32 {
	d := len(hv)
	if d == 0 {
		return nil
	}
	k %= d
	if k < 0 {
		k += d
	}
	out := make([]float32, d)
	copy(out[k:], hv[:d-k])
	copy(out[:k], hv[d-k:])
	return out
}

// Sign thresholds a hypervector to bipolar ±1 (zero maps to -1, matching
// the bit-packed model convention).
func Sign(hv []float32) []float32 {
	out := make([]float32, len(hv))
	for j, v := range hv {
		if v > 0 {
			out[j] = 1
		} else {
			out[j] = -1
		}
	}
	return out
}

// Cosine returns the cosine similarity of two hypervectors.
func Cosine(a, b []float32) float32 {
	return tensor.CosineSimilarity(a, b)
}
